/// \file imm_cli.cpp
/// \brief Full command-line driver, in the spirit of the `imm` tool the
/// Ripples framework ships: load any edge-list graph (or a registry
/// surrogate), pick a driver and model, run influence maximization, and
/// emit the seeds plus diagnostics as text or JSON.
///
/// Usage:
///   imm_cli --input graph.txt [--weights uniform|constant:<p>|wc|keep]
///           [--driver seq|baseline|mt|dist|dist-part|tim|ris]
///           [--model IC|LT] [--epsilon 0.5] [-k 50]
///           [--threads N] [--ranks P] [--rng counter|leapfrog]
///           [--sampler seq|fused]         (RRR engine; fused batches 64
///                                          samples per traversal pass,
///                                          byte-identical output; also
///                                          RIPPLES_SAMPLER)
///           [--evaluate-trials 0] [--json out.json] [--seed S]
///           [--json-report report.json]   (structured metrics run report)
///           [--trace trace.json]          (Chrome trace-event timeline,
///                                          loadable in Perfetto)
///           [--profile-mem]               (background resource sampler:
///                                          memory timeline in the report
///                                          and counter tracks in the
///                                          trace; also RIPPLES_PROFILE_MEM)
///           [--profile-mem-hz HZ]         (sampling rate; default 10)
///           [--recover]                   (dist: survive rank failures by
///                                          shrinking + regenerating)
///           [--watchdog-ms N]             (collective stall deadline; 0=off)
///           [--inject-fault rank=R,site=N
///                           [,kind=crash|stall|oom|corrupt|flaky]
///                           [,sticky][,attempts=M]]
///                                         (deterministic fault plan; also
///                                          RIPPLES_FAULTS. kind=oom fails
///                                          rank R's Nth tracked memory
///                                          reservation, sticky.
///                                          kind=corrupt flips a payload
///                                          bit at the Nth communication
///                                          entry — once, or on every
///                                          retransmission with `sticky`.
///                                          kind=flaky fails delivery of
///                                          the first M attempts there,
///                                          then succeeds)
///           [--mem-budget BYTES]          (RRR memory budget; 0 = unlimited.
///                                          Over-budget runs degrade:
///                                          compress, shed batches, certify
///                                          a looser epsilon; also
///                                          RIPPLES_MEM_BUDGET)
///           [--rrr-compress auto|always|off]
///                                         (delta+varint RRR encoding; auto
///                                          switches under budget pressure;
///                                          also RIPPLES_RRR_COMPRESS)
///           [--selection-exchange dense|sparse]
///                                         (dist/dist-part seed-selection
///                                          protocol; also
///                                          RIPPLES_SELECTION_EXCHANGE)
///           [--selection-topm N]          (candidates per rank per sparse
///                                          round; default 16)
///           [--steal on|off|intra|inter]  (work-stealing sampler scope;
///                                          byte-identical seeds in every
///                                          mode — placement only; counter
///                                          rng, dist driver; also
///                                          RIPPLES_STEAL)
///           [--steal-chunk N]             (draws per stealable chunk;
///                                          default 64; also
///                                          RIPPLES_STEAL_CHUNK)
///           [--steal-skew]                (benchmark knob: home every
///                                          stream on the first live rank —
///                                          the fig7 pathological partition;
///                                          also RIPPLES_STEAL_SKEW)
///           [--verify-collectives]        (CRC-32 every collective/steal
///                                          payload; mismatches retry with
///                                          capped backoff, then heal; also
///                                          RIPPLES_VERIFY_COLLECTIVES)
///           [--scrub-rrr off|on|paranoid] (verify + self-repair stored RRR
///                                          arena checksums before selection
///                                          (on) or every kernel (paranoid);
///                                          also RIPPLES_SCRUB_RRR)
///           [--checkpoint-dir DIR]        (dist/dist-part: snapshot the
///                                          martingale state at round
///                                          boundaries; also
///                                          RIPPLES_CHECKPOINT_DIR)
///           [--checkpoint-every N]        (write every Nth boundary;
///                                          acceptance always writes)
///           [--checkpoint-keep N]         (snapshots retained; default 3)
///           [--resume]                    (resume from the newest intact
///                                          snapshot in --checkpoint-dir)
///           [--evict-stalled]             (dist + --recover + --watchdog-ms:
///                                          heal watchdog-diagnosed stalls
///                                          like crashes instead of aborting)
///           [--strict-input]              (reject self-loops and duplicate
///                                          edges in --input, not just
///                                          malformed lines/weights)
///   imm_cli --dataset com-DBLP --scale 0.01 ...     (surrogate input)
#include <cstdint>
#include <cstdio>
#include <fstream>

#include "ripples/ripples.hpp"

namespace {

using namespace ripples;

CsrGraph load_graph(const CommandLine &cli, std::uint64_t seed,
                    DiffusionModel model) {
  CsrGraph graph = [&] {
    if (auto input = cli.value_of("input")) {
      RIPPLES_LOG_INFO("loading edge list from %s", input->c_str());
      EdgeListValidation validation;
      validation.reject_self_loops = cli.has_flag("strict-input");
      validation.reject_duplicates = cli.has_flag("strict-input");
      return CsrGraph(load_edge_list_text(*input, true, validation));
    }
    const std::string dataset = cli.get("dataset", std::string("cit-HepTh"));
    return materialize(find_dataset(dataset), cli.get("scale", 0.05), seed,
                       cli.get("snap-dir", std::string()));
  }();

  const std::string weights = cli.get("weights", std::string("uniform"));
  if (weights == "uniform") {
    assign_uniform_weights(graph, seed + 1);
  } else if (weights.rfind("constant:", 0) == 0) {
    assign_constant_weights(graph,
                            std::stof(weights.substr(sizeof("constant:") - 1)));
  } else if (weights == "wc") {
    assign_weighted_cascade(graph);
  } else if (weights != "keep") {
    std::fprintf(stderr, "unknown --weights '%s' "
                         "(uniform|constant:<p>|wc|keep)\n",
                 weights.c_str());
    std::exit(2);
  }
  if (model == DiffusionModel::LinearThreshold)
    renormalize_linear_threshold(graph);
  return graph;
}

ImmResult run_driver(const std::string &driver, const CsrGraph &graph,
                     const CommandLine &cli, DiffusionModel model,
                     std::uint64_t seed) {
  ImmOptions options;
  options.epsilon = cli.get("epsilon", 0.5);
  options.k = static_cast<std::uint32_t>(
      cli.get_bounded("k", 50, 1, UINT32_MAX));
  options.model = model;
  options.seed = seed;
  options.num_threads =
      static_cast<unsigned>(cli.get_bounded("threads", 1, 1, UINT32_MAX));
  options.num_ranks = static_cast<int>(cli.get_bounded("ranks", 2, 1, INT32_MAX));
  if (cli.get("rng", std::string("counter")) == "leapfrog")
    options.rng_mode = RngMode::LeapfrogLcg;
  options.recover_failures = cli.has_flag("recover");
  options.watchdog_ms = static_cast<std::uint32_t>(
      cli.get_bounded("watchdog-ms", 0, 0, UINT32_MAX));
  options.fault_plan = cli.get("inject-fault", std::string());
  // The flag overrides RIPPLES_MEM_BUDGET (the option's default).
  options.mem_budget = static_cast<std::size_t>(cli.get_bounded(
      "mem-budget", static_cast<std::int64_t>(options.mem_budget), 0,
      INT64_MAX));
  // The flag overrides RIPPLES_RRR_COMPRESS (the option's default).
  if (auto compress = cli.value_of("rrr-compress")) {
    if (*compress == "auto") {
      options.rrr_compress = CompressMode::Auto;
    } else if (*compress == "always") {
      options.rrr_compress = CompressMode::Always;
    } else if (*compress == "off") {
      options.rrr_compress = CompressMode::Off;
    } else {
      std::fprintf(stderr, "unknown --rrr-compress '%s' (auto|always|off)\n",
                   compress->c_str());
      std::exit(2);
    }
  }
  // The flag overrides RIPPLES_SAMPLER (the option's default).
  if (auto sampler = cli.value_of("sampler")) {
    if (*sampler == "fused") {
      options.sampler = SamplerEngine::Fused;
    } else if (*sampler == "seq") {
      options.sampler = SamplerEngine::Sequential;
    } else {
      std::fprintf(stderr, "unknown --sampler '%s' (seq|fused)\n",
                   sampler->c_str());
      std::exit(2);
    }
  }
  // The flag overrides RIPPLES_SELECTION_EXCHANGE (the option's default).
  if (auto exchange = cli.value_of("selection-exchange")) {
    if (*exchange == "sparse") {
      options.selection_exchange = SelectionExchange::Sparse;
    } else if (*exchange == "dense") {
      options.selection_exchange = SelectionExchange::Dense;
    } else {
      std::fprintf(stderr, "unknown --selection-exchange '%s' (dense|sparse)\n",
                   exchange->c_str());
      std::exit(2);
    }
  }
  options.selection_topm = static_cast<std::uint32_t>(cli.get_bounded(
      "selection-topm", options.selection_topm, 1, UINT32_MAX));
  // The flag overrides RIPPLES_STEAL (the option's default).
  if (auto steal = cli.value_of("steal")) {
    if (*steal == "on") {
      options.steal = StealMode::On;
    } else if (*steal == "off") {
      options.steal = StealMode::Off;
    } else if (*steal == "intra") {
      options.steal = StealMode::Intra;
    } else if (*steal == "inter") {
      options.steal = StealMode::Inter;
    } else {
      std::fprintf(stderr, "unknown --steal '%s' (on|off|intra|inter)\n",
                   steal->c_str());
      std::exit(2);
    }
  }
  options.steal_chunk = static_cast<std::uint64_t>(cli.get_bounded(
      "steal-chunk", static_cast<std::int64_t>(options.steal_chunk), 1,
      INT64_MAX));
  if (cli.has_flag("steal-skew")) options.steal_skew = true;
  // The flag overrides RIPPLES_VERIFY_COLLECTIVES (the option's default).
  if (cli.has_flag("verify-collectives")) options.verify_collectives = true;
  // The flag overrides RIPPLES_SCRUB_RRR (the option's default).
  if (auto scrub = cli.value_of("scrub-rrr")) {
    if (*scrub == "off") {
      options.scrub_rrr = ScrubMode::Off;
    } else if (*scrub == "on") {
      options.scrub_rrr = ScrubMode::On;
    } else if (*scrub == "paranoid") {
      options.scrub_rrr = ScrubMode::Paranoid;
    } else {
      std::fprintf(stderr, "unknown --scrub-rrr '%s' (off|on|paranoid)\n",
                   scrub->c_str());
      std::exit(2);
    }
  }
  options.evict_stalled = cli.has_flag("evict-stalled");
  // Flags override the RIPPLES_CHECKPOINT_* environment (the defaults).
  if (auto dir = cli.value_of("checkpoint-dir")) options.checkpoint.dir = *dir;
  options.checkpoint.every = static_cast<std::uint32_t>(cli.get_bounded(
      "checkpoint-every", options.checkpoint.every, 1, UINT32_MAX));
  options.checkpoint.keep_last = static_cast<std::uint32_t>(cli.get_bounded(
      "checkpoint-keep", options.checkpoint.keep_last, 1, UINT32_MAX));
  if (cli.has_flag("resume")) options.checkpoint.resume = true;

  if (driver == "seq") return imm_sequential(graph, options);
  if (driver == "baseline") return imm_baseline_hypergraph(graph, options);
  if (driver == "mt") return imm_multithreaded(graph, options);
  if (driver == "dist") return imm_distributed(graph, options);
  if (driver == "dist-part") return imm_distributed_partitioned(graph, options);
  if (driver == "tim") {
    TimOptions tim;
    tim.epsilon = options.epsilon;
    tim.k = options.k;
    tim.model = model;
    tim.seed = seed;
    return tim_plus(graph, tim);
  }
  if (driver == "ris") {
    RisOptions ris;
    ris.epsilon = options.epsilon;
    ris.k = options.k;
    ris.model = model;
    ris.seed = seed;
    ris.budget_scale = cli.get("ris-budget-scale", 0.05);
    return ris_threshold(graph, ris);
  }
  std::fprintf(stderr, "unknown --driver '%s' "
                       "(seq|baseline|mt|dist|dist-part|tim|ris)\n",
               driver.c_str());
  std::exit(2);
}

void write_json(const std::string &path, const std::string &driver,
                const ImmResult &result, const InfluenceEstimate &influence,
                const GraphStats &stats) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  out << "{\n"
      << "  \"driver\": \"" << driver << "\",\n"
      << "  \"graph\": {\"vertices\": " << stats.num_vertices
      << ", \"edges\": " << stats.num_edges << "},\n"
      << "  \"theta\": " << result.theta << ",\n"
      << "  \"samples\": " << result.num_samples << ",\n"
      << "  \"coverage_fraction\": " << result.coverage_fraction << ",\n"
      << "  \"phases_seconds\": {"
      << "\"estimate_theta\": " << result.timers.total(Phase::EstimateTheta)
      << ", \"sample\": " << result.timers.total(Phase::Sample)
      << ", \"select_seeds\": " << result.timers.total(Phase::SelectSeeds)
      << ", \"other\": " << result.timers.total(Phase::Other) << "},\n"
      << "  \"rrr_peak_bytes\": " << result.rrr_peak_bytes << ",\n";
  if (influence.trials > 0)
    out << "  \"estimated_influence\": {\"mean\": " << influence.mean
        << ", \"std_error\": " << influence.std_error
        << ", \"trials\": " << influence.trials << "},\n";
  out << "  \"seeds\": [";
  for (std::size_t i = 0; i < result.seeds.size(); ++i)
    out << (i ? ", " : "") << result.seeds[i];
  out << "]\n}\n";
}

} // namespace

int main(int argc, char **argv) {
  using namespace ripples;
  CommandLine cli(argc, argv);
  if (cli.has_flag("help")) {
    std::puts("see the header comment of examples/imm_cli.cpp for usage");
    return 0;
  }

  const auto seed =
      static_cast<std::uint64_t>(cli.get_bounded("seed", 2019, 0, INT64_MAX));
  const DiffusionModel model = parse_model(cli.get("model", std::string("IC")));
  const std::string driver = cli.get("driver", std::string("mt"));
  // Enable metrics before the run so the report captures communication
  // volume and registry counters (RIPPLES_METRICS=1 works too).  The report
  // log flushes at exit, carrying the registry alongside the run report.
  const std::string report_path = cli.get("json-report", std::string());
  if (!report_path.empty()) metrics::write_reports_at_exit(report_path);
  // Span tracing is independent of metrics: RIPPLES_TRACE=1 (or =path)
  // works too; --trace <path> both enables it and names the output.
  const std::string trace_path = cli.get("trace", std::string());
  if (!trace_path.empty()) trace::set_enabled(true);
  // Background resource sampler: memory timeline in the report, counter
  // tracks in the trace.  Stopped before either artifact is written.
  if (cli.has_flag("profile-mem") || cli.value_of("profile-mem-hz"))
    ResourceSampler::instance().start(
        cli.get_bounded("profile-mem-hz", 10.0, 0.1, 1000.0));
  // Graceful shutdown: Ctrl-C or a scheduler's TERM writes any pending
  // checkpoint and flushes the report log and trace buffers before exiting
  // 128+signum, leaving the same resumable state a round boundary would.
  checkpoint::install_signal_flush();

  CsrGraph graph = [&] {
    try {
      return load_graph(cli, seed, model);
    } catch (const std::exception &error) {
      std::fprintf(stderr, "input rejected: %s\n", error.what());
      std::exit(2);
    }
  }();
  GraphStats stats = compute_stats(graph);
  std::printf("graph: %u vertices, %llu arcs | driver=%s model=%s\n",
              stats.num_vertices,
              static_cast<unsigned long long>(stats.num_edges), driver.c_str(),
              to_string(model));

  ImmResult result;
  try {
    result = run_driver(driver, graph, cli, model, seed);
  } catch (const std::exception &error) {
    // A failed run must still leave its diagnostics behind: a marked
    // partial report and whatever the trace ring buffers held when the
    // exception unwound the driver.
    std::fprintf(stderr, "run failed: %s\n", error.what());
    ResourceSampler::instance().stop(); // quiesce before the flushes below
    if (!report_path.empty()) {
      metrics::mark_run_failed(driver, error.what());
      if (metrics::flush_reports_now())
        std::fprintf(stderr, "[partial run report written to %s]\n",
                     report_path.c_str());
    }
    if (!trace_path.empty() && trace::write_json_file(trace_path))
      std::fprintf(stderr, "[partial trace written to %s]\n",
                   trace_path.c_str());
    return 1;
  }
  // The run is over: make the sampler quiescent so the explicit trace write
  // below sees a stable buffer (the report already snapshotted its timeline
  // at finalize).
  ResourceSampler::instance().stop();
  std::printf("theta=%llu samples=%llu coverage=%.3f\n",
              static_cast<unsigned long long>(result.theta),
              static_cast<unsigned long long>(result.num_samples),
              result.coverage_fraction);
  std::printf("phases: %s\n", result.timers.summary().c_str());
  std::printf("rrr storage peak: %s\n",
              format_bytes(result.rrr_peak_bytes).c_str());
  if (result.degraded)
    std::printf("degraded: memory budget reached; certified epsilon %.4f "
                "(requested %.4f)\n",
                result.epsilon_achieved, cli.get("epsilon", 0.5));

  InfluenceEstimate influence;
  const auto trials = static_cast<std::uint32_t>(
      cli.get_bounded("evaluate-trials", 0, 0, UINT32_MAX));
  if (trials > 0) {
    influence = estimate_influence(graph, result.seeds, model, trials, seed + 9);
    std::printf("estimated influence: %.1f +/- %.1f over %u trials\n",
                influence.mean, influence.std_error, influence.trials);
  }

  std::printf("seeds:");
  for (vertex_t s : result.seeds) std::printf(" %u", s);
  std::printf("\n");

  if (auto json = cli.value_of("json")) {
    write_json(*json, driver, result, influence, stats);
    std::printf("[json written to %s]\n", json->c_str());
  }
  if (!report_path.empty())
    std::printf("[run report will be written to %s]\n", report_path.c_str());
  if (!trace_path.empty()) {
    // Explicit write (the mpsim ranks have joined, so buffers are
    // quiescent) with a confirmation line; no atexit hook was armed.
    if (trace::write_json_file(trace_path))
      std::printf("[trace written to %s]\n", trace_path.c_str());
    else
      std::fprintf(stderr, "cannot write trace to %s\n", trace_path.c_str());
  }
  return 0;
}
