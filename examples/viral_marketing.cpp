/// \file viral_marketing.cpp
/// \brief Domain example: planning a viral-marketing campaign on a
/// social-network graph — the application that motivates influence
/// maximization in the paper's introduction.
///
/// The scenario: a marketer can give a free product to k users ("seeds")
/// and wants to maximize expected adoption under word-of-mouth diffusion
/// (Independent Cascade).  The example compares IMM against the cheap
/// industry heuristics (most-followed users = top degree; degree discount)
/// and against a CELF run on a subsampled budget, and sweeps k to expose
/// the diminishing-returns curve a marketer would use to pick a budget.
///
/// Usage:
///   viral_marketing [--dataset soc-Pokec] [--scale 0.005] [--epsilon 0.5]
///                   [--kmax 50] [--threads N] [--trials 500]
#include <cstdio>

#include "ripples/ripples.hpp"

int main(int argc, char **argv) {
  using namespace ripples;
  CommandLine cli(argc, argv);

  const std::string dataset = cli.get("dataset", std::string("soc-Pokec"));
  const double scale = cli.get("scale", 0.005);
  const double epsilon = cli.get("epsilon", 0.5);
  const auto kmax = static_cast<std::uint32_t>(cli.get("kmax", std::int64_t{50}));
  const auto threads = static_cast<unsigned>(cli.get("threads", std::int64_t{2}));
  const auto trials =
      static_cast<std::uint32_t>(cli.get("trials", std::int64_t{500}));
  const auto seed = static_cast<std::uint64_t>(cli.get("seed", std::int64_t{7}));

  CsrGraph graph = materialize(find_dataset(dataset), scale, seed);
  // Word-of-mouth edges: constant 5% adoption probability per contact (the
  // trivalency/constant family used throughout the IC literature).
  assign_constant_weights(graph, 0.05f);
  GraphStats stats = compute_stats(graph);
  std::printf("social network: %u users, %llu follow edges\n",
              stats.num_vertices, static_cast<unsigned long long>(stats.num_edges));

  // Run IMM once at the largest budget; greedy selection is nested, so
  // every prefix is the IMM solution for that smaller budget.
  ImmOptions options;
  options.epsilon = epsilon;
  options.k = kmax;
  options.seed = seed;
  options.num_threads = threads;
  ImmResult imm = imm_multithreaded(graph, options);
  std::printf("IMM: theta=%llu, %s\n",
              static_cast<unsigned long long>(imm.theta),
              imm.timers.summary().c_str());

  std::vector<vertex_t> by_degree = top_degree_seeds(graph, kmax);
  std::vector<vertex_t> by_discount = degree_discount_seeds(graph, kmax, 0.05);

  Table table("expected adopters by seeding strategy and budget k",
              {"k", "IMM", "TopDegree", "DegreeDiscount"});
  for (std::uint32_t k = kmax / 5; k <= kmax; k += kmax / 5) {
    auto eval = [&](std::span<const vertex_t> seeds) {
      return estimate_influence(graph, seeds.subspan(0, k),
                                DiffusionModel::IndependentCascade, trials,
                                seed + 13)
          .mean;
    };
    table.new_row()
        .add(k)
        .add(eval(imm.seeds), 1)
        .add(eval(by_degree), 1)
        .add(eval(by_discount), 1);
  }
  table.emit(cli.get("csv", std::string()));

  std::printf("\nIMM plans the campaign with a (1-1/e-%.2f) guarantee; the\n"
              "heuristics are cheaper but can lose adopters by clustering\n"
              "seeds among redundant hubs.\n",
              epsilon);
  return 0;
}
