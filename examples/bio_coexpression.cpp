/// \file bio_coexpression.cpp
/// \brief Domain example: the Section 5 biology workflow as a user would
/// run it — infer a co-expression network from (synthetic) multi-omics
/// data, find the most influential features with IMM, and compare the
/// result against classical centrality rankings via pathway enrichment.
///
/// Usage:
///   bio_coexpression [--features 800] [--samples 60] [--modules 6]
///                    [-k 36] [--threads N] [--seed S]
#include <cstdio>
#include <set>

#include "ripples/ripples.hpp"

int main(int argc, char **argv) {
  using namespace ripples;
  CommandLine cli(argc, argv);

  bio::ExpressionConfig expression;
  expression.num_features =
      static_cast<std::uint32_t>(cli.get("features", std::int64_t{800}));
  expression.num_samples =
      static_cast<std::uint32_t>(cli.get("samples", std::int64_t{60}));
  expression.num_modules =
      static_cast<std::uint32_t>(cli.get("modules", std::int64_t{4}));
  expression.module_fraction = cli.get("module-fraction", 0.225);
  expression.seed = static_cast<std::uint64_t>(cli.get("seed", std::int64_t{42}));
  const auto k = static_cast<std::uint32_t>(cli.get("k", std::int64_t{32}));
  const auto threads = static_cast<unsigned>(cli.get("threads", std::int64_t{2}));

  // 1. "Measure" abundances: a feature x sample matrix with planted
  //    co-expression modules (stand-in for the paper's tumor / soil data).
  bio::ExpressionMatrix matrix = bio::synthesize_expression(expression);
  std::printf("expression matrix: %u features x %u samples, %u planted modules\n",
              matrix.num_features(), matrix.num_samples(),
              expression.num_modules);

  // 2. Infer the co-expression network (GENIE3 stand-in) and calibrate the
  //    relevance scores into activation probabilities.
  bio::InferenceConfig inference;
  inference.edges_per_target = 6;
  inference.min_abs_correlation = 0.5;
  CsrGraph graph(bio::infer_coexpression_network(matrix, inference));
  graph.transform_weights([](float w) { return 0.12f * w; });
  std::printf("inferred network: %llu weighted regulator->target edges\n",
              static_cast<unsigned long long>(graph.num_edges()));

  // 3. Influential features by IMM vs classical centrality.
  ImmOptions options;
  options.epsilon = 0.5;
  options.k = k;
  options.seed = expression.seed + 1;
  options.num_threads = threads;
  ImmResult imm = imm_multithreaded(graph, options);

  std::vector<std::uint32_t> degree = degree_centrality(graph);
  auto degree_top = top_k_by_score(std::span<const std::uint32_t>(degree), k);
  std::vector<double> betweenness = betweenness_centrality(graph);
  auto betweenness_top = top_k_by_score(std::span<const double>(betweenness), k);

  // 4. Pathway enrichment of each top-k set (Fisher + BH), against a
  //    pathway database aligned with the planted modules.
  bio::PathwayConfig pathway_config;
  pathway_config.member_fraction = 0.8;
  pathway_config.num_random_pathways = 20;
  bio::PathwayDatabase database =
      bio::synthesize_pathways(matrix, pathway_config);

  Table table("top-" + std::to_string(k) + " feature enrichment by method",
              {"Method", "SignificantPathways", "BestAdjustedP"});
  auto report = [&](const char *method, std::span<const vertex_t> picks) {
    std::vector<std::uint32_t> selected(picks.begin(), picks.end());
    auto rows = bio::enrich(selected, database, matrix.num_features());
    table.new_row()
        .add(method)
        .add(bio::count_significant(rows, 0.05))
        .add(rows.empty() ? 1.0 : rows[0].p_adjusted, 4);
  };
  report("IMM", imm.seeds);
  report("degree", degree_top);
  report("betweenness", betweenness_top);
  table.emit(cli.get("csv", std::string()));

  std::set<vertex_t> imm_set(imm.seeds.begin(), imm.seeds.end());
  std::size_t shared = 0;
  for (vertex_t v : degree_top) shared += imm_set.count(v);
  std::printf("\nIMM and degree share %zu of their top-%u picks — the\n"
              "complementarity the paper reports (9/30 on the soil data).\n",
              shared, k);
  return 0;
}
