/// \file quickstart.cpp
/// \brief Minimal end-to-end tour of the library: build a graph, run IMM,
/// evaluate the selected seed set.
///
/// Usage:
///   quickstart [--dataset cit-HepTh] [--scale 0.1] [--epsilon 0.5] [-k 50]
///              [--model IC|LT] [--threads N] [--seed S]
#include <cstdio>

#include "ripples/ripples.hpp"

int main(int argc, char **argv) {
  using namespace ripples;
  CommandLine cli(argc, argv);

  const std::string dataset = cli.get("dataset", std::string("cit-HepTh"));
  const double scale = cli.get("scale", 0.1);
  const double epsilon = cli.get("epsilon", 0.5);
  const auto k = static_cast<std::uint32_t>(cli.get("k", std::int64_t{50}));
  const DiffusionModel model = parse_model(cli.get("model", std::string("IC")));
  const auto threads = static_cast<unsigned>(cli.get("threads", std::int64_t{2}));
  const auto seed = static_cast<std::uint64_t>(cli.get("seed", std::int64_t{2019}));

  // 1. Build the input graph: a SNAP surrogate from the registry (drop the
  //    real SNAP file into --snap-dir to use the genuine dataset).
  CsrGraph graph = materialize(find_dataset(dataset), scale, seed,
                               cli.get("snap-dir", std::string()));

  // 2. Assign activation probabilities exactly as the paper does: uniform
  //    [0,1) for IC; additionally renormalized per in-neighborhood for LT.
  assign_uniform_weights(graph, seed);
  if (model == DiffusionModel::LinearThreshold)
    renormalize_linear_threshold(graph);

  GraphStats stats = compute_stats(graph);
  std::printf("graph: %s (scale %.3f): %u vertices, %llu arcs, avg degree %.2f\n",
              dataset.c_str(), scale, stats.num_vertices,
              static_cast<unsigned long long>(stats.num_edges),
              stats.avg_total_degree);

  // 3. Run the multithreaded IMM driver (Algorithm 1).
  ImmOptions options;
  options.epsilon = epsilon;
  options.k = k;
  options.model = model;
  options.seed = seed;
  options.num_threads = threads;
  ImmResult result = imm_multithreaded(graph, options);

  std::printf("theta=%llu samples=%llu  phases: %s\n",
              static_cast<unsigned long long>(result.theta),
              static_cast<unsigned long long>(result.num_samples),
              result.timers.summary().c_str());

  // 4. Evaluate the seed set: Monte-Carlo estimate of E[|I(S)|].
  InfluenceEstimate influence =
      estimate_influence(graph, result.seeds, model, 1000, seed + 1);
  std::printf("selected %zu seeds; estimated influence %.1f +/- %.1f vertices "
              "(%.1f%% of the graph)\n",
              result.seeds.size(), influence.mean, influence.std_error,
              100.0 * influence.mean / stats.num_vertices);

  std::printf("seeds:");
  for (std::size_t i = 0; i < result.seeds.size() && i < 10; ++i)
    std::printf(" %u", result.seeds[i]);
  if (result.seeds.size() > 10) std::printf(" ...");
  std::printf("\n");
  return 0;
}
