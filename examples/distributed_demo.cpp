/// \file distributed_demo.cpp
/// \brief Walkthrough of the distributed implementation (Section 3.2):
/// runs IMM over an increasing number of mpsim ranks, verifies that every
/// rank count returns the identical seed set (the stream-splitting
/// guarantee), and prints the communication/computation structure.
///
/// Usage:
///   distributed_demo [--dataset com-YouTube] [--scale 0.002]
///                    [--epsilon 0.3] [-k 50] [--max-ranks 8]
///                    [--rng counter|leapfrog]
#include <cstdio>

#include "ripples/ripples.hpp"

int main(int argc, char **argv) {
  using namespace ripples;
  CommandLine cli(argc, argv);

  const std::string dataset = cli.get("dataset", std::string("com-YouTube"));
  const double scale = cli.get("scale", 0.002);
  const double epsilon = cli.get("epsilon", 0.3);
  const auto k = static_cast<std::uint32_t>(cli.get("k", std::int64_t{50}));
  const int max_ranks = static_cast<int>(cli.get("max-ranks", std::int64_t{8}));
  const auto seed = static_cast<std::uint64_t>(cli.get("seed", std::int64_t{3}));
  const std::string rng = cli.get("rng", std::string("counter"));

  CsrGraph graph = materialize(find_dataset(dataset), scale, seed);
  assign_uniform_weights(graph, seed + 1);
  GraphStats stats = compute_stats(graph);
  std::printf("graph: %u vertices, %llu arcs (replicated on every rank, as\n"
              "in the paper's layout)\n",
              stats.num_vertices, static_cast<unsigned long long>(stats.num_edges));

  ImmOptions options;
  options.epsilon = epsilon;
  options.k = k;
  options.seed = seed;
  options.rng_mode =
      rng == "leapfrog" ? RngMode::LeapfrogLcg : RngMode::CounterSequence;

  Table table("IMM_dist across rank counts",
              {"Ranks", "Theta", "Samples/rank", "Total(s)", "SeedsMatchP1"});
  std::vector<vertex_t> reference;
  for (int ranks = 1; ranks <= max_ranks; ranks *= 2) {
    options.num_ranks = ranks;
    ImmResult result = imm_distributed(graph, options);
    if (ranks == 1) reference = result.seeds;
    table.new_row()
        .add(ranks)
        .add(result.theta)
        .add(result.num_samples / static_cast<std::uint64_t>(ranks))
        .add(result.timers.total(), 3)
        .add(result.seeds == reference ? "yes" : "no");
  }
  table.emit(cli.get("csv", std::string()));

  std::printf(
      "\nStructure per run (Section 3.2): every rank generates theta/p\n"
      "samples from its own random substream (%s mode), then each of the k\n"
      "greedy rounds performs one All-Reduce over the %u-entry counter\n"
      "vector; seed choice and sample purging stay rank-local.\n"
      "With counter mode the seed set is identical for every rank count;\n"
      "with leapfrog mode it matches the paper's TRNG discipline (identical\n"
      "for a fixed p, statistically equivalent across p).\n",
      rng.c_str(), stats.num_vertices);
  return 0;
}
