// Tests for the memory-pressure resilience subsystem (DESIGN.md §12): the
// delta+varint compressed RRR representation, the MemoryTracker budget and
// sticky oom-fault semantics, the RRRStore degradation ladder, the
// certified-epsilon closed form, and end-to-end driver determinism under a
// budget and under forced compression.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "imm/budget.hpp"
#include "imm/imm.hpp"
#include "imm/rrr_collection.hpp"
#include "imm/select.hpp"
#include "imm/theta.hpp"
#include "support/memory.hpp"

namespace ripples {
namespace {

// --- compressed representation: round-trip properties ------------------------

std::vector<RRRSet> random_sets(std::size_t count, std::uint64_t seed,
                                vertex_t universe = 5000) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> size_dist(0, 40);
  std::uniform_int_distribution<vertex_t> member_dist(0, universe - 1);
  std::vector<RRRSet> sets(count);
  for (RRRSet &set : sets) {
    std::set<vertex_t> members;
    const std::size_t want = size_dist(rng);
    while (members.size() < want) members.insert(member_dist(rng));
    set.assign(members.begin(), members.end());
  }
  return sets;
}

TEST(CompressedRRR, RoundTripsRandomSetsExactly) {
  const std::vector<RRRSet> sets = random_sets(1000, 99);
  CompressedRRRCollection compressed;
  std::size_t associations = 0;
  for (const RRRSet &set : sets) {
    compressed.append(set);
    associations += set.size();
  }
  ASSERT_EQ(compressed.size(), sets.size());
  EXPECT_EQ(compressed.total_associations(), associations);

  std::vector<vertex_t> decoded;
  for (std::size_t j = 0; j < sets.size(); ++j) {
    compressed.decode_set(j, decoded);
    EXPECT_EQ(decoded, sets[j]) << "set " << j;
  }
}

TEST(CompressedRRR, RoundTripsEdgeCaseSets) {
  // Empty set, singleton, adjacent ids (delta 1), and ids at the top of the
  // 32-bit range (worst-case varint width) all survive the codec.
  const std::vector<RRRSet> sets = {
      {},
      {7},
      {0, 1, 2, 3, 4},
      {0},
      {4294967290u, 4294967294u, 4294967295u},
      {},
      {123456789u},
  };
  CompressedRRRCollection compressed;
  for (const RRRSet &set : sets) compressed.append(set);
  ASSERT_EQ(compressed.size(), sets.size());

  std::vector<vertex_t> decoded;
  for (std::size_t j = 0; j < sets.size(); ++j) {
    compressed.decode_set(j, decoded);
    EXPECT_EQ(decoded, sets[j]) << "set " << j;
  }
}

TEST(CompressedRRR, CursorDecodeAndSkipAgreeWithRandomAccess) {
  const std::vector<RRRSet> sets = random_sets(700, 5);
  CompressedRRRCollection compressed;
  for (const RRRSet &set : sets) compressed.append(set);

  // Walk the arena decoding every other record and skipping the rest: the
  // skip path must land each subsequent record exactly where decode does.
  auto cursor = compressed.cursor();
  std::vector<vertex_t> decoded;
  for (std::size_t j = 0; j < sets.size(); ++j) {
    ASSERT_FALSE(cursor.at_end());
    const std::uint32_t count = cursor.next_header();
    ASSERT_EQ(count, sets[j].size());
    if (j % 2 == 0) {
      cursor.decode_members(count, decoded);
      EXPECT_EQ(decoded, sets[j]) << "set " << j;
    } else {
      cursor.skip_members(count);
    }
  }
  EXPECT_TRUE(cursor.at_end());
}

TEST(CompressedRRR, TruncatedVarintIsDiagnosedNotReadPastTheArena) {
  // Regression: a flipped continuation bit on the final byte of a record
  // used to march the cursor past the end of the payload (an out-of-bounds
  // read); the decoder must bound-check every byte and throw instead.
  CompressedRRRCollection compressed;
  const RRRSet set = {5};
  compressed.append(set);
  // Payload is [0x01 0x05] (count, first member); setting bit 7 of the last
  // byte turns the member varint into a continuation that never terminates.
  compressed.flip_payload_bit(15);

  std::vector<vertex_t> decoded;
  try {
    compressed.decode_set(0, decoded);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error &error) {
    EXPECT_NE(std::string(error.what()).find("truncated or corrupt"),
              std::string::npos)
        << error.what();
  }

  // The skip path (retired sets) takes the same guard.
  auto cursor = compressed.cursor();
  const std::uint32_t count = cursor.next_header();
  ASSERT_EQ(count, 1u);
  EXPECT_THROW(cursor.skip_members(count), std::runtime_error);
}

TEST(CompressedRRR, EmptyCollectionHasEmptyCursor) {
  CompressedRRRCollection compressed;
  EXPECT_EQ(compressed.size(), 0u);
  EXPECT_TRUE(compressed.cursor().at_end());
}

TEST(CompressedRRR, CompressesClusteredSetsAtLeastThreefold) {
  // RRR sets are BFS territories: their members cluster in id space, so
  // deltas are small and LEB128 packs them into 1-2 bytes against the 4+
  // bytes per member the plain representation holds (plus vector headers).
  // This is the representation claim behind the >= 3x acceptance criterion.
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<vertex_t> base_dist(0, 100000);
  std::uniform_int_distribution<vertex_t> delta_dist(1, 120);
  RRRCollection plain;
  CompressedRRRCollection compressed;
  for (int i = 0; i < 2000; ++i) {
    RRRSet set;
    vertex_t v = base_dist(rng);
    for (int j = 0; j < 50; ++j) {
      set.push_back(v);
      v += delta_dist(rng);
    }
    compressed.append(set);
    plain.add(std::move(set));
  }
  compressed.shrink_to_fit();
  EXPECT_GE(plain.footprint_bytes(), 3 * compressed.footprint_bytes())
      << "plain " << plain.footprint_bytes() << " vs compressed "
      << compressed.footprint_bytes();
}

// --- compressed selection kernels: equivalence with the plain kernels --------

TEST(CompressedKernels, CountAndSelectMatchPlainRepresentation) {
  constexpr vertex_t kVertices = 800;
  const std::vector<RRRSet> sets = random_sets(1500, 13, kVertices);
  RRRCollection plain;
  CompressedRRRCollection compressed;
  for (const RRRSet &set : sets) {
    compressed.append(set);
    plain.add(RRRSet(set));
  }

  std::vector<std::uint32_t> plain_counts(kVertices, 0);
  std::vector<std::uint32_t> compressed_counts(kVertices, 0);
  count_memberships(plain.sets(), plain_counts);
  count_memberships(compressed, compressed_counts);
  EXPECT_EQ(plain_counts, compressed_counts);

  const SelectionResult from_plain = select_seeds(kVertices, 10, plain.sets());
  const SelectionResult from_compressed =
      select_seeds_compressed(kVertices, 10, compressed);
  EXPECT_EQ(from_plain.seeds, from_compressed.seeds);
  EXPECT_EQ(from_plain.covered_samples, from_compressed.covered_samples);
}

TEST(CompressedKernels, RetireMatchesPlainIncludingPendingDeltas) {
  constexpr vertex_t kVertices = 500;
  const std::vector<RRRSet> sets = random_sets(900, 29, kVertices);
  RRRCollection plain;
  CompressedRRRCollection compressed;
  for (const RRRSet &set : sets) {
    compressed.append(set);
    plain.add(RRRSet(set));
  }

  std::vector<std::uint32_t> plain_counts(kVertices, 0);
  std::vector<std::uint32_t> compressed_counts(kVertices, 0);
  count_memberships(plain.sets(), plain_counts);
  count_memberships(compressed, compressed_counts);

  std::vector<std::uint8_t> plain_retired(sets.size(), 0);
  std::vector<std::uint8_t> compressed_retired(sets.size(), 0);
  std::vector<std::uint32_t> plain_pending(kVertices, 0);
  std::vector<std::uint32_t> compressed_pending(kVertices, 0);
  std::vector<vertex_t> plain_touched, compressed_touched;

  // Retire through a few greedy rounds, alternating the plain-delta and
  // pending-delta overloads.
  for (int round = 0; round < 4; ++round) {
    const std::vector<std::uint8_t> nothing_selected(kVertices, 0);
    const vertex_t seed = argmax_counter(plain_counts, nothing_selected);
    std::uint64_t from_plain = 0, from_compressed = 0;
    if (round % 2 == 0) {
      from_plain = retire_samples_containing(seed, plain.sets(), plain_counts,
                                             plain_retired);
      from_compressed = retire_samples_containing(
          seed, compressed, compressed_counts, compressed_retired);
    } else {
      from_plain = retire_samples_containing(seed, plain.sets(), plain_counts,
                                             plain_retired, plain_pending,
                                             plain_touched);
      from_compressed = retire_samples_containing(
          seed, compressed, compressed_counts, compressed_retired,
          compressed_pending, compressed_touched);
    }
    EXPECT_EQ(from_plain, from_compressed) << "round " << round;
    EXPECT_EQ(plain_counts, compressed_counts) << "round " << round;
    EXPECT_EQ(plain_retired, compressed_retired) << "round " << round;
  }
  EXPECT_EQ(plain_pending, compressed_pending);
  EXPECT_EQ(plain_touched, compressed_touched);
}

// --- MemoryTracker: budget and sticky oom faults ------------------------------

/// Restores the process-wide tracker to the unlimited, fault-free state
/// whatever the test did (the tracker is shared with every other test in
/// this binary).
struct ScopedTrackerReset {
  ~ScopedTrackerReset() {
    MemoryTracker::instance().set_budget(0);
    MemoryTracker::instance().clear_oom_faults();
  }
};

TEST(MemoryBudget, TryReserveEnforcesTheBudgetBoundary) {
  ScopedTrackerReset guard;
  MemoryTracker &tracker = MemoryTracker::instance();
  const std::size_t base = tracker.reserved_bytes();
  tracker.set_budget(base + 1000);

  EXPECT_TRUE(tracker.try_reserve(600, "test"));
  EXPECT_TRUE(tracker.try_reserve(400, "test")); // exactly at the budget
  EXPECT_FALSE(tracker.try_reserve(1, "test"));  // one byte over
  tracker.release(400);
  EXPECT_TRUE(tracker.try_reserve(400, "test"));
  tracker.release(1000);
  EXPECT_EQ(tracker.reserved_bytes(), base);
}

TEST(MemoryBudget, ZeroBudgetMeansUnlimited) {
  ScopedTrackerReset guard;
  MemoryTracker &tracker = MemoryTracker::instance();
  tracker.set_budget(0);
  EXPECT_TRUE(tracker.try_reserve(std::size_t{1} << 40, "test"));
  tracker.release(std::size_t{1} << 40);
}

TEST(MemoryBudget, OomFaultIsStickyFromItsSiteOn) {
  ScopedTrackerReset guard;
  MemoryTracker &tracker = MemoryTracker::instance();
  tracker.set_budget(0); // unlimited: only the fault can refuse
  tracker.install_oom_faults({{0, 2}});

  EXPECT_TRUE(tracker.try_reserve(10, "test"));  // site 0
  EXPECT_TRUE(tracker.try_reserve(10, "test"));  // site 1
  EXPECT_FALSE(tracker.try_reserve(10, "test")); // site 2: planned failure
  EXPECT_FALSE(tracker.try_reserve(10, "test")); // sticky ever after
  EXPECT_FALSE(tracker.try_reserve(0, "test"));
  tracker.release(20);

  // Clearing the plan resets both the site counter and the sticky state.
  tracker.clear_oom_faults();
  EXPECT_TRUE(tracker.try_reserve(10, "test"));
  tracker.release(10);
}

TEST(MemoryBudget, OomFaultOnAnotherRankDoesNotFireHere) {
  ScopedTrackerReset guard;
  MemoryTracker &tracker = MemoryTracker::instance();
  tracker.install_oom_faults({{3, 0}}); // this thread is trace rank 0
  EXPECT_TRUE(tracker.try_reserve(10, "test"));
  EXPECT_TRUE(tracker.try_reserve(10, "test"));
  tracker.release(20);
}

TEST(MemoryBudget, ExceptionNamesConsumerAndSizes) {
  const MemoryBudgetExceeded error("imm_test.rrr", 1024, 4096, 2048);
  EXPECT_EQ(error.consumer(), "imm_test.rrr");
  EXPECT_EQ(error.requested_bytes(), 1024u);
  const std::string what = error.what();
  EXPECT_NE(what.find("imm_test.rrr"), std::string::npos) << what;
}

// --- oom fault-plan parsing ---------------------------------------------------

TEST(MemoryBudget, OomFaultsFromPlanFiltersKinds) {
  const auto faults =
      detail::oom_faults_from_plan("rank=1,site=4,kind=oom;"
                                   "rank=0,site=2,kind=crash;"
                                   "rank=2,site=7,kind=oom");
  ASSERT_EQ(faults.size(), 2u);
  EXPECT_EQ(faults[0].rank, 1);
  EXPECT_EQ(faults[0].site, 4u);
  EXPECT_EQ(faults[1].rank, 2);
  EXPECT_EQ(faults[1].site, 7u);
}

// --- certified epsilon ---------------------------------------------------------

TEST(CertifiedEpsilon, FullSampleCountCertifiesTheRequestedAccuracy) {
  // With achieved == final theta the run owes nothing: the certified value
  // is exactly the requested epsilon.
  const double lb = 40.0;
  ThetaSchedule schedule(10000, 10, 0.5);
  const std::uint64_t full = schedule.final_theta(lb);
  EXPECT_DOUBLE_EQ(certified_epsilon(10000, 10, 0.5, 1.0, lb, full), 0.5);
  // More samples than needed still certify (clamped below at epsilon).
  EXPECT_DOUBLE_EQ(certified_epsilon(10000, 10, 0.5, 1.0, lb, 4 * full), 0.5);
}

TEST(CertifiedEpsilon, FewerSamplesCertifyMonotonicallyLooserAccuracy) {
  const double lb = 40.0;
  ThetaSchedule schedule(10000, 10, 0.5);
  const std::uint64_t full = schedule.final_theta(lb);
  double previous = 0.5;
  for (std::uint64_t achieved : {full / 2, full / 4, full / 16}) {
    const double certified =
        certified_epsilon(10000, 10, 0.5, 1.0, lb, achieved);
    EXPECT_GT(certified, previous) << achieved;
    previous = certified;
  }
  // A quarter of the samples certify about twice the epsilon (lambda* ~
  // 1/eps^2), up to the final-theta ceil.
  const double half_accuracy =
      certified_epsilon(10000, 10, 0.5, 1.0, lb, full / 4);
  EXPECT_NEAR(half_accuracy, 1.0, 0.05);
}

TEST(CertifiedEpsilon, ZeroSamplesCertifyNothing) {
  EXPECT_DOUBLE_EQ(certified_epsilon(10000, 10, 0.5, 1.0, 40.0, 0),
                   ThetaSchedule::kMaxCertifiedEpsilon);
}

// --- RRRStore: the degradation ladder -----------------------------------------

/// Deterministic generator: set j is {j % 97, j % 97 + 1, ..., j % 97 + 19}
/// — 20 members, delta-friendly, identical on every call so ladder
/// traversals are reproducible.
void fill_window(RRRCollection &scratch, std::uint64_t first,
                 std::uint64_t count) {
  for (std::uint64_t j = first; j < first + count; ++j) {
    RRRSet set(20);
    for (std::size_t i = 0; i < set.size(); ++i)
      set[i] = static_cast<vertex_t>(j % 97 + i);
    scratch.add(std::move(set));
  }
}

TEST(RRRStore, UngovernedlessBudgetAdmitsPlain) {
  ScopedTrackerReset guard;
  detail::ScopedBudget budget(0, CompressMode::Auto, {});
  EXPECT_FALSE(budget.governed());
}

TEST(RRRStore, AlwaysModeIsGovernedAndStartsCompressed) {
  ScopedTrackerReset guard;
  detail::ScopedBudget budget(0, CompressMode::Always, {});
  EXPECT_TRUE(budget.governed());

  detail::RRRStore::Policy policy;
  policy.compress = CompressMode::Always;
  detail::RRRStore store(policy);
  EXPECT_TRUE(store.using_compressed());
  store.extend_window(0, 500, fill_window);
  EXPECT_EQ(store.size(), 500u);
  EXPECT_EQ(store.total_associations(), 500u * 20);
}

TEST(RRRStore, SwitchesToCompressedUnderBudgetPressure) {
  ScopedTrackerReset guard;
  // Plain footprint of 4000 20-member sets is ~4000 * (24B header + 80B
  // payload + slack) > 400 KB; compressed it is well under 150 KB.  The
  // budget sits between the two, so the store must cross rung 1 and finish.
  detail::ScopedBudget budget(200 * 1024, CompressMode::Auto, {});
  ASSERT_TRUE(budget.governed());

  detail::RRRStore::Policy policy;
  policy.budget_bytes = 200 * 1024;
  policy.chunk = 512;
  detail::RRRStore store(policy);
  EXPECT_FALSE(store.using_compressed());
  store.extend_window(0, 4000, fill_window);
  EXPECT_TRUE(store.using_compressed());
  EXPECT_EQ(store.size(), 4000u);
  EXPECT_LE(store.footprint_bytes(), 200u * 1024);
}

TEST(RRRStore, CompressedSelectionMatchesPlainSelection) {
  ScopedTrackerReset guard;
  detail::ScopedBudget budget(0, CompressMode::Always, {});

  detail::RRRStore::Policy always;
  always.compress = CompressMode::Always;
  detail::RRRStore compressed_store(always);
  compressed_store.extend_window(0, 2000, fill_window);
  ASSERT_TRUE(compressed_store.using_compressed());

  RRRCollection plain;
  fill_window(plain, 0, 2000);
  const SelectionResult from_plain = select_seeds(120, 5, plain.sets());
  const SelectionResult from_store = compressed_store.select(120, 5, 1);
  EXPECT_EQ(from_store.seeds, from_plain.seeds);
  EXPECT_EQ(from_store.covered_samples, from_plain.covered_samples);
}

TEST(RRRStore, SoftRefusalRaisesBudgetEarlyStopWithAchievedCount) {
  ScopedTrackerReset guard;
  // A budget below even the compressed footprint: the ladder runs out and
  // the shared-memory policy raises the early-stop signal, reporting how
  // many samples were admitted before the wall.
  detail::ScopedBudget budget(2 * 1024, CompressMode::Auto, {});

  detail::RRRStore::Policy policy;
  policy.budget_bytes = 2 * 1024;
  policy.chunk = 64;
  detail::RRRStore store(policy);
  try {
    store.extend_window(0, 100000, fill_window);
    FAIL() << "an impossible budget was not refused";
  } catch (const detail::BudgetEarlyStop &stop) {
    EXPECT_EQ(stop.achieved, store.size());
    EXPECT_LT(stop.achieved, 100000u);
  }
}

TEST(RRRStore, HardRefusalThrowsDiagnosticNamingTheConsumer) {
  ScopedTrackerReset guard;
  detail::ScopedBudget budget(2 * 1024, CompressMode::Auto, {});

  detail::RRRStore::Policy policy;
  policy.budget_bytes = 2 * 1024;
  policy.chunk = 64;
  policy.hard_refusal = true;
  policy.consumer = "test_driver.rrr";
  detail::RRRStore store(policy);
  try {
    store.extend_window(0, 100000, fill_window);
    FAIL() << "an impossible budget was not refused";
  } catch (const MemoryBudgetExceeded &error) {
    EXPECT_EQ(error.consumer(), "test_driver.rrr");
  }
}

TEST(RRRStore, CompressOffSkipsTheCompressionRung) {
  ScopedTrackerReset guard;
  detail::ScopedBudget budget(2 * 1024, CompressMode::Off, {});

  detail::RRRStore::Policy policy;
  policy.budget_bytes = 2 * 1024;
  policy.compress = CompressMode::Off;
  policy.chunk = 64;
  detail::RRRStore store(policy);
  EXPECT_THROW(store.extend_window(0, 100000, fill_window),
               detail::BudgetEarlyStop);
  EXPECT_FALSE(store.using_compressed());
}

TEST(RRRStore, OomFaultAloneForcesGovernanceAndTripsTheLadder) {
  ScopedTrackerReset guard;
  // No budget at all: the planned fault is the only source of refusal, and
  // its sticky semantics march the ladder to the early stop.
  detail::ScopedBudget budget(0, CompressMode::Auto, {{0, 1}});
  ASSERT_TRUE(budget.governed());

  detail::RRRStore::Policy policy;
  policy.chunk = 64;
  detail::RRRStore store(policy);
  EXPECT_THROW(store.extend_window(0, 100000, fill_window),
               detail::BudgetEarlyStop);
  EXPECT_GT(store.size(), 0u); // site 0 succeeded before the fault
  EXPECT_LT(store.size(), 100000u);
}

// --- end-to-end drivers under the governor ------------------------------------

CsrGraph driver_graph() {
  CsrGraph graph(barabasi_albert(500, 3, 21));
  assign_uniform_weights(graph, 22);
  return graph;
}

ImmOptions driver_options() {
  ImmOptions options;
  options.epsilon = 0.5;
  options.k = 8;
  options.model = DiffusionModel::IndependentCascade;
  options.seed = 2019;
  options.mem_budget = 0;
  options.rrr_compress = CompressMode::Auto;
  options.fault_plan.clear();
  return options;
}

TEST(GovernedDrivers, GenerousBudgetMatchesTheUngovernedRun) {
  // A budget the run fits under must not perturb anything: same samples,
  // same seeds, not degraded — the governed store is a pure pass-through.
  CsrGraph graph = driver_graph();
  ImmOptions options = driver_options();
  const ImmResult plain = imm_sequential(graph, options);
  ASSERT_FALSE(plain.degraded);

  options.mem_budget = std::size_t{1} << 30;
  for (const ImmResult &governed :
       {imm_sequential(graph, options), imm_multithreaded(graph, options)}) {
    EXPECT_EQ(governed.seeds, plain.seeds);
    EXPECT_EQ(governed.theta, plain.theta);
    EXPECT_EQ(governed.num_samples, plain.num_samples);
    EXPECT_FALSE(governed.degraded);
    EXPECT_DOUBLE_EQ(governed.epsilon_achieved, options.epsilon);
  }
}

TEST(GovernedDrivers, CompressionBudgetMatchesSeedsAtLowerFootprint) {
  // A budget between the plain and compressed footprints: the run must
  // finish complete (every sample admitted, not degraded) with identical
  // seeds, having crossed to the compressed representation.
  CsrGraph graph = driver_graph();
  ImmOptions options = driver_options();
  const ImmResult plain = imm_sequential(graph, options);

  ImmOptions squeezed = options;
  squeezed.mem_budget = plain.rrr_peak_bytes / 2;
  const ImmResult governed = imm_sequential(graph, squeezed);
  EXPECT_FALSE(governed.degraded);
  EXPECT_EQ(governed.seeds, plain.seeds);
  EXPECT_EQ(governed.theta, plain.theta);
  EXPECT_EQ(governed.num_samples, plain.num_samples);
  EXPECT_LT(governed.rrr_peak_bytes, plain.rrr_peak_bytes);
}

TEST(GovernedDrivers, ImpossibleBudgetDegradesWithCertifiedEpsilon) {
  CsrGraph graph = driver_graph();
  ImmOptions options = driver_options();
  options.mem_budget = 16 * 1024;
  const ImmResult degraded = imm_sequential(graph, options);
  EXPECT_TRUE(degraded.degraded);
  EXPECT_GT(degraded.epsilon_achieved, options.epsilon);
  // Still a valid answer: k distinct seeds from the samples that fit.
  ASSERT_EQ(degraded.seeds.size(), options.k);
  std::set<vertex_t> unique(degraded.seeds.begin(), degraded.seeds.end());
  EXPECT_EQ(unique.size(), degraded.seeds.size());

  // The same squeeze is deterministic: rerunning reproduces both the seed
  // set and the certified accuracy bit for bit.
  const ImmResult again = imm_sequential(graph, options);
  EXPECT_EQ(again.seeds, degraded.seeds);
  EXPECT_EQ(again.num_samples, degraded.num_samples);
  EXPECT_DOUBLE_EQ(again.epsilon_achieved, degraded.epsilon_achieved);

  // And the multithreaded driver degrades to the same answer.
  ImmOptions mt = options;
  mt.num_threads = 3;
  const ImmResult threaded = imm_multithreaded(graph, mt);
  EXPECT_EQ(threaded.seeds, degraded.seeds);
  EXPECT_DOUBLE_EQ(threaded.epsilon_achieved, degraded.epsilon_achieved);
}

TEST(GovernedDrivers, DistributedRefusesAnImpossibleBudgetWithDiagnostic) {
  CsrGraph graph = driver_graph();
  ImmOptions options = driver_options();
  options.num_ranks = 2;
  options.mem_budget = 16 * 1024;
  try {
    (void)imm_distributed(graph, options);
    FAIL() << "an impossible budget was not refused";
  } catch (const std::exception &error) {
    EXPECT_NE(std::string(error.what()).find("memory budget exceeded"),
              std::string::npos)
        << error.what();
    EXPECT_NE(std::string(error.what()).find("imm_distributed.rrr"),
              std::string::npos)
        << error.what();
  }
}

} // namespace
} // namespace ripples
