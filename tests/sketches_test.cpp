// Tests for the combined bottom-k reachability sketches (Cohen et al.):
// exactness below the sketch capacity, estimator accuracy against the
// Monte-Carlo oracle, determinism, and ranking quality.
#include <gtest/gtest.h>

#include <algorithm>

#include "diffusion/simulate.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "imm/sketches.hpp"

namespace ripples {
namespace {

TEST(Sketches, ExactOnDeterministicPath) {
  // Path 0 -> 1 -> ... -> 9 with p = 1: vertex v reaches 10 - v vertices in
  // every instance.  With sketch capacity above n * instances the count is
  // exact, so the estimate equals the true influence exactly.
  CsrGraph graph(path_graph(10));
  assign_constant_weights(graph, 1.0f);
  SketchOptions options;
  options.num_instances = 4;
  options.sketch_size = 64; // larger than any reachable-pair count
  options.seed = 3;
  ReachabilitySketches sketches(graph, options);
  for (vertex_t v = 0; v < 10; ++v)
    EXPECT_DOUBLE_EQ(sketches.estimate_influence(v), 10.0 - v) << "v=" << v;
}

TEST(Sketches, SketchesAreSortedAndBounded) {
  CsrGraph graph(barabasi_albert(300, 3, 5));
  assign_uniform_weights(graph, 6);
  SketchOptions options;
  options.num_instances = 8;
  options.sketch_size = 16;
  ReachabilitySketches sketches(graph, options);
  for (vertex_t v = 0; v < graph.num_vertices(); ++v) {
    const auto &sketch = sketches.sketch_of(v);
    EXPECT_LE(sketch.size(), 16u);
    EXPECT_TRUE(std::is_sorted(sketch.begin(), sketch.end()));
    for (float rank : sketch) {
      EXPECT_GE(rank, 0.0f);
      EXPECT_LT(rank, 1.0f);
    }
  }
}

TEST(Sketches, IsolatedVertexHasInfluenceOne) {
  EdgeList list;
  list.num_vertices = 5;
  list.edges = {{0, 1, 0.5f}};
  CsrGraph graph(list);
  // Fewer reachable pairs (4: itself in each instance) than the sketch
  // capacity, so the count — and the estimate — is exact.
  SketchOptions options;
  options.num_instances = 4;
  options.sketch_size = 8;
  ReachabilitySketches sketches(graph, options);
  EXPECT_DOUBLE_EQ(sketches.estimate_influence(4), 1.0);
}

TEST(Sketches, EstimatesTrackMonteCarloOracle) {
  CsrGraph graph(barabasi_albert(400, 3, 7));
  assign_constant_weights(graph, 0.05f);
  SketchOptions options;
  options.num_instances = 96;
  options.sketch_size = 96;
  options.seed = 11;
  ReachabilitySketches sketches(graph, options);

  // Compare the sketch estimate with the MC estimate on a handful of
  // vertices spanning the degree range.
  for (vertex_t v : {0u, 5u, 50u, 200u, 399u}) {
    std::vector<vertex_t> single{v};
    double mc = estimate_influence(graph, single,
                                   DiffusionModel::IndependentCascade, 4000, 13)
                    .mean;
    double sketch = sketches.estimate_influence(v);
    EXPECT_NEAR(sketch, mc, std::max(1.0, 0.35 * mc)) << "v=" << v;
  }
}

TEST(Sketches, DeterministicInSeed) {
  CsrGraph graph(barabasi_albert(200, 3, 9));
  assign_uniform_weights(graph, 10);
  SketchOptions options;
  options.num_instances = 8;
  options.sketch_size = 16;
  ReachabilitySketches a(graph, options);
  ReachabilitySketches b(graph, options);
  for (vertex_t v = 0; v < graph.num_vertices(); ++v)
    EXPECT_EQ(a.sketch_of(v), b.sketch_of(v));
}

TEST(Sketches, TopSeedsFavorTheHub) {
  // Star with strong edges: the hub's influence dwarfs the leaves'.
  CsrGraph graph(star_graph(30, false));
  assign_constant_weights(graph, 0.9f);
  SketchOptions options;
  options.num_instances = 32;
  options.sketch_size = 64;
  ReachabilitySketches sketches(graph, options);
  std::vector<vertex_t> top = sketches.top_seeds(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0], 0u);
}

TEST(Sketches, TopSeedsRankingCorrelatesWithMc) {
  CsrGraph graph(barabasi_albert(300, 3, 15));
  assign_constant_weights(graph, 0.1f);
  SketchOptions options;
  options.num_instances = 64;
  options.sketch_size = 64;
  ReachabilitySketches sketches(graph, options);
  std::vector<vertex_t> top = sketches.top_seeds(10);
  // The sketch top-10 must influence far more than an arbitrary tail set.
  std::vector<vertex_t> tail;
  for (vertex_t v = 250; v < 260; ++v) tail.push_back(v);
  double sigma_top = estimate_influence(graph, top,
                                        DiffusionModel::IndependentCascade,
                                        2000, 17)
                         .mean;
  double sigma_tail = estimate_influence(graph, tail,
                                         DiffusionModel::IndependentCascade,
                                         2000, 17)
                          .mean;
  EXPECT_GT(sigma_top, sigma_tail);
}

TEST(Sketches, WorksUnderLinearThreshold) {
  CsrGraph graph(barabasi_albert(200, 3, 19));
  assign_uniform_weights(graph, 20);
  renormalize_linear_threshold(graph);
  SketchOptions options;
  options.model = DiffusionModel::LinearThreshold;
  options.num_instances = 16;
  options.sketch_size = 32;
  ReachabilitySketches sketches(graph, options);
  for (vertex_t v = 0; v < graph.num_vertices(); ++v)
    EXPECT_GE(sketches.estimate_influence(v), 1.0 - 1e-9);
}

} // namespace
} // namespace ripples
