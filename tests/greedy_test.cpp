// Tests for the pre-RIS baselines: Monte-Carlo greedy, CELF, and the degree
// heuristics.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "diffusion/simulate.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "imm/greedy.hpp"

namespace ripples {
namespace {

TEST(MonteCarloGreedy, PicksTheDominantHub) {
  // Star with strong hub edges: the hub is the unique best single seed.
  CsrGraph graph(star_graph(20, false));
  assign_constant_weights(graph, 0.9f);
  GreedyOptions options;
  options.k = 1;
  options.trials = 200;
  std::vector<vertex_t> seeds = monte_carlo_greedy(graph, options);
  ASSERT_EQ(seeds.size(), 1u);
  EXPECT_EQ(seeds[0], 0u);
}

TEST(MonteCarloGreedy, ReturnsDistinctSeeds) {
  CsrGraph graph(erdos_renyi(40, 200, 3));
  assign_constant_weights(graph, 0.1f);
  GreedyOptions options;
  options.k = 5;
  options.trials = 100;
  std::vector<vertex_t> seeds = monte_carlo_greedy(graph, options);
  std::set<vertex_t> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(CelfGreedy, MatchesPlainGreedyOutput) {
  // CELF is an exact acceleration: with the same oracle it must select the
  // same seeds as the plain greedy.
  CsrGraph graph(barabasi_albert(60, 2, 7));
  assign_constant_weights(graph, 0.2f);
  GreedyOptions options;
  options.k = 4;
  options.trials = 400;
  options.seed = 13;
  std::vector<vertex_t> plain = monte_carlo_greedy(graph, options);
  std::vector<vertex_t> lazy = celf_greedy(graph, options);
  EXPECT_EQ(plain, lazy);
}

TEST(CelfGreedy, HubFirstOnTwoStars) {
  // Two stars, hubs 0 (big) and 10 (small): CELF must take hub 0 first,
  // hub 10 second.
  EdgeList list;
  list.num_vertices = 18;
  for (vertex_t leaf = 1; leaf <= 9; ++leaf) list.edges.push_back({0, leaf, 1.0f});
  for (vertex_t leaf = 11; leaf <= 17; ++leaf)
    list.edges.push_back({10, leaf, 1.0f});
  CsrGraph graph(list);
  GreedyOptions options;
  options.k = 2;
  options.trials = 50;
  std::vector<vertex_t> seeds = celf_greedy(graph, options);
  ASSERT_EQ(seeds.size(), 2u);
  EXPECT_EQ(seeds[0], 0u);
  EXPECT_EQ(seeds[1], 10u);
}

TEST(CelfPlusPlus, MatchesCelfOutput) {
  // CELF++ is an exact acceleration of CELF: identical seeds under the
  // same deterministic oracle.
  CsrGraph graph(barabasi_albert(60, 2, 7));
  assign_constant_weights(graph, 0.2f);
  GreedyOptions options;
  options.k = 4;
  options.trials = 400;
  options.seed = 13;
  std::vector<vertex_t> lazy = celf_greedy(graph, options);
  std::vector<vertex_t> look_ahead = celf_plus_plus(graph, options);
  EXPECT_EQ(lazy, look_ahead);
}

TEST(CelfPlusPlus, MatchesCelfOnRandomGraphs) {
  for (std::uint64_t seed : {3u, 9u, 21u}) {
    CsrGraph graph(erdos_renyi(50, 250, seed));
    assign_constant_weights(graph, 0.15f);
    GreedyOptions options;
    options.k = 5;
    options.trials = 200;
    options.seed = seed;
    EXPECT_EQ(celf_greedy(graph, options), celf_plus_plus(graph, options))
        << "seed " << seed;
  }
}

TEST(OracleEvaluations, CelfNeverExceedsPlainGreedy) {
  CsrGraph graph(barabasi_albert(50, 2, 11));
  assign_constant_weights(graph, 0.1f);
  GreedyOptions options;
  options.k = 5;
  options.trials = 100;
  (void)monte_carlo_greedy(graph, options);
  std::uint64_t greedy_calls = last_oracle_evaluations();
  (void)celf_greedy(graph, options);
  std::uint64_t celf_calls = last_oracle_evaluations();
  EXPECT_LE(celf_calls, greedy_calls);
  // Plain greedy evaluates every remaining vertex every round.
  EXPECT_GE(greedy_calls, 5u * 46u);
}

TEST(OracleEvaluations, CelfPlusPlusPaysDoubleInitialPass) {
  CsrGraph graph(barabasi_albert(50, 2, 11));
  assign_constant_weights(graph, 0.1f);
  GreedyOptions options;
  options.k = 3;
  options.trials = 100;
  (void)celf_plus_plus(graph, options);
  std::uint64_t calls = last_oracle_evaluations();
  // Initial pass: sigma({v}) for all 50 plus sigma({best, v}) for 49.
  EXPECT_GE(calls, 99u);
}

TEST(TopDegree, RanksByOutDegree) {
  EdgeList list;
  list.num_vertices = 5;
  // out-degrees: 0 -> 3, 1 -> 2, 2 -> 1, 3 -> 0, 4 -> 0
  list.edges = {{0, 1, 1}, {0, 2, 1}, {0, 3, 1}, {1, 2, 1},
                {1, 3, 1}, {2, 3, 1}};
  CsrGraph graph(list);
  std::vector<vertex_t> top = top_degree_seeds(graph, 3);
  EXPECT_EQ(top, (std::vector<vertex_t>{0, 1, 2}));
}

TEST(TopDegree, TieBreaksToSmallerId) {
  CsrGraph graph(complete_graph(6)); // all degrees equal
  std::vector<vertex_t> top = top_degree_seeds(graph, 3);
  EXPECT_EQ(top, (std::vector<vertex_t>{0, 1, 2}));
}

TEST(DegreeDiscount, FirstPickIsMaxDegree) {
  CsrGraph graph(barabasi_albert(200, 3, 9));
  std::vector<vertex_t> dd = degree_discount_seeds(graph, 1, 0.1);
  std::vector<vertex_t> top = top_degree_seeds(graph, 1);
  EXPECT_EQ(dd[0], top[0]);
}

TEST(DegreeDiscount, AvoidsClusteredSeeds) {
  // Clique of high-degree vertices vs a spread of independent mid-degree
  // stars: after the first clique pick, discounting must prefer the stars
  // over a second clique member.
  EdgeList list;
  list.num_vertices = 30;
  // Clique on 0..4 (degree 4 each within clique) plus two extra leaves each
  // to give them top degree 6.
  for (vertex_t u = 0; u < 5; ++u)
    for (vertex_t v = 0; v < 5; ++v)
      if (u != v) list.edges.push_back({u, v, 1.0f});
  vertex_t leaf = 5;
  for (vertex_t u = 0; u < 5; ++u) {
    list.edges.push_back({u, leaf++, 1.0f});
    list.edges.push_back({u, leaf++, 1.0f});
  }
  // Independent star at 20 with degree 5.
  for (vertex_t j = 21; j <= 25; ++j) list.edges.push_back({20, j, 1.0f});
  CsrGraph graph(list);

  std::vector<vertex_t> seeds = degree_discount_seeds(graph, 2, 0.5);
  EXPECT_LT(seeds[0], 5u); // a clique member goes first (degree 6)
  EXPECT_EQ(seeds[1], 20u) // then the independent star, not a clique sibling
      << "degree discount failed to penalize the clique";
}

TEST(DegreeDiscount, ReturnsDistinctSeeds) {
  CsrGraph graph(barabasi_albert(300, 3, 11));
  std::vector<vertex_t> seeds = degree_discount_seeds(graph, 20, 0.1);
  std::set<vertex_t> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), 20u);
}

TEST(Heuristics, QualityOrderOnScaleFreeGraph) {
  // Influence quality sanity: degree-based seeds beat arbitrary low-degree
  // seeds under IC on a hub-dominated graph.
  CsrGraph graph(barabasi_albert(400, 3, 13));
  assign_constant_weights(graph, 0.1f);
  std::vector<vertex_t> degree_seeds = top_degree_seeds(graph, 5);

  // The five lowest-out-degree vertices.
  std::vector<vertex_t> low(graph.num_vertices());
  for (vertex_t v = 0; v < graph.num_vertices(); ++v) low[v] = v;
  std::sort(low.begin(), low.end(), [&](vertex_t a, vertex_t b) {
    return graph.out_degree(a) < graph.out_degree(b);
  });
  low.resize(5);

  double sigma_degree =
      estimate_influence(graph, degree_seeds,
                         DiffusionModel::IndependentCascade, 3000, 17)
          .mean;
  double sigma_low = estimate_influence(graph, low,
                                        DiffusionModel::IndependentCascade,
                                        3000, 17)
                         .mean;
  EXPECT_GT(sigma_degree, sigma_low);
}

} // namespace
} // namespace ripples
