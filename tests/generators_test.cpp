// Tests for the synthetic graph generators and the SNAP-surrogate registry.
#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"
#include "graph/registry.hpp"
#include "graph/stats.hpp"

namespace ripples {
namespace {

bool has_self_loop(const EdgeList &list) {
  for (const WeightedEdge &e : list.edges)
    if (e.source == e.destination) return true;
  return false;
}

bool endpoints_in_range(const EdgeList &list) {
  for (const WeightedEdge &e : list.edges)
    if (e.source >= list.num_vertices || e.destination >= list.num_vertices)
      return false;
  return true;
}

std::size_t duplicate_arcs(const EdgeList &list) {
  std::set<std::pair<vertex_t, vertex_t>> seen;
  std::size_t duplicates = 0;
  for (const WeightedEdge &e : list.edges)
    if (!seen.insert({e.source, e.destination}).second) ++duplicates;
  return duplicates;
}

// --- Erdos-Renyi -----------------------------------------------------------------

TEST(ErdosRenyi, ProducesExactEdgeCount) {
  EdgeList list = erdos_renyi(500, 4000, 1);
  EXPECT_EQ(list.num_vertices, 500u);
  EXPECT_EQ(list.edges.size(), 4000u);
  EXPECT_TRUE(endpoints_in_range(list));
  EXPECT_FALSE(has_self_loop(list));
  EXPECT_EQ(duplicate_arcs(list), 0u);
}

TEST(ErdosRenyi, DeterministicInSeed) {
  EdgeList a = erdos_renyi(100, 500, 7);
  EdgeList b = erdos_renyi(100, 500, 7);
  EXPECT_EQ(a.edges, b.edges);
  EdgeList c = erdos_renyi(100, 500, 8);
  EXPECT_NE(a.edges, c.edges);
}

TEST(ErdosRenyi, SaturatedGraphIsComplete) {
  EdgeList list = erdos_renyi(10, 90, 3); // n(n-1) = 90 arcs: all of them
  EXPECT_EQ(list.edges.size(), 90u);
  EXPECT_EQ(duplicate_arcs(list), 0u);
}

// --- Barabasi-Albert ---------------------------------------------------------------

TEST(BarabasiAlbert, EmitsBothDirectionsAndExpectedDensity) {
  EdgeList list = barabasi_albert(1000, 3, 2);
  EXPECT_TRUE(endpoints_in_range(list));
  EXPECT_FALSE(has_self_loop(list));
  // Arc count ~ 2 * (seed clique + 3 per subsequent vertex).
  std::size_t expected_undirected = 6 + (1000 - 4) * 3;
  EXPECT_EQ(list.edges.size(), 2 * expected_undirected);

  // Every arc must have its reverse (undirected emission).
  std::set<std::pair<vertex_t, vertex_t>> arcs;
  for (const WeightedEdge &e : list.edges) arcs.insert({e.source, e.destination});
  for (const WeightedEdge &e : list.edges)
    EXPECT_TRUE(arcs.count({e.destination, e.source}));
}

TEST(BarabasiAlbert, ProducesSkewedDegrees) {
  CsrGraph graph(barabasi_albert(2000, 3, 9));
  GraphStats stats = compute_stats(graph);
  // Preferential attachment: the hub degree dwarfs the average.
  EXPECT_GT(static_cast<double>(stats.max_out_degree),
            5.0 * stats.avg_out_degree);
}

// --- Watts-Strogatz ---------------------------------------------------------------

TEST(WattsStrogatz, KeepsDegreeMassAndBidirectionality) {
  EdgeList list = watts_strogatz(400, 4, 0.1, 11);
  EXPECT_TRUE(endpoints_in_range(list));
  EXPECT_FALSE(has_self_loop(list));
  // Ring with 4 per side: 400*4 undirected edges, two arcs each.
  EXPECT_EQ(list.edges.size(), 2u * 400 * 4);
}

TEST(WattsStrogatz, BetaZeroIsPureLattice) {
  EdgeList list = watts_strogatz(50, 2, 0.0, 3);
  CsrGraph graph(list);
  for (vertex_t v = 0; v < 50; ++v) EXPECT_EQ(graph.out_degree(v), 4u);
}

// --- R-MAT -------------------------------------------------------------------------

TEST(Rmat, ProducesRequestedScaleAndFactor) {
  RmatParams params;
  params.scale = 10;
  params.edge_factor = 8;
  EdgeList list = rmat(params, 17);
  EXPECT_EQ(list.num_vertices, 1024u);
  EXPECT_EQ(list.edges.size(), 8u * 1024);
  EXPECT_TRUE(endpoints_in_range(list));
  EXPECT_FALSE(has_self_loop(list));
  EXPECT_EQ(duplicate_arcs(list), 0u);
}

TEST(Rmat, SkewedQuadrantsYieldHeavyTail) {
  RmatParams params;
  params.scale = 12;
  params.edge_factor = 12;
  CsrGraph graph(rmat(params, 23));
  GraphStats stats = compute_stats(graph);
  EXPECT_GT(static_cast<double>(stats.max_total_degree),
            10.0 * stats.avg_total_degree);
}

TEST(Rmat, UndirectedEmitsReverseArcs) {
  RmatParams params;
  params.scale = 9;
  params.edge_factor = 4;
  params.undirected = true;
  EdgeList list = rmat(params, 29);
  std::set<std::pair<vertex_t, vertex_t>> arcs;
  for (const WeightedEdge &e : list.edges) arcs.insert({e.source, e.destination});
  std::size_t with_reverse = 0;
  for (const WeightedEdge &e : list.edges)
    if (arcs.count({e.destination, e.source})) ++with_reverse;
  // The generator inserts the reverse arc unless it collides with an
  // existing one; near-all arcs must be paired.
  EXPECT_GT(static_cast<double>(with_reverse),
            0.95 * static_cast<double>(list.edges.size()));
}

TEST(Rmat, DeterministicInSeed) {
  RmatParams params;
  params.scale = 9;
  EXPECT_EQ(rmat(params, 5).edges, rmat(params, 5).edges);
  EXPECT_NE(rmat(params, 5).edges, rmat(params, 6).edges);
}

// --- deterministic small topologies ---------------------------------------------

TEST(FixedTopologies, PathGraph) {
  CsrGraph graph(path_graph(5));
  EXPECT_EQ(graph.num_edges(), 4u);
  EXPECT_EQ(graph.out_degree(0), 1u);
  EXPECT_EQ(graph.out_degree(4), 0u);
  EXPECT_EQ(graph.in_degree(0), 0u);
}

TEST(FixedTopologies, CompleteGraph) {
  CsrGraph graph(complete_graph(6));
  EXPECT_EQ(graph.num_edges(), 30u);
  for (vertex_t v = 0; v < 6; ++v) {
    EXPECT_EQ(graph.out_degree(v), 5u);
    EXPECT_EQ(graph.in_degree(v), 5u);
  }
}

TEST(FixedTopologies, StarGraph) {
  CsrGraph one_way(star_graph(8, false));
  EXPECT_EQ(one_way.out_degree(0), 8u);
  EXPECT_EQ(one_way.in_degree(0), 0u);
  CsrGraph two_way(star_graph(8, true));
  EXPECT_EQ(two_way.in_degree(0), 8u);
}

TEST(FixedTopologies, Grid2d) {
  CsrGraph graph(grid_2d(3, 4));
  EXPECT_EQ(graph.num_vertices(), 12u);
  // 3*3 horizontal + 2*4 vertical undirected edges, two arcs each.
  EXPECT_EQ(graph.num_edges(), 2u * (3 * 3 + 2 * 4));
}

// --- registry ----------------------------------------------------------------------

TEST(Registry, ContainsTheEightPaperDatasets) {
  auto registry = dataset_registry();
  ASSERT_EQ(registry.size(), 8u);
  EXPECT_EQ(registry[0].name, "cit-HepTh");
  EXPECT_EQ(registry[7].name, "com-Orkut");
  EXPECT_EQ(registry[7].paper.nodes, 3072441u);
  EXPECT_EQ(registry[7].paper.edges, 117185083u);
}

TEST(Registry, FindDatasetReturnsMatchingSpec) {
  const DatasetSpec &spec = find_dataset("soc-Pokec");
  EXPECT_EQ(spec.paper.nodes, 1632803u);
  EXPECT_DOUBLE_EQ(spec.paper.imm_seconds, 5552.37);
}

TEST(Registry, LargeDatasetsAreTheFourScalingGraphs) {
  auto names = large_dataset_names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "com-YouTube");
  EXPECT_EQ(names[3], "com-Orkut");
}

class RegistryMaterialize : public ::testing::TestWithParam<const char *> {};

TEST_P(RegistryMaterialize, SurrogateHasPlausibleShape) {
  const DatasetSpec &spec = find_dataset(GetParam());
  CsrGraph graph = materialize(spec, 0.02, 1);
  EXPECT_GE(graph.num_vertices(), 512u);
  GraphStats stats = compute_stats(graph);
  // Density within a factor of ~3 of the original's arcs-per-vertex.
  double target = spec.recipe.kind == SurrogateRecipe::Kind::BarabasiAlbert
                      ? 2.0 * spec.recipe.ba_edges_per_vertex
                      : spec.recipe.edge_factor;
  EXPECT_GT(stats.avg_out_degree, target / 3.0);
  EXPECT_LT(stats.avg_out_degree, target * 3.0);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, RegistryMaterialize,
                         ::testing::Values("cit-HepTh", "soc-Epinions1",
                                           "com-Amazon", "com-DBLP",
                                           "com-YouTube", "soc-Pokec",
                                           "soc-LiveJournal1", "com-Orkut"));

TEST(Registry, MaterializeIsDeterministic) {
  const DatasetSpec &spec = find_dataset("cit-HepTh");
  CsrGraph a = materialize(spec, 0.05, 3);
  CsrGraph b = materialize(spec, 0.05, 3);
  EXPECT_EQ(a.num_vertices(), b.num_vertices());
  EXPECT_EQ(a.num_edges(), b.num_edges());
  CsrGraph c = materialize(spec, 0.05, 4);
  EXPECT_TRUE(a.num_edges() != c.num_edges() ||
              a.to_edge_list().edges != c.to_edge_list().edges);
}

TEST(Registry, DifferentDatasetsDifferUnderSameSeed) {
  CsrGraph a = materialize(find_dataset("soc-Pokec"), 0.001, 3);
  CsrGraph b = materialize(find_dataset("soc-LiveJournal1"), 0.001, 3);
  EXPECT_TRUE(a.num_vertices() != b.num_vertices() ||
              a.num_edges() != b.num_edges() ||
              a.to_edge_list().edges != b.to_edge_list().edges);
}

} // namespace
} // namespace ripples
