// End-to-end integration tests across modules: registry graph -> weights ->
// IMM driver -> forward-simulation validation; the biology pipeline; and
// cross-driver agreement on registry surrogates.
#include <gtest/gtest.h>

#include <algorithm>

#include "bio/enrichment.hpp"
#include "bio/expression.hpp"
#include "bio/inference.hpp"
#include "centrality/degree.hpp"
#include "diffusion/simulate.hpp"
#include "graph/registry.hpp"
#include "graph/weights.hpp"
#include "imm/imm.hpp"

namespace ripples {
namespace {

TEST(EndToEnd, RegistryGraphThroughAllDrivers) {
  CsrGraph graph = materialize(find_dataset("cit-HepTh"), 0.02, 77);
  assign_uniform_weights(graph, 78);

  ImmOptions options;
  options.epsilon = 0.5;
  options.k = 8;
  options.seed = 79;

  ImmResult sequential = imm_sequential(graph, options);
  ImmResult baseline = imm_baseline_hypergraph(graph, options);
  options.num_threads = 3;
  ImmResult multithreaded = imm_multithreaded(graph, options);
  options.num_ranks = 2;
  options.num_threads = 2;
  ImmResult distributed = imm_distributed(graph, options);

  EXPECT_EQ(sequential.seeds, baseline.seeds);
  EXPECT_EQ(sequential.seeds, multithreaded.seeds);
  EXPECT_EQ(sequential.seeds, distributed.seeds);

  // The selected seeds must influence a macroscopic share of this
  // supercritical graph (uniform [0,1) IC weights).
  InfluenceEstimate influence = estimate_influence(
      graph, sequential.seeds, options.model, 500, 80);
  EXPECT_GT(influence.mean,
            0.1 * static_cast<double>(graph.num_vertices()));
}

TEST(EndToEnd, SeedSetQualityTracksKAndEpsilon) {
  // Figure 1's qualitative story: more seeds activate more vertices, and a
  // tighter epsilon never hurts (up to noise).
  CsrGraph graph = materialize(find_dataset("soc-Epinions1"), 0.01, 81);
  assign_constant_weights(graph, 0.05f);

  ImmOptions options;
  options.epsilon = 0.5;
  options.seed = 82;

  double previous = 0.0;
  for (std::uint32_t k : {5u, 20u, 60u}) {
    options.k = k;
    ImmResult result = imm_sequential(graph, options);
    double sigma = estimate_influence(graph, result.seeds, options.model,
                                      1000, 83)
                       .mean;
    EXPECT_GT(sigma, previous) << "k=" << k;
    previous = sigma;
  }
}

TEST(EndToEnd, LtPipelineOnRegistrySurrogate) {
  CsrGraph graph = materialize(find_dataset("com-DBLP"), 0.005, 84);
  assign_uniform_weights(graph, 85);
  renormalize_linear_threshold(graph);

  ImmOptions options;
  options.epsilon = 0.5;
  options.k = 10;
  options.model = DiffusionModel::LinearThreshold;
  options.seed = 86;
  options.num_threads = 2;

  ImmResult result = imm_multithreaded(graph, options);
  ASSERT_EQ(result.seeds.size(), 10u);
  InfluenceEstimate influence = estimate_influence(
      graph, result.seeds, options.model, 1000, 87);
  EXPECT_GE(influence.mean, 10.0); // at least the seeds themselves
}

TEST(EndToEnd, BiologyCaseStudyPipeline) {
  // The full Section 5 flow on synthetic data: expression -> co-expression
  // network -> IMM vs degree top-k -> pathway enrichment.  IMM must find
  // module-aligned (significantly enriched) features, like the paper's
  // "cancer-related pathways" observation.
  // Plenty of background features keep the null expectation of pathway
  // overlap low, so module-concentrated selections are clearly enriched —
  // the regime the paper's 10k+-feature omics networks live in.
  bio::ExpressionConfig expression_config;
  expression_config.num_features = 800;
  expression_config.num_samples = 60;
  expression_config.num_modules = 4;
  expression_config.module_fraction = 0.225;
  expression_config.seed = 88;
  bio::ExpressionMatrix matrix = bio::synthesize_expression(expression_config);

  // High correlation threshold, as real pipelines use: below ~0.5 the
  // spurious correlations among background features form a supercritical
  // noise web that dominates the reverse-reachability structure.
  bio::InferenceConfig inference_config;
  inference_config.edges_per_target = 6;
  inference_config.min_abs_correlation = 0.5;
  EdgeList network = bio::infer_coexpression_network(matrix, inference_config);
  CsrGraph graph(network);
  // Calibrate relevance scores into activation probabilities (the paper's
  // intro: when edge probabilities are not readily available from the
  // domain, they must be chosen).  Raw |r| ~ 0.65 makes a single seed's RRR
  // span its whole module; scaling keeps influence local so multi-seed
  // coverage is informative.
  graph.transform_weights([](float w) { return 0.12f * w; });

  ImmOptions options;
  options.epsilon = 0.5;
  options.k = 32;
  options.seed = 89;
  ImmResult imm = imm_sequential(graph, options);

  bio::PathwayConfig pathway_config;
  pathway_config.member_fraction = 0.8;
  pathway_config.num_random_pathways = 20;
  bio::PathwayDatabase database =
      bio::synthesize_pathways(matrix, pathway_config);

  std::vector<std::uint32_t> imm_selected(imm.seeds.begin(), imm.seeds.end());
  auto imm_rows = bio::enrich(imm_selected, database, matrix.num_features());
  std::size_t imm_significant = bio::count_significant(imm_rows);
  EXPECT_GT(imm_significant, 0u)
      << "IMM selection must enrich module pathways";

  // Degree ranking for comparison (the paper finds the methods
  // complementary; both should enrich real pathways on planted data).
  std::vector<std::uint32_t> degree = degree_centrality(graph);
  auto degree_top =
      top_k_by_score(std::span<const std::uint32_t>(degree), options.k);
  std::vector<std::uint32_t> degree_selected(degree_top.begin(),
                                             degree_top.end());
  auto degree_rows =
      bio::enrich(degree_selected, database, matrix.num_features());
  EXPECT_GT(bio::count_significant(degree_rows), 0u);
}

TEST(EndToEnd, DistributedLeapfrogOnRegistrySurrogate) {
  CsrGraph graph = materialize(find_dataset("com-Amazon"), 0.003, 90);
  assign_uniform_weights(graph, 91);

  ImmOptions options;
  options.epsilon = 0.5;
  options.k = 6;
  options.seed = 92;
  options.num_ranks = 4;
  options.rng_mode = RngMode::LeapfrogLcg;

  ImmResult result = imm_distributed(graph, options);
  ASSERT_EQ(result.seeds.size(), 6u);
  InfluenceEstimate influence = estimate_influence(
      graph, result.seeds, options.model, 500, 93);
  EXPECT_GT(influence.mean, 6.0);
}

TEST(EndToEnd, PhaseTimersCoverTheRun) {
  CsrGraph graph = materialize(find_dataset("cit-HepTh"), 0.02, 94);
  assign_uniform_weights(graph, 95);
  ImmOptions options;
  options.epsilon = 0.4;
  options.k = 10;
  options.seed = 96;
  ImmResult result = imm_sequential(graph, options);
  // Every phase is non-negative and the breakdown sums to a plausible total.
  double sum = 0.0;
  for (Phase phase : {Phase::EstimateTheta, Phase::Sample, Phase::SelectSeeds,
                      Phase::Other}) {
    EXPECT_GE(result.timers.total(phase), 0.0);
    sum += result.timers.total(phase);
  }
  EXPECT_GT(sum, 0.0);
}

} // namespace
} // namespace ripples
