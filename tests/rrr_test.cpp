// Tests for GenerateRR: representation invariants (sorted, unique, contains
// the root), model-specific structure, and distributional agreement with
// closed-form reverse-reachability probabilities.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>

#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "imm/rrr.hpp"
#include "imm/rrr_collection.hpp"
#include "rng/xoshiro.hpp"

namespace ripples {
namespace {

struct RRRCase {
  const char *name;
  DiffusionModel model;
};

class RRRInvariants
    : public ::testing::TestWithParam<std::tuple<DiffusionModel, std::uint64_t>> {
};

TEST_P(RRRInvariants, SortedUniqueAndContainsRoot) {
  auto [model, seed] = GetParam();
  CsrGraph graph(barabasi_albert(500, 3, seed));
  assign_uniform_weights(graph, seed + 1);
  if (model == DiffusionModel::LinearThreshold)
    renormalize_linear_threshold(graph);

  RRRGenerator generator(graph);
  RRRSet set;
  Xoshiro256 rng(seed + 2);
  for (int i = 0; i < 200; ++i) {
    auto root = static_cast<vertex_t>(uniform_index(rng, graph.num_vertices()));
    generator.generate(root, model, rng, set);
    ASSERT_FALSE(set.empty());
    EXPECT_TRUE(std::binary_search(set.begin(), set.end(), root));
    EXPECT_TRUE(std::is_sorted(set.begin(), set.end()));
    EXPECT_EQ(std::adjacent_find(set.begin(), set.end()), set.end())
        << "duplicate vertex in RRR set";
    for (vertex_t v : set) EXPECT_LT(v, graph.num_vertices());
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndSeeds, RRRInvariants,
    ::testing::Combine(::testing::Values(DiffusionModel::IndependentCascade,
                                         DiffusionModel::LinearThreshold),
                       ::testing::Values(1, 2, 3)));

TEST(RRRGenerator, ScratchIsCleanAcrossCalls) {
  // Repeated generation must not leak visited state between calls: a p=1
  // graph visited fully, then a p=0 graph must yield a singleton.
  CsrGraph graph(complete_graph(20));
  RRRGenerator generator(graph);
  RRRSet set;

  assign_constant_weights(graph, 1.0f);
  Philox4x32 rng_a(1, 1);
  generator.generate(0, DiffusionModel::IndependentCascade, rng_a, set);
  EXPECT_EQ(set.size(), 20u);

  assign_constant_weights(graph, 0.0f);
  Philox4x32 rng_b(1, 2);
  generator.generate(0, DiffusionModel::IndependentCascade, rng_b, set);
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set[0], 0u);
}

TEST(RRRGenerator, IcFullProbabilityGivesReverseReachableSet) {
  // Path 0 -> 1 -> 2 -> 3: with p = 1 the RRR set of root v is {0..v}.
  CsrGraph graph(path_graph(4));
  assign_constant_weights(graph, 1.0f);
  RRRGenerator generator(graph);
  RRRSet set;
  for (vertex_t root = 0; root < 4; ++root) {
    Philox4x32 rng(7, root);
    generator.generate(root, DiffusionModel::IndependentCascade, rng, set);
    ASSERT_EQ(set.size(), root + 1u);
    for (vertex_t v = 0; v <= root; ++v) EXPECT_EQ(set[v], v);
  }
}

TEST(RRRGenerator, IcZeroProbabilityGivesSingleton) {
  CsrGraph graph(erdos_renyi(100, 1000, 4));
  assign_constant_weights(graph, 0.0f);
  RRRGenerator generator(graph);
  RRRSet set;
  for (vertex_t root = 0; root < 100; root += 7) {
    Philox4x32 rng(9, root);
    generator.generate(root, DiffusionModel::IndependentCascade, rng, set);
    EXPECT_EQ(set, RRRSet{root});
  }
}

TEST(RRRGenerator, LtWalkIsAPath) {
  // Under LT the reverse traversal picks at most one in-edge per vertex, so
  // |RRR| - 1 edges form a simple path: every prefix vertex has exactly one
  // selected predecessor.  We can't observe the path structure directly from
  // the sorted output, but we can bound the set size by the walk length on a
  // graph with bounded reverse paths.
  CsrGraph graph(path_graph(50)); // reverse walk can only go toward 0
  assign_constant_weights(graph, 1.0f);
  RRRGenerator generator(graph);
  RRRSet set;
  Philox4x32 rng(11, 0);
  generator.generate(30, DiffusionModel::LinearThreshold, rng, set);
  // Weight 1 on the unique in-edge: the walk always continues to vertex 0.
  ASSERT_EQ(set.size(), 31u);
  for (vertex_t v = 0; v <= 30; ++v) EXPECT_EQ(set[v], v);
}

TEST(RRRGenerator, LtResidualMassStopsWalk) {
  CsrGraph graph(path_graph(50));
  assign_constant_weights(graph, 0.0f);
  RRRGenerator generator(graph);
  RRRSet set;
  Philox4x32 rng(13, 0);
  generator.generate(30, DiffusionModel::LinearThreshold, rng, set);
  EXPECT_EQ(set, RRRSet{30});
}

TEST(RRRGenerator, LtHandlesCycles) {
  // 0 -> 1 -> 2 -> 0 with weight 1: the walk must terminate when it returns
  // to a visited vertex instead of looping forever.
  EdgeList list;
  list.num_vertices = 3;
  list.edges = {{0, 1, 1.0f}, {1, 2, 1.0f}, {2, 0, 1.0f}};
  CsrGraph graph(list);
  RRRGenerator generator(graph);
  RRRSet set;
  Philox4x32 rng(15, 0);
  generator.generate(0, DiffusionModel::LinearThreshold, rng, set);
  EXPECT_EQ(set.size(), 3u);
}

TEST(RRRGenerator, IcEdgeProbabilityMatchesMembershipFrequency) {
  // 0 -> 1 with p = 0.35: P[0 in RRR(1)] = 0.35.  Frequency over many
  // samples must match within Monte-Carlo tolerance.
  EdgeList list;
  list.num_vertices = 2;
  list.edges = {{0, 1, 0.35f}};
  CsrGraph graph(list);
  RRRGenerator generator(graph);
  RRRSet set;
  int hits = 0;
  const int trials = 40000;
  Xoshiro256 rng(17);
  for (int i = 0; i < trials; ++i) {
    generator.generate(1, DiffusionModel::IndependentCascade, rng, set);
    hits += (set.size() == 2) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.35, 0.01);
}

TEST(RRRGenerator, LtPicksInNeighborsProportionallyToWeight) {
  // Vertex 2 has in-edges from 0 (b=0.2) and 1 (b=0.5); residual 0.3.
  EdgeList list;
  list.num_vertices = 3;
  list.edges = {{0, 2, 0.2f}, {1, 2, 0.5f}};
  CsrGraph graph(list);
  RRRGenerator generator(graph);
  RRRSet set;
  std::map<std::size_t, int> histogram; // key: which predecessor (0, 1, none)
  const int trials = 60000;
  Xoshiro256 rng(19);
  int picked0 = 0, picked1 = 0, none = 0;
  for (int i = 0; i < trials; ++i) {
    generator.generate(2, DiffusionModel::LinearThreshold, rng, set);
    if (set.size() == 1) {
      ++none;
    } else {
      ASSERT_EQ(set.size(), 2u);
      if (set[0] == 0)
        ++picked0;
      else
        ++picked1;
    }
  }
  EXPECT_NEAR(static_cast<double>(picked0) / trials, 0.2, 0.01);
  EXPECT_NEAR(static_cast<double>(picked1) / trials, 0.5, 0.01);
  EXPECT_NEAR(static_cast<double>(none) / trials, 0.3, 0.01);
  (void)histogram;
}

TEST(SampleStream, IsDeterministicPerIndex) {
  Philox4x32 a = sample_stream(42, 7);
  Philox4x32 b = sample_stream(42, 7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), b());
  Philox4x32 c = sample_stream(42, 8);
  EXPECT_NE(sample_stream(42, 7)(), c());
}

TEST(RRRGenerator, GenerateRandomRootCoversVertexSpace) {
  CsrGraph graph(erdos_renyi(64, 256, 21));
  assign_constant_weights(graph, 0.0f);
  RRRGenerator generator(graph);
  RRRSet set;
  std::vector<int> root_histogram(64, 0);
  Xoshiro256 rng(23);
  for (int i = 0; i < 6400; ++i) {
    generator.generate_random_root(DiffusionModel::IndependentCascade, rng, set);
    ASSERT_EQ(set.size(), 1u); // p = 0: the set is exactly the root
    ++root_histogram[set[0]];
  }
  for (int count : root_histogram) EXPECT_GT(count, 0);
}

TEST(RRRCollectionGrowth, AbsurdGrowthThrowsADiagnosticNotBadAlloc) {
  // theta-derived totals reach grow() before any parallel fill region; a
  // corrupted total must surface as a catchable length_error naming the
  // sizes, not as a size_t wrap (grow(SIZE_MAX) on a non-empty collection
  // wraps to a tiny resize) or an allocator abort on a worker thread.
  RRRCollection collection;
  collection.grow(3);
  const std::size_t huge = std::numeric_limits<std::size_t>::max();
  EXPECT_THROW((void)collection.grow(huge), std::length_error);
  EXPECT_THROW((void)collection.grow(huge - 2), std::length_error);
  EXPECT_EQ(collection.size(), 3u) << "failed growth must not change state";
  try {
    (void)collection.grow(huge);
  } catch (const std::length_error &error) {
    EXPECT_NE(std::string(error.what()).find("RRRCollection"),
              std::string::npos)
        << error.what();
  }
}

} // namespace
} // namespace ripples
