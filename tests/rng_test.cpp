// Unit and property tests for the PRNG substrate: LCG jump-ahead and
// leap-frog splitting (the paper's TRNG-style parallel stream discipline),
// SplitMix64, xoshiro256**, Philox, and the distribution helpers.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/lcg.hpp"
#include "rng/philox.hpp"
#include "rng/philox_buffered.hpp"
#include "rng/splitmix.hpp"
#include "rng/xoshiro.hpp"

namespace ripples {
namespace {

TEST(Lcg64, ProducesKnownRecurrence) {
  Lcg64 gen(1);
  std::uint64_t expected =
      Lcg64::kDefaultMultiplier * 1 + Lcg64::kDefaultIncrement;
  EXPECT_EQ(gen(), expected);
  expected = Lcg64::kDefaultMultiplier * expected + Lcg64::kDefaultIncrement;
  EXPECT_EQ(gen(), expected);
}

TEST(Lcg64, DistinctSeedsDiverge) {
  Lcg64 a(1), b(2);
  EXPECT_NE(a(), b());
}

TEST(Lcg64, TransitionPowerIdentity) {
  LcgTransition step{Lcg64::kDefaultMultiplier, Lcg64::kDefaultIncrement};
  LcgTransition zero = Lcg64::power(step, 0);
  EXPECT_EQ(zero.mult, 1u);
  EXPECT_EQ(zero.add, 0u);
  LcgTransition one = Lcg64::power(step, 1);
  EXPECT_EQ(one.mult, step.mult);
  EXPECT_EQ(one.add, step.add);
}

class LcgJumpAhead : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LcgJumpAhead, DiscardEqualsIteratedStepping) {
  const std::uint64_t steps = GetParam();
  Lcg64 jumped(12345);
  jumped.discard(steps);
  Lcg64 stepped(12345);
  for (std::uint64_t i = 0; i < steps; ++i) stepped();
  EXPECT_EQ(jumped.state(), stepped.state()) << "steps=" << steps;
}

INSTANTIATE_TEST_SUITE_P(JumpLengths, LcgJumpAhead,
                         ::testing::Values(0, 1, 2, 3, 7, 8, 63, 64, 1000,
                                           12345, 1u << 20));

class LcgLeapfrog : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LcgLeapfrog, StreamsPartitionTheBaseSequence) {
  const std::uint64_t p = GetParam();
  const std::size_t per_stream = 64;

  Lcg64 base(987654321);
  std::vector<std::uint64_t> reference;
  Lcg64 base_copy = base;
  for (std::size_t i = 0; i < per_stream * p; ++i)
    reference.push_back(base_copy());

  // Stream r must produce exactly elements r, r+p, r+2p, ... of the base
  // sequence — the leap-frog contract the distributed sampler relies on.
  for (std::uint64_t r = 0; r < p; ++r) {
    Lcg64 stream = base.leapfrog(r, p);
    for (std::size_t j = 0; j < per_stream; ++j) {
      EXPECT_EQ(stream(), reference[j * p + r])
          << "stream " << r << " of " << p << ", element " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(StreamCounts, LcgLeapfrog,
                         ::testing::Values(1, 2, 3, 4, 7, 16, 64, 1024));

TEST(Lcg64, NextDoubleIsInUnitInterval) {
  Lcg64 gen(7);
  for (int i = 0; i < 10000; ++i) {
    double x = gen.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(SplitMix64, MixerIsBijectiveOnSample) {
  // Distinct inputs must give distinct outputs (injectivity on a sample).
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 10000; ++i)
    outputs.insert(splitmix64_mix(i * 0x9e3779b97f4a7c15ULL + 1));
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(SplitMix64, ReproducibleFromSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, ReproducibleFromSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, JumpProducesDisjointPrefixes) {
  Xoshiro256 a(42);
  Xoshiro256 b = a;
  b.jump();
  std::set<std::uint64_t> from_a;
  for (int i = 0; i < 4096; ++i) from_a.insert(a());
  for (int i = 0; i < 4096; ++i) EXPECT_EQ(from_a.count(b()), 0u);
}

TEST(Xoshiro256, SubstreamEqualsRepeatedJump) {
  Xoshiro256 expected(9);
  expected.jump();
  expected.jump();
  Xoshiro256 actual = Xoshiro256::substream(9, 2);
  EXPECT_EQ(actual, expected);
}

TEST(Philox4x32, ReproducibleFromKeyAndStream) {
  Philox4x32 a(11, 3), b(11, 3);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a(), b());
}

TEST(Philox4x32, StreamsAreDistinct) {
  Philox4x32 a(11, 0), b(11, 1);
  bool any_different = false;
  for (int i = 0; i < 16; ++i) any_different |= (a() != b());
  EXPECT_TRUE(any_different);
}

TEST(Philox4x32, KeysAreDistinct) {
  Philox4x32 a(1, 0), b(2, 0);
  EXPECT_NE(a(), b());
}

// --- distribution helpers --------------------------------------------------

TEST(Distributions, UniformUnitRange) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    double x = uniform_unit(rng);
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Distributions, UniformUnitMeanIsHalf) {
  Xoshiro256 rng(5);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += uniform_unit(rng);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

class UniformIndexBounds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UniformIndexBounds, StaysBelowBoundAndHitsAllValues) {
  const std::uint64_t bound = GetParam();
  Xoshiro256 rng(17);
  std::vector<std::uint32_t> histogram(bound, 0);
  const std::uint64_t draws = bound * 200;
  for (std::uint64_t i = 0; i < draws; ++i) {
    std::uint64_t x = uniform_index(rng, bound);
    ASSERT_LT(x, bound);
    ++histogram[x];
  }
  for (std::uint64_t v = 0; v < bound; ++v)
    EXPECT_GT(histogram[v], 0u) << "value " << v << " never drawn";
}

INSTANTIATE_TEST_SUITE_P(Bounds, UniformIndexBounds,
                         ::testing::Values(1, 2, 3, 10, 100, 1000));

TEST(Distributions, UniformIndexIsApproximatelyUniform) {
  Xoshiro256 rng(3);
  const std::uint64_t bound = 10;
  const int draws = 200000;
  std::array<int, 10> histogram{};
  for (int i = 0; i < draws; ++i) ++histogram[uniform_index(rng, bound)];
  // Chi-squared with 9 dof; 99.9th percentile is ~27.9.
  double chi2 = 0;
  const double expected = draws / 10.0;
  for (int count : histogram) {
    double d = count - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 27.9);
}

TEST(Distributions, BernoulliMatchesProbability) {
  Xoshiro256 rng(23);
  const int n = 200000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += bernoulli(rng, 0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Distributions, BernoulliEdgeCases) {
  Xoshiro256 rng(23);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(bernoulli(rng, 0.0));
    EXPECT_TRUE(bernoulli(rng, 1.0));
  }
}

TEST(Distributions, UniformRealRespectsRange) {
  Xoshiro256 rng(29);
  for (int i = 0; i < 10000; ++i) {
    double x = uniform_real(rng, -2.5, 7.5);
    EXPECT_GE(x, -2.5);
    EXPECT_LT(x, 7.5);
  }
}

// --- bulk / buffered Philox --------------------------------------------------
//
// The fused sampling engine's byte-identity rests on one property: every
// consumption pattern of BufferedPhilox emits the exact draw sequence of
// the scalar Philox4x32 on the same (key, counter_hi) stream.

TEST(PhiloxBulk, BlocksMatchTheScalarEngineDrawForDraw) {
  const std::uint64_t key = 0xDEADBEEF, stream = 42;
  std::vector<std::uint64_t> bulk(2 * 1000);
  philox4x32_bulk(0, 1000, key, stream, bulk.data());
  Philox4x32 scalar(key, stream);
  for (std::size_t i = 0; i < bulk.size(); ++i)
    ASSERT_EQ(bulk[i], scalar()) << "draw " << i;
}

TEST(PhiloxBulk, ArbitraryFirstBlockContinuesTheStream) {
  const std::uint64_t key = 7, stream = 3;
  Philox4x32 scalar(key, stream);
  for (int i = 0; i < 2 * 317; ++i) (void)scalar();
  std::vector<std::uint64_t> bulk(2 * 5);
  philox4x32_bulk(317, 5, key, stream, bulk.data());
  for (std::size_t i = 0; i < bulk.size(); ++i)
    ASSERT_EQ(bulk[i], scalar()) << "draw " << i;
}

TEST(BufferedPhilox, OperatorMatchesScalarAcrossManyRefills) {
  BufferedPhilox buffered;
  buffered.reset(11, 5);
  Philox4x32 scalar(11, 5);
  // 3x capacity forces several refills through the quantum ramp.
  for (std::size_t i = 0; i < 3 * BufferedPhilox::capacity(); ++i)
    ASSERT_EQ(buffered(), scalar()) << "draw " << i;
}

TEST(BufferedPhilox, InterleavedPeekConsumeEmitsTheScalarSequence) {
  BufferedPhilox buffered;
  buffered.reset(13, 9);
  Philox4x32 scalar(13, 9);
  // Mixed consumption: peek a chunk, consume only part of it (as the fused
  // kernel does when edges are masked off), occasionally draw directly.
  const std::size_t chunks[] = {1, 3, 8, 2, 60, 7, 128, 1, 30, 256, 5, 90};
  for (std::size_t round = 0; round < 4; ++round) {
    for (std::size_t chunk : chunks) {
      const std::uint64_t *draws = buffered.peek(chunk);
      ASSERT_GE(buffered.buffered(), chunk);
      std::size_t used = chunk - chunk / 3;
      for (std::size_t i = 0; i < used; ++i)
        ASSERT_EQ(draws[i], scalar()) << "chunk " << chunk << " draw " << i;
      buffered.consume(used);
    }
    ASSERT_EQ(buffered(), scalar());
  }
}

TEST(BufferedPhilox, EnsureKeepsAlreadyBufferedDrawsStable) {
  BufferedPhilox buffered;
  buffered.reset(17, 2);
  const std::uint64_t first = buffered.peek(4)[0];
  buffered.ensure(BufferedPhilox::capacity());
  EXPECT_EQ(buffered.peek(1)[0], first);
  Philox4x32 scalar(17, 2);
  EXPECT_EQ(buffered(), scalar());
}

TEST(BufferedPhilox, ResetRetargetsTheStreamExactly) {
  BufferedPhilox buffered;
  buffered.reset(19, 1);
  for (int i = 0; i < 100; ++i) (void)buffered();
  // Re-point mid-buffer at another stream: no draws of the old stream may
  // leak, and the quantum ramp restarts (short streams stay cheap).
  buffered.reset(19, 2);
  Philox4x32 scalar(19, 2);
  for (int i = 0; i < 50; ++i) ASSERT_EQ(buffered(), scalar()) << "draw " << i;
  // And back to the first stream, from the top.
  buffered.reset(19, 1);
  Philox4x32 scalar1(19, 1);
  for (int i = 0; i < 50; ++i) ASSERT_EQ(buffered(), scalar1());
}

} // namespace
} // namespace ripples
