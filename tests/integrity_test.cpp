// Tests for the end-to-end data-integrity layer (DESIGN.md §14): the
// deterministic retry/backoff schedule behind --verify-collectives, the
// checksummed-collective detection -> retry -> escalate ladder under
// kind=corrupt / kind=flaky injection, the RRR-store scrubbing stack
// (per-block CRCs, page CRCs, journal replay repair), and the end-to-end
// guarantee: a run corrupted at any collective site returns the failure-free
// seed set byte for byte, by retry when the fault is transient and by
// shrink-and-heal when it is sticky.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <random>
#include <set>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "imm/budget.hpp"
#include "imm/imm.hpp"
#include "imm/rrr_collection.hpp"
#include "imm/select.hpp"
#include "mpsim/communicator.hpp"
#include "mpsim/integrity.hpp"
#include "support/metrics.hpp"
#include "support/steal_schedule.hpp"

namespace ripples::mpsim {
namespace {

std::uint64_t counter_value(const char *name) {
  return metrics::Registry::instance().counter(name).value();
}

// --- retry/backoff schedule --------------------------------------------------

TEST(Backoff, RetryDelayIsACappedExponential) {
  using std::chrono::microseconds;
  EXPECT_EQ(retry_delay(1), microseconds{100});
  EXPECT_EQ(retry_delay(2), microseconds{200});
  EXPECT_EQ(retry_delay(3), microseconds{400});
  EXPECT_EQ(retry_delay(4), microseconds{400}); // capped
  EXPECT_EQ(retry_delay(9), microseconds{400}); // stays capped
}

TEST(Backoff, HookObservesTheScheduleWithoutSleeping) {
  std::vector<std::chrono::microseconds> observed;
  {
    ScopedBackoffHook hook(
        [&](std::chrono::microseconds delay) { observed.push_back(delay); });
    const auto start = std::chrono::steady_clock::now();
    for (int attempt = 1; attempt <= kMaxVerifyAttempts; ++attempt)
      backoff_sleep(attempt);
    // The fake clock absorbed the 1.1 ms the real schedule would cost.
    EXPECT_LT(std::chrono::steady_clock::now() - start,
              std::chrono::milliseconds{100});
  }
  ASSERT_EQ(observed.size(), 4u);
  EXPECT_EQ(observed[0], std::chrono::microseconds{100});
  EXPECT_EQ(observed[1], std::chrono::microseconds{200});
  EXPECT_EQ(observed[2], std::chrono::microseconds{400});
  EXPECT_EQ(observed[3], std::chrono::microseconds{400});
}

TEST(Backoff, ScopedHooksNestAndRestore) {
  int outer = 0, inner = 0;
  ScopedBackoffHook a([&](std::chrono::microseconds) { ++outer; });
  {
    ScopedBackoffHook b([&](std::chrono::microseconds) { ++inner; });
    backoff_sleep(1);
  }
  backoff_sleep(1);
  EXPECT_EQ(inner, 1);
  EXPECT_EQ(outer, 1);
}

// --- environment readers -----------------------------------------------------

TEST(IntegrityEnv, VerifyCollectivesAcceptsTheUsualTruthySpellings) {
  for (const char *value : {"1", "on", "true", "yes"}) {
    setenv("RIPPLES_VERIFY_COLLECTIVES", value, 1);
    EXPECT_TRUE(verify_collectives_from_env()) << value;
  }
  setenv("RIPPLES_VERIFY_COLLECTIVES", "0", 1);
  EXPECT_FALSE(verify_collectives_from_env());
  unsetenv("RIPPLES_VERIFY_COLLECTIVES");
  EXPECT_FALSE(verify_collectives_from_env());
}

// --- verified collectives: detect, retry, escalate ---------------------------

/// Three ranks with verification on and one planned payload fault; the
/// bodies below drive allreduce rounds through the verified exchange.
RunOptions verified_plan(FaultPlan faults) {
  RunOptions options;
  options.num_ranks = 3;
  options.verify_collectives = true;
  options.faults = std::move(faults);
  return options;
}

/// The catch-RankFailed / shrink() retry loop survivors run (the fault_test
/// idiom, reused here for corruption escalation instead of crashes).
template <typename Body>
void run_with_recovery(RunOptions options, Body body) {
  options.recover = true;
  Context::run(options, [&](Communicator &comm) {
    for (;;) {
      try {
        body(comm);
        return;
      } catch (const RankFailed &) {
        (void)comm.shrink();
      }
    }
  });
}

TEST(VerifiedCollectives, CleanRunPaysChecksAndNothingElse) {
  metrics::set_enabled(true);
  const std::uint64_t checks0 = counter_value("integrity.checks");
  const std::uint64_t detections0 =
      counter_value("integrity.corruptions_detected");
  const std::uint64_t retries0 = counter_value("integrity.retries");
  const std::uint64_t escalations0 = counter_value("integrity.escalations");
  std::atomic<int> finishers{0};
  Context::run(verified_plan({}), [&](Communicator &comm) {
    std::vector<std::uint64_t> buffer(8);
    for (int round = 0; round < 4; ++round) {
      std::fill(buffer.begin(), buffer.end(), 1);
      comm.allreduce(std::span<std::uint64_t>(buffer), ReduceOp::Sum);
      for (std::uint64_t v : buffer) ASSERT_EQ(v, 3u);
    }
    finishers.fetch_add(1);
  });
  metrics::set_enabled(false);
  EXPECT_EQ(finishers.load(), 3);
  EXPECT_GT(counter_value("integrity.checks"), checks0);
  EXPECT_EQ(counter_value("integrity.corruptions_detected"), detections0);
  EXPECT_EQ(counter_value("integrity.retries"), retries0);
  EXPECT_EQ(counter_value("integrity.escalations"), escalations0);
}

TEST(VerifiedCollectives, TransientCorruptionIsRetriedToTheCleanResult) {
  metrics::set_enabled(true);
  const std::uint64_t detections0 =
      counter_value("integrity.corruptions_detected");
  const std::uint64_t retries0 = counter_value("integrity.retries");
  const std::uint64_t escalations0 = counter_value("integrity.escalations");
  const std::uint64_t injected0 =
      counter_value("integrity.injected_corruptions");
  std::atomic<int> finishers{0};
  Context::run(verified_plan({{1, 1, FaultSpec::Kind::Corrupt}}),
               [&](Communicator &comm) {
                 std::vector<std::uint64_t> buffer(8);
                 for (int round = 0; round < 4; ++round) {
                   std::fill(buffer.begin(), buffer.end(), 1);
                   comm.allreduce(std::span<std::uint64_t>(buffer),
                                  ReduceOp::Sum);
                   // The retransmit healed the flip: every rank sees the
                   // clean sum, corruption never reaches the algorithm.
                   for (std::uint64_t v : buffer) ASSERT_EQ(v, 3u);
                 }
                 finishers.fetch_add(1);
               });
  metrics::set_enabled(false);
  EXPECT_EQ(finishers.load(), 3);
  EXPECT_GT(counter_value("integrity.corruptions_detected"), detections0);
  EXPECT_GT(counter_value("integrity.retries"), retries0);
  EXPECT_GT(counter_value("integrity.injected_corruptions"), injected0);
  EXPECT_EQ(counter_value("integrity.escalations"), escalations0);
}

TEST(VerifiedCollectives, FlakyLinkHealsWithinItsBudget) {
  // attempts=2 fails verification twice; the retry budget is 4, so the
  // third attempt carries a clean checksum and the round completes.
  metrics::set_enabled(true);
  const std::uint64_t retries0 = counter_value("integrity.retries");
  const std::uint64_t flaky0 = counter_value("integrity.injected_flaky");
  std::atomic<int> finishers{0};
  Context::run(
      verified_plan({{2, 1, FaultSpec::Kind::Flaky, /*sticky=*/false,
                      /*attempts=*/2}}),
      [&](Communicator &comm) {
        std::vector<std::uint64_t> buffer(4);
        for (int round = 0; round < 3; ++round) {
          std::fill(buffer.begin(), buffer.end(), 1);
          comm.allreduce(std::span<std::uint64_t>(buffer), ReduceOp::Sum);
          for (std::uint64_t v : buffer) ASSERT_EQ(v, 3u);
        }
        finishers.fetch_add(1);
      });
  metrics::set_enabled(false);
  EXPECT_EQ(finishers.load(), 3);
  EXPECT_GE(counter_value("integrity.retries") - retries0, 2u);
  EXPECT_GE(counter_value("integrity.injected_flaky") - flaky0, 2u);
}

TEST(VerifiedCollectives, StickyCorruptionEscalatesToADiagnosedCorrupter) {
  // Every repost re-corrupts, so the retry budget exhausts and the producer
  // of the bad bytes dies with the full coordinates of the failure.
  RunOptions options =
      verified_plan({{1, 1, FaultSpec::Kind::Corrupt, /*sticky=*/true}});
  try {
    Context::run(options, [](Communicator &comm) {
      std::vector<std::uint64_t> buffer(8, 1);
      for (;;) comm.allreduce(std::span<std::uint64_t>(buffer), ReduceOp::Sum);
    });
    FAIL() << "expected PayloadCorrupt";
  } catch (const PayloadCorrupt &error) {
    EXPECT_EQ(error.op(), "allreduce");
    EXPECT_EQ(error.site(), 1u);
    EXPECT_EQ(error.rank(), 1);
    EXPECT_EQ(error.attempts(), kMaxVerifyAttempts);
    EXPECT_NE(std::string(error.what()).find("rank 1"), std::string::npos);
  }
}

TEST(VerifiedCollectives, ExhaustedFlakyBudgetEscalatesToo) {
  RunOptions options = verified_plan(
      {{2, 1, FaultSpec::Kind::Flaky, /*sticky=*/false, /*attempts=*/10}});
  try {
    Context::run(options, [](Communicator &comm) {
      std::vector<std::uint64_t> buffer(8, 1);
      for (;;) comm.allreduce(std::span<std::uint64_t>(buffer), ReduceOp::Sum);
    });
    FAIL() << "expected PayloadCorrupt";
  } catch (const PayloadCorrupt &error) {
    EXPECT_EQ(error.rank(), 2);
    EXPECT_EQ(error.attempts(), kMaxVerifyAttempts);
  }
}

TEST(VerifiedCollectives, StickyCorruptionWithRecoveryShrinksAndFinishes) {
  metrics::set_enabled(true);
  const std::uint64_t escalations0 = counter_value("integrity.escalations");
  const std::uint64_t deaths0 = counter_value("mpsim.faults.dead_ranks");
  RunOptions options =
      verified_plan({{1, 1, FaultSpec::Kind::Corrupt, /*sticky=*/true}});
  std::atomic<int> finishers{0};
  run_with_recovery(options, [&](Communicator &comm) {
    std::vector<std::uint64_t> buffer(8);
    for (int round = 0; round < 4; ++round) {
      std::fill(buffer.begin(), buffer.end(), 1);
      comm.allreduce(std::span<std::uint64_t>(buffer), ReduceOp::Sum);
      for (std::uint64_t v : buffer)
        ASSERT_EQ(v, static_cast<std::uint64_t>(comm.size()));
    }
    finishers.fetch_add(1);
  });
  metrics::set_enabled(false);
  // The sticky corrupter cost exactly one rank, not the run.
  EXPECT_EQ(finishers.load(), 2);
  EXPECT_GT(counter_value("integrity.escalations"), escalations0);
  EXPECT_EQ(counter_value("mpsim.faults.dead_ranks"), deaths0 + 1);
}

TEST(VerifiedCollectives, CorruptionWithVerificationOffIsSilentlyWrong) {
  // The negative control for the whole layer: with verification off the
  // planted flip reaches the algorithm unnoticed — wrong bytes, no
  // exception, no integrity checks performed.
  metrics::set_enabled(true);
  const std::uint64_t checks0 = counter_value("integrity.checks");
  RunOptions options;
  options.num_ranks = 2;
  options.faults = {{1, 0, FaultSpec::Kind::Corrupt}};
  Context::run(options, [](Communicator &comm) {
    std::vector<std::uint64_t> buffer(8, 1);
    comm.allreduce(std::span<std::uint64_t>(buffer), ReduceOp::Sum);
    // Site 0 flips bit 0 of rank 1's contribution: slot 0 contributes 0
    // instead of 1, and both ranks adopt the corrupted sum.
    EXPECT_EQ(buffer[0], 1u);
    for (std::size_t i = 1; i < buffer.size(); ++i) EXPECT_EQ(buffer[i], 2u);
  });
  metrics::set_enabled(false);
  EXPECT_EQ(counter_value("integrity.checks"), checks0);
}

} // namespace
} // namespace ripples::mpsim

// --- RRR-store scrubbing ------------------------------------------------------

namespace ripples {
namespace {

std::uint64_t counter_value(const char *name) {
  return metrics::Registry::instance().counter(name).value();
}

TEST(ScrubEnv, ModeReaderParsesTheThreeSpellings) {
  setenv("RIPPLES_SCRUB_RRR", "off", 1);
  EXPECT_EQ(scrub_mode_from_env(), ScrubMode::Off);
  setenv("RIPPLES_SCRUB_RRR", "on", 1);
  EXPECT_EQ(scrub_mode_from_env(), ScrubMode::On);
  setenv("RIPPLES_SCRUB_RRR", "paranoid", 1);
  EXPECT_EQ(scrub_mode_from_env(), ScrubMode::Paranoid);
  unsetenv("RIPPLES_SCRUB_RRR");
  EXPECT_EQ(scrub_mode_from_env(), ScrubMode::Off);
  EXPECT_STREQ(to_string(ScrubMode::Off), "off");
  EXPECT_STREQ(to_string(ScrubMode::On), "on");
  EXPECT_STREQ(to_string(ScrubMode::Paranoid), "paranoid");
}

std::vector<RRRSet> random_sets(std::size_t count, std::uint64_t seed,
                                vertex_t universe = 5000) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> size_dist(0, 40);
  std::uniform_int_distribution<vertex_t> member_dist(0, universe - 1);
  std::vector<RRRSet> sets(count);
  for (RRRSet &set : sets) {
    std::set<vertex_t> members;
    const std::size_t want = size_dist(rng);
    while (members.size() < want) members.insert(member_dist(rng));
    set.assign(members.begin(), members.end());
  }
  return sets;
}

/// Repairs every block \p verify_blocks reports from the original \p sets
/// and asserts the collection verifies clean and round-trips afterwards.
void repair_and_check(CompressedRRRCollection &compressed,
                      const std::vector<RRRSet> &sets) {
  const std::vector<std::size_t> corrupt = compressed.verify_blocks();
  ASSERT_FALSE(corrupt.empty());
  for (const std::size_t block : corrupt) {
    const auto [first, last] = compressed.block_set_range(block);
    const std::vector<RRRSet> originals(sets.begin() + first,
                                        sets.begin() + last);
    compressed.repair_block(block, originals);
  }
  EXPECT_TRUE(compressed.verify_blocks().empty());
  std::vector<vertex_t> decoded;
  for (std::size_t j = 0; j < sets.size(); ++j) {
    compressed.decode_set(j, decoded);
    ASSERT_EQ(decoded, sets[j]) << "set " << j;
  }
}

TEST(CompressedScrub, IncrementalChecksumsDetectAFlipAndRepairRestoresIt) {
  const std::vector<RRRSet> sets = random_sets(600, 31);
  CompressedRRRCollection compressed;
  compressed.enable_checksums();
  for (const RRRSet &set : sets) compressed.append(set);
  EXPECT_TRUE(compressed.checksums_enabled());
  EXPECT_TRUE(compressed.verify_blocks().empty());

  compressed.flip_payload_bit(0);
  const std::vector<std::size_t> corrupt = compressed.verify_blocks();
  ASSERT_EQ(corrupt.size(), 1u);
  EXPECT_EQ(corrupt[0], 0u); // bit 0 lives in the first block
  repair_and_check(compressed, sets);
}

TEST(CompressedScrub, EnableAfterAppendHashesTheBacklog) {
  const std::vector<RRRSet> sets = random_sets(600, 47);
  CompressedRRRCollection compressed;
  for (const RRRSet &set : sets) compressed.append(set);
  EXPECT_FALSE(compressed.checksums_enabled());
  EXPECT_TRUE(compressed.verify_blocks().empty()); // disabled: nothing to say

  compressed.enable_checksums();
  EXPECT_TRUE(compressed.verify_blocks().empty());
  compressed.flip_payload_bit(987654321);
  EXPECT_EQ(compressed.verify_blocks().size(), 1u);
  repair_and_check(compressed, sets);
}

TEST(CompressedScrub, OpenTailBlockIsCoveredToo) {
  // 10 sets: the only block is the open tail, checked via the running CRC.
  const std::vector<RRRSet> sets = random_sets(10, 53);
  CompressedRRRCollection compressed;
  compressed.enable_checksums();
  for (const RRRSet &set : sets) compressed.append(set);
  ASSERT_EQ(compressed.num_blocks(), 1u);
  EXPECT_TRUE(compressed.verify_blocks().empty());
  compressed.flip_payload_bit(13);
  EXPECT_EQ(compressed.verify_blocks(), std::vector<std::size_t>{0});
  repair_and_check(compressed, sets);
}

TEST(CompressedScrub, NonIdenticalRegenerationIsRefused) {
  const std::vector<RRRSet> sets = random_sets(300, 61);
  CompressedRRRCollection compressed;
  compressed.enable_checksums();
  for (const RRRSet &set : sets) compressed.append(set);
  compressed.flip_payload_bit(0);

  // "Regenerated" sets with different contents encode to a different byte
  // length — the repair must refuse rather than shift the arena.
  const auto [first, last] = compressed.block_set_range(0);
  std::vector<RRRSet> wrong(last - first);
  for (RRRSet &set : wrong) set = {1, 2, 3, 4, 5, 6, 7};
  try {
    compressed.repair_block(0, wrong);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error &error) {
    EXPECT_NE(std::string(error.what()).find("bit-identical"),
              std::string::npos)
        << error.what();
  }
}

TEST(FlatScrub, PageChecksumsDetectAFlipAndOverwriteRepairsIt) {
  // ~360 KB of payload: several full 64 KiB pages plus a partial tail.
  std::vector<vertex_t> all;
  FlatRRRCollection flat;
  flat.enable_checksums();
  std::mt19937_64 rng(71);
  std::uniform_int_distribution<vertex_t> dist(0, 1 << 20);
  for (int j = 0; j < 3000; ++j) {
    RRRSet set(30);
    for (vertex_t &v : set) v = dist(rng);
    std::sort(set.begin(), set.end());
    flat.append(set);
    all.insert(all.end(), set.begin(), set.end());
  }
  EXPECT_TRUE(flat.verify_pages().empty());

  flat.flip_payload_bit(777777);
  const std::vector<std::size_t> corrupt = flat.verify_pages();
  ASSERT_EQ(corrupt.size(), 1u);

  flat.overwrite(0, all); // regenerated (here: remembered) clean values
  EXPECT_TRUE(flat.verify_pages().empty());
  for (std::size_t j = 0; j < 5; ++j) {
    const std::span<const vertex_t> sample = flat.sample(j);
    ASSERT_EQ(std::vector<vertex_t>(sample.begin(), sample.end()),
              std::vector<vertex_t>(all.begin() + 30 * j,
                                    all.begin() + 30 * (j + 1)));
  }
}

// --- RRRStore: scrub passes, journal replay, repair --------------------------

/// Deterministic replay-safe generator (the memory_budget_test shape): set j
/// is {j % 97, ..., j % 97 + 19}, identical on every call.
void fill_window(RRRCollection &scratch, std::uint64_t first,
                 std::uint64_t count) {
  for (std::uint64_t j = first; j < first + count; ++j) {
    RRRSet set(20);
    for (std::size_t i = 0; i < set.size(); ++i)
      set[i] = static_cast<vertex_t>(j % 97 + i);
    scratch.add(std::move(set));
  }
}

detail::RRRStore::Policy scrub_policy(ScrubMode mode) {
  detail::RRRStore::Policy policy;
  policy.compress = CompressMode::Always;
  policy.scrub = mode;
  return policy;
}

TEST(RRRStoreScrub, FlippedBitIsRepairedBeforeSelection) {
  metrics::set_enabled(true);
  const std::uint64_t passes0 = counter_value("integrity.scrub_passes");
  const std::uint64_t corrupt0 =
      counter_value("integrity.scrub_corrupt_blocks");
  const std::uint64_t repaired0 =
      counter_value("integrity.scrub_repaired_blocks");

  detail::RRRStore clean(scrub_policy(ScrubMode::On));
  clean.extend_window(0, 2000, fill_window);
  const SelectionResult reference = clean.select(120, 5, 1);

  detail::RRRStore damaged(scrub_policy(ScrubMode::On));
  damaged.extend_window(0, 2000, fill_window);
  ASSERT_TRUE(damaged.flip_stored_bit(123456));
  const SelectionResult healed = damaged.select(120, 5, 1);
  metrics::set_enabled(false);

  EXPECT_EQ(healed.seeds, reference.seeds);
  EXPECT_EQ(healed.covered_samples, reference.covered_samples);
  EXPECT_GE(counter_value("integrity.scrub_passes") - passes0, 2u);
  EXPECT_GE(counter_value("integrity.scrub_corrupt_blocks") - corrupt0, 1u);
  EXPECT_GE(counter_value("integrity.scrub_repaired_blocks") - repaired0, 1u);
}

TEST(RRRStoreScrub, MultipleDamagedBlocksAreAllRepaired) {
  detail::RRRStore clean(scrub_policy(ScrubMode::On));
  clean.extend_window(0, 3000, fill_window);
  const SelectionResult reference = clean.select(120, 8, 1);

  detail::RRRStore damaged(scrub_policy(ScrubMode::On));
  damaged.extend_window(0, 3000, fill_window);
  for (std::size_t bit : {std::size_t{5}, std::size_t{40000},
                          std::size_t{999999}})
    ASSERT_TRUE(damaged.flip_stored_bit(bit));
  EXPECT_EQ(damaged.select(120, 8, 1).seeds, reference.seeds);
}

TEST(RRRStoreScrub, ParanoidScrubsBeforeTheCountingKernels) {
  detail::RRRStore clean(scrub_policy(ScrubMode::Paranoid));
  clean.extend_window(0, 1500, fill_window);
  std::vector<std::uint32_t> expected(120, 0);
  clean.count_into(std::span<std::uint32_t>(expected));

  detail::RRRStore damaged(scrub_policy(ScrubMode::Paranoid));
  damaged.extend_window(0, 1500, fill_window);
  ASSERT_TRUE(damaged.flip_stored_bit(777));
  std::vector<std::uint32_t> counted(120, 0);
  damaged.count_into(std::span<std::uint32_t>(counted));
  EXPECT_EQ(counted, expected);
}

TEST(RRRStoreScrub, OffModeNeverScrubs) {
  detail::RRRStore store(scrub_policy(ScrubMode::Off));
  store.extend_window(0, 500, fill_window);
  EXPECT_EQ(store.scrub(), 0u);
}

TEST(RRRStoreScrub, ExplicitScrubRepairsAcrossAdmissionChunks) {
  // Small chunks: the journal holds many windows per block, so repair has
  // to stitch a block back together from several replayed windows.
  detail::RRRStore::Policy policy = scrub_policy(ScrubMode::On);
  policy.chunk = 64; // 4 windows per 256-set block
  detail::RRRStore store(policy);
  store.extend_window(0, 1024, fill_window);
  ASSERT_TRUE(store.flip_stored_bit(2048));
  EXPECT_EQ(store.scrub(), 1u);
  EXPECT_EQ(store.scrub(), 0u); // second pass finds nothing left
}

TEST(RRRStoreScrub, UnreplayableGeneratorIsDiagnosed) {
  // A generator whose output drifts between calls breaks the bit-identical
  // replay contract; the scrub must say so instead of "repairing" the
  // arena with different bytes.
  detail::RRRStore store(scrub_policy(ScrubMode::On));
  auto calls = std::make_shared<int>(0);
  store.extend_window(
      0, 600, [calls](RRRCollection &scratch, std::uint64_t first,
                      std::uint64_t count) {
        const std::size_t members = 5 + static_cast<std::size_t>(*calls);
        ++*calls;
        for (std::uint64_t j = first; j < first + count; ++j) {
          RRRSet set(members);
          for (std::size_t i = 0; i < set.size(); ++i)
            set[i] = static_cast<vertex_t>(j % 50 + i);
          scratch.add(std::move(set));
        }
      });
  ASSERT_TRUE(store.flip_stored_bit(99));
  EXPECT_THROW((void)store.scrub(), std::runtime_error);
}

// --- end-to-end: drivers under verification and scrubbing --------------------

CsrGraph healing_graph() {
  CsrGraph graph(barabasi_albert(400, 3, 11));
  assign_uniform_weights(graph, 12);
  return graph;
}

ImmOptions healing_options() {
  ImmOptions options;
  options.epsilon = 0.5;
  options.k = 8;
  options.model = DiffusionModel::IndependentCascade;
  options.seed = 2019;
  options.num_ranks = 3;
  options.rng_mode = RngMode::CounterSequence;
  return options;
}

TEST(ImmIntegrity, VerificationOnAFaultFreeRunChangesNothing) {
  CsrGraph graph = healing_graph();
  ImmOptions options = healing_options();
  options.sampler = SamplerEngine::Fused;
  options.selection_exchange = SelectionExchange::Sparse;
  const ImmResult clean = imm_distributed(graph, options);
  ASSERT_EQ(clean.seeds.size(), options.k);

  options.verify_collectives = true;
  const ImmResult verified = imm_distributed(graph, options);
  EXPECT_EQ(verified.seeds, clean.seeds);
  EXPECT_EQ(verified.theta, clean.theta);
  EXPECT_EQ(verified.num_samples, clean.num_samples);
}

TEST(ImmIntegrity, ScrubbedGovernedRunsMatchTheUngovernedSeeds) {
  CsrGraph graph = healing_graph();
  ImmOptions options = healing_options();
  const ImmResult plain = imm_sequential(graph, options);

  for (ScrubMode mode : {ScrubMode::On, ScrubMode::Paranoid}) {
    ImmOptions scrubbed = options;
    scrubbed.rrr_compress = CompressMode::Always;
    scrubbed.scrub_rrr = mode;
    const ImmResult seq = imm_sequential(graph, scrubbed);
    EXPECT_EQ(seq.seeds, plain.seeds) << to_string(mode);
    EXPECT_EQ(seq.theta, plain.theta) << to_string(mode);
    const ImmResult mt = imm_multithreaded(graph, scrubbed);
    EXPECT_EQ(mt.seeds, plain.seeds) << to_string(mode);
    const ImmResult dist = imm_distributed(graph, scrubbed);
    EXPECT_EQ(dist.seeds, plain.seeds) << to_string(mode);
  }
}

TEST(ImmCorruptionHealing, TransientCorruptionRetriesToTheCleanSeeds) {
  // Non-sticky flips at every early collective site: the retransmit heals
  // each one, so no rank dies (recovery stays off) and the seeds are the
  // failure-free seeds byte for byte.
  CsrGraph graph = healing_graph();
  ImmOptions options = healing_options();
  options.sampler = SamplerEngine::Fused;
  options.selection_exchange = SelectionExchange::Sparse;
  const ImmResult clean = imm_distributed(graph, options);
  ASSERT_EQ(clean.seeds.size(), options.k);

  metrics::set_enabled(true);
  const std::uint64_t escalations0 = counter_value("integrity.escalations");
  options.verify_collectives = true;
  for (std::uint64_t site = 0; site <= 12; ++site) {
    options.fault_plan = "rank=1,site=" + std::to_string(site) +
                         ",kind=corrupt";
    const ImmResult retried = imm_distributed(graph, options);
    EXPECT_EQ(retried.seeds, clean.seeds)
        << "retried seed set diverged for " << options.fault_plan;
  }
  metrics::set_enabled(false);
  EXPECT_EQ(counter_value("integrity.escalations"), escalations0);
}

TEST(ImmCorruptionHealing, FlakyLinksAreAbsorbedByRetries) {
  CsrGraph graph = healing_graph();
  ImmOptions options = healing_options();
  options.sampler = SamplerEngine::Fused;
  options.selection_exchange = SelectionExchange::Sparse;
  const ImmResult clean = imm_distributed(graph, options);

  options.verify_collectives = true;
  for (std::uint64_t site : {std::uint64_t{0}, std::uint64_t{5},
                             std::uint64_t{9}}) {
    options.fault_plan = "rank=2,site=" + std::to_string(site) +
                         ",kind=flaky,attempts=2";
    const ImmResult retried = imm_distributed(graph, options);
    EXPECT_EQ(retried.seeds, clean.seeds)
        << "flaky seed set diverged for " << options.fault_plan;
  }
}

TEST(ImmCorruptionHealing,
     StickyCorruptionAtEverySparseCollectiveSiteHealsBitIdentically) {
  // The acceptance sweep: a sticky corrupter at each early collective site
  // of the fused+sparse protocol exhausts its retry budget, dies with the
  // diagnosis, and the survivors shrink and regenerate its samples — the
  // healed run must return the failure-free seed set exactly.
  CsrGraph graph = healing_graph();
  ImmOptions options = healing_options();
  options.sampler = SamplerEngine::Fused;
  options.selection_exchange = SelectionExchange::Sparse;
  const ImmResult clean = imm_distributed(graph, options);
  ASSERT_EQ(clean.seeds.size(), options.k);

  options.verify_collectives = true;
  options.recover_failures = true;
  for (int rank = 0; rank < options.num_ranks; ++rank) {
    for (std::uint64_t site = 0; site <= 12; ++site) {
      options.fault_plan = "rank=" + std::to_string(rank) +
                           ",site=" + std::to_string(site) +
                           ",kind=corrupt,sticky";
      const ImmResult healed = imm_distributed(graph, options);
      EXPECT_EQ(healed.seeds, clean.seeds)
          << "healed seed set diverged for " << options.fault_plan;
    }
  }
}

TEST(ImmStealCorruption, StickyCorruptionAtStealSitesHealsToo) {
  // With the skewed partition and steal-everything forced, early sites land
  // on steal-channel publishes/acquires as well as collectives; the Slot
  // CRCs route a sticky corrupter into the same shrink-and-heal path.
  CsrGraph graph = healing_graph();
  ImmOptions options = healing_options();
  const ImmResult clean = imm_distributed(graph, options);
  ASSERT_EQ(clean.seeds.size(), options.k);

  steal_schedule::ScopedPlan forced({steal_schedule::Mode::StealEverything, 0});
  options.steal = StealMode::On;
  options.steal_skew = true;
  options.verify_collectives = true;
  {
    const ImmResult stealing = imm_distributed(graph, options);
    ASSERT_EQ(stealing.seeds, clean.seeds) << "fault-free stealing run";
  }

  options.recover_failures = true;
  for (int rank = 0; rank < options.num_ranks; ++rank) {
    for (std::uint64_t site = 0; site <= 12; site += 2) {
      options.fault_plan = "rank=" + std::to_string(rank) +
                           ",site=" + std::to_string(site) +
                           ",kind=corrupt,sticky";
      const ImmResult healed = imm_distributed(graph, options);
      EXPECT_EQ(healed.seeds, clean.seeds)
          << "stealing healed seed set diverged for " << options.fault_plan;
    }
  }
}

} // namespace
} // namespace ripples
