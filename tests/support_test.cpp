// Tests for the support substrate: timers, memory accounting, tables,
// command-line parsing, and the BFS bit vector.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "support/bitvector.hpp"
#include "support/cli.hpp"
#include "support/memory.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace ripples {
namespace {

// --- timers ------------------------------------------------------------------

TEST(StopWatch, MeasuresElapsedTime) {
  StopWatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double elapsed = watch.elapsed_seconds();
  EXPECT_GE(elapsed, 0.015);
  EXPECT_LT(elapsed, 5.0);
}

TEST(StopWatch, RestartResets) {
  StopWatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  watch.restart();
  EXPECT_LT(watch.elapsed_seconds(), 0.015);
}

TEST(PhaseTimers, AccumulatesPerPhase) {
  PhaseTimers timers;
  timers.add(Phase::Sample, 1.5);
  timers.add(Phase::Sample, 0.5);
  timers.add(Phase::SelectSeeds, 0.25);
  EXPECT_DOUBLE_EQ(timers.total(Phase::Sample), 2.0);
  EXPECT_DOUBLE_EQ(timers.total(Phase::SelectSeeds), 0.25);
  EXPECT_DOUBLE_EQ(timers.total(Phase::EstimateTheta), 0.0);
  EXPECT_DOUBLE_EQ(timers.total(), 2.25);
}

TEST(PhaseTimers, MergeAddsBreakdowns) {
  PhaseTimers a, b;
  a.add(Phase::EstimateTheta, 1.0);
  b.add(Phase::EstimateTheta, 2.0);
  b.add(Phase::Other, 0.5);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.total(Phase::EstimateTheta), 3.0);
  EXPECT_DOUBLE_EQ(a.total(Phase::Other), 0.5);
}

TEST(PhaseTimers, ScopedPhaseRecordsScopeLifetime) {
  PhaseTimers timers;
  {
    ScopedPhase scope(timers, Phase::Sample);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(timers.total(Phase::Sample), 0.005);
}

TEST(PhaseTimers, SummaryMentionsEveryPhase) {
  PhaseTimers timers;
  std::string summary = timers.summary();
  for (Phase phase : {Phase::EstimateTheta, Phase::Sample, Phase::SelectSeeds,
                      Phase::Other})
    EXPECT_NE(summary.find(to_string(phase)), std::string::npos);
}

// --- memory tracking ----------------------------------------------------------

TEST(MemoryTracker, TracksLiveAndPeak) {
  MemoryTracker &tracker = MemoryTracker::instance();
  tracker.reset();
  tracker.allocate(1000);
  tracker.allocate(500);
  EXPECT_EQ(tracker.live_bytes(), 1500u);
  tracker.deallocate(1000);
  EXPECT_EQ(tracker.live_bytes(), 500u);
  EXPECT_EQ(tracker.peak_bytes(), 1500u);
  tracker.reset();
}

TEST(TrackingAllocator, ReportsVectorAllocations) {
  MemoryTracker::instance().reset();
  {
    std::vector<int, TrackingAllocator<int>> v;
    v.resize(1024);
    EXPECT_GE(MemoryTracker::instance().live_bytes(), 1024 * sizeof(int));
  }
  EXPECT_EQ(MemoryTracker::instance().live_bytes(), 0u);
  MemoryTracker::instance().reset();
}

TEST(Memory, RssReadersReturnPlausibleValues) {
  std::size_t rss = current_rss_bytes();
  std::size_t peak = peak_rss_bytes();
  EXPECT_GT(rss, 1u << 20); // a running process holds > 1 MB
  EXPECT_GE(peak, rss / 2); // peak is at least of the same order
}

TEST(Memory, FormatBytesUnits) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KB");
  EXPECT_EQ(format_bytes(3 * 1024 * 1024), "3.00 MB");
}

// --- resource sampler --------------------------------------------------------

/// Leaves the process-wide sampler stopped and empty whatever the test did.
struct ScopedSampler {
  ~ScopedSampler() {
    ResourceSampler::instance().stop();
    ResourceSampler::instance().clear();
    ResourceSampler::instance().set_capacity(std::size_t{1} << 16);
  }
};

TEST(ResourceSampler, CollectsSamplesAndStopsCleanly) {
  ScopedSampler guard;
  ResourceSampler &sampler = ResourceSampler::instance();
  sampler.clear();
  sampler.start(200.0); // fast so the test stays short
  EXPECT_TRUE(sampler.running());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  sampler.stop();
  EXPECT_FALSE(sampler.running());

  std::vector<ResourceSample> samples = sampler.samples();
  ASSERT_GE(samples.size(), 2u); // first sample is immediate, then ~5ms apart
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_GT(samples[i].rss_bytes, 1u << 20);
    EXPECT_GE(samples[i].tracker_peak_bytes, samples[i].tracker_live_bytes);
    if (i > 0) EXPECT_GE(samples[i].t_seconds, samples[i - 1].t_seconds);
  }
  // The series is stable after stop: no background thread keeps appending.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(sampler.samples().size(), samples.size());
}

TEST(ResourceSampler, StopRecordsOneFinalSample) {
  // The sampler thread wakes at its period; without a final sample at
  // stop(), anything that happened after the last periodic wake — e.g. the
  // peak of a short run at a slow --profile-mem-hz — would be invisible in
  // the timeline.  Start at a rate far slower than the test, allocate
  // tracked memory only *after* the immediate first sample, and stop: the
  // closing sample must exist and see the allocation.
  ScopedSampler guard;
  ResourceSampler &sampler = ResourceSampler::instance();
  sampler.clear();
  sampler.start(0.5); // one periodic sample every 2 s — never fires here
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const std::size_t before = sampler.samples().size();
  constexpr std::size_t kBytes = 32 << 20;
  MemoryTracker::instance().allocate(kBytes);
  sampler.stop();
  MemoryTracker::instance().deallocate(kBytes);

  std::vector<ResourceSample> samples = sampler.samples();
  ASSERT_GT(samples.size(), before);
  EXPECT_GE(samples.back().tracker_live_bytes, kBytes);
}

TEST(ResourceSampler, StartAndStopAreIdempotent) {
  ScopedSampler guard;
  ResourceSampler &sampler = ResourceSampler::instance();
  sampler.clear();
  sampler.start(100.0);
  sampler.start(100.0); // second start is a no-op, not a second thread
  EXPECT_TRUE(sampler.running());
  sampler.stop();
  sampler.stop(); // second stop is a no-op, not a double join
  EXPECT_FALSE(sampler.running());
}

TEST(ResourceSampler, OverflowDecimatesInsteadOfTruncating) {
  ScopedSampler guard;
  ResourceSampler &sampler = ResourceSampler::instance();
  sampler.clear();
  sampler.set_capacity(8);
  sampler.start(1000.0);
  // At 1 kHz a 100 ms window wants ~100 samples against capacity 8, so the
  // keep-every-other compaction must have fired at least once.
  for (int i = 0; i < 100 && sampler.compactions() == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  sampler.stop();
  EXPECT_GE(sampler.compactions(), 1u);
  std::vector<ResourceSample> samples = sampler.samples();
  EXPECT_LE(samples.size(), 8u + 1);
  // Decimation preserves the whole-run span: the series still starts near
  // the beginning of the window, rather than keeping only a recent window.
  ASSERT_GE(samples.size(), 2u);
  EXPECT_LT(samples.front().t_seconds, samples.back().t_seconds);
}

TEST(ResourceSampler, ClearResetsSeriesAndCompactions) {
  ScopedSampler guard;
  ResourceSampler &sampler = ResourceSampler::instance();
  sampler.clear();
  sampler.start(500.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sampler.stop();
  EXPECT_FALSE(sampler.samples().empty());
  sampler.clear();
  EXPECT_TRUE(sampler.samples().empty());
  EXPECT_EQ(sampler.compactions(), 0u);
}

// --- tables -------------------------------------------------------------------

TEST(Table, PrintsAlignedColumns) {
  Table table("demo", {"name", "value"});
  table.new_row().add("alpha").add(std::uint64_t{42});
  table.new_row().add("b").add(1.5, 2);
  std::ostringstream out;
  table.print(out);
  std::string text = out.str();
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("1.50"), std::string::npos);
}

TEST(Table, CsvRoundTripsCells) {
  Table table("t", {"a", "b", "c"});
  table.new_row().add(1).add(2).add(3);
  std::ostringstream out;
  table.write_csv(out);
  EXPECT_EQ(out.str(), "a,b,c\n1,2,3\n");
}

TEST(TableRow, FormatsNumbersConsistently) {
  TableRow row;
  row.add(3.14159, 2).add(std::int64_t{-7}).add(std::uint64_t{9});
  ASSERT_EQ(row.cells().size(), 3u);
  EXPECT_EQ(row.cells()[0], "3.14");
  EXPECT_EQ(row.cells()[1], "-7");
  EXPECT_EQ(row.cells()[2], "9");
}

// --- command line --------------------------------------------------------------

TEST(CommandLine, ParsesSpaceAndEqualsForms) {
  // Positionals precede options (the documented convention: a bare option
  // would otherwise absorb the next token as its value).
  const char *argv[] = {"prog", "input.txt", "--epsilon", "0.5", "--k=50",
                        "--verbose"};
  CommandLine cli(6, argv);
  EXPECT_DOUBLE_EQ(cli.get("epsilon", 0.0), 0.5);
  EXPECT_EQ(cli.get("k", std::int64_t{0}), 50);
  EXPECT_TRUE(cli.has_flag("verbose"));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "input.txt");
}

TEST(CommandLine, DefaultsWhenAbsent) {
  const char *argv[] = {"prog"};
  CommandLine cli(1, argv);
  EXPECT_DOUBLE_EQ(cli.get("epsilon", 0.13), 0.13);
  EXPECT_EQ(cli.get("model", std::string("IC")), "IC");
  EXPECT_FALSE(cli.get("flag", false));
}

TEST(CommandLine, NegativeNumbersAreValuesNotOptions) {
  const char *argv[] = {"prog", "--offset", "-0.5"};
  CommandLine cli(3, argv);
  EXPECT_DOUBLE_EQ(cli.get("offset", 0.0), -0.5);
}

TEST(CommandLine, BooleanParsing) {
  const char *argv[] = {"prog", "--a", "true", "--b=off", "--c"};
  CommandLine cli(5, argv);
  EXPECT_TRUE(cli.get("a", false));
  EXPECT_FALSE(cli.get("b", true));
  EXPECT_TRUE(cli.get("c", false));
}

TEST(CommandLine, SingleDashAlias) {
  const char *argv[] = {"prog", "-k", "25"};
  CommandLine cli(3, argv);
  EXPECT_EQ(cli.get("k", std::int64_t{0}), 25);
}

TEST(CommandLineDeathTest, MalformedIntegerExitsNamingTheFlag) {
  const char *argv[] = {"prog", "--k", "fifty"};
  CommandLine cli(3, argv);
  EXPECT_EXIT((void)cli.get("k", std::int64_t{0}),
              ::testing::ExitedWithCode(2), "--k expects an integer");
}

TEST(CommandLineDeathTest, OverflowedIntegerIsRejectedNotSaturated) {
  // strtoll would silently clamp to LLONG_MAX; the parser must treat
  // out-of-range the same as malformed.
  const char *argv[] = {"prog", "--watchdog-ms", "99999999999999999999999"};
  CommandLine cli(3, argv);
  EXPECT_EXIT((void)cli.get("watchdog-ms", std::int64_t{0}),
              ::testing::ExitedWithCode(2), "--watchdog-ms.*out of range");
}

TEST(CommandLineDeathTest, OverflowedDoubleIsRejected) {
  const char *argv[] = {"prog", "--epsilon", "1e999"};
  CommandLine cli(3, argv);
  EXPECT_EXIT((void)cli.get("epsilon", 0.5), ::testing::ExitedWithCode(2),
              "--epsilon.*out of range");
}

TEST(CommandLineDeathTest, BoundedRejectsNegativeForUnsignedOptions) {
  const char *argv[] = {"prog", "--checkpoint-every=-1"};
  CommandLine cli(2, argv);
  EXPECT_EXIT((void)cli.get_bounded("checkpoint-every", 1, 1, 1000),
              ::testing::ExitedWithCode(2),
              "--checkpoint-every expects a value in \\[1, 1000\\], got -1");
}

TEST(CommandLineDeathTest, BoundedRejectsValuesPastTheUpperBound) {
  const char *argv[] = {"prog", "--threads", "5000000000"};
  CommandLine cli(3, argv);
  EXPECT_EXIT((void)cli.get_bounded("threads", 1, 1, 4294967295LL),
              ::testing::ExitedWithCode(2), "--threads expects a value in");
}

TEST(CommandLine, BoundedAcceptsInRangeValuesAndDefaults) {
  const char *argv[] = {"prog", "--k", "25"};
  CommandLine cli(3, argv);
  EXPECT_EQ(cli.get_bounded("k", 50, 1, 4294967295LL), 25);
  EXPECT_EQ(cli.get_bounded("ranks", 2, 1, 1 << 20), 2);
  // The bounds are inclusive on both ends.
  EXPECT_EQ(cli.get_bounded("k", 50, 25, 25), 25);
}

// --- bit vector ------------------------------------------------------------------

TEST(BitVector, SetTestClear) {
  BitVector bits(200);
  EXPECT_FALSE(bits.test(63));
  bits.set(63);
  bits.set(64);
  bits.set(199);
  EXPECT_TRUE(bits.test(63));
  EXPECT_TRUE(bits.test(64));
  EXPECT_TRUE(bits.test(199));
  EXPECT_FALSE(bits.test(0));
  bits.clear(64);
  EXPECT_FALSE(bits.test(64));
  EXPECT_EQ(bits.count(), 2u);
}

TEST(BitVector, TestAndSetReportsFirstVisit) {
  BitVector bits(100);
  EXPECT_TRUE(bits.test_and_set(42));  // first visit
  EXPECT_FALSE(bits.test_and_set(42)); // already visited
  EXPECT_TRUE(bits.test(42));
}

TEST(BitVector, ResetClearsEverything) {
  BitVector bits(130);
  for (std::size_t i = 0; i < 130; i += 7) bits.set(i);
  bits.reset();
  EXPECT_EQ(bits.count(), 0u);
}

TEST(BitVector, AssignResizes) {
  BitVector bits(10);
  bits.set(3);
  bits.assign(300);
  EXPECT_EQ(bits.size(), 300u);
  EXPECT_EQ(bits.count(), 0u);
  bits.set(299);
  EXPECT_TRUE(bits.test(299));
}

// --- lane-mask vector --------------------------------------------------------

TEST(LaneMaskVector, PerLaneBitsAreIndependent) {
  LaneMaskVector visited(100);
  EXPECT_EQ(visited.size(), 100u);
  visited.set(7, 0);
  visited.set(7, 63);
  visited.set(8, 5);
  EXPECT_TRUE(visited.test(7, 0));
  EXPECT_TRUE(visited.test(7, 63));
  EXPECT_FALSE(visited.test(7, 5));
  EXPECT_FALSE(visited.test(8, 0));
  EXPECT_TRUE(visited.test(8, 5));
  EXPECT_EQ(visited.word(7), (std::uint64_t{1} << 63) | 1u);
}

TEST(LaneMaskVector, SetFirstReportsOnlyTheFirstLaneToTouchAVertex) {
  LaneMaskVector visited(10);
  EXPECT_TRUE(visited.set_first(4, 9));
  EXPECT_FALSE(visited.set_first(4, 9));
  EXPECT_FALSE(visited.set_first(4, 10));
  EXPECT_TRUE(visited.set_first(5, 10));
  EXPECT_EQ(visited.word(4), (std::uint64_t{1} << 9) | (std::uint64_t{1} << 10));
}

TEST(LaneMaskVector, WordOperationsComposeWithBitOperations) {
  LaneMaskVector visited(10);
  visited.or_word(2, 0xF0);
  EXPECT_TRUE(visited.test(2, 4));
  visited.store_word(2, 0x0F);
  EXPECT_FALSE(visited.test(2, 4));
  EXPECT_TRUE(visited.test(2, 0));
  visited.word_data()[2] |= std::uint64_t{1} << 40;
  EXPECT_TRUE(visited.test(2, 40));
  visited.clear_word(2);
  EXPECT_EQ(visited.word(2), 0u);
}

TEST(LaneMaskVector, ResetAndAssignClearEverything) {
  LaneMaskVector visited(20);
  visited.set(1, 1);
  visited.reset();
  EXPECT_EQ(visited.word(1), 0u);
  visited.set(2, 2);
  visited.assign(64);
  EXPECT_EQ(visited.size(), 64u);
  EXPECT_EQ(visited.word(2), 0u);
}

} // namespace
} // namespace ripples
