// Tests for the span tracer: Chrome trace-event JSON schema, span nesting,
// rank/thread identity, concurrent emission, the ring-buffer overflow
// policy, and full-stack coverage when real drivers run under tracing.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "imm/imm.hpp"
#include "support/json.hpp"
#include "support/trace.hpp"

namespace ripples {
namespace {

/// RAII harness: every test starts from an empty, enabled (or disabled)
/// tracer and leaves it disabled and empty, with the default ring capacity
/// restored, so no state leaks across tests.
struct ScopedTrace {
  explicit ScopedTrace(bool on = true) {
    trace::clear();
    trace::set_enabled(on);
  }
  ~ScopedTrace() {
    trace::set_enabled(false);
    trace::clear();
    trace::set_buffer_capacity(std::size_t{1} << 15);
  }
};

JsonValue parse_trace() {
  auto parsed = JsonValue::parse(trace::to_json_string());
  EXPECT_TRUE(parsed.has_value());
  return parsed.value_or(JsonValue{});
}

/// Non-metadata events (the actual samples; "M" entries carry names only).
std::vector<const JsonValue *> data_events(const JsonValue &doc) {
  std::vector<const JsonValue *> events;
  for (const JsonValue &event : doc.find("traceEvents")->array)
    if (event.find("ph")->string != "M") events.push_back(&event);
  return events;
}

const JsonValue *find_event(const JsonValue &doc, const std::string &name) {
  for (const JsonValue *event : data_events(doc))
    if (event->find("name")->string == name) return event;
  return nullptr;
}

/// Asserts one document is structurally valid Chrome trace-event JSON.
void check_trace_schema(const JsonValue &doc) {
  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.find("displayTimeUnit"), nullptr);
  ASSERT_NE(doc.find("otherData"), nullptr);
  ASSERT_NE(doc.find("otherData")->find("dropped_events"), nullptr);
  const JsonValue *events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  for (const JsonValue &event : events->array) {
    ASSERT_TRUE(event.is_object());
    ASSERT_NE(event.find("name"), nullptr);
    const JsonValue *ph = event.find("ph");
    ASSERT_NE(ph, nullptr);
    const std::string &code = ph->string;
    ASSERT_TRUE(code == "X" || code == "i" || code == "C" || code == "M" ||
                code == "s" || code == "t" || code == "f")
        << code;
    ASSERT_NE(event.find("pid"), nullptr);
    if (code == "M") continue; // metadata: no timestamp
    ASSERT_NE(event.find("cat"), nullptr);
    ASSERT_NE(event.find("ts"), nullptr);
    ASSERT_NE(event.find("tid"), nullptr);
    EXPECT_GE(event.find("ts")->number, 0.0);
    if (code == "X") {
      ASSERT_NE(event.find("dur"), nullptr);
      EXPECT_GE(event.find("dur")->number, 0.0);
    }
    if (code == "i") EXPECT_EQ(event.find("s")->string, "t");
    if (code == "s" || code == "t" || code == "f") {
      ASSERT_NE(event.find("id"), nullptr);
      EXPECT_GT(event.find("id")->number, 0.0);
    }
    // Flow ends bind to the enclosing slice so the arrow lands on the
    // consumer's span, not on whatever slice starts next.
    if (code == "f") EXPECT_EQ(event.find("bp")->string, "e");
  }
}

TEST(Trace, DisabledTracingEmitsNothing) {
  ScopedTrace off(false);
  {
    trace::Span span("trace_test", "trace_test.disabled_span", "k", 1);
    trace::instant("trace_test", "trace_test.disabled_instant");
    trace::counter("trace_test.disabled_counter", 42);
  }
  JsonValue doc = parse_trace();
  check_trace_schema(doc);
  EXPECT_TRUE(data_events(doc).empty());
  EXPECT_EQ(doc.find("otherData")->find("dropped_events")->number, 0.0);
}

TEST(Trace, EmitsSchemaValidEventsWithArgs) {
  ScopedTrace on;
  {
    trace::Span span("trace_test", "trace_test.span", "alpha", 3, "beta", 7);
    trace::instant("trace_test", "trace_test.instant", "gamma", 11);
    trace::counter("trace_test.track", 42);
  }
  JsonValue doc = parse_trace();
  check_trace_schema(doc);

  const JsonValue *span = find_event(doc, "trace_test.span");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->find("ph")->string, "X");
  EXPECT_EQ(span->find("cat")->string, "trace_test");
  EXPECT_EQ(span->find("args")->find("alpha")->number, 3.0);
  EXPECT_EQ(span->find("args")->find("beta")->number, 7.0);

  const JsonValue *instant = find_event(doc, "trace_test.instant");
  ASSERT_NE(instant, nullptr);
  EXPECT_EQ(instant->find("ph")->string, "i");
  EXPECT_EQ(instant->find("args")->find("gamma")->number, 11.0);

  const JsonValue *counter = find_event(doc, "trace_test.track");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->find("ph")->string, "C");
  EXPECT_EQ(counter->find("args")->find("value")->number, 42.0);
}

TEST(Trace, NestedSpansAreEnclosedByTheirParent) {
  ScopedTrace on;
  {
    trace::Span outer("trace_test", "trace_test.outer");
    trace::instant("trace_test", "trace_test.before_inner");
    {
      trace::Span inner("trace_test", "trace_test.inner");
      volatile std::uint64_t sink = 0;
      for (int i = 0; i < 10000; ++i) sink += static_cast<std::uint64_t>(i);
    }
  }
  JsonValue doc = parse_trace();
  const JsonValue *outer = find_event(doc, "trace_test.outer");
  const JsonValue *inner = find_event(doc, "trace_test.inner");
  const JsonValue *marker = find_event(doc, "trace_test.before_inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(marker, nullptr);

  const double outer_start = outer->find("ts")->number;
  const double outer_end = outer_start + outer->find("dur")->number;
  const double inner_start = inner->find("ts")->number;
  const double inner_end = inner_start + inner->find("dur")->number;
  EXPECT_GE(inner_start, outer_start);
  EXPECT_LE(inner_end, outer_end);
  EXPECT_GE(marker->find("ts")->number, outer_start);
  EXPECT_LE(marker->find("ts")->number, inner_start);
}

TEST(Trace, PostHocArgsAttachAndOverflowingArgsAreDropped) {
  ScopedTrace on;
  {
    trace::Span span("trace_test", "trace_test.posthoc");
    span.arg("late", 5);
    span.arg("later", 6);
    span.arg("overflow", 7); // third arg: beyond kMaxArgs, dropped
  }
  JsonValue doc = parse_trace();
  const JsonValue *span = find_event(doc, "trace_test.posthoc");
  ASSERT_NE(span, nullptr);
  const JsonValue *args = span->find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->find("late")->number, 5.0);
  EXPECT_EQ(args->find("later")->number, 6.0);
  EXPECT_EQ(args->find("overflow"), nullptr);
}

TEST(Trace, RankScopeMapsEventsToProcessIds) {
  ScopedTrace on;
  trace::instant("trace_test", "trace_test.default_rank");
  {
    trace::RankScope scope(5);
    EXPECT_EQ(trace::thread_rank(), 5);
    trace::instant("trace_test", "trace_test.rank5");
    {
      trace::RankScope nested(2);
      trace::instant("trace_test", "trace_test.rank2");
    }
    EXPECT_EQ(trace::thread_rank(), 5);
  }
  EXPECT_EQ(trace::thread_rank(), 0);

  JsonValue doc = parse_trace();
  EXPECT_EQ(find_event(doc, "trace_test.default_rank")->find("pid")->number,
            0.0);
  EXPECT_EQ(find_event(doc, "trace_test.rank5")->find("pid")->number, 5.0);
  EXPECT_EQ(find_event(doc, "trace_test.rank2")->find("pid")->number, 2.0);

  // Every pid referenced by an event gets a process_name metadata record.
  std::set<double> named_pids;
  for (const JsonValue &event : doc.find("traceEvents")->array)
    if (event.find("ph")->string == "M" &&
        event.find("name")->string == "process_name")
      named_pids.insert(event.find("pid")->number);
  EXPECT_TRUE(named_pids.count(0.0));
  EXPECT_TRUE(named_pids.count(2.0));
  EXPECT_TRUE(named_pids.count(5.0));
}

TEST(Trace, ConcurrentThreadsEmitIntoDistinctBuffers) {
  ScopedTrace on;
  constexpr int kThreads = 4;
  constexpr int kEventsPerThread = 25;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([] {
      for (int i = 0; i < kEventsPerThread; ++i)
        trace::instant("trace_test", "trace_test.worker", "i",
                       static_cast<std::uint64_t>(i));
    });
  for (std::thread &worker : workers) worker.join();

  JsonValue doc = parse_trace();
  check_trace_schema(doc);
  std::map<double, int> per_tid;
  std::map<double, double> last_ts;
  for (const JsonValue *event : data_events(doc)) {
    if (event->find("name")->string != "trace_test.worker") continue;
    const double tid = event->find("tid")->number;
    ++per_tid[tid];
    // Within one buffer, emission order is preserved: ts never decreases.
    auto it = last_ts.find(tid);
    if (it != last_ts.end()) EXPECT_GE(event->find("ts")->number, it->second);
    last_ts[tid] = event->find("ts")->number;
  }
  ASSERT_EQ(per_tid.size(), static_cast<std::size_t>(kThreads));
  for (const auto &[tid, count] : per_tid) EXPECT_EQ(count, kEventsPerThread);
}

TEST(Trace, OverflowKeepsTheNewestWindowAndCountsDrops) {
  ScopedTrace on;
  constexpr std::size_t kCapacity = 16;
  constexpr std::uint64_t kEmitted = 100;
  trace::set_buffer_capacity(kCapacity); // applies to buffers created after
  std::thread worker([] {
    for (std::uint64_t i = 0; i < kEmitted; ++i)
      trace::instant("trace_test", "trace_test.flood", "i", i);
  });
  worker.join();

  JsonValue doc = parse_trace();
  check_trace_schema(doc);
  std::vector<double> kept;
  for (const JsonValue *event : data_events(doc))
    if (event->find("name")->string == "trace_test.flood")
      kept.push_back(event->find("args")->find("i")->number);
  // Overwrite-oldest policy: exactly the last `capacity` events survive.
  ASSERT_EQ(kept.size(), kCapacity);
  for (std::size_t j = 0; j < kept.size(); ++j)
    EXPECT_EQ(kept[j], static_cast<double>(kEmitted - kCapacity + j));
  EXPECT_EQ(doc.find("otherData")->find("dropped_events")->number,
            static_cast<double>(kEmitted - kCapacity));
}

TEST(Trace, FlowEventsCarryBindingIdsAndSchema) {
  ScopedTrace on;
  const std::uint64_t id = trace::new_flow_id();
  {
    trace::Span producer("trace_test", "trace_test.producer");
    trace::flow_begin("trace_test", "trace_test.flow", id);
  }
  {
    trace::Span relay("trace_test", "trace_test.relay");
    trace::flow_step("trace_test", "trace_test.flow", id);
  }
  {
    trace::Span consumer("trace_test", "trace_test.consumer");
    trace::flow_end("trace_test", "trace_test.flow", id);
  }

  JsonValue doc = parse_trace();
  check_trace_schema(doc);
  double start_ts = -1.0, step_ts = -1.0, end_ts = -1.0;
  for (const JsonValue *event : data_events(doc)) {
    if (event->find("name")->string != "trace_test.flow") continue;
    EXPECT_EQ(event->find("id")->number, static_cast<double>(id));
    const std::string &code = event->find("ph")->string;
    if (code == "s") start_ts = event->find("ts")->number;
    if (code == "t") step_ts = event->find("ts")->number;
    if (code == "f") end_ts = event->find("ts")->number;
  }
  ASSERT_GE(start_ts, 0.0);
  ASSERT_GE(step_ts, 0.0);
  ASSERT_GE(end_ts, 0.0);
  EXPECT_LE(start_ts, step_ts);
  EXPECT_LE(step_ts, end_ts);
}

TEST(Trace, FlowIdsAreProcessUniqueAndBlocksDoNotOverlap) {
  ScopedTrace on;
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    std::uint64_t id = trace::new_flow_id();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(ids.insert(id).second);
  }
  // Block allocation hands out `count` consecutive ids none of which can
  // collide with ids minted before or after the block.
  const std::uint64_t base = trace::new_flow_ids(4);
  for (std::uint64_t offset = 0; offset < 4; ++offset)
    EXPECT_TRUE(ids.insert(base + offset).second);
  EXPECT_TRUE(ids.insert(trace::new_flow_id()).second);
}

TEST(Trace, DisabledTracingEmitsNoFlowEvents) {
  ScopedTrace off(false);
  const std::uint64_t id = trace::new_flow_id();
  trace::flow_begin("trace_test", "trace_test.flow", id);
  trace::flow_step("trace_test", "trace_test.flow", id);
  trace::flow_end("trace_test", "trace_test.flow", id);
  JsonValue doc = parse_trace();
  EXPECT_TRUE(data_events(doc).empty());
}

TEST(Trace, ClearDiscardsBufferedEvents) {
  ScopedTrace on;
  trace::instant("trace_test", "trace_test.to_discard");
  trace::clear();
  JsonValue doc = parse_trace();
  EXPECT_TRUE(data_events(doc).empty());
}

// --- driver integration ------------------------------------------------------

CsrGraph trace_test_graph() {
  CsrGraph graph(barabasi_albert(300, 2, 1));
  assign_uniform_weights(graph, 2);
  return graph;
}

std::set<std::string> traced_categories(const JsonValue &doc) {
  std::set<std::string> categories;
  for (const JsonValue *event : data_events(doc))
    categories.insert(event->find("cat")->string);
  return categories;
}

TEST(Trace, MultithreadedDriverCoversItsSubsystems) {
  ScopedTrace on;
  ImmOptions options;
  options.epsilon = 0.5;
  options.k = 5;
  options.seed = 2019;
  options.num_threads = 2;
  (void)imm_multithreaded(trace_test_graph(), options);

  JsonValue doc = parse_trace();
  check_trace_schema(doc);
  std::set<std::string> categories = traced_categories(doc);
  for (const char *expected : {"imm", "sampler", "select", "theta", "counter"})
    EXPECT_TRUE(categories.count(expected)) << expected;
  EXPECT_NE(find_event(doc, "sampler.worker"), nullptr);
  EXPECT_NE(find_event(doc, "rrr_sets"), nullptr);
}

TEST(Trace, DistributedDriverCoversRanksAndCollectives) {
  ScopedTrace on;
  ImmOptions options;
  options.epsilon = 0.5;
  options.k = 5;
  options.seed = 2019;
  options.num_ranks = 2;
  (void)imm_distributed(trace_test_graph(), options);

  JsonValue doc = parse_trace();
  check_trace_schema(doc);
  // The acceptance bar: spans from at least the four core subsystems.
  std::set<std::string> categories = traced_categories(doc);
  for (const char *expected : {"imm", "sampler", "select", "mpsim"})
    EXPECT_TRUE(categories.count(expected)) << expected;

  // Ranks map to trace processes: both ranks appear, and every allreduce
  // span carries its payload size.
  std::set<double> pids;
  for (const JsonValue *event : data_events(doc)) {
    pids.insert(event->find("pid")->number);
    if (event->find("name")->string == "mpsim.allreduce")
      EXPECT_GT(event->find("args")->find("bytes")->number, 0.0);
  }
  EXPECT_TRUE(pids.count(0.0));
  EXPECT_TRUE(pids.count(1.0));
  ASSERT_NE(find_event(doc, "mpsim.rank"), nullptr);
}

TEST(Trace, DistributedDriverFlowsPairAndBindUniquely) {
  ScopedTrace on;
  ImmOptions options;
  options.epsilon = 0.5;
  options.k = 5;
  options.seed = 2019;
  options.num_ranks = 2;
  (void)imm_distributed(trace_test_graph(), options);

  JsonValue doc = parse_trace();
  check_trace_schema(doc);
  // Collect the flow events by binding id.  Clean-run invariant: every
  // start pairs with exactly one end whose timestamp does not precede it;
  // no id carries two starts (uniqueness is what makes Perfetto draw one
  // arrow per batch/collective rather than a tangle).
  std::map<double, int> starts, ends;
  std::map<double, double> start_ts, end_ts;
  std::size_t batch_flows = 0, collective_flows = 0;
  for (const JsonValue *event : data_events(doc)) {
    const std::string &code = event->find("ph")->string;
    if (code != "s" && code != "f") continue;
    const double id = event->find("id")->number;
    if (code == "s") {
      ++starts[id];
      start_ts[id] = event->find("ts")->number;
      const std::string &name = event->find("name")->string;
      if (name == "flow.rrr_batch") ++batch_flows;
      if (name == "flow.collective") ++collective_flows;
    } else {
      ++ends[id];
      end_ts[id] = event->find("ts")->number;
    }
  }
  // Both flow families must be present: each rank's sampler batches feed
  // selection, and the collectives link completer to released waiters.
  EXPECT_GE(batch_flows, 2u); // >= 1 batch per rank
  EXPECT_GE(collective_flows, 1u);
  ASSERT_FALSE(starts.empty());
  for (const auto &[id, count] : starts) {
    EXPECT_EQ(count, 1) << "flow id " << id << " started twice";
    ASSERT_EQ(ends.count(id), 1u) << "flow id " << id << " never ended";
    EXPECT_EQ(ends[id], 1) << "flow id " << id << " ended twice";
    EXPECT_GE(end_ts[id], start_ts[id]) << "flow id " << id;
  }
  for (const auto &[id, count] : ends)
    EXPECT_EQ(starts.count(id), 1u) << "flow id " << id << " has no start";
}

TEST(Trace, DistributedDriverWithTracingOffEmitsNothing) {
  ScopedTrace off(false);
  ImmOptions options;
  options.epsilon = 0.5;
  options.k = 5;
  options.seed = 2019;
  options.num_ranks = 2;
  (void)imm_distributed(trace_test_graph(), options);
  JsonValue doc = parse_trace();
  EXPECT_TRUE(data_events(doc).empty());
  EXPECT_EQ(doc.find("otherData")->find("dropped_events")->number, 0.0);
}

} // namespace
} // namespace ripples
