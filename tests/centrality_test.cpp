// Tests for degree and Brandes betweenness centrality against hand-computed
// values on canonical topologies.
#include <gtest/gtest.h>

#include <algorithm>

#include "centrality/betweenness.hpp"
#include "centrality/degree.hpp"
#include "graph/generators.hpp"

namespace ripples {
namespace {

TEST(DegreeCentrality, CountsBothDirections) {
  EdgeList list;
  list.num_vertices = 3;
  list.edges = {{0, 1, 1.0f}, {1, 2, 1.0f}, {2, 0, 1.0f}};
  std::vector<std::uint32_t> degree = degree_centrality(CsrGraph(list));
  EXPECT_EQ(degree, (std::vector<std::uint32_t>{2, 2, 2}));
}

TEST(TopKByScore, RanksAndBreaksTies) {
  std::vector<double> scores{0.5, 2.0, 2.0, 0.1};
  std::vector<vertex_t> top = top_k_by_score(std::span<const double>(scores), 3);
  EXPECT_EQ(top, (std::vector<vertex_t>{1, 2, 0}));
}

TEST(Betweenness, PathGraphMiddleDominates) {
  // Undirected path 0 - 1 - 2 - 3 - 4 (arcs both ways): betweenness of the
  // middle vertex 2 is highest; endpoints are 0.
  CsrGraph graph(grid_2d(1, 5));
  std::vector<double> bc = betweenness_centrality(graph);
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  EXPECT_DOUBLE_EQ(bc[4], 0.0);
  // Vertex 2 lies on the shortest path of every pair straddling it:
  // pairs {0,1}x{3,4} in both directions = 8, plus {1}x{3}... computed:
  // ordered pairs through 2: (0,3),(0,4),(1,3),(1,4),(3,0),(4,0),(3,1),(4,1)
  EXPECT_DOUBLE_EQ(bc[2], 8.0);
  EXPECT_GT(bc[2], bc[1]);
  EXPECT_DOUBLE_EQ(bc[1], bc[3]); // symmetry
}

TEST(Betweenness, StarHubCarriesAllPairs) {
  // Bidirectional star with 6 leaves: every leaf pair's unique shortest path
  // passes through the hub; ordered leaf pairs = 6*5 = 30.
  CsrGraph graph(star_graph(6, true));
  std::vector<double> bc = betweenness_centrality(graph);
  EXPECT_DOUBLE_EQ(bc[0], 30.0);
  for (vertex_t leaf = 1; leaf <= 6; ++leaf) EXPECT_DOUBLE_EQ(bc[leaf], 0.0);
}

TEST(Betweenness, CompleteGraphAllZero) {
  CsrGraph graph(complete_graph(5));
  std::vector<double> bc = betweenness_centrality(graph);
  for (double score : bc) EXPECT_DOUBLE_EQ(score, 0.0);
}

TEST(Betweenness, SplitsCreditAcrossEqualPaths) {
  // Diamond: 0 -> 1 -> 3 and 0 -> 2 -> 3 (directed).  Each middle vertex
  // carries half of the single (0,3) pair.
  EdgeList list;
  list.num_vertices = 4;
  list.edges = {{0, 1, 1}, {0, 2, 1}, {1, 3, 1}, {2, 3, 1}};
  CsrGraph graph(list);
  std::vector<double> bc = betweenness_centrality(graph);
  EXPECT_DOUBLE_EQ(bc[1], 0.5);
  EXPECT_DOUBLE_EQ(bc[2], 0.5);
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  EXPECT_DOUBLE_EQ(bc[3], 0.0);
}

TEST(Betweenness, DisconnectedComponentsAreIndependent) {
  // Two disjoint directed paths: scores must match the single-path case.
  EdgeList list;
  list.num_vertices = 6;
  list.edges = {{0, 1, 1}, {1, 2, 1}, {3, 4, 1}, {4, 5, 1}};
  CsrGraph graph(list);
  std::vector<double> bc = betweenness_centrality(graph);
  EXPECT_DOUBLE_EQ(bc[1], 1.0); // on the (0,2) path
  EXPECT_DOUBLE_EQ(bc[4], 1.0);
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  EXPECT_DOUBLE_EQ(bc[2], 0.0);
}

TEST(BetweennessSampled, FullSourceSetMatchesExact) {
  CsrGraph graph(barabasi_albert(150, 2, 3));
  std::vector<double> exact = betweenness_centrality(graph);
  // Sampling all n sources without replacement isn't what the estimator
  // does; instead verify the estimator's ranking correlates with the exact
  // top vertex on a hub-heavy graph.
  std::vector<double> sampled = betweenness_centrality_sampled(graph, 150, 5);
  auto exact_top = top_k_by_score(std::span<const double>(exact), 5);
  auto sampled_top = top_k_by_score(std::span<const double>(sampled), 5);
  // The clear #1 hub must agree.
  EXPECT_EQ(exact_top[0], sampled_top[0]);
}

TEST(BetweennessSampled, DeterministicInSeed) {
  CsrGraph graph(barabasi_albert(100, 2, 7));
  std::vector<double> a = betweenness_centrality_sampled(graph, 30, 11);
  std::vector<double> b = betweenness_centrality_sampled(graph, 30, 11);
  EXPECT_EQ(a, b);
}

TEST(BetweennessSampled, RescalesUnbiasedly) {
  // On the bidirectional star the hub's exact score is 30; the sampled
  // estimate over half the sources should be within a reasonable band.
  CsrGraph graph(star_graph(6, true));
  std::vector<double> sampled = betweenness_centrality_sampled(graph, 4, 13);
  EXPECT_GT(sampled[0], 10.0);
  EXPECT_LT(sampled[0], 60.0);
}

} // namespace
} // namespace ripples
