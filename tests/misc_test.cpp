// Cross-cutting tests: logging levels, table CSV emission to disk,
// assertion guards (death tests), and umbrella-header hygiene.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "ripples/ripples.hpp"

namespace ripples {
namespace {

TEST(Log, LevelGatingIsMonotone) {
  LogLevel original = log_level();
  set_log_level(LogLevel::Warn);
  EXPECT_EQ(log_level(), LogLevel::Warn);
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(original);
}

TEST(Log, EmittingBelowThresholdDoesNotCrash) {
  LogLevel original = log_level();
  set_log_level(LogLevel::Error);
  RIPPLES_LOG_DEBUG("suppressed %d", 42);
  RIPPLES_LOG_INFO("suppressed %s", "too");
  set_log_level(original);
}

TEST(Table, EmitWritesCsvFile) {
  auto path = std::filesystem::temp_directory_path() /
              ("ripples_table_" + std::to_string(::getpid()) + ".csv");
  Table table("t", {"x", "y"});
  table.new_row().add(1).add(2);
  table.emit(path.string());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header, "x,y");
  EXPECT_EQ(row, "1,2");
  std::filesystem::remove(path);
}

using MiscDeathTest = ::testing::Test;

TEST(MiscDeathTest, AssertAbortsWithMessage) {
  EXPECT_DEATH(RIPPLES_ASSERT_MSG(1 == 2, "must hold"), "must hold");
}

TEST(MiscDeathTest, ThetaScheduleRejectsBadEpsilon) {
  EXPECT_DEATH((void)ThetaSchedule(100, 5, 0.0), "epsilon");
  EXPECT_DEATH((void)ThetaSchedule(100, 5, 1.5), "epsilon");
}

TEST(MiscDeathTest, ThetaScheduleRejectsBadK) {
  EXPECT_DEATH((void)ThetaSchedule(100, 0, 0.5), "seed count");
  EXPECT_DEATH((void)ThetaSchedule(100, 101, 0.5), "seed count");
}

TEST(MiscDeathTest, LeapfrogRejectsOutOfRangeStream) {
  Lcg64 base(1);
  EXPECT_DEATH((void)base.leapfrog(4, 4), "stream < num_streams");
}

TEST(MiscDeathTest, DistributedLeapfrogWithThreadsIsRejected) {
  CsrGraph graph(path_graph(16));
  assign_constant_weights(graph, 0.5f);
  ImmOptions options;
  options.k = 2;
  options.num_ranks = 2;
  options.num_threads = 2;
  options.rng_mode = RngMode::LeapfrogLcg;
  EXPECT_DEATH((void)imm_distributed(graph, options), "leap-frog");
}

TEST(UmbrellaHeader, ExposesTheWholePublicSurface) {
  // Compile-time check by construction; spot-check a few symbols from every
  // module resolve through ripples.hpp alone (this TU includes nothing
  // else).
  EXPECT_STREQ(to_string(Phase::Sample), "Sample");
  EXPECT_STREQ(to_string(DiffusionModel::LinearThreshold), "LT");
  EXPECT_EQ(dataset_registry().size(), 8u);
  EXPECT_GT(log_binomial(10, 5), 0.0);
  Lcg64 lcg(1);
  Xoshiro256 xo(1);
  Philox4x32 ph(1);
  SplitMix64 sm(1);
  EXPECT_NE(lcg(), 0u);
  EXPECT_NE(xo(), sm());
  (void)ph();
}

} // namespace
} // namespace ripples
