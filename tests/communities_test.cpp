// Tests for label-propagation communities, the proportional seed
// allocation heuristic, and the k-shell decomposition.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "centrality/communities.hpp"
#include "centrality/kcore.hpp"
#include "graph/generators.hpp"

namespace ripples {
namespace {

/// Two dense cliques joined by one bridge edge — the canonical
/// two-community graph.
EdgeList two_cliques(vertex_t clique_size) {
  EdgeList list;
  list.num_vertices = 2 * clique_size;
  auto add_clique = [&](vertex_t base) {
    for (vertex_t u = 0; u < clique_size; ++u)
      for (vertex_t v = 0; v < clique_size; ++v)
        if (u != v)
          list.edges.push_back({static_cast<vertex_t>(base + u),
                                static_cast<vertex_t>(base + v), 1.0f});
  };
  add_clique(0);
  add_clique(clique_size);
  list.edges.push_back({0, clique_size, 1.0f});
  list.edges.push_back({clique_size, 0, 1.0f});
  return list;
}

TEST(LabelPropagation, SeparatesTwoCliques) {
  CsrGraph graph(two_cliques(10));
  CommunityAssignment communities = label_propagation(graph, 20, 1);
  EXPECT_EQ(communities.num_communities, 2u);
  // All members of one clique share a label, and the two cliques differ.
  for (vertex_t v = 1; v < 10; ++v)
    EXPECT_EQ(communities.label_of[v], communities.label_of[0]);
  for (vertex_t v = 11; v < 20; ++v)
    EXPECT_EQ(communities.label_of[v], communities.label_of[10]);
  EXPECT_NE(communities.label_of[0], communities.label_of[10]);
}

TEST(LabelPropagation, SizesSumToN) {
  CsrGraph graph(barabasi_albert(300, 3, 5));
  CommunityAssignment communities = label_propagation(graph, 10, 2);
  std::uint32_t total = 0;
  for (std::uint32_t size : communities.size_of) total += size;
  EXPECT_EQ(total, graph.num_vertices());
  for (std::uint32_t label : communities.label_of)
    EXPECT_LT(label, communities.num_communities);
}

TEST(LabelPropagation, IsolatedVerticesKeepOwnCommunities) {
  EdgeList list;
  list.num_vertices = 5;
  list.edges = {{0, 1, 1.0f}, {1, 0, 1.0f}};
  CsrGraph graph(list);
  CommunityAssignment communities = label_propagation(graph, 5, 3);
  // {0,1} merge; 2,3,4 remain singletons: 4 communities.
  EXPECT_EQ(communities.num_communities, 4u);
  EXPECT_EQ(communities.label_of[0], communities.label_of[1]);
}

TEST(LabelPropagation, DeterministicInSeed) {
  CsrGraph graph(watts_strogatz(200, 3, 0.1, 7));
  CommunityAssignment a = label_propagation(graph, 10, 11);
  CommunityAssignment b = label_propagation(graph, 10, 11);
  EXPECT_EQ(a.label_of, b.label_of);
}

TEST(CommunityProportionalSeeds, RespectsQuotas) {
  CsrGraph graph(two_cliques(10));
  CommunityAssignment communities = label_propagation(graph, 20, 1);
  std::vector<vertex_t> seeds =
      community_proportional_seeds(graph, communities, 4, 0.1);
  ASSERT_EQ(seeds.size(), 4u);
  std::set<vertex_t> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), 4u);
  // Equal community sizes: two seeds per clique.
  int first_clique = 0;
  for (vertex_t s : seeds) first_clique += (s < 10) ? 1 : 0;
  EXPECT_EQ(first_clique, 2);
}

TEST(CommunityProportionalSeeds, HandlesKSmallerThanCommunities) {
  // Many singleton communities, k = 1: allocation must not overrun.
  EdgeList list;
  list.num_vertices = 6;
  CsrGraph graph(list);
  CommunityAssignment communities = label_propagation(graph, 3, 5);
  EXPECT_EQ(communities.num_communities, 6u);
  std::vector<vertex_t> seeds =
      community_proportional_seeds(graph, communities, 1, 0.1);
  EXPECT_EQ(seeds.size(), 1u);
}

TEST(CommunityProportionalSeeds, SkewedSizesGetProportionalSeats) {
  // One community of 30, one of 10: k=4 splits 3/1.
  EdgeList list = two_cliques(10); // placeholder sizes replaced below
  (void)list;
  EdgeList skew;
  skew.num_vertices = 40;
  auto add_clique = [&](vertex_t base, vertex_t size) {
    for (vertex_t u = 0; u < size; ++u)
      for (vertex_t v = 0; v < size; ++v)
        if (u != v)
          skew.edges.push_back({static_cast<vertex_t>(base + u),
                                static_cast<vertex_t>(base + v), 1.0f});
  };
  add_clique(0, 30);
  add_clique(30, 10);
  CsrGraph graph(skew);
  CommunityAssignment communities = label_propagation(graph, 20, 1);
  ASSERT_EQ(communities.num_communities, 2u);
  std::vector<vertex_t> seeds =
      community_proportional_seeds(graph, communities, 4, 0.1);
  int large = 0;
  for (vertex_t s : seeds) large += (s < 30) ? 1 : 0;
  EXPECT_EQ(large, 3);
}

// --- k-core ------------------------------------------------------------------------

TEST(CoreNumbers, PathHasCoreOne) {
  CsrGraph graph(grid_2d(1, 6)); // bidirectional path
  std::vector<std::uint32_t> core = core_numbers(graph);
  // Undirected view: each inner vertex has degree 4 (2 undirected
  // neighbors, both arc directions counted) but peels at core 2.
  for (std::uint32_t c : core) EXPECT_EQ(c, 2u);
}

TEST(CoreNumbers, CliquePlusTailPeelsCorrectly) {
  // 5-clique (undirected: total degree 8 per member) with a pendant chain.
  EdgeList list;
  list.num_vertices = 8;
  for (vertex_t u = 0; u < 5; ++u)
    for (vertex_t v = 0; v < 5; ++v)
      if (u != v) list.edges.push_back({u, v, 1.0f});
  auto link = [&](vertex_t a, vertex_t b) {
    list.edges.push_back({a, b, 1.0f});
    list.edges.push_back({b, a, 1.0f});
  };
  link(4, 5);
  link(5, 6);
  link(6, 7);
  CsrGraph graph(list);
  std::vector<std::uint32_t> core = core_numbers(graph);
  // Chain members peel at 2 (each undirected edge contributes 2 arcs);
  // clique members survive to 8.
  EXPECT_EQ(core[7], 2u);
  EXPECT_EQ(core[6], 2u);
  EXPECT_EQ(core[5], 2u);
  for (vertex_t v = 0; v < 4; ++v) EXPECT_EQ(core[v], 8u);
}

TEST(KShellSeeds, PicksInnermostShell) {
  // Clique + pendant tail: all k-shell seeds must be clique members.
  EdgeList list;
  list.num_vertices = 12;
  for (vertex_t u = 0; u < 6; ++u)
    for (vertex_t v = 0; v < 6; ++v)
      if (u != v) list.edges.push_back({u, v, 1.0f});
  for (vertex_t v = 6; v < 12; ++v) {
    list.edges.push_back({static_cast<vertex_t>(v - 1), v, 1.0f});
    list.edges.push_back({v, static_cast<vertex_t>(v - 1), 1.0f});
  }
  CsrGraph graph(list);
  std::vector<vertex_t> seeds = k_shell_seeds(graph, 3);
  for (vertex_t s : seeds) EXPECT_LT(s, 6u);
}

TEST(KShellSeeds, ReturnsDistinctSeeds) {
  CsrGraph graph(barabasi_albert(400, 3, 9));
  std::vector<vertex_t> seeds = k_shell_seeds(graph, 25);
  std::set<vertex_t> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), 25u);
}

} // namespace
} // namespace ripples
