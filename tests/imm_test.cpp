// Tests for the four IMM drivers: output contracts, cross-driver
// equivalence (the parallel implementations must return the sequential
// result under the shared counter-based RNG discipline), rank/thread
// invariance, and solution quality against the Monte-Carlo oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "diffusion/simulate.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "imm/greedy.hpp"
#include "imm/imm.hpp"

namespace ripples {
namespace {

CsrGraph test_graph(DiffusionModel model, std::uint64_t seed = 1) {
  CsrGraph graph(barabasi_albert(600, 3, seed));
  assign_uniform_weights(graph, seed + 1);
  if (model == DiffusionModel::LinearThreshold)
    renormalize_linear_threshold(graph);
  return graph;
}

ImmOptions base_options(DiffusionModel model) {
  ImmOptions options;
  options.epsilon = 0.5;
  options.k = 10;
  options.model = model;
  options.seed = 2019;
  return options;
}

void check_contract(const ImmResult &result, const CsrGraph &graph,
                    const ImmOptions &options) {
  ASSERT_EQ(result.seeds.size(), options.k);
  std::set<vertex_t> unique(result.seeds.begin(), result.seeds.end());
  EXPECT_EQ(unique.size(), options.k) << "seeds must be distinct";
  for (vertex_t s : result.seeds) EXPECT_LT(s, graph.num_vertices());
  EXPECT_GE(result.theta, 1u);
  EXPECT_GE(result.num_samples, result.theta);
  EXPECT_GE(result.lower_bound, 1.0);
  EXPECT_GT(result.coverage_fraction, 0.0);
  EXPECT_LE(result.coverage_fraction, 1.0);
  EXPECT_GT(result.rrr_peak_bytes, 0u);
  EXPECT_GT(result.total_associations, 0u);
  EXPECT_GT(result.timers.total(Phase::EstimateTheta), 0.0);
}

class ImmDrivers : public ::testing::TestWithParam<DiffusionModel> {};

TEST_P(ImmDrivers, SequentialSatisfiesContract) {
  CsrGraph graph = test_graph(GetParam());
  ImmOptions options = base_options(GetParam());
  ImmResult result = imm_sequential(graph, options);
  check_contract(result, graph, options);
}

TEST_P(ImmDrivers, BaselineHypergraphMatchesSequentialSeeds) {
  // Same samples, same greedy: the storage layout must not change the
  // output.
  CsrGraph graph = test_graph(GetParam());
  ImmOptions options = base_options(GetParam());
  ImmResult compact = imm_sequential(graph, options);
  ImmResult dual = imm_baseline_hypergraph(graph, options);
  EXPECT_EQ(compact.seeds, dual.seeds);
  EXPECT_EQ(compact.theta, dual.theta);
  EXPECT_EQ(compact.num_samples, dual.num_samples);
  check_contract(dual, graph, options);
}

TEST_P(ImmDrivers, BaselineUsesMoreMemory) {
  CsrGraph graph = test_graph(GetParam());
  ImmOptions options = base_options(GetParam());
  ImmResult compact = imm_sequential(graph, options);
  ImmResult dual = imm_baseline_hypergraph(graph, options);
  // Table 2's storage claim: the dual-direction representation costs more.
  EXPECT_GT(dual.rrr_peak_bytes, compact.rrr_peak_bytes);
  EXPECT_EQ(dual.total_associations, 2 * compact.total_associations);
}

TEST_P(ImmDrivers, MultithreadedMatchesSequentialForAnyThreadCount) {
  CsrGraph graph = test_graph(GetParam());
  ImmOptions options = base_options(GetParam());
  ImmResult reference = imm_sequential(graph, options);
  for (unsigned threads : {1u, 2u, 4u}) {
    options.num_threads = threads;
    ImmResult result = imm_multithreaded(graph, options);
    EXPECT_EQ(result.seeds, reference.seeds) << "threads=" << threads;
    EXPECT_EQ(result.theta, reference.theta);
    EXPECT_EQ(result.num_samples, reference.num_samples);
    EXPECT_DOUBLE_EQ(result.coverage_fraction, reference.coverage_fraction);
  }
}

TEST_P(ImmDrivers, DistributedMatchesSequentialForAnyRankCount) {
  CsrGraph graph = test_graph(GetParam());
  ImmOptions options = base_options(GetParam());
  ImmResult reference = imm_sequential(graph, options);
  for (int ranks : {1, 2, 3, 4, 8}) {
    options.num_ranks = ranks;
    ImmResult result = imm_distributed(graph, options);
    EXPECT_EQ(result.seeds, reference.seeds) << "ranks=" << ranks;
    EXPECT_EQ(result.theta, reference.theta);
    EXPECT_EQ(result.num_samples, reference.num_samples);
  }
}

TEST_P(ImmDrivers, HybridRanksTimesThreadsMatchesSequential) {
  CsrGraph graph = test_graph(GetParam());
  ImmOptions options = base_options(GetParam());
  ImmResult reference = imm_sequential(graph, options);
  options.num_ranks = 2;
  options.num_threads = 2;
  ImmResult result = imm_distributed(graph, options);
  EXPECT_EQ(result.seeds, reference.seeds);
}

INSTANTIATE_TEST_SUITE_P(Models, ImmDrivers,
                         ::testing::Values(DiffusionModel::IndependentCascade,
                                           DiffusionModel::LinearThreshold));

TEST(ImmDistributed, LeapfrogModeSatisfiesContractAndQuality) {
  // Leap-frog LCG mode is the paper-faithful RNG scheme; its collection
  // differs from counter mode, but contract and quality must hold.
  CsrGraph graph = test_graph(DiffusionModel::IndependentCascade);
  ImmOptions options = base_options(DiffusionModel::IndependentCascade);
  options.rng_mode = RngMode::LeapfrogLcg;
  options.num_ranks = 3;
  ImmResult result = imm_distributed(graph, options);
  check_contract(result, graph, options);

  // Quality: within noise of the counter-mode result.
  ImmOptions counter_options = base_options(DiffusionModel::IndependentCascade);
  ImmResult reference = imm_sequential(graph, counter_options);
  double sigma_leapfrog =
      estimate_influence(graph, result.seeds, options.model, 2000, 5).mean;
  double sigma_reference =
      estimate_influence(graph, reference.seeds, options.model, 2000, 5).mean;
  EXPECT_GT(sigma_leapfrog, 0.85 * sigma_reference);
}

TEST(ImmDistributed, LeapfrogModeIsDeterministicPerRankCount) {
  CsrGraph graph = test_graph(DiffusionModel::IndependentCascade);
  ImmOptions options = base_options(DiffusionModel::IndependentCascade);
  options.rng_mode = RngMode::LeapfrogLcg;
  options.num_ranks = 4;
  ImmResult a = imm_distributed(graph, options);
  ImmResult b = imm_distributed(graph, options);
  EXPECT_EQ(a.seeds, b.seeds);
}

TEST(ImmQuality, BeatsRandomSeedsSubstantially) {
  CsrGraph graph = test_graph(DiffusionModel::IndependentCascade);
  ImmOptions options = base_options(DiffusionModel::IndependentCascade);
  ImmResult result = imm_sequential(graph, options);

  std::vector<vertex_t> random_seeds;
  for (vertex_t v = 100; random_seeds.size() < options.k; v += 37)
    random_seeds.push_back(v % graph.num_vertices());

  double sigma_imm = estimate_influence(graph, result.seeds, options.model,
                                        2000, 7)
                         .mean;
  double sigma_random = estimate_influence(graph, random_seeds, options.model,
                                           2000, 7)
                            .mean;
  EXPECT_GT(sigma_imm, sigma_random);
}

TEST(ImmQuality, ComparableToCelfOnSmallGraph) {
  // On a small graph, IMM's seed quality must be in the same league as the
  // simulation-based CELF greedy (both are (1-1/e-ish)-approximations).
  CsrGraph graph(barabasi_albert(120, 2, 5));
  assign_constant_weights(graph, 0.1f);

  ImmOptions imm_options;
  imm_options.epsilon = 0.3;
  imm_options.k = 5;
  imm_options.seed = 3;
  ImmResult imm = imm_sequential(graph, imm_options);

  GreedyOptions greedy_options;
  greedy_options.k = 5;
  greedy_options.trials = 300;
  greedy_options.seed = 3;
  std::vector<vertex_t> celf = celf_greedy(graph, greedy_options);

  double sigma_imm =
      estimate_influence(graph, imm.seeds, imm_options.model, 4000, 11).mean;
  double sigma_celf =
      estimate_influence(graph, celf, imm_options.model, 4000, 11).mean;
  EXPECT_GT(sigma_imm, 0.9 * sigma_celf);
}

TEST(ImmParameters, SmallerEpsilonGeneratesMoreSamples) {
  CsrGraph graph = test_graph(DiffusionModel::IndependentCascade);
  ImmOptions loose = base_options(DiffusionModel::IndependentCascade);
  loose.epsilon = 0.5;
  ImmOptions tight = base_options(DiffusionModel::IndependentCascade);
  tight.epsilon = 0.25;
  EXPECT_GT(imm_sequential(graph, tight).theta,
            imm_sequential(graph, loose).theta);
}

TEST(ImmParameters, LargerKGeneratesMoreSamples) {
  CsrGraph graph = test_graph(DiffusionModel::IndependentCascade);
  ImmOptions small_k = base_options(DiffusionModel::IndependentCascade);
  small_k.k = 5;
  ImmOptions large_k = base_options(DiffusionModel::IndependentCascade);
  large_k.k = 40;
  EXPECT_GT(imm_sequential(graph, large_k).theta,
            imm_sequential(graph, small_k).theta);
}

TEST(ImmParameters, LtProducesSmallerSamplesThanIc) {
  // Section 4.2: "The LT model tends to produce very small RRR sets (when
  // compared to the IC model)".
  CsrGraph ic_graph = test_graph(DiffusionModel::IndependentCascade);
  CsrGraph lt_graph = test_graph(DiffusionModel::LinearThreshold);
  ImmOptions ic_options = base_options(DiffusionModel::IndependentCascade);
  ImmOptions lt_options = base_options(DiffusionModel::LinearThreshold);
  ImmResult ic = imm_sequential(ic_graph, ic_options);
  ImmResult lt = imm_sequential(lt_graph, lt_options);
  double ic_avg = static_cast<double>(ic.total_associations) /
                  static_cast<double>(ic.num_samples);
  double lt_avg = static_cast<double>(lt.total_associations) /
                  static_cast<double>(lt.num_samples);
  EXPECT_LT(lt_avg, ic_avg);
}

TEST(ImmDeterminism, SameSeedSameResult) {
  CsrGraph graph = test_graph(DiffusionModel::IndependentCascade);
  ImmOptions options = base_options(DiffusionModel::IndependentCascade);
  ImmResult a = imm_sequential(graph, options);
  ImmResult b = imm_sequential(graph, options);
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.theta, b.theta);
}

TEST(ImmDeterminism, DifferentSeedsUsuallyDiffer) {
  CsrGraph graph = test_graph(DiffusionModel::IndependentCascade);
  ImmOptions a_options = base_options(DiffusionModel::IndependentCascade);
  ImmOptions b_options = a_options;
  b_options.seed = 99999;
  ImmResult a = imm_sequential(graph, a_options);
  ImmResult b = imm_sequential(graph, b_options);
  // Not guaranteed to differ, but with k=10 over 600 vertices a collision of
  // the full ordered seed vector would be extraordinary.
  EXPECT_NE(a.seeds, b.seeds);
}

TEST(ImmEdgeCases, KEqualsOneWorks) {
  CsrGraph graph = test_graph(DiffusionModel::IndependentCascade);
  ImmOptions options = base_options(DiffusionModel::IndependentCascade);
  options.k = 1;
  ImmResult result = imm_sequential(graph, options);
  EXPECT_EQ(result.seeds.size(), 1u);
}

TEST(ImmEdgeCases, EdgelessGraphStillReturnsSeeds) {
  EdgeList list;
  list.num_vertices = 64;
  CsrGraph graph(list);
  ImmOptions options;
  options.epsilon = 0.5;
  options.k = 3;
  ImmResult result = imm_sequential(graph, options);
  EXPECT_EQ(result.seeds.size(), 3u);
}

} // namespace
} // namespace ripples
