// Tests for the CSR graph: construction invariants, dual-direction
// consistency, weight assignment/propagation, and round-tripping.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "graph/weights.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"

namespace ripples {
namespace {

EdgeList tiny_graph() {
  // 0 -> 1 (0.5), 0 -> 2 (0.25), 2 -> 1 (1.0), 1 -> 3 (0.75), 3 -> 0 (0.1)
  EdgeList list;
  list.num_vertices = 4;
  list.edges = {{0, 1, 0.5f}, {0, 2, 0.25f}, {2, 1, 1.0f}, {1, 3, 0.75f},
                {3, 0, 0.1f}};
  return list;
}

TEST(CsrGraph, BuildsOutAdjacency) {
  CsrGraph graph(tiny_graph());
  ASSERT_EQ(graph.num_vertices(), 4u);
  ASSERT_EQ(graph.num_edges(), 5u);

  auto out0 = graph.out_neighbors(0);
  ASSERT_EQ(out0.size(), 2u);
  EXPECT_EQ(out0[0].vertex, 1u);
  EXPECT_FLOAT_EQ(out0[0].weight, 0.5f);
  EXPECT_EQ(out0[1].vertex, 2u);
  EXPECT_FLOAT_EQ(out0[1].weight, 0.25f);

  EXPECT_EQ(graph.out_degree(1), 1u);
  EXPECT_EQ(graph.out_degree(3), 1u);
}

TEST(CsrGraph, BuildsInAdjacency) {
  CsrGraph graph(tiny_graph());
  auto in1 = graph.in_neighbors(1);
  ASSERT_EQ(in1.size(), 2u);
  // Sorted by source id: 0 then 2.
  EXPECT_EQ(in1[0].vertex, 0u);
  EXPECT_FLOAT_EQ(in1[0].weight, 0.5f);
  EXPECT_EQ(in1[1].vertex, 2u);
  EXPECT_FLOAT_EQ(in1[1].weight, 1.0f);
  EXPECT_EQ(graph.in_degree(0), 1u);
  EXPECT_EQ(graph.in_degree(3), 1u);
}

TEST(CsrGraph, DropsSelfLoops) {
  EdgeList list;
  list.num_vertices = 3;
  list.edges = {{0, 0, 1.0f}, {0, 1, 1.0f}, {1, 1, 1.0f}, {1, 2, 1.0f}};
  CsrGraph graph(list);
  EXPECT_EQ(graph.num_edges(), 2u);
}

TEST(CsrGraph, KeepsMultiArcs) {
  EdgeList list;
  list.num_vertices = 2;
  list.edges = {{0, 1, 0.1f}, {0, 1, 0.2f}};
  CsrGraph graph(list);
  EXPECT_EQ(graph.num_edges(), 2u);
  EXPECT_EQ(graph.out_degree(0), 2u);
  EXPECT_EQ(graph.in_degree(1), 2u);
}

TEST(CsrGraph, EmptyGraph) {
  EdgeList list;
  list.num_vertices = 5;
  CsrGraph graph(list);
  EXPECT_EQ(graph.num_vertices(), 5u);
  EXPECT_EQ(graph.num_edges(), 0u);
  for (vertex_t v = 0; v < 5; ++v) {
    EXPECT_TRUE(graph.out_neighbors(v).empty());
    EXPECT_TRUE(graph.in_neighbors(v).empty());
  }
}

TEST(CsrGraph, ToEdgeListRoundTrips) {
  CsrGraph graph(tiny_graph());
  EdgeList round = graph.to_edge_list();
  EXPECT_EQ(round.num_vertices, 4u);
  ASSERT_EQ(round.edges.size(), 5u);
  CsrGraph rebuilt(round);
  for (vertex_t v = 0; v < 4; ++v) {
    auto a = graph.out_neighbors(v);
    auto b = rebuilt.out_neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].vertex, b[i].vertex);
      EXPECT_FLOAT_EQ(a[i].weight, b[i].weight);
    }
  }
}

// Property test: on random graphs both CSR directions describe the same
// weighted edge multiset, offsets are consistent, adjacency sorted.
class CsrInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsrInvariants, DirectionsAgreeOnRandomGraphs) {
  EdgeList list = erdos_renyi(200, 2000, GetParam());
  // Give edges distinct-ish weights so mismatches are detectable.
  Xoshiro256 rng(GetParam() ^ 0xabc);
  for (WeightedEdge &e : list.edges)
    e.weight = static_cast<float>(uniform_unit(rng));
  CsrGraph graph(list);

  std::multimap<std::pair<vertex_t, vertex_t>, float> from_out, from_in;
  std::size_t out_total = 0, in_total = 0;
  for (vertex_t u = 0; u < graph.num_vertices(); ++u) {
    vertex_t previous = 0;
    bool first = true;
    for (const Adjacency &adjacent : graph.out_neighbors(u)) {
      from_out.insert({{u, adjacent.vertex}, adjacent.weight});
      ++out_total;
      if (!first) EXPECT_LE(previous, adjacent.vertex) << "out list unsorted";
      previous = adjacent.vertex;
      first = false;
    }
  }
  for (vertex_t v = 0; v < graph.num_vertices(); ++v) {
    vertex_t previous = 0;
    bool first = true;
    for (const Adjacency &adjacent : graph.in_neighbors(v)) {
      from_in.insert({{adjacent.vertex, v}, adjacent.weight});
      ++in_total;
      if (!first) EXPECT_LE(previous, adjacent.vertex) << "in list unsorted";
      previous = adjacent.vertex;
      first = false;
    }
  }
  EXPECT_EQ(out_total, graph.num_edges());
  EXPECT_EQ(in_total, graph.num_edges());
  EXPECT_EQ(from_out, from_in);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrInvariants,
                         ::testing::Values(1, 2, 3, 42, 99));

// --- weight assigners -----------------------------------------------------------

TEST(Weights, UniformAssignsInRangeAndConsistently) {
  CsrGraph graph(erdos_renyi(100, 800, 7));
  assign_uniform_weights(graph, 11, 0.2f, 0.8f);
  for (vertex_t v = 0; v < graph.num_vertices(); ++v)
    for (const Adjacency &in : graph.in_neighbors(v)) {
      EXPECT_GE(in.weight, 0.2f);
      EXPECT_LT(in.weight, 0.8f);
    }
  // Directions must agree after propagation.
  std::multimap<std::pair<vertex_t, vertex_t>, float> from_out, from_in;
  for (vertex_t u = 0; u < graph.num_vertices(); ++u)
    for (const Adjacency &a : graph.out_neighbors(u))
      from_out.insert({{u, a.vertex}, a.weight});
  for (vertex_t v = 0; v < graph.num_vertices(); ++v)
    for (const Adjacency &a : graph.in_neighbors(v))
      from_in.insert({{a.vertex, v}, a.weight});
  EXPECT_EQ(from_out, from_in);
}

TEST(Weights, UniformIsDeterministicInSeed) {
  CsrGraph a(erdos_renyi(50, 300, 7));
  CsrGraph b(erdos_renyi(50, 300, 7));
  assign_uniform_weights(a, 5);
  assign_uniform_weights(b, 5);
  for (vertex_t v = 0; v < a.num_vertices(); ++v) {
    auto in_a = a.in_neighbors(v);
    auto in_b = b.in_neighbors(v);
    ASSERT_EQ(in_a.size(), in_b.size());
    for (std::size_t i = 0; i < in_a.size(); ++i)
      EXPECT_FLOAT_EQ(in_a[i].weight, in_b[i].weight);
  }
}

TEST(Weights, ConstantSetsEveryEdge) {
  CsrGraph graph(erdos_renyi(60, 400, 3));
  assign_constant_weights(graph, 0.1f);
  for (vertex_t u = 0; u < graph.num_vertices(); ++u)
    for (const Adjacency &a : graph.out_neighbors(u))
      EXPECT_FLOAT_EQ(a.weight, 0.1f);
}

TEST(Weights, WeightedCascadeSumsToOnePerVertex) {
  CsrGraph graph(erdos_renyi(80, 600, 9));
  assign_weighted_cascade(graph);
  for (vertex_t v = 0; v < graph.num_vertices(); ++v) {
    auto in = graph.in_neighbors(v);
    if (in.empty()) continue;
    double sum = 0;
    for (const Adjacency &a : in) sum += a.weight;
    EXPECT_NEAR(sum, 1.0, 1e-4);
  }
}

TEST(Weights, TrivalencyUsesOnlyThreeLevels) {
  CsrGraph graph(erdos_renyi(60, 500, 13));
  assign_trivalency_weights(graph, 21);
  for (vertex_t v = 0; v < graph.num_vertices(); ++v)
    for (const Adjacency &a : graph.in_neighbors(v))
      EXPECT_TRUE(a.weight == 0.1f || a.weight == 0.01f || a.weight == 0.001f)
          << a.weight;
}

TEST(Weights, LtRenormalizationCapsIncomingMass) {
  CsrGraph graph(erdos_renyi(100, 1500, 17));
  assign_uniform_weights(graph, 23); // sums typically exceed 1
  renormalize_linear_threshold(graph);
  for (vertex_t v = 0; v < graph.num_vertices(); ++v) {
    double sum = 0;
    for (const Adjacency &a : graph.in_neighbors(v)) sum += a.weight;
    EXPECT_LE(sum, 1.0 + 1e-4);
  }
}

TEST(Weights, LtRenormalizationIsIdempotent) {
  CsrGraph graph(erdos_renyi(50, 700, 19));
  assign_uniform_weights(graph, 29);
  renormalize_linear_threshold(graph);
  std::vector<float> before;
  for (vertex_t v = 0; v < graph.num_vertices(); ++v)
    for (const Adjacency &a : graph.in_neighbors(v)) before.push_back(a.weight);
  renormalize_linear_threshold(graph);
  std::size_t i = 0;
  for (vertex_t v = 0; v < graph.num_vertices(); ++v)
    for (const Adjacency &a : graph.in_neighbors(v))
      EXPECT_NEAR(a.weight, before[i++], 1e-5);
}

// --- stats ----------------------------------------------------------------------

TEST(Stats, MatchesHandComputedValues) {
  CsrGraph graph(tiny_graph());
  GraphStats stats = compute_stats(graph);
  EXPECT_EQ(stats.num_vertices, 4u);
  EXPECT_EQ(stats.num_edges, 5u);
  EXPECT_DOUBLE_EQ(stats.avg_out_degree, 1.25);
  EXPECT_EQ(stats.max_out_degree, 2u);
  EXPECT_EQ(stats.max_in_degree, 2u);
  EXPECT_DOUBLE_EQ(stats.avg_total_degree, 2.5);
  EXPECT_EQ(stats.num_isolated, 0u);
}

TEST(Stats, CountsIsolatedVertices) {
  EdgeList list;
  list.num_vertices = 10;
  list.edges = {{0, 1, 1.0f}};
  GraphStats stats = compute_stats(CsrGraph(list));
  EXPECT_EQ(stats.num_isolated, 8u);
}

TEST(Stats, LogHistogramCoversAllVertices) {
  CsrGraph graph(barabasi_albert(500, 3, 5));
  auto histogram = out_degree_log_histogram(graph);
  std::size_t total = 0;
  for (std::size_t count : histogram) total += count;
  EXPECT_EQ(total, graph.num_vertices());
}

} // namespace
} // namespace ripples
