// Tests for the mpsim message-passing runtime: every collective must match
// MPI semantics for all rank counts, datatypes, and buffer shapes the
// distributed IMM implementation uses.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "mpsim/communicator.hpp"

namespace ripples::mpsim {
namespace {

class MpsimRankCounts : public ::testing::TestWithParam<int> {};

TEST_P(MpsimRankCounts, RunExecutesEveryRankExactlyOnce) {
  const int p = GetParam();
  std::vector<std::atomic<int>> visits(p);
  Context::run(p, [&](Communicator &comm) {
    EXPECT_EQ(comm.size(), p);
    EXPECT_GE(comm.rank(), 0);
    EXPECT_LT(comm.rank(), p);
    visits[static_cast<std::size_t>(comm.rank())].fetch_add(1);
  });
  for (int r = 0; r < p; ++r) EXPECT_EQ(visits[static_cast<std::size_t>(r)].load(), 1);
}

TEST_P(MpsimRankCounts, AllreduceSumMatchesSequentialReduction) {
  const int p = GetParam();
  const std::size_t len = 1000;
  Context::run(p, [&](Communicator &comm) {
    // rank r contributes value (r+1) * (i+1) at index i.
    std::vector<std::uint32_t> buffer(len);
    for (std::size_t i = 0; i < len; ++i)
      buffer[i] = static_cast<std::uint32_t>((comm.rank() + 1) * (i + 1));
    comm.allreduce(std::span<std::uint32_t>(buffer), ReduceOp::Sum);
    const std::uint32_t rank_sum = static_cast<std::uint32_t>(p * (p + 1) / 2);
    for (std::size_t i = 0; i < len; ++i)
      ASSERT_EQ(buffer[i], rank_sum * (i + 1)) << "index " << i;
  });
}

TEST_P(MpsimRankCounts, AllreduceMaxAndMin) {
  const int p = GetParam();
  Context::run(p, [&](Communicator &comm) {
    std::vector<std::int64_t> buffer{comm.rank(), -comm.rank()};
    comm.allreduce(std::span<std::int64_t>(buffer), ReduceOp::Max);
    EXPECT_EQ(buffer[0], p - 1);
    EXPECT_EQ(buffer[1], 0);

    std::vector<std::int64_t> buffer2{comm.rank(), -comm.rank()};
    comm.allreduce(std::span<std::int64_t>(buffer2), ReduceOp::Min);
    EXPECT_EQ(buffer2[0], 0);
    EXPECT_EQ(buffer2[1], -(p - 1));
  });
}

TEST_P(MpsimRankCounts, ReduceDeliversOnlyToRoot) {
  const int p = GetParam();
  const int root = p - 1;
  Context::run(p, [&](Communicator &comm) {
    std::vector<std::uint64_t> buffer{1, static_cast<std::uint64_t>(comm.rank())};
    comm.reduce(std::span<std::uint64_t>(buffer), ReduceOp::Sum, root);
    if (comm.rank() == root) {
      EXPECT_EQ(buffer[0], static_cast<std::uint64_t>(p));
      EXPECT_EQ(buffer[1], static_cast<std::uint64_t>(p * (p - 1) / 2));
    } else {
      // Non-root buffers are untouched, as with MPI_Reduce.
      EXPECT_EQ(buffer[0], 1u);
      EXPECT_EQ(buffer[1], static_cast<std::uint64_t>(comm.rank()));
    }
  });
}

TEST_P(MpsimRankCounts, BroadcastCopiesRootBuffer) {
  const int p = GetParam();
  Context::run(p, [&](Communicator &comm) {
    std::vector<double> buffer(64, static_cast<double>(comm.rank()));
    if (comm.rank() == 0)
      for (std::size_t i = 0; i < buffer.size(); ++i)
        buffer[i] = 3.5 * static_cast<double>(i);
    comm.broadcast(std::span<double>(buffer), 0);
    for (std::size_t i = 0; i < buffer.size(); ++i)
      ASSERT_DOUBLE_EQ(buffer[i], 3.5 * static_cast<double>(i));
  });
}

TEST_P(MpsimRankCounts, AllgatherOrdersByRank) {
  const int p = GetParam();
  Context::run(p, [&](Communicator &comm) {
    std::vector<std::uint64_t> gathered =
        comm.allgather(static_cast<std::uint64_t>(comm.rank() * 10));
    ASSERT_EQ(gathered.size(), static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r)
      EXPECT_EQ(gathered[static_cast<std::size_t>(r)],
                static_cast<std::uint64_t>(r * 10));
  });
}

TEST_P(MpsimRankCounts, AllgathervConcatenatesVariableLengths) {
  const int p = GetParam();
  Context::run(p, [&](Communicator &comm) {
    // rank r contributes r entries: r, r, ..., so the concatenation is
    // 1x"1", 2x"2", ... in rank order (rank 0 contributes nothing).
    std::vector<std::uint32_t> local(static_cast<std::size_t>(comm.rank()),
                                     static_cast<std::uint32_t>(comm.rank()));
    std::vector<std::uint32_t> all =
        comm.allgatherv(std::span<const std::uint32_t>(local));
    ASSERT_EQ(all.size(), static_cast<std::size_t>(p * (p - 1) / 2));
    std::size_t offset = 0;
    for (int r = 0; r < p; ++r)
      for (int j = 0; j < r; ++j)
        EXPECT_EQ(all[offset++], static_cast<std::uint32_t>(r));
  });
}

TEST_P(MpsimRankCounts, AllgathervRanksPreservesPerRankSections) {
  const int p = GetParam();
  Context::run(p, [&](Communicator &comm) {
    // Same payload as the flat test above, but the per-rank boundaries must
    // survive: section r holds exactly rank r's r copies of "r".
    std::vector<std::uint32_t> local(static_cast<std::size_t>(comm.rank()),
                                     static_cast<std::uint32_t>(comm.rank()));
    std::vector<std::vector<std::uint32_t>> sections =
        comm.allgatherv_ranks(std::span<const std::uint32_t>(local));
    ASSERT_EQ(sections.size(), static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      const auto &section = sections[static_cast<std::size_t>(r)];
      ASSERT_EQ(section.size(), static_cast<std::size_t>(r));
      for (std::uint32_t value : section)
        EXPECT_EQ(value, static_cast<std::uint32_t>(r));
    }
  });
}

TEST(Mpsim, AllgathervRanksCarriesStructs) {
  struct Pair {
    std::uint32_t a;
    std::uint32_t b;
  };
  Context::run(3, [&](Communicator &comm) {
    const auto me = static_cast<std::uint32_t>(comm.rank());
    std::vector<Pair> local(1, Pair{me, me * 100});
    if (comm.rank() == 1) local.clear(); // empty sections stay empty
    std::vector<std::vector<Pair>> sections =
        comm.allgatherv_ranks(std::span<const Pair>(local));
    ASSERT_EQ(sections.size(), 3u);
    EXPECT_TRUE(sections[1].empty());
    for (std::uint32_t r : {0u, 2u}) {
      ASSERT_EQ(sections[r].size(), 1u);
      EXPECT_EQ(sections[r][0].a, r);
      EXPECT_EQ(sections[r][0].b, r * 100);
    }
  });
}

TEST_P(MpsimRankCounts, CollectiveSequencesStayInLockstep) {
  // Mixed sequence of collectives: any pointer/slot reuse bug would corrupt
  // the later results.
  const int p = GetParam();
  Context::run(p, [&](Communicator &comm) {
    for (int round = 0; round < 5; ++round) {
      std::vector<std::uint32_t> ones(17, 1);
      comm.allreduce(std::span<std::uint32_t>(ones), ReduceOp::Sum);
      ASSERT_EQ(ones[0], static_cast<std::uint32_t>(p));

      std::vector<std::uint32_t> value{static_cast<std::uint32_t>(round)};
      comm.broadcast(std::span<std::uint32_t>(value), round % p);
      ASSERT_EQ(value[0], static_cast<std::uint32_t>(round));

      comm.barrier();
      auto gathered = comm.allgather(comm.rank());
      ASSERT_EQ(gathered.size(), static_cast<std::size_t>(p));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, MpsimRankCounts,
                         ::testing::Values(1, 2, 3, 4, 7, 16));

TEST_P(MpsimRankCounts, GatherDeliversOnlyToRoot) {
  const int p = GetParam();
  Context::run(p, [&](Communicator &comm) {
    std::vector<std::int64_t> gathered =
        comm.gather(static_cast<std::int64_t>(comm.rank() * 3), 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(gathered.size(), static_cast<std::size_t>(p));
      for (int r = 0; r < p; ++r)
        EXPECT_EQ(gathered[static_cast<std::size_t>(r)], 3 * r);
    } else {
      EXPECT_TRUE(gathered.empty());
    }
  });
}

TEST_P(MpsimRankCounts, ScatterDistributesRootValues) {
  const int p = GetParam();
  Context::run(p, [&](Communicator &comm) {
    std::vector<std::uint32_t> values;
    if (comm.rank() == 0)
      for (int r = 0; r < p; ++r)
        values.push_back(static_cast<std::uint32_t>(100 + r));
    std::uint32_t mine =
        comm.scatter(std::span<const std::uint32_t>(values), 0);
    EXPECT_EQ(mine, static_cast<std::uint32_t>(100 + comm.rank()));
  });
}

TEST(MpsimPointToPoint, RingPassesAToken) {
  const int p = 4;
  Context::run(p, [&](Communicator &comm) {
    // Token accumulates each rank's id as it circles 0 -> 1 -> ... -> 0.
    std::uint64_t token[1];
    if (comm.rank() == 0) {
      token[0] = 1;
      comm.send(std::span<const std::uint64_t>(token, 1), 1);
      comm.recv(std::span<std::uint64_t>(token, 1), p - 1);
      EXPECT_EQ(token[0], 1u + 1 + 2 + 3);
    } else {
      comm.recv(std::span<std::uint64_t>(token, 1), comm.rank() - 1);
      token[0] += static_cast<std::uint64_t>(comm.rank());
      comm.send(std::span<const std::uint64_t>(token, 1),
                (comm.rank() + 1) % p);
    }
  });
}

TEST(MpsimPointToPoint, MessagesOnOneChannelStayOrdered) {
  Context::run(2, [&](Communicator &comm) {
    if (comm.rank() == 0) {
      for (std::uint32_t i = 0; i < 50; ++i) {
        std::uint32_t payload[1] = {i};
        comm.send(std::span<const std::uint32_t>(payload, 1), 1);
      }
    } else {
      for (std::uint32_t i = 0; i < 50; ++i) {
        std::uint32_t payload[1] = {0};
        comm.recv(std::span<std::uint32_t>(payload, 1), 0);
        ASSERT_EQ(payload[0], i);
      }
    }
  });
}

TEST(MpsimPointToPoint, LargePayloadRoundTrips) {
  Context::run(2, [&](Communicator &comm) {
    const std::size_t length = 1 << 18;
    if (comm.rank() == 0) {
      std::vector<double> payload(length);
      for (std::size_t i = 0; i < length; ++i)
        payload[i] = static_cast<double>(i) * 0.5;
      comm.send(std::span<const double>(payload), 1);
    } else {
      std::vector<double> received(length, -1.0);
      comm.recv(std::span<double>(received), 0);
      for (std::size_t i = 0; i < length; i += 4096)
        ASSERT_DOUBLE_EQ(received[i], static_cast<double>(i) * 0.5);
    }
  });
}

TEST(MpsimPointToPoint, ConcurrentPairsDoNotInterfere) {
  // Ranks 0<->1 and 2<->3 exchange simultaneously on disjoint channels.
  Context::run(4, [&](Communicator &comm) {
    int partner = comm.rank() ^ 1;
    std::uint32_t outgoing[1] = {static_cast<std::uint32_t>(comm.rank() + 10)};
    std::uint32_t incoming[1] = {0};
    if (comm.rank() < partner) {
      comm.send(std::span<const std::uint32_t>(outgoing, 1), partner);
      comm.recv(std::span<std::uint32_t>(incoming, 1), partner);
    } else {
      comm.recv(std::span<std::uint32_t>(incoming, 1), partner);
      comm.send(std::span<const std::uint32_t>(outgoing, 1), partner);
    }
    EXPECT_EQ(incoming[0], static_cast<std::uint32_t>(partner + 10));
  });
}

TEST(Mpsim, EmptyBuffersAreLegal) {
  Context::run(4, [&](Communicator &comm) {
    std::vector<std::uint32_t> empty;
    comm.allreduce(std::span<std::uint32_t>(empty), ReduceOp::Sum);
    std::vector<std::uint32_t> gathered =
        comm.allgatherv(std::span<const std::uint32_t>(empty));
    EXPECT_TRUE(gathered.empty());
  });
}

TEST(Mpsim, SingleRankAllreduceIsIdentity) {
  Context::run(1, [&](Communicator &comm) {
    std::vector<std::uint32_t> buffer{5, 6, 7};
    comm.allreduce(std::span<std::uint32_t>(buffer), ReduceOp::Sum);
    EXPECT_EQ(buffer, (std::vector<std::uint32_t>{5, 6, 7}));
  });
}

TEST(Mpsim, LargeRankCountCompletes) {
  // The Edison experiments simulate up to 1024 ranks; make sure the runtime
  // scales to large teams.  128 here keeps test time low.
  std::atomic<int> total{0};
  Context::run(128, [&](Communicator &comm) {
    auto gathered = comm.allgather(1);
    total.fetch_add(static_cast<int>(gathered.size()));
  });
  EXPECT_EQ(total.load(), 128 * 128);
}

TEST(Mpsim, ThrowingRankUnblocksPeersInAllreduce) {
  // The deadlock this guards against: rank 1 throws before joining the
  // collective while ranks 0, 2, 3 wait inside allreduce forever.  The
  // abort protocol must unwind the waiters and surface the original error.
  EXPECT_THROW(
      Context::run(4,
                   [](Communicator &comm) {
                     if (comm.rank() == 1)
                       throw std::runtime_error("rank 1 failure");
                     std::vector<std::uint32_t> ones(8, 1);
                     comm.allreduce(std::span<std::uint32_t>(ones),
                                    ReduceOp::Sum);
                   }),
      std::runtime_error);
}

TEST(Mpsim, ThrowingRankUnblocksPeersInBarrier) {
  EXPECT_THROW(Context::run(3,
                            [](Communicator &comm) {
                              if (comm.rank() == 2)
                                throw std::logic_error("rank 2 failure");
                              comm.barrier();
                            }),
               std::logic_error);
}

TEST(Mpsim, ThrowingRankUnblocksPeerInRecv) {
  // Rank 0 waits for a message that will never be sent; rank 1's failure
  // must wake it out of the mailbox wait.
  EXPECT_THROW(Context::run(2,
                            [](Communicator &comm) {
                              if (comm.rank() == 1)
                                throw std::runtime_error("sender died");
                              std::uint32_t buffer[1];
                              comm.recv(std::span<std::uint32_t>(buffer, 1), 1);
                            }),
               std::runtime_error);
}

TEST(Mpsim, ThrowingRankUnblocksPeerInSend) {
  // Rendezvous send blocks until the receiver drains it; the receiver's
  // failure must wake the sender.
  EXPECT_THROW(Context::run(2,
                            [](Communicator &comm) {
                              if (comm.rank() == 1)
                                throw std::runtime_error("receiver died");
                              std::uint32_t payload[1] = {42};
                              comm.send(
                                  std::span<const std::uint32_t>(payload, 1), 1);
                            }),
               std::runtime_error);
}

TEST(Mpsim, AbortDuringLaterRoundStillPropagates) {
  // Exercise the generation logic: several successful collectives, then a
  // mid-computation failure with peers already waiting in the next round.
  EXPECT_THROW(Context::run(4,
                            [](Communicator &comm) {
                              for (int round = 0; round < 3; ++round) {
                                std::vector<std::uint32_t> ones(4, 1);
                                comm.allreduce(std::span<std::uint32_t>(ones),
                                               ReduceOp::Sum);
                              }
                              if (comm.rank() == 3)
                                throw std::runtime_error("late failure");
                              comm.barrier();
                            }),
               std::runtime_error);
}

TEST(Mpsim, CommStatsCountCollectivesWhenEnabled) {
  metrics::set_enabled(true);
  const CommStatsSnapshot before = comm_stats();
  Context::run(3, [](Communicator &comm) {
    std::vector<std::uint32_t> ones(10, 1);
    comm.allreduce(std::span<std::uint32_t>(ones), ReduceOp::Sum);
    comm.barrier();
  });
  const CommStatsSnapshot delta = comm_stats().since(before);
  metrics::set_enabled(false);

  const auto allreduce = static_cast<std::size_t>(Collective::Allreduce);
  const auto barrier = static_cast<std::size_t>(Collective::Barrier);
  EXPECT_EQ(delta.calls[allreduce], 3u);
  EXPECT_EQ(delta.bytes[allreduce], 3u * 10 * sizeof(std::uint32_t));
  EXPECT_EQ(delta.calls[barrier], 3u);
  EXPECT_EQ(delta.bytes[barrier], 0u);
}

TEST(Mpsim, CommStatsStayZeroWhenDisabled) {
  metrics::set_enabled(false);
  const CommStatsSnapshot before = comm_stats();
  Context::run(2, [](Communicator &comm) {
    std::vector<std::uint32_t> ones(10, 1);
    comm.allreduce(std::span<std::uint32_t>(ones), ReduceOp::Sum);
  });
  const CommStatsSnapshot delta = comm_stats().since(before);
  for (std::size_t c = 0; c < kNumCollectives; ++c) {
    EXPECT_EQ(delta.calls[c], 0u) << to_string(static_cast<Collective>(c));
    EXPECT_EQ(delta.bytes[c], 0u) << to_string(static_cast<Collective>(c));
  }
}

TEST(Mpsim, ExceptionInSingleRankRunPropagates) {
  EXPECT_THROW(Context::run(1,
                            [](Communicator &) {
                              throw std::runtime_error("rank failure");
                            }),
               std::runtime_error);
}

TEST(Mpsim, SymmetricExceptionsPropagateFirst) {
  EXPECT_THROW(Context::run(4,
                            [](Communicator &) {
                              throw std::runtime_error("all ranks fail");
                            }),
               std::runtime_error);
}

} // namespace
} // namespace ripples::mpsim
