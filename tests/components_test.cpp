// Tests for weakly/strongly connected components and the stochastic block
// model generator.
#include <gtest/gtest.h>

#include <set>

#include "graph/components.hpp"
#include "graph/generators.hpp"

namespace ripples {
namespace {

TEST(WeaklyConnected, SingleComponentOnConnectedGraph) {
  CsrGraph graph(grid_2d(4, 5));
  ComponentAssignment wcc = weakly_connected_components(graph);
  EXPECT_EQ(wcc.num_components, 1u);
  EXPECT_EQ(wcc.giant_size(), 20u);
}

TEST(WeaklyConnected, CountsIsolatedVertices) {
  EdgeList list;
  list.num_vertices = 7;
  list.edges = {{0, 1, 1.0f}, {2, 3, 1.0f}};
  ComponentAssignment wcc = weakly_connected_components(CsrGraph(list));
  EXPECT_EQ(wcc.num_components, 5u); // {0,1}, {2,3}, {4}, {5}, {6}
  EXPECT_EQ(wcc.giant_size(), 2u);
  std::uint32_t total = 0;
  for (std::uint32_t size : wcc.size_of) total += size;
  EXPECT_EQ(total, 7u);
}

TEST(WeaklyConnected, DirectionDoesNotMatter) {
  // A directed path is weakly connected regardless of arc directions.
  CsrGraph graph(path_graph(10));
  ComponentAssignment wcc = weakly_connected_components(graph);
  EXPECT_EQ(wcc.num_components, 1u);
}

TEST(StronglyConnected, DirectedPathIsAllSingletons) {
  CsrGraph graph(path_graph(10));
  ComponentAssignment scc = strongly_connected_components(graph);
  EXPECT_EQ(scc.num_components, 10u);
  EXPECT_EQ(scc.giant_size(), 1u);
}

TEST(StronglyConnected, CycleIsOneComponent) {
  EdgeList list;
  list.num_vertices = 6;
  for (vertex_t v = 0; v < 6; ++v)
    list.edges.push_back({v, static_cast<vertex_t>((v + 1) % 6), 1.0f});
  ComponentAssignment scc = strongly_connected_components(CsrGraph(list));
  EXPECT_EQ(scc.num_components, 1u);
  EXPECT_EQ(scc.giant_size(), 6u);
}

TEST(StronglyConnected, TwoCyclesWithOneWayBridge) {
  // Cycle {0,1,2} -> bridge -> cycle {3,4,5}: two SCCs of size 3.
  EdgeList list;
  list.num_vertices = 6;
  list.edges = {{0, 1, 1}, {1, 2, 1}, {2, 0, 1}, {3, 4, 1}, {4, 5, 1},
                {5, 3, 1}, {2, 3, 1}};
  ComponentAssignment scc = strongly_connected_components(CsrGraph(list));
  EXPECT_EQ(scc.num_components, 2u);
  EXPECT_EQ(scc.component_of[0], scc.component_of[1]);
  EXPECT_EQ(scc.component_of[1], scc.component_of[2]);
  EXPECT_EQ(scc.component_of[3], scc.component_of[4]);
  EXPECT_NE(scc.component_of[0], scc.component_of[3]);
  // Tarjan emits components in reverse topological order: the sink SCC
  // {3,4,5} gets the smaller id.
  EXPECT_LT(scc.component_of[3], scc.component_of[0]);
}

TEST(StronglyConnected, DeepChainDoesNotOverflowStack) {
  // 200k-vertex chain: a recursive Tarjan would blow the call stack.
  CsrGraph graph(path_graph(200000));
  ComponentAssignment scc = strongly_connected_components(graph);
  EXPECT_EQ(scc.num_components, 200000u);
}

TEST(StronglyConnected, BidirectionalGraphMatchesWcc) {
  // With every edge present in both directions, SCC == WCC.
  CsrGraph graph(barabasi_albert(300, 3, 5));
  ComponentAssignment scc = strongly_connected_components(graph);
  ComponentAssignment wcc = weakly_connected_components(graph);
  EXPECT_EQ(scc.num_components, wcc.num_components);
  EXPECT_EQ(scc.giant_size(), wcc.giant_size());
}

TEST(StronglyConnected, SizesPartitionTheVertexSet) {
  CsrGraph graph(erdos_renyi(500, 1500, 9));
  ComponentAssignment scc = strongly_connected_components(graph);
  std::uint32_t total = 0;
  for (std::uint32_t size : scc.size_of) total += size;
  EXPECT_EQ(total, 500u);
  for (std::uint32_t label : scc.component_of)
    EXPECT_LT(label, scc.num_components);
}

// --- stochastic block model ---------------------------------------------------------

TEST(StochasticBlockModel, DensityMatchesParameters) {
  std::vector<vertex_t> blocks = {100, 100};
  EdgeList list = stochastic_block_model(blocks, 0.2, 0.01, 3);
  EXPECT_EQ(list.num_vertices, 200u);
  std::size_t within = 0, across = 0;
  for (const WeightedEdge &e : list.edges) {
    bool same = (e.source < 100) == (e.destination < 100);
    (same ? within : across) += 1;
  }
  // Expected: within ~ 2 * 100*99*0.2 = 3960; across ~ 2*100*100*0.01 = 200.
  EXPECT_NEAR(static_cast<double>(within), 3960.0, 400.0);
  EXPECT_NEAR(static_cast<double>(across), 200.0, 80.0);
}

TEST(StochasticBlockModel, ZeroInterBlockGivesDisconnectedCommunities) {
  std::vector<vertex_t> blocks = {50, 50, 50};
  EdgeList list = stochastic_block_model(blocks, 0.3, 0.0, 7);
  ComponentAssignment wcc = weakly_connected_components(CsrGraph(list));
  // Dense blocks are internally connected: exactly 3 components.
  EXPECT_EQ(wcc.num_components, 3u);
}

TEST(StochasticBlockModel, DeterministicInSeed) {
  std::vector<vertex_t> blocks = {40, 40};
  EXPECT_EQ(stochastic_block_model(blocks, 0.1, 0.01, 5).edges,
            stochastic_block_model(blocks, 0.1, 0.01, 5).edges);
  EXPECT_NE(stochastic_block_model(blocks, 0.1, 0.01, 5).edges,
            stochastic_block_model(blocks, 0.1, 0.01, 6).edges);
}

} // namespace
} // namespace ripples
