// Tests for the metrics subsystem: instrument semantics, the JSON
// writer/parser pair, the registry, and the RunReport schema every driver
// emits (validated by running real drivers and parsing their reports back).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "imm/imm.hpp"
#include "support/json.hpp"
#include "support/metrics.hpp"

namespace ripples {
namespace {

/// RAII toggle so a failing assertion cannot leak the enabled state into
/// other tests.
struct ScopedMetrics {
  explicit ScopedMetrics(bool on) { metrics::set_enabled(on); }
  ~ScopedMetrics() { metrics::set_enabled(false); }
};

// --- JSON writer -------------------------------------------------------------------

TEST(JsonWriter, EmitsNestedStructuresWithCorrectCommas) {
  JsonWriter w;
  w.begin_object();
  w.member("name", "imm");
  w.key("phases");
  w.begin_array();
  w.value(0.5);
  w.value(std::uint64_t{7});
  w.end_array();
  w.key("nested");
  w.begin_object();
  w.member("flag", true);
  w.key("absent");
  w.null();
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.str(), "{\"name\":\"imm\",\"phases\":[0.5,7],"
                     "\"nested\":{\"flag\":true,\"absent\":null}}");
}

TEST(JsonWriter, EscapesStringsAndHandlesNonFiniteNumbers) {
  JsonWriter w;
  w.begin_object();
  w.member("text", "a\"b\\c\nd\te");
  w.member("ctrl", std::string_view("\x01", 1));
  w.member("inf", std::numeric_limits<double>::infinity());
  w.member("nan", std::nan(""));
  w.end_object();
  const std::string &text = w.str();
  EXPECT_NE(text.find("a\\\"b\\\\c\\nd\\te"), std::string::npos);
  EXPECT_NE(text.find("\\u0001"), std::string::npos);
  EXPECT_NE(text.find("\"inf\":null"), std::string::npos);
  EXPECT_NE(text.find("\"nan\":null"), std::string::npos);
}

TEST(JsonWriter, OutputRoundTripsThroughTheParser) {
  JsonWriter w;
  w.begin_object();
  w.member("driver", "imm \"quoted\" \\ path\n");
  w.member("theta", std::uint64_t{123456789012345ULL});
  w.member("negative", std::int64_t{-42});
  w.member("pi", 3.25);
  w.member("flag", false);
  w.key("list");
  w.begin_array();
  w.value(std::uint32_t{1});
  w.value(std::uint32_t{2});
  w.end_array();
  w.end_object();

  auto parsed = JsonValue::parse(w.str());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_object());
  EXPECT_EQ(parsed->find("driver")->string, "imm \"quoted\" \\ path\n");
  EXPECT_EQ(parsed->find("theta")->number, 123456789012345.0);
  EXPECT_EQ(parsed->find("negative")->number, -42.0);
  EXPECT_EQ(parsed->find("pi")->number, 3.25);
  EXPECT_FALSE(parsed->find("flag")->boolean);
  ASSERT_EQ(parsed->find("list")->array.size(), 2u);
  EXPECT_EQ(parsed->find("list")->array[1].number, 2.0);
}

// --- JSON parser -------------------------------------------------------------------

TEST(JsonParser, AcceptsStandardDocuments) {
  auto v = JsonValue::parse(R"( {"a": [1, 2.5, -3e2], "b": {"c": null},
                                 "s": "xAy", "t": true} )");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->find("a")->array[2].number, -300.0);
  EXPECT_TRUE(v->find("b")->find("c")->is_null());
  EXPECT_EQ(v->find("s")->string, "xAy");
  EXPECT_TRUE(v->find("t")->boolean);
}

TEST(JsonParser, RejectsMalformedDocuments) {
  EXPECT_FALSE(JsonValue::parse("{").has_value());
  EXPECT_FALSE(JsonValue::parse("{\"a\": 1,}").has_value());
  EXPECT_FALSE(JsonValue::parse("[1 2]").has_value());
  EXPECT_FALSE(JsonValue::parse("\"unterminated").has_value());
  EXPECT_FALSE(JsonValue::parse("{} trailing").has_value());
  EXPECT_FALSE(JsonValue::parse("tru").has_value());
}

// --- instruments -------------------------------------------------------------------

TEST(Metrics, CounterAccumulatesAcrossThreads) {
  metrics::Counter counter;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t)
    workers.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) counter.increment();
    });
  for (std::thread &worker : workers) worker.join();
  EXPECT_EQ(counter.value(), 4000u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(Metrics, GaugeTracksLastAndPeak) {
  metrics::Gauge gauge;
  gauge.set(10);
  gauge.set(-3);
  EXPECT_EQ(gauge.value(), -3);
  gauge.set_max(7);
  EXPECT_EQ(gauge.value(), 7);
  gauge.set_max(2); // lower: no change
  EXPECT_EQ(gauge.value(), 7);
}

TEST(Metrics, HistogramBucketsArePowersOfTwo) {
  using H = metrics::HistogramData;
  EXPECT_EQ(H::bucket_of(0), 0u);
  EXPECT_EQ(H::bucket_of(1), 1u);
  EXPECT_EQ(H::bucket_of(2), 2u);
  EXPECT_EQ(H::bucket_of(3), 2u);
  EXPECT_EQ(H::bucket_of(4), 3u);
  EXPECT_EQ(H::bucket_of(1023), 10u);
  EXPECT_EQ(H::bucket_of(1024), 11u);
  for (std::size_t b = 1; b < 20; ++b) {
    EXPECT_EQ(H::bucket_of(H::bucket_lower(b)), b);
    EXPECT_EQ(H::bucket_of(H::bucket_upper(b)), b);
  }
}

TEST(Metrics, HistogramRecordsAndMerges) {
  metrics::HistogramData a;
  a.record(0);
  a.record(5);
  a.record(5);
  EXPECT_EQ(a.count, 3u);
  EXPECT_EQ(a.sum, 10u);
  EXPECT_EQ(a.min, 0u);
  EXPECT_EQ(a.max, 5u);
  EXPECT_DOUBLE_EQ(a.mean(), 10.0 / 3.0);

  metrics::HistogramData b;
  b.record(100);
  a.merge(b);
  EXPECT_EQ(a.count, 4u);
  EXPECT_EQ(a.max, 100u);
  a.merge(metrics::HistogramData{}); // empty merge: min/max unchanged
  EXPECT_EQ(a.min, 0u);

  metrics::LogHistogram atomic_h;
  atomic_h.record(0);
  atomic_h.record(5);
  atomic_h.record(5);
  atomic_h.record(100);
  metrics::HistogramData snap = atomic_h.snapshot();
  EXPECT_EQ(snap.count, a.count);
  EXPECT_EQ(snap.sum, a.sum);
  EXPECT_EQ(snap.buckets, a.buckets);
}

TEST(Metrics, RegistryReturnsStableReferencesByName) {
  metrics::Registry &registry = metrics::Registry::instance();
  metrics::Counter &first = registry.counter("test.registry.counter");
  first.add(3);
  metrics::Counter &second = registry.counter("test.registry.counter");
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(second.value(), 3u);

  registry.gauge("test.registry.gauge").set(9);
  registry.histogram("test.registry.hist").record(17);

  JsonWriter w;
  registry.to_json(w);
  auto parsed = JsonValue::parse(w.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("counters")->find("test.registry.counter")->number,
            3.0);
  EXPECT_EQ(parsed->find("gauges")->find("test.registry.gauge")->number, 9.0);
  EXPECT_EQ(
      parsed->find("histograms")->find("test.registry.hist")->find("count")->number,
      1.0);

  first.reset();
}

// --- run reports -------------------------------------------------------------------

CsrGraph report_test_graph() {
  CsrGraph graph(barabasi_albert(300, 2, 1));
  assign_uniform_weights(graph, 2);
  return graph;
}

ImmOptions report_test_options() {
  ImmOptions options;
  options.epsilon = 0.5;
  options.k = 5;
  options.seed = 2019;
  return options;
}

/// Asserts the presence and basic shape of every top-level schema section.
void check_report_schema(const JsonValue &report, const char *driver) {
  EXPECT_EQ(report.find("schema_version")->number,
            static_cast<double>(metrics::RunReport::kSchemaVersion));
  EXPECT_EQ(report.find("driver")->string, driver);

  const JsonValue *options = report.find("options");
  ASSERT_NE(options, nullptr);
  EXPECT_EQ(options->find("k")->number, 5.0);
  EXPECT_EQ(options->find("epsilon")->number, 0.5);
  EXPECT_EQ(options->find("model")->string, "IC");
  EXPECT_EQ(options->find("rng_mode")->string, "counter");

  const JsonValue *graph = report.find("graph");
  ASSERT_NE(graph, nullptr);
  EXPECT_EQ(graph->find("vertices")->number, 300.0);
  EXPECT_GT(graph->find("edges")->number, 0.0);

  const JsonValue *phases = report.find("phases_seconds");
  ASSERT_NE(phases, nullptr);
  for (const char *phase :
       {"estimate_theta", "sample", "select_seeds", "other", "total"})
    ASSERT_NE(phases->find(phase), nullptr) << phase;
  EXPECT_GT(phases->find("estimate_theta")->number, 0.0);

  // v2: per-phase first-entry offsets on the process trace epoch; null for
  // phases the run never entered.  EstimateTheta always runs, and offsets
  // are monotone in phase order when present.
  const JsonValue *starts = report.find("phase_starts_seconds");
  ASSERT_NE(starts, nullptr);
  for (const char *phase : {"estimate_theta", "sample", "select_seeds", "other"})
    ASSERT_NE(starts->find(phase), nullptr) << phase;
  const JsonValue *estimate_start = starts->find("estimate_theta");
  ASSERT_FALSE(estimate_start->is_null());
  EXPECT_GE(estimate_start->number, 0.0);
  const JsonValue *select_start = starts->find("select_seeds");
  ASSERT_FALSE(select_start->is_null());
  EXPECT_GE(select_start->number, estimate_start->number);

  const JsonValue *theta = report.find("theta");
  ASSERT_NE(theta, nullptr);
  EXPECT_GE(theta->find("value")->number, 1.0);
  EXPECT_GE(theta->find("iterations")->number, 1.0);
  EXPECT_GE(theta->find("lower_bound")->number, 1.0);
  ASSERT_TRUE(theta->find("extend_targets")->is_array());
  EXPECT_GE(theta->find("extend_targets")->array.size(),
            static_cast<std::size_t>(theta->find("iterations")->number));

  const JsonValue *samples = report.find("samples");
  ASSERT_NE(samples, nullptr);
  EXPECT_GE(samples->find("generated")->number, theta->find("value")->number);
  const JsonValue *histogram = samples->find("size_histogram");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->find("count")->number, samples->find("generated")->number);
  EXPECT_FALSE(histogram->find("buckets")->array.empty());

  const JsonValue *storage = report.find("storage");
  ASSERT_NE(storage, nullptr);
  EXPECT_GT(storage->find("rrr_peak_bytes")->number, 0.0);
  EXPECT_GT(storage->find("total_associations")->number, 0.0);
  // v5: process-wide memory view for every driver.
  ASSERT_NE(storage->find("tracker_peak_bytes"), nullptr);
  ASSERT_NE(storage->find("peak_rss_bytes"), nullptr);
  EXPECT_GT(storage->find("peak_rss_bytes")->number, 0.0);

  // v5: the per-round ledger and memory timeline are always present as
  // arrays (empty when metrics are disabled or no sampler ran).
  ASSERT_NE(report.find("rounds"), nullptr);
  ASSERT_TRUE(report.find("rounds")->is_array());
  ASSERT_NE(report.find("memory_timeline"), nullptr);
  ASSERT_TRUE(report.find("memory_timeline")->is_array());

  const JsonValue *selection = report.find("selection");
  ASSERT_NE(selection, nullptr);
  EXPECT_EQ(selection->find("rounds")->number, 5.0);
  EXPECT_GT(selection->find("covered_samples")->number, 0.0);
  EXPECT_GT(selection->find("total_samples")->number, 0.0);
  EXPECT_GT(selection->find("coverage_fraction")->number, 0.0);

  ASSERT_NE(report.find("mpsim"), nullptr);
  ASSERT_TRUE(report.find("seeds")->is_array());
  EXPECT_EQ(report.find("seeds")->array.size(), 5u);
}

TEST(RunReport, SequentialDriverEmitsTheFullSchema) {
  ImmResult result = imm_sequential(report_test_graph(), report_test_options());
  auto parsed = JsonValue::parse(result.report.to_json_string());
  ASSERT_TRUE(parsed.has_value());
  check_report_schema(*parsed, "imm_sequential");
  // Shared-memory driver: no collective traffic.
  EXPECT_TRUE(parsed->find("mpsim")->object.empty());
}

TEST(RunReport, DistributedDriverReportsCollectiveTraffic) {
  ScopedMetrics on(true);
  ImmOptions options = report_test_options();
  options.num_ranks = 2;
  ImmResult result = imm_distributed(report_test_graph(), options);
  auto parsed = JsonValue::parse(result.report.to_json_string());
  ASSERT_TRUE(parsed.has_value());
  check_report_schema(*parsed, "imm_distributed");

  // Sec. 3.2: the allreduce dominates — it must show up with real volume.
  const JsonValue *allreduce = parsed->find("mpsim")->find("allreduce");
  ASSERT_NE(allreduce, nullptr);
  EXPECT_GT(allreduce->find("calls")->number, 0.0);
  EXPECT_GT(allreduce->find("bytes")->number, 0.0);
}

TEST(RunReport, WriteJsonFileProducesAParseableDocument) {
  ImmResult result = imm_sequential(report_test_graph(), report_test_options());
  const std::string path = ::testing::TempDir() + "metrics_run_report.json";
  ASSERT_TRUE(result.report.write_json_file(path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto parsed = JsonValue::parse(buffer.str());
  ASSERT_TRUE(parsed.has_value());
  check_report_schema(*parsed, "imm_sequential");
  std::remove(path.c_str());
}

TEST(RunReport, ReportLogCollectsRunsWhenEnabled) {
  ScopedMetrics on(true);
  metrics::report_log().clear();
  (void)imm_sequential(report_test_graph(), report_test_options());
  (void)imm_sequential(report_test_graph(), report_test_options());
  EXPECT_EQ(metrics::report_log().size(), 2u);

  const std::string path = ::testing::TempDir() + "metrics_report_log.json";
  ASSERT_TRUE(metrics::report_log().write_json_file(path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto parsed = JsonValue::parse(buffer.str());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->find("reports")->array.size(), 2u);
  check_report_schema(parsed->find("reports")->array[0], "imm_sequential");
  ASSERT_NE(parsed->find("registry"), nullptr);
  // The sampler counter runs through the registry when metrics are on.
  const JsonValue *generated =
      parsed->find("registry")->find("counters")->find("sampler.samples_generated");
  ASSERT_NE(generated, nullptr);
  EXPECT_GT(generated->number, 0.0);

  metrics::report_log().clear();
  std::remove(path.c_str());
}

TEST(RunReport, DisabledMetricsSkipTheReportLog) {
  metrics::set_enabled(false);
  metrics::report_log().clear();
  ImmResult result = imm_sequential(report_test_graph(), report_test_options());
  EXPECT_EQ(metrics::report_log().size(), 0u);
  // The in-result report is still fully populated.
  EXPECT_FALSE(result.report.driver.empty());
  EXPECT_GT(result.report.rrr_sizes.count, 0u);
}

// --- round ledger (schema v5) -------------------------------------------------

TEST(RoundLedger, ImbalanceFactorIsMaxOverMedianOfCompute) {
  using metrics::RoundEntry;
  auto entry = [](double sample, double select, double wait) {
    RoundEntry e;
    e.sample_seconds = sample;
    e.select_seconds = select;
    e.collective_wait_seconds = wait;
    return e;
  };
  // Degenerate inputs read as balanced.
  EXPECT_DOUBLE_EQ(metrics::round_imbalance_factor({}), 1.0);
  EXPECT_DOUBLE_EQ(metrics::round_imbalance_factor({entry(1, 1, 0)}), 1.0);
  // Two ranks: lower median = min, so the factor is max/min, not 1.0.
  EXPECT_DOUBLE_EQ(
      metrics::round_imbalance_factor({entry(1, 0, 0), entry(3, 0, 0)}), 3.0);
  // Compute excludes the time spent waiting in collectives.
  EXPECT_DOUBLE_EQ(metrics::round_imbalance_factor(
                       {entry(2, 2, 2), entry(4, 2, 0)}),
                   3.0);
  // Perfectly balanced ranks read exactly 1.
  EXPECT_DOUBLE_EQ(metrics::round_imbalance_factor(
                       {entry(1, 1, 0), entry(1, 1, 0), entry(1, 1, 0)}),
                   1.0);
  // Wait exceeding the recorded phases clamps to zero compute; a zero
  // median yields the balanced sentinel instead of infinity.
  EXPECT_DOUBLE_EQ(metrics::round_imbalance_factor(
                       {entry(0, 0, 5), entry(1, 0, 5)}),
                   1.0);
}

TEST(RoundLedger, SerializationGroupsRanksByRoundWithImbalance) {
  metrics::RunReport report;
  report.driver = "test";
  auto entry = [](std::uint32_t round, std::int32_t rank, double sample) {
    metrics::RoundEntry e;
    e.round = round;
    e.rank = rank;
    e.sample_seconds = sample;
    e.select_seconds = 0.5;
    e.collective_wait_seconds = 0.25;
    e.rrr_sets = 100 + rank;
    e.rrr_bytes = 1000 + rank;
    return e;
  };
  // Appended in completion order: both ranks' round 1, then round 2.
  report.rounds = {entry(1, 0, 1.0), entry(1, 1, 3.25), entry(2, 0, 2.0),
                   entry(2, 1, 2.0)};
  report.memory_timeline = {{0.5, 111, 222, 333}, {1.0, 444, 555, 666}};

  auto parsed = JsonValue::parse(report.to_json_string());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("schema_version")->number,
            static_cast<double>(metrics::RunReport::kSchemaVersion));

  const JsonValue *rounds = parsed->find("rounds");
  ASSERT_NE(rounds, nullptr);
  ASSERT_EQ(rounds->array.size(), 2u);

  const JsonValue &first = rounds->array[0];
  EXPECT_EQ(first.find("round")->number, 1.0);
  // Rank 0 computes 1.0+0.5-0.25 = 1.25, rank 1 computes 3.25+0.5-0.25 =
  // 3.5; two ranks -> lower median = 1.25, factor = 2.8.
  EXPECT_DOUBLE_EQ(first.find("imbalance_factor")->number, 2.8);
  ASSERT_EQ(first.find("per_rank")->array.size(), 2u);
  const JsonValue &rank0 = first.find("per_rank")->array[0];
  EXPECT_EQ(rank0.find("rank")->number, 0.0);
  EXPECT_EQ(rank0.find("sample_seconds")->number, 1.0);
  EXPECT_EQ(rank0.find("select_seconds")->number, 0.5);
  EXPECT_EQ(rank0.find("collective_wait_seconds")->number, 0.25);
  EXPECT_EQ(rank0.find("rrr_sets")->number, 100.0);
  EXPECT_EQ(rank0.find("rrr_bytes")->number, 1000.0);

  const JsonValue &second = rounds->array[1];
  EXPECT_EQ(second.find("round")->number, 2.0);
  EXPECT_DOUBLE_EQ(second.find("imbalance_factor")->number, 1.0);

  const JsonValue *timeline = parsed->find("memory_timeline");
  ASSERT_NE(timeline, nullptr);
  ASSERT_EQ(timeline->array.size(), 2u);
  EXPECT_EQ(timeline->array[0].find("t_seconds")->number, 0.5);
  EXPECT_EQ(timeline->array[0].find("tracker_live_bytes")->number, 111.0);
  EXPECT_EQ(timeline->array[1].find("tracker_peak_bytes")->number, 555.0);
  EXPECT_EQ(timeline->array[1].find("rss_bytes")->number, 666.0);
}

TEST(RoundLedger, SequentialDriverLedgersEveryRoundWhenEnabled) {
  ScopedMetrics on(true);
  ImmResult result = imm_sequential(report_test_graph(), report_test_options());
  ASSERT_FALSE(result.report.rounds.empty());
  // One entry per estimation round plus the final extend+select round, all
  // rank 0, in chronological order, each with the storage probe attached.
  std::uint32_t expected_rounds = result.report.theta_iterations + 1;
  EXPECT_EQ(result.report.rounds.size(), expected_rounds);
  std::uint32_t previous = 0;
  for (const metrics::RoundEntry &entry : result.report.rounds) {
    EXPECT_EQ(entry.rank, 0);
    EXPECT_GT(entry.round, previous);
    previous = entry.round;
    EXPECT_GT(entry.rrr_sets, 0u);
    EXPECT_GT(entry.rrr_bytes, 0u);
    EXPECT_GE(entry.sample_seconds, 0.0);
    EXPECT_GE(entry.select_seconds, 0.0);
    EXPECT_EQ(entry.collective_wait_seconds, 0.0); // no collectives here
  }
  // The final round holds every generated sample.
  EXPECT_EQ(result.report.rounds.back().rrr_sets, result.num_samples);
}

TEST(RoundLedger, DistributedDriverLedgersEveryRankWithWait) {
  ScopedMetrics on(true);
  ImmOptions options = report_test_options();
  options.num_ranks = 3;
  ImmResult result = imm_distributed(report_test_graph(), options);
  ASSERT_FALSE(result.report.rounds.empty());

  std::map<std::uint32_t, std::set<std::int32_t>> ranks_per_round;
  double total_wait = 0.0;
  for (const metrics::RoundEntry &entry : result.report.rounds) {
    ranks_per_round[entry.round].insert(entry.rank);
    total_wait += entry.collective_wait_seconds;
  }
  // Every round was recorded by all three ranks — the reduction over ranks
  // at round boundaries lost nobody.
  for (const auto &[round, ranks] : ranks_per_round)
    EXPECT_EQ(ranks.size(), 3u) << "round " << round;
  // The martingale runs at least one estimation round plus the final.
  EXPECT_GE(ranks_per_round.size(), 2u);
  // Collectives ran, so somebody waited.
  EXPECT_GT(total_wait, 0.0);

  // The serialized form carries one imbalance factor per round group.
  auto parsed = JsonValue::parse(result.report.to_json_string());
  ASSERT_TRUE(parsed.has_value());
  const JsonValue *rounds = parsed->find("rounds");
  ASSERT_EQ(rounds->array.size(), ranks_per_round.size());
  for (const JsonValue &group : rounds->array)
    EXPECT_GE(group.find("imbalance_factor")->number, 1.0);
}

TEST(RoundLedger, DisabledMetricsRecordNoRounds) {
  metrics::set_enabled(false);
  ImmOptions options = report_test_options();
  options.num_ranks = 2;
  ImmResult result = imm_distributed(report_test_graph(), options);
  EXPECT_TRUE(result.report.rounds.empty());
}

} // namespace
} // namespace ripples
