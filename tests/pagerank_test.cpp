// Tests for PageRank: normalization, symmetry, hub dominance, dangling
// mass handling, and agreement with a hand-solved instance.
#include <gtest/gtest.h>

#include <numeric>

#include "centrality/degree.hpp"
#include "centrality/pagerank.hpp"
#include "graph/generators.hpp"

namespace ripples {
namespace {

double sum_of(const std::vector<double> &scores) {
  return std::accumulate(scores.begin(), scores.end(), 0.0);
}

TEST(PageRank, ScoresSumToOne) {
  CsrGraph graph(barabasi_albert(300, 3, 3));
  std::vector<double> scores = pagerank(graph);
  EXPECT_NEAR(sum_of(scores), 1.0, 1e-9);
  for (double s : scores) EXPECT_GT(s, 0.0);
}

TEST(PageRank, UniformOnSymmetricRegularGraph) {
  // Directed cycle: perfectly regular, every score is 1/n.
  EdgeList list;
  list.num_vertices = 8;
  for (vertex_t v = 0; v < 8; ++v)
    list.edges.push_back({v, static_cast<vertex_t>((v + 1) % 8), 1.0f});
  std::vector<double> scores = pagerank(CsrGraph(list));
  for (double s : scores) EXPECT_NEAR(s, 1.0 / 8.0, 1e-9);
}

TEST(PageRank, InStarConcentratesOnTheHub) {
  // All leaves point at the hub: the hub's score dominates.
  CsrGraph graph(star_graph(10, true)); // hub <-> leaves
  std::vector<double> scores = pagerank(graph);
  for (vertex_t leaf = 1; leaf <= 10; ++leaf)
    EXPECT_GT(scores[0], scores[leaf]);
}

TEST(PageRank, HandlesDanglingVertices) {
  // 0 -> 1 -> 2 (2 dangles): scores still sum to 1 and 2 ranks highest.
  CsrGraph graph(path_graph(3));
  std::vector<double> scores = pagerank(graph);
  EXPECT_NEAR(sum_of(scores), 1.0, 1e-9);
  EXPECT_GT(scores[2], scores[1]);
  EXPECT_GT(scores[1], scores[0]);
}

TEST(PageRank, MatchesHandSolvedTwoVertexExchange) {
  // 0 <-> 1: symmetric, each must converge to 0.5 for any damping.
  EdgeList list;
  list.num_vertices = 2;
  list.edges = {{0, 1, 1.0f}, {1, 0, 1.0f}};
  for (double damping : {0.5, 0.85, 0.99}) {
    PageRankOptions options;
    options.damping = damping;
    std::vector<double> scores = pagerank(CsrGraph(list), options);
    EXPECT_NEAR(scores[0], 0.5, 1e-9) << "damping " << damping;
    EXPECT_NEAR(scores[1], 0.5, 1e-9);
  }
}

TEST(PageRank, EmptyGraphIsUniform) {
  EdgeList list;
  list.num_vertices = 4;
  std::vector<double> scores = pagerank(CsrGraph(list));
  for (double s : scores) EXPECT_NEAR(s, 0.25, 1e-9);
}

TEST(PageRank, RankingUsableWithTopK) {
  CsrGraph graph(barabasi_albert(200, 2, 7));
  std::vector<double> scores = pagerank(graph);
  std::vector<vertex_t> top = top_k_by_score(std::span<const double>(scores), 5);
  ASSERT_EQ(top.size(), 5u);
  // Top PageRank vertices on a BA graph are early hubs.
  for (vertex_t v : top) EXPECT_LT(v, 50u);
}

} // namespace
} // namespace ripples
