// Tests for the lineage baselines: RIS threshold stopping and TIM+ KPT
// estimation, including the cross-generation comparison that motivates
// parallelizing IMM (equal quality, decreasing sample counts).
#include <gtest/gtest.h>

#include <set>

#include "diffusion/simulate.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "imm/imm.hpp"
#include "imm/lineage.hpp"

namespace ripples {
namespace {

CsrGraph test_graph(std::uint64_t seed = 31) {
  CsrGraph graph(barabasi_albert(500, 3, seed));
  assign_uniform_weights(graph, seed + 1);
  return graph;
}

TEST(RisThreshold, SatisfiesOutputContract) {
  CsrGraph graph = test_graph();
  RisOptions options;
  options.epsilon = 0.5;
  options.k = 8;
  options.seed = 11;
  options.budget_scale = 0.05; // keep the test fast; theory scale is huge
  ImmResult result = ris_threshold(graph, options);
  ASSERT_EQ(result.seeds.size(), 8u);
  std::set<vertex_t> unique(result.seeds.begin(), result.seeds.end());
  EXPECT_EQ(unique.size(), 8u);
  EXPECT_GE(result.theta, 1u);
  EXPECT_GT(result.coverage_fraction, 0.0);
}

TEST(RisThreshold, BudgetScaleControlsSampleCount) {
  CsrGraph graph = test_graph();
  RisOptions small;
  small.epsilon = 0.5;
  small.k = 8;
  small.seed = 11;
  small.budget_scale = 0.02;
  RisOptions large = small;
  large.budget_scale = 0.2;
  EXPECT_GT(ris_threshold(graph, large).theta, ris_threshold(graph, small).theta);
}

TEST(RisThreshold, TighterEpsilonBuysMoreSamples) {
  CsrGraph graph = test_graph();
  RisOptions loose;
  loose.epsilon = 0.6;
  loose.k = 5;
  loose.budget_scale = 0.5;
  RisOptions tight = loose;
  tight.epsilon = 0.3;
  EXPECT_GT(ris_threshold(graph, tight).theta, ris_threshold(graph, loose).theta);
}

TEST(RisThreshold, Deterministic) {
  CsrGraph graph = test_graph();
  RisOptions options;
  options.budget_scale = 0.02;
  options.k = 5;
  ImmResult a = ris_threshold(graph, options);
  ImmResult b = ris_threshold(graph, options);
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.theta, b.theta);
}

TEST(TimPlus, SatisfiesOutputContract) {
  CsrGraph graph = test_graph();
  TimOptions options;
  options.epsilon = 0.5;
  options.k = 8;
  options.seed = 13;
  ImmResult result = tim_plus(graph, options);
  ASSERT_EQ(result.seeds.size(), 8u);
  std::set<vertex_t> unique(result.seeds.begin(), result.seeds.end());
  EXPECT_EQ(unique.size(), 8u);
  EXPECT_GE(result.theta, 1u);
  EXPECT_GE(result.num_samples, result.theta);
  EXPECT_GE(result.lower_bound, 1.0);
}

TEST(TimPlus, KptBoundIsPlausible) {
  // KPT* lower-bounds OPT <= n; on a supercritical IC graph the optimum is
  // a large fraction of n, so KPT* must be well above the trivial 1.
  CsrGraph graph = test_graph();
  TimOptions options;
  options.epsilon = 0.5;
  options.k = 8;
  ImmResult result = tim_plus(graph, options);
  EXPECT_GT(result.lower_bound, 10.0);
  EXPECT_LE(result.lower_bound, static_cast<double>(graph.num_vertices()));
}

TEST(TimPlus, Deterministic) {
  CsrGraph graph = test_graph();
  TimOptions options;
  options.k = 5;
  ImmResult a = tim_plus(graph, options);
  ImmResult b = tim_plus(graph, options);
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.theta, b.theta);
}

TEST(Lineage, GenerationsAgreeOnSolutionQuality) {
  // RIS, TIM+ and IMM must land on seed sets of comparable influence —
  // they optimize the same objective over the same sample distribution.
  CsrGraph graph = test_graph();
  const std::uint32_t k = 8;

  RisOptions ris_options;
  ris_options.epsilon = 0.5;
  ris_options.k = k;
  ris_options.budget_scale = 0.05;
  ImmResult ris = ris_threshold(graph, ris_options);

  TimOptions tim_options;
  tim_options.epsilon = 0.5;
  tim_options.k = k;
  ImmResult tim = tim_plus(graph, tim_options);

  ImmOptions imm_options;
  imm_options.epsilon = 0.5;
  imm_options.k = k;
  ImmResult imm = imm_sequential(graph, imm_options);

  auto influence = [&](const std::vector<vertex_t> &seeds) {
    return estimate_influence(graph, seeds,
                              DiffusionModel::IndependentCascade, 2000, 17)
        .mean;
  };
  double sigma_imm = influence(imm.seeds);
  EXPECT_GT(influence(ris.seeds), 0.9 * sigma_imm);
  EXPECT_GT(influence(tim.seeds), 0.9 * sigma_imm);
}

TEST(Lineage, ImmNeedsFewerSamplesThanTimPlus) {
  // The IMM paper's headline improvement over TIM+: a tighter theta from
  // the martingale bound.  At equal (eps, k) IMM's final collection should
  // not exceed TIM+'s.
  CsrGraph graph = test_graph();
  TimOptions tim_options;
  tim_options.epsilon = 0.5;
  tim_options.k = 20;
  ImmResult tim = tim_plus(graph, tim_options);

  ImmOptions imm_options;
  imm_options.epsilon = 0.5;
  imm_options.k = 20;
  ImmResult imm = imm_sequential(graph, imm_options);

  EXPECT_LE(imm.num_samples, tim.num_samples);
}

TEST(Lineage, WorksUnderLinearThreshold) {
  CsrGraph graph = test_graph();
  renormalize_linear_threshold(graph);
  RisOptions ris_options;
  ris_options.model = DiffusionModel::LinearThreshold;
  ris_options.k = 5;
  ris_options.budget_scale = 0.02;
  EXPECT_EQ(ris_threshold(graph, ris_options).seeds.size(), 5u);

  TimOptions tim_options;
  tim_options.model = DiffusionModel::LinearThreshold;
  tim_options.k = 5;
  EXPECT_EQ(tim_plus(graph, tim_options).seeds.size(), 5u);
}

} // namespace
} // namespace ripples
