// Work-stealing sampler verification (DESIGN.md §13).  The load-bearing
// claim is byte-identity: because every RRR draw's RNG coordinates derive
// from its global stream index — never from the executor — *every* steal
// schedule must emit the identical collection, hence identical
// seeds/theta/|R|/coverage.  The property harness here sweeps seeded
// schedule perturbations (plus the steal-everything and steal-nothing
// extremes) against a no-steal baseline; the unit tests below pin the chunk
// machinery (queue split semantics, partition exactness, overflow guard,
// inventory gap computation) and the steal channel's protocol, and the
// ledger regression pins executing-rank attribution under a forced-steal
// schedule.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <limits>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "imm/imm.hpp"
#include "imm/sampler.hpp"
#include "imm/steal.hpp"
#include "mpsim/communicator.hpp"
#include "support/metrics.hpp"
#include "support/steal_schedule.hpp"

namespace ripples {
namespace {

constexpr std::uint64_t kTop = std::numeric_limits<std::uint64_t>::max();

// --- chunk machinery unit tests ---------------------------------------------

TEST(ChunkQueue, EmptyStealAndPopReturnNothing) {
  detail::ChunkQueue queue;
  detail::ChunkRange item;
  std::vector<detail::ChunkRange> grabbed;
  EXPECT_FALSE(queue.pop(item));
  EXPECT_EQ(queue.steal_half(grabbed), 0u);
  EXPECT_TRUE(grabbed.empty());
  EXPECT_EQ(queue.size(), 0u);
}

TEST(ChunkQueue, HalfSplitTakesCeilOfHalfFromTheBack) {
  detail::ChunkQueue queue;
  for (std::uint64_t i = 0; i < 5; ++i) queue.push({0, i, i + 1});
  std::vector<detail::ChunkRange> grabbed;
  // ceil(5/2) = 3, and the split comes off the back (items 2, 3, 4).
  EXPECT_EQ(queue.steal_half(grabbed), 3u);
  ASSERT_EQ(grabbed.size(), 3u);
  EXPECT_EQ(grabbed[0].begin, 2u);
  EXPECT_EQ(grabbed[1].begin, 3u);
  EXPECT_EQ(grabbed[2].begin, 4u);
  EXPECT_EQ(queue.size(), 2u);
  // ceil(2/2) = 1, ceil(1/2) = 1: a single remaining item is stealable.
  grabbed.clear();
  EXPECT_EQ(queue.steal_half(grabbed), 1u);
  grabbed.clear();
  EXPECT_EQ(queue.steal_half(grabbed), 1u);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(ChunkQueue, ConcurrentStealAndPopDeliverEveryChunkExactlyOnce) {
  detail::ChunkQueue queue;
  constexpr std::uint64_t kChunks = 2000;
  for (std::uint64_t i = 0; i < kChunks; ++i) queue.push({0, i, i + 1});

  constexpr int kThreads = 4;
  std::array<std::vector<std::uint64_t>, kThreads> collected;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&queue, &collected, t] {
      detail::ChunkRange item;
      std::vector<detail::ChunkRange> grabbed;
      for (;;) {
        if (t == 0) {
          // One owner popping the front...
          if (!queue.pop(item)) break;
          collected[static_cast<std::size_t>(t)].push_back(item.begin);
        } else {
          // ...three thieves splitting the back.  The queue only drains, so
          // a failed operation means it is empty and the loop may end.
          grabbed.clear();
          if (queue.steal_half(grabbed) == 0) break;
          for (const detail::ChunkRange &c : grabbed)
            collected[static_cast<std::size_t>(t)].push_back(c.begin);
        }
      }
    });
  for (std::thread &thread : threads) thread.join();

  std::vector<std::uint64_t> all;
  for (const auto &part : collected) all.insert(all.end(), part.begin(),
                                                part.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), kChunks);
  for (std::uint64_t i = 0; i < kChunks; ++i) EXPECT_EQ(all[i], i);
}

TEST(MakeStreamChunks, PartitionsTheStreamExactly) {
  const std::uint64_t from = 10, to = 137, stream = 2, p = 4, chunk = 5;
  const std::vector<detail::ChunkRange> chunks =
      detail::make_stream_chunks(from, to, stream, p, chunk);

  std::vector<std::uint64_t> expected;
  for (std::uint64_t i = leapfrog_first_index(from, stream, p); i < to; i += p)
    expected.push_back(i);

  std::vector<std::uint64_t> covered;
  for (const detail::ChunkRange &c : chunks) {
    EXPECT_EQ(c.stream, stream);
    EXPECT_LE(detail::chunk_draw_count(c, p), chunk);
    for (std::uint64_t i = leapfrog_first_index(c.begin, c.stream, p);
         i < c.end; i += p)
      covered.push_back(i);
  }
  EXPECT_EQ(covered, expected); // disjoint, ordered, complete
}

TEST(MakeStreamChunks, ChunkZeroIsClampedToOne) {
  const std::vector<detail::ChunkRange> chunks =
      detail::make_stream_chunks(0, 8, 1, 2, 0);
  ASSERT_EQ(chunks.size(), 4u); // draws 1, 3, 5, 7 — one per chunk
  for (const detail::ChunkRange &c : chunks)
    EXPECT_EQ(detail::chunk_draw_count(c, 2), 1u);
}

TEST(MakeStreamChunks, OverflowGuardSaturatesNearTheTopOfTheIndexSpace) {
  // chunk * num_streams overflows and begin + span overflows; both must
  // saturate (one clamped chunk) instead of wrapping into an endless loop.
  const std::vector<detail::ChunkRange> chunks =
      detail::make_stream_chunks(kTop - 40, kTop, 3, 4, kTop / 2);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].end, kTop);
  EXPECT_EQ(detail::chunk_draw_count(chunks[0], 4), 10u);
}

TEST(StreamInventory, MergesAdjacentAndOverlappingRanges) {
  detail::StreamInventory inventory;
  inventory.add(0, 64, 128);
  inventory.add(0, 0, 64);    // adjacent below
  inventory.add(0, 100, 160); // overlapping above
  inventory.add(2, 0, 32);    // separate stream
  const std::vector<std::uint64_t> flat = inventory.serialize();
  ASSERT_EQ(flat.size(), 6u); // two triples
  EXPECT_EQ(flat[0], 0u);
  EXPECT_EQ(flat[1], 0u);
  EXPECT_EQ(flat[2], 160u);
  EXPECT_EQ(flat[3], 2u);
  EXPECT_EQ(flat[4], 0u);
  EXPECT_EQ(flat[5], 32u);
}

TEST(MissingRanges, FindsExactlyTheUnexecutedGaps) {
  // Stream 0 executed [0,40) and [60,100); stream 1 never executed.
  const std::vector<std::uint64_t> gathered = {0, 0, 40, 0, 60, 100};
  const std::vector<detail::ChunkRange> missing =
      detail::missing_ranges(gathered, 2, 100);
  ASSERT_EQ(missing.size(), 2u);
  EXPECT_EQ(missing[0], (detail::ChunkRange{0, 40, 60}));
  EXPECT_EQ(missing[1], (detail::ChunkRange{1, 0, 100}));
}

TEST(MissingRanges, SkipsGapsContainingNoDrawOfTheStream) {
  // Stream 1 of 4 draws indices 1, 5, 9, ...; executed [0,2) and [5,9)
  // cover draws 1 and 5, and the gap [2,5) holds no stream-1 index, so it
  // must not be reported.  Streams 0, 2 and 3 are fully covered.
  const std::vector<std::uint64_t> gathered = {0, 0, 9, 1, 0, 2,
                                               1, 5, 9, 2, 0, 9, 3, 0, 9};
  EXPECT_TRUE(detail::missing_ranges(gathered, 4, 9).empty());
}

// --- mpsim steal-channel protocol -------------------------------------------

TEST(StealChannel, PublishAcquireHalfSplitAndDrain) {
  using Item = mpsim::Communicator::StealItem;
  std::array<std::vector<std::uint64_t>, 3> got;
  bool rank2_acquire_empty = false;
  bool rank2_pop_empty = false;

  mpsim::Context::run(3, [&](mpsim::Communicator &comm) {
    const int r = comm.world_rank();
    if (r == 0) {
      std::vector<Item> items;
      for (std::uint64_t t = 0; t < 4; ++t)
        items.push_back({t, t * 10, t * 10 + 5});
      comm.steal_publish(items);
    }
    comm.barrier();
    if (r == 1) {
      // The thief splits ceil(4/2) = 2 items off the back of rank 0's
      // queue: one comes back directly, the surplus lands in rank 1's own
      // queue where a subsequent pop (or a peer's steal) finds it.
      Item item;
      if (comm.steal_acquire(item)) got[1].push_back(item.tag);
      if (comm.steal_pop(item)) got[1].push_back(item.tag);
    }
    comm.barrier();
    if (r == 0) {
      Item item;
      while (comm.steal_pop(item)) got[0].push_back(item.tag);
    }
    comm.barrier();
    if (r == 2) {
      Item item;
      rank2_acquire_empty = !comm.steal_acquire(item, /*victim_offset=*/5);
      rank2_pop_empty = !comm.steal_pop(item);
    }
  });

  EXPECT_EQ(got[0], (std::vector<std::uint64_t>{0, 1}));
  EXPECT_EQ(got[1], (std::vector<std::uint64_t>{2, 3}));
  EXPECT_TRUE(got[2].empty());
  EXPECT_TRUE(rank2_acquire_empty);
  EXPECT_TRUE(rank2_pop_empty);
}

// --- schedule-perturbation property harness ---------------------------------

const CsrGraph &sweep_graph() {
  static const CsrGraph graph = [] {
    CsrGraph g(barabasi_albert(300, 3, 7));
    assign_uniform_weights(g, 13);
    return g;
  }();
  return graph;
}

ImmOptions sweep_options() {
  ImmOptions options;
  options.epsilon = 0.5;
  options.k = 8;
  options.model = DiffusionModel::IndependentCascade;
  options.seed = 2019;
  options.num_ranks = 4;
  options.steal = StealMode::Off;
  options.steal_chunk = 8;
  options.steal_skew = false;
  return options;
}

struct Outcome {
  std::vector<vertex_t> seeds;
  std::uint64_t theta = 0;
  std::uint64_t num_samples = 0;
  double coverage = 0;
};

Outcome capture(const ImmResult &result) {
  return {result.seeds, result.theta, result.num_samples,
          result.coverage_fraction};
}

void expect_same(const Outcome &actual, const Outcome &expected,
                 const char *context) {
  EXPECT_EQ(actual.seeds, expected.seeds) << context;
  EXPECT_EQ(actual.theta, expected.theta) << context;
  EXPECT_EQ(actual.num_samples, expected.num_samples) << context;
  EXPECT_EQ(actual.coverage, expected.coverage) << context;
}

const Outcome &no_steal_baseline() {
  static const Outcome outcome =
      capture(imm_distributed(sweep_graph(), sweep_options()));
  return outcome;
}

/// One schedule per parameter: 0 = steal-nothing, 1 = steal-everything,
/// 2.. = seeded pseudorandom schedules — 24 perturbations total.
class StealScheduleSweep : public ::testing::TestWithParam<int> {};

TEST_P(StealScheduleSweep, EveryScheduleEmitsTheIdenticalResult) {
  const int perturbation = GetParam();
  steal_schedule::Plan plan;
  switch (perturbation) {
  case 0: plan.mode = steal_schedule::Mode::StealNothing; break;
  case 1: plan.mode = steal_schedule::Mode::StealEverything; break;
  default:
    plan.mode = steal_schedule::Mode::Seeded;
    plan.seed = static_cast<std::uint64_t>(perturbation);
    break;
  }
  steal_schedule::ScopedPlan scoped(plan);

  ImmOptions options = sweep_options();
  options.steal = StealMode::On;
  options.steal_skew = true; // maximal migration pressure: all work homes
                             // on one rank, thieves spread it
  expect_same(capture(imm_distributed(sweep_graph(), options)),
              no_steal_baseline(), "perturbed steal schedule");
}

INSTANTIATE_TEST_SUITE_P(Perturbations, StealScheduleSweep,
                         ::testing::Range(0, 24));

TEST(StealIdentity, SkewWithoutStealingMatchesBaseline) {
  ImmOptions options = sweep_options();
  options.steal_skew = true; // the manufactured fig7 pathology alone
  expect_same(capture(imm_distributed(sweep_graph(), options)),
              no_steal_baseline(), "skew, steal off");
}

TEST(StealIdentity, InterOnlyAndIntraOnlyMatchBaseline) {
  ImmOptions options = sweep_options();
  options.steal = StealMode::Inter;
  expect_same(capture(imm_distributed(sweep_graph(), options)),
              no_steal_baseline(), "inter only");
  options.steal = StealMode::Intra;
  options.num_threads = 3;
  expect_same(capture(imm_distributed(sweep_graph(), options)),
              no_steal_baseline(), "intra only, 3 threads");
  options.sampler = SamplerEngine::Fused;
  expect_same(capture(imm_distributed(sweep_graph(), options)),
              no_steal_baseline(), "intra only, 3 threads, fused");
}

TEST(StealIdentity, LeapfrogModePinsStealingAsANoOp) {
  ImmOptions options = sweep_options();
  options.rng_mode = RngMode::LeapfrogLcg;
  const Outcome reference = capture(imm_distributed(sweep_graph(), options));
  options.steal = StealMode::On;
  options.steal_skew = true;
  expect_same(capture(imm_distributed(sweep_graph(), options)), reference,
              "leapfrog + steal on");
}

TEST(StealIdentity, GovernedBudgetComposesWithStealing) {
  // A generous budget governs every admission without degrading; the
  // governor pins inter stealing and skew off (rank-local admission), so
  // the run must still match the ungoverned baseline byte for byte while
  // intra chunking stays active.
  ImmOptions options = sweep_options();
  options.mem_budget = 256u << 20;
  options.steal = StealMode::On;
  options.steal_skew = true;
  options.num_threads = 2;
  ImmResult governed = imm_distributed(sweep_graph(), options);
  EXPECT_FALSE(governed.degraded);
  expect_same(capture(governed), no_steal_baseline(), "governed + steal on");
}

// --- metrics + ledger regression under a forced-steal schedule --------------

TEST(StealLedger, ForcedStealChargesExecutingRanksConsistently) {
  steal_schedule::ScopedPlan scoped(
      {steal_schedule::Mode::StealEverything, 0});

  ImmOptions options = sweep_options();
  options.steal = StealMode::On;
  options.steal_skew = true;
  options.steal_chunk = 2; // many chunks: thieves reliably win steals

  metrics::Counter &chunks =
      metrics::Registry::instance().counter("imm.steal.chunks_stolen");
  metrics::Counter &sets =
      metrics::Registry::instance().counter("imm.steal.sets_stolen");
  metrics::set_enabled(true);
  const std::uint64_t chunks_before = chunks.value();
  const std::uint64_t sets_before = sets.value();
  ImmResult result = imm_distributed(sweep_graph(), options);
  metrics::set_enabled(false);

  EXPECT_GT(chunks.value(), chunks_before);
  EXPECT_GT(sets.value(), sets_before);
  expect_same(capture(result), no_steal_baseline(), "forced-steal ledger run");

  // Ledger attribution: rows charge the executing rank, and the final
  // round's per-rank rrr_sets must still sum to |R| exactly — the
  // invariant behind analyze_trace.py's batch-coverage and sum checks.
  const std::vector<metrics::RoundEntry> &rounds = result.report.rounds;
  ASSERT_FALSE(rounds.empty());
  std::uint32_t last_round = 0;
  for (const metrics::RoundEntry &entry : rounds)
    last_round = std::max(last_round, entry.round);
  std::uint64_t final_sets = 0;
  int executing_ranks = 0;
  for (const metrics::RoundEntry &entry : rounds) {
    if (entry.round != last_round) continue;
    final_sets += entry.rrr_sets;
    if (entry.rrr_sets > 0) ++executing_ranks;
  }
  EXPECT_EQ(final_sets, result.num_samples);
  // Skew homes every draw on one rank; with stealing forced on, at least
  // one thief must have executed (and been charged for) stolen chunks.
  EXPECT_GT(executing_ranks, 1);
}

} // namespace
} // namespace ripples
