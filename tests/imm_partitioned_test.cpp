// Tests for the graph-partitioned distributed driver (the paper's
// future-work extension): output contract, rank-count invariance, quality
// against the non-partitioned drivers, and behaviour on both models.
#include <gtest/gtest.h>

#include <set>

#include "diffusion/simulate.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "imm/imm.hpp"

namespace ripples {
namespace {

CsrGraph test_graph(DiffusionModel model, std::uint64_t seed = 21) {
  CsrGraph graph(barabasi_albert(500, 3, seed));
  assign_uniform_weights(graph, seed + 1);
  if (model == DiffusionModel::LinearThreshold)
    renormalize_linear_threshold(graph);
  return graph;
}

ImmOptions base_options(DiffusionModel model) {
  ImmOptions options;
  options.epsilon = 0.5;
  options.k = 8;
  options.model = model;
  options.seed = 1234;
  return options;
}

class PartitionedDriver : public ::testing::TestWithParam<DiffusionModel> {};

TEST_P(PartitionedDriver, SatisfiesOutputContract) {
  CsrGraph graph = test_graph(GetParam());
  ImmOptions options = base_options(GetParam());
  options.num_ranks = 3;
  ImmResult result = imm_distributed_partitioned(graph, options);
  ASSERT_EQ(result.seeds.size(), options.k);
  std::set<vertex_t> unique(result.seeds.begin(), result.seeds.end());
  EXPECT_EQ(unique.size(), options.k);
  for (vertex_t s : result.seeds) EXPECT_LT(s, graph.num_vertices());
  EXPECT_GE(result.theta, 1u);
  EXPECT_GE(result.num_samples, result.theta);
  EXPECT_GT(result.coverage_fraction, 0.0);
  EXPECT_GT(result.rrr_peak_bytes, 0u);
}

TEST_P(PartitionedDriver, ResultIsInvariantToRankCount) {
  // Per-(sample, vertex) streams: the realized random experiment — and
  // therefore the seed set — must not depend on how many ranks share it.
  CsrGraph graph = test_graph(GetParam());
  ImmOptions options = base_options(GetParam());
  options.num_ranks = 1;
  ImmResult reference = imm_distributed_partitioned(graph, options);
  for (int ranks : {2, 3, 5, 8}) {
    options.num_ranks = ranks;
    ImmResult result = imm_distributed_partitioned(graph, options);
    EXPECT_EQ(result.seeds, reference.seeds) << "ranks=" << ranks;
    EXPECT_EQ(result.theta, reference.theta);
    EXPECT_EQ(result.num_samples, reference.num_samples);
    EXPECT_DOUBLE_EQ(result.coverage_fraction, reference.coverage_fraction);
  }
}

TEST_P(PartitionedDriver, QualityMatchesNonPartitionedDriver) {
  // Different RNG discipline => different seeds, but the influence of the
  // selected sets must be statistically comparable.
  CsrGraph graph = test_graph(GetParam());
  ImmOptions options = base_options(GetParam());
  options.num_ranks = 4;
  ImmResult partitioned = imm_distributed_partitioned(graph, options);

  ImmOptions plain_options = base_options(GetParam());
  ImmResult plain = imm_sequential(graph, plain_options);

  double sigma_partitioned =
      estimate_influence(graph, partitioned.seeds, options.model, 2000, 5).mean;
  double sigma_plain =
      estimate_influence(graph, plain.seeds, options.model, 2000, 5).mean;
  EXPECT_GT(sigma_partitioned, 0.85 * sigma_plain);
}

TEST_P(PartitionedDriver, SliceAssociationsMatchSampleMass) {
  // The per-rank slices partition each sample, so total associations must
  // be of the same order as a non-partitioned run with the same theta
  // trajectory would store (not double-counted, not dropped).
  CsrGraph graph = test_graph(GetParam());
  ImmOptions options = base_options(GetParam());
  options.num_ranks = 1;
  ImmResult one = imm_distributed_partitioned(graph, options);
  options.num_ranks = 4;
  ImmResult four = imm_distributed_partitioned(graph, options);
  EXPECT_EQ(one.total_associations, four.total_associations);
}

INSTANTIATE_TEST_SUITE_P(Models, PartitionedDriver,
                         ::testing::Values(DiffusionModel::IndependentCascade,
                                           DiffusionModel::LinearThreshold));

TEST(PartitionedDriver, WorksWithMoreRanksThanUsefulWork) {
  // Tiny graph across many ranks: some ranks own one or two vertices; the
  // BFS exchange and ownership arithmetic must still be exact.
  CsrGraph graph(path_graph(12));
  assign_constant_weights(graph, 1.0f);
  ImmOptions options;
  options.epsilon = 0.5;
  options.k = 2;
  options.seed = 5;
  options.num_ranks = 8;
  ImmResult result = imm_distributed_partitioned(graph, options);
  ASSERT_EQ(result.seeds.size(), 2u);
  // On a deterministic path with p = 1, the RRR set of root v is {0..v},
  // so early path vertices cover the most samples: the first seed must lie
  // near the head of the path.
  EXPECT_LT(result.seeds[0], 4u);
}

TEST(PartitionedDriver, DeterministicAcrossRepeatedRuns) {
  CsrGraph graph = test_graph(DiffusionModel::IndependentCascade);
  ImmOptions options = base_options(DiffusionModel::IndependentCascade);
  options.num_ranks = 3;
  ImmResult a = imm_distributed_partitioned(graph, options);
  ImmResult b = imm_distributed_partitioned(graph, options);
  EXPECT_EQ(a.seeds, b.seeds);
}

} // namespace
} // namespace ripples
