// Tests for the biology case-study substrate: expression synthesis,
// correlation-network inference, Fisher's exact test, and BH adjustment.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "bio/enrichment.hpp"
#include "bio/expression.hpp"
#include "bio/inference.hpp"
#include "graph/csr.hpp"

namespace ripples::bio {
namespace {

ExpressionConfig small_config() {
  ExpressionConfig config;
  config.num_features = 200;
  config.num_samples = 50;
  config.num_modules = 4;
  config.module_fraction = 0.6;
  config.module_correlation = 0.8;
  config.seed = 5;
  return config;
}

TEST(Expression, ShapeAndModuleAssignment) {
  ExpressionConfig config = small_config();
  ExpressionMatrix matrix = synthesize_expression(config);
  EXPECT_EQ(matrix.num_features(), 200u);
  EXPECT_EQ(matrix.num_samples(), 50u);

  std::map<std::uint32_t, int> module_sizes;
  int background = 0;
  for (std::uint32_t f = 0; f < matrix.num_features(); ++f) {
    if (matrix.module_of(f) == ExpressionMatrix::kBackground)
      ++background;
    else
      ++module_sizes[matrix.module_of(f)];
  }
  EXPECT_EQ(module_sizes.size(), 4u);
  EXPECT_EQ(background, 80); // 40% of 200
  for (const auto &[module, size] : module_sizes) EXPECT_EQ(size, 30);
}

TEST(Expression, DeterministicInSeed) {
  ExpressionMatrix a = synthesize_expression(small_config());
  ExpressionMatrix b = synthesize_expression(small_config());
  for (std::uint32_t f = 0; f < a.num_features(); f += 17)
    for (std::uint32_t s = 0; s < a.num_samples(); s += 7)
      EXPECT_DOUBLE_EQ(a.at(f, s), b.at(f, s));
}

TEST(Expression, ModuleMembersCorrelateMoreThanBackground) {
  ExpressionMatrix matrix = synthesize_expression(small_config());
  // Two members of module 0 with equal sign loading: 0 and 8 (both even
  // layer).  A background pair: 150 and 151.
  double within = std::abs(
      pearson_correlation(matrix.row(0), matrix.row(8), matrix.num_samples()));
  double background = std::abs(pearson_correlation(
      matrix.row(150), matrix.row(151), matrix.num_samples()));
  EXPECT_GT(within, 0.4);
  EXPECT_LT(background, 0.45);
  EXPECT_GT(within, background);
}

TEST(PearsonCorrelation, KnownValues) {
  double x[] = {1, 2, 3, 4, 5};
  double y[] = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson_correlation(x, y, 5), 1.0, 1e-12);
  double z[] = {10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson_correlation(x, z, 5), -1.0, 1e-12);
  double constant[] = {3, 3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(pearson_correlation(x, constant, 5), 0.0);
}

TEST(Inference, EdgesLinkModuleMembers) {
  ExpressionMatrix matrix = synthesize_expression(small_config());
  InferenceConfig inference;
  inference.edges_per_target = 5;
  inference.min_abs_correlation = 0.4;
  EdgeList network = infer_coexpression_network(matrix, inference);
  EXPECT_EQ(network.num_vertices, matrix.num_features());
  ASSERT_GT(network.edges.size(), 0u);

  // The overwhelming majority of inferred edges must connect members of the
  // same planted module.
  std::size_t same_module = 0;
  for (const WeightedEdge &e : network.edges) {
    EXPECT_GE(e.weight, inference.min_abs_correlation);
    EXPECT_LE(e.weight, 1.0f);
    if (matrix.module_of(e.source) == matrix.module_of(e.destination) &&
        matrix.module_of(e.source) != ExpressionMatrix::kBackground)
      ++same_module;
  }
  EXPECT_GT(static_cast<double>(same_module),
            0.9 * static_cast<double>(network.edges.size()));
}

TEST(Inference, RespectsEdgesPerTargetCap) {
  ExpressionMatrix matrix = synthesize_expression(small_config());
  InferenceConfig inference;
  inference.edges_per_target = 3;
  inference.min_abs_correlation = 0.2;
  EdgeList network = infer_coexpression_network(matrix, inference);
  std::vector<int> in_count(matrix.num_features(), 0);
  for (const WeightedEdge &e : network.edges) ++in_count[e.destination];
  for (int count : in_count) EXPECT_LE(count, 3);
}

TEST(Inference, NetworkIsLoadableAsCsr) {
  ExpressionMatrix matrix = synthesize_expression(small_config());
  EdgeList network = infer_coexpression_network(matrix, {});
  CsrGraph graph(network);
  EXPECT_EQ(graph.num_vertices(), matrix.num_features());
}

// --- Fisher's exact test -----------------------------------------------------------

TEST(FisherExact, MatchesHandComputedHypergeometric) {
  // Universe 10, pathway 4, selection 5.  P(X >= 4) = C(4,4)C(6,1)/C(10,5)
  // = 6/252.
  EXPECT_NEAR(fisher_exact_upper_tail(4, 5, 4, 10), 6.0 / 252.0, 1e-12);
  // P(X >= 0) = 1 (up to the log-space summation's rounding).
  EXPECT_NEAR(fisher_exact_upper_tail(0, 5, 4, 10), 1.0, 1e-12);
}

TEST(FisherExact, SmallOverlapIsNotSignificant) {
  // Expected overlap of a random 50-selection with a 40-pathway in a
  // 1000-universe is 2; observing 2 is unremarkable.
  double p = fisher_exact_upper_tail(2, 50, 40, 1000);
  EXPECT_GT(p, 0.3);
}

TEST(FisherExact, LargeOverlapIsHighlySignificant) {
  double p = fisher_exact_upper_tail(20, 50, 40, 1000);
  EXPECT_LT(p, 1e-10);
}

TEST(FisherExact, MonotoneInOverlap) {
  double previous = 1.1;
  for (std::uint32_t overlap = 0; overlap <= 30; overlap += 5) {
    double p = fisher_exact_upper_tail(overlap, 50, 40, 1000);
    EXPECT_LT(p, previous);
    previous = p;
  }
}

// --- Benjamini-Hochberg -------------------------------------------------------------

TEST(BenjaminiHochberg, KnownExample) {
  // Classic worked example: p = {0.01, 0.04, 0.03, 0.005} (m = 4).
  std::vector<double> p{0.01, 0.04, 0.03, 0.005};
  std::vector<double> adjusted = benjamini_hochberg(p);
  // sorted: 0.005 (x4/1=0.02), 0.01 (x4/2=0.02), 0.03 (x4/3=0.04), 0.04 (x4/4=0.04)
  EXPECT_NEAR(adjusted[3], 0.02, 1e-12);
  EXPECT_NEAR(adjusted[0], 0.02, 1e-12);
  EXPECT_NEAR(adjusted[2], 0.04, 1e-12);
  EXPECT_NEAR(adjusted[1], 0.04, 1e-12);
}

TEST(BenjaminiHochberg, MonotoneAndCapped) {
  std::vector<double> p{0.9, 0.5, 0.999, 0.001};
  std::vector<double> adjusted = benjamini_hochberg(p);
  for (double a : adjusted) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
  // Adjusted values never fall below raw values.
  for (std::size_t i = 0; i < p.size(); ++i) EXPECT_GE(adjusted[i], p[i] - 1e-15);
}

TEST(BenjaminiHochberg, EmptyInput) {
  EXPECT_TRUE(benjamini_hochberg(std::vector<double>{}).empty());
}

// --- pathway synthesis + enrichment end to end ---------------------------------------

TEST(Pathways, SynthesizedDatabaseHasExpectedShape) {
  ExpressionMatrix matrix = synthesize_expression(small_config());
  PathwayConfig config;
  config.pathways_per_module = 2;
  config.num_random_pathways = 10;
  PathwayDatabase database = synthesize_pathways(matrix, config);
  EXPECT_EQ(database.pathways.size(), 4u * 2 + 10);
  for (const Pathway &pathway : database.pathways) {
    EXPECT_FALSE(pathway.members.empty());
    EXPECT_TRUE(std::is_sorted(pathway.members.begin(), pathway.members.end()));
  }
}

TEST(Enrichment, ModuleSelectionEnrichesItsOwnPathways) {
  ExpressionMatrix matrix = synthesize_expression(small_config());
  PathwayConfig pathway_config;
  PathwayDatabase database = synthesize_pathways(matrix, pathway_config);

  // Select exactly the members of module 0.
  std::vector<std::uint32_t> selected;
  for (std::uint32_t f = 0; f < matrix.num_features(); ++f)
    if (matrix.module_of(f) == 0) selected.push_back(f);

  std::vector<EnrichmentRow> rows =
      enrich(selected, database, matrix.num_features());
  ASSERT_FALSE(rows.empty());

  // The top hits must be module-0 pathways, strongly significant.
  for (std::size_t i = 0; i < pathway_config.pathways_per_module; ++i) {
    const Pathway &pathway = database.pathways[rows[i].pathway_index];
    EXPECT_EQ(pathway.name.find("module0_"), 0u) << pathway.name;
    EXPECT_LT(rows[i].p_adjusted, 1e-6);
  }
  // Random pathways stay insignificant.
  std::size_t significant = count_significant(rows, 0.05);
  EXPECT_GE(significant, pathway_config.pathways_per_module);
  EXPECT_LE(significant, pathway_config.pathways_per_module + 2);
}

TEST(Enrichment, RandomSelectionEnrichesAlmostNothing) {
  ExpressionMatrix matrix = synthesize_expression(small_config());
  PathwayDatabase database = synthesize_pathways(matrix, {});
  std::vector<std::uint32_t> selected;
  for (std::uint32_t f = 3; selected.size() < 30; f = (f + 37) % 200)
    selected.push_back(f);
  std::vector<EnrichmentRow> rows =
      enrich(selected, database, matrix.num_features());
  EXPECT_LE(count_significant(rows, 0.05), 2u);
}

TEST(Enrichment, DeduplicatesSelection) {
  ExpressionMatrix matrix = synthesize_expression(small_config());
  PathwayDatabase database = synthesize_pathways(matrix, {});
  std::vector<std::uint32_t> selected{1, 1, 1, 2, 2, 3};
  std::vector<EnrichmentRow> rows =
      enrich(selected, database, matrix.num_features());
  // With only 3 distinct features selected, overlap can never exceed 3.
  for (const EnrichmentRow &row : rows) EXPECT_LE(row.overlap, 3u);
}

} // namespace
} // namespace ripples::bio
