// Tests for the sampling engines: thread-count invariance (the central
// parallel-correctness property), incremental extension, and equivalence of
// the compact and hypergraph storage paths.
#include <gtest/gtest.h>

#include <limits>

#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "imm/sampler.hpp"
#include "imm/sampler_fused.hpp"

namespace ripples {
namespace {

CsrGraph test_graph(std::uint64_t seed) {
  CsrGraph graph(barabasi_albert(400, 3, seed));
  assign_uniform_weights(graph, seed + 1);
  return graph;
}

TEST(SampleSequential, ProducesRequestedCount) {
  CsrGraph graph = test_graph(1);
  RRRCollection collection;
  sample_sequential(graph, DiffusionModel::IndependentCascade, 100, 7,
                    collection);
  EXPECT_EQ(collection.size(), 100u);
  for (const RRRSet &set : collection.sets()) {
    EXPECT_FALSE(set.empty());
    EXPECT_TRUE(std::is_sorted(set.begin(), set.end()));
  }
}

TEST(SampleSequential, ExtensionKeepsExistingSamples) {
  CsrGraph graph = test_graph(2);
  RRRCollection collection;
  sample_sequential(graph, DiffusionModel::IndependentCascade, 50, 7,
                    collection);
  std::vector<RRRSet> snapshot = collection.sets();
  sample_sequential(graph, DiffusionModel::IndependentCascade, 120, 7,
                    collection);
  ASSERT_EQ(collection.size(), 120u);
  for (std::size_t i = 0; i < 50; ++i)
    EXPECT_EQ(collection.sets()[i], snapshot[i]) << "sample " << i;
}

TEST(SampleSequential, TargetBelowCurrentIsNoOp) {
  CsrGraph graph = test_graph(3);
  RRRCollection collection;
  sample_sequential(graph, DiffusionModel::IndependentCascade, 60, 7,
                    collection);
  sample_sequential(graph, DiffusionModel::IndependentCascade, 30, 7,
                    collection);
  EXPECT_EQ(collection.size(), 60u);
}

class SamplerThreadInvariance
    : public ::testing::TestWithParam<std::tuple<DiffusionModel, unsigned>> {};

TEST_P(SamplerThreadInvariance, MultithreadedMatchesSequentialBitExactly) {
  auto [model, threads] = GetParam();
  CsrGraph graph = test_graph(4);
  if (model == DiffusionModel::LinearThreshold)
    renormalize_linear_threshold(graph);

  RRRCollection sequential, parallel;
  sample_sequential(graph, model, 200, 11, sequential);
  sample_multithreaded(graph, model, 200, 11, threads, parallel);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t i = 0; i < sequential.size(); ++i)
    EXPECT_EQ(sequential.sets()[i], parallel.sets()[i]) << "sample " << i;
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndThreads, SamplerThreadInvariance,
    ::testing::Combine(::testing::Values(DiffusionModel::IndependentCascade,
                                         DiffusionModel::LinearThreshold),
                       ::testing::Values(1u, 2u, 4u, 8u)));

TEST(SampleMultithreaded, IncrementalExtensionMatchesOneShot) {
  CsrGraph graph = test_graph(5);
  RRRCollection one_shot, incremental;
  sample_multithreaded(graph, DiffusionModel::IndependentCascade, 150, 13, 4,
                       one_shot);
  sample_multithreaded(graph, DiffusionModel::IndependentCascade, 40, 13, 4,
                       incremental);
  sample_multithreaded(graph, DiffusionModel::IndependentCascade, 90, 13, 4,
                       incremental);
  sample_multithreaded(graph, DiffusionModel::IndependentCascade, 150, 13, 4,
                       incremental);
  ASSERT_EQ(one_shot.size(), incremental.size());
  for (std::size_t i = 0; i < one_shot.size(); ++i)
    EXPECT_EQ(one_shot.sets()[i], incremental.sets()[i]);
}

TEST(SampleSequentialFlat, MatchesCompactSamplesExactly) {
  CsrGraph graph = test_graph(10);
  RRRCollection compact;
  FlatRRRCollection flat;
  sample_sequential(graph, DiffusionModel::IndependentCascade, 120, 29, compact);
  sample_sequential_flat(graph, DiffusionModel::IndependentCascade, 120, 29,
                         flat);
  ASSERT_EQ(flat.size(), compact.size());
  for (std::size_t j = 0; j < flat.size(); ++j) {
    auto slice = flat.sample(j);
    ASSERT_EQ(slice.size(), compact.sets()[j].size()) << "sample " << j;
    for (std::size_t i = 0; i < slice.size(); ++i)
      EXPECT_EQ(slice[i], compact.sets()[j][i]);
  }
  EXPECT_EQ(flat.total_associations(), compact.total_associations());
}

TEST(SampleSequentialFlat, ArenaFootprintBeatsPerSampleVectors) {
  CsrGraph graph = test_graph(11);
  RRRCollection compact;
  FlatRRRCollection flat;
  sample_sequential(graph, DiffusionModel::IndependentCascade, 300, 31, compact);
  sample_sequential_flat(graph, DiffusionModel::IndependentCascade, 300, 31,
                         flat);
  flat.shrink_to_fit();
  EXPECT_LT(flat.footprint_bytes(), compact.footprint_bytes());
}

TEST(SampleHypergraph, StoresSameSamplesWithIncidence) {
  CsrGraph graph = test_graph(6);
  RRRCollection compact;
  HypergraphCollection dual(graph.num_vertices());
  sample_sequential(graph, DiffusionModel::IndependentCascade, 120, 17, compact);
  sample_hypergraph(graph, DiffusionModel::IndependentCascade, 120, 17, dual);
  ASSERT_EQ(dual.size(), compact.size());
  for (std::size_t i = 0; i < compact.size(); ++i)
    EXPECT_EQ(dual.sets()[i], compact.sets()[i]);

  // Incidence must be the exact inverse relation.
  for (vertex_t v = 0; v < graph.num_vertices(); ++v)
    for (std::uint32_t j : dual.samples_containing(v))
      EXPECT_TRUE(std::binary_search(dual.sets()[j].begin(),
                                     dual.sets()[j].end(), v));
  std::size_t incidence_total = 0;
  for (vertex_t v = 0; v < graph.num_vertices(); ++v)
    incidence_total += dual.samples_containing(v).size();
  std::size_t sample_total = 0;
  for (const RRRSet &set : dual.sets()) sample_total += set.size();
  EXPECT_EQ(incidence_total, sample_total);
}

TEST(RRRCollectionStorage, HypergraphStoresAssociationsTwice) {
  // The paper: "each association between a sample and a vertex is stored
  // twice" in the baseline.  total_associations must reflect exactly 2x.
  CsrGraph graph = test_graph(7);
  RRRCollection compact;
  HypergraphCollection dual(graph.num_vertices());
  sample_sequential(graph, DiffusionModel::IndependentCascade, 80, 19, compact);
  sample_hypergraph(graph, DiffusionModel::IndependentCascade, 80, 19, dual);
  EXPECT_EQ(dual.total_associations(), 2 * compact.total_associations());
  EXPECT_GT(dual.footprint_bytes(), compact.footprint_bytes());
}

TEST(RRRCollectionStorage, FootprintGrowsWithSamples) {
  CsrGraph graph = test_graph(8);
  RRRCollection collection;
  sample_sequential(graph, DiffusionModel::IndependentCascade, 10, 23,
                    collection);
  std::size_t small = collection.footprint_bytes();
  sample_sequential(graph, DiffusionModel::IndependentCascade, 100, 23,
                    collection);
  EXPECT_GT(collection.footprint_bytes(), small);
  EXPECT_GT(collection.total_associations(), 0u);
}

// --- fused engine ----------------------------------------------------------
//
// The fused kernel's whole contract is byte-identity with the scalar
// engine: same (graph, model, seed, |R|) -> same collection, whatever the
// batch geometry.  The sweep crosses both models with graph shapes chosen
// to stress different kernel paths: hub-heavy preferential attachment
// (long frontier rows), sparse uniform random (many single-vertex sets),
// a ring lattice (uniform short rows), a bidirectional star (every lane
// collides on the hub immediately), a path (deep narrow walks), and a
// small complete graph (fewer vertices than lanes, dense emission path).
struct FusedShape {
  const char *name;
  EdgeList (*make)();
};

const FusedShape kFusedShapes[] = {
    {"barabasi_albert", [] { return barabasi_albert(400, 3, 21); }},
    {"erdos_renyi", [] { return erdos_renyi(300, 900, 22); }},
    {"watts_strogatz", [] { return watts_strogatz(256, 4, 0.1, 23); }},
    {"star", [] { return star_graph(100, true); }},
    {"path", [] { return path_graph(50); }},
    {"complete", [] { return complete_graph(40); }},
};

class FusedIdentity
    : public ::testing::TestWithParam<std::tuple<DiffusionModel, int>> {};

TEST_P(FusedIdentity, FusedMatchesSequentialBitExactly) {
  auto [model, shape_index] = GetParam();
  const FusedShape &shape = kFusedShapes[shape_index];
  CsrGraph graph(shape.make());
  assign_uniform_weights(graph, 91);
  if (model == DiffusionModel::LinearThreshold)
    renormalize_linear_threshold(graph);

  // 130 = two full 64-lane batches plus a 2-lane remainder batch.
  RRRCollection scalar, fused;
  sample_sequential(graph, model, 130, 37, scalar);
  sample_sequential_fused(graph, model, 130, 37, fused);
  ASSERT_EQ(scalar.size(), fused.size());
  for (std::size_t i = 0; i < scalar.size(); ++i)
    EXPECT_EQ(scalar.sets()[i], fused.sets()[i])
        << shape.name << " sample " << i;
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndShapes, FusedIdentity,
    ::testing::Combine(::testing::Values(DiffusionModel::IndependentCascade,
                                         DiffusionModel::LinearThreshold),
                       ::testing::Range(0, 6)));

TEST(FusedSamplerEngine, SingleSampleBatchMatchesSequential) {
  CsrGraph graph = test_graph(12);
  RRRCollection scalar, fused;
  sample_sequential(graph, DiffusionModel::IndependentCascade, 1, 41, scalar);
  sample_sequential_fused(graph, DiffusionModel::IndependentCascade, 1, 41,
                          fused);
  ASSERT_EQ(fused.size(), 1u);
  EXPECT_EQ(scalar.sets()[0], fused.sets()[0]);
}

TEST(FusedSamplerEngine, IncrementalExtensionMatchesOneShot) {
  // Extension re-batches from an unaligned start (40 -> 90 -> 200), so lane
  // assignments differ between the two runs; identity must hold anyway.
  CsrGraph graph = test_graph(13);
  RRRCollection one_shot, incremental;
  sample_sequential_fused(graph, DiffusionModel::IndependentCascade, 200, 43,
                          one_shot);
  sample_sequential_fused(graph, DiffusionModel::IndependentCascade, 40, 43,
                          incremental);
  sample_sequential_fused(graph, DiffusionModel::IndependentCascade, 90, 43,
                          incremental);
  sample_sequential_fused(graph, DiffusionModel::IndependentCascade, 200, 43,
                          incremental);
  ASSERT_EQ(one_shot.size(), incremental.size());
  for (std::size_t i = 0; i < one_shot.size(); ++i)
    EXPECT_EQ(one_shot.sets()[i], incremental.sets()[i]) << "sample " << i;
}

class FusedThreadInvariance
    : public ::testing::TestWithParam<std::tuple<DiffusionModel, unsigned>> {};

TEST_P(FusedThreadInvariance, MultithreadedFusedMatchesSequentialBitExactly) {
  auto [model, threads] = GetParam();
  CsrGraph graph = test_graph(4);
  if (model == DiffusionModel::LinearThreshold)
    renormalize_linear_threshold(graph);

  RRRCollection scalar, fused;
  sample_sequential(graph, model, 200, 11, scalar);
  sample_multithreaded_fused(graph, model, 200, 11, threads, fused);
  ASSERT_EQ(scalar.size(), fused.size());
  for (std::size_t i = 0; i < scalar.size(); ++i)
    EXPECT_EQ(scalar.sets()[i], fused.sets()[i]) << "sample " << i;
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndThreads, FusedThreadInvariance,
    ::testing::Combine(::testing::Values(DiffusionModel::IndependentCascade,
                                         DiffusionModel::LinearThreshold),
                       ::testing::Values(1u, 2u, 4u, 8u)));

TEST(FusedSamplerEngine, CounterIndicesMatchScalarOnScatteredIndices) {
  // The healing path regenerates arbitrary index subsets; the fused batch
  // must reproduce each stream regardless of which lanes its neighbors
  // occupy.  Indices are deliberately non-contiguous and unsorted-adjacent.
  CsrGraph graph = test_graph(14);
  std::vector<std::uint64_t> indices;
  for (std::uint64_t i = 0; i < 150; i += 3) indices.push_back(i ^ 1);
  RRRCollection scalar, fused;
  sample_counter_indices(graph, DiffusionModel::IndependentCascade, 47,
                         indices, 2, scalar);
  sample_counter_indices_fused(graph, DiffusionModel::IndependentCascade, 47,
                               indices, 2, fused);
  ASSERT_EQ(scalar.size(), fused.size());
  for (std::size_t i = 0; i < scalar.size(); ++i)
    EXPECT_EQ(scalar.sets()[i], fused.sets()[i]) << "index " << indices[i];
}

// --- leap-frog index arithmetic --------------------------------------------

TEST(LeapfrogFirstIndex, FindsTheNextStreamMember) {
  EXPECT_EQ(leapfrog_first_index(0, 0, 4), 0u);
  EXPECT_EQ(leapfrog_first_index(0, 3, 4), 3u);
  EXPECT_EQ(leapfrog_first_index(7, 3, 5), 8u);
  EXPECT_EQ(leapfrog_first_index(8, 3, 5), 8u);
  EXPECT_EQ(leapfrog_first_index(9, 3, 5), 13u);
}

TEST(LeapfrogFirstIndex, SaturatesInsteadOfWrappingNearMax) {
  // from = 2^64 - 2 is congruent to 2 mod 4; stream 0's next index would be
  // 2^64, which must saturate to UINT64_MAX (an unreachable sample index),
  // not wrap to 0 and regenerate the whole range.
  const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(leapfrog_first_index(max - 1, 0, 4), max);
  // A reachable index just below the edge still comes out exact:
  // 2^64 - 2 is congruent to 2 mod 4, so it is stream 2's own member.
  EXPECT_EQ(leapfrog_first_index(max - 1, 2, 4), max - 1);
}

TEST(SampleLeapfrogRange, TerminatesWhenStrideWrapsPastMax) {
  // num_streams = 2^63 puts exactly two indices of stream 5 in
  // [0, UINT64_MAX): 5 and 5 + 2^63.  The next candidate, 5 + 2^64, wraps
  // to 5 again — without the wrap guard this loop never terminates.
  CsrGraph graph = test_graph(15);
  const std::uint64_t huge_stride = std::uint64_t{1} << 63;
  Lcg64 engine = Lcg64::leapfrog_stream(99, 5, huge_stride);
  RRRCollection collection;
  std::uint64_t generated = sample_leapfrog_range(
      graph, DiffusionModel::IndependentCascade, engine, 5, huge_stride, 0,
      std::numeric_limits<std::uint64_t>::max(), collection);
  EXPECT_EQ(generated, 2u);
  EXPECT_EQ(collection.size(), 2u);
}

TEST(SamplerDeterminism, DifferentSeedsGiveDifferentCollections) {
  CsrGraph graph = test_graph(9);
  RRRCollection a, b;
  sample_sequential(graph, DiffusionModel::IndependentCascade, 50, 1, a);
  sample_sequential(graph, DiffusionModel::IndependentCascade, 50, 2, b);
  EXPECT_NE(a.sets(), b.sets());
}

} // namespace
} // namespace ripples
