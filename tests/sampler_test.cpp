// Tests for the sampling engines: thread-count invariance (the central
// parallel-correctness property), incremental extension, and equivalence of
// the compact and hypergraph storage paths.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "imm/sampler.hpp"

namespace ripples {
namespace {

CsrGraph test_graph(std::uint64_t seed) {
  CsrGraph graph(barabasi_albert(400, 3, seed));
  assign_uniform_weights(graph, seed + 1);
  return graph;
}

TEST(SampleSequential, ProducesRequestedCount) {
  CsrGraph graph = test_graph(1);
  RRRCollection collection;
  sample_sequential(graph, DiffusionModel::IndependentCascade, 100, 7,
                    collection);
  EXPECT_EQ(collection.size(), 100u);
  for (const RRRSet &set : collection.sets()) {
    EXPECT_FALSE(set.empty());
    EXPECT_TRUE(std::is_sorted(set.begin(), set.end()));
  }
}

TEST(SampleSequential, ExtensionKeepsExistingSamples) {
  CsrGraph graph = test_graph(2);
  RRRCollection collection;
  sample_sequential(graph, DiffusionModel::IndependentCascade, 50, 7,
                    collection);
  std::vector<RRRSet> snapshot = collection.sets();
  sample_sequential(graph, DiffusionModel::IndependentCascade, 120, 7,
                    collection);
  ASSERT_EQ(collection.size(), 120u);
  for (std::size_t i = 0; i < 50; ++i)
    EXPECT_EQ(collection.sets()[i], snapshot[i]) << "sample " << i;
}

TEST(SampleSequential, TargetBelowCurrentIsNoOp) {
  CsrGraph graph = test_graph(3);
  RRRCollection collection;
  sample_sequential(graph, DiffusionModel::IndependentCascade, 60, 7,
                    collection);
  sample_sequential(graph, DiffusionModel::IndependentCascade, 30, 7,
                    collection);
  EXPECT_EQ(collection.size(), 60u);
}

class SamplerThreadInvariance
    : public ::testing::TestWithParam<std::tuple<DiffusionModel, unsigned>> {};

TEST_P(SamplerThreadInvariance, MultithreadedMatchesSequentialBitExactly) {
  auto [model, threads] = GetParam();
  CsrGraph graph = test_graph(4);
  if (model == DiffusionModel::LinearThreshold)
    renormalize_linear_threshold(graph);

  RRRCollection sequential, parallel;
  sample_sequential(graph, model, 200, 11, sequential);
  sample_multithreaded(graph, model, 200, 11, threads, parallel);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t i = 0; i < sequential.size(); ++i)
    EXPECT_EQ(sequential.sets()[i], parallel.sets()[i]) << "sample " << i;
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndThreads, SamplerThreadInvariance,
    ::testing::Combine(::testing::Values(DiffusionModel::IndependentCascade,
                                         DiffusionModel::LinearThreshold),
                       ::testing::Values(1u, 2u, 4u, 8u)));

TEST(SampleMultithreaded, IncrementalExtensionMatchesOneShot) {
  CsrGraph graph = test_graph(5);
  RRRCollection one_shot, incremental;
  sample_multithreaded(graph, DiffusionModel::IndependentCascade, 150, 13, 4,
                       one_shot);
  sample_multithreaded(graph, DiffusionModel::IndependentCascade, 40, 13, 4,
                       incremental);
  sample_multithreaded(graph, DiffusionModel::IndependentCascade, 90, 13, 4,
                       incremental);
  sample_multithreaded(graph, DiffusionModel::IndependentCascade, 150, 13, 4,
                       incremental);
  ASSERT_EQ(one_shot.size(), incremental.size());
  for (std::size_t i = 0; i < one_shot.size(); ++i)
    EXPECT_EQ(one_shot.sets()[i], incremental.sets()[i]);
}

TEST(SampleSequentialFlat, MatchesCompactSamplesExactly) {
  CsrGraph graph = test_graph(10);
  RRRCollection compact;
  FlatRRRCollection flat;
  sample_sequential(graph, DiffusionModel::IndependentCascade, 120, 29, compact);
  sample_sequential_flat(graph, DiffusionModel::IndependentCascade, 120, 29,
                         flat);
  ASSERT_EQ(flat.size(), compact.size());
  for (std::size_t j = 0; j < flat.size(); ++j) {
    auto slice = flat.sample(j);
    ASSERT_EQ(slice.size(), compact.sets()[j].size()) << "sample " << j;
    for (std::size_t i = 0; i < slice.size(); ++i)
      EXPECT_EQ(slice[i], compact.sets()[j][i]);
  }
  EXPECT_EQ(flat.total_associations(), compact.total_associations());
}

TEST(SampleSequentialFlat, ArenaFootprintBeatsPerSampleVectors) {
  CsrGraph graph = test_graph(11);
  RRRCollection compact;
  FlatRRRCollection flat;
  sample_sequential(graph, DiffusionModel::IndependentCascade, 300, 31, compact);
  sample_sequential_flat(graph, DiffusionModel::IndependentCascade, 300, 31,
                         flat);
  flat.shrink_to_fit();
  EXPECT_LT(flat.footprint_bytes(), compact.footprint_bytes());
}

TEST(SampleHypergraph, StoresSameSamplesWithIncidence) {
  CsrGraph graph = test_graph(6);
  RRRCollection compact;
  HypergraphCollection dual(graph.num_vertices());
  sample_sequential(graph, DiffusionModel::IndependentCascade, 120, 17, compact);
  sample_hypergraph(graph, DiffusionModel::IndependentCascade, 120, 17, dual);
  ASSERT_EQ(dual.size(), compact.size());
  for (std::size_t i = 0; i < compact.size(); ++i)
    EXPECT_EQ(dual.sets()[i], compact.sets()[i]);

  // Incidence must be the exact inverse relation.
  for (vertex_t v = 0; v < graph.num_vertices(); ++v)
    for (std::uint32_t j : dual.samples_containing(v))
      EXPECT_TRUE(std::binary_search(dual.sets()[j].begin(),
                                     dual.sets()[j].end(), v));
  std::size_t incidence_total = 0;
  for (vertex_t v = 0; v < graph.num_vertices(); ++v)
    incidence_total += dual.samples_containing(v).size();
  std::size_t sample_total = 0;
  for (const RRRSet &set : dual.sets()) sample_total += set.size();
  EXPECT_EQ(incidence_total, sample_total);
}

TEST(RRRCollectionStorage, HypergraphStoresAssociationsTwice) {
  // The paper: "each association between a sample and a vertex is stored
  // twice" in the baseline.  total_associations must reflect exactly 2x.
  CsrGraph graph = test_graph(7);
  RRRCollection compact;
  HypergraphCollection dual(graph.num_vertices());
  sample_sequential(graph, DiffusionModel::IndependentCascade, 80, 19, compact);
  sample_hypergraph(graph, DiffusionModel::IndependentCascade, 80, 19, dual);
  EXPECT_EQ(dual.total_associations(), 2 * compact.total_associations());
  EXPECT_GT(dual.footprint_bytes(), compact.footprint_bytes());
}

TEST(RRRCollectionStorage, FootprintGrowsWithSamples) {
  CsrGraph graph = test_graph(8);
  RRRCollection collection;
  sample_sequential(graph, DiffusionModel::IndependentCascade, 10, 23,
                    collection);
  std::size_t small = collection.footprint_bytes();
  sample_sequential(graph, DiffusionModel::IndependentCascade, 100, 23,
                    collection);
  EXPECT_GT(collection.footprint_bytes(), small);
  EXPECT_GT(collection.total_associations(), 0u);
}

TEST(SamplerDeterminism, DifferentSeedsGiveDifferentCollections) {
  CsrGraph graph = test_graph(9);
  RRRCollection a, b;
  sample_sequential(graph, DiffusionModel::IndependentCascade, 50, 1, a);
  sample_sequential(graph, DiffusionModel::IndependentCascade, 50, 2, b);
  EXPECT_NE(a.sets(), b.sets());
}

} // namespace
} // namespace ripples
