// Tests for the theta estimation mathematics: log-binomial, the lambda
// constants, the doubling schedule, the stopping rule, and the monotone
// growth of theta in k and 1/epsilon that Figure 2 plots.
#include <gtest/gtest.h>

#include <cmath>

#include "imm/theta.hpp"

namespace ripples {
namespace {

TEST(LogBinomial, MatchesSmallExactValues) {
  EXPECT_NEAR(log_binomial(5, 2), std::log(10.0), 1e-9);
  EXPECT_NEAR(log_binomial(10, 3), std::log(120.0), 1e-9);
  EXPECT_NEAR(log_binomial(52, 5), std::log(2598960.0), 1e-6);
}

TEST(LogBinomial, BoundaryCases) {
  EXPECT_DOUBLE_EQ(log_binomial(7, 0), 0.0);
  EXPECT_DOUBLE_EQ(log_binomial(7, 7), 0.0);
  EXPECT_TRUE(std::isinf(log_binomial(3, 4)));
  EXPECT_LT(log_binomial(3, 4), 0);
}

TEST(LogBinomial, SymmetryProperty) {
  for (std::uint64_t k = 0; k <= 20; ++k)
    EXPECT_NEAR(log_binomial(20, k), log_binomial(20, 20 - k), 1e-9);
}

TEST(ThetaSchedule, ConstantsArePositiveAndOrdered) {
  ThetaSchedule schedule(27770, 50, 0.5); // cit-HepTh-sized input
  EXPECT_GT(schedule.lambda_prime(), 0.0);
  EXPECT_GT(schedule.lambda_star(), 0.0);
  EXPECT_DOUBLE_EQ(schedule.epsilon(), 0.5);
  EXPECT_NEAR(schedule.epsilon_prime(), std::sqrt(2.0) * 0.5, 1e-12);
  EXPECT_EQ(schedule.max_iterations(),
            static_cast<std::uint32_t>(std::floor(std::log2(27770.0))));
}

TEST(ThetaSchedule, TargetsDoublePerIteration) {
  ThetaSchedule schedule(100000, 50, 0.5);
  for (std::uint32_t x = 1; x + 1 <= schedule.max_iterations(); ++x) {
    double ratio = static_cast<double>(schedule.target_samples(x + 1)) /
                   static_cast<double>(schedule.target_samples(x));
    EXPECT_NEAR(ratio, 2.0, 0.01) << "x=" << x;
  }
}

// Figure 2's two monotonicity laws: theta grows when epsilon shrinks and
// when k grows.
class ThetaEpsilonSweep : public ::testing::TestWithParam<double> {};

TEST_P(ThetaEpsilonSweep, FinalThetaShrinksWithEpsilon) {
  const double epsilon = GetParam();
  ThetaSchedule tighter(27770, 50, epsilon);
  ThetaSchedule looser(27770, 50, epsilon + 0.1);
  const double lower_bound = 500.0;
  EXPECT_GT(tighter.final_theta(lower_bound), looser.final_theta(lower_bound));
}

INSTANTIATE_TEST_SUITE_P(Epsilons, ThetaEpsilonSweep,
                         ::testing::Values(0.13, 0.2, 0.3, 0.4, 0.5));

class ThetaKSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ThetaKSweep, FinalThetaGrowsWithK) {
  const std::uint32_t k = GetParam();
  ThetaSchedule small_k(27770, k, 0.5);
  ThetaSchedule large_k(27770, k + 20, 0.5);
  const double lower_bound = 500.0;
  EXPECT_LT(small_k.final_theta(lower_bound), large_k.final_theta(lower_bound));
}

INSTANTIATE_TEST_SUITE_P(Ks, ThetaKSweep,
                         ::testing::Values(10, 30, 50, 70, 80));

TEST(ThetaSchedule, FinalThetaInverselyProportionalToLowerBound) {
  ThetaSchedule schedule(10000, 20, 0.4);
  std::uint64_t at_100 = schedule.final_theta(100.0);
  std::uint64_t at_1000 = schedule.final_theta(1000.0);
  EXPECT_NEAR(static_cast<double>(at_100) / static_cast<double>(at_1000), 10.0,
              0.05);
}

TEST(ThetaSchedule, AcceptImplementsTheStoppingRule) {
  ThetaSchedule schedule(1000, 10, 0.5);
  const double eps_prime = schedule.epsilon_prime();
  // At x = 1 the threshold is (1 + eps') * n/2 = (1 + eps') * 500.
  double lower_bound = 0.0;
  // Coverage just below the threshold: reject.
  double below = (1.0 + eps_prime) * 500.0 / 1000.0 - 1e-6;
  EXPECT_FALSE(schedule.accept(1, below, &lower_bound));
  // Coverage at/above: accept and return estimate / (1 + eps').
  double above = (1.0 + eps_prime) * 500.0 / 1000.0 + 0.01;
  ASSERT_TRUE(schedule.accept(1, above, &lower_bound));
  EXPECT_NEAR(lower_bound, 1000.0 * above / (1.0 + eps_prime), 1e-9);
}

TEST(ThetaSchedule, AcceptThresholdHalvesPerIteration) {
  ThetaSchedule schedule(4096, 10, 0.5);
  // A coverage fraction that fails at x but passes at x+1 demonstrates the
  // halving threshold.
  double coverage = 0.2;
  std::uint32_t first_accept = 0;
  for (std::uint32_t x = 1; x <= schedule.max_iterations(); ++x) {
    if (schedule.accept(x, coverage, nullptr)) {
      first_accept = x;
      break;
    }
  }
  ASSERT_GT(first_accept, 1u);
  EXPECT_TRUE(schedule.accept(first_accept + 1, coverage, nullptr));
  EXPECT_FALSE(schedule.accept(first_accept - 1, coverage, nullptr));
}

TEST(ThetaSchedule, FinalThetaAtLeastOne) {
  ThetaSchedule schedule(1000, 5, 0.5);
  EXPECT_GE(schedule.final_theta(1e12), 1u);
}

TEST(ThetaSchedule, ThetaQuicklyExceedsN) {
  // Section 4.1: "theta quickly exceeds n".  With a realistic LB (a few
  // percent of n) theta is far larger than n for epsilon <= 0.5.
  const std::uint64_t n = 27770;
  ThetaSchedule schedule(n, 50, 0.5);
  double lower_bound = 0.05 * static_cast<double>(n);
  EXPECT_GT(schedule.final_theta(lower_bound), n);
}

} // namespace
} // namespace ripples
