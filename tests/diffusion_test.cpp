// Tests for the forward diffusion simulators: determinism, structural
// invariants, and agreement with closed-form influence values on small
// topologies where E[|I(S)|] can be computed by hand.
#include <gtest/gtest.h>

#include <cmath>

#include "diffusion/simulate.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"

namespace ripples {
namespace {

TEST(ParseModel, AcceptsStandardSpellings) {
  EXPECT_EQ(parse_model("IC"), DiffusionModel::IndependentCascade);
  EXPECT_EQ(parse_model("ic"), DiffusionModel::IndependentCascade);
  EXPECT_EQ(parse_model("independent-cascade"), DiffusionModel::IndependentCascade);
  EXPECT_EQ(parse_model("LT"), DiffusionModel::LinearThreshold);
  EXPECT_EQ(parse_model("LinearThreshold"), DiffusionModel::LinearThreshold);
  EXPECT_STREQ(to_string(DiffusionModel::IndependentCascade), "IC");
  EXPECT_STREQ(to_string(DiffusionModel::LinearThreshold), "LT");
}

TEST(SimulateDiffusion, SeedsAreAlwaysActive) {
  CsrGraph graph(erdos_renyi(100, 400, 1));
  assign_constant_weights(graph, 0.0f); // nothing can spread
  std::vector<vertex_t> seeds{3, 17, 42};
  for (auto model : {DiffusionModel::IndependentCascade,
                     DiffusionModel::LinearThreshold})
    EXPECT_EQ(simulate_diffusion(graph, seeds, model, 5), 3u);
}

TEST(SimulateDiffusion, DuplicateSeedsCountOnce) {
  CsrGraph graph(erdos_renyi(50, 100, 2));
  assign_constant_weights(graph, 0.0f);
  std::vector<vertex_t> seeds{7, 7, 7};
  EXPECT_EQ(simulate_diffusion(graph, seeds,
                               DiffusionModel::IndependentCascade, 5),
            1u);
}

TEST(SimulateDiffusion, FullProbabilityActivatesReachableSet) {
  // Path 0 -> 1 -> 2 -> 3 -> 4 with p = 1: seeding 2 activates {2, 3, 4}.
  CsrGraph graph(path_graph(5));
  assign_constant_weights(graph, 1.0f);
  std::vector<vertex_t> seeds{2};
  for (int trial = 0; trial < 10; ++trial)
    EXPECT_EQ(simulate_diffusion(graph, seeds,
                                 DiffusionModel::IndependentCascade,
                                 static_cast<std::uint64_t>(trial)),
              3u);
}

TEST(SimulateDiffusion, DeterministicInSeed) {
  CsrGraph graph(barabasi_albert(300, 3, 4));
  assign_uniform_weights(graph, 9);
  std::vector<vertex_t> seeds{0, 5};
  for (auto model : {DiffusionModel::IndependentCascade,
                     DiffusionModel::LinearThreshold}) {
    std::size_t a = simulate_diffusion(graph, seeds, model, 77);
    std::size_t b = simulate_diffusion(graph, seeds, model, 77);
    EXPECT_EQ(a, b);
  }
}

TEST(SimulateDiffusion, ActivationBoundedByGraphSize) {
  CsrGraph graph(erdos_renyi(200, 3000, 6));
  assign_uniform_weights(graph, 10);
  std::vector<vertex_t> seeds{0};
  for (std::uint64_t s = 0; s < 20; ++s) {
    std::size_t size = simulate_diffusion(
        graph, seeds, DiffusionModel::IndependentCascade, s);
    EXPECT_GE(size, 1u);
    EXPECT_LE(size, 200u);
  }
}

// --- closed-form agreement ------------------------------------------------------

TEST(EstimateInfluence, SingleEdgeMatchesBernoulliMean) {
  // 0 -> 1 with p = 0.3: E[|I({0})|] = 1 + 0.3.
  EdgeList list;
  list.num_vertices = 2;
  list.edges = {{0, 1, 0.3f}};
  CsrGraph graph(list);
  std::vector<vertex_t> seeds{0};
  InfluenceEstimate estimate = estimate_influence(
      graph, seeds, DiffusionModel::IndependentCascade, 40000, 3);
  EXPECT_NEAR(estimate.mean, 1.3, 0.02);
  EXPECT_GT(estimate.std_error, 0.0);
}

TEST(EstimateInfluence, PathMatchesGeometricSum) {
  // Path 0 -> 1 -> 2 -> 3 with p = 0.5 everywhere:
  // E = 1 + 0.5 + 0.25 + 0.125 = 1.875.
  CsrGraph graph(path_graph(4));
  assign_constant_weights(graph, 0.5f);
  std::vector<vertex_t> seeds{0};
  InfluenceEstimate estimate = estimate_influence(
      graph, seeds, DiffusionModel::IndependentCascade, 40000, 5);
  EXPECT_NEAR(estimate.mean, 1.875, 0.03);
}

TEST(EstimateInfluence, StarWithUniformP) {
  // Star hub -> 10 leaves with p = 0.2: E[|I({hub})|] = 1 + 10 * 0.2 = 3.
  CsrGraph graph(star_graph(10, false));
  assign_constant_weights(graph, 0.2f);
  std::vector<vertex_t> seeds{0};
  InfluenceEstimate estimate = estimate_influence(
      graph, seeds, DiffusionModel::IndependentCascade, 40000, 7);
  EXPECT_NEAR(estimate.mean, 3.0, 0.05);
}

TEST(EstimateInfluence, LtSingleInEdgeMatchesWeight) {
  // LT live-edge view: vertex 1 picks its only in-edge (0 -> 1, b = 0.4)
  // with probability 0.4, so E[|I({0})|] = 1.4.
  EdgeList list;
  list.num_vertices = 2;
  list.edges = {{0, 1, 0.4f}};
  CsrGraph graph(list);
  std::vector<vertex_t> seeds{0};
  InfluenceEstimate estimate = estimate_influence(
      graph, seeds, DiffusionModel::LinearThreshold, 40000, 9);
  EXPECT_NEAR(estimate.mean, 1.4, 0.02);
}

TEST(EstimateInfluence, LtPathCompounds) {
  // LT path 0 -> 1 -> 2 with b = 0.5: E = 1 + 0.5 + 0.25 = 1.75.
  CsrGraph graph(path_graph(3));
  assign_constant_weights(graph, 0.5f);
  std::vector<vertex_t> seeds{0};
  InfluenceEstimate estimate = estimate_influence(
      graph, seeds, DiffusionModel::LinearThreshold, 40000, 11);
  EXPECT_NEAR(estimate.mean, 1.75, 0.03);
}

TEST(EstimateInfluence, MonotoneInSeedSet) {
  CsrGraph graph(barabasi_albert(400, 3, 8));
  assign_uniform_weights(graph, 12);
  std::vector<vertex_t> small{0};
  std::vector<vertex_t> large{0, 1, 2, 3, 4};
  double sigma_small = estimate_influence(graph, small,
                                          DiffusionModel::IndependentCascade,
                                          2000, 13)
                           .mean;
  double sigma_large = estimate_influence(graph, large,
                                          DiffusionModel::IndependentCascade,
                                          2000, 13)
                           .mean;
  EXPECT_GE(sigma_large, sigma_small);
}

TEST(EstimateInfluence, DeterministicAcrossCalls) {
  // Philox-per-trial makes the estimator exactly reproducible, including
  // under OpenMP scheduling differences.
  CsrGraph graph(erdos_renyi(300, 2500, 14));
  assign_uniform_weights(graph, 15);
  std::vector<vertex_t> seeds{1, 2, 3};
  InfluenceEstimate a = estimate_influence(
      graph, seeds, DiffusionModel::IndependentCascade, 500, 21);
  InfluenceEstimate b = estimate_influence(
      graph, seeds, DiffusionModel::IndependentCascade, 500, 21);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.std_error, b.std_error);
}

TEST(EstimateInfluence, LtDominatesIcWithSharedWeights) {
  // With identical edge weights, LT activation probability given active
  // in-neighbors {u_i} is sum(w_i) while IC's is 1 - prod(1 - w_i), so LT
  // spread weakly dominates IC.  Deterministic instance: 0 and 1 both point
  // to 2 with weight 0.5 — LT activates 2 surely (threshold <= 1.0), IC with
  // probability 0.75.
  EdgeList list;
  list.num_vertices = 3;
  list.edges = {{0, 2, 0.5f}, {1, 2, 0.5f}};
  CsrGraph graph(list);
  std::vector<vertex_t> seeds{0, 1};
  double lt = estimate_influence(graph, seeds, DiffusionModel::LinearThreshold,
                                 40000, 23)
                  .mean;
  double ic = estimate_influence(graph, seeds,
                                 DiffusionModel::IndependentCascade, 40000, 23)
                  .mean;
  EXPECT_NEAR(lt, 3.0, 0.01);
  EXPECT_NEAR(ic, 2.75, 0.02);
}

} // namespace
} // namespace ripples
