// Tests for the durable checkpoint/restart stack (DESIGN.md §9): the
// CRC-guarded snapshot format (every damage mode refused with a *distinct*
// diagnosis), the CheckpointManager's atomic write-rename + retention, and
// the end-to-end guarantee that a run killed at ANY martingale round and
// resumed with checkpoint::Options::resume produces byte-identical seeds,
// theta, and coverage to the uninterrupted run — across driver x ranks x
// RNG mode x selection-exchange, and composed with PR 3's fault healing.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <tuple>
#include <vector>

#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "imm/imm.hpp"
#include "mpsim/fault.hpp"
#include "support/checkpoint.hpp"
#include "support/metrics.hpp"
#include "support/steal_schedule.hpp"

namespace ripples {
namespace {

namespace fs = std::filesystem;
using checkpoint::CheckpointError;
using checkpoint::CheckpointManager;
using checkpoint::LoadError;
using checkpoint::RunFingerprint;
using checkpoint::Snapshot;

RunFingerprint sample_fingerprint() {
  RunFingerprint fp;
  fp.driver = "imm_distributed";
  fp.graph_hash = 0xDEADBEEFCAFEF00Dull;
  fp.graph_vertices = 400;
  fp.graph_edges = 1191;
  fp.seed = 2019;
  fp.epsilon = 0.5;
  fp.l = 1.0;
  fp.k = 8;
  fp.model = 0;
  fp.rng_mode = 1;
  fp.selection_exchange = 0;
  fp.selection_topm = 16;
  fp.world_size = 4;
  return fp;
}

Snapshot sample_snapshot() {
  Snapshot snapshot;
  snapshot.fingerprint = sample_fingerprint();
  snapshot.next_round = 5;
  snapshot.accepted = false;
  snapshot.lower_bound = 123.4375; // exact in binary
  snapshot.last_coverage = 0.15625;
  snapshot.estimation_iterations = 4;
  snapshot.num_samples = 3200;
  snapshot.extend_targets = {400, 800, 1600, 3200};
  snapshot.stream_counts = {800, 800, 800, 800};
  return snapshot;
}

// --- snapshot format ---------------------------------------------------------

TEST(CheckpointFormat, SerializeRoundTripsBitExactly) {
  Snapshot original = sample_snapshot();
  // A value with a non-terminating decimal expansion: only bit-pattern
  // serialization round-trips it, which is what seed equivalence needs.
  original.lower_bound = 1.0 / 3.0;
  std::vector<std::uint8_t> bytes = original.serialize();
  Snapshot restored = Snapshot::deserialize(bytes);
  EXPECT_EQ(restored, original);
}

TEST(CheckpointFormat, RejectsBadMagicDistinctly) {
  std::vector<std::uint8_t> bytes = sample_snapshot().serialize();
  bytes[0] ^= 0xFF;
  try {
    (void)Snapshot::deserialize(bytes);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError &error) {
    EXPECT_EQ(error.kind(), LoadError::BadMagic);
    EXPECT_NE(std::string(error.what()).find("magic"), std::string::npos);
  }
}

TEST(CheckpointFormat, RejectsVersionSkewDistinctly) {
  std::vector<std::uint8_t> bytes = sample_snapshot().serialize();
  bytes[4] = 99; // version field follows the 4-byte magic
  try {
    (void)Snapshot::deserialize(bytes);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError &error) {
    EXPECT_EQ(error.kind(), LoadError::VersionSkew);
    EXPECT_NE(std::string(error.what()).find("99"), std::string::npos);
  }
}

TEST(CheckpointFormat, RejectsTruncationDistinctly) {
  std::vector<std::uint8_t> bytes = sample_snapshot().serialize();
  // Cut mid-payload (torn write) and mid-header (interrupted even earlier).
  for (std::size_t keep : {bytes.size() - 9, std::size_t{10}, std::size_t{0}}) {
    std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + keep);
    try {
      (void)Snapshot::deserialize(cut);
      FAIL() << "expected CheckpointError at " << keep << " bytes";
    } catch (const CheckpointError &error) {
      EXPECT_EQ(error.kind(), LoadError::Truncated) << keep << " bytes";
    }
  }
}

TEST(CheckpointFormat, RejectsPayloadCorruptionDistinctly) {
  std::vector<std::uint8_t> bytes = sample_snapshot().serialize();
  constexpr std::size_t kHeaderBytes = 20;
  // One flipped bit anywhere in the payload must trip the CRC.
  for (std::size_t at : {kHeaderBytes, bytes.size() / 2, bytes.size() - 1}) {
    std::vector<std::uint8_t> damaged = bytes;
    damaged[at] ^= 0x10;
    try {
      (void)Snapshot::deserialize(damaged);
      FAIL() << "expected CheckpointError for flip at " << at;
    } catch (const CheckpointError &error) {
      EXPECT_EQ(error.kind(), LoadError::CrcMismatch) << "flip at " << at;
    }
  }
}

TEST(CheckpointFormat, CrcMatchesTheKnownIeeeVector) {
  // The classic check vector: crc32("123456789") == 0xCBF43926.
  const std::uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(checkpoint::crc32(digits), 0xCBF43926u);
}

TEST(CheckpointFingerprint, MismatchIsRefusedNamingEveryDifferingField) {
  Snapshot snapshot = sample_snapshot();
  RunFingerprint run = sample_fingerprint();
  run.k = 16;
  run.epsilon = 0.3;
  try {
    checkpoint::require_matching_fingerprint(snapshot, run);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError &error) {
    EXPECT_EQ(error.kind(), LoadError::FingerprintMismatch);
    const std::string what = error.what();
    EXPECT_NE(what.find("k ("), std::string::npos) << what;
    EXPECT_NE(what.find("epsilon ("), std::string::npos) << what;
    EXPECT_EQ(what.find("seed ("), std::string::npos) << what;
  }
}

TEST(CheckpointFingerprint, MatchingFingerprintIsAccepted) {
  EXPECT_NO_THROW(checkpoint::require_matching_fingerprint(
      sample_snapshot(), sample_fingerprint()));
}

// --- manager: atomic writes, retention, damage recovery ----------------------

class CheckpointDir : public ::testing::Test {
protected:
  void SetUp() override {
    directory_ = fs::temp_directory_path() /
                 ("ripples_ckpt_test_" + std::to_string(::getpid()) + "_" +
                  ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(directory_);
    fs::create_directories(directory_);
  }
  void TearDown() override { fs::remove_all(directory_); }

  [[nodiscard]] std::string dir() const { return directory_.string(); }

  std::filesystem::path directory_;
};

TEST_F(CheckpointDir, WritesPrunesAndNeverLeavesTempFiles) {
  CheckpointManager manager(dir(), /*every=*/1, /*keep_last=*/3);
  Snapshot snapshot = sample_snapshot();
  for (std::uint32_t round = 1; round <= 7; ++round) {
    snapshot.next_round = round;
    EXPECT_TRUE(manager.observe(snapshot));
  }
  std::vector<std::string> files = manager.snapshot_files();
  ASSERT_EQ(files.size(), 3u);
  // Newest three survive, and each loads back to the round it captured.
  std::uint32_t expected_round = 5;
  for (const std::string &file : files)
    EXPECT_EQ(CheckpointManager::load_file(file).next_round, expected_round++);
  for (const auto &entry : fs::directory_iterator(directory_))
    EXPECT_EQ(entry.path().extension(), ".rpck") << entry.path();
}

TEST_F(CheckpointDir, EveryThinsBoundariesButForceAlwaysWrites) {
  CheckpointManager manager(dir(), /*every=*/3, /*keep_last=*/10);
  Snapshot snapshot = sample_snapshot();
  int written = 0;
  for (std::uint32_t round = 1; round <= 6; ++round) {
    snapshot.next_round = round;
    written += manager.observe(snapshot) ? 1 : 0;
  }
  EXPECT_EQ(written, 2); // boundaries 3 and 6
  snapshot.accepted = true;
  EXPECT_TRUE(manager.observe(snapshot, /*force=*/true));
  EXPECT_EQ(manager.snapshot_files().size(), 3u);
}

TEST_F(CheckpointDir, FlushPendingWritesTheThinnedBoundary) {
  CheckpointManager manager(dir(), /*every=*/100, /*keep_last=*/10);
  Snapshot snapshot = sample_snapshot();
  EXPECT_FALSE(manager.observe(snapshot)); // thinned away
  ASSERT_TRUE(manager.flush_pending());    // graceful-shutdown path
  ASSERT_EQ(manager.snapshot_files().size(), 1u);
  EXPECT_EQ(CheckpointManager::load_file(manager.snapshot_files()[0]),
            snapshot);
  // A second flush with nothing new pending is a clean no-op.
  EXPECT_TRUE(manager.flush_pending());
  EXPECT_EQ(manager.snapshot_files().size(), 1u);
}

TEST_F(CheckpointDir, LoadLatestFallsBackPastADamagedNewestSnapshot) {
  CheckpointManager manager(dir(), 1, 10);
  Snapshot older = sample_snapshot();
  older.next_round = 3;
  manager.write_now(older);
  Snapshot newer = sample_snapshot();
  newer.next_round = 4;
  manager.write_now(newer);

  // Corrupt the newest file's payload (simulated bit rot).
  std::vector<std::string> files = manager.snapshot_files();
  ASSERT_EQ(files.size(), 2u);
  {
    std::fstream damage(files.back(),
                        std::ios::binary | std::ios::in | std::ios::out);
    damage.seekp(-1, std::ios::end);
    damage.put('\xA5');
  }

  std::string diagnosis;
  std::optional<Snapshot> loaded = manager.load_latest(&diagnosis);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->next_round, 3u);
  EXPECT_NE(diagnosis.find("crc-mismatch"), std::string::npos) << diagnosis;
}

TEST_F(CheckpointDir, LoadLatestOnAnEmptyDirectoryIsNotAnError) {
  CheckpointManager manager(dir(), 1, 3);
  std::string diagnosis;
  EXPECT_FALSE(manager.load_latest(&diagnosis).has_value());
  EXPECT_TRUE(diagnosis.empty());
}

TEST_F(CheckpointDir, SequenceContinuesPastTheResumedRunsFiles) {
  {
    CheckpointManager first(dir(), 1, 10);
    first.write_now(sample_snapshot());
    first.write_now(sample_snapshot());
  }
  CheckpointManager second(dir(), 1, 10);
  second.write_now(sample_snapshot());
  std::vector<std::string> files = second.snapshot_files();
  ASSERT_EQ(files.size(), 3u);
  // New snapshots sort strictly after the run they resumed from.
  EXPECT_NE(files[2].find("ckpt-00000002"), std::string::npos) << files[2];
}

TEST_F(CheckpointDir, ForeignFilesAreIgnoredNotDeleted) {
  { std::ofstream(dir() + "/notes.txt") << "operator scribbles"; }
  CheckpointManager manager(dir(), 1, 1);
  manager.write_now(sample_snapshot());
  manager.write_now(sample_snapshot());
  EXPECT_EQ(manager.snapshot_files().size(), 1u);
  EXPECT_TRUE(fs::exists(dir() + "/notes.txt"));
}

TEST(CheckpointEnv, OptionsComeFromTheEnvironment) {
  ::setenv("RIPPLES_CHECKPOINT_DIR", "/tmp/ripples-env-ckpt", 1);
  ::setenv("RIPPLES_CHECKPOINT_EVERY", "4", 1);
  ::setenv("RIPPLES_CHECKPOINT_RESUME", "1", 1);
  ::setenv("RIPPLES_CHECKPOINT_KEEP", "7", 1);
  checkpoint::Options options = checkpoint::options_from_env();
  ::unsetenv("RIPPLES_CHECKPOINT_DIR");
  ::unsetenv("RIPPLES_CHECKPOINT_EVERY");
  ::unsetenv("RIPPLES_CHECKPOINT_RESUME");
  ::unsetenv("RIPPLES_CHECKPOINT_KEEP");
  EXPECT_EQ(options.dir, "/tmp/ripples-env-ckpt");
  EXPECT_EQ(options.every, 4u);
  EXPECT_TRUE(options.resume);
  EXPECT_EQ(options.keep_last, 7u);
  checkpoint::Options defaults = checkpoint::options_from_env();
  EXPECT_TRUE(defaults.dir.empty());
  EXPECT_FALSE(defaults.resume);
}

// --- kill/resume equivalence -------------------------------------------------

CsrGraph checkpoint_graph() {
  CsrGraph graph(barabasi_albert(300, 3, 7));
  assign_uniform_weights(graph, 13);
  return graph;
}

using ResumeCell =
    std::tuple<const char *, int, RngMode, SelectionExchange, SamplerEngine>;

ImmOptions cell_options(const ResumeCell &cell) {
  ImmOptions options;
  options.epsilon = 0.5;
  options.k = 6;
  options.model = DiffusionModel::IndependentCascade;
  options.seed = 2019;
  options.num_ranks = std::get<1>(cell);
  options.rng_mode = std::get<2>(cell);
  options.selection_exchange = std::get<3>(cell);
  // The engine axis must be outcome-invisible: a run checkpointed under
  // one engine and resumed under the same one lands on the same results
  // the scalar engine produces (the fused engine's byte-identity promise
  // composes with mid-run resume).
  options.sampler = std::get<4>(cell);
  options.checkpoint = {}; // isolate from any ambient RIPPLES_CHECKPOINT_*
  return options;
}

ImmResult run_cell(const ResumeCell &cell, const CsrGraph &graph,
                   const ImmOptions &options) {
  return std::string(std::get<0>(cell)) == "dist"
             ? imm_distributed(graph, options)
             : imm_distributed_partitioned(graph, options);
}

void expect_identical_outcome(const ImmResult &resumed, const ImmResult &clean,
                              const std::string &context) {
  EXPECT_EQ(resumed.seeds, clean.seeds) << context;
  EXPECT_EQ(resumed.theta, clean.theta) << context;
  EXPECT_EQ(resumed.num_samples, clean.num_samples) << context;
  EXPECT_EQ(resumed.coverage_fraction, clean.coverage_fraction) << context;
}

class CheckpointResume : public ::testing::TestWithParam<ResumeCell> {
protected:
  void SetUp() override {
    directory_ = fs::temp_directory_path() /
                 ("ripples_ckpt_resume_" + std::to_string(::getpid()) + "_" +
                  ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(directory_);
  }
  void TearDown() override { fs::remove_all(directory_); }

  std::filesystem::path directory_;
};

TEST_P(CheckpointResume, ResumeFromAnyRoundReproducesTheUninterruptedRun) {
  if (std::string(std::get<0>(GetParam())) == "dist-part" &&
      std::get<2>(GetParam()) == RngMode::LeapfrogLcg)
    GTEST_SKIP() << "the partitioned driver defines randomness per "
                    "(sample, vertex); leap-frog streams do not apply";
  const CsrGraph graph = checkpoint_graph();
  ImmOptions options = cell_options(GetParam());
  const ImmResult clean = run_cell(GetParam(), graph, options);
  ASSERT_EQ(clean.seeds.size(), options.k);
  EXPECT_EQ(clean.resumed_from, -1);

  // Checkpointed run, retaining every round boundary.
  options.checkpoint.dir = (directory_ / "full").string();
  options.checkpoint.every = 1;
  options.checkpoint.keep_last = 100;
  const ImmResult checkpointed = run_cell(GetParam(), graph, options);
  expect_identical_outcome(checkpointed, clean, "checkpointing enabled");

  CheckpointManager manager(options.checkpoint.dir, 1, 100);
  std::vector<std::string> files = manager.snapshot_files();
  ASSERT_GE(files.size(), 2u);

  // O(ranks·k + theta-state) footprint: even one u64 per sample would need
  // 8·|R| > 4 KiB here, and real RRR sets are larger still; the actual
  // snapshot is a few hundred bytes of coordinates regardless of |R|.
  ASSERT_GT(clean.num_samples, 500u);
  for (const std::string &file : files)
    EXPECT_LT(fs::file_size(file), 1024u) << file;

  // A process killed at ANY round boundary left exactly one usable newest
  // snapshot; resume from each of them must land on the identical outcome.
  for (const std::string &file : files) {
    const Snapshot snapshot = CheckpointManager::load_file(file);
    ImmOptions resume_options = cell_options(GetParam());
    // Keyed by file name, not round: the acceptance snapshot and the
    // post-final-extend snapshot legitimately share a next_round.
    resume_options.checkpoint.dir =
        (directory_ / fs::path(file).stem()).string();
    resume_options.checkpoint.resume = true;
    fs::create_directories(resume_options.checkpoint.dir);
    fs::copy_file(file, fs::path(resume_options.checkpoint.dir) /
                            fs::path(file).filename());
    const ImmResult resumed = run_cell(GetParam(), graph, resume_options);
    expect_identical_outcome(resumed, clean,
                             "resume from round " +
                                 std::to_string(snapshot.next_round));
    EXPECT_EQ(resumed.resumed_from,
              static_cast<std::int64_t>(snapshot.next_round));
    EXPECT_EQ(resumed.report.resumed_from, resumed.resumed_from);
  }
}

std::string resume_cell_name(
    const ::testing::TestParamInfo<ResumeCell> &info) {
  const auto &[driver, ranks, rng, exchange, engine] = info.param;
  std::string name = driver;
  name += "_p" + std::to_string(ranks);
  name += rng == RngMode::CounterSequence ? "_counter" : "_leapfrog";
  name += exchange == SelectionExchange::Sparse ? "_sparse" : "_dense";
  name += engine == SamplerEngine::Fused ? "_fused" : "";
  // "dist-part" contains an invalid character for a test name.
  for (char &c : name)
    if (c == '-') c = '_';
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    DriverRanksRngExchange, CheckpointResume,
    ::testing::Combine(::testing::Values("dist", "dist-part"),
                       ::testing::Values(1, 2, 4, 8),
                       ::testing::Values(RngMode::CounterSequence,
                                         RngMode::LeapfrogLcg),
                       ::testing::Values(SelectionExchange::Dense,
                                         SelectionExchange::Sparse),
                       ::testing::Values(SamplerEngine::Sequential,
                                         SamplerEngine::Fused)),
    resume_cell_name);

// --- abnormal death, refusal, and composition with fault healing -------------

class CheckpointKill : public CheckpointDir {};

TEST_F(CheckpointKill, SnapshotsSurviveAnAbruptDeathAndResumeToIdenticalSeeds) {
  // The in-process analogue of SIGKILL: an injected crash without recovery
  // unwinds the whole run mid-martingale.  Whatever snapshots were written
  // before the death must carry a --resume run to the clean outcome.
  const CsrGraph graph = checkpoint_graph();
  ResumeCell cell{"dist", 3, RngMode::CounterSequence,
                  SelectionExchange::Dense, SamplerEngine::Fused};
  ImmOptions options = cell_options(cell);
  const ImmResult clean = imm_distributed(graph, options);

  options.checkpoint.dir = dir();
  options.fault_plan = "rank=1,site=9"; // crash, no recovery: run dies
  EXPECT_THROW((void)imm_distributed(graph, options), mpsim::InjectedFault);
  ASSERT_FALSE(CheckpointManager(dir(), 1, 3).snapshot_files().empty())
      << "the killed run left no snapshot to resume from";

  options.fault_plan.clear();
  options.checkpoint.resume = true;
  const ImmResult resumed = imm_distributed(graph, options);
  expect_identical_outcome(resumed, clean, "resume after injected death");
  EXPECT_GE(resumed.resumed_from, 1);
}

TEST_F(CheckpointKill, StealMidRoundKillResumesToIdenticalSeeds) {
  // DESIGN.md §13 composition: kill a run while the forced-steal schedule
  // has chunks migrating between sampler threads mid-round, then resume.
  // Intra-rank stealing keeps the fault-site numbering identical to the
  // legacy schedule (inter acquires would consume timing-dependent sites),
  // so site 9 deterministically lands past the first round boundary.  The
  // checkpoint fingerprint deliberately excludes the steal knobs (they are
  // placement-only), so the snapshot must carry BOTH a stealing-on resume
  // and a stealing-off resume to the clean no-steal outcome.
  const CsrGraph graph = checkpoint_graph();
  ResumeCell cell{"dist", 3, RngMode::CounterSequence,
                  SelectionExchange::Dense, SamplerEngine::Fused};
  ImmOptions options = cell_options(cell);
  const ImmResult clean = imm_distributed(graph, options);

  steal_schedule::ScopedPlan forced(
      {steal_schedule::Mode::StealEverything, 0});
  options.steal = StealMode::Intra;
  options.num_threads = 3;
  options.checkpoint.dir = dir();
  options.fault_plan = "rank=1,site=9"; // crash, no recovery: run dies
  EXPECT_THROW((void)imm_distributed(graph, options), mpsim::InjectedFault);
  ASSERT_FALSE(CheckpointManager(dir(), 1, 3).snapshot_files().empty())
      << "the killed stealing run left no snapshot to resume from";

  options.fault_plan.clear();
  options.checkpoint.resume = true;
  const ImmResult resumed_on = imm_distributed(graph, options);
  expect_identical_outcome(resumed_on, clean, "resume with stealing on");
  EXPECT_GE(resumed_on.resumed_from, 1);

  options.steal = StealMode::Off;
  options.num_threads = 1;
  const ImmResult resumed_off = imm_distributed(graph, options);
  expect_identical_outcome(resumed_off, clean,
                           "cross-mode resume with stealing off");
}

TEST_F(CheckpointKill, ResumeIntoAnEmptyDirectoryStartsFresh) {
  // Killed before the first boundary: nothing on disk, --resume must fall
  // back to a fresh run, not fail.
  const CsrGraph graph = checkpoint_graph();
  ResumeCell cell{"dist", 2, RngMode::CounterSequence,
                  SelectionExchange::Dense, SamplerEngine::Sequential};
  ImmOptions options = cell_options(cell);
  const ImmResult clean = imm_distributed(graph, options);
  options.checkpoint.dir = dir();
  options.checkpoint.resume = true;
  const ImmResult result = imm_distributed(graph, options);
  expect_identical_outcome(result, clean, "resume with empty directory");
  EXPECT_EQ(result.resumed_from, -1);
}

TEST_F(CheckpointKill, ResumeWithoutADirectoryIsRefused) {
  const CsrGraph graph = checkpoint_graph();
  ImmOptions options = cell_options({"dist", 2, RngMode::CounterSequence,
                                     SelectionExchange::Dense,
                                     SamplerEngine::Sequential});
  options.checkpoint.resume = true;
  EXPECT_THROW((void)imm_distributed(graph, options), std::runtime_error);
}

TEST_F(CheckpointKill, MismatchedResumeIsRefusedNotSilentlyWrong) {
  const CsrGraph graph = checkpoint_graph();
  ResumeCell cell{"dist", 2, RngMode::CounterSequence,
                  SelectionExchange::Dense, SamplerEngine::Sequential};
  ImmOptions options = cell_options(cell);
  options.checkpoint.dir = dir();
  (void)imm_distributed(graph, options);
  options.checkpoint.resume = true;

  auto expect_refused = [&](ImmOptions changed, const CsrGraph &g,
                            const char *what_changed) {
    try {
      (void)imm_distributed(g, changed);
      FAIL() << "resume accepted despite changed " << what_changed;
    } catch (const CheckpointError &error) {
      EXPECT_EQ(error.kind(), LoadError::FingerprintMismatch)
          << what_changed;
      EXPECT_NE(std::string(error.what()).find(what_changed),
                std::string::npos)
          << error.what();
    }
  };

  ImmOptions changed_k = options;
  changed_k.k = options.k + 1;
  expect_refused(changed_k, graph, "k");

  ImmOptions changed_eps = options;
  changed_eps.epsilon = 0.4;
  expect_refused(changed_eps, graph, "epsilon");

  ImmOptions changed_rng = options;
  changed_rng.rng_mode = RngMode::LeapfrogLcg;
  expect_refused(changed_rng, graph, "rng_mode");

  ImmOptions changed_ranks = options;
  changed_ranks.num_ranks = 4;
  expect_refused(changed_ranks, graph, "world_size");

  CsrGraph other_graph(barabasi_albert(300, 3, 8));
  assign_uniform_weights(other_graph, 13);
  expect_refused(options, other_graph, "graph_hash");

  // The partitioned driver must refuse a distributed-driver snapshot.
  try {
    (void)imm_distributed_partitioned(graph, options);
    FAIL() << "resume accepted despite changed driver";
  } catch (const CheckpointError &error) {
    EXPECT_EQ(error.kind(), LoadError::FingerprintMismatch);
    EXPECT_NE(std::string(error.what()).find("driver"), std::string::npos);
  }
}

TEST_F(CheckpointKill, CheckpointingComposesWithFaultHealing) {
  // PR 3 axis: a checkpointed run that also heals an injected crash must
  // still produce the failure-free outcome, and its snapshots must still
  // carry a resume to that same outcome (the healed run keeps exactly one
  // writer: the current dense rank 0).
  const CsrGraph graph = checkpoint_graph();
  ResumeCell cell{"dist", 3, RngMode::LeapfrogLcg,
                  SelectionExchange::Sparse, SamplerEngine::Sequential};
  ImmOptions options = cell_options(cell);
  const ImmResult clean = imm_distributed(graph, options);

  options.checkpoint.dir = dir();
  options.recover_failures = true;
  options.fault_plan = "rank=2,site=6";
  const ImmResult healed = imm_distributed(graph, options);
  expect_identical_outcome(healed, clean, "healed + checkpointed");

  ImmOptions resume_options = cell_options(cell);
  resume_options.checkpoint.dir = dir();
  resume_options.checkpoint.resume = true;
  const ImmResult resumed = imm_distributed(graph, resume_options);
  expect_identical_outcome(resumed, clean, "resume from a healed run");
}

TEST_F(CheckpointKill, WritesAndBytesAreCounted) {
  const CsrGraph graph = checkpoint_graph();
  ImmOptions options = cell_options({"dist", 2, RngMode::CounterSequence,
                                     SelectionExchange::Dense,
                                     SamplerEngine::Sequential});
  options.checkpoint.dir = dir();
  metrics::set_enabled(true);
  metrics::Registry &registry = metrics::Registry::instance();
  const std::uint64_t writes0 =
      registry.counter("imm.checkpoint.writes").value();
  const std::uint64_t bytes0 = registry.counter("imm.checkpoint.bytes").value();
  (void)imm_distributed(graph, options);
  metrics::set_enabled(false);
  EXPECT_GT(registry.counter("imm.checkpoint.writes").value(), writes0);
  EXPECT_GT(registry.counter("imm.checkpoint.bytes").value(), bytes0);
}

} // namespace
} // namespace ripples
