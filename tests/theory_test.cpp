// Property tests for the theoretical identities RIS/IMM stand on:
//
//  1. Pointwise duality (Borgs et al., Observation 3.2 of the paper's
//     Def. 2-3): P[u in RRR(v)] equals P[v gets activated | seeds = {u}].
//  2. The coverage lemma: for any fixed seed set S,
//     P[S intersects a random RRR set] = E[|I(S)|] / n — which is exactly
//     why n * F_R(S) is the unbiased OPT estimator the martingale uses.
//  3. The aggregate corollary: E[|RRR set|] = average single-vertex
//     influence over all vertices.
//
// All three are checked for both diffusion models with Monte-Carlo
// tolerances on small random graphs.
#include <gtest/gtest.h>

#include <cmath>

#include "diffusion/simulate.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "imm/rrr.hpp"
#include "rng/xoshiro.hpp"

namespace ripples {
namespace {

CsrGraph theory_graph(DiffusionModel model, std::uint64_t seed) {
  CsrGraph graph(erdos_renyi(40, 200, seed));
  assign_uniform_weights(graph, seed + 1, 0.0f, 0.5f);
  if (model == DiffusionModel::LinearThreshold)
    renormalize_linear_threshold(graph);
  return graph;
}

/// Frequency of u appearing in RRR sets rooted at v.
double reverse_membership_probability(const CsrGraph &graph, vertex_t u,
                                      vertex_t v, DiffusionModel model,
                                      int trials, std::uint64_t seed) {
  RRRGenerator generator(graph);
  RRRSet set;
  Xoshiro256 rng(seed);
  int hits = 0;
  for (int t = 0; t < trials; ++t) {
    generator.generate(v, model, rng, set);
    hits += std::binary_search(set.begin(), set.end(), u) ? 1 : 0;
  }
  return static_cast<double>(hits) / trials;
}

} // namespace

class DualityTest
    : public ::testing::TestWithParam<std::tuple<DiffusionModel, std::uint64_t>> {
};

TEST_P(DualityTest, ReverseMembershipMatchesForwardActivation) {
  auto [model, seed] = GetParam();
  CsrGraph graph = theory_graph(model, seed);

  // Independent forward implementation: probabilistic BFS over out-edges,
  // tracking whether the probe vertex activates.
  auto forward_probability = [&](vertex_t u, vertex_t v, int trials) {
    Xoshiro256 rng(seed + 999);
    BitVector active(graph.num_vertices());
    std::vector<vertex_t> frontier, next, touched;
    int hits = 0;
    for (int t = 0; t < trials; ++t) {
      frontier.assign(1, u);
      touched.assign(1, u);
      active.set(u);
      bool v_active = (u == v);
      while (!frontier.empty() && !v_active) {
        next.clear();
        for (vertex_t w : frontier) {
          if (model == DiffusionModel::IndependentCascade) {
            for (const Adjacency &out : graph.out_neighbors(w)) {
              if (active.test(out.vertex)) continue;
              if (!bernoulli(rng, out.weight)) continue;
              active.set(out.vertex);
              touched.push_back(out.vertex);
              next.push_back(out.vertex);
              if (out.vertex == v) v_active = true;
            }
          } else {
            // LT live-edge forward view: edge (w -> x) is live iff x's
            // single live in-edge selection picked w.  Simulating that
            // faithfully forward requires per-target selection, so use the
            // threshold formulation once per trial instead.
            break;
          }
        }
        frontier.swap(next);
      }
      if (model == DiffusionModel::LinearThreshold) {
        // Threshold formulation (independent implementation from the
        // library's): accumulate in-weights against lazy thresholds.
        for (vertex_t w : touched) active.clear(w);
        touched.clear();
        std::vector<float> acc(graph.num_vertices(), 0.0f);
        std::vector<float> threshold(graph.num_vertices(), -1.0f);
        frontier.assign(1, u);
        active.set(u);
        touched.assign(1, u);
        v_active = (u == v);
        while (!frontier.empty()) {
          next.clear();
          for (vertex_t w : frontier) {
            for (const Adjacency &out : graph.out_neighbors(w)) {
              vertex_t x = out.vertex;
              if (active.test(x)) continue;
              if (threshold[x] < 0.0f)
                threshold[x] = static_cast<float>(uniform_unit(rng));
              acc[x] += out.weight;
              if (acc[x] >= threshold[x]) {
                active.set(x);
                touched.push_back(x);
                next.push_back(x);
                if (x == v) v_active = true;
              }
            }
          }
          frontier.swap(next);
        }
      }
      hits += v_active ? 1 : 0;
      for (vertex_t w : touched) active.clear(w);
    }
    return static_cast<double>(hits) / trials;
  };

  // Probe a handful of (u, v) pairs including adjacent and distant ones.
  const int trials = 20000;
  Xoshiro256 pick(seed + 5);
  for (int probe = 0; probe < 4; ++probe) {
    auto u = static_cast<vertex_t>(uniform_index(pick, graph.num_vertices()));
    auto v = static_cast<vertex_t>(uniform_index(pick, graph.num_vertices()));
    double reverse =
        reverse_membership_probability(graph, u, v, model, trials, seed + 7);
    double forward = forward_probability(u, v, trials);
    EXPECT_NEAR(reverse, forward, 0.015)
        << "u=" << u << " v=" << v << " model=" << to_string(model);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndSeeds, DualityTest,
    ::testing::Combine(::testing::Values(DiffusionModel::IndependentCascade,
                                         DiffusionModel::LinearThreshold),
                       ::testing::Values(11, 22)));

class CoverageLemmaTest : public ::testing::TestWithParam<DiffusionModel> {};

TEST_P(CoverageLemmaTest, HitProbabilityEqualsInfluenceOverN) {
  // For fixed S: P[S hits a random RRR set] = sigma(S) / n — the unbiased
  // estimator at the heart of the martingale stopping rule.
  DiffusionModel model = GetParam();
  CsrGraph graph = theory_graph(model, 33);
  std::vector<vertex_t> seed_set{3, 17, 29};

  const int trials = 40000;
  RRRGenerator generator(graph);
  RRRSet set;
  Xoshiro256 rng(44);
  int hits = 0;
  for (int t = 0; t < trials; ++t) {
    generator.generate_random_root(model, rng, set);
    for (vertex_t s : seed_set)
      if (std::binary_search(set.begin(), set.end(), s)) {
        ++hits;
        break;
      }
  }
  double hit_fraction = static_cast<double>(hits) / trials;

  double sigma =
      estimate_influence(graph, seed_set, model, 40000, 55).mean;
  EXPECT_NEAR(hit_fraction, sigma / graph.num_vertices(), 0.01)
      << to_string(model);
}

TEST_P(CoverageLemmaTest, AverageRrrSizeEqualsAverageInfluence) {
  // E[|RRR|] = (1/n) * sum_u sigma({u}).
  DiffusionModel model = GetParam();
  CsrGraph graph = theory_graph(model, 66);

  const int trials = 20000;
  RRRGenerator generator(graph);
  RRRSet set;
  Xoshiro256 rng(77);
  double total_size = 0;
  for (int t = 0; t < trials; ++t) {
    generator.generate_random_root(model, rng, set);
    total_size += static_cast<double>(set.size());
  }
  double mean_rrr = total_size / trials;

  double influence_sum = 0;
  for (vertex_t u = 0; u < graph.num_vertices(); ++u) {
    std::vector<vertex_t> single{u};
    influence_sum += estimate_influence(graph, single, model, 2000, 88).mean;
  }
  double mean_influence = influence_sum / graph.num_vertices();
  EXPECT_NEAR(mean_rrr, mean_influence, 0.05 * mean_influence)
      << to_string(model);
}

INSTANTIATE_TEST_SUITE_P(Models, CoverageLemmaTest,
                         ::testing::Values(DiffusionModel::IndependentCascade,
                                           DiffusionModel::LinearThreshold));

} // namespace ripples
