// Tests for SelectSeeds: greedy max-coverage correctness against brute
// force, equivalence of the three implementations (sequential, Algorithm 4
// multithreaded, hypergraph baseline) for all thread counts, and the
// counter/retirement building blocks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "imm/select.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"

namespace ripples {
namespace {

std::vector<RRRSet> random_samples(vertex_t num_vertices, std::size_t count,
                                   std::size_t max_size, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<RRRSet> samples(count);
  for (RRRSet &sample : samples) {
    std::size_t size = 1 + uniform_index(rng, max_size);
    while (sample.size() < size) {
      auto v = static_cast<vertex_t>(uniform_index(rng, num_vertices));
      if (std::find(sample.begin(), sample.end(), v) == sample.end())
        sample.push_back(v);
    }
    std::sort(sample.begin(), sample.end());
  }
  return samples;
}

/// Exhaustive max-coverage for tiny instances (the correctness oracle).
std::uint64_t best_coverage_brute_force(vertex_t num_vertices, std::uint32_t k,
                                        std::span<const RRRSet> samples) {
  std::vector<vertex_t> combo(k);
  std::uint64_t best = 0;
  // Enumerate all k-subsets of [0, n).
  std::vector<std::uint32_t> index(k);
  for (std::uint32_t i = 0; i < k; ++i) index[i] = i;
  for (;;) {
    std::uint64_t covered = 0;
    for (const RRRSet &sample : samples) {
      bool hit = false;
      for (std::uint32_t i : index)
        if (std::binary_search(sample.begin(), sample.end(), vertex_t{i})) {
          hit = true;
          break;
        }
      covered += hit ? 1 : 0;
    }
    best = std::max(best, covered);
    // Next combination.
    int pos = static_cast<int>(k) - 1;
    while (pos >= 0 &&
           index[static_cast<std::uint32_t>(pos)] ==
               num_vertices - k + static_cast<std::uint32_t>(pos))
      --pos;
    if (pos < 0) break;
    ++index[static_cast<std::uint32_t>(pos)];
    for (std::uint32_t i = static_cast<std::uint32_t>(pos) + 1; i < k; ++i)
      index[i] = index[i - 1] + 1;
  }
  (void)combo;
  return best;
}

TEST(SelectSeeds, PicksTheObviousCoveringVertex) {
  // Vertex 7 appears in every sample; it must be picked first.
  std::vector<RRRSet> samples = {{1, 7}, {2, 7}, {3, 7}, {7, 9}};
  SelectionResult result = select_seeds(10, 1, samples);
  ASSERT_EQ(result.seeds.size(), 1u);
  EXPECT_EQ(result.seeds[0], 7u);
  EXPECT_EQ(result.covered_samples, 4u);
  EXPECT_EQ(result.total_samples, 4u);
  EXPECT_DOUBLE_EQ(result.coverage_fraction(), 1.0);
}

TEST(SelectSeeds, RetiresCoveredSamplesBeforeSecondPick) {
  // 7 covers four samples and is picked first.  After retiring them, vertex
  // 1's counter drops to zero, so the best remaining vertex is 4 (covers the
  // two leftover samples) — picking by stale counters would choose 1.
  std::vector<RRRSet> samples = {{1, 7}, {1, 7}, {1, 7}, {7, 9}, {4, 5}, {4, 6}};
  SelectionResult result = select_seeds(10, 2, samples);
  ASSERT_EQ(result.seeds.size(), 2u);
  EXPECT_EQ(result.seeds[0], 7u);
  EXPECT_EQ(result.seeds[1], 4u);
  EXPECT_EQ(result.covered_samples, 6u);
}

TEST(SelectSeeds, TieBreaksToSmallestId) {
  std::vector<RRRSet> samples = {{2, 5}, {2, 5}};
  SelectionResult result = select_seeds(10, 1, samples);
  EXPECT_EQ(result.seeds[0], 2u);
}

TEST(SelectSeeds, HandlesMoreSeedsThanCoverage) {
  std::vector<RRRSet> samples = {{3}};
  SelectionResult result = select_seeds(5, 3, samples);
  ASSERT_EQ(result.seeds.size(), 3u);
  EXPECT_EQ(result.seeds[0], 3u);
  // Remaining picks fall back to smallest unselected ids with zero counters.
  EXPECT_EQ(result.seeds[1], 0u);
  EXPECT_EQ(result.seeds[2], 1u);
  EXPECT_EQ(result.covered_samples, 1u);
}

TEST(SelectSeeds, EmptySampleSetStillReturnsKSeeds) {
  std::vector<RRRSet> samples;
  SelectionResult result = select_seeds(6, 2, samples);
  ASSERT_EQ(result.seeds.size(), 2u);
  EXPECT_EQ(result.covered_samples, 0u);
  EXPECT_DOUBLE_EQ(result.coverage_fraction(), 0.0);
}

TEST(SelectSeeds, GreedyIsWithinTheoreticalFactorOfOptimal) {
  // Greedy max-coverage guarantees (1 - 1/e) of optimal; verify on random
  // instances small enough for brute force.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    std::vector<RRRSet> samples = random_samples(10, 40, 3, seed);
    SelectionResult greedy = select_seeds(10, 3, samples);
    std::uint64_t optimal = best_coverage_brute_force(10, 3, samples);
    EXPECT_GE(static_cast<double>(greedy.covered_samples),
              (1.0 - 1.0 / std::exp(1.0)) * static_cast<double>(optimal))
        << "seed " << seed;
    EXPECT_LE(greedy.covered_samples, optimal);
  }
}

// --- multithreaded (Algorithm 4) equivalence --------------------------------------

class SelectEquivalence
    : public ::testing::TestWithParam<std::tuple<unsigned, std::uint64_t>> {};

TEST_P(SelectEquivalence, MultithreadedMatchesSequentialExactly) {
  auto [threads, seed] = GetParam();
  const vertex_t n = 200;
  std::vector<RRRSet> samples = random_samples(n, 500, 12, seed);
  SelectionResult sequential = select_seeds(n, 10, samples);
  SelectionResult parallel = select_seeds_multithreaded(n, 10, samples, threads);
  EXPECT_EQ(sequential.seeds, parallel.seeds);
  EXPECT_EQ(sequential.covered_samples, parallel.covered_samples);
  EXPECT_EQ(sequential.total_samples, parallel.total_samples);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndSeeds, SelectEquivalence,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 8u),
                       ::testing::Values(11, 22, 33)));

TEST(SelectSeedsMultithreaded, MoreThreadsThanVerticesIsSafe) {
  std::vector<RRRSet> samples = {{0, 2}, {1, 2}, {2, 3}};
  SelectionResult sequential = select_seeds(4, 2, samples);
  SelectionResult parallel = select_seeds_multithreaded(4, 2, samples, 8);
  EXPECT_EQ(sequential.seeds, parallel.seeds);
}

// --- flat (arena) storage equivalence ----------------------------------------------

class FlatEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlatEquivalence, FlatSelectionMatchesCompactExactly) {
  const vertex_t n = 160;
  std::vector<RRRSet> samples = random_samples(n, 400, 9, GetParam());
  FlatRRRCollection flat;
  for (const RRRSet &sample : samples) flat.append(sample);
  SelectionResult compact = select_seeds(n, 9, samples);
  SelectionResult arena = select_seeds_flat(n, 9, flat);
  EXPECT_EQ(compact.seeds, arena.seeds);
  EXPECT_EQ(compact.covered_samples, arena.covered_samples);
  EXPECT_EQ(compact.total_samples, arena.total_samples);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatEquivalence,
                         ::testing::Values(61, 62, 63));

// --- lazy-greedy (CELF-style) equivalence ------------------------------------------

class LazyEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LazyEquivalence, LazySelectionMatchesEagerExactly) {
  const vertex_t n = 180;
  std::vector<RRRSet> samples = random_samples(n, 450, 10, GetParam());
  SelectionResult eager = select_seeds(n, 12, samples);
  SelectionResult lazy = select_seeds_lazy(n, 12, samples);
  EXPECT_EQ(eager.seeds, lazy.seeds);
  EXPECT_EQ(eager.covered_samples, lazy.covered_samples);
  EXPECT_EQ(eager.total_samples, lazy.total_samples);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LazyEquivalence,
                         ::testing::Values(101, 202, 303, 404, 505));

TEST(SelectSeedsLazy, HandlesZeroCoverageTail) {
  std::vector<RRRSet> samples = {{3}};
  SelectionResult eager = select_seeds(6, 4, samples);
  SelectionResult lazy = select_seeds_lazy(6, 4, samples);
  EXPECT_EQ(eager.seeds, lazy.seeds);
}

TEST(SelectSeedsLazy, EmptySampleSet) {
  std::vector<RRRSet> samples;
  SelectionResult lazy = select_seeds_lazy(5, 2, samples);
  ASSERT_EQ(lazy.seeds.size(), 2u);
  EXPECT_EQ(lazy.seeds[0], 0u);
  EXPECT_EQ(lazy.seeds[1], 1u);
}

// --- hypergraph baseline equivalence ----------------------------------------------

class HypergraphEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HypergraphEquivalence, BaselineSelectionMatchesSequential) {
  const vertex_t n = 150;
  std::vector<RRRSet> samples = random_samples(n, 400, 10, GetParam());
  HypergraphCollection hypergraph(n);
  for (const RRRSet &sample : samples) {
    RRRSet copy = sample;
    hypergraph.add(std::move(copy));
  }
  SelectionResult compact = select_seeds(n, 8, samples);
  SelectionResult dual = select_seeds_hypergraph(n, 8, hypergraph);
  EXPECT_EQ(compact.seeds, dual.seeds);
  EXPECT_EQ(compact.covered_samples, dual.covered_samples);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HypergraphEquivalence,
                         ::testing::Values(5, 6, 7, 8));

// --- cross-variant determinism ------------------------------------------------------

/// Runs every selection variant on the same samples and demands bit-identical
/// seed sequences: one greedy max-coverage definition, five implementations.
void expect_all_variants_agree(vertex_t n, std::uint32_t k,
                               const std::vector<RRRSet> &samples) {
  SelectionResult reference = select_seeds(n, k, samples);

  for (unsigned threads : {1u, 2u, 7u}) {
    SelectionResult mt = select_seeds_multithreaded(n, k, samples, threads);
    EXPECT_EQ(reference.seeds, mt.seeds) << "threads=" << threads;
    EXPECT_EQ(reference.covered_samples, mt.covered_samples)
        << "threads=" << threads;
  }

  SelectionResult lazy = select_seeds_lazy(n, k, samples);
  EXPECT_EQ(reference.seeds, lazy.seeds);
  EXPECT_EQ(reference.covered_samples, lazy.covered_samples);

  FlatRRRCollection flat;
  for (const RRRSet &sample : samples) flat.append(sample);
  SelectionResult arena = select_seeds_flat(n, k, flat);
  EXPECT_EQ(reference.seeds, arena.seeds);
  EXPECT_EQ(reference.covered_samples, arena.covered_samples);

  HypergraphCollection hypergraph(n);
  for (const RRRSet &sample : samples) {
    RRRSet copy = sample;
    hypergraph.add(std::move(copy));
  }
  SelectionResult dual = select_seeds_hypergraph(n, k, hypergraph);
  EXPECT_EQ(reference.seeds, dual.seeds);
  EXPECT_EQ(reference.covered_samples, dual.covered_samples);
}

TEST(SelectDeterminism, AllVariantsAgreeOnRandomFixtures) {
  for (std::uint64_t seed : {7u, 77u, 777u})
    expect_all_variants_agree(120, 9, random_samples(120, 360, 8, seed));
}

TEST(SelectDeterminism, AllVariantsAgreeOnTies) {
  // Every round is a tie on purpose: vertices 2/5 and then 3/8 have equal
  // counters, so any variant that does not break ties to the smallest id
  // (or lets thread interleaving pick the winner) diverges here.
  std::vector<RRRSet> samples = {{2, 5}, {2, 5}, {3, 8}, {3, 8}};
  expect_all_variants_agree(10, 4, samples);
}

TEST(SelectDeterminism, AllVariantsAgreeOnZeroCoverageTail) {
  // k exceeds the number of useful picks; the zero-counter fallback order
  // must also match across variants.
  std::vector<RRRSet> samples = {{4}, {4}, {6}};
  expect_all_variants_agree(9, 5, samples);
}

// --- building blocks ----------------------------------------------------------------

TEST(CountMemberships, CountsEveryAssociation) {
  std::vector<RRRSet> samples = {{0, 1, 2}, {1, 2}, {2}};
  std::vector<std::uint32_t> counters(4, 0);
  count_memberships(samples, counters);
  EXPECT_EQ(counters[0], 1u);
  EXPECT_EQ(counters[1], 2u);
  EXPECT_EQ(counters[2], 3u);
  EXPECT_EQ(counters[3], 0u);
}

TEST(RetireSamples, DecrementsAndMarks) {
  std::vector<RRRSet> samples = {{0, 1}, {1, 2}, {2, 3}};
  std::vector<std::uint32_t> counters(4, 0);
  count_memberships(samples, counters);
  std::vector<std::uint8_t> retired(3, 0);
  std::uint64_t count = retire_samples_containing(1, samples, counters, retired);
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(retired[0], 1);
  EXPECT_EQ(retired[1], 1);
  EXPECT_EQ(retired[2], 0);
  EXPECT_EQ(counters[0], 0u);
  EXPECT_EQ(counters[1], 0u);
  EXPECT_EQ(counters[2], 1u); // only sample {2,3} still counts it
}

TEST(RetireSamples, SkipsAlreadyRetired) {
  std::vector<RRRSet> samples = {{0, 1}};
  std::vector<std::uint32_t> counters(2, 0);
  count_memberships(samples, counters);
  std::vector<std::uint8_t> retired(1, 0);
  EXPECT_EQ(retire_samples_containing(0, samples, counters, retired), 1u);
  EXPECT_EQ(retire_samples_containing(1, samples, counters, retired), 0u);
}

TEST(ArgmaxCounter, SkipsSelectedAndBreaksTiesLow) {
  std::vector<std::uint32_t> counters{5, 9, 9, 2};
  std::vector<std::uint8_t> selected{0, 0, 0, 0};
  EXPECT_EQ(argmax_counter(counters, selected), 1u);
  selected[1] = 1;
  EXPECT_EQ(argmax_counter(counters, selected), 2u);
  selected[2] = 1;
  EXPECT_EQ(argmax_counter(counters, selected), 0u);
}

TEST(ArgmaxCounter, AllZeroReturnsSmallestUnselected) {
  std::vector<std::uint32_t> counters{0, 0, 0};
  std::vector<std::uint8_t> selected{1, 0, 0};
  EXPECT_EQ(argmax_counter(counters, selected), 1u);
}

} // namespace
} // namespace ripples
