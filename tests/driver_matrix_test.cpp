// Combinatorial contract sweep: every IMM driver x both diffusion models x
// several (epsilon, k) settings x both selection-exchange protocols must
// satisfy the output contract, and the counter-stream drivers must agree
// bit-exactly with the sequential reference in every cell of the matrix.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "imm/imm.hpp"
#include "support/metrics.hpp"

namespace ripples {
namespace {

enum class Driver { Sequential, Baseline, Multithreaded, Distributed,
                    DistributedPartitioned };

const char *name_of(Driver driver) {
  switch (driver) {
  case Driver::Sequential: return "sequential";
  case Driver::Baseline: return "baseline";
  case Driver::Multithreaded: return "multithreaded";
  case Driver::Distributed: return "distributed";
  case Driver::DistributedPartitioned: return "distributed-partitioned";
  }
  return "?";
}

ImmResult run(Driver driver, const CsrGraph &graph, const ImmOptions &options) {
  switch (driver) {
  case Driver::Sequential: return imm_sequential(graph, options);
  case Driver::Baseline: return imm_baseline_hypergraph(graph, options);
  case Driver::Multithreaded: {
    ImmOptions local = options;
    local.num_threads = 3;
    return imm_multithreaded(graph, local);
  }
  case Driver::Distributed: {
    ImmOptions local = options;
    local.num_ranks = 3;
    return imm_distributed(graph, local);
  }
  case Driver::DistributedPartitioned: {
    ImmOptions local = options;
    local.num_ranks = 3;
    return imm_distributed_partitioned(graph, local);
  }
  }
  return {};
}

using Cell = std::tuple<Driver, DiffusionModel, double, std::uint32_t,
                        SelectionExchange, SamplerEngine>;

class DriverMatrix : public ::testing::TestWithParam<Cell> {};

TEST_P(DriverMatrix, SatisfiesContractAndSequentialAgreement) {
  auto [driver, model, epsilon, k, exchange, engine] = GetParam();

  CsrGraph graph(barabasi_albert(400, 3, 77));
  assign_uniform_weights(graph, 78);
  if (model == DiffusionModel::LinearThreshold)
    renormalize_linear_threshold(graph);

  ImmOptions options;
  options.epsilon = epsilon;
  options.k = k;
  options.model = model;
  options.seed = 4242;
  // Only the mpsim drivers consult the knob; the shared-memory drivers must
  // ignore it, which running them in both modes verifies for free.
  options.selection_exchange = exchange;
  // The fused engine promises byte-identical collections, so every
  // contract and agreement check below must hold cell-for-cell in both
  // engines; the reference below always runs the scalar engine.
  options.sampler = engine;

  ImmResult result = run(driver, graph, options);

  // Contract.
  ASSERT_EQ(result.seeds.size(), k) << name_of(driver);
  std::set<vertex_t> unique(result.seeds.begin(), result.seeds.end());
  EXPECT_EQ(unique.size(), k);
  for (vertex_t s : result.seeds) EXPECT_LT(s, graph.num_vertices());
  EXPECT_GE(result.theta, 1u);
  EXPECT_GE(result.num_samples, result.theta);
  EXPECT_GT(result.coverage_fraction, 0.0);
  EXPECT_LE(result.coverage_fraction, 1.0);
  EXPECT_GT(result.rrr_peak_bytes, 0u);

  // The counter-stream drivers share the exact sample distribution with
  // the sequential reference, so the seed set must be identical.  The
  // partitioned driver uses per-(sample, vertex) streams and is checked
  // for rank invariance in imm_partitioned_test instead.
  // A fused sequential cell is still checked against the scalar-engine
  // reference: that comparison IS the fused byte-identity claim.
  if (driver != Driver::DistributedPartitioned &&
      (driver != Driver::Sequential || engine == SamplerEngine::Fused)) {
    ImmOptions reference_options = options;
    reference_options.sampler = SamplerEngine::Sequential;
    ImmResult reference = imm_sequential(graph, reference_options);
    EXPECT_EQ(result.seeds, reference.seeds) << name_of(driver);
    EXPECT_EQ(result.theta, reference.theta);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, DriverMatrix,
    ::testing::Combine(
        ::testing::Values(Driver::Sequential, Driver::Baseline,
                          Driver::Multithreaded, Driver::Distributed,
                          Driver::DistributedPartitioned),
        ::testing::Values(DiffusionModel::IndependentCascade,
                          DiffusionModel::LinearThreshold),
        ::testing::Values(0.4, 0.5),
        ::testing::Values(2u, 12u),
        ::testing::Values(SelectionExchange::Dense,
                          SelectionExchange::Sparse),
        ::testing::Values(SamplerEngine::Sequential, SamplerEngine::Fused)));

// Fused acceptance sweep over rank counts: for every ranks in {1,2,4,8} x
// rng mode x exchange protocol, the distributed driver under the fused
// engine must agree bit-exactly with the same configuration under the
// scalar engine (the engines promise identical collections), and in
// counter mode with the sequential reference as well.  Leap-frog mode
// keeps its scalar kernel, so there the check pins the fused flag as a
// strict no-op.
class FusedRankSweep
    : public ::testing::TestWithParam<
          std::tuple<int, RngMode, SelectionExchange>> {};

TEST_P(FusedRankSweep, FusedDistributedMatchesScalarEngine) {
  auto [ranks, rng_mode, exchange] = GetParam();

  CsrGraph graph(barabasi_albert(400, 3, 77));
  assign_uniform_weights(graph, 78);

  ImmOptions options;
  options.epsilon = 0.5;
  options.k = 8;
  options.model = DiffusionModel::IndependentCascade;
  options.seed = 4242;
  options.num_ranks = ranks;
  options.rng_mode = rng_mode;
  options.selection_exchange = exchange;

  options.sampler = SamplerEngine::Fused;
  ImmResult fused = imm_distributed(graph, options);
  options.sampler = SamplerEngine::Sequential;
  ImmResult scalar = imm_distributed(graph, options);
  EXPECT_EQ(fused.seeds, scalar.seeds);
  EXPECT_EQ(fused.theta, scalar.theta);
  EXPECT_EQ(fused.coverage_fraction, scalar.coverage_fraction);

  if (rng_mode == RngMode::CounterSequence) {
    ImmResult reference = imm_sequential(graph, options);
    EXPECT_EQ(fused.seeds, reference.seeds);
    EXPECT_EQ(fused.theta, reference.theta);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RanksRngExchange, FusedRankSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(RngMode::CounterSequence,
                                         RngMode::LeapfrogLcg),
                       ::testing::Values(SelectionExchange::Dense,
                                         SelectionExchange::Sparse)));

// Stealing axis (DESIGN.md §13): for every ranks in {1,2,4,8} x rng mode x
// exchange protocol x engine, the distributed driver with work-stealing on
// (and the skewed fig7 partition manufactured, so inter steals actually
// move chunks) must agree bit-exactly with the same configuration with
// stealing off — stealing is a pure placement knob.  Counter mode is also
// pinned to the sequential reference; leap-frog mode keeps its pinned
// placement, so there the sweep asserts the knob is a strict no-op.
class StealSweep
    : public ::testing::TestWithParam<
          std::tuple<int, RngMode, SelectionExchange, SamplerEngine>> {};

TEST_P(StealSweep, StealingOnMatchesStealingOff) {
  auto [ranks, rng_mode, exchange, engine] = GetParam();

  CsrGraph graph(barabasi_albert(400, 3, 77));
  assign_uniform_weights(graph, 78);

  ImmOptions options;
  options.epsilon = 0.5;
  options.k = 8;
  options.model = DiffusionModel::IndependentCascade;
  options.seed = 4242;
  options.num_ranks = ranks;
  options.rng_mode = rng_mode;
  options.selection_exchange = exchange;
  options.sampler = engine;
  options.steal = StealMode::Off;
  options.steal_chunk = 16;

  ImmResult off = imm_distributed(graph, options);
  options.steal = StealMode::On;
  options.steal_skew = true;
  ImmResult on = imm_distributed(graph, options);

  EXPECT_EQ(on.seeds, off.seeds);
  EXPECT_EQ(on.theta, off.theta);
  EXPECT_EQ(on.num_samples, off.num_samples);
  EXPECT_EQ(on.coverage_fraction, off.coverage_fraction);

  if (rng_mode == RngMode::CounterSequence) {
    ImmResult reference = imm_sequential(graph, options);
    EXPECT_EQ(on.seeds, reference.seeds);
    EXPECT_EQ(on.theta, reference.theta);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RanksRngExchangeEngine, StealSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(RngMode::CounterSequence,
                                         RngMode::LeapfrogLcg),
                       ::testing::Values(SelectionExchange::Dense,
                                         SelectionExchange::Sparse),
                       ::testing::Values(SamplerEngine::Sequential,
                                         SamplerEngine::Fused)));

// Forced-compression axis: under --rrr-compress always every governed
// driver must return byte-identical seeds to its plain-representation run —
// the compressed store changes where samples live, never which samples
// exist or how the greedy breaks ties.  The ungoverned drivers (baseline,
// dist-part) are swept too, pinning the flag as a strict no-op there.
class CompressionSweep
    : public ::testing::TestWithParam<std::tuple<Driver, DiffusionModel>> {};

TEST_P(CompressionSweep, ForcedCompressionMatchesPlainSeeds) {
  auto [driver, model] = GetParam();

  CsrGraph graph(barabasi_albert(400, 3, 77));
  assign_uniform_weights(graph, 78);
  if (model == DiffusionModel::LinearThreshold)
    renormalize_linear_threshold(graph);

  ImmOptions options;
  options.epsilon = 0.5;
  options.k = 8;
  options.model = model;
  options.seed = 4242;

  options.rrr_compress = CompressMode::Off;
  ImmResult plain = run(driver, graph, options);
  options.rrr_compress = CompressMode::Always;
  ImmResult compressed = run(driver, graph, options);

  EXPECT_EQ(compressed.seeds, plain.seeds) << name_of(driver);
  EXPECT_EQ(compressed.theta, plain.theta);
  EXPECT_EQ(compressed.num_samples, plain.num_samples);
  EXPECT_EQ(compressed.coverage_fraction, plain.coverage_fraction);
  EXPECT_FALSE(compressed.degraded);
}

INSTANTIATE_TEST_SUITE_P(
    AllDrivers, CompressionSweep,
    ::testing::Combine(
        ::testing::Values(Driver::Sequential, Driver::Baseline,
                          Driver::Multithreaded, Driver::Distributed,
                          Driver::DistributedPartitioned),
        ::testing::Values(DiffusionModel::IndependentCascade,
                          DiffusionModel::LinearThreshold)));

// Deterministic word-count regression: at p >= 4 and k >= 8 the sparse
// protocol must move strictly fewer selection-exchange words than the dense
// allreduce on the same workload.  Counted from the metrics registry, which
// both protocols feed (dense logs n words per rank per round).
TEST(SelectionExchangeWords, DenseMovesStrictlyMoreWordsThanSparse) {
  CsrGraph graph(barabasi_albert(400, 3, 77));
  assign_uniform_weights(graph, 78);

  ImmOptions options;
  options.epsilon = 0.5;
  options.k = 8;
  options.model = DiffusionModel::IndependentCascade;
  options.seed = 4242;
  options.num_ranks = 4;
  // Pin the dense arm: the default is env-derived and the check.sh sparse
  // leg runs this binary with RIPPLES_SELECTION_EXCHANGE=sparse.
  options.selection_exchange = SelectionExchange::Dense;

  metrics::Counter &words =
      metrics::Registry::instance().counter("imm.select.exchange_words");
  metrics::set_enabled(true);
  const std::uint64_t base = words.value();
  (void)imm_distributed(graph, options);
  const std::uint64_t dense_words = words.value() - base;

  options.selection_exchange = SelectionExchange::Sparse;
  (void)imm_distributed(graph, options);
  const std::uint64_t sparse_words = words.value() - base - dense_words;
  metrics::set_enabled(false);

  ASSERT_GT(dense_words, 0u);
  ASSERT_GT(sparse_words, 0u);
  EXPECT_GT(dense_words, sparse_words);
}

} // namespace
} // namespace ripples
