// Property harness for the sparse selection exchange (DESIGN.md §8): the
// pure kernels (sparse_topm / sparse_merge / sparse_certify_exact) are
// driven against brute-force oracles over randomized counter matrices —
// certification must hold exactly when the documented bound holds, and a
// certified winner must equal the dense argmax including the smallest-id
// tie-break.  End to end, the sparse protocol must return bit-identical
// seed sets and coverage across graphs x ranks x k x RNG modes, survive
// injected rank failures with bit-identical healing, and demonstrably move
// fewer words than the dense allreduce (asserted from the metrics
// registry).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "imm/imm.hpp"
#include "imm/select.hpp"
#include "support/metrics.hpp"

namespace ripples {
namespace {

// --- brute-force oracles -----------------------------------------------------

/// Dense argmax over the element-wise sum of per-rank counters: the winner
/// the sparse protocol must reproduce (smallest id among maxima; smallest
/// unselected id when everything is zero — argmax_counter's contract).
vertex_t dense_argmax(const std::vector<std::vector<std::uint32_t>> &ranks,
                      const std::vector<std::uint8_t> &selected) {
  const std::size_t n = ranks.front().size();
  vertex_t best = 0;
  std::uint64_t best_count = 0;
  bool found = false;
  for (vertex_t v = 0; v < n; ++v) {
    if (selected[v]) continue;
    std::uint64_t total = 0;
    for (const auto &r : ranks) total += r[v];
    if (!found || total > best_count) {
      found = true;
      best = v;
      best_count = total;
    }
  }
  EXPECT_TRUE(found);
  return best;
}

/// Independent restatement of the header's certification rule, written from
/// the documented math rather than the implementation: LB/UB per candidate,
/// T for unreported vertices, strict bounds, exact ties only between fully
/// known candidates with the winner holding the smaller id.
bool oracle_certified(const std::vector<TopmSummary> &summaries) {
  struct Info {
    std::uint64_t lb = 0;
    std::uint64_t missing_outside = 0;
    bool exact = false;
  };
  std::uint64_t total_outside = 0;
  for (const TopmSummary &s : summaries) total_outside += s.outside_bound;

  std::set<vertex_t> union_set;
  for (const TopmSummary &s : summaries)
    for (const CounterPair &pair : s.top) union_set.insert(pair.vertex);
  if (union_set.empty()) return false;

  std::vector<vertex_t> candidates(union_set.begin(), union_set.end());
  std::vector<Info> info(candidates.size());
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    std::size_t reporters = 0;
    std::uint64_t missing = 0;
    for (const TopmSummary &s : summaries) {
      bool reported = false;
      for (const CounterPair &pair : s.top) {
        if (pair.vertex != candidates[c]) continue;
        info[c].lb += pair.count;
        reported = true;
        break;
      }
      if (reported)
        ++reporters;
      else
        missing += s.outside_bound;
    }
    info[c].missing_outside = missing;
    info[c].exact = reporters == summaries.size() || missing == 0;
  }

  std::size_t winner = 0;
  for (std::size_t c = 1; c < candidates.size(); ++c)
    if (info[c].lb > info[winner].lb) winner = c;
  if (total_outside >= info[winner].lb) return false;
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    if (c == winner) continue;
    const std::uint64_t ub = info[c].lb + info[c].missing_outside;
    if (ub < info[winner].lb) continue;
    const bool exact_tie = ub == info[winner].lb && info[c].exact &&
                           info[winner].exact &&
                           candidates[winner] < candidates[c];
    if (!exact_tie) return false;
  }
  return true;
}

// --- sparse_topm -------------------------------------------------------------

TEST(SparseTopm, ReportsTheBestMInDenseArgmaxOrder) {
  const std::vector<std::uint32_t> counters{5, 9, 1, 9, 0, 7};
  const std::vector<std::uint8_t> selected(6, 0);
  const TopmSummary summary = sparse_topm(counters, selected, 3);
  ASSERT_EQ(summary.top.size(), 3u);
  EXPECT_EQ(summary.top[0].vertex, 1u); // count 9, smaller id first
  EXPECT_EQ(summary.top[1].vertex, 3u); // count 9
  EXPECT_EQ(summary.top[2].vertex, 5u); // count 7
  // The exact maximum among the unreported vertices {0, 2, 4}.
  EXPECT_EQ(summary.outside_bound, 5u);
}

TEST(SparseTopm, SkipsSelectedVerticesEntirely) {
  const std::vector<std::uint32_t> counters{5, 9, 1, 9, 0, 7};
  std::vector<std::uint8_t> selected(6, 0);
  selected[1] = 1;
  selected[3] = 1;
  const TopmSummary summary = sparse_topm(counters, selected, 2);
  ASSERT_EQ(summary.top.size(), 2u);
  EXPECT_EQ(summary.top[0].vertex, 5u);
  EXPECT_EQ(summary.top[1].vertex, 0u);
  EXPECT_EQ(summary.outside_bound, 1u);
}

TEST(SparseTopm, FillsWithZeroCountsAndZeroOutsideBoundWhenAllReported) {
  const std::vector<std::uint32_t> counters{0, 2, 0};
  const std::vector<std::uint8_t> selected(3, 0);
  const TopmSummary summary = sparse_topm(counters, selected, 8);
  ASSERT_EQ(summary.top.size(), 3u); // every unselected vertex fits
  EXPECT_EQ(summary.top[0].vertex, 1u);
  EXPECT_EQ(summary.top[1].vertex, 0u); // zero counts, smaller id first
  EXPECT_EQ(summary.top[2].vertex, 2u);
  EXPECT_EQ(summary.outside_bound, 0u);
}

TEST(SparseTopm, OutsideBoundIsExactNotJustAnUpperBound) {
  std::mt19937 rng(20260806);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + rng() % 40;
    const std::uint32_t m = 1 + rng() % 8;
    std::vector<std::uint32_t> counters(n);
    std::vector<std::uint8_t> selected(n, 0);
    for (std::size_t v = 0; v < n; ++v) {
      counters[v] = rng() % 12;
      selected[v] = rng() % 4 == 0;
    }
    if (std::count(selected.begin(), selected.end(), 0) == 0) selected[0] = 0;

    const TopmSummary summary = sparse_topm(counters, selected, m);
    std::set<vertex_t> reported;
    for (const CounterPair &pair : summary.top) {
      EXPECT_FALSE(selected[pair.vertex]);
      EXPECT_EQ(pair.count, counters[pair.vertex]);
      reported.insert(pair.vertex);
    }
    std::uint32_t expected_outside = 0;
    for (vertex_t v = 0; v < n; ++v)
      if (!selected[v] && !reported.count(v))
        expected_outside = std::max(expected_outside, counters[v]);
    EXPECT_EQ(summary.outside_bound, expected_outside);
    // Every reported count is >= every unreported count (top-m property).
    for (const CounterPair &pair : summary.top)
      EXPECT_GE(pair.count, expected_outside);
  }
}

// --- sparse_merge: crafted cases --------------------------------------------

TEST(SparseMerge, CertifiesAClearWinner) {
  // Two ranks both report vertex 2 far above everything else.
  std::vector<TopmSummary> summaries(2);
  summaries[0].top = {{2, 50}, {7, 3}};
  summaries[0].outside_bound = 2;
  summaries[1].top = {{2, 40}, {9, 4}};
  summaries[1].outside_bound = 3;
  const SparseMergeResult merged = sparse_merge(summaries);
  EXPECT_TRUE(merged.certified);
  EXPECT_EQ(merged.winner, 2u);
  EXPECT_EQ(merged.candidates, (std::vector<vertex_t>{2, 7, 9}));
}

TEST(SparseMerge, RefusesWhenAPartiallyReportedRivalCouldOvertake) {
  // Vertex 9 leads on LB, but vertex 7 was reported by only rank 0 and
  // rank 1's outside bound lets it reach 10 + 6 = 16 > 15.
  std::vector<TopmSummary> summaries(2);
  summaries[0].top = {{9, 8}, {7, 10}};
  summaries[0].outside_bound = 1;
  summaries[1].top = {{9, 7}, {3, 5}};
  summaries[1].outside_bound = 6;
  const SparseMergeResult merged = sparse_merge(summaries);
  EXPECT_FALSE(merged.certified);
  EXPECT_EQ(merged.winner, 9u); // still the best-LB candidate
}

TEST(SparseMerge, RefusesWhenAnUnreportedVertexCouldTie) {
  // T = 5 + 5 equals the winner's LB = 10: an unreported vertex of unknown
  // (possibly smaller) id could tie, so the tie-break is unprovable.
  std::vector<TopmSummary> summaries(2);
  summaries[0].top = {{4, 5}};
  summaries[0].outside_bound = 5;
  summaries[1].top = {{4, 5}};
  summaries[1].outside_bound = 5;
  const SparseMergeResult merged = sparse_merge(summaries);
  EXPECT_FALSE(merged.certified);
}

TEST(SparseMerge, CertifiesAnExactTieWhenTheWinnerHasTheSmallerId) {
  // Both candidates fully reported by both ranks, equal totals, outside
  // bounds zero: the dense argmax provably picks the smaller id.
  std::vector<TopmSummary> summaries(2);
  summaries[0].top = {{3, 6}, {8, 7}};
  summaries[0].outside_bound = 0;
  summaries[1].top = {{3, 6}, {8, 5}};
  summaries[1].outside_bound = 0;
  const SparseMergeResult merged = sparse_merge(summaries);
  EXPECT_TRUE(merged.certified);
  EXPECT_EQ(merged.winner, 3u);
}

TEST(SparseMerge, RefusesAnExactTieWhenTheRivalHasTheSmallerId) {
  // Same totals, but the rival's id is smaller: the dense argmax would
  // pick the rival, and LB-preference picked it too — yet here the winner
  // by (LB, id) is vertex 3 and vertex 8 ties exactly.  Construct the
  // reverse: winner id larger than an exactly-tying rival.
  std::vector<TopmSummary> summaries(2);
  summaries[0].top = {{8, 6}, {3, 6}};
  summaries[0].outside_bound = 0;
  summaries[1].top = {{8, 6}, {3, 6}};
  summaries[1].outside_bound = 0;
  const SparseMergeResult merged = sparse_merge(summaries);
  // Winner must be vertex 3 (same LB, smaller id) and the exact tie with 8
  // is certifiable.
  EXPECT_EQ(merged.winner, 3u);
  EXPECT_TRUE(merged.certified);
}

TEST(SparseMerge, RefusesAPartialTieEvenWithEqualBounds) {
  // Vertex 5 ties the winner's LB at its UB but is not fully reported
  // (rank 1 did not list it and has a nonzero outside bound): its true
  // count may be anywhere in [4, 9], so no certificate.
  std::vector<TopmSummary> summaries(2);
  summaries[0].top = {{2, 9}, {5, 4}};
  summaries[0].outside_bound = 0;
  summaries[1].top = {{2, 0}, {6, 1}};
  summaries[1].outside_bound = 5;
  const SparseMergeResult merged = sparse_merge(summaries);
  EXPECT_EQ(merged.winner, 2u);
  EXPECT_FALSE(merged.certified);
}

TEST(SparseMerge, CandidatesAreTheSortedUnionOnEveryRank) {
  std::vector<TopmSummary> summaries(3);
  summaries[0].top = {{9, 3}, {1, 2}};
  summaries[1].top = {{4, 1}, {9, 1}};
  summaries[2].top = {{0, 5}};
  const SparseMergeResult merged = sparse_merge(summaries);
  EXPECT_EQ(merged.candidates, (std::vector<vertex_t>{0, 1, 4, 9}));
}

// --- sparse_certify_exact ----------------------------------------------------

TEST(SparseCertifyExact, PicksTheSmallestIdAmongMaximaAndNeedsStrictMargin) {
  const std::vector<vertex_t> candidates{3, 5, 11};
  const std::vector<std::uint32_t> counts{7, 9, 9};
  SparseExactResult result = sparse_certify_exact(candidates, counts, 8);
  EXPECT_TRUE(result.certified); // 9 > 8
  EXPECT_EQ(result.winner, 5u);  // smaller id of the two maxima

  result = sparse_certify_exact(candidates, counts, 9);
  EXPECT_FALSE(result.certified); // an outside vertex could tie at 9
  EXPECT_EQ(result.winner, 5u);

  result = sparse_certify_exact(candidates, counts, 10);
  EXPECT_FALSE(result.certified); // an outside vertex could exceed
}

// --- randomized kernel properties -------------------------------------------

/// Drives the full stage-1 pipeline over random per-rank counter matrices:
/// certification must equal the independently restated bound predicate
/// (fallback fires iff the bound is violated), and a certified winner must
/// equal the dense argmax.  Both outcomes must actually occur.
TEST(SparseExchangeProperty, CertificationIsExactlyTheBoundPredicate) {
  std::mt19937 rng(777);
  int certified_seen = 0;
  int uncertified_seen = 0;
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t n = 4 + rng() % 60;
    const std::size_t p = 1 + rng() % 8;
    const std::uint32_t m = 1 + rng() % 6;
    // Three regimes: a globally dominant vertex (certifies), near-uniform
    // noise (refuses), and random skew (either way).
    const int regime = trial % 3;
    std::vector<std::vector<std::uint32_t>> ranks(p);
    std::vector<std::uint8_t> selected(n, 0);
    for (std::size_t v = 0; v < n; ++v) selected[v] = rng() % 5 == 0;
    if (std::count(selected.begin(), selected.end(), 0) == 0) selected[0] = 0;
    const auto hot = static_cast<vertex_t>(
        std::find(selected.begin(), selected.end(), 0) - selected.begin());
    for (auto &counters : ranks) {
      counters.resize(n);
      for (std::size_t v = 0; v < n; ++v)
        counters[v] = regime == 1 ? rng() % 6
                                  : (rng() % 8 ? rng() % 3 : 40 + rng() % 20);
      if (regime == 0) counters[hot] = 200 + rng() % 20;
    }

    std::vector<TopmSummary> summaries;
    summaries.reserve(p);
    for (const auto &counters : ranks)
      summaries.push_back(sparse_topm(counters, selected, m));
    const SparseMergeResult merged = sparse_merge(summaries);

    EXPECT_EQ(merged.certified, oracle_certified(summaries))
        << "trial " << trial;
    if (merged.certified) {
      ++certified_seen;
      EXPECT_EQ(merged.winner, dense_argmax(ranks, selected))
          << "trial " << trial;
    } else {
      ++uncertified_seen;
    }
  }
  // The property is vacuous unless the matrix exercised both branches.
  EXPECT_GT(certified_seen, 50);
  EXPECT_GT(uncertified_seen, 50);
}

/// Stage 2 on random data: allreduced exact candidate counts + summed
/// outside maxima.  A certificate must imply the dense argmax; refusal must
/// imply an outside vertex really could tie or win.
TEST(SparseExchangeProperty, ExactStageCertifiesOnlyTrueWinners) {
  std::mt19937 rng(4242);
  int certified_seen = 0;
  int uncertified_seen = 0;
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t n = 4 + rng() % 40;
    const std::size_t p = 1 + rng() % 6;
    std::vector<std::vector<std::uint32_t>> ranks(p);
    std::vector<std::uint8_t> selected(n, 0);
    for (auto &counters : ranks) {
      counters.resize(n);
      for (std::size_t v = 0; v < n; ++v)
        counters[v] = rng() % 2 ? rng() % 30 : 0;
    }
    // A random candidate subset standing in for stage 1's union.
    std::vector<vertex_t> candidates;
    for (vertex_t v = 0; v < n; ++v)
      if (rng() % 3 == 0) candidates.push_back(v);
    if (candidates.empty()) candidates.push_back(0);
    // Half the trials plant a dominant candidate so certification occurs.
    if (trial % 2 == 0)
      for (auto &counters : ranks) counters[candidates.front()] += 100;

    std::vector<std::uint32_t> exact(candidates.size());
    std::uint64_t outside_sum = 0;
    for (std::size_t c = 0; c < candidates.size(); ++c)
      for (const auto &counters : ranks) exact[c] += counters[candidates[c]];
    for (const auto &counters : ranks) {
      std::uint32_t outside_max = 0;
      for (vertex_t v = 0; v < n; ++v)
        if (!std::binary_search(candidates.begin(), candidates.end(), v))
          outside_max = std::max(outside_max, counters[v]);
      outside_sum += outside_max;
    }

    const SparseExactResult result =
        sparse_certify_exact(candidates, exact, outside_sum);
    if (result.certified) {
      ++certified_seen;
      EXPECT_EQ(result.winner, dense_argmax(ranks, selected))
          << "trial " << trial;
    } else {
      ++uncertified_seen;
    }
  }
  EXPECT_GT(certified_seen, 50);
  EXPECT_GT(uncertified_seen, 50);
}

// --- end-to-end equivalence --------------------------------------------------

enum class ExchangeDriver { Distributed, Partitioned };

using EquivalenceCell = std::tuple<ExchangeDriver, int, std::uint32_t, RngMode>;

class SparseEquivalence : public ::testing::TestWithParam<EquivalenceCell> {};

TEST_P(SparseEquivalence, SparseSeedsAndCoverageMatchDense) {
  const auto [driver, num_ranks, k, rng_mode] = GetParam();
  // The partitioned driver defines randomness per (sample, vertex) and
  // rejects leap-frog streams.
  if (driver == ExchangeDriver::Partitioned && rng_mode == RngMode::LeapfrogLcg)
    GTEST_SKIP() << "partitioned driver is counter-stream only";

  CsrGraph graph(barabasi_albert(300, 3, 55));
  assign_uniform_weights(graph, 56);

  ImmOptions options;
  options.epsilon = 0.5;
  options.k = k;
  options.model = DiffusionModel::IndependentCascade;
  options.seed = 2019;
  options.num_ranks = num_ranks;
  options.rng_mode = rng_mode;

  auto run = [&](SelectionExchange exchange) {
    ImmOptions local = options;
    local.selection_exchange = exchange;
    return driver == ExchangeDriver::Distributed
               ? imm_distributed(graph, local)
               : imm_distributed_partitioned(graph, local);
  };
  const ImmResult dense = run(SelectionExchange::Dense);
  const ImmResult sparse = run(SelectionExchange::Sparse);

  EXPECT_EQ(sparse.seeds, dense.seeds);
  EXPECT_EQ(sparse.theta, dense.theta);
  EXPECT_EQ(sparse.num_samples, dense.num_samples);
  EXPECT_EQ(sparse.coverage_fraction, dense.coverage_fraction);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SparseEquivalence,
    ::testing::Combine(::testing::Values(ExchangeDriver::Distributed,
                                         ExchangeDriver::Partitioned),
                       ::testing::Values(1, 2, 4, 8),
                       ::testing::Values(2u, 8u),
                       ::testing::Values(RngMode::CounterSequence,
                                         RngMode::LeapfrogLcg)),
    [](const auto &info) {
      std::string name = std::get<0>(info.param) == ExchangeDriver::Distributed
                             ? "dist"
                             : "part";
      name += "_p" + std::to_string(std::get<1>(info.param));
      name += "_k" + std::to_string(std::get<2>(info.param));
      name += std::get<3>(info.param) == RngMode::CounterSequence
                  ? "_counter"
                  : "_leapfrog";
      return name;
    });

TEST(SparseEquivalence, SecondGraphShapeAlsoMatches) {
  // A small-world graph has a much flatter coverage distribution than the
  // BA graph above — the regime where ties and fallbacks are common.
  CsrGraph graph(watts_strogatz(240, 4, 0.1, 91));
  assign_uniform_weights(graph, 92);

  ImmOptions options;
  options.epsilon = 0.5;
  options.k = 8;
  options.model = DiffusionModel::IndependentCascade;
  options.seed = 7;
  options.num_ranks = 4;
  options.selection_exchange = SelectionExchange::Dense;

  ImmOptions sparse_options = options;
  sparse_options.selection_exchange = SelectionExchange::Sparse;
  // A tiny m forces the candidate and dense fallback stages to carry the
  // correctness burden.
  sparse_options.selection_topm = 1;

  const ImmResult dense = imm_distributed(graph, options);
  const ImmResult sparse = imm_distributed(graph, sparse_options);
  EXPECT_EQ(sparse.seeds, dense.seeds);
  EXPECT_EQ(sparse.coverage_fraction, dense.coverage_fraction);
}

TEST(SparseEquivalence, EnvironmentVariableSelectsTheProtocol) {
  // Start from a clean slate and restore the ambient value afterwards: the
  // check.sh sparse leg runs this binary with the variable already set.
  const char *ambient = std::getenv("RIPPLES_SELECTION_EXCHANGE");
  const std::string saved = ambient != nullptr ? ambient : "";
  ASSERT_EQ(unsetenv("RIPPLES_SELECTION_EXCHANGE"), 0);
  EXPECT_EQ(selection_exchange_from_env(), SelectionExchange::Dense);
  ASSERT_EQ(setenv("RIPPLES_SELECTION_EXCHANGE", "sparse", 1), 0);
  EXPECT_EQ(selection_exchange_from_env(), SelectionExchange::Sparse);
  ASSERT_EQ(setenv("RIPPLES_SELECTION_EXCHANGE", "dense", 1), 0);
  EXPECT_EQ(selection_exchange_from_env(), SelectionExchange::Dense);
  ASSERT_EQ(unsetenv("RIPPLES_SELECTION_EXCHANGE"), 0);
  if (ambient != nullptr)
    ASSERT_EQ(setenv("RIPPLES_SELECTION_EXCHANGE", saved.c_str(), 1), 0);
}

// --- word-count reduction ----------------------------------------------------

std::uint64_t exchange_words() {
  return metrics::Registry::instance()
      .counter("imm.select.exchange_words")
      .value();
}

TEST(SparseExchangeWords, SparseMovesAtLeastFiveTimesFewerWordsAtP8) {
  CsrGraph graph(barabasi_albert(2000, 3, 33));
  assign_uniform_weights(graph, 34);

  ImmOptions options;
  options.epsilon = 0.5;
  options.k = 16;
  options.model = DiffusionModel::IndependentCascade;
  options.seed = 11;
  options.num_ranks = 8;
  // Pin the dense arm: the default is env-derived and the check.sh sparse
  // leg runs this binary with RIPPLES_SELECTION_EXCHANGE=sparse.
  options.selection_exchange = SelectionExchange::Dense;

  metrics::set_enabled(true);
  const std::uint64_t base = exchange_words();
  (void)imm_distributed(graph, options);
  const std::uint64_t dense_words = exchange_words() - base;

  options.selection_exchange = SelectionExchange::Sparse;
  (void)imm_distributed(graph, options);
  const std::uint64_t sparse_words = exchange_words() - base - dense_words;
  metrics::set_enabled(false);

  ASSERT_GT(dense_words, 0u);
  ASSERT_GT(sparse_words, 0u);
  EXPECT_GE(dense_words, 5 * sparse_words)
      << "dense=" << dense_words << " sparse=" << sparse_words;
}

TEST(SparseExchangeWords, SparseRoundsAndCertificationsAreAccounted) {
  CsrGraph graph(barabasi_albert(300, 3, 55));
  assign_uniform_weights(graph, 56);

  ImmOptions options;
  options.epsilon = 0.5;
  options.k = 4;
  options.model = DiffusionModel::IndependentCascade;
  options.seed = 3;
  options.num_ranks = 3;
  options.selection_exchange = SelectionExchange::Sparse;

  metrics::Registry &registry = metrics::Registry::instance();
  metrics::set_enabled(true);
  const std::uint64_t rounds0 =
      registry.counter("imm.select.sparse_rounds").value();
  const std::uint64_t certified0 =
      registry.counter("imm.select.sparse_certified").value();
  const std::uint64_t candidate0 =
      registry.counter("imm.select.sparse_candidate_fallbacks").value();
  const std::uint64_t dense0 =
      registry.counter("imm.select.sparse_dense_fallbacks").value();
  (void)imm_distributed(graph, options);
  metrics::set_enabled(false);

  const std::uint64_t rounds =
      registry.counter("imm.select.sparse_rounds").value() - rounds0;
  const std::uint64_t certified =
      registry.counter("imm.select.sparse_certified").value() - certified0;
  const std::uint64_t candidate =
      registry.counter("imm.select.sparse_candidate_fallbacks").value() -
      candidate0;
  const std::uint64_t dense_fb =
      registry.counter("imm.select.sparse_dense_fallbacks").value() - dense0;
  // Every rank logs every round; rounds not certified at stage 1 must have
  // escalated to the candidate stage, and dense fallbacks are a subset of
  // those.
  EXPECT_GT(rounds, 0u);
  EXPECT_EQ(rounds - certified, candidate);
  EXPECT_LE(dense_fb, candidate);
}

// --- fault injection over the sparse path ------------------------------------

TEST(SparseExchangeFaults, HealedSparseRunsMatchTheCleanSeedSetAtEverySite) {
  CsrGraph graph(barabasi_albert(400, 3, 11));
  assign_uniform_weights(graph, 12);

  ImmOptions options;
  options.epsilon = 0.5;
  options.k = 8;
  options.model = DiffusionModel::IndependentCascade;
  options.seed = 2019;
  options.num_ranks = 3;
  options.selection_exchange = SelectionExchange::Sparse;

  const ImmResult clean = imm_distributed(graph, options);
  ASSERT_EQ(clean.seeds.size(), options.k);

  options.recover_failures = true;
  // Sites 0..12 cover the sampler allreduce plus every collective of the
  // three sparse stages (top-m allgatherv, bound allgather, candidate
  // allreduce, dense resync, delta allgatherv) across several rounds.
  for (int rank = 0; rank < options.num_ranks; ++rank) {
    for (std::uint64_t site = 0; site <= 12; ++site) {
      options.fault_plan =
          "rank=" + std::to_string(rank) + ",site=" + std::to_string(site);
      const ImmResult healed = imm_distributed(graph, options);
      EXPECT_EQ(healed.seeds, clean.seeds)
          << "sparse healing diverged for " << options.fault_plan;
    }
  }
}

} // namespace
} // namespace ripples
