// Tests for the edge-list file formats (SNAP text and binary cache).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace ripples {
namespace {

class IoTest : public ::testing::Test {
protected:
  void SetUp() override {
    directory_ = std::filesystem::temp_directory_path() /
                 ("ripples_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(directory_);
  }
  void TearDown() override { std::filesystem::remove_all(directory_); }

  [[nodiscard]] std::string path(const std::string &name) const {
    return (directory_ / name).string();
  }

  std::filesystem::path directory_;
};

TEST_F(IoTest, ParsesSnapStyleText) {
  std::istringstream input(
      "# Directed graph (each unordered pair of nodes is saved once)\n"
      "# FromNodeId\tToNodeId\n"
      "100 200\n"
      "200 300\n"
      "% alternate comment style\n"
      "100 300\n");
  EdgeList list = read_edge_list_text(input);
  EXPECT_EQ(list.num_vertices, 3u); // ids compacted to 0..2
  ASSERT_EQ(list.edges.size(), 3u);
  EXPECT_EQ(list.edges[0].source, 0u);      // 100
  EXPECT_EQ(list.edges[0].destination, 1u); // 200
  EXPECT_EQ(list.edges[2].source, 0u);      // 100
  EXPECT_EQ(list.edges[2].destination, 2u); // 300
  EXPECT_FLOAT_EQ(list.edges[0].weight, 1.0f);
}

TEST_F(IoTest, ParsesOptionalWeightColumn) {
  std::istringstream input("0 1 0.25\n1 2 0.75\n");
  EdgeList list = read_edge_list_text(input);
  ASSERT_EQ(list.edges.size(), 2u);
  EXPECT_FLOAT_EQ(list.edges[0].weight, 0.25f);
  EXPECT_FLOAT_EQ(list.edges[1].weight, 0.75f);
}

TEST_F(IoTest, RejectsMalformedLines) {
  std::istringstream input("0 1\nnot an edge\n");
  EXPECT_THROW((void)read_edge_list_text(input), std::runtime_error);
}

// --- input validation: poisoned weights, truncation, strict screens ---------

void expect_rejected_naming_line(const std::string &text,
                                 const std::string &needle,
                                 const std::string &line,
                                 const EdgeListValidation &validation = {}) {
  std::istringstream input(text);
  try {
    (void)read_edge_list_text(input, true, validation);
    FAIL() << "accepted: " << text;
  } catch (const std::runtime_error &error) {
    EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
        << error.what();
    EXPECT_NE(std::string(error.what()).find("line " + line),
              std::string::npos)
        << error.what();
  }
}

TEST_F(IoTest, RejectsMalformedWeightTokenInsteadOfReadingZero) {
  // Pre-validation, "abc" left failbit set but weight silently at 0 for
  // some stream states; now it is a line-numbered error.
  expect_rejected_naming_line("0 1 0.5\n1 2 abc\n", "weight", "2");
}

TEST_F(IoTest, RejectsNegativeWeight) {
  expect_rejected_naming_line("0 1 -0.25\n", "out of [0, 1]", "1");
}

TEST_F(IoTest, RejectsWeightAboveOne) {
  expect_rejected_naming_line("0 1 0.5\n1 2 1.5\n", "out of [0, 1]", "2");
}

TEST_F(IoTest, RejectsNaNWeight) {
  // Whether the platform's num_get parses "nan" (then !(w >= 0) catches it)
  // or rejects the token (malformed weight), the line must be refused —
  // a NaN activation probability poisons every sampler downstream.
  std::istringstream input("0 1 nan\n");
  EXPECT_THROW((void)read_edge_list_text(input), std::runtime_error);
}

TEST_F(IoTest, RejectsTruncatedEdgeListAgainstTheDeclaredHeaderCount) {
  EdgeList original = erdos_renyi(30, 120, 9);
  save_edge_list_text(path("full.txt"), original);
  // Truncate the copy: drop the last 10 lines (partial download / full disk).
  std::ifstream in(path("full.txt"));
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  {
    std::ofstream out(path("cut.txt"));
    for (std::size_t i = 0; i + 10 < lines.size(); ++i) out << lines[i] << "\n";
  }
  EXPECT_NO_THROW((void)load_edge_list_text(path("full.txt")));
  try {
    (void)load_edge_list_text(path("cut.txt"));
    FAIL() << "truncated file accepted";
  } catch (const std::runtime_error &error) {
    EXPECT_NE(std::string(error.what()).find("truncated"), std::string::npos)
        << error.what();
  }
}

TEST_F(IoTest, SelfLoopsAndDuplicatesLoadByDefault) {
  // Raw SNAP data legitimately contains both; CsrGraph drops self-loops and
  // keeps duplicates as multi-arcs, so the loader must not reject them
  // unless asked to.
  std::istringstream input("5 5\n0 1\n0 1\n");
  EdgeList list = read_edge_list_text(input);
  EXPECT_EQ(list.edges.size(), 3u);
}

TEST_F(IoTest, StrictValidationRejectsSelfLoops) {
  EdgeListValidation strict;
  strict.reject_self_loops = true;
  expect_rejected_naming_line("0 1\n5 5\n", "self-loop", "2", strict);
}

TEST_F(IoTest, StrictValidationRejectsDuplicateEdges) {
  EdgeListValidation strict;
  strict.reject_duplicates = true;
  expect_rejected_naming_line("0 1\n1 2\n0 1\n", "duplicate", "3", strict);
}

TEST_F(IoTest, TextRoundTripWithoutCompaction) {
  EdgeList original = erdos_renyi(60, 300, 5);
  save_edge_list_text(path("graph.txt"), original);
  EdgeList loaded = load_edge_list_text(path("graph.txt"), /*compact_ids=*/false);
  EXPECT_EQ(loaded.num_vertices, original.num_vertices);
  ASSERT_EQ(loaded.edges.size(), original.edges.size());
  for (std::size_t i = 0; i < loaded.edges.size(); ++i) {
    EXPECT_EQ(loaded.edges[i].source, original.edges[i].source);
    EXPECT_EQ(loaded.edges[i].destination, original.edges[i].destination);
  }
}

TEST_F(IoTest, TextRoundTripWithCompactionPreservesStructure) {
  // Compaction relabels but keeps the multigraph structure: counts of
  // vertices and edges, and the degree multiset.
  EdgeList original = erdos_renyi(60, 300, 5);
  save_edge_list_text(path("graph.txt"), original);
  EdgeList loaded = load_edge_list_text(path("graph.txt"));
  EXPECT_EQ(loaded.num_vertices, original.num_vertices);
  ASSERT_EQ(loaded.edges.size(), original.edges.size());
  std::vector<int> degree_original(60, 0), degree_loaded(60, 0);
  for (const WeightedEdge &e : original.edges) ++degree_original[e.source];
  for (const WeightedEdge &e : loaded.edges) ++degree_loaded[e.source];
  std::sort(degree_original.begin(), degree_original.end());
  std::sort(degree_loaded.begin(), degree_loaded.end());
  EXPECT_EQ(degree_original, degree_loaded);
}

TEST_F(IoTest, LoadTextMissingFileThrows) {
  EXPECT_THROW((void)load_edge_list_text(path("absent.txt")),
               std::runtime_error);
}

TEST_F(IoTest, BinaryRoundTripIsExact) {
  EdgeList original = erdos_renyi(100, 900, 11);
  for (std::size_t i = 0; i < original.edges.size(); ++i)
    original.edges[i].weight = static_cast<float>(i) * 0.001f;
  save_edge_list_binary(path("graph.bin"), original);
  EdgeList loaded = load_edge_list_binary(path("graph.bin"));
  EXPECT_EQ(loaded.num_vertices, original.num_vertices);
  EXPECT_EQ(loaded.edges, original.edges);
}

TEST_F(IoTest, BinaryRejectsWrongMagic) {
  std::ofstream out(path("junk.bin"), std::ios::binary);
  out << "this is not a ripples file at all, padding padding padding";
  out.close();
  EXPECT_THROW((void)load_edge_list_binary(path("junk.bin")),
               std::runtime_error);
}

TEST_F(IoTest, BinaryRejectsTruncatedPayload) {
  EdgeList original = erdos_renyi(50, 400, 13);
  save_edge_list_binary(path("trunc.bin"), original);
  std::filesystem::resize_file(path("trunc.bin"),
                               std::filesystem::file_size(path("trunc.bin")) / 2);
  EXPECT_THROW((void)load_edge_list_binary(path("trunc.bin")),
               std::runtime_error);
}

// A corrupt header declaring an absurd edge count must be diagnosed from
// the file size, not discovered as a multi-terabyte allocation.  The edge
// count in the header is rewritten in place (bytes [16, 24) of the fixed
// layout) so magic, version, and payload stay valid.
TEST_F(IoTest, BinaryRejectsLyingHeaderBeforeAllocating) {
  EdgeList original = erdos_renyi(50, 400, 17);
  save_edge_list_binary(path("liar.bin"), original);
  {
    std::fstream patch(path("liar.bin"),
                       std::ios::binary | std::ios::in | std::ios::out);
    patch.seekp(16);
    const std::uint64_t absurd = 1000ull * 1000 * 1000 * 1000;
    patch.write(reinterpret_cast<const char *>(&absurd), sizeof(absurd));
  }
  try {
    (void)load_edge_list_binary(path("liar.bin"));
    FAIL() << "lying header accepted";
  } catch (const std::runtime_error &error) {
    EXPECT_NE(std::string(error.what()).find("can hold at most"),
              std::string::npos)
        << error.what();
  }
}

// Off-by-one flavour of the same defence: declaring exactly one more edge
// than the payload holds is rejected, declaring exactly the payload count
// loads.
TEST_F(IoTest, BinaryHeaderCapIsExact) {
  EdgeList original = erdos_renyi(30, 200, 19);
  save_edge_list_binary(path("exact.bin"), original);
  EXPECT_NO_THROW((void)load_edge_list_binary(path("exact.bin")));
  {
    std::fstream patch(path("exact.bin"),
                       std::ios::binary | std::ios::in | std::ios::out);
    patch.seekp(16);
    const std::uint64_t one_more = original.edges.size() + 1;
    patch.write(reinterpret_cast<const char *>(&one_more), sizeof(one_more));
  }
  EXPECT_THROW((void)load_edge_list_binary(path("exact.bin")),
               std::runtime_error);
}

TEST_F(IoTest, EmptyEdgeListRoundTrips) {
  EdgeList empty;
  empty.num_vertices = 42;
  save_edge_list_binary(path("empty.bin"), empty);
  EdgeList loaded = load_edge_list_binary(path("empty.bin"));
  EXPECT_EQ(loaded.num_vertices, 42u);
  EXPECT_TRUE(loaded.edges.empty());
}

} // namespace
} // namespace ripples
