// Tests for the fault-injection + recovery stack: plan parsing, deterministic
// crash/stall injection, the abort protocol across every collective shape,
// ULFM-style shrink()/RankFailed recovery, the collective watchdog, and the
// end-to-end self-healing guarantee of imm_distributed (a crashed rank's RRR
// sets are regenerated bit-identically, so the healed run returns exactly the
// failure-free seed set).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "imm/imm.hpp"
#include "mpsim/communicator.hpp"
#include "support/json.hpp"
#include "support/metrics.hpp"
#include "support/steal_schedule.hpp"

namespace ripples::mpsim {
namespace {

// --- fault-plan parsing ------------------------------------------------------

TEST(FaultPlan, ParsesSingleCrashSpec) {
  FaultPlan plan = parse_fault_plan("rank=2,site=17");
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].rank, 2);
  EXPECT_EQ(plan[0].site, 17u);
  EXPECT_EQ(plan[0].kind, FaultSpec::Kind::Crash);
}

TEST(FaultPlan, ParsesExplicitKindsAndMultipleSpecs) {
  FaultPlan plan =
      parse_fault_plan("rank=0,site=3,kind=stall;rank=4,site=9,kind=crash");
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].kind, FaultSpec::Kind::Stall);
  EXPECT_EQ(plan[0].rank, 0);
  EXPECT_EQ(plan[1].kind, FaultSpec::Kind::Crash);
  EXPECT_EQ(plan[1].site, 9u);
}

TEST(FaultPlan, ParsesOomKind) {
  FaultPlan plan = parse_fault_plan("rank=1,site=6,kind=oom");
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].kind, FaultSpec::Kind::Oom);
  EXPECT_EQ(plan[0].rank, 1);
  EXPECT_EQ(plan[0].site, 6u);
}

TEST(FaultPlan, ParsesCorruptKindWithTheStickyModifier) {
  FaultPlan plan =
      parse_fault_plan("rank=1,site=4,kind=corrupt;"
                       "rank=2,site=7,kind=corrupt,sticky");
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].kind, FaultSpec::Kind::Corrupt);
  EXPECT_FALSE(plan[0].sticky);
  EXPECT_EQ(plan[1].kind, FaultSpec::Kind::Corrupt);
  EXPECT_TRUE(plan[1].sticky);
}

TEST(FaultPlan, ParsesFlakyKindWithAttempts) {
  FaultPlan plan =
      parse_fault_plan("rank=0,site=2,kind=flaky;"
                       "rank=1,site=3,kind=flaky,attempts=5");
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].kind, FaultSpec::Kind::Flaky);
  EXPECT_EQ(plan[0].attempts, 1u); // default: fail the first attempt only
  EXPECT_EQ(plan[1].attempts, 5u);
}

TEST(FaultPlan, StickyOnANonCorruptKindThrowsNamingTheSpec) {
  try {
    (void)parse_fault_plan("rank=0,site=1,kind=crash,sticky");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument &error) {
    EXPECT_NE(std::string(error.what()).find("sticky"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("kind=crash,sticky"),
              std::string::npos);
  }
}

TEST(FaultPlan, AttemptsOnANonFlakyKindThrowsNamingTheSpec) {
  try {
    (void)parse_fault_plan("rank=0,site=1,kind=corrupt,attempts=2");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument &error) {
    EXPECT_NE(std::string(error.what()).find("attempts"), std::string::npos);
  }
}

TEST(FaultPlan, ZeroAttemptsThrows) {
  EXPECT_THROW((void)parse_fault_plan("rank=0,site=1,kind=flaky,attempts=0"),
               std::invalid_argument);
}

TEST(FaultPlan, DuplicateRankSitePairThrowsNamingTheSpec) {
  try {
    (void)parse_fault_plan("rank=1,site=4;rank=1,site=4,kind=stall");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument &error) {
    EXPECT_NE(std::string(error.what()).find("duplicate"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("rank=1,site=4,kind=stall"),
              std::string::npos);
  }
}

TEST(FaultPlan, UnknownKindNamesTheAlternatives) {
  try {
    (void)parse_fault_plan("rank=1,site=3,kind=vanish");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument &error) {
    EXPECT_NE(
        std::string(error.what()).find("crash|stall|oom|corrupt|flaky"),
        std::string::npos)
        << error.what();
    EXPECT_NE(std::string(error.what()).find("vanish"), std::string::npos);
  }
}

TEST(FaultPlan, EmptyStringYieldsEmptyPlan) {
  EXPECT_TRUE(parse_fault_plan("").empty());
}

TEST(FaultPlan, MalformedSpecsThrowNamingTheToken) {
  EXPECT_THROW((void)parse_fault_plan("rank=1"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("site=3"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("rank=x,site=3"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("rank=1,site=3,kind=vanish"),
               std::invalid_argument);
  try {
    (void)parse_fault_plan("rank=1,site=2;bogus=7");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument &error) {
    EXPECT_NE(std::string(error.what()).find("bogus"), std::string::npos);
  }
}

TEST(FaultPlan, InjectedFaultMessageIsDeterministic) {
  const InjectedFault a(3, 12, "allreduce");
  const InjectedFault b(3, 12, "allreduce");
  EXPECT_STREQ(a.what(), b.what());
  EXPECT_EQ(a.rank(), 3);
  EXPECT_EQ(a.site(), 12u);
  EXPECT_NE(std::string(a.what()).find("rank 3"), std::string::npos);
  EXPECT_NE(std::string(a.what()).find("site 12"), std::string::npos);
}

// --- abort protocol (recovery disabled) --------------------------------------

RunOptions crash_plan(int ranks, int victim, std::uint64_t site) {
  RunOptions options;
  options.num_ranks = ranks;
  options.faults = {{victim, site, FaultSpec::Kind::Crash}};
  return options;
}

TEST(FaultAbort, CrashUnblocksPeersInAllreduce) {
  RunOptions options = crash_plan(4, 2, 1);
  EXPECT_THROW(Context::run(options,
                            [](Communicator &comm) {
                              std::vector<std::uint64_t> buffer(8, 1);
                              for (;;)
                                comm.allreduce(std::span<std::uint64_t>(buffer),
                                               ReduceOp::Sum);
                            }),
               InjectedFault);
}

TEST(FaultAbort, CrashUnblocksPeersInBroadcast) {
  RunOptions options = crash_plan(4, 0, 2);
  EXPECT_THROW(Context::run(options,
                            [](Communicator &comm) {
                              std::vector<std::uint32_t> buffer(4, 7);
                              for (;;)
                                comm.broadcast(std::span<std::uint32_t>(buffer),
                                               1);
                            }),
               InjectedFault);
}

TEST(FaultAbort, CrashUnblocksPeersInAllgather) {
  RunOptions options = crash_plan(3, 1, 3);
  EXPECT_THROW(Context::run(options,
                            [](Communicator &comm) {
                              for (;;)
                                (void)comm.allgather(
                                    static_cast<std::uint64_t>(comm.rank()));
                            }),
               InjectedFault);
}

TEST(FaultAbort, CrashUnblocksBlockedReceiver) {
  // Rank 0 crashes at its first communication entry; rank 1 is blocked in
  // recv on the channel rank 0 would have served.
  RunOptions options = crash_plan(2, 0, 0);
  EXPECT_THROW(Context::run(options,
                            [](Communicator &comm) {
                              std::uint64_t value = 0;
                              if (comm.rank() == 0) {
                                comm.send(std::span<const std::uint64_t>(&value, 1),
                                          1);
                              } else {
                                comm.recv(std::span<std::uint64_t>(&value, 1), 0);
                              }
                            }),
               InjectedFault);
}

TEST(FaultAbort, CrashUnblocksBlockedSender) {
  // Rank 1 crashes before posting its recv; rank 0 is blocked in the send
  // rendezvous waiting for the payload to be consumed.
  RunOptions options = crash_plan(2, 1, 0);
  EXPECT_THROW(Context::run(options,
                            [](Communicator &comm) {
                              std::uint64_t value = 42;
                              if (comm.rank() == 0) {
                                comm.send(std::span<const std::uint64_t>(&value, 1),
                                          1);
                              } else {
                                comm.recv(std::span<std::uint64_t>(&value, 1), 0);
                              }
                            }),
               InjectedFault);
}

TEST(FaultAbort, SiteCounterIsDeterministicAcrossRuns) {
  // Ten runs of one plan must fail with byte-identical diagnostics: the
  // site counter is per-rank program order, not a scheduling accident.
  std::set<std::string> messages;
  for (int run = 0; run < 10; ++run) {
    RunOptions options = crash_plan(3, 2, 4);
    try {
      Context::run(options, [](Communicator &comm) {
        std::vector<std::uint64_t> buffer(4, 1);
        for (;;) comm.allreduce(std::span<std::uint64_t>(buffer), ReduceOp::Sum);
      });
      FAIL() << "expected InjectedFault";
    } catch (const InjectedFault &fault) {
      EXPECT_EQ(fault.rank(), 2);
      EXPECT_EQ(fault.site(), 4u);
      messages.insert(fault.what());
    }
  }
  EXPECT_EQ(messages.size(), 1u);
}

// --- shrink + recovery -------------------------------------------------------

/// Runs \p body on every rank with recovery enabled and one planned crash,
/// wrapping it in the catch-RankFailed / shrink() retry loop survivors use.
template <typename Body>
void run_with_recovery(RunOptions options, Body body) {
  options.recover = true;
  Context::run(options, [&](Communicator &comm) {
    for (;;) {
      try {
        body(comm);
        return;
      } catch (const RankFailed &) {
        (void)comm.shrink();
      }
    }
  });
}

TEST(FaultRecovery, SurvivorsShrinkAndFinishAllreduce) {
  RunOptions options = crash_plan(4, 2, 2);
  std::atomic<int> finishers{0};
  run_with_recovery(options, [&](Communicator &comm) {
    std::vector<std::uint64_t> buffer(16);
    for (int round = 0; round < 6; ++round) {
      std::fill(buffer.begin(), buffer.end(), 1);
      comm.allreduce(std::span<std::uint64_t>(buffer), ReduceOp::Sum);
      // Every live rank contributed exactly 1 per slot.
      for (std::uint64_t v : buffer)
        ASSERT_EQ(v, static_cast<std::uint64_t>(comm.size()));
    }
    finishers.fetch_add(1);
  });
  EXPECT_EQ(finishers.load(), 3);
}

TEST(FaultRecovery, ShrinkReportsTheDeadAndRenumbersDensely) {
  RunOptions options = crash_plan(4, 0, 1);
  options.recover = true;
  std::atomic<int> checked{0};
  Context::run(options, [&](Communicator &comm) {
    try {
      for (;;) comm.barrier();
    } catch (const RankFailed &failed) {
      EXPECT_EQ(failed.dead_ranks(), std::vector<int>{0});
      ShrinkResult result = comm.shrink();
      EXPECT_EQ(result.newly_dead, std::vector<int>{0});
      EXPECT_EQ(result.members, (std::vector<int>{1, 2, 3}));
      // World rank 1 is now dense rank 0; world identity is immutable.
      EXPECT_EQ(comm.size(), 3);
      EXPECT_EQ(comm.rank(), comm.world_rank() - 1);
      EXPECT_EQ(comm.world_size(), 4);
      checked.fetch_add(1);
    }
  });
  EXPECT_EQ(checked.load(), 3);
}

TEST(FaultRecovery, BroadcastAndAllgatherWorkOnTheShrunkenTeam) {
  RunOptions options = crash_plan(4, 1, 0);
  std::atomic<int> finishers{0};
  run_with_recovery(options, [&](Communicator &comm) {
    // Dense root 0: world rank 0 before the crash surfaces, world rank 0
    // after the shrink too (rank 1 died), but the team is smaller.
    std::vector<std::uint32_t> buffer(4);
    if (comm.rank() == 0) std::iota(buffer.begin(), buffer.end(), 100u);
    comm.broadcast(std::span<std::uint32_t>(buffer), 0);
    for (std::uint32_t i = 0; i < 4; ++i) ASSERT_EQ(buffer[i], 100u + i);

    std::vector<std::uint64_t> gathered =
        comm.allgather(static_cast<std::uint64_t>(comm.world_rank()));
    ASSERT_EQ(gathered.size(), static_cast<std::size_t>(comm.size()));
    for (std::size_t i = 0; i < gathered.size(); ++i)
      ASSERT_EQ(gathered[i],
                static_cast<std::uint64_t>(comm.members()[i]));
    finishers.fetch_add(1);
  });
  EXPECT_EQ(finishers.load(), 3);
}

TEST(FaultRecovery, SendRecvWorkAcrossDenseRanksAfterShrink) {
  RunOptions options = crash_plan(3, 1, 0);
  std::atomic<int> finishers{0};
  run_with_recovery(options, [&](Communicator &comm) {
    if (comm.size() == 3) {
      // Pre-crash team: force everyone into a collective so the crash at
      // rank 1's first entry surfaces as RankFailed for the survivors.
      comm.barrier();
      return;
    }
    // Post-shrink: dense ranks 0 and 1 are world ranks 0 and 2.
    std::uint64_t value = 0;
    if (comm.rank() == 0) {
      value = 77;
      comm.send(std::span<const std::uint64_t>(&value, 1), 1);
    } else {
      comm.recv(std::span<std::uint64_t>(&value, 1), 0);
      EXPECT_EQ(value, 77u);
    }
    finishers.fetch_add(1);
  });
  EXPECT_EQ(finishers.load(), 2);
}

TEST(FaultRecovery, TwoSequentialDeathsShrinkTwice) {
  RunOptions options;
  options.num_ranks = 4;
  options.recover = true;
  options.faults = {{1, 2, FaultSpec::Kind::Crash},
                    {3, 6, FaultSpec::Kind::Crash}};
  std::atomic<int> finishers{0};
  run_with_recovery(options, [&](Communicator &comm) {
    std::vector<std::uint64_t> buffer(4);
    for (int round = 0; round < 10; ++round) {
      std::fill(buffer.begin(), buffer.end(), 1);
      comm.allreduce(std::span<std::uint64_t>(buffer), ReduceOp::Sum);
      for (std::uint64_t v : buffer)
        ASSERT_EQ(v, static_cast<std::uint64_t>(comm.size()));
    }
    EXPECT_EQ(comm.size(), 2);
    finishers.fetch_add(1);
  });
  EXPECT_EQ(finishers.load(), 2);
}

TEST(FaultRecovery, StealRequestToADeadRankNeverHangsOrServesStaleItems) {
  // The steal queues are deliberately outside the abort protocol: a
  // victim's queue stays readable after its owner dies, so a thief's
  // steal-request to a dead rank returns (item or empty) instead of
  // hanging — and after shrink() the dead rank leaves members_, so its
  // stale items become unreachable (healing regenerates those draws; a
  // thief serving them too would execute them twice).
  RunOptions options = crash_plan(3, 1, 1); // publish is site 0; barrier dies
  options.recover = true;
  std::array<std::vector<std::uint64_t>, 3> collected;
  Context::run(options, [&](Communicator &comm) {
    using Item = Communicator::StealItem;
    std::vector<Item> items;
    for (std::uint64_t t = 0; t < 8; ++t) {
      const std::uint64_t tag =
          static_cast<std::uint64_t>(comm.world_rank()) * 100 + t;
      items.push_back({tag, t, t + 1});
    }
    comm.steal_publish(items);
    try {
      for (;;) comm.barrier();
    } catch (const RankFailed &failed) {
      EXPECT_EQ(failed.dead_ranks(), std::vector<int>{1});
      (void)comm.shrink();
    }
    // Survivors drain: own pops plus steals that now scan live members
    // only.  Dead rank 1 published 8 items nobody may ever serve.
    Item item;
    auto &mine = collected[static_cast<std::size_t>(comm.world_rank())];
    for (;;) {
      if (comm.steal_pop(item)) {
        mine.push_back(item.tag);
      } else if (comm.steal_acquire(item)) {
        mine.push_back(item.tag);
      } else {
        break;
      }
    }
  });
  std::vector<std::uint64_t> all;
  for (const auto &part : collected)
    all.insert(all.end(), part.begin(), part.end());
  std::sort(all.begin(), all.end());
  // Exactly the 16 live items, each exactly once, none from the dead rank.
  std::vector<std::uint64_t> expected;
  for (std::uint64_t t = 0; t < 8; ++t) expected.push_back(t);
  for (std::uint64_t t = 0; t < 8; ++t) expected.push_back(200 + t);
  EXPECT_EQ(all, expected);
}

TEST(FaultRecovery, WithoutRecoveryTheOriginalExceptionSurfaces) {
  RunOptions options = crash_plan(3, 1, 1);
  options.recover = false;
  try {
    Context::run(options, [](Communicator &comm) {
      for (;;) comm.barrier();
    });
    FAIL() << "expected InjectedFault";
  } catch (const InjectedFault &fault) {
    EXPECT_EQ(fault.rank(), 1);
    EXPECT_EQ(fault.site(), 1u);
  }
}

TEST(FaultRecovery, EveryRankDeadRethrowsTheFirstFailure) {
  RunOptions options;
  options.num_ranks = 2;
  options.recover = true;
  // Both ranks crash; nobody completes, so the run must surface the error
  // instead of reporting silent success.
  options.faults = {{0, 0, FaultSpec::Kind::Crash},
                    {1, 0, FaultSpec::Kind::Crash}};
  EXPECT_THROW(Context::run(options,
                            [](Communicator &comm) {
                              for (;;) comm.barrier();
                            }),
               InjectedFault);
}

TEST(FaultRecovery, DeathMetricsCountTheFailureEvents) {
  metrics::set_enabled(true);
  metrics::Registry &registry = metrics::Registry::instance();
  const std::uint64_t deaths0 =
      registry.counter("mpsim.faults.dead_ranks").value();
  const std::uint64_t shrinks0 = registry.counter("mpsim.faults.shrinks").value();
  const std::uint64_t crashes0 =
      registry.counter("mpsim.faults.injected_crashes").value();
  RunOptions options = crash_plan(3, 2, 1);
  run_with_recovery(options, [](Communicator &comm) {
    std::vector<std::uint64_t> buffer(2, 1);
    for (int round = 0; round < 4; ++round)
      comm.allreduce(std::span<std::uint64_t>(buffer), ReduceOp::Sum);
  });
  metrics::set_enabled(false);
  EXPECT_EQ(registry.counter("mpsim.faults.dead_ranks").value(), deaths0 + 1);
  EXPECT_EQ(registry.counter("mpsim.faults.shrinks").value(), shrinks0 + 1);
  EXPECT_EQ(registry.counter("mpsim.faults.injected_crashes").value(),
            crashes0 + 1);
}

// --- watchdog ----------------------------------------------------------------

TEST(FaultWatchdog, StallBecomesDiagnosedTimeoutWithinTwiceTheDeadline) {
  RunOptions options;
  options.num_ranks = 3;
  options.watchdog = std::chrono::milliseconds{100};
  options.faults = {{1, 2, FaultSpec::Kind::Stall}};
  const auto start = std::chrono::steady_clock::now();
  try {
    Context::run(options, [](Communicator &comm) {
      std::vector<std::uint64_t> buffer(2, 1);
      for (;;) comm.allreduce(std::span<std::uint64_t>(buffer), ReduceOp::Sum);
    });
    FAIL() << "expected CollectiveTimeout";
  } catch (const CollectiveTimeout &timeout) {
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    EXPECT_EQ(timeout.laggards(), std::vector<int>{1});
    EXPECT_GE(timeout.waited(), options.watchdog);
    EXPECT_LT(timeout.waited(), 2 * options.watchdog);
    EXPECT_NE(std::string(timeout.what()).find("laggard rank(s) 1"),
              std::string::npos);
    // The whole run (including thread teardown) stays bounded too.
    EXPECT_LT(elapsed, std::chrono::milliseconds{2000});
  }
}

TEST(FaultWatchdog, StalledReceiverPeerTimesOutNamingThePeer) {
  RunOptions options;
  options.num_ranks = 2;
  options.watchdog = std::chrono::milliseconds{100};
  // Rank 1 stalls before posting its recv; rank 0's send rendezvous waits.
  options.faults = {{1, 0, FaultSpec::Kind::Stall}};
  try {
    Context::run(options, [](Communicator &comm) {
      std::uint64_t value = 5;
      if (comm.rank() == 0)
        comm.send(std::span<const std::uint64_t>(&value, 1), 1);
      else
        comm.recv(std::span<std::uint64_t>(&value, 1), 0);
    });
    FAIL() << "expected CollectiveTimeout";
  } catch (const CollectiveTimeout &timeout) {
    EXPECT_EQ(timeout.laggards(), std::vector<int>{1});
    EXPECT_LT(timeout.waited(), 2 * options.watchdog);
  }
}

TEST(FaultWatchdog, TimeoutIsNeverHealedEvenWithRecoveryEnabled) {
  RunOptions options;
  options.num_ranks = 3;
  options.recover = true;
  options.watchdog = std::chrono::milliseconds{100};
  options.faults = {{2, 1, FaultSpec::Kind::Stall}};
  EXPECT_THROW(Context::run(options,
                            [](Communicator &comm) {
                              for (;;) {
                                try {
                                  comm.barrier();
                                } catch (const RankFailed &) {
                                  (void)comm.shrink();
                                }
                              }
                            }),
               CollectiveTimeout);
}

// --- stall eviction ----------------------------------------------------------

TEST(FaultEviction, EvictStalledRoutesTheTimeoutIntoShrinkAndSurvivorsFinish) {
  RunOptions options;
  options.num_ranks = 3;
  options.recover = true;
  options.watchdog = std::chrono::milliseconds{100};
  options.evict_stalled = true;
  options.faults = {{1, 2, FaultSpec::Kind::Stall}};
  std::atomic<int> finishers{0};
  Context::run(options, [&](Communicator &comm) {
    std::vector<std::uint64_t> buffer(4);
    for (int round = 0; round < 6; ++round) {
      std::fill(buffer.begin(), buffer.end(), 1);
      try {
        comm.allreduce(std::span<std::uint64_t>(buffer), ReduceOp::Sum);
      } catch (const RankFailed &failed) {
        EXPECT_EQ(failed.dead_ranks(), std::vector<int>{1});
        (void)comm.shrink();
        continue;
      }
      for (std::uint64_t v : buffer)
        ASSERT_EQ(v, static_cast<std::uint64_t>(comm.size()));
    }
    EXPECT_EQ(comm.size(), 2);
    finishers.fetch_add(1);
  });
  EXPECT_EQ(finishers.load(), 2);
}

TEST(FaultEviction, WithoutTheFlagStallsStayDiagnoseOnly) {
  // evict_stalled is opt-in: the PR 3 behavior (CollectiveTimeout, never
  // healed) is unchanged when the flag is off — even with recovery on.
  RunOptions options;
  options.num_ranks = 3;
  options.recover = true;
  options.watchdog = std::chrono::milliseconds{100};
  options.faults = {{1, 1, FaultSpec::Kind::Stall}};
  EXPECT_THROW(Context::run(options,
                            [](Communicator &comm) {
                              for (;;) {
                                try {
                                  comm.barrier();
                                } catch (const RankFailed &) {
                                  (void)comm.shrink();
                                }
                              }
                            }),
               CollectiveTimeout);
}

TEST(FaultEviction, EvictionsAreCounted) {
  metrics::set_enabled(true);
  metrics::Registry &registry = metrics::Registry::instance();
  const std::uint64_t evicted0 =
      registry.counter("mpsim.faults.evicted_stalls").value();
  RunOptions options;
  options.num_ranks = 3;
  options.recover = true;
  options.watchdog = std::chrono::milliseconds{100};
  options.evict_stalled = true;
  options.faults = {{2, 1, FaultSpec::Kind::Stall}};
  Context::run(options, [](Communicator &comm) {
    for (int round = 0; round < 4; ++round) {
      try {
        comm.barrier();
      } catch (const RankFailed &) {
        (void)comm.shrink();
      }
    }
  });
  metrics::set_enabled(false);
  EXPECT_GT(registry.counter("mpsim.faults.evicted_stalls").value(), evicted0);
}

TEST(FaultWatchdog, DisabledWatchdogDoesNotFireOnSlowRanks) {
  RunOptions options;
  options.num_ranks = 2;
  Context::run(options, [](Communicator &comm) {
    if (comm.rank() == 1)
      std::this_thread::sleep_for(std::chrono::milliseconds{30});
    comm.barrier();
  });
}

} // namespace
} // namespace ripples::mpsim

// --- self-healing imm_distributed -------------------------------------------

namespace ripples {
namespace {

CsrGraph healing_graph() {
  CsrGraph graph(barabasi_albert(400, 3, 11));
  assign_uniform_weights(graph, 12);
  return graph;
}

ImmOptions healing_options(RngMode mode) {
  ImmOptions options;
  options.epsilon = 0.5;
  options.k = 8;
  options.model = DiffusionModel::IndependentCascade;
  options.seed = 2019;
  options.num_ranks = 3;
  options.rng_mode = mode;
  return options;
}

class ImmHealing : public ::testing::TestWithParam<RngMode> {};

TEST_P(ImmHealing, CrashAtAnySiteAndRankHealsToTheFailureFreeSeedSet) {
  CsrGraph graph = healing_graph();
  ImmOptions options = healing_options(GetParam());
  const ImmResult clean = imm_distributed(graph, options);
  ASSERT_EQ(clean.seeds.size(), options.k);

  options.recover_failures = true;
  for (int rank = 0; rank < options.num_ranks; ++rank) {
    for (std::uint64_t site : {std::uint64_t{0}, std::uint64_t{3},
                               std::uint64_t{9}}) {
      options.fault_plan = "rank=" + std::to_string(rank) +
                           ",site=" + std::to_string(site);
      const ImmResult healed = imm_distributed(graph, options);
      EXPECT_EQ(healed.seeds, clean.seeds)
          << "healed seed set diverged for " << options.fault_plan;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RngModes, ImmHealing,
                         ::testing::Values(RngMode::CounterSequence,
                                           RngMode::LeapfrogLcg),
                         [](const auto &suite_info) {
                           return suite_info.param == RngMode::CounterSequence
                                      ? "counter"
                                      : "leapfrog";
                         });

class ImmHealingSparse : public ::testing::TestWithParam<RngMode> {};

TEST_P(ImmHealingSparse, CrashAtEverySparseCollectiveSiteHealsBitIdentically) {
  // The sparse protocol multiplies the collectives per selection round
  // (top-m allgatherv, bound allgather, candidate allreduce, dense resync,
  // delta allgatherv), so the site sweep is denser than the dense-path
  // sweep above: sites 0..12 hit every sparse-collective shape across the
  // early rounds, and healing must still reproduce the failure-free (and
  // dense-protocol-identical) seed set.
  CsrGraph graph = healing_graph();
  ImmOptions options = healing_options(GetParam());
  options.selection_exchange = SelectionExchange::Sparse;
  const ImmResult clean = imm_distributed(graph, options);
  ASSERT_EQ(clean.seeds.size(), options.k);
  {
    ImmOptions dense = healing_options(GetParam());
    const ImmResult reference = imm_distributed(graph, dense);
    ASSERT_EQ(clean.seeds, reference.seeds);
  }

  options.recover_failures = true;
  for (int rank = 0; rank < options.num_ranks; ++rank) {
    for (std::uint64_t site = 0; site <= 12; ++site) {
      options.fault_plan = "rank=" + std::to_string(rank) +
                           ",site=" + std::to_string(site);
      const ImmResult healed = imm_distributed(graph, options);
      EXPECT_EQ(healed.seeds, clean.seeds)
          << "sparse healed seed set diverged for " << options.fault_plan;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RngModes, ImmHealingSparse,
                         ::testing::Values(RngMode::CounterSequence,
                                           RngMode::LeapfrogLcg),
                         [](const auto &suite_info) {
                           return suite_info.param == RngMode::CounterSequence
                                      ? "counter"
                                      : "leapfrog";
                         });

TEST(ImmHealing, EvictedStallHealsToTheFailureFreeSeedSet) {
  // PR 3 left stalls diagnose-only; with evict_stalled the watchdog routes
  // the laggard into the same RankFailed -> shrink() -> heal path a crash
  // takes, so a stalled rank costs a watchdog deadline, not the run.
  CsrGraph graph = healing_graph();
  ImmOptions options = healing_options(RngMode::CounterSequence);
  const ImmResult clean = imm_distributed(graph, options);
  ASSERT_EQ(clean.seeds.size(), options.k);

  options.recover_failures = true;
  options.watchdog_ms = 150;
  options.evict_stalled = true;
  options.fault_plan = "rank=1,site=4,kind=stall";
  const ImmResult healed = imm_distributed(graph, options);
  EXPECT_EQ(healed.seeds, clean.seeds);
  EXPECT_EQ(healed.theta, clean.theta);
  EXPECT_EQ(healed.coverage_fraction, clean.coverage_fraction);
}

TEST(ImmStealHealing, CrashAtStealSitesHealsToTheFailureFreeSeedSet) {
  // DESIGN.md §13: with the skewed partition and the steal-everything
  // schedule forced, every rank's early fault sites land on steal publishes
  // and acquires as well as collectives (acquire counts are
  // timing-dependent, so *which* operation a given site names varies run
  // to run — healing must cope with all of them, including a crash
  // mid-migration and subsequent steal-requests to the dead rank's queue).
  // The inventory heal regenerates exactly the complement of the
  // survivors' executed ranges, so every plan must return the
  // failure-free, stealing-off seed set.
  CsrGraph graph = healing_graph();
  ImmOptions options = healing_options(RngMode::CounterSequence);
  const ImmResult clean = imm_distributed(graph, options);
  ASSERT_EQ(clean.seeds.size(), options.k);

  steal_schedule::ScopedPlan forced(
      {steal_schedule::Mode::StealEverything, 0});
  options.steal = StealMode::On;
  options.steal_skew = true;
  {
    const ImmResult stealing = imm_distributed(graph, options);
    ASSERT_EQ(stealing.seeds, clean.seeds) << "fault-free stealing run";
  }

  options.recover_failures = true;
  for (int rank = 0; rank < options.num_ranks; ++rank) {
    for (std::uint64_t site = 0; site <= 12; site += 2) {
      options.fault_plan = "rank=" + std::to_string(rank) +
                           ",site=" + std::to_string(site);
      const ImmResult healed = imm_distributed(graph, options);
      EXPECT_EQ(healed.seeds, clean.seeds)
          << "stealing healed seed set diverged for " << options.fault_plan;
    }
  }
}

TEST(ImmStealHealing, EvictedStallAtAStealSiteHealsToo) {
  // kind=stall coverage for the steal primitive: the stalled rank blocks
  // inside a steal-channel operation, the survivors park in the footprint
  // allreduce, and the watchdog + eviction route the laggard into the same
  // shrink -> inventory-heal path a crash takes.
  CsrGraph graph = healing_graph();
  ImmOptions options = healing_options(RngMode::CounterSequence);
  const ImmResult clean = imm_distributed(graph, options);

  steal_schedule::ScopedPlan forced(
      {steal_schedule::Mode::StealEverything, 0});
  options.steal = StealMode::On;
  options.steal_skew = true;
  options.recover_failures = true;
  options.watchdog_ms = 150;
  options.evict_stalled = true;
  options.fault_plan = "rank=2,site=3,kind=stall";
  const ImmResult healed = imm_distributed(graph, options);
  EXPECT_EQ(healed.seeds, clean.seeds);
  EXPECT_EQ(healed.theta, clean.theta);
  EXPECT_EQ(healed.coverage_fraction, clean.coverage_fraction);
}

TEST(ImmHealing, TenRunsOfOnePlanAreFullyDeterministic) {
  CsrGraph graph = healing_graph();
  ImmOptions options = healing_options(RngMode::CounterSequence);
  const ImmResult clean = imm_distributed(graph, options);

  options.recover_failures = true;
  options.fault_plan = "rank=1,site=5";
  for (int run = 0; run < 10; ++run) {
    const ImmResult healed = imm_distributed(graph, options);
    ASSERT_EQ(healed.seeds, clean.seeds) << "run " << run;
  }
}

TEST(ImmHealing, RegenerationIsCountedInMetrics) {
  CsrGraph graph = healing_graph();
  ImmOptions options = healing_options(RngMode::CounterSequence);
  options.recover_failures = true;
  // Crash late enough that the victim owned samples worth regenerating.
  options.fault_plan = "rank=2,site=9";
  metrics::set_enabled(true);
  const std::uint64_t regen0 =
      metrics::Registry::instance().counter("imm.regen.rrr_sets").value();
  (void)imm_distributed(graph, options);
  metrics::set_enabled(false);
  EXPECT_GT(metrics::Registry::instance().counter("imm.regen.rrr_sets").value(),
            regen0);
}

TEST(ImmHealing, WithoutRecoveryTheInjectedFaultPropagates) {
  CsrGraph graph = healing_graph();
  ImmOptions options = healing_options(RngMode::CounterSequence);
  options.fault_plan = "rank=1,site=5";
  EXPECT_THROW((void)imm_distributed(graph, options), mpsim::InjectedFault);
}

// --- kind=oom: budget refusal composing with healing and checkpointing -------

TEST(ImmOom, RefusalWithoutRecoveryPropagatesTheDiagnostic) {
  // An injected reservation failure walks the whole degradation ladder
  // (compress, shed, stop); the distributed rung-3 policy is a hard refusal
  // naming the consumer — never an unhandled bad_alloc.
  CsrGraph graph = healing_graph();
  ImmOptions options = healing_options(RngMode::CounterSequence);
  options.fault_plan = "rank=1,site=1,kind=oom";
  try {
    (void)imm_distributed(graph, options);
    FAIL() << "injected oom was not diagnosed";
  } catch (const std::exception &error) {
    EXPECT_NE(std::string(error.what()).find("memory budget exceeded"),
              std::string::npos)
        << error.what();
    EXPECT_NE(std::string(error.what()).find("imm_distributed.rrr"),
              std::string::npos)
        << error.what();
  }
}

TEST(ImmOom, RefusedRankHealsLikeACrashedRankAtEverySite) {
  // Composition with recovery: the budget-refused rank is evictable — the
  // survivors shrink, adopt its streams, and regenerate its samples
  // bit-identically, exactly as they would for a crash.
  CsrGraph graph = healing_graph();
  ImmOptions options = healing_options(RngMode::CounterSequence);
  const ImmResult clean = imm_distributed(graph, options);
  ASSERT_EQ(clean.seeds.size(), options.k);

  options.recover_failures = true;
  for (int rank = 0; rank < options.num_ranks; ++rank) {
    for (std::uint64_t site : {std::uint64_t{0}, std::uint64_t{1}}) {
      options.fault_plan = "rank=" + std::to_string(rank) +
                           ",site=" + std::to_string(site) + ",kind=oom";
      const ImmResult healed = imm_distributed(graph, options);
      // The heal guarantee is the crash-heal guarantee: the failure-free
      // *seed set*.  (An oom refusal fires mid-extend, not at a collective
      // boundary, so the martingale may accept one round later than the
      // clean run — theta equality is only promised for boundary faults.)
      EXPECT_EQ(healed.seeds, clean.seeds)
          << "healed seed set diverged for " << options.fault_plan;
      EXPECT_FALSE(healed.degraded) << options.fault_plan;
    }
  }
}

TEST(ImmOom, RefusalFlushesACheckpointAndALargerBudgetResumesBitIdentically) {
  // Composition with checkpointing: the refusal flushes the pending
  // snapshot before throwing, and a rerun with a roomier budget resumes
  // from it — the governor is excluded from the fingerprint — finishing
  // with exactly the failure-free seed set.
  namespace fs = std::filesystem;
  CsrGraph graph = healing_graph();
  ImmOptions options = healing_options(RngMode::CounterSequence);
  const ImmResult clean = imm_distributed(graph, options);

  const fs::path dir =
      fs::path(::testing::TempDir()) / "ripples_oom_resume_ckpt";
  fs::remove_all(dir);
  fs::create_directories(dir);
  options.checkpoint.dir = dir.string();
  options.checkpoint.every = 1;

  // Site 1 is the round-2 admission: the round-1 boundary snapshot
  // is already on disk when the refusal fires.
  options.fault_plan = "rank=0,site=1,kind=oom";
  EXPECT_THROW((void)imm_distributed(graph, options), std::exception);
  ASSERT_FALSE(fs::is_empty(dir)) << "refusal left no snapshot behind";

  options.fault_plan.clear();
  options.checkpoint.resume = true;
  const ImmResult resumed = imm_distributed(graph, options);
  EXPECT_EQ(resumed.seeds, clean.seeds);
  EXPECT_EQ(resumed.theta, clean.theta);
  EXPECT_EQ(resumed.coverage_fraction, clean.coverage_fraction);
  fs::remove_all(dir);
}

TEST(ImmOom, RefusalsAndReservationsAreCounted) {
  CsrGraph graph = healing_graph();
  ImmOptions options = healing_options(RngMode::CounterSequence);
  options.recover_failures = true;
  options.fault_plan = "rank=1,site=1,kind=oom";
  metrics::set_enabled(true);
  const std::uint64_t reservations0 =
      metrics::Registry::instance().counter("mem.budget.reservations").value();
  const std::uint64_t refusals0 =
      metrics::Registry::instance().counter("mem.budget.refusals").value();
  (void)imm_distributed(graph, options);
  metrics::set_enabled(false);
  EXPECT_GT(
      metrics::Registry::instance().counter("mem.budget.reservations").value(),
      reservations0);
  EXPECT_GT(
      metrics::Registry::instance().counter("mem.budget.refusals").value(),
      refusals0);
}

TEST(ImmHealing, FailedRunLeavesAMarkedReport) {
  metrics::set_enabled(true);
  metrics::report_log().clear();
  metrics::mark_run_failed("imm_distributed", "mpsim: injected crash");
  EXPECT_EQ(metrics::report_log().size(), 1u);
  const std::string path = ::testing::TempDir() + "fault_failed_report.json";
  ASSERT_TRUE(metrics::report_log().write_json_file(path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto parsed = JsonValue::parse(buffer.str());
  ASSERT_TRUE(parsed.has_value());
  const JsonValue *reports = parsed->find("reports");
  ASSERT_NE(reports, nullptr);
  ASSERT_EQ(reports->array.size(), 1u);
  const JsonValue *failed = reports->array[0].find("failed");
  ASSERT_NE(failed, nullptr);
  EXPECT_TRUE(failed->boolean);
  const JsonValue *reason = reports->array[0].find("failure_reason");
  ASSERT_NE(reason, nullptr);
  EXPECT_EQ(reason->string, "mpsim: injected crash");
  metrics::report_log().clear();
  metrics::set_enabled(false);
  std::remove(path.c_str());
}

} // namespace
} // namespace ripples
