# Empty dependencies file for bio_coexpression.
# This may be replaced when dependencies are built.
