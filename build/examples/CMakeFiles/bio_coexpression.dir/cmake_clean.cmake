file(REMOVE_RECURSE
  "CMakeFiles/bio_coexpression.dir/bio_coexpression.cpp.o"
  "CMakeFiles/bio_coexpression.dir/bio_coexpression.cpp.o.d"
  "bio_coexpression"
  "bio_coexpression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bio_coexpression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
