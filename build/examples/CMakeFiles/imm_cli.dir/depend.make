# Empty dependencies file for imm_cli.
# This may be replaced when dependencies are built.
