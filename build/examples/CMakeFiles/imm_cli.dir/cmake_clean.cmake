file(REMOVE_RECURSE
  "CMakeFiles/imm_cli.dir/imm_cli.cpp.o"
  "CMakeFiles/imm_cli.dir/imm_cli.cpp.o.d"
  "imm_cli"
  "imm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
