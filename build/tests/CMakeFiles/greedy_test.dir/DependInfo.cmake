
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/greedy_test.cpp" "tests/CMakeFiles/greedy_test.dir/greedy_test.cpp.o" "gcc" "tests/CMakeFiles/greedy_test.dir/greedy_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/imm/CMakeFiles/ripples_imm.dir/DependInfo.cmake"
  "/root/repo/build/src/mpsim/CMakeFiles/ripples_mpsim.dir/DependInfo.cmake"
  "/root/repo/build/src/diffusion/CMakeFiles/ripples_diffusion.dir/DependInfo.cmake"
  "/root/repo/build/src/centrality/CMakeFiles/ripples_centrality.dir/DependInfo.cmake"
  "/root/repo/build/src/bio/CMakeFiles/ripples_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ripples_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/ripples_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ripples_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
