# Empty dependencies file for imm_partitioned_test.
# This may be replaced when dependencies are built.
