file(REMOVE_RECURSE
  "CMakeFiles/imm_partitioned_test.dir/imm_partitioned_test.cpp.o"
  "CMakeFiles/imm_partitioned_test.dir/imm_partitioned_test.cpp.o.d"
  "imm_partitioned_test"
  "imm_partitioned_test.pdb"
  "imm_partitioned_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imm_partitioned_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
