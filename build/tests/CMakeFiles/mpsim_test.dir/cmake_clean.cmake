file(REMOVE_RECURSE
  "CMakeFiles/mpsim_test.dir/mpsim_test.cpp.o"
  "CMakeFiles/mpsim_test.dir/mpsim_test.cpp.o.d"
  "mpsim_test"
  "mpsim_test.pdb"
  "mpsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
