file(REMOVE_RECURSE
  "CMakeFiles/communities_test.dir/communities_test.cpp.o"
  "CMakeFiles/communities_test.dir/communities_test.cpp.o.d"
  "communities_test"
  "communities_test.pdb"
  "communities_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/communities_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
