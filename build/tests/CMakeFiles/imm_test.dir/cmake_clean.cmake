file(REMOVE_RECURSE
  "CMakeFiles/imm_test.dir/imm_test.cpp.o"
  "CMakeFiles/imm_test.dir/imm_test.cpp.o.d"
  "imm_test"
  "imm_test.pdb"
  "imm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
