file(REMOVE_RECURSE
  "CMakeFiles/driver_matrix_test.dir/driver_matrix_test.cpp.o"
  "CMakeFiles/driver_matrix_test.dir/driver_matrix_test.cpp.o.d"
  "driver_matrix_test"
  "driver_matrix_test.pdb"
  "driver_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/driver_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
