# Empty compiler generated dependencies file for rrr_test.
# This may be replaced when dependencies are built.
