file(REMOVE_RECURSE
  "CMakeFiles/rrr_test.dir/rrr_test.cpp.o"
  "CMakeFiles/rrr_test.dir/rrr_test.cpp.o.d"
  "rrr_test"
  "rrr_test.pdb"
  "rrr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
