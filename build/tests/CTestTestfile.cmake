# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/components_test[1]_include.cmake")
include("/root/repo/build/tests/generators_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/mpsim_test[1]_include.cmake")
include("/root/repo/build/tests/diffusion_test[1]_include.cmake")
include("/root/repo/build/tests/rrr_test[1]_include.cmake")
include("/root/repo/build/tests/theta_test[1]_include.cmake")
include("/root/repo/build/tests/select_test[1]_include.cmake")
include("/root/repo/build/tests/sampler_test[1]_include.cmake")
include("/root/repo/build/tests/imm_test[1]_include.cmake")
include("/root/repo/build/tests/imm_partitioned_test[1]_include.cmake")
include("/root/repo/build/tests/driver_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/theory_test[1]_include.cmake")
include("/root/repo/build/tests/greedy_test[1]_include.cmake")
include("/root/repo/build/tests/lineage_test[1]_include.cmake")
include("/root/repo/build/tests/sketches_test[1]_include.cmake")
include("/root/repo/build/tests/centrality_test[1]_include.cmake")
include("/root/repo/build/tests/communities_test[1]_include.cmake")
include("/root/repo/build/tests/pagerank_test[1]_include.cmake")
include("/root/repo/build/tests/bio_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
