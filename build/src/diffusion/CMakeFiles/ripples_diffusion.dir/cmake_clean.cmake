file(REMOVE_RECURSE
  "CMakeFiles/ripples_diffusion.dir/model.cpp.o"
  "CMakeFiles/ripples_diffusion.dir/model.cpp.o.d"
  "CMakeFiles/ripples_diffusion.dir/simulate.cpp.o"
  "CMakeFiles/ripples_diffusion.dir/simulate.cpp.o.d"
  "libripples_diffusion.a"
  "libripples_diffusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripples_diffusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
