# Empty dependencies file for ripples_diffusion.
# This may be replaced when dependencies are built.
