
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/diffusion/model.cpp" "src/diffusion/CMakeFiles/ripples_diffusion.dir/model.cpp.o" "gcc" "src/diffusion/CMakeFiles/ripples_diffusion.dir/model.cpp.o.d"
  "/root/repo/src/diffusion/simulate.cpp" "src/diffusion/CMakeFiles/ripples_diffusion.dir/simulate.cpp.o" "gcc" "src/diffusion/CMakeFiles/ripples_diffusion.dir/simulate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ripples_support.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/ripples_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ripples_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
