file(REMOVE_RECURSE
  "libripples_diffusion.a"
)
