file(REMOVE_RECURSE
  "CMakeFiles/ripples_imm.dir/greedy.cpp.o"
  "CMakeFiles/ripples_imm.dir/greedy.cpp.o.d"
  "CMakeFiles/ripples_imm.dir/imm.cpp.o"
  "CMakeFiles/ripples_imm.dir/imm.cpp.o.d"
  "CMakeFiles/ripples_imm.dir/imm_distributed.cpp.o"
  "CMakeFiles/ripples_imm.dir/imm_distributed.cpp.o.d"
  "CMakeFiles/ripples_imm.dir/imm_partitioned.cpp.o"
  "CMakeFiles/ripples_imm.dir/imm_partitioned.cpp.o.d"
  "CMakeFiles/ripples_imm.dir/lineage.cpp.o"
  "CMakeFiles/ripples_imm.dir/lineage.cpp.o.d"
  "CMakeFiles/ripples_imm.dir/rrr.cpp.o"
  "CMakeFiles/ripples_imm.dir/rrr.cpp.o.d"
  "CMakeFiles/ripples_imm.dir/rrr_collection.cpp.o"
  "CMakeFiles/ripples_imm.dir/rrr_collection.cpp.o.d"
  "CMakeFiles/ripples_imm.dir/sampler.cpp.o"
  "CMakeFiles/ripples_imm.dir/sampler.cpp.o.d"
  "CMakeFiles/ripples_imm.dir/select.cpp.o"
  "CMakeFiles/ripples_imm.dir/select.cpp.o.d"
  "CMakeFiles/ripples_imm.dir/sketches.cpp.o"
  "CMakeFiles/ripples_imm.dir/sketches.cpp.o.d"
  "CMakeFiles/ripples_imm.dir/theta.cpp.o"
  "CMakeFiles/ripples_imm.dir/theta.cpp.o.d"
  "libripples_imm.a"
  "libripples_imm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripples_imm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
