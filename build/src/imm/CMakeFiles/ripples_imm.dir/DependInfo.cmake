
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/imm/greedy.cpp" "src/imm/CMakeFiles/ripples_imm.dir/greedy.cpp.o" "gcc" "src/imm/CMakeFiles/ripples_imm.dir/greedy.cpp.o.d"
  "/root/repo/src/imm/imm.cpp" "src/imm/CMakeFiles/ripples_imm.dir/imm.cpp.o" "gcc" "src/imm/CMakeFiles/ripples_imm.dir/imm.cpp.o.d"
  "/root/repo/src/imm/imm_distributed.cpp" "src/imm/CMakeFiles/ripples_imm.dir/imm_distributed.cpp.o" "gcc" "src/imm/CMakeFiles/ripples_imm.dir/imm_distributed.cpp.o.d"
  "/root/repo/src/imm/imm_partitioned.cpp" "src/imm/CMakeFiles/ripples_imm.dir/imm_partitioned.cpp.o" "gcc" "src/imm/CMakeFiles/ripples_imm.dir/imm_partitioned.cpp.o.d"
  "/root/repo/src/imm/lineage.cpp" "src/imm/CMakeFiles/ripples_imm.dir/lineage.cpp.o" "gcc" "src/imm/CMakeFiles/ripples_imm.dir/lineage.cpp.o.d"
  "/root/repo/src/imm/rrr.cpp" "src/imm/CMakeFiles/ripples_imm.dir/rrr.cpp.o" "gcc" "src/imm/CMakeFiles/ripples_imm.dir/rrr.cpp.o.d"
  "/root/repo/src/imm/rrr_collection.cpp" "src/imm/CMakeFiles/ripples_imm.dir/rrr_collection.cpp.o" "gcc" "src/imm/CMakeFiles/ripples_imm.dir/rrr_collection.cpp.o.d"
  "/root/repo/src/imm/sampler.cpp" "src/imm/CMakeFiles/ripples_imm.dir/sampler.cpp.o" "gcc" "src/imm/CMakeFiles/ripples_imm.dir/sampler.cpp.o.d"
  "/root/repo/src/imm/select.cpp" "src/imm/CMakeFiles/ripples_imm.dir/select.cpp.o" "gcc" "src/imm/CMakeFiles/ripples_imm.dir/select.cpp.o.d"
  "/root/repo/src/imm/sketches.cpp" "src/imm/CMakeFiles/ripples_imm.dir/sketches.cpp.o" "gcc" "src/imm/CMakeFiles/ripples_imm.dir/sketches.cpp.o.d"
  "/root/repo/src/imm/theta.cpp" "src/imm/CMakeFiles/ripples_imm.dir/theta.cpp.o" "gcc" "src/imm/CMakeFiles/ripples_imm.dir/theta.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ripples_support.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/ripples_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ripples_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/diffusion/CMakeFiles/ripples_diffusion.dir/DependInfo.cmake"
  "/root/repo/build/src/mpsim/CMakeFiles/ripples_mpsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
