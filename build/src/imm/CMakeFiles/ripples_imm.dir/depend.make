# Empty dependencies file for ripples_imm.
# This may be replaced when dependencies are built.
