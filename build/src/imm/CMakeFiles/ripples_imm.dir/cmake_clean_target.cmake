file(REMOVE_RECURSE
  "libripples_imm.a"
)
