file(REMOVE_RECURSE
  "libripples_bio.a"
)
