# Empty dependencies file for ripples_bio.
# This may be replaced when dependencies are built.
