file(REMOVE_RECURSE
  "CMakeFiles/ripples_bio.dir/enrichment.cpp.o"
  "CMakeFiles/ripples_bio.dir/enrichment.cpp.o.d"
  "CMakeFiles/ripples_bio.dir/expression.cpp.o"
  "CMakeFiles/ripples_bio.dir/expression.cpp.o.d"
  "CMakeFiles/ripples_bio.dir/inference.cpp.o"
  "CMakeFiles/ripples_bio.dir/inference.cpp.o.d"
  "libripples_bio.a"
  "libripples_bio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripples_bio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
