# Empty dependencies file for ripples_rng.
# This may be replaced when dependencies are built.
