file(REMOVE_RECURSE
  "libripples_rng.a"
)
