file(REMOVE_RECURSE
  "CMakeFiles/ripples_rng.dir/lcg.cpp.o"
  "CMakeFiles/ripples_rng.dir/lcg.cpp.o.d"
  "libripples_rng.a"
  "libripples_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripples_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
