file(REMOVE_RECURSE
  "libripples_graph.a"
)
