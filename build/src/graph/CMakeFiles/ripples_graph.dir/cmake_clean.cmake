file(REMOVE_RECURSE
  "CMakeFiles/ripples_graph.dir/components.cpp.o"
  "CMakeFiles/ripples_graph.dir/components.cpp.o.d"
  "CMakeFiles/ripples_graph.dir/csr.cpp.o"
  "CMakeFiles/ripples_graph.dir/csr.cpp.o.d"
  "CMakeFiles/ripples_graph.dir/generators.cpp.o"
  "CMakeFiles/ripples_graph.dir/generators.cpp.o.d"
  "CMakeFiles/ripples_graph.dir/io.cpp.o"
  "CMakeFiles/ripples_graph.dir/io.cpp.o.d"
  "CMakeFiles/ripples_graph.dir/registry.cpp.o"
  "CMakeFiles/ripples_graph.dir/registry.cpp.o.d"
  "CMakeFiles/ripples_graph.dir/stats.cpp.o"
  "CMakeFiles/ripples_graph.dir/stats.cpp.o.d"
  "CMakeFiles/ripples_graph.dir/weights.cpp.o"
  "CMakeFiles/ripples_graph.dir/weights.cpp.o.d"
  "libripples_graph.a"
  "libripples_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripples_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
