# Empty compiler generated dependencies file for ripples_graph.
# This may be replaced when dependencies are built.
