file(REMOVE_RECURSE
  "libripples_support.a"
)
