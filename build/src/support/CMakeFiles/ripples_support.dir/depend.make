# Empty dependencies file for ripples_support.
# This may be replaced when dependencies are built.
