file(REMOVE_RECURSE
  "CMakeFiles/ripples_support.dir/cli.cpp.o"
  "CMakeFiles/ripples_support.dir/cli.cpp.o.d"
  "CMakeFiles/ripples_support.dir/log.cpp.o"
  "CMakeFiles/ripples_support.dir/log.cpp.o.d"
  "CMakeFiles/ripples_support.dir/memory.cpp.o"
  "CMakeFiles/ripples_support.dir/memory.cpp.o.d"
  "CMakeFiles/ripples_support.dir/table.cpp.o"
  "CMakeFiles/ripples_support.dir/table.cpp.o.d"
  "CMakeFiles/ripples_support.dir/timer.cpp.o"
  "CMakeFiles/ripples_support.dir/timer.cpp.o.d"
  "libripples_support.a"
  "libripples_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripples_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
