file(REMOVE_RECURSE
  "libripples_centrality.a"
)
