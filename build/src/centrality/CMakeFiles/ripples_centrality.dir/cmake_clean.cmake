file(REMOVE_RECURSE
  "CMakeFiles/ripples_centrality.dir/betweenness.cpp.o"
  "CMakeFiles/ripples_centrality.dir/betweenness.cpp.o.d"
  "CMakeFiles/ripples_centrality.dir/communities.cpp.o"
  "CMakeFiles/ripples_centrality.dir/communities.cpp.o.d"
  "CMakeFiles/ripples_centrality.dir/degree.cpp.o"
  "CMakeFiles/ripples_centrality.dir/degree.cpp.o.d"
  "CMakeFiles/ripples_centrality.dir/kcore.cpp.o"
  "CMakeFiles/ripples_centrality.dir/kcore.cpp.o.d"
  "CMakeFiles/ripples_centrality.dir/pagerank.cpp.o"
  "CMakeFiles/ripples_centrality.dir/pagerank.cpp.o.d"
  "libripples_centrality.a"
  "libripples_centrality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripples_centrality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
