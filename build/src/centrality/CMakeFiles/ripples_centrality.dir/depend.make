# Empty dependencies file for ripples_centrality.
# This may be replaced when dependencies are built.
