
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/centrality/betweenness.cpp" "src/centrality/CMakeFiles/ripples_centrality.dir/betweenness.cpp.o" "gcc" "src/centrality/CMakeFiles/ripples_centrality.dir/betweenness.cpp.o.d"
  "/root/repo/src/centrality/communities.cpp" "src/centrality/CMakeFiles/ripples_centrality.dir/communities.cpp.o" "gcc" "src/centrality/CMakeFiles/ripples_centrality.dir/communities.cpp.o.d"
  "/root/repo/src/centrality/degree.cpp" "src/centrality/CMakeFiles/ripples_centrality.dir/degree.cpp.o" "gcc" "src/centrality/CMakeFiles/ripples_centrality.dir/degree.cpp.o.d"
  "/root/repo/src/centrality/kcore.cpp" "src/centrality/CMakeFiles/ripples_centrality.dir/kcore.cpp.o" "gcc" "src/centrality/CMakeFiles/ripples_centrality.dir/kcore.cpp.o.d"
  "/root/repo/src/centrality/pagerank.cpp" "src/centrality/CMakeFiles/ripples_centrality.dir/pagerank.cpp.o" "gcc" "src/centrality/CMakeFiles/ripples_centrality.dir/pagerank.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ripples_support.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ripples_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/ripples_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
