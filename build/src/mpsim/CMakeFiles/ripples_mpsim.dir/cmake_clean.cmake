file(REMOVE_RECURSE
  "CMakeFiles/ripples_mpsim.dir/communicator.cpp.o"
  "CMakeFiles/ripples_mpsim.dir/communicator.cpp.o.d"
  "libripples_mpsim.a"
  "libripples_mpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripples_mpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
