# Empty compiler generated dependencies file for ripples_mpsim.
# This may be replaced when dependencies are built.
