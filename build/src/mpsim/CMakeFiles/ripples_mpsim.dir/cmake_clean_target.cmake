file(REMOVE_RECURSE
  "libripples_mpsim.a"
)
