file(REMOVE_RECURSE
  "CMakeFiles/fig3_epsilon_sweep.dir/fig3_epsilon_sweep.cpp.o"
  "CMakeFiles/fig3_epsilon_sweep.dir/fig3_epsilon_sweep.cpp.o.d"
  "fig3_epsilon_sweep"
  "fig3_epsilon_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_epsilon_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
