file(REMOVE_RECURSE
  "CMakeFiles/case_study_bio.dir/case_study_bio.cpp.o"
  "CMakeFiles/case_study_bio.dir/case_study_bio.cpp.o.d"
  "case_study_bio"
  "case_study_bio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/case_study_bio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
