# Empty dependencies file for case_study_bio.
# This may be replaced when dependencies are built.
