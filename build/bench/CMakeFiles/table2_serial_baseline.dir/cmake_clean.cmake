file(REMOVE_RECURSE
  "CMakeFiles/table2_serial_baseline.dir/table2_serial_baseline.cpp.o"
  "CMakeFiles/table2_serial_baseline.dir/table2_serial_baseline.cpp.o.d"
  "table2_serial_baseline"
  "table2_serial_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_serial_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
