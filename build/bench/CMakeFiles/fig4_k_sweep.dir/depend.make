# Empty dependencies file for fig4_k_sweep.
# This may be replaced when dependencies are built.
