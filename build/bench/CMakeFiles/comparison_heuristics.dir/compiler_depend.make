# Empty compiler generated dependencies file for comparison_heuristics.
# This may be replaced when dependencies are built.
