file(REMOVE_RECURSE
  "CMakeFiles/comparison_heuristics.dir/comparison_heuristics.cpp.o"
  "CMakeFiles/comparison_heuristics.dir/comparison_heuristics.cpp.o.d"
  "comparison_heuristics"
  "comparison_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comparison_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
