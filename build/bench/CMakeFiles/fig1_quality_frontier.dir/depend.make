# Empty dependencies file for fig1_quality_frontier.
# This may be replaced when dependencies are built.
