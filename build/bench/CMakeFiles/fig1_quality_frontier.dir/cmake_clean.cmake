file(REMOVE_RECURSE
  "CMakeFiles/fig1_quality_frontier.dir/fig1_quality_frontier.cpp.o"
  "CMakeFiles/fig1_quality_frontier.dir/fig1_quality_frontier.cpp.o.d"
  "fig1_quality_frontier"
  "fig1_quality_frontier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_quality_frontier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
