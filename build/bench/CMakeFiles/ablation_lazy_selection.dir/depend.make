# Empty dependencies file for ablation_lazy_selection.
# This may be replaced when dependencies are built.
