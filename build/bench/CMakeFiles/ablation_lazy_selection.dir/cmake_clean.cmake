file(REMOVE_RECURSE
  "CMakeFiles/ablation_lazy_selection.dir/ablation_lazy_selection.cpp.o"
  "CMakeFiles/ablation_lazy_selection.dir/ablation_lazy_selection.cpp.o.d"
  "ablation_lazy_selection"
  "ablation_lazy_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lazy_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
