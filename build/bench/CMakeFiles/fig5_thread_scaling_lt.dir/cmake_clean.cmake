file(REMOVE_RECURSE
  "CMakeFiles/fig5_thread_scaling_lt.dir/fig5_thread_scaling_lt.cpp.o"
  "CMakeFiles/fig5_thread_scaling_lt.dir/fig5_thread_scaling_lt.cpp.o.d"
  "fig5_thread_scaling_lt"
  "fig5_thread_scaling_lt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_thread_scaling_lt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
