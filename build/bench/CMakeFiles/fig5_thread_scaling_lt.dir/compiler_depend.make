# Empty compiler generated dependencies file for fig5_thread_scaling_lt.
# This may be replaced when dependencies are built.
