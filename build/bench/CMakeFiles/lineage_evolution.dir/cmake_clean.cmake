file(REMOVE_RECURSE
  "CMakeFiles/lineage_evolution.dir/lineage_evolution.cpp.o"
  "CMakeFiles/lineage_evolution.dir/lineage_evolution.cpp.o.d"
  "lineage_evolution"
  "lineage_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lineage_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
