# Empty dependencies file for lineage_evolution.
# This may be replaced when dependencies are built.
