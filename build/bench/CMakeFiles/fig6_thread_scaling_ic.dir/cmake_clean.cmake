file(REMOVE_RECURSE
  "CMakeFiles/fig6_thread_scaling_ic.dir/fig6_thread_scaling_ic.cpp.o"
  "CMakeFiles/fig6_thread_scaling_ic.dir/fig6_thread_scaling_ic.cpp.o.d"
  "fig6_thread_scaling_ic"
  "fig6_thread_scaling_ic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_thread_scaling_ic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
