# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig6_thread_scaling_ic.
