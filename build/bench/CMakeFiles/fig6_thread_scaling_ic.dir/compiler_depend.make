# Empty compiler generated dependencies file for fig6_thread_scaling_ic.
# This may be replaced when dependencies are built.
