file(REMOVE_RECURSE
  "CMakeFiles/ablation_rng_streams.dir/ablation_rng_streams.cpp.o"
  "CMakeFiles/ablation_rng_streams.dir/ablation_rng_streams.cpp.o.d"
  "ablation_rng_streams"
  "ablation_rng_streams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rng_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
