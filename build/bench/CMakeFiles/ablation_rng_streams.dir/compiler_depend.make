# Empty compiler generated dependencies file for ablation_rng_streams.
# This may be replaced when dependencies are built.
