# Empty dependencies file for sketch_oracle.
# This may be replaced when dependencies are built.
