file(REMOVE_RECURSE
  "CMakeFiles/sketch_oracle.dir/sketch_oracle.cpp.o"
  "CMakeFiles/sketch_oracle.dir/sketch_oracle.cpp.o.d"
  "sketch_oracle"
  "sketch_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketch_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
