# Empty compiler generated dependencies file for table3_speedup_summary.
# This may be replaced when dependencies are built.
