file(REMOVE_RECURSE
  "CMakeFiles/fig7_dist_scaling_puma.dir/fig7_dist_scaling_puma.cpp.o"
  "CMakeFiles/fig7_dist_scaling_puma.dir/fig7_dist_scaling_puma.cpp.o.d"
  "fig7_dist_scaling_puma"
  "fig7_dist_scaling_puma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_dist_scaling_puma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
