# Empty compiler generated dependencies file for fig7_dist_scaling_puma.
# This may be replaced when dependencies are built.
