# Empty dependencies file for fig2_theta_growth.
# This may be replaced when dependencies are built.
