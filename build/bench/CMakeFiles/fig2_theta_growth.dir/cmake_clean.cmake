file(REMOVE_RECURSE
  "CMakeFiles/fig2_theta_growth.dir/fig2_theta_growth.cpp.o"
  "CMakeFiles/fig2_theta_growth.dir/fig2_theta_growth.cpp.o.d"
  "fig2_theta_growth"
  "fig2_theta_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_theta_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
