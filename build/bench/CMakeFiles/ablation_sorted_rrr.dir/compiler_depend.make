# Empty compiler generated dependencies file for ablation_sorted_rrr.
# This may be replaced when dependencies are built.
