file(REMOVE_RECURSE
  "CMakeFiles/ablation_sorted_rrr.dir/ablation_sorted_rrr.cpp.o"
  "CMakeFiles/ablation_sorted_rrr.dir/ablation_sorted_rrr.cpp.o.d"
  "ablation_sorted_rrr"
  "ablation_sorted_rrr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sorted_rrr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
