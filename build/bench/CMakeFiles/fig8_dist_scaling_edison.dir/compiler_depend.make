# Empty compiler generated dependencies file for fig8_dist_scaling_edison.
# This may be replaced when dependencies are built.
