file(REMOVE_RECURSE
  "CMakeFiles/fig8_dist_scaling_edison.dir/fig8_dist_scaling_edison.cpp.o"
  "CMakeFiles/fig8_dist_scaling_edison.dir/fig8_dist_scaling_edison.cpp.o.d"
  "fig8_dist_scaling_edison"
  "fig8_dist_scaling_edison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_dist_scaling_edison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
