# Empty compiler generated dependencies file for ablation_graph_partition.
# This may be replaced when dependencies are built.
