file(REMOVE_RECURSE
  "CMakeFiles/ablation_graph_partition.dir/ablation_graph_partition.cpp.o"
  "CMakeFiles/ablation_graph_partition.dir/ablation_graph_partition.cpp.o.d"
  "ablation_graph_partition"
  "ablation_graph_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_graph_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
