/// \file fig4_k_sweep.cpp
/// \brief Reproduces Figure 4: impact of the seed-set size k on runtime
/// (eps=0.5, IC, multithreaded), phase-decomposed per dataset.
///
/// Figure 4's shapes: runtime grows with k (because theta does), and the
/// SelectSeeds share grows with k faster than the sampling share.
#include "bench_common.hpp"

using namespace ripples;
using namespace ripples::bench;

int main(int argc, char **argv) {
  CommandLine cli(argc, argv);
  BenchConfig config = BenchConfig::parse(cli, /*default_scale=*/0.01);
  const double epsilon = cli.get("epsilon", 0.5);

  std::vector<std::string> datasets = {"cit-HepTh", "soc-Epinions1",
                                       "com-DBLP", "com-YouTube"};
  std::vector<std::uint32_t> ks = {10, 40, 70, 100};
  if (config.full) {
    datasets = {"cit-HepTh",   "soc-Epinions1", "com-Amazon",
                "com-DBLP",    "com-YouTube",   "soc-Pokec",
                "soc-LiveJournal1", "com-Orkut"};
    ks = {10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  }

  std::vector<std::string> header = {"Graph", "k"};
  header.insert(header.end(), kPhaseHeader.begin(), kPhaseHeader.end());
  Table table("Figure 4: impact of k on runtime (eps=0.5, IC)", header);

  for (const std::string &dataset : datasets) {
    CsrGraph graph = build_input(dataset, config,
                                 DiffusionModel::IndependentCascade);
    print_input_banner(dataset, graph, config);
    for (std::uint32_t k : ks) {
      ImmOptions options;
      options.epsilon = epsilon;
      options.k = k;
      options.seed = config.seed;
      options.num_threads = config.threads;
      ImmResult result = imm_multithreaded(graph, options);
      TableRow &row = table.new_row();
      row.add(dataset).add(k);
      add_phase_columns(row, result);
    }
  }

  table.emit(config.csv_path);
  std::printf("\nExpected shape (Figure 4): totals rise with k, with the\n"
              "SelectSeeds fraction growing fastest.\n");
  return 0;
}
