/// \file fig5_thread_scaling_lt.cpp
/// \brief Reproduces Figure 5: multithreaded strong scaling under the
/// Linear Threshold model (eps=0.5, k=100, up to 20 threads in --full).
#include "thread_scaling.hpp"

int main(int argc, char **argv) {
  return ripples::bench::run_thread_scaling(
      argc, argv, ripples::DiffusionModel::LinearThreshold, "Figure 5");
}
