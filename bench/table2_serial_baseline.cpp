/// \file table2_serial_baseline.cpp
/// \brief Reproduces Table 2: serial IMM (hypergraph storage, Tang et
/// al. style) vs IMMOPT (compact storage) — execution time and peak RRR
/// memory at eps = 0.5, k = 50, IC model.
///
/// The paper reports 2.4-4.2x runtime speedups and 18-58% memory savings
/// for IMMOPT.  This bench runs both serial implementations on each
/// SNAP-surrogate and prints measured time/memory next to the paper's
/// published numbers.  Default: the four smallest datasets at a small
/// scale; --full runs all eight.
#include "bench_common.hpp"

using namespace ripples;
using namespace ripples::bench;

int main(int argc, char **argv) {
  CommandLine cli(argc, argv);
  BenchConfig config = BenchConfig::parse(cli, /*default_scale=*/0.03);

  std::vector<std::string> datasets = {"cit-HepTh", "soc-Epinions1",
                                       "com-Amazon", "com-DBLP"};
  if (config.full)
    for (const std::string &name :
         {"com-YouTube", "soc-Pokec", "soc-LiveJournal1", "com-Orkut"})
      datasets.push_back(name);

  ImmOptions options;
  options.epsilon = cli.get("epsilon", 0.5);
  options.k = static_cast<std::uint32_t>(cli.get("k", std::int64_t{50}));
  options.seed = config.seed;

  Table table("Table 2: serial IMM vs IMMOPT (eps=0.5, k=50, IC)",
              {"Graph", "IMM(s)", "IMMOPT(s)", "Speedup", "IMM(MB)",
               "IMMOPT(MB)", "Savings%", "PaperSpeedup", "PaperSavings%"});

  for (const std::string &dataset : datasets) {
    CsrGraph graph = build_input(dataset, config,
                                 DiffusionModel::IndependentCascade);
    print_input_banner(dataset, graph, config);

    ImmResult baseline = imm_baseline_hypergraph(graph, options);
    ImmResult optimized = imm_sequential(graph, options);

    const double mb = 1024.0 * 1024.0;
    double baseline_mb = static_cast<double>(baseline.rrr_peak_bytes) / mb;
    double optimized_mb = static_cast<double>(optimized.rrr_peak_bytes) / mb;
    double savings = 100.0 * (1.0 - optimized_mb / baseline_mb);

    const PaperReference &paper = find_dataset(dataset).paper;
    double paper_speedup = paper.imm_seconds > 0 && paper.immopt_seconds > 0
                               ? paper.imm_seconds / paper.immopt_seconds
                               : -1;
    double paper_savings =
        paper.imm_megabytes > 0 && paper.immopt_megabytes > 0
            ? 100.0 * (1.0 - paper.immopt_megabytes / paper.imm_megabytes)
            : -1;

    table.new_row()
        .add(dataset)
        .add(baseline.timers.total(), 2)
        .add(optimized.timers.total(), 2)
        .add(baseline.timers.total() / optimized.timers.total(), 2)
        .add(baseline_mb, 2)
        .add(optimized_mb, 2)
        .add(savings, 1)
        .add(paper_speedup, 2)
        .add(paper_savings, 1);
  }

  table.emit(config.csv_path);
  std::printf("\nPaper columns: -1.00 marks values the paper could not "
              "measure (its Massif instrumentation ran out of memory).\n");
  return 0;
}
