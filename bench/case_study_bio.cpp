/// \file case_study_bio.cpp
/// \brief Reproduces the Section 5 case study: influence maximization on
/// inferred co-expression networks vs degree and betweenness centrality,
/// compared by pathway enrichment (Fisher's exact test, BH-adjusted).
///
/// The paper analyzes two multi-omics datasets (human tumor samples; a soil
/// microbial community), infers GENIE3 co-expression networks, takes the
/// top-200 features per method and counts significantly enriched MSIG
/// pathways: IMM 372, betweenness 159, degree 614 — with IMM's top pathways
/// the most disease-specific, and a partial overlap between IMM and degree
/// picks (9/30 in the soil data).  This bench runs the same pipeline on two
/// synthetic datasets with planted modules (see DESIGN.md for the
/// substitution argument) and prints the same comparisons.
#include <algorithm>
#include <set>

#include "bench_common.hpp"

using namespace ripples;
using namespace ripples::bench;

namespace {

struct CaseStudyDataset {
  const char *name;
  bio::ExpressionConfig expression;
};

struct MethodSelection {
  const char *method;
  std::vector<std::uint32_t> selected;
};

} // namespace

int main(int argc, char **argv) {
  CommandLine cli(argc, argv);
  BenchConfig config = BenchConfig::parse(cli, /*default_scale=*/1.0);
  const auto k = static_cast<std::uint32_t>(cli.get("k", std::int64_t{32}));

  // Two synthetic stand-ins: "tumor-like" (more features, strong modules —
  // proteomic/transcriptomic) and "soil-like" (fewer, noisier modules —
  // metabolomic/metatranscriptomic).
  CaseStudyDataset datasets[2];
  datasets[0].name = "tumor-like";
  datasets[0].expression = {.num_features = 800,
                            .num_samples = 60,
                            .num_modules = 4,
                            .module_fraction = 0.225,
                            .module_correlation = 0.7,
                            .seed = config.seed};
  datasets[1].name = "soil-like";
  datasets[1].expression = {.num_features = 600,
                            .num_samples = 40,
                            .num_modules = 5,
                            .module_fraction = 0.3,
                            .module_correlation = 0.65,
                            .seed = config.seed + 1};

  Table table("Section 5 case study: enriched pathways per selection method",
              {"Dataset", "Method", "SignificantPathways", "ModuleAligned",
               "TopPathway", "OverlapWithIMM"});

  for (const CaseStudyDataset &dataset : datasets) {
    bio::ExpressionMatrix matrix = bio::synthesize_expression(dataset.expression);

    bio::InferenceConfig inference;
    inference.edges_per_target = 6;
    inference.min_abs_correlation = 0.5;
    EdgeList network = bio::infer_coexpression_network(matrix, inference);
    CsrGraph graph(network);
    // Calibrate relevance weights into activation probabilities (see
    // DESIGN.md / the integration test): raw |r| saturates whole modules.
    graph.transform_weights([](float w) { return 0.12f * w; });

    GraphStats stats = compute_stats(graph);
    std::printf("[input] %-10s features=%u samples=%u edges=%llu\n",
                dataset.name, matrix.num_features(),
                matrix.num_samples(),
                static_cast<unsigned long long>(stats.num_edges));

    // Method 1: IMM.
    ImmOptions options;
    options.epsilon = 0.5;
    options.k = k;
    options.seed = config.seed + 2;
    options.num_threads = config.threads;
    ImmResult imm = imm_multithreaded(graph, options);

    // Methods 2-3: topological centrality rankings (the paper's reference
    // measures).
    std::vector<std::uint32_t> degree = degree_centrality(graph);
    auto degree_top = top_k_by_score(std::span<const std::uint32_t>(degree), k);
    std::vector<double> betweenness = betweenness_centrality(graph);
    auto betweenness_top =
        top_k_by_score(std::span<const double>(betweenness), k);

    MethodSelection methods[3];
    methods[0] = {"IMM", {imm.seeds.begin(), imm.seeds.end()}};
    methods[1] = {"degree", {degree_top.begin(), degree_top.end()}};
    methods[2] = {"betweenness",
                  {betweenness_top.begin(), betweenness_top.end()}};

    bio::PathwayConfig pathway_config;
    pathway_config.member_fraction = 0.8;
    pathway_config.num_random_pathways = 20;
    pathway_config.seed = config.seed + 3;
    bio::PathwayDatabase database =
        bio::synthesize_pathways(matrix, pathway_config);

    std::set<std::uint32_t> imm_set(methods[0].selected.begin(),
                                    methods[0].selected.end());
    for (const MethodSelection &method : methods) {
      auto rows = bio::enrich(method.selected, database, matrix.num_features());
      std::size_t significant = bio::count_significant(rows, 0.05);
      std::size_t module_aligned = 0;
      for (const bio::EnrichmentRow &row : rows)
        if (row.p_adjusted < 0.05 &&
            database.pathways[row.pathway_index].name.rfind("module", 0) == 0)
          ++module_aligned;
      std::size_t overlap = 0;
      for (std::uint32_t f : method.selected) overlap += imm_set.count(f);
      table.new_row()
          .add(dataset.name)
          .add(method.method)
          .add(significant)
          .add(module_aligned)
          .add(rows.empty() ? "-" : database.pathways[rows[0].pathway_index].name)
          .add(overlap);
    }
  }

  table.emit(config.csv_path);
  std::printf(
      "\nPaper's observations to compare against: every method enriches real\n"
      "('module*') pathways; IMM's and degree's picks overlap only partially\n"
      "(the paper saw 9/30), i.e. IMM supplies complementary information;\n"
      "random pathways (the nulls) should almost never appear significant.\n");
  return 0;
}
