/// \file ablation_rng_streams.cpp
/// \brief Ablation for design decision #5 (DESIGN.md): parallel
/// pseudorandom-stream discipline in the distributed sampler.
///
/// The paper stresses that "accurate generation of pseudorandom numbers in
/// parallel is critical to guarantee the approximation bounds" and adopts
/// leap-frog LCG splitting.  This bench compares three disciplines at equal
/// rank counts:
///
///   counter   — per-sample Philox streams (library default);
///   leapfrog  — the paper's leap-frog split of one global LCG;
///   naive     — every rank seeds the SAME LCG (the bug the paper guards
///               against): ranks draw identical subsequences, so the
///               collection R collapses to p copies of one rank's samples.
///
/// Reported per discipline: fraction of duplicated samples across ranks and
/// the Monte-Carlo influence of the selected seeds.  The naive scheme's
/// duplicate fraction approaches (p-1)/p and its effective sample count
/// drops by p, which is exactly the failure mode stream splitting prevents.
#include <map>

#include "bench_common.hpp"

using namespace ripples;
using namespace ripples::bench;

namespace {

enum class Discipline { Counter, Leapfrog, NaiveSameSeed };

const char *name_of(Discipline d) {
  switch (d) {
  case Discipline::Counter: return "counter";
  case Discipline::Leapfrog: return "leapfrog";
  case Discipline::NaiveSameSeed: return "naive-same-seed";
  }
  return "?";
}

/// Generates theta samples split across p simulated ranks under the given
/// discipline, returning the union (all ranks' partitions concatenated).
std::vector<RRRSet> sample_with_discipline(const CsrGraph &graph,
                                           std::uint64_t theta, int p,
                                           std::uint64_t seed, Discipline d) {
  std::vector<RRRSet> all;
  all.reserve(theta);
  for (int rank = 0; rank < p; ++rank) {
    RRRGenerator generator(graph);
    std::uint64_t count =
        theta / static_cast<std::uint64_t>(p) +
        (static_cast<std::uint64_t>(rank) < theta % static_cast<std::uint64_t>(p)
             ? 1
             : 0);
    switch (d) {
    case Discipline::Counter: {
      for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t global = static_cast<std::uint64_t>(rank) +
                               i * static_cast<std::uint64_t>(p);
        Philox4x32 rng = sample_stream(seed, global);
        RRRSet set;
        generator.generate_random_root(DiffusionModel::IndependentCascade, rng,
                                       set);
        all.push_back(std::move(set));
      }
      break;
    }
    case Discipline::Leapfrog: {
      Lcg64 rng = Lcg64(seed).leapfrog(static_cast<std::uint64_t>(rank),
                                       static_cast<std::uint64_t>(p));
      for (std::uint64_t i = 0; i < count; ++i) {
        RRRSet set;
        generator.generate_random_root(DiffusionModel::IndependentCascade, rng,
                                       set);
        all.push_back(std::move(set));
      }
      break;
    }
    case Discipline::NaiveSameSeed: {
      Lcg64 rng(seed); // the bug: every rank consumes the same sequence
      for (std::uint64_t i = 0; i < count; ++i) {
        RRRSet set;
        generator.generate_random_root(DiffusionModel::IndependentCascade, rng,
                                       set);
        all.push_back(std::move(set));
      }
      break;
    }
    }
  }
  return all;
}

double duplicate_fraction(const std::vector<RRRSet> &samples) {
  std::map<RRRSet, int> histogram;
  for (const RRRSet &sample : samples) ++histogram[sample];
  std::size_t duplicates = samples.size() - histogram.size();
  return static_cast<double>(duplicates) / static_cast<double>(samples.size());
}

} // namespace

int main(int argc, char **argv) {
  CommandLine cli(argc, argv);
  BenchConfig config = BenchConfig::parse(cli, /*default_scale=*/0.02);
  const auto k = static_cast<std::uint32_t>(cli.get("k", std::int64_t{20}));
  const auto theta =
      static_cast<std::uint64_t>(cli.get("theta", std::int64_t{4000}));
  const auto trials =
      static_cast<std::uint32_t>(cli.get("trials", std::int64_t{300}));

  CsrGraph graph = build_input("soc-Epinions1", config,
                               DiffusionModel::IndependentCascade);
  print_input_banner("soc-Epinions1", graph, config);

  std::vector<int> rank_counts = {2, 8};
  if (config.full) rank_counts = {2, 4, 8, 16, 32};

  Table table("Ablation: parallel RNG stream discipline (IC)",
              {"Ranks", "Discipline", "DuplicateFrac", "EffectiveSamples",
               "Influence", "StdErr"});

  for (int p : rank_counts) {
    for (Discipline d : {Discipline::Counter, Discipline::Leapfrog,
                         Discipline::NaiveSameSeed}) {
      std::vector<RRRSet> samples =
          sample_with_discipline(graph, theta, p, config.seed, d);
      double dup = duplicate_fraction(samples);
      SelectionResult selection =
          select_seeds(graph.num_vertices(), k, samples);
      InfluenceEstimate influence = estimate_influence(
          graph, selection.seeds, DiffusionModel::IndependentCascade, trials,
          config.seed + 5);
      table.new_row()
          .add(p)
          .add(name_of(d))
          .add(dup, 3)
          .add(static_cast<std::uint64_t>(
              (1.0 - dup) * static_cast<double>(samples.size())))
          .add(influence.mean, 1)
          .add(influence.std_error, 1);
    }
  }

  table.emit(config.csv_path);
  std::printf("\nExpected: counter and leapfrog keep duplicates near the\n"
              "birthday-collision floor independent of p; naive-same-seed\n"
              "duplicates ~(p-1)/p of its samples, shrinking the effective\n"
              "collection by p and (on tight budgets) degrading influence.\n");
  return 0;
}
