/// \file fig6_thread_scaling_ic.cpp
/// \brief Reproduces Figure 6: multithreaded strong scaling under the
/// Independent Cascade model (eps=0.5, k=100, up to 20 threads in --full).
#include "thread_scaling.hpp"

int main(int argc, char **argv) {
  return ripples::bench::run_thread_scaling(
      argc, argv, ripples::DiffusionModel::IndependentCascade, "Figure 6");
}
