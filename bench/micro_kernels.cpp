/// \file micro_kernels.cpp
/// \brief google-benchmark microbenchmarks of the library's hot kernels:
/// RRR generation (IC/LT), membership counting, seed selection, the mpsim
/// allreduce, CSR construction, and the forward simulators.
///
/// These are for regression tracking of the kernels the tables/figures are
/// built from; the table/figure binaries themselves are the reproduction
/// harness.
#include <benchmark/benchmark.h>

#include "ripples/ripples.hpp"

namespace ripples {
namespace {

const CsrGraph &shared_graph() {
  static CsrGraph graph = [] {
    CsrGraph g(barabasi_albert(8192, 4, 1));
    assign_uniform_weights(g, 2);
    return g;
  }();
  return graph;
}

const CsrGraph &shared_graph_lt() {
  static CsrGraph graph = [] {
    CsrGraph g(barabasi_albert(8192, 4, 1));
    assign_uniform_weights(g, 2);
    renormalize_linear_threshold(g);
    return g;
  }();
  return graph;
}

void BM_GenerateRR_IC(benchmark::State &state) {
  const CsrGraph &graph = shared_graph();
  RRRGenerator generator(graph);
  RRRSet set;
  std::uint64_t index = 0;
  std::size_t vertices = 0;
  for (auto _ : state) {
    Philox4x32 rng = sample_stream(7, index++);
    generator.generate_random_root(DiffusionModel::IndependentCascade, rng, set);
    vertices += set.size();
    benchmark::DoNotOptimize(set.data());
  }
  state.counters["vertices/set"] =
      static_cast<double>(vertices) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_GenerateRR_IC);

void BM_GenerateRR_LT(benchmark::State &state) {
  const CsrGraph &graph = shared_graph_lt();
  RRRGenerator generator(graph);
  RRRSet set;
  std::uint64_t index = 0;
  for (auto _ : state) {
    Philox4x32 rng = sample_stream(7, index++);
    generator.generate_random_root(DiffusionModel::LinearThreshold, rng, set);
    benchmark::DoNotOptimize(set.data());
  }
}
BENCHMARK(BM_GenerateRR_LT);

void BM_CountMemberships(benchmark::State &state) {
  const CsrGraph &graph = shared_graph();
  RRRCollection collection;
  sample_sequential(graph, DiffusionModel::IndependentCascade,
                    static_cast<std::uint64_t>(state.range(0)), 7, collection);
  std::vector<std::uint32_t> counters(graph.num_vertices());
  for (auto _ : state) {
    std::fill(counters.begin(), counters.end(), 0);
    count_memberships(collection.sets(), counters);
    benchmark::DoNotOptimize(counters.data());
  }
}
BENCHMARK(BM_CountMemberships)->Arg(256)->Arg(1024);

void BM_SelectSeeds(benchmark::State &state) {
  const CsrGraph &graph = shared_graph();
  RRRCollection collection;
  sample_sequential(graph, DiffusionModel::IndependentCascade, 1024, 7,
                    collection);
  for (auto _ : state) {
    SelectionResult result = select_seeds(
        graph.num_vertices(), static_cast<std::uint32_t>(state.range(0)),
        collection.sets());
    benchmark::DoNotOptimize(result.seeds.data());
  }
}
BENCHMARK(BM_SelectSeeds)->Arg(10)->Arg(50);

void BM_Allreduce(benchmark::State &state) {
  const auto ranks = static_cast<int>(state.range(0));
  const std::size_t length = 1 << 16;
  for (auto _ : state) {
    mpsim::Context::run(ranks, [&](mpsim::Communicator &comm) {
      std::vector<std::uint32_t> buffer(length, 1);
      comm.allreduce(std::span<std::uint32_t>(buffer), mpsim::ReduceOp::Sum);
      benchmark::DoNotOptimize(buffer.data());
    });
  }
}
BENCHMARK(BM_Allreduce)->Arg(2)->Arg(8);

void BM_CsrConstruction(benchmark::State &state) {
  EdgeList list = barabasi_albert(4096, 4, 3);
  for (auto _ : state) {
    CsrGraph graph(list);
    benchmark::DoNotOptimize(graph.num_edges());
  }
}
BENCHMARK(BM_CsrConstruction);

void BM_SimulateDiffusion_IC(benchmark::State &state) {
  const CsrGraph &graph = shared_graph();
  std::vector<vertex_t> seeds{0, 1, 2, 3, 4};
  std::uint64_t trial = 0;
  for (auto _ : state) {
    std::size_t activated = simulate_diffusion(
        graph, seeds, DiffusionModel::IndependentCascade, trial++);
    benchmark::DoNotOptimize(activated);
  }
}
BENCHMARK(BM_SimulateDiffusion_IC);

void BM_LcgLeapfrogSetup(benchmark::State &state) {
  Lcg64 base(42);
  std::uint64_t stream = 0;
  for (auto _ : state) {
    Lcg64 sub = base.leapfrog(stream % 1024, 1024);
    benchmark::DoNotOptimize(sub);
    ++stream;
  }
}
BENCHMARK(BM_LcgLeapfrogSetup);

} // namespace
} // namespace ripples

BENCHMARK_MAIN();
