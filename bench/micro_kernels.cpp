/// \file micro_kernels.cpp
/// \brief google-benchmark microbenchmarks of the library's hot kernels:
/// RRR generation (IC/LT), membership counting, seed selection, the mpsim
/// allreduce, CSR construction, and the forward simulators.
///
/// These are for regression tracking of the kernels the tables/figures are
/// built from; the table/figure binaries themselves are the reproduction
/// harness.
#include <benchmark/benchmark.h>

#include <array>

#include "ripples/ripples.hpp"

namespace ripples {
namespace {

const CsrGraph &shared_graph() {
  static CsrGraph graph = [] {
    CsrGraph g(barabasi_albert(8192, 4, 1));
    assign_uniform_weights(g, 2);
    return g;
  }();
  return graph;
}

const CsrGraph &shared_graph_lt() {
  static CsrGraph graph = [] {
    CsrGraph g(barabasi_albert(8192, 4, 1));
    assign_uniform_weights(g, 2);
    renormalize_linear_threshold(g);
    return g;
  }();
  return graph;
}

void BM_GenerateRR_IC(benchmark::State &state) {
  const CsrGraph &graph = shared_graph();
  RRRGenerator generator(graph);
  RRRSet set;
  std::uint64_t index = 0;
  std::size_t vertices = 0;
  for (auto _ : state) {
    Philox4x32 rng = sample_stream(7, index++);
    generator.generate_random_root(DiffusionModel::IndependentCascade, rng, set);
    vertices += set.size();
    benchmark::DoNotOptimize(set.data());
  }
  state.counters["vertices/set"] =
      static_cast<double>(vertices) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_GenerateRR_IC);

void BM_GenerateRR_IC_Fused(benchmark::State &state) {
  const CsrGraph &graph = shared_graph();
  FusedSampler sampler(graph);
  std::array<RRRSet, FusedSampler::kLanes> outs;
  std::array<std::uint64_t, FusedSampler::kLanes> indices;
  std::uint64_t index = 0;
  std::size_t vertices = 0;
  for (auto _ : state) {
    for (auto &i : indices) i = index++;
    sampler.generate(DiffusionModel::IndependentCascade, 7, indices,
                     outs.data());
    for (const RRRSet &set : outs) vertices += set.size();
    benchmark::DoNotOptimize(outs[0].data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(FusedSampler::kLanes));
  state.counters["vertices/set"] =
      static_cast<double>(vertices) /
      static_cast<double>(state.iterations() * FusedSampler::kLanes);
}
BENCHMARK(BM_GenerateRR_IC_Fused);

/// The paper's fig6 RRR-generation configs (thread_scaling.hpp's default
/// dataset list at its default scale, uniform [0,1) IC weights): seq vs
/// fused engine over identical sample indices.  items_per_second is RRR
/// sets per second; the EXPERIMENTS.md throughput table records the ratio.
const CsrGraph &fig6_graph(int which) {
  static std::array<CsrGraph, 4> graphs = [] {
    const char *names[] = {"cit-HepTh", "soc-Epinions1", "com-DBLP",
                           "com-YouTube"};
    std::array<CsrGraph, 4> gs;
    for (int d = 0; d < 4; ++d) {
      gs[static_cast<std::size_t>(d)] =
          materialize(find_dataset(names[d]), 0.01, 2019, std::string());
      assign_uniform_weights(gs[static_cast<std::size_t>(d)], 2020);
    }
    return gs;
  }();
  return graphs[static_cast<std::size_t>(which)];
}

void BM_Fig6Sample_Seq(benchmark::State &state) {
  const CsrGraph &graph = fig6_graph(static_cast<int>(state.range(0)));
  const std::uint64_t batch = 256;
  for (auto _ : state) {
    RRRCollection collection;
    sample_sequential(graph, DiffusionModel::IndependentCascade, batch, 7,
                      collection);
    benchmark::DoNotOptimize(collection.total_associations());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_Fig6Sample_Seq)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

void BM_Fig6Sample_Fused(benchmark::State &state) {
  const CsrGraph &graph = fig6_graph(static_cast<int>(state.range(0)));
  const std::uint64_t batch = 256;
  for (auto _ : state) {
    RRRCollection collection;
    sample_sequential_fused(graph, DiffusionModel::IndependentCascade, batch,
                            7, collection);
    benchmark::DoNotOptimize(collection.total_associations());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_Fig6Sample_Fused)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

void BM_PhiloxBulk(benchmark::State &state) {
  std::vector<std::uint64_t> out(4096);
  std::uint64_t block = 0;
  for (auto _ : state) {
    philox4x32_bulk(block, out.size() / 2, 7, 1, out.data());
    block += out.size() / 2;
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(out.size()));
}
BENCHMARK(BM_PhiloxBulk);

void BM_GenerateRR_LT(benchmark::State &state) {
  const CsrGraph &graph = shared_graph_lt();
  RRRGenerator generator(graph);
  RRRSet set;
  std::uint64_t index = 0;
  for (auto _ : state) {
    Philox4x32 rng = sample_stream(7, index++);
    generator.generate_random_root(DiffusionModel::LinearThreshold, rng, set);
    benchmark::DoNotOptimize(set.data());
  }
}
BENCHMARK(BM_GenerateRR_LT);

void BM_CountMemberships(benchmark::State &state) {
  const CsrGraph &graph = shared_graph();
  RRRCollection collection;
  sample_sequential(graph, DiffusionModel::IndependentCascade,
                    static_cast<std::uint64_t>(state.range(0)), 7, collection);
  std::vector<std::uint32_t> counters(graph.num_vertices());
  for (auto _ : state) {
    std::fill(counters.begin(), counters.end(), 0);
    count_memberships(collection.sets(), counters);
    benchmark::DoNotOptimize(counters.data());
  }
}
BENCHMARK(BM_CountMemberships)->Arg(256)->Arg(1024);

void BM_SelectSeeds(benchmark::State &state) {
  const CsrGraph &graph = shared_graph();
  RRRCollection collection;
  sample_sequential(graph, DiffusionModel::IndependentCascade, 1024, 7,
                    collection);
  for (auto _ : state) {
    SelectionResult result = select_seeds(
        graph.num_vertices(), static_cast<std::uint32_t>(state.range(0)),
        collection.sets());
    benchmark::DoNotOptimize(result.seeds.data());
  }
}
BENCHMARK(BM_SelectSeeds)->Arg(10)->Arg(50);

void BM_Allreduce(benchmark::State &state) {
  const auto ranks = static_cast<int>(state.range(0));
  const std::size_t length = 1 << 16;
  for (auto _ : state) {
    mpsim::Context::run(ranks, [&](mpsim::Communicator &comm) {
      std::vector<std::uint32_t> buffer(length, 1);
      comm.allreduce(std::span<std::uint32_t>(buffer), mpsim::ReduceOp::Sum);
      benchmark::DoNotOptimize(buffer.data());
    });
  }
}
BENCHMARK(BM_Allreduce)->Arg(2)->Arg(8);

void BM_CsrConstruction(benchmark::State &state) {
  EdgeList list = barabasi_albert(4096, 4, 3);
  for (auto _ : state) {
    CsrGraph graph(list);
    benchmark::DoNotOptimize(graph.num_edges());
  }
}
BENCHMARK(BM_CsrConstruction);

void BM_SimulateDiffusion_IC(benchmark::State &state) {
  const CsrGraph &graph = shared_graph();
  std::vector<vertex_t> seeds{0, 1, 2, 3, 4};
  std::uint64_t trial = 0;
  for (auto _ : state) {
    std::size_t activated = simulate_diffusion(
        graph, seeds, DiffusionModel::IndependentCascade, trial++);
    benchmark::DoNotOptimize(activated);
  }
}
BENCHMARK(BM_SimulateDiffusion_IC);

void BM_LcgLeapfrogSetup(benchmark::State &state) {
  Lcg64 base(42);
  std::uint64_t stream = 0;
  for (auto _ : state) {
    Lcg64 sub = base.leapfrog(stream % 1024, 1024);
    benchmark::DoNotOptimize(sub);
    ++stream;
  }
}
BENCHMARK(BM_LcgLeapfrogSetup);

} // namespace
} // namespace ripples

BENCHMARK_MAIN();
