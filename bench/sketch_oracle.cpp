/// \file sketch_oracle.cpp
/// \brief Context bench (paper §2, Cohen et al.): the combined-sketch
/// influence oracle vs the Monte-Carlo oracle — build/query time and
/// estimate accuracy over all n single-vertex queries.
///
/// Cohen et al. report "up to two orders of magnitude speedups" for
/// influence computation; here the MC oracle pays trials x diffusion per
/// query while the sketches answer all n queries from one O(l m) build.
#include <cmath>

#include "bench_common.hpp"

using namespace ripples;
using namespace ripples::bench;

int main(int argc, char **argv) {
  CommandLine cli(argc, argv);
  BenchConfig config = BenchConfig::parse(cli, /*default_scale=*/0.02);
  const auto trials =
      static_cast<std::uint32_t>(cli.get("trials", std::int64_t{200}));
  const auto query_count =
      static_cast<std::uint32_t>(cli.get("queries", std::int64_t{64}));

  std::vector<std::string> datasets = {"cit-HepTh"};
  if (config.full) datasets = {"cit-HepTh", "soc-Epinions1", "com-DBLP"};

  Table table("Sketch oracle vs Monte-Carlo oracle (single-vertex influence)",
              {"Graph", "Oracle", "BuildTime(s)", "QueryTime(s)",
               "MeanRelError", "Queries"});

  for (const std::string &dataset : datasets) {
    CsrGraph graph = materialize(find_dataset(dataset), config.scale,
                                 config.seed, config.snap_dir);
    assign_constant_weights(graph, 0.05f);
    print_input_banner(dataset, graph, config);

    // Query set: evenly spaced vertices.
    std::vector<vertex_t> queries;
    for (std::uint32_t i = 0; i < query_count; ++i)
      queries.push_back(static_cast<vertex_t>(
          static_cast<std::uint64_t>(i) * graph.num_vertices() / query_count));

    // Ground truth from a high-trial MC run.
    std::vector<double> truth(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      std::vector<vertex_t> single{queries[i]};
      truth[i] = estimate_influence(graph, single,
                                    DiffusionModel::IndependentCascade, 4000,
                                    config.seed + 31)
                     .mean;
    }

    {
      StopWatch build;
      SketchOptions options;
      options.num_instances = 64;
      options.sketch_size = 64;
      options.seed = config.seed;
      ReachabilitySketches sketches(graph, options);
      double build_time = build.elapsed_seconds();
      StopWatch query;
      double error = 0.0;
      for (std::size_t i = 0; i < queries.size(); ++i)
        error += std::abs(sketches.estimate_influence(queries[i]) - truth[i]) /
                 truth[i];
      table.new_row()
          .add(dataset)
          .add("sketches(l=64,k=64)")
          .add(build_time, 3)
          .add(query.elapsed_seconds(), 4)
          .add(error / static_cast<double>(queries.size()), 3)
          .add(queries.size());
    }
    {
      StopWatch query;
      double error = 0.0;
      for (std::size_t i = 0; i < queries.size(); ++i) {
        std::vector<vertex_t> single{queries[i]};
        double mc = estimate_influence(graph, single,
                                       DiffusionModel::IndependentCascade,
                                       trials, config.seed + 37)
                        .mean;
        error += std::abs(mc - truth[i]) / truth[i];
      }
      char label[48];
      std::snprintf(label, sizeof(label), "monte-carlo(%u trials)", trials);
      table.new_row()
          .add(dataset)
          .add(label)
          .add(0.0, 3)
          .add(query.elapsed_seconds(), 4)
          .add(error / static_cast<double>(queries.size()), 3)
          .add(queries.size());
    }
  }

  table.emit(config.csv_path);
  std::printf("\nExpected: comparable relative error, with the sketches\n"
              "amortizing one build across all queries — the speedup grows\n"
              "linearly with the number of queries (Cohen et al.'s claim).\n");
  return 0;
}
