/// \file lineage_evolution.cpp
/// \brief Context bench (paper §2): the RIS -> TIM+ -> IMM lineage at equal
/// (epsilon, k) — sample counts, runtime, and solution quality — showing
/// why IMM is the algorithm worth parallelizing.
///
/// Expected shape: all three reach comparable influence (same objective,
/// same guarantee family), while the sample count and runtime drop across
/// generations; RIS additionally needs a hand-tuned work budget, which is
/// exactly the knob IMM's estimation removes.
#include "bench_common.hpp"

using namespace ripples;
using namespace ripples::bench;

int main(int argc, char **argv) {
  CommandLine cli(argc, argv);
  BenchConfig config = BenchConfig::parse(cli, /*default_scale=*/0.02);
  const double epsilon = cli.get("epsilon", 0.5);
  const auto k = static_cast<std::uint32_t>(cli.get("k", std::int64_t{25}));
  const auto trials =
      static_cast<std::uint32_t>(cli.get("trials", std::int64_t{400}));

  std::vector<std::string> datasets = {"cit-HepTh", "soc-Epinions1"};
  if (config.full)
    datasets = {"cit-HepTh", "soc-Epinions1", "com-Amazon", "com-DBLP"};

  Table table("Lineage: RIS (SODA'14) vs TIM+ (SIGMOD'14) vs IMM (SIGMOD'15)",
              {"Graph", "Algorithm", "Samples", "Time(s)", "Influence",
               "StdErr"});

  for (const std::string &dataset : datasets) {
    CsrGraph graph = build_input(dataset, config,
                                 DiffusionModel::IndependentCascade);
    print_input_banner(dataset, graph, config);

    auto evaluate = [&](const char *name, const ImmResult &result) {
      InfluenceEstimate influence =
          estimate_influence(graph, result.seeds,
                             DiffusionModel::IndependentCascade, trials,
                             config.seed + 23);
      table.new_row()
          .add(dataset)
          .add(name)
          .add(result.num_samples)
          .add(result.timers.total(), 2)
          .add(influence.mean, 1)
          .add(influence.std_error, 1);
    };

    RisOptions ris_options;
    ris_options.epsilon = epsilon;
    ris_options.k = k;
    ris_options.seed = config.seed;
    // RIS with its theoretical budget would dwarf everything; use the
    // practical scaled budget the SODA paper itself suggests.
    ris_options.budget_scale = cli.get("ris-budget-scale", 0.05);
    evaluate("RIS", ris_threshold(graph, ris_options));

    TimOptions tim_options;
    tim_options.epsilon = epsilon;
    tim_options.k = k;
    tim_options.seed = config.seed;
    evaluate("TIM+", tim_plus(graph, tim_options));

    ImmOptions imm_options;
    imm_options.epsilon = epsilon;
    imm_options.k = k;
    imm_options.seed = config.seed;
    evaluate("IMM", imm_sequential(graph, imm_options));
  }

  table.emit(config.csv_path);
  std::printf("\nExpected: equal-league influence; IMM's martingale bound\n"
              "needs the fewest samples — the property that makes its\n"
              "parallelization (this paper) pay off at scale.\n");
  return 0;
}
