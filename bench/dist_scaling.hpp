/// \file dist_scaling.hpp
/// \brief Shared implementation of the distributed strong-scaling figures
/// (Figure 7 = Puma, 2-16 nodes; Figure 8 = Edison, 64-1024 nodes).
///
/// The paper runs the four largest graphs at eps=0.13, k=200 under both
/// models, partitioning theta samples across MPI ranks and allreducing the
/// n-entry counters once per selected seed.  Here ranks are mpsim threads;
/// the sweep exercises exactly the same partitioning, RNG-splitting and
/// collective pattern.  eps defaults looser than 0.13 to keep the
/// single-core default run short; --full restores the paper's setting.
#ifndef RIPPLES_BENCH_DIST_SCALING_HPP
#define RIPPLES_BENCH_DIST_SCALING_HPP

#include "bench_common.hpp"

namespace ripples::bench {

inline int run_dist_scaling(int argc, char **argv,
                            std::span<const int> default_ranks,
                            std::span<const int> full_ranks,
                            const char *figure_name, double default_scale) {
  CommandLine cli(argc, argv);
  BenchConfig config = BenchConfig::parse(cli, default_scale);
  const double epsilon = cli.get("epsilon", config.full ? 0.13 : 0.30);
  const auto k = static_cast<std::uint32_t>(
      cli.get_bounded("k", config.full ? 200 : 50, 1, UINT32_MAX));

  std::vector<std::string> datasets = {"com-YouTube", "com-Orkut"};
  if (config.full)
    datasets = {"com-YouTube", "soc-Pokec", "soc-LiveJournal1", "com-Orkut"};

  std::span<const int> rank_counts = config.full ? full_ranks : default_ranks;

  char title[160];
  std::snprintf(title, sizeof(title),
                "%s: distributed strong scaling (eps=%.2f, k=%u)", figure_name,
                epsilon, k);
  std::vector<std::string> header = {"Graph", "Model", "Ranks"};
  header.insert(header.end(), kPhaseHeader.begin(), kPhaseHeader.end());
  header.push_back("SpeedupVsMinRanks");
  Table table(title, header);

  for (const std::string &dataset : datasets) {
    for (DiffusionModel model : {DiffusionModel::IndependentCascade,
                                 DiffusionModel::LinearThreshold}) {
      CsrGraph graph = build_input(dataset, config, model);
      if (model == DiffusionModel::IndependentCascade)
        print_input_banner(dataset, graph, config);
      double reference = 0.0;
      for (int ranks : rank_counts) {
        ImmOptions options;
        options.epsilon = epsilon;
        options.k = k;
        options.model = model;
        options.seed = config.seed;
        options.num_ranks = ranks;
        ImmResult result = imm_distributed(graph, options);
        if (reference == 0.0) reference = result.timers.total();
        TableRow &row = table.new_row();
        row.add(dataset).add(to_string(model)).add(ranks);
        add_phase_columns(row, result);
        row.add(reference / result.timers.total(), 2);
      }
    }
  }

  table.emit(config.csv_path);
  std::printf("\nExpected shape: IC scales with rank count on the larger\n"
              "inputs; LT has too little work per rank (the paper's low\n"
              "parallel-efficiency observation).  Wall-clock speedup here is\n"
              "bounded by the machine's cores.\n");
  return 0;
}

} // namespace ripples::bench

#endif // RIPPLES_BENCH_DIST_SCALING_HPP
