/// \file bench_common.hpp
/// \brief Shared plumbing for the table/figure reproduction binaries.
///
/// Every bench binary follows the same pattern: build SNAP-surrogate inputs
/// at a configurable scale, run one or more IMM drivers, and print the rows
/// the corresponding table or figure in the paper reports (aligned table +
/// optional CSV via --csv <path>).  Absolute numbers are not comparable to
/// the paper's (different hardware, scaled-down surrogates); the *shape* —
/// who wins, how phases decompose, how curves trend — is the reproduction
/// target, and EXPERIMENTS.md records the comparison.
///
/// Common options:
///   --scale <f>     fraction of the original dataset size (per-bench default)
///   --seed <n>      experiment seed (default 2019, the paper's year)
///   --threads <n>   OpenMP threads for _mt drivers (default: hardware)
///   --sampler <e>   RRR engine, seq|fused (exported to RIPPLES_SAMPLER so
///                   every driver run picks it up; byte-identical output)
///   --snap-dir <d>  directory with genuine SNAP .txt files (optional)
///   --csv <path>    also write the table as CSV
///   --json-report <path>  enable metrics and write the structured run
///                   reports (one per driver execution) at process exit
///   --trace <path>  enable span tracing and write a Chrome trace-event
///                   JSON timeline (Perfetto-loadable) at process exit
///   --profile-mem   arm the background resource sampler: every driver run's
///                   report carries the memory timeline, and the trace (when
///                   enabled) gains mem.* counter tracks
///   --profile-mem-hz <hz>  sampling rate (default 10)
///   --checkpoint-dir <d>  snapshot martingale state of the mpsim drivers
///                   (plus --checkpoint-every/--checkpoint-keep/--resume);
///                   exported to RIPPLES_CHECKPOINT_* so every driver run
///                   the bench makes picks them up
///   --full          run the paper's full parameter grid instead of the
///                   time-budgeted default subset
#ifndef RIPPLES_BENCH_COMMON_HPP
#define RIPPLES_BENCH_COMMON_HPP

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <omp.h>
#include <string>

#include "ripples/ripples.hpp"

namespace ripples::bench {

/// Options shared by every bench binary, parsed from the command line.
struct BenchConfig {
  double scale;
  std::uint64_t seed;
  unsigned threads;
  std::string snap_dir;
  std::string csv_path;
  std::string json_report;
  std::string trace_path;
  bool full;

  static BenchConfig parse(const CommandLine &cli, double default_scale) {
    BenchConfig config;
    config.scale = cli.get("scale", default_scale);
    config.seed =
        static_cast<std::uint64_t>(cli.get_bounded("seed", 2019, 0, INT64_MAX));
    config.threads = static_cast<unsigned>(cli.get_bounded(
        "threads", omp_get_max_threads(), 1, UINT32_MAX));
    config.snap_dir = cli.get("snap-dir", std::string());
    config.csv_path = cli.get("csv", std::string());
    config.json_report = cli.get("json-report", std::string());
    config.trace_path = cli.get("trace", std::string());
    config.full = cli.has_flag("full");
    // Every driver run appends its RunReport to the process-wide log; the
    // atexit hook flushes them all, so each bench binary gets structured
    // output from this one line.
    if (!config.json_report.empty())
      metrics::write_reports_at_exit(config.json_report);
    // Same pattern for the timeline: spans buffer during the run and the
    // atexit hook writes one Chrome trace-event document.
    if (!config.trace_path.empty()) trace::start(config.trace_path);
    // Resource sampler: benches run drivers in-process, so one start() here
    // covers every run; the atexit stop (registered by start, LIFO before
    // the flush hooks) makes it quiescent before the artifacts are written.
    if (cli.has_flag("profile-mem") || cli.value_of("profile-mem-hz"))
      ResourceSampler::instance().start(
          cli.get_bounded("profile-mem-hz", 10.0, 0.1, 1000.0));
    // Checkpoint flags travel via the environment: ImmOptions defaults from
    // RIPPLES_CHECKPOINT_*, so exporting here covers every driver the bench
    // constructs without threading options through each table loop.
    // The sampler engine travels the same way (ImmOptions defaults from
    // RIPPLES_SAMPLER), so --sampler fused applies to every driver a bench
    // constructs.
    if (auto sampler = cli.value_of("sampler")) {
      if (*sampler != "seq" && *sampler != "fused") {
        std::fprintf(stderr, "unknown --sampler '%s' (seq|fused)\n",
                     sampler->c_str());
        std::exit(2);
      }
      setenv("RIPPLES_SAMPLER", sampler->c_str(), 1);
    }
    if (auto dir = cli.value_of("checkpoint-dir"))
      setenv("RIPPLES_CHECKPOINT_DIR", dir->c_str(), 1);
    if (auto every = cli.value_of("checkpoint-every"))
      setenv("RIPPLES_CHECKPOINT_EVERY", every->c_str(), 1);
    if (auto keep = cli.value_of("checkpoint-keep"))
      setenv("RIPPLES_CHECKPOINT_KEEP", keep->c_str(), 1);
    if (cli.has_flag("resume")) setenv("RIPPLES_CHECKPOINT_RESUME", "1", 1);
    // Data-integrity knobs ride the same environment path (ImmOptions
    // defaults from RIPPLES_VERIFY_COLLECTIVES / RIPPLES_SCRUB_RRR), so the
    // overhead benches flip them without touching each table loop.
    if (cli.has_flag("verify-collectives"))
      setenv("RIPPLES_VERIFY_COLLECTIVES", "1", 1);
    if (auto scrub = cli.value_of("scrub-rrr")) {
      if (*scrub != "off" && *scrub != "on" && *scrub != "paranoid") {
        std::fprintf(stderr, "unknown --scrub-rrr '%s' (off|on|paranoid)\n",
                     scrub->c_str());
        std::exit(2);
      }
      setenv("RIPPLES_SCRUB_RRR", scrub->c_str(), 1);
    }
    // Graceful shutdown: SIGINT/SIGTERM writes any pending checkpoint and
    // flushes the report log + trace buffers before exiting 128+signum.
    checkpoint::install_signal_flush();
    // atexit hooks never run when an uncaught exception reaches
    // std::terminate, which would lose the report log and trace buffers of
    // a crashed bench.  A terminate handler flushes both (marking the
    // report log with a failed entry) before the default abort.
    if (!config.json_report.empty() || !config.trace_path.empty()) {
      static std::terminate_handler previous = std::set_terminate([] {
        if (std::exception_ptr error = std::current_exception()) {
          try {
            std::rethrow_exception(error);
          } catch (const std::exception &e) {
            metrics::mark_run_failed("terminate", e.what());
          } catch (...) {
            metrics::mark_run_failed("terminate", "unknown exception");
          }
        }
        metrics::flush_reports_now();
        trace::flush_now();
        if (previous) previous();
        std::abort();
      });
    }
    return config;
  }
};

/// Builds the input for one dataset exactly as the paper's experimental
/// setup prescribes: surrogate (or genuine SNAP file) + uniform [0,1)
/// weights, LT-renormalized when the LT model is requested.
inline CsrGraph build_input(const std::string &dataset,
                            const BenchConfig &config, DiffusionModel model) {
  CsrGraph graph = materialize(find_dataset(dataset), config.scale,
                               config.seed, config.snap_dir);
  assign_uniform_weights(graph, config.seed + 1);
  if (model == DiffusionModel::LinearThreshold)
    renormalize_linear_threshold(graph);
  return graph;
}

/// Prints the dataset banner line used by every bench.
inline void print_input_banner(const std::string &dataset,
                               const CsrGraph &graph,
                               const BenchConfig &config) {
  GraphStats stats = compute_stats(graph);
  std::printf("[input] %-18s scale=%-6.4f n=%-8u m=%-10llu avg_deg=%.2f\n",
              dataset.c_str(), config.scale, stats.num_vertices,
              static_cast<unsigned long long>(stats.num_edges),
              stats.avg_total_degree);
}

/// Appends the four phase columns of an ImmResult to a table row (the
/// decomposition every runtime figure plots).
inline TableRow &add_phase_columns(TableRow &row, const ImmResult &result) {
  return row.add(result.timers.total(Phase::EstimateTheta), 3)
      .add(result.timers.total(Phase::Sample), 3)
      .add(result.timers.total(Phase::SelectSeeds), 3)
      .add(result.timers.total(Phase::Other), 3)
      .add(result.timers.total(), 3);
}

inline const std::vector<std::string> kPhaseHeader = {
    "EstimateTheta(s)", "Sample(s)", "SelectSeeds(s)", "Other(s)", "Total(s)"};

} // namespace ripples::bench

#endif // RIPPLES_BENCH_COMMON_HPP
