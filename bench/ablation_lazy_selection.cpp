/// \file ablation_lazy_selection.cpp
/// \brief Extension bench (paper §6 future work: "exploitation of problem
/// properties such as submodularity"): CELF-style lazy-greedy seed
/// selection vs the eager argmax of Algorithm 4.
///
/// The lazy variant replaces each greedy round's O(n) counter scan with a
/// heap pop plus occasional refreshes; retirement cost is unchanged.  Both
/// must return identical seeds; the win grows with n and k.
#include "bench_common.hpp"

using namespace ripples;
using namespace ripples::bench;

int main(int argc, char **argv) {
  CommandLine cli(argc, argv);
  BenchConfig config = BenchConfig::parse(cli, /*default_scale=*/0.06);

  CsrGraph graph = build_input("soc-LiveJournal1", config,
                               DiffusionModel::LinearThreshold);
  print_input_banner("soc-LiveJournal1", graph, config);

  // LT keeps samples small so the argmax (not retirement) dominates —
  // the regime where laziness matters.
  std::vector<std::uint64_t> theta_values = {10000, 40000};
  std::vector<std::uint32_t> ks = {50, 200};
  if (config.full) {
    theta_values = {10000, 40000, 160000};
    ks = {50, 100, 200, 400};
  }

  Table table("Ablation: lazy-greedy (CELF-style) vs eager argmax selection",
              {"Theta", "k", "Eager(s)", "Lazy(s)", "Speedup", "SeedsAgree"});

  for (std::uint64_t theta : theta_values) {
    RRRCollection collection;
    sample_sequential(graph, DiffusionModel::LinearThreshold, theta,
                      config.seed, collection);
    for (std::uint32_t k : ks) {
      StopWatch eager_watch;
      SelectionResult eager =
          select_seeds(graph.num_vertices(), k, collection.sets());
      double eager_time = eager_watch.elapsed_seconds();

      StopWatch lazy_watch;
      SelectionResult lazy =
          select_seeds_lazy(graph.num_vertices(), k, collection.sets());
      double lazy_time = lazy_watch.elapsed_seconds();

      table.new_row()
          .add(theta)
          .add(k)
          .add(eager_time, 3)
          .add(lazy_time, 3)
          .add(eager_time / lazy_time, 2)
          .add(eager.seeds == lazy.seeds ? "yes" : "NO");
    }
  }

  table.emit(config.csv_path);
  std::printf("\nExpected: identical seeds; lazy wins grow with n and k as\n"
              "the eager per-round argmax scan is amortized away.\n");
  return 0;
}
