/// \file fig7_dist_scaling_puma.cpp
/// \brief Reproduces Figure 7: distributed strong scaling with up to 16
/// "Puma nodes" (mpsim ranks), IC and LT, on the four largest graphs
/// (eps=0.13, k=200 with --full).
#include "dist_scaling.hpp"

int main(int argc, char **argv) {
  static constexpr int kDefault[] = {2, 4, 8};
  static constexpr int kFull[] = {2, 4, 6, 8, 10, 12, 14, 16};
  return ripples::bench::run_dist_scaling(argc, argv, kDefault, kFull,
                                          "Figure 7 (Puma)", 0.002);
}
