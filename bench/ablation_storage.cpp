/// \file ablation_storage.cpp
/// \brief Ablation for design decision #1 (DESIGN.md): compact one-direction
/// RRR storage vs the dual-direction hypergraph, isolating the sampling
/// (insertion) cost, the selection cost, and the memory footprint at fixed
/// sample counts.
///
/// Expected outcome: the hypergraph pays ~2x memory and extra insertion
/// time for cheaper seed selection; compact storage wins end-to-end once
/// theta is large — which is exactly the regime IMM operates in (Fig. 2:
/// theta quickly exceeds n).
#include "bench_common.hpp"

using namespace ripples;
using namespace ripples::bench;

int main(int argc, char **argv) {
  CommandLine cli(argc, argv);
  BenchConfig config = BenchConfig::parse(cli, /*default_scale=*/0.03);
  const auto k = static_cast<std::uint32_t>(cli.get("k", std::int64_t{50}));

  CsrGraph graph = build_input("cit-HepTh", config,
                               DiffusionModel::IndependentCascade);
  print_input_banner("cit-HepTh", graph, config);

  std::vector<std::uint64_t> theta_values = {1000, 4000, 16000};
  if (config.full) theta_values = {1000, 2000, 4000, 8000, 16000, 32000};

  Table table("Ablation: compact vs hypergraph RRR storage",
              {"Theta", "Storage", "SampleTime(s)", "SelectTime(s)",
               "Total(s)", "Memory(MB)", "Associations"});

  const double mb = 1024.0 * 1024.0;
  for (std::uint64_t theta : theta_values) {
    {
      RRRCollection compact;
      StopWatch sample_watch;
      sample_sequential(graph, DiffusionModel::IndependentCascade, theta,
                        config.seed, compact);
      double sample_time = sample_watch.elapsed_seconds();
      StopWatch select_watch;
      SelectionResult selection =
          select_seeds(graph.num_vertices(), k, compact.sets());
      double select_time = select_watch.elapsed_seconds();
      table.new_row()
          .add(theta)
          .add("compact")
          .add(sample_time, 3)
          .add(select_time, 3)
          .add(sample_time + select_time, 3)
          .add(static_cast<double>(compact.footprint_bytes()) / mb, 2)
          .add(compact.total_associations());
      (void)selection;
    }
    {
      FlatRRRCollection flat;
      StopWatch sample_watch;
      sample_sequential_flat(graph, DiffusionModel::IndependentCascade, theta,
                             config.seed, flat);
      flat.shrink_to_fit();
      double sample_time = sample_watch.elapsed_seconds();
      StopWatch select_watch;
      SelectionResult selection =
          select_seeds_flat(graph.num_vertices(), k, flat);
      double select_time = select_watch.elapsed_seconds();
      table.new_row()
          .add(theta)
          .add("flat-arena")
          .add(sample_time, 3)
          .add(select_time, 3)
          .add(sample_time + select_time, 3)
          .add(static_cast<double>(flat.footprint_bytes()) / mb, 2)
          .add(flat.total_associations());
      (void)selection;
    }
    {
      HypergraphCollection dual(graph.num_vertices());
      StopWatch sample_watch;
      sample_hypergraph(graph, DiffusionModel::IndependentCascade, theta,
                        config.seed, dual);
      double sample_time = sample_watch.elapsed_seconds();
      StopWatch select_watch;
      SelectionResult selection =
          select_seeds_hypergraph(graph.num_vertices(), k, dual);
      double select_time = select_watch.elapsed_seconds();
      table.new_row()
          .add(theta)
          .add("hypergraph")
          .add(sample_time, 3)
          .add(select_time, 3)
          .add(sample_time + select_time, 3)
          .add(static_cast<double>(dual.footprint_bytes()) / mb, 2)
          .add(dual.total_associations());
      (void)selection;
    }
  }

  table.emit(config.csv_path);
  std::printf("\nExpected: hypergraph ~2x associations and memory, faster\n"
              "selection, slower sampling; compact wins end-to-end at the\n"
              "large theta values IMM actually uses.\n");
  return 0;
}
