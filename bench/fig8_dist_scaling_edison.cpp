/// \file fig8_dist_scaling_edison.cpp
/// \brief Reproduces Figure 8: distributed strong scaling with 64-1024
/// "Edison nodes" (mpsim ranks), IC and LT, on the four largest graphs
/// (eps=0.13, k=200 with --full).  Large rank counts with little per-rank
/// work expose the collective overheads, as on the real machine.
#include "dist_scaling.hpp"

int main(int argc, char **argv) {
  static constexpr int kDefault[] = {64, 128, 256};
  static constexpr int kFull[] = {64, 128, 256, 512, 1024};
  return ripples::bench::run_dist_scaling(argc, argv, kDefault, kFull,
                                          "Figure 8 (Edison)", 0.002);
}
