/// \file ablation_graph_partition.cpp
/// \brief Extension bench (paper §6 future work i): replicated-graph
/// distributed IMM (Section 3.2) vs the graph-partitioned variant.
///
/// Replicating the graph lets each rank generate whole samples with zero
/// communication; partitioning it shrinks per-rank graph storage by p but
/// turns every BFS level into an allgatherv and every seed retirement into
/// a theta-length broadcast.  This bench quantifies that trade at equal
/// work: total time, sampling time, and the per-rank share of the stored
/// associations.
#include "bench_common.hpp"

using namespace ripples;
using namespace ripples::bench;

int main(int argc, char **argv) {
  CommandLine cli(argc, argv);
  BenchConfig config = BenchConfig::parse(cli, /*default_scale=*/0.02);
  const double epsilon = cli.get("epsilon", 0.5);
  const auto k = static_cast<std::uint32_t>(cli.get("k", std::int64_t{20}));

  CsrGraph graph = build_input("soc-Epinions1", config,
                               DiffusionModel::IndependentCascade);
  print_input_banner("soc-Epinions1", graph, config);

  std::vector<int> rank_counts = {1, 2, 4};
  if (config.full) rank_counts = {1, 2, 4, 8, 16};

  Table table("Ablation: replicated vs partitioned input graph",
              {"Ranks", "Layout", "Total(s)", "SampleWork(s)", "SelectSeeds(s)",
               "Associations", "GraphBytes/rank"});

  for (int ranks : rank_counts) {
    ImmOptions options;
    options.epsilon = epsilon;
    options.k = k;
    options.seed = config.seed;
    options.num_ranks = ranks;

    ImmResult replicated = imm_distributed(graph, options);
    table.new_row()
        .add(ranks)
        .add("replicated")
        .add(replicated.timers.total(), 3)
        .add(replicated.timers.total(Phase::EstimateTheta) +
                 replicated.timers.total(Phase::Sample),
             3)
        .add(replicated.timers.total(Phase::SelectSeeds), 3)
        .add(replicated.total_associations)
        .add(graph.memory_footprint_bytes());

    ImmResult partitioned = imm_distributed_partitioned(graph, options);
    table.new_row()
        .add(ranks)
        .add("partitioned")
        .add(partitioned.timers.total(), 3)
        .add(partitioned.timers.total(Phase::EstimateTheta) +
                 partitioned.timers.total(Phase::Sample),
             3)
        .add(partitioned.timers.total(Phase::SelectSeeds), 3)
        .add(partitioned.total_associations)
        .add(graph.memory_footprint_bytes() / static_cast<std::size_t>(ranks));
  }

  table.emit(config.csv_path);
  std::printf("\nExpected: the partitioned layout divides per-rank graph\n"
              "storage by p but pays an allgatherv per BFS level — the\n"
              "communication/memory trade the paper's future work poses.\n");
  return 0;
}
