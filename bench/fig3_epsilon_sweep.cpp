/// \file fig3_epsilon_sweep.cpp
/// \brief Reproduces Figure 3: impact of epsilon on runtime (k=50, IC,
/// multithreaded), with the runtime decomposed into the four phases
/// (EstimateTheta / Sample / SelectSeeds / Other) per dataset.
///
/// Figure 3's shapes to reproduce: total runtime grows as epsilon
/// decreases; EstimateTheta and Sample dominate; the Sample share shrinks
/// on larger inputs.
#include "bench_common.hpp"

using namespace ripples;
using namespace ripples::bench;

int main(int argc, char **argv) {
  CommandLine cli(argc, argv);
  BenchConfig config = BenchConfig::parse(cli, /*default_scale=*/0.01);
  const auto k = static_cast<std::uint32_t>(cli.get("k", std::int64_t{50}));

  std::vector<std::string> datasets = {"cit-HepTh", "soc-Epinions1",
                                       "com-DBLP", "com-YouTube"};
  std::vector<double> epsilons = {0.30, 0.40, 0.50};
  if (config.full) {
    datasets = {"cit-HepTh",   "soc-Epinions1", "com-Amazon",
                "com-DBLP",    "com-YouTube",   "soc-Pokec",
                "soc-LiveJournal1", "com-Orkut"};
    epsilons = {0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50};
  }

  std::vector<std::string> header = {"Graph", "Epsilon"};
  header.insert(header.end(), kPhaseHeader.begin(), kPhaseHeader.end());
  Table table("Figure 3: impact of epsilon on runtime (k=50, IC)", header);

  for (const std::string &dataset : datasets) {
    CsrGraph graph = build_input(dataset, config,
                                 DiffusionModel::IndependentCascade);
    print_input_banner(dataset, graph, config);
    for (double epsilon : epsilons) {
      ImmOptions options;
      options.epsilon = epsilon;
      options.k = k;
      options.seed = config.seed;
      options.num_threads = config.threads;
      ImmResult result = imm_multithreaded(graph, options);
      TableRow &row = table.new_row();
      row.add(dataset).add(epsilon, 2);
      add_phase_columns(row, result);
    }
  }

  table.emit(config.csv_path);
  std::printf("\nExpected shape (Figure 3): totals rise as epsilon falls;\n"
              "EstimateTheta and Sample dominate every bar.\n");
  return 0;
}
