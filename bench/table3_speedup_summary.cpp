/// \file table3_speedup_summary.cpp
/// \brief Reproduces Table 3: the end-to-end speedup ladder on com-Orkut
/// and soc-LiveJournal1 — IMM (baseline) -> IMMOPT -> IMM_mt (eps=0.5,
/// k=100) -> IMM_dist (eps=0.13, k=200).
///
/// The paper's headline: 586x (Orkut) and 298x (LiveJournal) vs the serial
/// baseline, with the distributed row simultaneously *tightening* the
/// approximation (eps 0.5 -> 0.13) and doubling the seed set.  On one core
/// the parallel rows cannot show wall-clock speedups, but the ladder runs
/// end to end: same configurations, same drivers, same metrics.  The
/// surrogate scale is kept small because the eps=0.13, k=200 row is the
/// heaviest computation in the whole harness.
#include "bench_common.hpp"

using namespace ripples;
using namespace ripples::bench;

int main(int argc, char **argv) {
  CommandLine cli(argc, argv);
  BenchConfig config = BenchConfig::parse(cli, /*default_scale=*/0.0003);
  const int ranks = static_cast<int>(cli.get_bounded("ranks", 4, 1, INT32_MAX));
  // The paper's distributed row uses eps=0.13; that is ~15x more samples
  // than eps=0.5, so the default trims it to 0.2 to keep the bench within
  // a laptop-core budget.  --full (or --dist-epsilon) restores 0.13.
  const double dist_epsilon =
      cli.get("dist-epsilon", config.full ? 0.13 : 0.2);
  const auto dist_k = static_cast<std::uint32_t>(
      cli.get_bounded("dist-k", config.full ? 200 : 100, 1, UINT32_MAX));

  Table table("Table 3: improvement in runtime relative to IMM",
              {"Graph", "Configuration", "Time(s)", "Speedup", "PaperSpeedup"});

  for (const std::string &dataset : {std::string("com-Orkut"),
                                     std::string("soc-LiveJournal1")}) {
    CsrGraph graph = build_input(dataset, config,
                                 DiffusionModel::IndependentCascade);
    print_input_banner(dataset, graph, config);
    const PaperReference &paper = find_dataset(dataset).paper;

    ImmOptions serial_options;
    serial_options.epsilon = 0.5;
    serial_options.k = 100;
    serial_options.seed = config.seed;

    ImmResult baseline = imm_baseline_hypergraph(graph, serial_options);
    double reference_time = baseline.timers.total();
    table.new_row()
        .add(dataset)
        .add("IMM (eps=0.5, k=100)")
        .add(reference_time, 2)
        .add(1.0, 2)
        .add(1.0, 2);

    ImmResult optimized = imm_sequential(graph, serial_options);
    table.new_row()
        .add(dataset)
        .add("IMMopt (eps=0.5, k=100)")
        .add(optimized.timers.total(), 2)
        .add(reference_time / optimized.timers.total(), 2)
        .add(paper.imm_seconds / paper.immopt_seconds, 2);

    ImmOptions mt_options = serial_options;
    mt_options.num_threads = config.threads;
    ImmResult multithreaded = imm_multithreaded(graph, mt_options);
    table.new_row()
        .add(dataset)
        .add("IMMmt (eps=0.5, k=100)")
        .add(multithreaded.timers.total(), 2)
        .add(reference_time / multithreaded.timers.total(), 2)
        .add(dataset == "com-Orkut" ? 21.24 : 16.02, 2);

    ImmOptions dist_options;
    dist_options.epsilon = dist_epsilon;
    dist_options.k = dist_k;
    dist_options.seed = config.seed;
    dist_options.num_ranks = ranks;
    dist_options.num_threads = 1;
    ImmResult distributed = imm_distributed(graph, dist_options);
    char label[64];
    std::snprintf(label, sizeof(label), "IMMdist (eps=%.2f, k=%u, p=%d)",
                  dist_epsilon, dist_k, ranks);
    table.new_row()
        .add(dataset)
        .add(label)
        .add(distributed.timers.total(), 2)
        .add(reference_time / distributed.timers.total(), 2)
        .add(dataset == "com-Orkut" ? 586.61 : 298.16, 2);
  }

  table.emit(config.csv_path);
  std::printf(
      "\nPaper speedups for IMMmt/IMMdist come from 20 threads / 1024\n"
      "cluster nodes; this container has one core, so measured parallel\n"
      "speedups reflect algorithmic overheads only (see EXPERIMENTS.md).\n");
  return 0;
}
