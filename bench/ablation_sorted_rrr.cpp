/// \file ablation_sorted_rrr.cpp
/// \brief Ablation for design decision #2 (DESIGN.md / paper §3.1): sorted
/// RRR sets let the interval-partitioned selection (Alg. 4) binary-search
/// each thread's vertex range "so that the counting steps will proceed in
/// cache order" and "avoid traversing R_i entirely".
///
/// The comparison keeps everything of Algorithm 4 — p vertex-interval
/// owners, counting, greedy rounds, retirement — and changes only the
/// per-sample access: binary search to [vl, vh) over sorted samples vs a
/// full scan with an interval filter over unsorted samples.  The p
/// interval passes run serially here (one core), so the reported times
/// compare total CPU work, which is what the design choice targets.
/// Both variants must return identical seeds.
#include <algorithm>

#include "bench_common.hpp"

using namespace ripples;
using namespace ripples::bench;

namespace {

/// Algorithm 4 with unsorted samples: every interval owner must scan every
/// element of every sample to find its slice.
SelectionResult select_intervals_unsorted(vertex_t n, std::uint32_t k,
                                          std::span<const RRRSet> samples,
                                          unsigned p) {
  std::vector<std::uint32_t> counters(n, 0);
  for (unsigned t = 0; t < p; ++t) {
    const auto vl = static_cast<vertex_t>(static_cast<std::uint64_t>(n) * t / p);
    const auto vh =
        static_cast<vertex_t>(static_cast<std::uint64_t>(n) * (t + 1) / p);
    for (const RRRSet &sample : samples)
      for (vertex_t v : sample)
        if (v >= vl && v < vh) ++counters[v];
  }

  std::vector<std::uint8_t> retired(samples.size(), 0);
  std::vector<std::uint8_t> selected(n, 0);
  SelectionResult result;
  result.total_samples = samples.size();
  for (std::uint32_t i = 0; i < k; ++i) {
    vertex_t seed = argmax_counter(counters, selected);
    selected[seed] = 1;
    result.seeds.push_back(seed);
    // Decrement per interval owner, full scans throughout.
    for (unsigned t = 0; t < p; ++t) {
      const auto vl = static_cast<vertex_t>(static_cast<std::uint64_t>(n) * t / p);
      const auto vh =
          static_cast<vertex_t>(static_cast<std::uint64_t>(n) * (t + 1) / p);
      for (std::size_t j = 0; j < samples.size(); ++j) {
        if (retired[j]) continue;
        if (std::find(samples[j].begin(), samples[j].end(), seed) ==
            samples[j].end())
          continue;
        for (vertex_t u : samples[j])
          if (u >= vl && u < vh) --counters[u];
      }
    }
    for (std::size_t j = 0; j < samples.size(); ++j) {
      if (retired[j]) continue;
      if (std::find(samples[j].begin(), samples[j].end(), seed) ==
          samples[j].end())
        continue;
      retired[j] = 1;
      ++result.covered_samples;
    }
  }
  return result;
}

} // namespace

int main(int argc, char **argv) {
  CommandLine cli(argc, argv);
  BenchConfig config = BenchConfig::parse(cli, /*default_scale=*/0.03);
  const auto k = static_cast<std::uint32_t>(cli.get("k", std::int64_t{50}));
  const auto p = static_cast<unsigned>(cli.get("intervals", std::int64_t{8}));

  CsrGraph graph = build_input("cit-HepTh", config,
                               DiffusionModel::IndependentCascade);
  print_input_banner("cit-HepTh", graph, config);

  std::vector<std::uint64_t> theta_values = {2000, 8000};
  if (config.full) theta_values = {2000, 4000, 8000, 16000, 32000};

  Table table("Ablation: Alg. 4 with sorted+binary-search vs unsorted samples",
              {"Theta", "Variant", "SelectTime(s)", "SeedsAgree"});

  for (std::uint64_t theta : theta_values) {
    RRRCollection collection;
    sample_sequential(graph, DiffusionModel::IndependentCascade, theta,
                      config.seed, collection);

    StopWatch sorted_watch;
    SelectionResult sorted_result = select_seeds_multithreaded(
        graph.num_vertices(), k, collection.sets(), p);
    double sorted_time = sorted_watch.elapsed_seconds();

    // Shuffle each sample to destroy sortedness for the unsorted variant.
    std::vector<RRRSet> shuffled = collection.sets();
    Xoshiro256 rng(config.seed + 99);
    for (RRRSet &sample : shuffled)
      for (std::size_t i = sample.size(); i > 1; --i)
        std::swap(sample[i - 1], sample[uniform_index(rng, i)]);

    StopWatch unsorted_watch;
    SelectionResult unsorted_result =
        select_intervals_unsorted(graph.num_vertices(), k, shuffled, p);
    double unsorted_time = unsorted_watch.elapsed_seconds();

    bool agree = sorted_result.seeds == unsorted_result.seeds;
    table.new_row().add(theta).add("sorted+binary-search").add(sorted_time, 3)
        .add(agree ? "yes" : "NO");
    table.new_row().add(theta).add("unsorted+full-scan").add(unsorted_time, 3)
        .add(agree ? "yes" : "NO");
  }

  table.emit(config.csv_path);
  std::printf("\nExpected: identical seeds; with %u interval owners the\n"
              "unsorted variant re-reads every sample %u times per step,\n"
              "while sorted samples are sliced with one binary search each.\n",
              p, p);
  return 0;
}
