/// \file fig1_quality_frontier.cpp
/// \brief Reproduces Figure 1: activated vertices as a function of seed-set
/// size for two quality regimes — the state-of-the-art-feasible
/// (eps=0.5, k<=100, "blue arc") and the regime this paper's parallelism
/// unlocks (eps=0.13, k<=200, "red arc").
///
/// The greedy seed selection is nested (seed i+1 extends the first i), so
/// one IMM run per regime yields the whole curve by evaluating prefixes of
/// the returned seed vector with the Monte-Carlo forward simulator.
#include "bench_common.hpp"

using namespace ripples;
using namespace ripples::bench;

int main(int argc, char **argv) {
  CommandLine cli(argc, argv);
  BenchConfig config = BenchConfig::parse(cli, /*default_scale=*/0.01);
  const std::string dataset = cli.get("dataset", std::string("soc-Epinions1"));
  const auto trials =
      static_cast<std::uint32_t>(cli.get("trials", std::int64_t{300}));

  CsrGraph graph = build_input(dataset, config,
                               DiffusionModel::IndependentCascade);
  print_input_banner(dataset, graph, config);

  struct Regime {
    const char *label;
    double epsilon;
    std::uint32_t max_k;
  };
  const Regime regimes[] = {
      {"baseline-feasible", 0.5, 100},
      {"parallel-enabled", config.full ? 0.13 : 0.25, 200},
  };

  Table table("Figure 1: activated vertices vs seed set size",
              {"Regime", "Epsilon", "k", "ActivatedNodes", "StdErr",
               "ImmTime(s)"});

  for (const Regime &regime : regimes) {
    ImmOptions options;
    options.epsilon = regime.epsilon;
    options.k = regime.max_k;
    options.seed = config.seed;
    options.num_threads = config.threads;
    ImmResult result = imm_multithreaded(graph, options);

    for (std::uint32_t k = 25; k <= regime.max_k; k += 25) {
      std::span<const vertex_t> prefix(result.seeds.data(), k);
      InfluenceEstimate influence = estimate_influence(
          graph, prefix, options.model, trials, config.seed + 7);
      table.new_row()
          .add(regime.label)
          .add(regime.epsilon, 2)
          .add(k)
          .add(influence.mean, 1)
          .add(influence.std_error, 1)
          .add(result.timers.total(), 2);
    }
  }

  table.emit(config.csv_path);
  std::printf("\nThe 'parallel-enabled' curve (tighter eps, larger k) should\n"
              "dominate the baseline curve at every shared k and extend it to\n"
              "2x the seed-set size — Figure 1's red-over-blue shape.\n");
  return 0;
}
