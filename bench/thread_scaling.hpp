/// \file thread_scaling.hpp
/// \brief Shared implementation of the multithreaded strong-scaling
/// figures (Figure 5 = LT, Figure 6 = IC; identical sweep otherwise).
///
/// The paper sweeps 2..20 threads of one Puma node at eps=0.5, k=100 and
/// reports the phase-decomposed runtime per thread count, observing
/// near-linear speedups on large IC inputs and limited LT scalability (LT's
/// tiny RRR sets leave too little work per thread).  On this container the
/// sweep still exercises the full OpenMP machinery; wall-clock speedup is
/// bounded by the single physical core.
#ifndef RIPPLES_BENCH_THREAD_SCALING_HPP
#define RIPPLES_BENCH_THREAD_SCALING_HPP

#include "bench_common.hpp"

namespace ripples::bench {

inline int run_thread_scaling(int argc, char **argv, DiffusionModel model,
                              const char *figure_name) {
  CommandLine cli(argc, argv);
  BenchConfig config = BenchConfig::parse(cli, /*default_scale=*/0.01);
  const double epsilon = cli.get("epsilon", 0.5);
  const auto k =
      static_cast<std::uint32_t>(cli.get_bounded("k", 100, 1, UINT32_MAX));

  std::vector<std::string> datasets = {"cit-HepTh", "soc-Epinions1",
                                       "com-DBLP", "com-YouTube"};
  std::vector<unsigned> thread_counts = {1, 2, 4, 8};
  if (config.full) {
    datasets = {"cit-HepTh",   "soc-Epinions1", "com-Amazon",
                "com-DBLP",    "com-YouTube",   "soc-Pokec",
                "soc-LiveJournal1", "com-Orkut"};
    thread_counts.clear();
    for (unsigned t = 2; t <= 20; ++t) thread_counts.push_back(t);
  }

  char title[160];
  std::snprintf(title, sizeof(title),
                "%s: multithreaded strong scaling (eps=%.2f, k=%u, %s)",
                figure_name, epsilon, k, to_string(model));
  std::vector<std::string> header = {"Graph", "Threads"};
  header.insert(header.end(), kPhaseHeader.begin(), kPhaseHeader.end());
  header.push_back("SpeedupVs1T");
  Table table(title, header);

  for (const std::string &dataset : datasets) {
    CsrGraph graph = build_input(dataset, config, model);
    print_input_banner(dataset, graph, config);
    double reference = 0.0;
    for (unsigned threads : thread_counts) {
      ImmOptions options;
      options.epsilon = epsilon;
      options.k = k;
      options.model = model;
      options.seed = config.seed;
      options.num_threads = threads;
      ImmResult result = imm_multithreaded(graph, options);
      if (reference == 0.0) reference = result.timers.total();
      TableRow &row = table.new_row();
      row.add(dataset).add(threads);
      add_phase_columns(row, result);
      row.add(reference / result.timers.total(), 2);
    }
  }

  table.emit(config.csv_path);
  std::printf("\nExpected shape: speedups improve with input size; IC\n"
              "scales better than LT (larger RRR sets = more parallel work).\n"
              "Wall-clock speedup here is bounded by the machine's cores.\n");
  return 0;
}

} // namespace ripples::bench

#endif // RIPPLES_BENCH_THREAD_SCALING_HPP
