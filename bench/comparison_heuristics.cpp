/// \file comparison_heuristics.cpp
/// \brief Related-work comparison (paper §2): IMM against the heuristic
/// families it competes with — degree, degree discount (Chen et al.),
/// community-proportional allocation (Halappanavar et al.), k-shell (Wu et
/// al.) — by solution quality (Monte-Carlo influence) and selection time.
///
/// The paper's positioning to reproduce: the heuristics are fast but carry
/// no approximation guarantee, and the community-based family in
/// particular suffers from ignoring inter-community edges; IMM delivers
/// the best influence at moderate cost.
#include "bench_common.hpp"

using namespace ripples;
using namespace ripples::bench;

int main(int argc, char **argv) {
  CommandLine cli(argc, argv);
  BenchConfig config = BenchConfig::parse(cli, /*default_scale=*/0.02);
  const auto k = static_cast<std::uint32_t>(cli.get("k", std::int64_t{25}));
  const auto trials =
      static_cast<std::uint32_t>(cli.get("trials", std::int64_t{400}));
  const float probability = static_cast<float>(cli.get("probability", 0.05));

  std::vector<std::string> datasets = {"soc-Epinions1", "com-DBLP"};
  if (config.full)
    datasets = {"cit-HepTh", "soc-Epinions1", "com-Amazon", "com-DBLP",
                "com-YouTube"};

  Table table("Related-work comparison: influence quality vs selection time",
              {"Graph", "Method", "Influence", "StdErr", "SelectTime(s)"});

  for (const std::string &dataset : datasets) {
    // Constant IC probability (the regime the heuristics were designed
    // for; degree discount assumes uniform p).
    CsrGraph graph = materialize(find_dataset(dataset), config.scale,
                                 config.seed, config.snap_dir);
    assign_constant_weights(graph, probability);
    print_input_banner(dataset, graph, config);

    auto evaluate = [&](const char *method, StopWatch &watch,
                        std::span<const vertex_t> seeds) {
      double elapsed = watch.elapsed_seconds();
      InfluenceEstimate influence =
          estimate_influence(graph, seeds, DiffusionModel::IndependentCascade,
                             trials, config.seed + 17);
      table.new_row()
          .add(dataset)
          .add(method)
          .add(influence.mean, 1)
          .add(influence.std_error, 1)
          .add(elapsed, 3);
    };

    {
      StopWatch watch;
      ImmOptions options;
      options.epsilon = 0.5;
      options.k = k;
      options.seed = config.seed;
      options.num_threads = config.threads;
      ImmResult imm = imm_multithreaded(graph, options);
      evaluate("IMM (eps=0.5)", watch, imm.seeds);
    }
    {
      StopWatch watch;
      std::vector<vertex_t> seeds = top_degree_seeds(graph, k);
      evaluate("degree", watch, seeds);
    }
    {
      StopWatch watch;
      std::vector<vertex_t> seeds =
          degree_discount_seeds(graph, k, probability);
      evaluate("degree-discount", watch, seeds);
    }
    {
      StopWatch watch;
      CommunityAssignment communities = label_propagation(graph, 10, config.seed);
      std::vector<vertex_t> seeds =
          community_proportional_seeds(graph, communities, k, probability);
      evaluate("community-prop", watch, seeds);
    }
    {
      StopWatch watch;
      std::vector<vertex_t> seeds = k_shell_seeds(graph, k);
      evaluate("k-shell", watch, seeds);
    }
  }

  table.emit(config.csv_path);
  std::printf("\nExpected (paper §2): IMM tops influence with a guarantee;\n"
              "degree-discount beats raw degree; k-shell and the\n"
              "community-based allocation trail on influence because they\n"
              "ignore redundancy / inter-community edges respectively.\n");
  return 0;
}
