/// \file fig2_theta_growth.cpp
/// \brief Reproduces Figure 2: the number of RRR sets (theta) on cit-HepTh
/// as a function of k and the approximation factor (epsilon sweep 0.2-0.6).
///
/// Each grid point runs the real estimation pipeline (martingale loop +
/// final theta), not just the closed-form lambda*, so the reported theta is
/// exactly what an IMM run would generate.  Figure 2's two laws to
/// reproduce: theta grows sharply as epsilon decreases, grows with k, and
/// "quickly exceeds n".
#include <cmath>

#include "bench_common.hpp"

using namespace ripples;
using namespace ripples::bench;

int main(int argc, char **argv) {
  CommandLine cli(argc, argv);
  BenchConfig config = BenchConfig::parse(cli, /*default_scale=*/0.04);

  CsrGraph graph = build_input("cit-HepTh", config,
                               DiffusionModel::IndependentCascade);
  print_input_banner("cit-HepTh", graph, config);

  std::vector<double> epsilons = {0.3, 0.4, 0.5, 0.6};
  std::vector<std::uint32_t> ks = {10, 50, 100};
  if (config.full) {
    epsilons = {0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5, 0.55, 0.6};
    ks = {10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  }

  Table table("Figure 2: theta as a function of k and epsilon (cit-HepTh)",
              {"Epsilon", "ApproxFactor", "k", "Theta", "Theta/n",
               "LowerBound"});

  const double n = static_cast<double>(graph.num_vertices());
  for (double epsilon : epsilons) {
    for (std::uint32_t k : ks) {
      ImmOptions options;
      options.epsilon = epsilon;
      options.k = k;
      options.seed = config.seed;
      options.num_threads = config.threads;
      ImmResult result = imm_multithreaded(graph, options);
      table.new_row()
          .add(epsilon, 2)
          .add(1.0 - 1.0 / std::exp(1.0) - epsilon, 2)
          .add(k)
          .add(result.theta)
          .add(static_cast<double>(result.theta) / n, 2)
          .add(result.lower_bound, 1);
    }
  }

  table.emit(config.csv_path);
  std::printf("\nExpected shape (Figure 2): theta rises steeply as epsilon\n"
              "falls (higher precision), rises with k, and exceeds n well\n"
              "before the tightest settings.\n");
  return 0;
}
