#include "support/metrics.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>

namespace ripples::metrics {

namespace {

bool env_enabled() {
  const char *env = std::getenv("RIPPLES_METRICS");
  if (env == nullptr) return false;
  std::string_view v(env);
  return v == "1" || v == "true" || v == "on" || v == "yes";
}

} // namespace

namespace detail {
std::atomic<bool> g_enabled{env_enabled()};
} // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

// --- collective-wait accounting ---------------------------------------------

namespace {
thread_local double t_collective_wait_seconds = 0.0;
} // namespace

double thread_collective_wait_seconds() { return t_collective_wait_seconds; }

void add_thread_collective_wait(double seconds) {
  t_collective_wait_seconds += seconds;
}

// --- RoundEntry -------------------------------------------------------------

double round_imbalance_factor(const std::vector<RoundEntry> &ranks) {
  if (ranks.size() < 2) return 1.0;
  std::vector<double> compute;
  compute.reserve(ranks.size());
  for (const RoundEntry &entry : ranks)
    compute.push_back(std::max(0.0, entry.sample_seconds +
                                        entry.select_seconds -
                                        entry.collective_wait_seconds));
  std::sort(compute.begin(), compute.end());
  // Lower median for even counts, so a 2-rank round reads max/min instead
  // of the degenerate max/max = 1.
  double median = compute[(compute.size() - 1) / 2];
  double max = compute.back();
  if (median <= 0.0) return 1.0;
  return max / median;
}

// --- HistogramData ----------------------------------------------------------

void HistogramData::to_json(JsonWriter &w) const {
  w.begin_object();
  w.member("count", count);
  w.member("sum", sum);
  w.member("min", count == 0 ? std::uint64_t{0} : min);
  w.member("max", max);
  w.member("mean", mean());
  w.key("buckets");
  w.begin_array();
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    w.begin_object();
    w.member("lo", bucket_lower(b));
    w.member("hi", bucket_upper(b));
    w.member("count", buckets[b]);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

// --- LogHistogram -----------------------------------------------------------

HistogramData LogHistogram::snapshot() const {
  HistogramData data;
  data.count = count_.load(std::memory_order_relaxed);
  data.sum = sum_.load(std::memory_order_relaxed);
  data.min = min_.load(std::memory_order_relaxed);
  data.max = max_.load(std::memory_order_relaxed);
  for (std::size_t b = 0; b < HistogramData::kBuckets; ++b)
    data.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  return data;
}

void LogHistogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<std::uint64_t>::max(),
             std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto &b : buckets_) b.store(0, std::memory_order_relaxed);
}

// --- Registry ---------------------------------------------------------------

// std::map keeps instrument addresses stable is not enough on its own (the
// mapped type could move); unique_ptr makes references permanent, and the
// ordered map gives deterministic JSON output.
struct Registry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<LogHistogram>, std::less<>> histograms;
};

Registry &Registry::instance() {
  static Registry registry;
  return registry;
}

Registry::Impl &Registry::impl() const {
  // Intentionally leaked: the instruments are usually first touched after
  // write_reports_at_exit() has registered its atexit hook, so a static
  // Impl would be destroyed before that hook runs and the flush would walk
  // freed maps.  Process-lifetime state has no destruction order to get
  // wrong.
  static Impl *impl = new Impl;
  return *impl;
}

Counter &Registry::counter(std::string_view name) {
  Impl &state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  auto it = state.counters.find(name);
  if (it == state.counters.end())
    it = state.counters
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge &Registry::gauge(std::string_view name) {
  Impl &state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  auto it = state.gauges.find(name);
  if (it == state.gauges.end())
    it = state.gauges.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  return *it->second;
}

LogHistogram &Registry::histogram(std::string_view name) {
  Impl &state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  auto it = state.histograms.find(name);
  if (it == state.histograms.end())
    it = state.histograms
             .emplace(std::string(name), std::make_unique<LogHistogram>())
             .first;
  return *it->second;
}

void Registry::to_json(JsonWriter &w) const {
  Impl &state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto &[name, counter] : state.counters)
    w.member(name, counter->value());
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto &[name, gauge] : state.gauges)
    w.member(name, static_cast<std::int64_t>(gauge->value()));
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto &[name, histogram] : state.histograms) {
    w.key(name);
    histogram->snapshot().to_json(w);
  }
  w.end_object();
  w.end_object();
}

void Registry::reset() {
  Impl &state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  for (auto &[name, counter] : state.counters) counter->reset();
  for (auto &[name, gauge] : state.gauges) gauge->reset();
  for (auto &[name, histogram] : state.histograms) histogram->reset();
}

// --- RunReport --------------------------------------------------------------

void RunReport::to_json(JsonWriter &w) const {
  w.begin_object();
  w.member("schema_version", kSchemaVersion);
  w.member("driver", driver);
  w.member("failed", failed);
  if (failed) w.member("failure_reason", failure_reason);
  w.member("degraded", degraded);
  w.member("epsilon_achieved", epsilon_achieved);
  w.key("resumed_from");
  if (resumed_from < 0)
    w.null();
  else
    w.value(resumed_from);

  w.key("options");
  w.begin_object();
  w.member("epsilon", epsilon);
  w.member("k", k);
  w.member("model", model);
  w.member("seed", seed);
  w.member("threads", static_cast<std::uint64_t>(num_threads));
  w.member("ranks", static_cast<std::int64_t>(num_ranks));
  w.member("rng_mode", rng_mode);
  w.member("mem_budget", mem_budget);
  w.member("rrr_compress", rrr_compress);
  w.member("steal", steal);
  w.member("steal_chunk", steal_chunk);
  w.member("steal_skew", steal_skew);
  w.member("verify_collectives", verify_collectives);
  w.member("scrub_rrr", scrub_rrr);
  w.end_object();

  w.key("graph");
  w.begin_object();
  w.member("vertices", graph_vertices);
  w.member("edges", graph_edges);
  w.end_object();

  w.key("phases_seconds");
  w.begin_object();
  w.member("estimate_theta", phases.total(Phase::EstimateTheta));
  w.member("sample", phases.total(Phase::Sample));
  w.member("select_seeds", phases.total(Phase::SelectSeeds));
  w.member("other", phases.total(Phase::Other));
  w.member("total", phases.total());
  w.end_object();

  // First-entry offsets on the process trace epoch; null when the phase was
  // never entered (e.g. "Sample" when estimation overshot theta, or the
  // residual "Other" bucket which has no scope of its own).
  w.key("phase_starts_seconds");
  w.begin_object();
  auto start_member = [&](const char *name, Phase phase) {
    w.key(name);
    double offset = phases.start_offset(phase);
    if (offset < 0.0)
      w.null();
    else
      w.value(offset);
  };
  start_member("estimate_theta", Phase::EstimateTheta);
  start_member("sample", Phase::Sample);
  start_member("select_seeds", Phase::SelectSeeds);
  start_member("other", Phase::Other);
  w.end_object();

  w.key("theta");
  w.begin_object();
  w.member("value", theta);
  w.member("iterations", theta_iterations);
  w.member("lower_bound", lower_bound);
  w.key("extend_targets");
  w.begin_array();
  for (std::uint64_t target : extend_targets) w.value(target);
  w.end_array();
  w.end_object();

  w.key("samples");
  w.begin_object();
  w.member("generated", num_samples);
  w.key("size_histogram");
  rrr_sizes.to_json(w);
  w.end_object();

  w.key("storage");
  w.begin_object();
  w.member("rrr_peak_bytes", rrr_peak_bytes);
  w.member("total_associations", total_associations);
  w.member("tracker_peak_bytes", tracker_peak_bytes);
  w.member("peak_rss_bytes", peak_rss_bytes);
  w.end_object();

  w.key("selection");
  w.begin_object();
  w.member("rounds", selection_rounds);
  w.member("covered_samples", covered_samples);
  w.member("total_samples", total_samples);
  w.member("coverage_fraction", coverage_fraction);
  w.end_object();

  w.key("mpsim");
  w.begin_object();
  for (const CollectiveStats &c : collectives) {
    w.key(c.name);
    w.begin_object();
    w.member("calls", c.calls);
    w.member("bytes", c.bytes);
    w.end_object();
  }
  w.end_object();

  // Per-round accounting, grouped by round in first-appearance order (the
  // ledger appends rounds as they complete, so that is chronological); each
  // group carries its derived imbalance factor.
  w.key("rounds");
  w.begin_array();
  {
    std::vector<std::uint32_t> order;
    for (const RoundEntry &entry : rounds)
      if (std::find(order.begin(), order.end(), entry.round) == order.end())
        order.push_back(entry.round);
    for (std::uint32_t round : order) {
      std::vector<RoundEntry> ranks;
      for (const RoundEntry &entry : rounds)
        if (entry.round == round) ranks.push_back(entry);
      w.begin_object();
      w.member("round", round);
      w.member("imbalance_factor", round_imbalance_factor(ranks));
      w.key("per_rank");
      w.begin_array();
      for (const RoundEntry &entry : ranks) {
        w.begin_object();
        w.member("rank", static_cast<std::int64_t>(entry.rank));
        w.member("sample_seconds", entry.sample_seconds);
        w.member("select_seconds", entry.select_seconds);
        w.member("collective_wait_seconds", entry.collective_wait_seconds);
        w.member("rrr_sets", entry.rrr_sets);
        w.member("rrr_bytes", entry.rrr_bytes);
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
  }
  w.end_array();

  w.key("memory_timeline");
  w.begin_array();
  for (const MemorySample &sample : memory_timeline) {
    w.begin_object();
    w.member("t_seconds", sample.t_seconds);
    w.member("tracker_live_bytes", sample.tracker_live_bytes);
    w.member("tracker_peak_bytes", sample.tracker_peak_bytes);
    w.member("rss_bytes", sample.rss_bytes);
    w.end_object();
  }
  w.end_array();

  w.key("seeds");
  w.begin_array();
  for (std::uint64_t s : seeds) w.value(s);
  w.end_array();

  w.end_object();
}

std::string RunReport::to_json_string() const {
  JsonWriter w;
  to_json(w);
  return w.str();
}

bool RunReport::write_json_file(const std::string &path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json_string() << "\n";
  return static_cast<bool>(out);
}

// --- ReportLog --------------------------------------------------------------

struct ReportLog::Impl {
  mutable std::mutex mutex;
  std::vector<RunReport> reports;
};

ReportLog &report_log() {
  static ReportLog log;
  return log;
}

ReportLog::Impl &ReportLog::impl() const {
  // Intentionally leaked — same atexit ordering constraint as
  // Registry::impl().
  static Impl *impl = new Impl;
  return *impl;
}

void ReportLog::add(const RunReport &report) {
  Impl &state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.reports.push_back(report);
}

std::size_t ReportLog::size() const {
  Impl &state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.reports.size();
}

void ReportLog::clear() {
  Impl &state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.reports.clear();
}

bool ReportLog::write_json_file(const std::string &path) const {
  Impl &state = impl();
  JsonWriter w;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    w.begin_object();
    w.member("schema_version", RunReport::kSchemaVersion);
    w.key("reports");
    w.begin_array();
    for (const RunReport &report : state.reports) report.to_json(w);
    w.end_array();
    w.key("registry");
    Registry::instance().to_json(w);
    w.end_object();
  }
  std::ofstream out(path);
  if (!out) return false;
  out << w.str() << "\n";
  return static_cast<bool>(out);
}

// --- end-of-process emission ------------------------------------------------

namespace {

std::string &report_output_path() {
  static std::string path;
  return path;
}

void flush_reports_at_exit() {
  const std::string &path = report_output_path();
  if (path.empty()) return;
  if (!report_log().write_json_file(path))
    std::fprintf(stderr, "[metrics] failed to write report log to %s\n",
                 path.c_str());
}

} // namespace

void write_reports_at_exit(const std::string &path) {
  set_enabled(true);
  static bool registered = false;
  report_output_path() = path;
  if (!registered) {
    registered = true;
    std::atexit(flush_reports_at_exit);
  }
}

void mark_run_failed(const std::string &driver, const std::string &reason) {
  RunReport report;
  report.driver = driver;
  report.failed = true;
  report.failure_reason = reason;
  report_log().add(report);
}

bool flush_reports_now() {
  const std::string &path = report_output_path();
  if (path.empty()) return true;
  if (report_log().write_json_file(path)) return true;
  std::fprintf(stderr, "[metrics] failed to write report log to %s\n",
               path.c_str());
  return false;
}

} // namespace ripples::metrics
