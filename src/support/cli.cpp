#include "support/cli.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "support/assert.hpp"

namespace ripples {

CommandLine::CommandLine(int argc, const char *const *argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.size() >= 2 && arg[0] == '-') {
      std::size_t name_begin = (arg.size() >= 2 && arg[1] == '-') ? 2 : 1;
      std::string body = arg.substr(name_begin);
      Option opt;
      if (std::size_t eq = body.find('='); eq != std::string::npos) {
        opt.name = body.substr(0, eq);
        opt.value = body.substr(eq + 1);
        opt.has_value = true;
      } else {
        opt.name = body;
        // `--name value` form: consume the next token unless it looks like
        // another option.  Negative numbers ("-0.5") are values, not options.
        if (i + 1 < argc) {
          std::string next = argv[i + 1];
          bool next_is_option =
              next.size() >= 2 && next[0] == '-' &&
              !(next[1] == '.' || (next[1] >= '0' && next[1] <= '9'));
          if (!next_is_option) {
            opt.value = next;
            opt.has_value = true;
            ++i;
          }
        }
      }
      options_.push_back(std::move(opt));
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

std::optional<std::string> CommandLine::value_of(const std::string &name) const {
  for (const Option &opt : options_)
    if (opt.name == name && opt.has_value) return opt.value;
  return std::nullopt;
}

bool CommandLine::has_flag(const std::string &name) const {
  for (const Option &opt : options_)
    if (opt.name == name) return true;
  return false;
}

std::string CommandLine::get(const std::string &name,
                             const std::string &fallback) const {
  if (auto v = value_of(name)) return *v;
  return fallback;
}

double CommandLine::get(const std::string &name, double fallback) const {
  auto v = value_of(name);
  if (!v) return fallback;
  char *end = nullptr;
  errno = 0;
  double parsed = std::strtod(v->c_str(), &end);
  if (end == v->c_str() || *end != '\0') {
    std::fprintf(stderr, "%s: option --%s expects a number, got '%s'\n",
                 program_.c_str(), name.c_str(), v->c_str());
    std::exit(2);
  }
  if (errno == ERANGE) {
    std::fprintf(stderr, "%s: option --%s value '%s' is out of range\n",
                 program_.c_str(), name.c_str(), v->c_str());
    std::exit(2);
  }
  return parsed;
}

std::int64_t CommandLine::get(const std::string &name,
                              std::int64_t fallback) const {
  auto v = value_of(name);
  if (!v) return fallback;
  char *end = nullptr;
  errno = 0;
  long long parsed = std::strtoll(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0') {
    std::fprintf(stderr, "%s: option --%s expects an integer, got '%s'\n",
                 program_.c_str(), name.c_str(), v->c_str());
    std::exit(2);
  }
  // strtoll saturates on overflow (returning LLONG_MIN/MAX with ERANGE);
  // saturation silently substituted for the requested value once, corrupting
  // a benchmark sweep, so it is a hard parse error.
  if (errno == ERANGE) {
    std::fprintf(stderr, "%s: option --%s value '%s' is out of range\n",
                 program_.c_str(), name.c_str(), v->c_str());
    std::exit(2);
  }
  return parsed;
}

std::int64_t CommandLine::get_bounded(const std::string &name,
                                      std::int64_t fallback, std::int64_t lo,
                                      std::int64_t hi) const {
  RIPPLES_DEBUG_ASSERT(lo <= hi && fallback >= lo && fallback <= hi);
  std::int64_t parsed = get(name, fallback);
  if (parsed < lo || parsed > hi) {
    std::fprintf(stderr,
                 "%s: option --%s expects a value in [%lld, %lld], got %lld\n",
                 program_.c_str(), name.c_str(), static_cast<long long>(lo),
                 static_cast<long long>(hi), static_cast<long long>(parsed));
    std::exit(2);
  }
  return parsed;
}

bool CommandLine::get(const std::string &name, bool fallback) const {
  auto v = value_of(name);
  if (!v) return has_flag(name) ? true : fallback;
  if (*v == "true" || *v == "1" || *v == "yes" || *v == "on") return true;
  if (*v == "false" || *v == "0" || *v == "no" || *v == "off") return false;
  std::fprintf(stderr, "%s: option --%s expects a boolean, got '%s'\n",
               program_.c_str(), name.c_str(), v->c_str());
  std::exit(2);
}

} // namespace ripples
