/// \file trace.hpp
/// \brief Low-overhead span tracing with Chrome trace-event JSON output.
///
/// The metrics registry answers *how much* (counts, bytes, histograms); this
/// module answers *when*.  The paper's argument (Sec. 3, Figs. 5-8) is about
/// phase overlap and synchronization cost — Sample vs. SelectSeeds
/// alternation, per-round All-Reduce stalls, thread imbalance in RRR
/// generation — which only a timeline can show.  The tracer records:
///
///  * `Span`        — RAII scoped duration ("X" complete events), with up to
///    two numeric args (bytes, sample counts, round indices);
///  * `instant()`   — point-in-time markers ("i" events);
///  * `counter()`   — counter tracks ("C" events, e.g. |R| over time);
///  * `flow_begin()`/`flow_step()`/`flow_end()` — causal arrows ("s"/"t"/"f"
///    events sharing a binding id), which Perfetto renders across rank rows:
///    sampler batch → the selection round that consumes it, collective
///    completer → each released waiter.
///
/// Events land in per-thread ring buffers: the owning thread appends with no
/// locks or atomics on shared state (one relaxed publish store); a full ring
/// overwrites its oldest events and the drop count is reported in the output.
/// `write_json_file()` / the atexit hook collect every buffer into one
/// Chrome trace-event document loadable in Perfetto (https://ui.perfetto.dev)
/// or chrome://tracing.
///
/// Identity mapping: mpsim ranks map to trace *processes* (`RankScope` sets
/// the thread-local rank; shared-memory runs are pid 0) and every OS thread
/// gets its own trace *thread* id, so collective stalls show as aligned gaps
/// across rank rows and thread imbalance as ragged span ends within one.
///
/// Cost discipline (same as metrics): when disabled — the default unless
/// `--trace`, `RIPPLES_TRACE`, or `set_enabled(true)` — every site reduces
/// to one relaxed atomic load and a predictable branch.
///
/// Timestamps are microseconds since the process trace epoch shared with
/// PhaseTimers (see process_now_seconds()), so RunReport phase start offsets
/// cross-reference trace spans directly.
///
/// Names, categories, and arg keys must be string literals (or otherwise
/// outlive the process): events store the pointers, not copies.
#ifndef RIPPLES_SUPPORT_TRACE_HPP
#define RIPPLES_SUPPORT_TRACE_HPP

#include <atomic>
#include <cstdint>
#include <string>

namespace ripples::trace {

namespace detail {

/// The global toggle.  Defined in trace.cpp; initialized from the
/// RIPPLES_TRACE environment variable (a truthy value or an output path).
extern std::atomic<bool> g_enabled;

enum class EventType : std::uint8_t {
  Span,
  Instant,
  Counter,
  FlowStart,
  FlowStep,
  FlowEnd,
};

inline constexpr unsigned kMaxArgs = 2;

/// Appends one event to the calling thread's ring buffer (creating the
/// buffer on first use).  Out-of-line so call sites stay small.  \p id is
/// the flow binding id (0 for non-flow events).
void emit(EventType type, const char *category, const char *name,
          std::uint64_t ts_us, std::uint64_t dur_us,
          const char *const *arg_keys, const std::uint64_t *arg_values,
          unsigned num_args, std::uint64_t id = 0);

} // namespace detail

/// True when instrumentation should record.  One relaxed load — hot paths
/// guard with this and skip all other work when tracing is off.
[[nodiscard]] inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Flips the process-wide toggle (does not arrange output by itself).
void set_enabled(bool on);

/// Enables tracing and arms an atexit hook that writes the collected trace
/// to \p path — what `--trace <path>` calls.
void start(const std::string &path);

/// Writes the collected trace to the path armed by start() immediately
/// (true on success or when no path is armed).  atexit hooks do not run
/// when an uncaught exception terminates the process, so failure paths
/// flush the ring buffers explicitly before unwinding further.
bool flush_now();

/// Microseconds since the process trace epoch (shared with PhaseTimers).
[[nodiscard]] std::uint64_t timestamp_us();

/// The calling thread's rank (trace process id); 0 unless inside a
/// RankScope.
[[nodiscard]] int thread_rank();

/// Scoped thread-local rank assignment: events emitted by this thread while
/// the scope is alive carry \p rank as their pid.  mpsim's Context::run
/// wraps every rank body in one.
class RankScope {
public:
  explicit RankScope(int rank);
  RankScope(const RankScope &) = delete;
  RankScope &operator=(const RankScope &) = delete;
  ~RankScope();

private:
  int previous_;
};

/// Point-in-time marker.
inline void instant(const char *category, const char *name) {
  if (enabled())
    detail::emit(detail::EventType::Instant, category, name, timestamp_us(), 0,
                 nullptr, nullptr, 0);
}

/// Point-in-time marker with one numeric arg.
inline void instant(const char *category, const char *name, const char *key,
                    std::uint64_t value) {
  if (enabled())
    detail::emit(detail::EventType::Instant, category, name, timestamp_us(), 0,
                 &key, &value, 1);
}

/// Point-in-time marker with two numeric args.
inline void instant(const char *category, const char *name, const char *key0,
                    std::uint64_t value0, const char *key1,
                    std::uint64_t value1) {
  if (enabled()) {
    const char *keys[detail::kMaxArgs] = {key0, key1};
    const std::uint64_t values[detail::kMaxArgs] = {value0, value1};
    detail::emit(detail::EventType::Instant, category, name, timestamp_us(), 0,
                 keys, values, 2);
  }
}

/// Samples a counter track (rendered as a stacked area chart in Perfetto).
inline void counter(const char *track, std::uint64_t value) {
  if (enabled()) {
    const char *key = "value";
    detail::emit(detail::EventType::Counter, "counter", track, timestamp_us(),
                 0, &key, &value, 1);
  }
}

// --- flow events -------------------------------------------------------------
//
// A flow is one causal arrow (or chain): exactly one "s" start, zero or more
// "t" steps, and one terminating "f" end, all sharing a process-unique
// binding id and the same category/name.  Perfetto draws the arrow from the
// enclosing slice of each emission to the next, so flows connect spans
// across threads and rank rows.  Ids come from new_flow_id(); 0 is never a
// valid flow id.

/// Allocates one process-unique flow binding id (never 0).
[[nodiscard]] std::uint64_t new_flow_id();

/// Allocates \p count consecutive flow ids and returns the first — used
/// when one completer fans out an arrow to every waiter it releases.
[[nodiscard]] std::uint64_t new_flow_ids(std::uint64_t count);

/// Starts a flow at \p ts_us (pass timestamp_us() for "now").  The explicit
/// timestamp lets a collective completer stamp arrows at the completion
/// instant even though the events are emitted just after.
inline void flow_begin(const char *category, const char *name,
                       std::uint64_t id, std::uint64_t ts_us) {
  if (enabled())
    detail::emit(detail::EventType::FlowStart, category, name, ts_us, 0,
                 nullptr, nullptr, 0, id);
}

inline void flow_begin(const char *category, const char *name,
                       std::uint64_t id) {
  flow_begin(category, name, id, timestamp_us());
}

/// Intermediate flow step (optional; chains the arrow through this thread).
inline void flow_step(const char *category, const char *name,
                      std::uint64_t id) {
  if (enabled())
    detail::emit(detail::EventType::FlowStep, category, name, timestamp_us(),
                 0, nullptr, nullptr, 0, id);
}

/// Terminates a flow ("f" with binding point "e": the arrow lands on the
/// slice enclosing this emission).
inline void flow_end(const char *category, const char *name,
                     std::uint64_t id) {
  if (enabled())
    detail::emit(detail::EventType::FlowEnd, category, name, timestamp_us(),
                 0, nullptr, nullptr, 0, id);
}

/// RAII scoped span: measures construction-to-destruction as one complete
/// ("X") event.  When tracing is disabled at construction the span is
/// inert — destruction does nothing, args are ignored.
class Span {
public:
  Span(const char *category, const char *name) {
    if (enabled()) arm(category, name);
  }
  Span(const char *category, const char *name, const char *key,
       std::uint64_t value) {
    if (enabled()) {
      arm(category, name);
      arg(key, value);
    }
  }
  Span(const char *category, const char *name, const char *key0,
       std::uint64_t value0, const char *key1, std::uint64_t value1) {
    if (enabled()) {
      arm(category, name);
      arg(key0, value0);
      arg(key1, value1);
    }
  }

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  /// Attaches a numeric arg; useful for values only known near the end of
  /// the scope (e.g. how many sets a worker generated).  At most
  /// detail::kMaxArgs args are kept; extras are dropped.
  void arg(const char *key, std::uint64_t value) {
    if (armed_ && num_args_ < detail::kMaxArgs) {
      keys_[num_args_] = key;
      values_[num_args_] = value;
      ++num_args_;
    }
  }

  ~Span() {
    if (armed_)
      detail::emit(detail::EventType::Span, category_, name_, start_us_,
                   timestamp_us() - start_us_, keys_, values_, num_args_);
  }

private:
  void arm(const char *category, const char *name) {
    armed_ = true;
    category_ = category;
    name_ = name;
    start_us_ = timestamp_us();
  }

  const char *category_ = nullptr;
  const char *name_ = nullptr;
  std::uint64_t start_us_ = 0;
  const char *keys_[detail::kMaxArgs] = {};
  std::uint64_t values_[detail::kMaxArgs] = {};
  unsigned num_args_ = 0;
  bool armed_ = false;
};

// --- collection --------------------------------------------------------------

/// Serializes every buffered event as one Chrome trace-event JSON document:
/// {"displayTimeUnit", "traceEvents": [...], "otherData": {"dropped_events",
/// "buffers"}}.  Callers should be quiescent (no thread mid-emit).
[[nodiscard]] std::string to_json_string();

/// Writes to_json_string() to \p path; false on I/O failure.
bool write_json_file(const std::string &path);

/// Discards all buffered events (buffers of live threads are reset, buffers
/// of exited threads are freed).  Only call while no thread is emitting.
void clear();

/// Ring capacity (in events) for buffers created after this call; existing
/// buffers keep theirs.  Mainly for tests exercising the overflow policy.
void set_buffer_capacity(std::size_t events);

} // namespace ripples::trace

#endif // RIPPLES_SUPPORT_TRACE_HPP
