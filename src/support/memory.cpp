#include "support/memory.hpp"

#include <cstdio>
#include <cstring>

namespace ripples {

MemoryTracker &MemoryTracker::instance() {
  static MemoryTracker tracker;
  return tracker;
}

namespace {

/// Reads one "<Key>:  <value> kB" line from /proc/self/status.
std::size_t read_status_kb(const char *key) {
  std::FILE *f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  char line[256];
  std::size_t kb = 0;
  const std::size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f)) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      unsigned long long value = 0;
      if (std::sscanf(line + key_len + 1, "%llu", &value) == 1)
        kb = static_cast<std::size_t>(value);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

} // namespace

std::size_t current_rss_bytes() { return read_status_kb("VmRSS") * 1024; }

std::size_t peak_rss_bytes() { return read_status_kb("VmHWM") * 1024; }

std::string format_bytes(std::size_t bytes) {
  static const char *units[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[48];
  if (unit == 0)
    std::snprintf(buf, sizeof(buf), "%zu %s", bytes, units[unit]);
  else
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, units[unit]);
  return buf;
}

} // namespace ripples
