#include "support/memory.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "support/metrics.hpp"
#include "support/timer.hpp"
#include "support/trace.hpp"

namespace ripples {

MemoryTracker &MemoryTracker::instance() {
  static MemoryTracker tracker;
  return tracker;
}

// --- budget & reservations --------------------------------------------------

namespace {

std::string budget_exceeded_message(const std::string &consumer,
                                    std::size_t requested, std::size_t reserved,
                                    std::size_t budget) {
  std::string message = "memory budget exceeded: " + consumer + " requested " +
                        format_bytes(requested) + " with " +
                        format_bytes(reserved) + " already reserved";
  if (budget > 0)
    message += " of the " + format_bytes(budget) + " budget";
  else
    message += " (refused by injected oom fault)";
  return message;
}

metrics::Counter &reservations_counter() {
  static metrics::Counter &c =
      metrics::Registry::instance().counter("mem.budget.reservations");
  return c;
}

metrics::Counter &refusals_counter() {
  static metrics::Counter &c =
      metrics::Registry::instance().counter("mem.budget.refusals");
  return c;
}

} // namespace

MemoryBudgetExceeded::MemoryBudgetExceeded(const std::string &consumer,
                                           std::size_t requested,
                                           std::size_t reserved,
                                           std::size_t budget)
    : std::runtime_error(
          budget_exceeded_message(consumer, requested, reserved, budget)),
      consumer_(consumer), requested_(requested) {}

bool MemoryTracker::oom_fault_fires() {
  const int rank = trace::thread_rank();
  std::lock_guard<std::mutex> lock(oom_mutex_);
  const auto slot = static_cast<std::size_t>(rank < 0 ? 0 : rank);
  if (slot >= oom_sites_.size()) {
    oom_sites_.resize(slot + 1, 0);
    oom_sticky_.resize(slot + 1, 0);
  }
  const std::uint64_t site = oom_sites_[slot]++;
  if (!oom_sticky_[slot]) {
    for (const OomFaultSpec &fault : oom_faults_)
      if (fault.rank == rank && fault.site == site) {
        // Sticky from here on: the rank hit its modelled ceiling, so the
        // ladder's later rungs (compress, shed) deterministically fail too.
        oom_sticky_[slot] = 1;
        break;
      }
  }
  return oom_sticky_[slot] != 0;
}

bool MemoryTracker::try_reserve(std::size_t bytes, const char *consumer) {
  if (metrics::enabled()) reservations_counter().increment();
  bool refused = false;
  if (have_oom_faults_.load(std::memory_order_relaxed) && oom_fault_fires()) {
    refused = true;
  } else {
    const std::size_t budget = budget_.load(std::memory_order_relaxed);
    if (budget == 0) {
      reserved_.fetch_add(bytes, std::memory_order_relaxed);
    } else {
      std::size_t current = reserved_.load(std::memory_order_relaxed);
      for (;;) {
        if (bytes > budget || current > budget - bytes) {
          refused = true;
          break;
        }
        if (reserved_.compare_exchange_weak(current, current + bytes,
                                            std::memory_order_relaxed))
          break;
      }
    }
  }
  if (refused) {
    if (metrics::enabled()) refusals_counter().increment();
    trace::instant("mem", "mem.budget", "refused_bytes", bytes, "reserved",
                   reserved_.load(std::memory_order_relaxed));
    (void)consumer;
    return false;
  }
  allocate(bytes);
  return true;
}

void MemoryTracker::install_oom_faults(std::vector<OomFaultSpec> faults) {
  std::lock_guard<std::mutex> lock(oom_mutex_);
  oom_faults_ = std::move(faults);
  oom_sites_.clear();
  oom_sticky_.clear();
  have_oom_faults_.store(!oom_faults_.empty(), std::memory_order_relaxed);
}

void MemoryTracker::clear_oom_faults() {
  std::lock_guard<std::mutex> lock(oom_mutex_);
  oom_faults_.clear();
  oom_sites_.clear();
  oom_sticky_.clear();
  have_oom_faults_.store(false, std::memory_order_relaxed);
}

namespace {

/// Reads one "<Key>:  <value> kB" line from /proc/self/status.
std::size_t read_status_kb(const char *key) {
  std::FILE *f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  char line[256];
  std::size_t kb = 0;
  const std::size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f)) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      unsigned long long value = 0;
      if (std::sscanf(line + key_len + 1, "%llu", &value) == 1)
        kb = static_cast<std::size_t>(value);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

} // namespace

std::size_t current_rss_bytes() { return read_status_kb("VmRSS") * 1024; }

std::size_t peak_rss_bytes() { return read_status_kb("VmHWM") * 1024; }

std::string format_bytes(std::size_t bytes) {
  static const char *units[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[48];
  if (unit == 0)
    std::snprintf(buf, sizeof(buf), "%zu %s", bytes, units[unit]);
  else
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, units[unit]);
  return buf;
}

// --- ResourceSampler --------------------------------------------------------

ResourceSampler &ResourceSampler::instance() {
  // Intentionally leaked (same atexit ordering constraint as the trace and
  // metrics state): the atexit stop() must run against a live object, and
  // process-lifetime state has no destruction order to get wrong.
  static ResourceSampler *sampler = new ResourceSampler;
  return *sampler;
}

void ResourceSampler::start(double hz) {
  hz = std::clamp(hz, 0.1, 1000.0);
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) return;
  stop_requested_ = false;
  period_seconds_ = 1.0 / hz;
  running_ = true;
  thread_ = std::thread([this] { run(); });
  // Joining at exit makes the sampler quiescent before the trace/report
  // atexit flushes walk their buffers (those hooks were registered earlier;
  // atexit runs LIFO).
  static bool registered = false;
  if (!registered) {
    registered = true;
    std::atexit([] { instance().stop(); });
  }
}

void ResourceSampler::stop() {
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
    running_ = false;
    worker = std::move(thread_);
    cv_.notify_all();
  }
  if (worker.joinable()) worker.join();
  // Final sample at the stop boundary: a run shorter than one period would
  // otherwise leave the series empty (the loop records, then waits, and a
  // stop during the first wait skipped the recording entirely), so short
  // --profile-mem runs had an empty memory_timeline.
  record_once();
}

bool ResourceSampler::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

std::vector<ResourceSample> ResourceSampler::samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return samples_;
}

void ResourceSampler::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  samples_.clear();
  compactions_ = 0;
}

void ResourceSampler::set_capacity(std::size_t max_samples) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = std::max<std::size_t>(max_samples, 2);
}

std::uint64_t ResourceSampler::compactions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return compactions_;
}

void ResourceSampler::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_requested_) {
    lock.unlock();
    record_once();
    lock.lock();
    cv_.wait_for(lock,
                 std::chrono::duration<double>(period_seconds_),
                 [this] { return stop_requested_; });
  }
}

void ResourceSampler::record_once() {
  ResourceSample sample;
  sample.t_seconds = process_now_seconds();
  sample.tracker_live_bytes = MemoryTracker::instance().live_bytes();
  sample.tracker_peak_bytes = MemoryTracker::instance().peak_bytes();
  sample.rss_bytes = current_rss_bytes();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    samples_.push_back(sample);
    if (samples_.size() > capacity_) {
      // Decimate (keep every other sample) and halve the rate: unlike the
      // trace ring's recent-window overwrite, the memory series wants the
      // whole-run shape, so overflow trades resolution, not span.
      std::size_t kept = 0;
      for (std::size_t i = 0; i < samples_.size(); i += 2)
        samples_[kept++] = samples_[i];
      samples_.resize(kept);
      period_seconds_ *= 2.0;
      ++compactions_;
    }
  }
  if (trace::enabled()) {
    trace::counter("mem.tracker_live_bytes", sample.tracker_live_bytes);
    trace::counter("mem.tracker_peak_bytes", sample.tracker_peak_bytes);
    trace::counter("mem.rss_bytes", sample.rss_bytes);
  }
}

namespace {

/// RIPPLES_PROFILE_MEM mirrors the other env toggles: a truthy value starts
/// the sampler at the 10 Hz default; a number is taken as the rate in Hz.
struct ProfileMemEnvInit {
  ProfileMemEnvInit() {
    const char *env = std::getenv("RIPPLES_PROFILE_MEM");
    if (env == nullptr) return;
    std::string_view v(env);
    if (v.empty() || v == "0" || v == "false" || v == "off" || v == "no")
      return;
    char *end = nullptr;
    double hz = std::strtod(env, &end);
    if (end != env && *end == '\0' && hz > 0.0)
      ResourceSampler::instance().start(hz);
    else
      ResourceSampler::instance().start();
  }
};

ProfileMemEnvInit profile_mem_env_init; // NOLINT: intentional side effect

} // namespace

} // namespace ripples
