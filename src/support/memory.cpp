#include "support/memory.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "support/timer.hpp"
#include "support/trace.hpp"

namespace ripples {

MemoryTracker &MemoryTracker::instance() {
  static MemoryTracker tracker;
  return tracker;
}

namespace {

/// Reads one "<Key>:  <value> kB" line from /proc/self/status.
std::size_t read_status_kb(const char *key) {
  std::FILE *f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  char line[256];
  std::size_t kb = 0;
  const std::size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f)) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      unsigned long long value = 0;
      if (std::sscanf(line + key_len + 1, "%llu", &value) == 1)
        kb = static_cast<std::size_t>(value);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

} // namespace

std::size_t current_rss_bytes() { return read_status_kb("VmRSS") * 1024; }

std::size_t peak_rss_bytes() { return read_status_kb("VmHWM") * 1024; }

std::string format_bytes(std::size_t bytes) {
  static const char *units[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[48];
  if (unit == 0)
    std::snprintf(buf, sizeof(buf), "%zu %s", bytes, units[unit]);
  else
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, units[unit]);
  return buf;
}

// --- ResourceSampler --------------------------------------------------------

ResourceSampler &ResourceSampler::instance() {
  // Intentionally leaked (same atexit ordering constraint as the trace and
  // metrics state): the atexit stop() must run against a live object, and
  // process-lifetime state has no destruction order to get wrong.
  static ResourceSampler *sampler = new ResourceSampler;
  return *sampler;
}

void ResourceSampler::start(double hz) {
  hz = std::clamp(hz, 0.1, 1000.0);
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) return;
  stop_requested_ = false;
  period_seconds_ = 1.0 / hz;
  running_ = true;
  thread_ = std::thread([this] { run(); });
  // Joining at exit makes the sampler quiescent before the trace/report
  // atexit flushes walk their buffers (those hooks were registered earlier;
  // atexit runs LIFO).
  static bool registered = false;
  if (!registered) {
    registered = true;
    std::atexit([] { instance().stop(); });
  }
}

void ResourceSampler::stop() {
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
    running_ = false;
    worker = std::move(thread_);
    cv_.notify_all();
  }
  if (worker.joinable()) worker.join();
}

bool ResourceSampler::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

std::vector<ResourceSample> ResourceSampler::samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return samples_;
}

void ResourceSampler::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  samples_.clear();
  compactions_ = 0;
}

void ResourceSampler::set_capacity(std::size_t max_samples) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = std::max<std::size_t>(max_samples, 2);
}

std::uint64_t ResourceSampler::compactions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return compactions_;
}

void ResourceSampler::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_requested_) {
    lock.unlock();
    record_once();
    lock.lock();
    cv_.wait_for(lock,
                 std::chrono::duration<double>(period_seconds_),
                 [this] { return stop_requested_; });
  }
}

void ResourceSampler::record_once() {
  ResourceSample sample;
  sample.t_seconds = process_now_seconds();
  sample.tracker_live_bytes = MemoryTracker::instance().live_bytes();
  sample.tracker_peak_bytes = MemoryTracker::instance().peak_bytes();
  sample.rss_bytes = current_rss_bytes();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    samples_.push_back(sample);
    if (samples_.size() > capacity_) {
      // Decimate (keep every other sample) and halve the rate: unlike the
      // trace ring's recent-window overwrite, the memory series wants the
      // whole-run shape, so overflow trades resolution, not span.
      std::size_t kept = 0;
      for (std::size_t i = 0; i < samples_.size(); i += 2)
        samples_[kept++] = samples_[i];
      samples_.resize(kept);
      period_seconds_ *= 2.0;
      ++compactions_;
    }
  }
  if (trace::enabled()) {
    trace::counter("mem.tracker_live_bytes", sample.tracker_live_bytes);
    trace::counter("mem.tracker_peak_bytes", sample.tracker_peak_bytes);
    trace::counter("mem.rss_bytes", sample.rss_bytes);
  }
}

namespace {

/// RIPPLES_PROFILE_MEM mirrors the other env toggles: a truthy value starts
/// the sampler at the 10 Hz default; a number is taken as the rate in Hz.
struct ProfileMemEnvInit {
  ProfileMemEnvInit() {
    const char *env = std::getenv("RIPPLES_PROFILE_MEM");
    if (env == nullptr) return;
    std::string_view v(env);
    if (v.empty() || v == "0" || v == "false" || v == "off" || v == "no")
      return;
    char *end = nullptr;
    double hz = std::strtod(env, &end);
    if (end != env && *end == '\0' && hz > 0.0)
      ResourceSampler::instance().start(hz);
    else
      ResourceSampler::instance().start();
  }
};

ProfileMemEnvInit profile_mem_env_init; // NOLINT: intentional side effect

} // namespace

} // namespace ripples
