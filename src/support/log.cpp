#include "support/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ripples {

namespace {

std::atomic<int> g_level{[] {
  const char *env = std::getenv("RIPPLES_LOG");
  if (!env) return static_cast<int>(LogLevel::Info);
  if (std::strcmp(env, "error") == 0) return static_cast<int>(LogLevel::Error);
  if (std::strcmp(env, "warn") == 0) return static_cast<int>(LogLevel::Warn);
  if (std::strcmp(env, "debug") == 0) return static_cast<int>(LogLevel::Debug);
  return static_cast<int>(LogLevel::Info);
}()};

const char *level_tag(LogLevel level) {
  switch (level) {
  case LogLevel::Error: return "ERROR";
  case LogLevel::Warn: return "WARN ";
  case LogLevel::Info: return "INFO ";
  case LogLevel::Debug: return "DEBUG";
  }
  return "?";
}

} // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log(LogLevel level, const char *fmt, ...) {
  if (static_cast<int>(level) > g_level.load(std::memory_order_relaxed)) return;
  char line[1024];
  int offset = std::snprintf(line, sizeof(line), "[ripples %s] ", level_tag(level));
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(line + offset, sizeof(line) - static_cast<std::size_t>(offset),
                 fmt, args);
  va_end(args);
  std::fprintf(stderr, "%s\n", line);
}

} // namespace ripples
