/// \file table.hpp
/// \brief Aligned-table and CSV emission for the benchmark harness.
///
/// Every bench binary regenerates one table or figure from the paper.  It
/// builds a Table with the same columns the paper reports, prints it aligned
/// for a human reader, and optionally dumps CSV for plotting.
#ifndef RIPPLES_SUPPORT_TABLE_HPP
#define RIPPLES_SUPPORT_TABLE_HPP

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ripples {

/// A cell is stored as preformatted text; typed add_* helpers format numbers
/// consistently (fixed precision for seconds, thousands grouping for counts).
class TableRow {
public:
  TableRow &add(std::string text) {
    cells_.push_back(std::move(text));
    return *this;
  }
  TableRow &add(const char *text) { return add(std::string(text)); }
  TableRow &add(double value, int precision = 3);
  TableRow &add(std::uint64_t value);
  TableRow &add(std::int64_t value);
  TableRow &add(int value) { return add(static_cast<std::int64_t>(value)); }
  TableRow &add(unsigned value) { return add(static_cast<std::uint64_t>(value)); }

  [[nodiscard]] const std::vector<std::string> &cells() const { return cells_; }

private:
  std::vector<std::string> cells_;
};

/// A titled table with a header row and homogeneous columns.
class Table {
public:
  Table(std::string title, std::vector<std::string> header)
      : title_(std::move(title)), header_(std::move(header)) {}

  /// Starts a new row; fill it through the returned reference.
  TableRow &new_row() { return rows_.emplace_back(); }

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] const std::string &title() const { return title_; }

  /// Prints the table with aligned columns and a rule under the header.
  void print(std::ostream &os) const;

  /// Emits the header and rows as RFC-4180-ish CSV (no quoting needed for
  /// our numeric/identifier content).
  void write_csv(std::ostream &os) const;

  /// Convenience: print to stdout and, if \p csv_path is non-empty, also
  /// write the CSV file.
  void emit(const std::string &csv_path = "") const;

private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<TableRow> rows_;
};

} // namespace ripples

#endif // RIPPLES_SUPPORT_TABLE_HPP
