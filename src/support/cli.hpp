/// \file cli.hpp
/// \brief Minimal command-line option parsing for examples and benches.
///
/// All executables in this repository share the same option conventions
/// (--epsilon, -k, --model, --dataset, --scale, --threads, --ranks, ...), so
/// a small shared parser keeps them consistent.  Options take the forms
/// `--name value`, `--name=value`, and `--flag`.  Because `--name value` is
/// supported, a bare flag absorbs a following non-option token as its value;
/// place positional arguments before the options (or write `--flag=true`).
#ifndef RIPPLES_SUPPORT_CLI_HPP
#define RIPPLES_SUPPORT_CLI_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ripples {

/// Parses argv once and answers typed lookups.  Unknown options are
/// collected so a program can reject typos.
class CommandLine {
public:
  CommandLine(int argc, const char *const *argv);

  /// Declares an option (for --help and unknown-option detection) and
  /// returns its value if present.
  [[nodiscard]] std::optional<std::string>
  value_of(const std::string &name) const;

  /// True if `--name` appears (with or without a value).
  [[nodiscard]] bool has_flag(const std::string &name) const;

  /// Typed getters with defaults.  Malformed numbers terminate with a
  /// diagnostic; silently misparsing an experiment parameter would corrupt a
  /// whole benchmark run.
  [[nodiscard]] std::string get(const std::string &name,
                                const std::string &fallback) const;
  [[nodiscard]] double get(const std::string &name, double fallback) const;
  [[nodiscard]] std::int64_t get(const std::string &name,
                                 std::int64_t fallback) const;
  [[nodiscard]] bool get(const std::string &name, bool fallback) const;

  /// Integer getter with an inclusive range screen: a parsed value outside
  /// [lo, hi] terminates with a named-flag diagnostic and exit code 2, the
  /// same way a malformed number does.  Options destined for unsigned or
  /// narrower storage pass their real bounds here so `--checkpoint-every -1`
  /// or an oversized `--watchdog-ms` is rejected at the parser instead of
  /// wrapping through a later narrowing cast.
  [[nodiscard]] std::int64_t get_bounded(const std::string &name,
                                         std::int64_t fallback,
                                         std::int64_t lo,
                                         std::int64_t hi) const;

  /// Positional (non-option) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string> &positional() const {
    return positional_;
  }

  [[nodiscard]] const std::string &program_name() const { return program_; }

private:
  struct Option {
    std::string name;
    std::string value;
    bool has_value = false;
  };

  std::string program_;
  std::vector<Option> options_;
  std::vector<std::string> positional_;
};

} // namespace ripples

#endif // RIPPLES_SUPPORT_CLI_HPP
