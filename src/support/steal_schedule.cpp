#include "support/steal_schedule.hpp"

#include <atomic>

namespace ripples::steal_schedule {
namespace {

std::atomic<int> g_mode{static_cast<int>(Mode::Default)};
std::atomic<std::uint64_t> g_seed{0};

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

} // namespace

void set_plan(const Plan &plan) {
  g_seed.store(plan.seed, std::memory_order_relaxed);
  g_mode.store(static_cast<int>(plan.mode), std::memory_order_release);
}

void reset() { set_plan(Plan{}); }

bool active() {
  return g_mode.load(std::memory_order_relaxed) !=
         static_cast<int>(Mode::Default);
}

Decision decide(int executor, std::uint64_t step) {
  switch (static_cast<Mode>(g_mode.load(std::memory_order_acquire))) {
  case Mode::Default:
    return Decision{};
  case Mode::StealNothing:
    return Decision{false, false, 0};
  case Mode::StealEverything:
    return Decision{true, true, 0};
  case Mode::Seeded: {
    std::uint64_t h = splitmix64(
        splitmix64(g_seed.load(std::memory_order_relaxed) ^
                   (static_cast<std::uint64_t>(executor) << 32)) ^
        step);
    Decision d;
    // Deny stealing one step in four so seeded schedules also exercise the
    // drain-your-own-queue path, not just victim rotation.
    d.allow_steal = (h & 3u) != 0;
    d.steal_first = ((h >> 2) & 1u) != 0;
    d.victim_offset = (h >> 3) & 0xffu;
    return d;
  }
  }
  return Decision{};
}

} // namespace ripples::steal_schedule
