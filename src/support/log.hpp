/// \file log.hpp
/// \brief Leveled diagnostic logging to stderr.
///
/// Benchmarks print their results through Table; this logger carries
/// progress and diagnostics (dataset generation, theta estimates, rank
/// lifecycles) that should not pollute the tabular output.
#ifndef RIPPLES_SUPPORT_LOG_HPP
#define RIPPLES_SUPPORT_LOG_HPP

#include <cstdarg>

namespace ripples {

enum class LogLevel : int { Error = 0, Warn = 1, Info = 2, Debug = 3 };

/// Sets the process-wide verbosity (default Info; RIPPLES_LOG env overrides:
/// "error", "warn", "info", "debug").
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// printf-style logging; a line is emitted only if \p level is enabled.
/// Thread-safe (one write per line).
void log(LogLevel level, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

#define RIPPLES_LOG_ERROR(...) ::ripples::log(::ripples::LogLevel::Error, __VA_ARGS__)
#define RIPPLES_LOG_WARN(...) ::ripples::log(::ripples::LogLevel::Warn, __VA_ARGS__)
#define RIPPLES_LOG_INFO(...) ::ripples::log(::ripples::LogLevel::Info, __VA_ARGS__)
#define RIPPLES_LOG_DEBUG(...) ::ripples::log(::ripples::LogLevel::Debug, __VA_ARGS__)

} // namespace ripples

#endif // RIPPLES_SUPPORT_LOG_HPP
