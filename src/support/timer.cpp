#include "support/timer.hpp"

#include <cstdio>

namespace ripples {

namespace detail {

StopWatch::clock::time_point process_epoch() {
  // Captured on first use by either PhaseTimers (ScopedPhase) or the trace
  // subsystem; both express timestamps relative to this one instant so run
  // reports and trace timelines cross-reference.
  static const StopWatch::clock::time_point epoch = StopWatch::clock::now();
  return epoch;
}

} // namespace detail

double process_now_seconds() {
  return std::chrono::duration<double>(StopWatch::clock::now() -
                                       detail::process_epoch())
      .count();
}

const char *to_string(Phase phase) {
  switch (phase) {
  case Phase::EstimateTheta: return "EstimateTheta";
  case Phase::Sample: return "Sample";
  case Phase::SelectSeeds: return "SelectSeeds";
  case Phase::Other: return "Other";
  }
  return "?";
}

std::string PhaseTimers::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "EstimateTheta=%.3fs Sample=%.3fs SelectSeeds=%.3fs Other=%.3fs",
                total(Phase::EstimateTheta), total(Phase::Sample),
                total(Phase::SelectSeeds), total(Phase::Other));
  return buf;
}

} // namespace ripples
