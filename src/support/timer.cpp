#include "support/timer.hpp"

#include <cstdio>

namespace ripples {

const char *to_string(Phase phase) {
  switch (phase) {
  case Phase::EstimateTheta: return "EstimateTheta";
  case Phase::Sample: return "Sample";
  case Phase::SelectSeeds: return "SelectSeeds";
  case Phase::Other: return "Other";
  }
  return "?";
}

std::string PhaseTimers::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "EstimateTheta=%.3fs Sample=%.3fs SelectSeeds=%.3fs Other=%.3fs",
                total(Phase::EstimateTheta), total(Phase::Sample),
                total(Phase::SelectSeeds), total(Phase::Other));
  return buf;
}

} // namespace ripples
