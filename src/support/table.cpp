#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "support/assert.hpp"

namespace ripples {

TableRow &TableRow::add(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return add(std::string(buf));
}

TableRow &TableRow::add(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(value));
  return add(std::string(buf));
}

TableRow &TableRow::add(std::int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  return add(std::string(buf));
}

void Table::print(std::ostream &os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const TableRow &row : rows_) {
    RIPPLES_ASSERT_MSG(row.cells().size() == header_.size(),
                       "row arity must match the header");
    for (std::size_t c = 0; c < row.cells().size(); ++c)
      width[c] = std::max(width[c], row.cells()[c].size());
  }

  auto print_row = [&](const std::vector<std::string> &cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << cells[c];
      for (std::size_t pad = cells[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };

  os << "== " << title_ << " ==\n";
  print_row(header_);
  std::size_t rule = header_.empty() ? 0 : 2 * (header_.size() - 1);
  for (std::size_t w : width) rule += w;
  for (std::size_t i = 0; i < rule; ++i) os << '-';
  os << '\n';
  for (const TableRow &row : rows_) print_row(row.cells());
  os.flush();
}

void Table::write_csv(std::ostream &os) const {
  auto write_row = [&](const std::vector<std::string> &cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  write_row(header_);
  for (const TableRow &row : rows_) write_row(row.cells());
}

void Table::emit(const std::string &csv_path) const {
  print(std::cout);
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out) {
      std::cerr << "ripples: cannot open " << csv_path << " for writing\n";
      return;
    }
    write_csv(out);
    std::cout << "[csv written to " << csv_path << "]\n";
  }
}

} // namespace ripples
