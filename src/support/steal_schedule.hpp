/// \file steal_schedule.hpp
/// \brief Seeded schedule-perturbation hook for the work-stealing sampler
/// (DESIGN.md §13).
///
/// The stealing scheduler promises a collection byte-identical under *every*
/// steal schedule, but the schedule an unperturbed run takes is whatever the
/// OS thread scheduler produced — one point in the schedule space.  This
/// hook lets tests force the decision sequence instead: a process-wide plan
/// maps (executor, step) to a deterministic steal decision, so a property
/// harness can sweep seeded schedules (plus the steal-everything and
/// steal-nothing extremes) and assert the output never moves.
///
/// The hook is test infrastructure, not a tuning knob: with no plan
/// installed, decide() returns the natural greedy policy (drain your own
/// queue, steal when it runs dry) at the cost of one relaxed atomic load.
#ifndef RIPPLES_SUPPORT_STEAL_SCHEDULE_HPP
#define RIPPLES_SUPPORT_STEAL_SCHEDULE_HPP

#include <cstdint>

namespace ripples::steal_schedule {

enum class Mode : int {
  /// No perturbation: executors drain their own queue first and steal only
  /// when it is empty (the production policy).
  Default = 0,
  /// Executors never steal — every chunk runs on the rank/thread whose
  /// queue it was published to (the maximal-imbalance extreme).
  StealNothing,
  /// Executors attempt a steal before every own-queue pop — the
  /// maximal-migration extreme.
  StealEverything,
  /// Pseudorandom decisions derived from hash(seed, executor, step):
  /// whether stealing is allowed this step, whether to steal before
  /// popping, and which victim to scan first.
  Seeded,
};

struct Plan {
  Mode mode = Mode::Default;
  std::uint64_t seed = 0;
};

/// One scheduling decision for \p executor at its \p step-th loop
/// iteration.  All three fields are pure functions of (plan, executor,
/// step), so a replayed run takes the identical schedule.
struct Decision {
  bool allow_steal = true;
  bool steal_first = false;
  std::uint64_t victim_offset = 0;
};

/// Installs \p plan process-wide (tests only; not thread-safe against
/// concurrent decide() storms by design — install before launching ranks).
void set_plan(const Plan &plan);

/// Restores the default (no perturbation) plan.
void reset();

/// True when a non-default plan is installed (one relaxed load).
[[nodiscard]] bool active();

/// The installed plan's decision for (\p executor, \p step).
[[nodiscard]] Decision decide(int executor, std::uint64_t step);

/// RAII plan installer for tests.
class ScopedPlan {
public:
  explicit ScopedPlan(const Plan &plan) { set_plan(plan); }
  ~ScopedPlan() { reset(); }
  ScopedPlan(const ScopedPlan &) = delete;
  ScopedPlan &operator=(const ScopedPlan &) = delete;
};

} // namespace ripples::steal_schedule

#endif // RIPPLES_SUPPORT_STEAL_SCHEDULE_HPP
