#include "support/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "support/json.hpp"
#include "support/timer.hpp"

namespace ripples::trace {

namespace detail {
std::atomic<bool> g_enabled{false};
} // namespace detail

namespace {

using detail::EventType;
using detail::kMaxArgs;

constexpr std::size_t kDefaultCapacity = 1 << 15;

/// One buffered event.  Name/category/keys are borrowed pointers (string
/// literals at every call site), which keeps the record trivially copyable
/// and the emit path allocation-free.
struct Event {
  const char *category = nullptr;
  const char *name = nullptr;
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  std::uint64_t id = 0; ///< Flow binding id (flow events only; 0 otherwise).
  const char *arg_keys[kMaxArgs] = {};
  std::uint64_t arg_values[kMaxArgs] = {};
  std::int32_t pid = 0;
  std::uint8_t num_args = 0;
  EventType type = EventType::Span;
};

/// Single-producer ring buffer owned by one thread.  The owner writes a slot
/// then publishes with one release store; the flusher reads `published` with
/// acquire.  When the ring wraps, the oldest events are overwritten (the
/// most recent window survives) and the overflow is counted at flush.
struct ThreadBuffer {
  explicit ThreadBuffer(std::size_t cap, std::uint32_t id)
      : slots(cap), capacity(cap), tid(id) {}

  std::vector<Event> slots;
  std::size_t capacity;
  std::uint64_t count = 0; ///< Events attempted (monotonic; owner-only).
  std::atomic<std::uint64_t> published{0};
  std::uint32_t tid;
  /// Set when the owning thread exited: `slots` holds the final ordered
  /// window exactly (no ring arithmetic) and `dropped` the overflow.
  bool retired = false;
  std::uint64_t dropped = 0;
};

struct TraceState {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_tid = 1;
  std::size_t capacity = kDefaultCapacity;
  std::string output_path;
};

TraceState &state() {
  // Intentionally leaked: rank threads may retire their buffers after main
  // exits static destruction, and the atexit flush must still walk them.
  static TraceState *s = new TraceState;
  return *s;
}

/// The buffer's events in emission order (oldest surviving first), plus the
/// overflow count.  Caller holds the state mutex or owns the buffer.
std::pair<std::vector<Event>, std::uint64_t>
ordered_window(const ThreadBuffer &buffer) {
  if (buffer.retired) return {buffer.slots, buffer.dropped};
  const std::uint64_t n = buffer.published.load(std::memory_order_acquire);
  const std::size_t cap = buffer.capacity;
  std::vector<Event> events;
  if (n <= cap) {
    events.assign(buffer.slots.begin(),
                  buffer.slots.begin() + static_cast<std::ptrdiff_t>(n));
    return {std::move(events), 0};
  }
  events.reserve(cap);
  for (std::uint64_t i = n - cap; i < n; ++i)
    events.push_back(buffer.slots[static_cast<std::size_t>(i % cap)]);
  return {std::move(events), n - cap};
}

thread_local int t_rank = 0;

/// Thread-local handle: compacts the buffer when the thread exits so
/// long-lived processes that churn rank threads pay memory proportional to
/// the events recorded, not to thread count x ring capacity.
struct BufferHandle {
  ThreadBuffer *buffer = nullptr;

  ~BufferHandle() {
    if (buffer == nullptr) return;
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    auto [events, dropped] = ordered_window(*buffer);
    buffer->slots = std::move(events);
    buffer->slots.shrink_to_fit();
    buffer->dropped = dropped;
    buffer->retired = true;
  }
};

thread_local BufferHandle t_handle;

ThreadBuffer &thread_buffer() {
  if (t_handle.buffer == nullptr) {
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.buffers.push_back(
        std::make_unique<ThreadBuffer>(s.capacity, s.next_tid++));
    t_handle.buffer = s.buffers.back().get();
  }
  return *t_handle.buffer;
}

const char *phase_code(EventType type) {
  switch (type) {
  case EventType::Span: return "X";
  case EventType::Instant: return "i";
  case EventType::Counter: return "C";
  case EventType::FlowStart: return "s";
  case EventType::FlowStep: return "t";
  case EventType::FlowEnd: return "f";
  }
  return "X";
}

/// Flow binding ids are process-global so arrows can cross rank rows; the
/// counter starts at 1 because 0 marks "not a flow event".
std::atomic<std::uint64_t> g_next_flow_id{1};

void flush_at_exit() {
  TraceState &s = state();
  std::string path;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    path = s.output_path;
  }
  if (path.empty()) return;
  if (!write_json_file(path))
    std::fprintf(stderr, "[trace] failed to write trace to %s\n", path.c_str());
}

bool env_truthy(std::string_view v) {
  return v == "1" || v == "true" || v == "on" || v == "yes";
}

bool env_falsy(std::string_view v) {
  return v.empty() || v == "0" || v == "false" || v == "off" || v == "no";
}

/// RIPPLES_TRACE mirrors RIPPLES_METRICS: a truthy value enables tracing
/// (writing to ripples_trace.json at exit); any other non-falsy value is
/// taken as the output path.
struct EnvInit {
  EnvInit() {
    const char *env = std::getenv("RIPPLES_TRACE");
    if (env == nullptr) return;
    std::string_view v(env);
    if (env_falsy(v)) return;
    start(env_truthy(v) ? std::string("ripples_trace.json") : std::string(v));
  }
};

EnvInit env_init; // NOLINT: intentional static-init side effect

} // namespace

namespace detail {

void emit(EventType type, const char *category, const char *name,
          std::uint64_t ts_us, std::uint64_t dur_us,
          const char *const *arg_keys, const std::uint64_t *arg_values,
          unsigned num_args, std::uint64_t id) {
  ThreadBuffer &buffer = thread_buffer();
  Event &slot = buffer.slots[static_cast<std::size_t>(
      buffer.count % buffer.capacity)];
  slot.category = category;
  slot.name = name;
  slot.ts_us = ts_us;
  slot.dur_us = dur_us;
  slot.id = id;
  slot.pid = t_rank;
  slot.type = type;
  slot.num_args = static_cast<std::uint8_t>(std::min(num_args, kMaxArgs));
  for (unsigned a = 0; a < slot.num_args; ++a) {
    slot.arg_keys[a] = arg_keys[a];
    slot.arg_values[a] = arg_values[a];
  }
  ++buffer.count;
  buffer.published.store(buffer.count, std::memory_order_release);
}

} // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t new_flow_id() {
  return g_next_flow_id.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t new_flow_ids(std::uint64_t count) {
  return g_next_flow_id.fetch_add(count, std::memory_order_relaxed);
}

void start(const std::string &path) {
  // Pin the epoch before any event so timestamps start near zero.
  (void)ripples::detail::process_epoch();
  TraceState &s = state();
  static bool registered = false;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    s.output_path = path;
    if (!registered) {
      registered = true;
      std::atexit(flush_at_exit);
    }
  }
  set_enabled(true);
}

bool flush_now() {
  TraceState &s = state();
  std::string path;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    path = s.output_path;
  }
  if (path.empty()) return true;
  if (write_json_file(path)) return true;
  std::fprintf(stderr, "[trace] failed to write trace to %s\n", path.c_str());
  return false;
}

std::uint64_t timestamp_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - ripples::detail::process_epoch())
          .count());
}

int thread_rank() { return t_rank; }

RankScope::RankScope(int rank) : previous_(t_rank) { t_rank = rank; }

RankScope::~RankScope() { t_rank = previous_; }

std::string to_json_string() {
  TraceState &s = state();
  std::lock_guard<std::mutex> lock(s.mutex);

  std::uint64_t total_dropped = 0;
  std::set<std::int32_t> pids;
  std::set<std::pair<std::int32_t, std::uint32_t>> threads;

  JsonWriter w;
  w.begin_object();
  w.member("displayTimeUnit", "ms");
  w.key("traceEvents");
  w.begin_array();
  for (const auto &buffer : s.buffers) {
    auto [events, dropped] = ordered_window(*buffer);
    total_dropped += dropped;
    for (const Event &event : events) {
      pids.insert(event.pid);
      threads.insert({event.pid, buffer->tid});
      w.begin_object();
      w.member("name", event.name);
      w.member("cat", event.category);
      w.member("ph", phase_code(event.type));
      w.member("ts", event.ts_us);
      if (event.type == EventType::Span) w.member("dur", event.dur_us);
      if (event.type == EventType::Instant) w.member("s", "t");
      if (event.id != 0) w.member("id", event.id);
      // Bind the arrow head to the enclosing slice rather than the next
      // slice to start — the consumer's span IS the landing site.
      if (event.type == EventType::FlowEnd) w.member("bp", "e");
      w.member("pid", static_cast<std::int64_t>(event.pid));
      w.member("tid", static_cast<std::uint64_t>(buffer->tid));
      if (event.num_args > 0) {
        w.key("args");
        w.begin_object();
        for (unsigned a = 0; a < event.num_args; ++a)
          w.member(event.arg_keys[a], event.arg_values[a]);
        w.end_object();
      }
      w.end_object();
    }
  }
  // Metadata: ranks render as named processes, threads as named rows.
  for (std::int32_t pid : pids) {
    w.begin_object();
    w.member("name", "process_name");
    w.member("ph", "M");
    w.member("pid", static_cast<std::int64_t>(pid));
    w.key("args");
    w.begin_object();
    w.member("name", "rank " + std::to_string(pid));
    w.end_object();
    w.end_object();
  }
  for (const auto &[pid, tid] : threads) {
    w.begin_object();
    w.member("name", "thread_name");
    w.member("ph", "M");
    w.member("pid", static_cast<std::int64_t>(pid));
    w.member("tid", static_cast<std::uint64_t>(tid));
    w.key("args");
    w.begin_object();
    w.member("name", "thread " + std::to_string(tid));
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("otherData");
  w.begin_object();
  w.member("dropped_events", total_dropped);
  w.member("buffers", static_cast<std::uint64_t>(s.buffers.size()));
  w.member("clock", "microseconds since process trace epoch (steady)");
  w.end_object();
  w.end_object();
  return w.str();
}

bool write_json_file(const std::string &path) {
  std::string document = to_json_string();
  std::ofstream out(path);
  if (!out) return false;
  out << document << "\n";
  return static_cast<bool>(out);
}

void clear() {
  TraceState &s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  // Retired buffers belong to exited threads: safe to free.  Live buffers
  // are only reset — their owners hold raw pointers.  The count/published
  // reset races with a concurrent emit, hence the quiescence contract.
  std::erase_if(s.buffers, [](const std::unique_ptr<ThreadBuffer> &buffer) {
    return buffer->retired;
  });
  for (auto &buffer : s.buffers) {
    buffer->count = 0;
    buffer->published.store(0, std::memory_order_relaxed);
    buffer->dropped = 0;
  }
}

void set_buffer_capacity(std::size_t events) {
  TraceState &s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.capacity = std::max<std::size_t>(events, 1);
}

} // namespace ripples::trace
