/// \file json.hpp
/// \brief Minimal JSON emitter and parser for the metrics subsystem.
///
/// The run reports and the metrics registry serialize to JSON so external
/// tooling (plotting scripts, regression trackers) can consume performance
/// data without scraping printf tables.  Scope is deliberately small: the
/// writer produces canonical UTF-8 JSON from explicit begin/end calls, the
/// parser accepts standard JSON into a tiny DOM — enough for the schema
/// validation tests and for tools that read reports back.  Neither is a
/// general-purpose JSON library (no streaming, no comments, no BOM).
#ifndef RIPPLES_SUPPORT_JSON_HPP
#define RIPPLES_SUPPORT_JSON_HPP

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/assert.hpp"

namespace ripples {

/// Append-only JSON emitter with explicit structure calls.  Comma placement
/// and string escaping are handled internally; nesting is tracked so
/// mismatched begin/end pairs trip an assertion rather than emitting garbage.
///
/// \code
///   JsonWriter w;
///   w.begin_object();
///   w.key("theta"); w.value(std::uint64_t{1234});
///   w.key("phases"); w.begin_array();
///   w.value(0.25); w.value(1.5);
///   w.end_array();
///   w.end_object();
///   std::string text = w.str();
/// \endcode
class JsonWriter {
public:
  void begin_object() {
    prepare_value();
    out_.push_back('{');
    stack_.push_back(Scope::Object);
    fresh_ = true;
  }

  void end_object() {
    RIPPLES_ASSERT_MSG(!stack_.empty() && stack_.back() == Scope::Object,
                       "end_object without matching begin_object");
    stack_.pop_back();
    out_.push_back('}');
    fresh_ = false;
  }

  void begin_array() {
    prepare_value();
    out_.push_back('[');
    stack_.push_back(Scope::Array);
    fresh_ = true;
  }

  void end_array() {
    RIPPLES_ASSERT_MSG(!stack_.empty() && stack_.back() == Scope::Array,
                       "end_array without matching begin_array");
    stack_.pop_back();
    out_.push_back(']');
    fresh_ = false;
  }

  /// Emits an object key; the next value/begin_* call supplies its value.
  void key(std::string_view name) {
    RIPPLES_ASSERT_MSG(!stack_.empty() && stack_.back() == Scope::Object,
                       "key() is only valid inside an object");
    if (!fresh_) out_.push_back(',');
    fresh_ = false;
    append_string(name);
    out_.push_back(':');
    pending_key_ = true;
  }

  void value(std::string_view text) {
    prepare_value();
    append_string(text);
  }
  void value(const char *text) { value(std::string_view(text)); }
  void value(bool flag) {
    prepare_value();
    out_ += flag ? "true" : "false";
  }
  void value(double number) {
    prepare_value();
    if (!std::isfinite(number)) {
      out_ += "null"; // JSON has no inf/nan
      return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", number);
    out_ += buf;
  }
  void value(std::uint64_t number) {
    prepare_value();
    out_ += std::to_string(number);
  }
  void value(std::int64_t number) {
    prepare_value();
    out_ += std::to_string(number);
  }
  void value(std::uint32_t number) { value(static_cast<std::uint64_t>(number)); }
  void value(std::int32_t number) { value(static_cast<std::int64_t>(number)); }
  void null() {
    prepare_value();
    out_ += "null";
  }

  /// key + value in one call, for flat objects.
  template <typename T> void member(std::string_view name, T &&v) {
    key(name);
    value(std::forward<T>(v));
  }

  /// The document so far.  Valid once every begin_* has been closed.
  [[nodiscard]] const std::string &str() const {
    RIPPLES_DEBUG_ASSERT(stack_.empty());
    return out_;
  }

private:
  enum class Scope : std::uint8_t { Object, Array };

  void prepare_value() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (!stack_.empty()) {
      RIPPLES_ASSERT_MSG(stack_.back() == Scope::Array,
                         "values inside an object need a key()");
      if (!fresh_) out_.push_back(',');
    }
    fresh_ = false;
  }

  void append_string(std::string_view text) {
    out_.push_back('"');
    for (char c : text) {
      switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out_ += buf;
        } else {
          out_.push_back(c);
        }
      }
    }
    out_.push_back('"');
  }

  std::string out_;
  std::vector<Scope> stack_;
  bool fresh_ = true;
  bool pending_key_ = false;
};

/// Parsed JSON value: a small DOM used by the schema-validation tests and by
/// tools reading run reports back.  Object member order is preserved.
struct JsonValue {
  enum class Type : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_null() const { return type == Type::Null; }
  [[nodiscard]] bool is_object() const { return type == Type::Object; }
  [[nodiscard]] bool is_array() const { return type == Type::Array; }
  [[nodiscard]] bool is_number() const { return type == Type::Number; }
  [[nodiscard]] bool is_string() const { return type == Type::String; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue *find(std::string_view name) const {
    if (type != Type::Object) return nullptr;
    for (const auto &[key, value] : object)
      if (key == name) return &value;
    return nullptr;
  }

  /// Parses a complete JSON document; nullopt on any syntax error or
  /// trailing garbage.
  static std::optional<JsonValue> parse(std::string_view text);
};

namespace detail {

class JsonParser {
public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run() {
    std::optional<JsonValue> value = parse_value();
    skip_whitespace();
    if (!value || pos_ != text_.size()) return std::nullopt;
    return value;
  }

private:
  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  [[nodiscard]] bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  std::optional<JsonValue> parse_value() {
    skip_whitespace();
    if (pos_ >= text_.size()) return std::nullopt;
    switch (text_[pos_]) {
    case '{': return parse_object();
    case '[': return parse_array();
    case '"': return parse_string_value();
    case 't':
      if (!consume_literal("true")) return std::nullopt;
      return make_bool(true);
    case 'f':
      if (!consume_literal("false")) return std::nullopt;
      return make_bool(false);
    case 'n':
      if (!consume_literal("null")) return std::nullopt;
      return JsonValue{};
    default: return parse_number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.type = JsonValue::Type::Bool;
    v.boolean = b;
    return v;
  }

  std::optional<JsonValue> parse_object() {
    ++pos_; // '{'
    JsonValue v;
    v.type = JsonValue::Type::Object;
    skip_whitespace();
    if (consume('}')) return v;
    for (;;) {
      skip_whitespace();
      std::optional<std::string> key = parse_string();
      if (!key) return std::nullopt;
      skip_whitespace();
      if (!consume(':')) return std::nullopt;
      std::optional<JsonValue> member = parse_value();
      if (!member) return std::nullopt;
      v.object.emplace_back(std::move(*key), std::move(*member));
      skip_whitespace();
      if (consume(',')) continue;
      if (consume('}')) return v;
      return std::nullopt;
    }
  }

  std::optional<JsonValue> parse_array() {
    ++pos_; // '['
    JsonValue v;
    v.type = JsonValue::Type::Array;
    skip_whitespace();
    if (consume(']')) return v;
    for (;;) {
      std::optional<JsonValue> element = parse_value();
      if (!element) return std::nullopt;
      v.array.push_back(std::move(*element));
      skip_whitespace();
      if (consume(',')) continue;
      if (consume(']')) return v;
      return std::nullopt;
    }
  }

  std::optional<JsonValue> parse_string_value() {
    std::optional<std::string> s = parse_string();
    if (!s) return std::nullopt;
    JsonValue v;
    v.type = JsonValue::Type::String;
    v.string = std::move(*s);
    return v;
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      char esc = text_[pos_++];
      switch (esc) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        if (pos_ + 4 > text_.size()) return std::nullopt;
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          char h = text_[pos_++];
          code <<= 4;
          if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
          else return std::nullopt;
        }
        // The writer only emits \u00XX for control characters; decode the
        // Latin-1 range and pass anything above through as UTF-8.
        if (code < 0x80) {
          out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out.push_back(static_cast<char>(0xC0 | (code >> 6)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
          out.push_back(static_cast<char>(0xE0 | (code >> 12)));
          out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
        break;
      }
      default: return std::nullopt;
      }
    }
    return std::nullopt; // unterminated
  }

  std::optional<JsonValue> parse_number() {
    std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return std::nullopt;
    std::string token(text_.substr(start, pos_ - start));
    char *end = nullptr;
    double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return std::nullopt;
    JsonValue v;
    v.type = JsonValue::Type::Number;
    v.number = parsed;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

} // namespace detail

inline std::optional<JsonValue> JsonValue::parse(std::string_view text) {
  return detail::JsonParser(text).run();
}

} // namespace ripples

#endif // RIPPLES_SUPPORT_JSON_HPP
