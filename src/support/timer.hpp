/// \file timer.hpp
/// \brief Wall-clock stopwatches and the per-phase runtime breakdown.
///
/// Every runtime figure in the paper (Figs. 3-8) decomposes the execution of
/// Algorithm 1 into four phases: EstimateTheta (Alg. 2, including the Sample
/// calls it makes internally), Sample (Alg. 3 invoked from the algorithm
/// skeleton only), SelectSeeds (Alg. 4), and Other.  PhaseTimers implements
/// exactly that accounting; the IMM drivers fill one in and the benchmark
/// harness prints it.
#ifndef RIPPLES_SUPPORT_TIMER_HPP
#define RIPPLES_SUPPORT_TIMER_HPP

#include <array>
#include <chrono>
#include <cstddef>
#include <string>

namespace ripples {

/// Seconds elapsed since the process trace epoch — the steady-clock instant
/// first observed by the timing/tracing subsystems.  PhaseTimers start
/// offsets and ripples::trace timestamps share this epoch, so a phase start
/// recorded in a RunReport lines up with the corresponding span in a trace
/// captured during the same run.
[[nodiscard]] double process_now_seconds();

namespace detail {
/// The shared epoch instant itself (first call wins); used by the trace
/// subsystem to stamp events on the same timeline.
[[nodiscard]] std::chrono::steady_clock::time_point process_epoch();
} // namespace detail

/// Monotonic wall-clock stopwatch with microsecond-or-better resolution.
class StopWatch {
public:
  using clock = std::chrono::steady_clock;

  /// Creates a stopwatch that is already running.
  StopWatch() : start_(clock::now()) {}

  /// Restarts the measurement from now.
  void restart() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last restart().
  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

private:
  clock::time_point start_;
};

/// The four phases of Algorithm 1 as reported in the paper's figures.
enum class Phase : std::size_t {
  EstimateTheta = 0, ///< Alg. 2, inclusive of its internal Sample calls.
  Sample = 1,        ///< Alg. 3 called from the top-level skeleton.
  SelectSeeds = 2,   ///< Alg. 4, the final seed selection.
  Other = 3,         ///< Everything else (I/O, setup, reductions).
};

inline constexpr std::size_t kNumPhases = 4;

/// Human-readable name matching the legend used in the paper's figures.
[[nodiscard]] const char *to_string(Phase phase);

/// Accumulates wall-clock seconds per phase.  Not thread-safe by design: the
/// drivers record phases from the orchestrating thread only.
class PhaseTimers {
public:
  /// Adds \p seconds to the accumulated time of \p phase.
  void add(Phase phase, double seconds) {
    seconds_[static_cast<std::size_t>(phase)] += seconds;
  }

  /// Records when \p phase was first entered, as seconds since the process
  /// trace epoch (see process_now_seconds()).  Keeps the earliest offset so
  /// repeated entries (the estimation loop) anchor at the first one.
  void note_start(Phase phase, double offset_seconds) {
    double &slot = started_[static_cast<std::size_t>(phase)];
    if (slot < 0.0 || offset_seconds < slot) slot = offset_seconds;
  }

  /// Accumulated seconds for one phase.
  [[nodiscard]] double total(Phase phase) const {
    return seconds_[static_cast<std::size_t>(phase)];
  }

  /// First-entry offset of \p phase in seconds since the process trace
  /// epoch, or a negative value when the phase was never entered through a
  /// ScopedPhase (e.g. the residual "Other" bucket).
  [[nodiscard]] double start_offset(Phase phase) const {
    return started_[static_cast<std::size_t>(phase)];
  }

  /// Accumulated seconds across all phases.
  [[nodiscard]] double total() const {
    double sum = 0;
    for (double s : seconds_) sum += s;
    return sum;
  }

  /// Merges another breakdown into this one (used when a driver runs the
  /// martingale loop several times and reports one aggregate).
  void merge(const PhaseTimers &other) {
    for (std::size_t i = 0; i < kNumPhases; ++i) {
      seconds_[i] += other.seconds_[i];
      if (other.started_[i] >= 0.0 &&
          (started_[i] < 0.0 || other.started_[i] < started_[i]))
        started_[i] = other.started_[i];
    }
  }

  void reset() {
    seconds_.fill(0.0);
    started_.fill(-1.0);
  }

  /// One-line summary such as
  /// "EstimateTheta=1.23s Sample=4.56s SelectSeeds=0.78s Other=0.01s".
  [[nodiscard]] std::string summary() const;

private:
  std::array<double, kNumPhases> seconds_{};
  std::array<double, kNumPhases> started_{-1.0, -1.0, -1.0, -1.0};
};

/// RAII guard: measures the lifetime of a scope into a PhaseTimers slot.
class ScopedPhase {
public:
  ScopedPhase(PhaseTimers &timers, Phase phase)
      : timers_(timers), phase_(phase) {
    timers.note_start(phase, process_now_seconds());
  }
  ScopedPhase(const ScopedPhase &) = delete;
  ScopedPhase &operator=(const ScopedPhase &) = delete;
  ~ScopedPhase() { timers_.add(phase_, watch_.elapsed_seconds()); }

private:
  PhaseTimers &timers_;
  Phase phase_;
  StopWatch watch_;
};

} // namespace ripples

#endif // RIPPLES_SUPPORT_TIMER_HPP
