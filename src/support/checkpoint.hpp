/// \file checkpoint.hpp
/// \brief Durable checkpoint/restart for the long-running IMM drivers.
///
/// PR 3 made the distributed drivers survive *rank* deaths inside a live
/// process; this module survives whole-process kills (OOM, node reboot,
/// scheduler preemption) — the dominant failure mode of the long,
/// memory-heavy runs the paper targets.  The key economy: because every RRR
/// set is addressed by an RNG stream coordinate (leap-frog LCG stream of the
/// one global sequence, or a per-index Philox counter), the sample partition
/// R is a *recomputable* function of (seed, coordinates, count) and never
/// needs to be serialized.  A snapshot therefore stores only the martingale
/// round state plus the per-stream sample counts — O(ranks + rounds) words,
/// not O(|R|) — and a resumed run rebuilds R by deterministic replay,
/// producing byte-identical seeds, theta, and coverage to an uninterrupted
/// run.
///
/// Format (little-endian, see DESIGN.md §9):
///
///   [magic u32 "RPCP"] [version u32] [payload_bytes u64] [crc32 u32]
///   [payload: fingerprint + martingale state, field-by-field]
///
/// The CRC covers the payload, so truncation, bit rot, and torn writes are
/// all detected; writes go to a temp file renamed into place, so a crash
/// mid-write never corrupts an existing snapshot.  The fingerprint (graph
/// hash, k, epsilon, seed, RNG mode, exchange protocol, rank count, driver)
/// makes a mismatched resume a *refused* resume, never a silently wrong one.
#ifndef RIPPLES_SUPPORT_CHECKPOINT_HPP
#define RIPPLES_SUPPORT_CHECKPOINT_HPP

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace ripples::checkpoint {

/// CRC-32 (IEEE 802.3 polynomial, reflected) over \p bytes — the payload
/// guard of the snapshot format, exposed for tests.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> bytes,
                                  std::uint32_t seed = 0);

/// Why a snapshot failed to load.  Every failure mode is a *distinct*
/// diagnosis: refusing a resume must tell the operator whether the file is
/// damaged (retry an older snapshot) or belongs to a different run (wrong
/// directory or changed parameters).
enum class LoadError {
  OpenFailed,          ///< file missing or unreadable
  BadMagic,            ///< not a ripples checkpoint at all
  VersionSkew,         ///< written by an incompatible format version
  Truncated,           ///< shorter than its header claims
  CrcMismatch,         ///< payload bytes do not match the stored CRC
  FingerprintMismatch, ///< snapshot belongs to a different run configuration
};

[[nodiscard]] const char *to_string(LoadError error);

/// Thrown when a snapshot cannot be loaded or does not belong to this run.
/// Never thrown by the retention/write path: a checkpointing *run* must not
/// die because its safety net has a hole; only an explicit resume fails.
class CheckpointError : public std::runtime_error {
public:
  CheckpointError(LoadError kind, const std::string &message)
      : std::runtime_error(message), kind_(kind) {}

  [[nodiscard]] LoadError kind() const { return kind_; }

private:
  LoadError kind_;
};

/// Identity of one run configuration.  A resume is refused unless every
/// field matches: replaying RRR coordinates against a different graph,
/// epsilon, or rank count would produce a well-formed but *wrong* result,
/// which is strictly worse than an error.
struct RunFingerprint {
  std::string driver;
  std::uint64_t graph_hash = 0;
  std::uint64_t graph_vertices = 0;
  std::uint64_t graph_edges = 0;
  std::uint64_t seed = 0;
  double epsilon = 0.0;
  double l = 0.0;
  std::uint32_t k = 0;
  std::uint8_t model = 0;
  std::uint8_t rng_mode = 0;
  std::uint8_t selection_exchange = 0;
  std::uint32_t selection_topm = 0;
  std::int32_t world_size = 0;

  friend bool operator==(const RunFingerprint &,
                         const RunFingerprint &) = default;

  /// Human-readable list of the fields where \p other differs from *this
  /// (empty when they match) — the body of a FingerprintMismatch diagnosis.
  [[nodiscard]] std::string describe_mismatch(const RunFingerprint &other) const;
};

/// One martingale-round-boundary snapshot: the fingerprint plus everything
/// needed to re-enter the estimation loop exactly where the killed run left
/// off.  Deliberately *no* RRR sets: `stream_counts[s]` (samples generated
/// by world stream s) plus `num_samples` are the coordinates from which the
/// resumed ranks regenerate their partitions bit-identically.
struct Snapshot {
  static constexpr std::uint32_t kMagic = 0x52504350; // "RPCP"
  static constexpr std::uint32_t kVersion = 1;

  RunFingerprint fingerprint;

  /// Next estimation round to execute (1-based; rounds < next_round are
  /// complete).  When `accepted`, the estimation loop is skipped entirely.
  std::uint32_t next_round = 1;
  bool accepted = false;
  double lower_bound = 1.0;
  double last_coverage = 0.0;
  std::uint32_t estimation_iterations = 0;
  /// |R| reached at this boundary — the replay target for regeneration.
  std::uint64_t num_samples = 0;
  /// Sample-count target of every extend executed so far, in order.
  std::vector<std::uint64_t> extend_targets;
  /// Per-world-stream sample counts (empty for drivers without per-rank
  /// streams, e.g. the graph-partitioned driver's per-(sample,vertex) keys).
  std::vector<std::uint64_t> stream_counts;

  friend bool operator==(const Snapshot &, const Snapshot &) = default;

  /// Header + CRC-guarded payload, ready to write.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Inverse of serialize(); throws CheckpointError with a distinct kind
  /// and diagnosis for bad magic, version skew, truncation, or CRC damage.
  [[nodiscard]] static Snapshot deserialize(std::span<const std::uint8_t> bytes);
};

/// Throws CheckpointError{FingerprintMismatch} naming every differing field
/// when \p snapshot does not belong to the run described by \p expected.
void require_matching_fingerprint(const Snapshot &snapshot,
                                  const RunFingerprint &expected);

/// Checkpoint/resume knobs carried by ImmOptions.  Defaults come from the
/// RIPPLES_CHECKPOINT_* environment (see options_from_env), mirroring the
/// RIPPLES_METRICS / RIPPLES_SELECTION_EXCHANGE idiom so benches and test
/// legs can turn checkpointing on without touching call sites.
struct Options {
  /// Snapshot directory; empty disables checkpointing entirely.
  std::string dir;
  /// Write every Nth round boundary (acceptance boundaries always write).
  std::uint32_t every = 1;
  /// Resume from the newest loadable snapshot in `dir` (fresh start when
  /// the directory holds none — a kill before the first boundary).
  bool resume = false;
  /// Snapshots retained on disk; older ones are pruned after each write.
  std::uint32_t keep_last = 3;
};

/// Reads RIPPLES_CHECKPOINT_DIR / _EVERY / _RESUME / _KEEP ("1", "true",
/// "on" enable _RESUME; malformed numbers terminate with a diagnostic).
[[nodiscard]] Options options_from_env();

/// Owns one snapshot directory: atomic write-rename, last-N retention,
/// boundary thinning, and diagnosed (never crashing) recovery of the newest
/// intact snapshot.  Registers itself process-wide for construction so the
/// graceful-shutdown signal path can flush a pending boundary.
class CheckpointManager {
public:
  /// Creates \p directory if needed.  Throws std::runtime_error when it
  /// cannot be created — checkpointing that silently never writes would be
  /// worse than failing fast at setup.
  explicit CheckpointManager(std::string directory, std::uint32_t every = 1,
                             std::uint32_t keep_last = 3);
  ~CheckpointManager();

  CheckpointManager(const CheckpointManager &) = delete;
  CheckpointManager &operator=(const CheckpointManager &) = delete;

  /// Round-boundary hook: caches \p snapshot as pending and writes it out
  /// when the boundary counter hits the `every` stride or \p force is set
  /// (acceptance boundaries force — they gate the final phase).  Returns
  /// true when a file was written.
  bool observe(const Snapshot &snapshot, bool force = false);

  /// Writes \p snapshot unconditionally: serialize, temp file, rename into
  /// place, prune beyond keep_last.  Throws std::runtime_error on I/O
  /// failure.
  void write_now(const Snapshot &snapshot);

  /// Writes the cached pending snapshot if it is newer than the last write
  /// (the graceful-shutdown "final checkpoint").  Best-effort: returns
  /// false instead of throwing.
  bool flush_pending() noexcept;

  /// Newest loadable snapshot in the directory, trying older files when
  /// newer ones are damaged.  Damaged files are *diagnosed* (appended to
  /// \p diagnosis when given), never fatal.  nullopt when nothing loads.
  [[nodiscard]] std::optional<Snapshot>
  load_latest(std::string *diagnosis = nullptr) const;

  /// Loads one snapshot file; throws CheckpointError on any damage.
  [[nodiscard]] static Snapshot load_file(const std::string &path);

  [[nodiscard]] const std::string &directory() const { return directory_; }
  /// Snapshot files currently on disk, oldest first.
  [[nodiscard]] std::vector<std::string> snapshot_files() const;

private:
  friend bool flush_pending_snapshots() noexcept;

  std::string directory_;
  std::uint32_t every_;
  std::uint32_t keep_last_;
  std::uint64_t sequence_ = 0;   ///< next file number (continues past resume)
  std::uint64_t boundaries_ = 0; ///< observe() calls, for `every` thinning
  std::optional<Snapshot> pending_;
  bool pending_written_ = true;
  struct Mutex; // out-of-line (keeps <mutex> out of this header)
  Mutex *mutex_;
};

/// Flushes the pending snapshot of every live CheckpointManager (see
/// flush_pending).  Locks are only try-acquired: this runs on the signal
/// path where blocking on a mutex held by the interrupted thread would
/// deadlock.  Returns true when every manager flushed cleanly.
bool flush_pending_snapshots() noexcept;

/// Installs a SIGINT/SIGTERM handler that writes pending checkpoints,
/// marks the run interrupted in the report log, flushes reports and trace
/// buffers, and exits with 128+signum — so an operator's Ctrl-C or a
/// scheduler's TERM leaves the same resumable state a round boundary would.
/// Idempotent.
void install_signal_flush();

} // namespace ripples::checkpoint

#endif // RIPPLES_SUPPORT_CHECKPOINT_HPP
