#include "support/checkpoint.hpp"

#include <algorithm>
#include <array>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <unistd.h>

#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace ripples::checkpoint {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// CRC-32

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit)
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    table[i] = c;
  }
  return table;
}

} // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::uint8_t b : bytes)
    c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

const char *to_string(LoadError error) {
  switch (error) {
  case LoadError::OpenFailed:
    return "open-failed";
  case LoadError::BadMagic:
    return "bad-magic";
  case LoadError::VersionSkew:
    return "version-skew";
  case LoadError::Truncated:
    return "truncated";
  case LoadError::CrcMismatch:
    return "crc-mismatch";
  case LoadError::FingerprintMismatch:
    return "fingerprint-mismatch";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Field-by-field little-endian (de)serialization.  Doubles travel as their
// IEEE-754 bit pattern, so a resumed run restores lower_bound/last_coverage
// *bit-exactly* — any rounding here would break seed equivalence.

namespace {

struct ByteWriter {
  std::vector<std::uint8_t> bytes;

  void u8(std::uint8_t v) { bytes.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f64(double v) {
    std::uint64_t raw;
    static_assert(sizeof raw == sizeof v);
    std::memcpy(&raw, &v, sizeof raw);
    u64(raw);
  }
  void str(const std::string &s) {
    u64(s.size());
    bytes.insert(bytes.end(), s.begin(), s.end());
  }
  void u64_vec(const std::vector<std::uint64_t> &v) {
    u64(v.size());
    for (std::uint64_t x : v)
      u64(x);
  }
};

struct ByteReader {
  std::span<const std::uint8_t> bytes;
  std::size_t pos = 0;

  void require(std::size_t n) const {
    if (pos + n > bytes.size())
      throw CheckpointError(
          LoadError::Truncated,
          "ripples checkpoint: payload ends mid-field (need " +
              std::to_string(n) + " bytes at offset " + std::to_string(pos) +
              ", payload is " + std::to_string(bytes.size()) + ")");
  }
  std::uint8_t u8() {
    require(1);
    return bytes[pos++];
  }
  std::uint32_t u32() {
    require(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(bytes[pos++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    require(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(bytes[pos++]) << (8 * i);
    return v;
  }
  double f64() {
    std::uint64_t raw = u64();
    double v;
    std::memcpy(&v, &raw, sizeof v);
    return v;
  }
  std::string str() {
    std::uint64_t n = u64();
    require(n);
    std::string s(reinterpret_cast<const char *>(bytes.data() + pos), n);
    pos += n;
    return s;
  }
  std::vector<std::uint64_t> u64_vec() {
    std::uint64_t n = u64();
    require(n * 8); // cheap bound check before the element loop
    std::vector<std::uint64_t> v(n);
    for (std::uint64_t i = 0; i < n; ++i)
      v[i] = u64();
    return v;
  }
};

void write_fingerprint(ByteWriter &w, const RunFingerprint &fp) {
  w.str(fp.driver);
  w.u64(fp.graph_hash);
  w.u64(fp.graph_vertices);
  w.u64(fp.graph_edges);
  w.u64(fp.seed);
  w.f64(fp.epsilon);
  w.f64(fp.l);
  w.u32(fp.k);
  w.u8(fp.model);
  w.u8(fp.rng_mode);
  w.u8(fp.selection_exchange);
  w.u32(fp.selection_topm);
  w.u32(static_cast<std::uint32_t>(fp.world_size));
}

RunFingerprint read_fingerprint(ByteReader &r) {
  RunFingerprint fp;
  fp.driver = r.str();
  fp.graph_hash = r.u64();
  fp.graph_vertices = r.u64();
  fp.graph_edges = r.u64();
  fp.seed = r.u64();
  fp.epsilon = r.f64();
  fp.l = r.f64();
  fp.k = r.u32();
  fp.model = r.u8();
  fp.rng_mode = r.u8();
  fp.selection_exchange = r.u8();
  fp.selection_topm = r.u32();
  fp.world_size = static_cast<std::int32_t>(r.u32());
  return fp;
}

} // namespace

std::string
RunFingerprint::describe_mismatch(const RunFingerprint &other) const {
  std::ostringstream out;
  auto field = [&out, first = true](const char *name, const auto &want,
                                    const auto &got) mutable {
    if (want == got)
      return;
    if (!first)
      out << ", ";
    first = false;
    out << name << " (snapshot " << got << ", run " << want << ")";
  };
  field("driver", driver, other.driver);
  field("graph_hash", graph_hash, other.graph_hash);
  field("graph_vertices", graph_vertices, other.graph_vertices);
  field("graph_edges", graph_edges, other.graph_edges);
  field("seed", seed, other.seed);
  field("epsilon", epsilon, other.epsilon);
  field("l", l, other.l);
  field("k", k, other.k);
  field("model", static_cast<int>(model), static_cast<int>(other.model));
  field("rng_mode", static_cast<int>(rng_mode),
        static_cast<int>(other.rng_mode));
  field("selection_exchange", static_cast<int>(selection_exchange),
        static_cast<int>(other.selection_exchange));
  field("selection_topm", selection_topm, other.selection_topm);
  field("world_size", world_size, other.world_size);
  return out.str();
}

std::vector<std::uint8_t> Snapshot::serialize() const {
  ByteWriter payload;
  write_fingerprint(payload, fingerprint);
  payload.u32(next_round);
  payload.u8(accepted ? 1 : 0);
  payload.f64(lower_bound);
  payload.f64(last_coverage);
  payload.u32(estimation_iterations);
  payload.u64(num_samples);
  payload.u64_vec(extend_targets);
  payload.u64_vec(stream_counts);

  ByteWriter out;
  out.u32(kMagic);
  out.u32(kVersion);
  out.u64(payload.bytes.size());
  out.u32(crc32(payload.bytes));
  out.bytes.insert(out.bytes.end(), payload.bytes.begin(),
                   payload.bytes.end());
  return out.bytes;
}

Snapshot Snapshot::deserialize(std::span<const std::uint8_t> bytes) {
  constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 4;
  if (bytes.size() < kHeaderBytes)
    throw CheckpointError(LoadError::Truncated,
                          "ripples checkpoint: file is " +
                              std::to_string(bytes.size()) +
                              " bytes, shorter than the " +
                              std::to_string(kHeaderBytes) + "-byte header");

  ByteReader header{bytes.first(kHeaderBytes)};
  std::uint32_t magic = header.u32();
  if (magic != kMagic) {
    std::ostringstream out;
    out << "ripples checkpoint: bad magic 0x" << std::hex << magic
        << " (not a ripples checkpoint file)";
    throw CheckpointError(LoadError::BadMagic, out.str());
  }
  std::uint32_t version = header.u32();
  if (version != kVersion)
    throw CheckpointError(LoadError::VersionSkew,
                          "ripples checkpoint: format version " +
                              std::to_string(version) +
                              " is not the supported version " +
                              std::to_string(kVersion));
  std::uint64_t payload_bytes = header.u64();
  std::uint32_t stored_crc = header.u32();

  if (bytes.size() - kHeaderBytes < payload_bytes)
    throw CheckpointError(
        LoadError::Truncated,
        "ripples checkpoint: header declares a " +
            std::to_string(payload_bytes) + "-byte payload but only " +
            std::to_string(bytes.size() - kHeaderBytes) +
            " bytes follow (truncated write?)");

  std::span<const std::uint8_t> payload =
      bytes.subspan(kHeaderBytes, payload_bytes);
  std::uint32_t actual_crc = crc32(payload);
  if (actual_crc != stored_crc) {
    std::ostringstream out;
    out << "ripples checkpoint: payload CRC 0x" << std::hex << actual_crc
        << " does not match stored 0x" << stored_crc
        << " (corrupt or tampered file)";
    throw CheckpointError(LoadError::CrcMismatch, out.str());
  }

  ByteReader r{payload};
  Snapshot snapshot;
  snapshot.fingerprint = read_fingerprint(r);
  snapshot.next_round = r.u32();
  snapshot.accepted = r.u8() != 0;
  snapshot.lower_bound = r.f64();
  snapshot.last_coverage = r.f64();
  snapshot.estimation_iterations = r.u32();
  snapshot.num_samples = r.u64();
  snapshot.extend_targets = r.u64_vec();
  snapshot.stream_counts = r.u64_vec();
  return snapshot;
}

void require_matching_fingerprint(const Snapshot &snapshot,
                                  const RunFingerprint &expected) {
  if (snapshot.fingerprint == expected)
    return;
  throw CheckpointError(
      LoadError::FingerprintMismatch,
      "ripples checkpoint: snapshot belongs to a different run; mismatched "
      "fields: " +
          expected.describe_mismatch(snapshot.fingerprint));
}

// ---------------------------------------------------------------------------
// Environment defaults

namespace {

std::uint32_t env_u32(const char *name, std::uint32_t fallback) {
  const char *value = std::getenv(name);
  if (value == nullptr || *value == '\0')
    return fallback;
  char *end = nullptr;
  errno = 0;
  unsigned long parsed = std::strtoul(value, &end, 10);
  if (errno != 0 || end == value || *end != '\0') {
    std::fprintf(stderr, "ripples: %s must be a non-negative integer, got %s\n",
                 name, value);
    std::exit(2);
  }
  return static_cast<std::uint32_t>(parsed);
}

bool env_flag(const char *name) {
  const char *value = std::getenv(name);
  if (value == nullptr)
    return false;
  return std::strcmp(value, "1") == 0 || std::strcmp(value, "true") == 0 ||
         std::strcmp(value, "on") == 0;
}

} // namespace

Options options_from_env() {
  Options options;
  if (const char *dir = std::getenv("RIPPLES_CHECKPOINT_DIR"))
    options.dir = dir;
  options.every = std::max(1u, env_u32("RIPPLES_CHECKPOINT_EVERY", 1));
  options.resume = env_flag("RIPPLES_CHECKPOINT_RESUME");
  options.keep_last = std::max(1u, env_u32("RIPPLES_CHECKPOINT_KEEP", 3));
  return options;
}

// ---------------------------------------------------------------------------
// CheckpointManager

namespace {

constexpr const char *kSnapshotExtension = ".rpck";
constexpr const char *kSnapshotPrefix = "ckpt-";

metrics::Counter &writes_counter() {
  static metrics::Counter &c =
      metrics::Registry::instance().counter("imm.checkpoint.writes");
  return c;
}

metrics::Counter &bytes_counter() {
  static metrics::Counter &c =
      metrics::Registry::instance().counter("imm.checkpoint.bytes");
  return c;
}

/// Live managers, for the signal-path flush.  The list mutex is only ever
/// try-acquired from the handler.
std::mutex &managers_mutex() {
  static std::mutex m;
  return m;
}

std::vector<CheckpointManager *> &managers() {
  static std::vector<CheckpointManager *> list;
  return list;
}

/// Parses "ckpt-NNNNNNNN.rpck" → NNNNNNNN; nullopt for foreign files.
std::optional<std::uint64_t> snapshot_sequence(const fs::path &path) {
  std::string name = path.filename().string();
  std::string prefix = kSnapshotPrefix;
  if (name.size() <= prefix.size() + std::strlen(kSnapshotExtension) ||
      name.compare(0, prefix.size(), prefix) != 0 ||
      name.compare(name.size() - std::strlen(kSnapshotExtension),
                   std::string::npos, kSnapshotExtension) != 0)
    return std::nullopt;
  std::string digits = name.substr(
      prefix.size(),
      name.size() - prefix.size() - std::strlen(kSnapshotExtension));
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos)
    return std::nullopt;
  return std::strtoull(digits.c_str(), nullptr, 10);
}

} // namespace

struct CheckpointManager::Mutex {
  std::mutex m;
};

CheckpointManager::CheckpointManager(std::string directory,
                                     std::uint32_t every,
                                     std::uint32_t keep_last)
    : directory_(std::move(directory)), every_(std::max(1u, every)),
      keep_last_(std::max(1u, keep_last)), mutex_(new Mutex) {
  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec && !fs::is_directory(directory_))
    throw std::runtime_error("ripples checkpoint: cannot create directory " +
                             directory_ + ": " + ec.message());
  // Continue the sequence past whatever is already on disk, so a resumed
  // run's snapshots sort after — never overwrite — the run it resumed from.
  for (const std::string &file : snapshot_files())
    if (auto seq = snapshot_sequence(file))
      sequence_ = std::max(sequence_, *seq + 1);
  std::lock_guard<std::mutex> lock(managers_mutex());
  managers().push_back(this);
}

CheckpointManager::~CheckpointManager() {
  {
    std::lock_guard<std::mutex> lock(managers_mutex());
    auto &list = managers();
    list.erase(std::remove(list.begin(), list.end(), this), list.end());
  }
  delete mutex_;
}

std::vector<std::string> CheckpointManager::snapshot_files() const {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  std::error_code ec;
  for (const auto &entry : fs::directory_iterator(directory_, ec)) {
    if (auto seq = snapshot_sequence(entry.path()))
      found.emplace_back(*seq, entry.path().string());
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> files;
  files.reserve(found.size());
  for (auto &[seq, path] : found)
    files.push_back(std::move(path));
  return files;
}

bool CheckpointManager::observe(const Snapshot &snapshot, bool force) {
  std::lock_guard<std::mutex> lock(mutex_->m);
  ++boundaries_;
  pending_ = snapshot;
  pending_written_ = false;
  if (!force && (boundaries_ % every_) != 0)
    return false;
  write_now(snapshot);
  pending_written_ = true;
  return true;
}

void CheckpointManager::write_now(const Snapshot &snapshot) {
  std::vector<std::uint8_t> bytes = snapshot.serialize();

  char name[64];
  std::snprintf(name, sizeof name, "%s%08llu%s", kSnapshotPrefix,
                static_cast<unsigned long long>(sequence_),
                kSnapshotExtension);
  fs::path final_path = fs::path(directory_) / name;
  fs::path tmp_path = final_path;
  tmp_path += ".tmp";

  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out)
      throw std::runtime_error("ripples checkpoint: cannot open " +
                               tmp_path.string() + " for writing");
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out)
      throw std::runtime_error("ripples checkpoint: short write to " +
                               tmp_path.string());
  }
  // rename(2) within one directory is atomic: readers see either the old
  // set of snapshots or the new one, never a half-written file.
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec)
    throw std::runtime_error("ripples checkpoint: cannot rename " +
                             tmp_path.string() + " into place: " +
                             ec.message());
  ++sequence_;

  writes_counter().increment();
  bytes_counter().add(bytes.size());
  trace::instant("checkpoint", "checkpoint.write", "round",
                 snapshot.next_round, "bytes", bytes.size());

  std::vector<std::string> files = snapshot_files();
  while (files.size() > keep_last_) {
    fs::remove(files.front(), ec); // best-effort: retention, not correctness
    files.erase(files.begin());
  }
}

bool CheckpointManager::flush_pending() noexcept {
  std::unique_lock<std::mutex> lock(mutex_->m, std::try_to_lock);
  if (!lock.owns_lock())
    return false; // signal path: the interrupted thread may hold the lock
  if (!pending_ || pending_written_)
    return true;
  try {
    write_now(*pending_);
    pending_written_ = true;
    return true;
  } catch (...) {
    return false;
  }
}

std::optional<Snapshot>
CheckpointManager::load_latest(std::string *diagnosis) const {
  std::vector<std::string> files = snapshot_files();
  // Newest first: a torn newest file must fall back to the intact one
  // before it, not fail the resume.
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    try {
      return load_file(*it);
    } catch (const CheckpointError &e) {
      if (diagnosis != nullptr) {
        if (!diagnosis->empty())
          *diagnosis += "; ";
        *diagnosis += *it + ": [" + to_string(e.kind()) + "] " + e.what();
      }
    }
  }
  return std::nullopt;
}

Snapshot CheckpointManager::load_file(const std::string &path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw CheckpointError(LoadError::OpenFailed,
                          "ripples checkpoint: cannot open " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return Snapshot::deserialize(bytes);
}

bool flush_pending_snapshots() noexcept {
  std::unique_lock<std::mutex> lock(managers_mutex(), std::try_to_lock);
  if (!lock.owns_lock())
    return false;
  bool all = true;
  for (CheckpointManager *manager : managers())
    all = manager->flush_pending() && all;
  return all;
}

// ---------------------------------------------------------------------------
// Graceful shutdown.  The handler deliberately breaks the async-signal-safe
// rules (it takes try-locks and allocates): we are about to _exit anyway, a
// flush that *usually* succeeds beats guaranteed data loss, and every lock
// on the path is try-acquired so the worst case is a skipped flush — never
// a deadlock.

namespace {

volatile std::sig_atomic_t signal_in_flight = 0;

void signal_flush_handler(int signum) {
  if (signal_in_flight) // re-entry (second Ctrl-C): give up immediately
    std::_Exit(128 + signum);
  signal_in_flight = 1;

  flush_pending_snapshots();
  metrics::mark_run_failed("signal", std::string("interrupted by signal ") +
                                         std::to_string(signum));
  metrics::flush_reports_now();
  trace::flush_now();
  std::_Exit(128 + signum);
}

} // namespace

void install_signal_flush() {
  static bool installed = false;
  if (installed)
    return;
  installed = true;
  struct sigaction action {};
  action.sa_handler = signal_flush_handler;
  sigemptyset(&action.sa_mask);
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

} // namespace ripples::checkpoint
