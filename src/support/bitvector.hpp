/// \file bitvector.hpp
/// \brief Compact dynamic bit set used as the "visited" structure of the
/// probabilistic BFS kernels.
///
/// std::vector<bool> would work, but the BFS kernels want a cheap bulk
/// reset and an explicit word representation; this class keeps both obvious
/// and avoids the proxy-reference pitfalls of vector<bool> in hot loops.
#ifndef RIPPLES_SUPPORT_BITVECTOR_HPP
#define RIPPLES_SUPPORT_BITVECTOR_HPP

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace ripples {

class BitVector {
public:
  BitVector() = default;
  explicit BitVector(std::size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const { return num_bits_; }

  [[nodiscard]] bool test(std::size_t i) const {
    RIPPLES_DEBUG_ASSERT(i < num_bits_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void set(std::size_t i) {
    RIPPLES_DEBUG_ASSERT(i < num_bits_);
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }

  void clear(std::size_t i) {
    RIPPLES_DEBUG_ASSERT(i < num_bits_);
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  /// Sets bit i and reports whether it was previously clear.  This is the
  /// BFS "try to visit" primitive.
  bool test_and_set(std::size_t i) {
    RIPPLES_DEBUG_ASSERT(i < num_bits_);
    std::uint64_t &word = words_[i >> 6];
    std::uint64_t mask = std::uint64_t{1} << (i & 63);
    bool was_set = (word & mask) != 0;
    word |= mask;
    return !was_set;
  }

  /// Clears every bit; O(words).
  void reset() { std::fill(words_.begin(), words_.end(), 0); }

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const {
    std::size_t total = 0;
    for (std::uint64_t w : words_) total += static_cast<std::size_t>(__builtin_popcountll(w));
    return total;
  }

  /// Resizes to \p num_bits, clearing all content.
  void assign(std::size_t num_bits) {
    num_bits_ = num_bits;
    words_.assign((num_bits + 63) / 64, 0);
  }

private:
  std::size_t num_bits_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Word-mask variant of BitVector: one full 64-bit lane mask per entry,
/// the "visited" structure of the fused sampling kernel.  Entry v holds one
/// bit per concurrently generated sample (lane), so a single load answers
/// "which of the 64 in-flight simulations already visited v" and a single
/// OR merges a lane's visit — the word-parallel technique of Göktürk &
/// Kaya (arXiv 2008.03095).
class LaneMaskVector {
public:
  LaneMaskVector() = default;
  explicit LaneMaskVector(std::size_t num_entries) : words_(num_entries, 0) {}

  [[nodiscard]] std::size_t size() const { return words_.size(); }

  [[nodiscard]] std::uint64_t word(std::size_t i) const {
    RIPPLES_DEBUG_ASSERT(i < words_.size());
    return words_[i];
  }

  [[nodiscard]] bool test(std::size_t i, unsigned lane) const {
    RIPPLES_DEBUG_ASSERT(i < words_.size() && lane < 64);
    return (words_[i] >> lane) & 1u;
  }

  void set(std::size_t i, unsigned lane) {
    RIPPLES_DEBUG_ASSERT(i < words_.size() && lane < 64);
    words_[i] |= std::uint64_t{1} << lane;
  }

  void or_word(std::size_t i, std::uint64_t mask) {
    RIPPLES_DEBUG_ASSERT(i < words_.size());
    words_[i] |= mask;
  }

  /// Replaces entry \p i wholesale — the store half of a branchless
  /// load/modify/store sequence over word(i).
  void store_word(std::size_t i, std::uint64_t value) {
    RIPPLES_DEBUG_ASSERT(i < words_.size());
    words_[i] = value;
  }

  /// Raw word storage, for hot kernels that hoist the pointer out of their
  /// inner loops (member accesses through `this` defeat the compiler's
  /// alias analysis once the loop also stores through uint64_t pointers).
  [[nodiscard]] std::uint64_t *word_data() { return words_.data(); }

  /// Sets bit \p lane of entry \p i and reports whether the whole word was
  /// previously zero — the "first lane to touch this vertex" primitive that
  /// drives the fused kernel's touched-vertex list.
  bool set_first(std::size_t i, unsigned lane) {
    RIPPLES_DEBUG_ASSERT(i < words_.size() && lane < 64);
    std::uint64_t &w = words_[i];
    bool was_zero = w == 0;
    w |= std::uint64_t{1} << lane;
    return was_zero;
  }

  void clear_word(std::size_t i) {
    RIPPLES_DEBUG_ASSERT(i < words_.size());
    words_[i] = 0;
  }

  /// Clears every word; O(entries).
  void reset() { std::fill(words_.begin(), words_.end(), 0); }

  /// Resizes to \p num_entries, clearing all content.
  void assign(std::size_t num_entries) { words_.assign(num_entries, 0); }

private:
  std::vector<std::uint64_t> words_;
};

} // namespace ripples

#endif // RIPPLES_SUPPORT_BITVECTOR_HPP
