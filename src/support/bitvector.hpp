/// \file bitvector.hpp
/// \brief Compact dynamic bit set used as the "visited" structure of the
/// probabilistic BFS kernels.
///
/// std::vector<bool> would work, but the BFS kernels want a cheap bulk
/// reset and an explicit word representation; this class keeps both obvious
/// and avoids the proxy-reference pitfalls of vector<bool> in hot loops.
#ifndef RIPPLES_SUPPORT_BITVECTOR_HPP
#define RIPPLES_SUPPORT_BITVECTOR_HPP

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace ripples {

class BitVector {
public:
  BitVector() = default;
  explicit BitVector(std::size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const { return num_bits_; }

  [[nodiscard]] bool test(std::size_t i) const {
    RIPPLES_DEBUG_ASSERT(i < num_bits_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void set(std::size_t i) {
    RIPPLES_DEBUG_ASSERT(i < num_bits_);
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }

  void clear(std::size_t i) {
    RIPPLES_DEBUG_ASSERT(i < num_bits_);
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  /// Sets bit i and reports whether it was previously clear.  This is the
  /// BFS "try to visit" primitive.
  bool test_and_set(std::size_t i) {
    RIPPLES_DEBUG_ASSERT(i < num_bits_);
    std::uint64_t &word = words_[i >> 6];
    std::uint64_t mask = std::uint64_t{1} << (i & 63);
    bool was_set = (word & mask) != 0;
    word |= mask;
    return !was_set;
  }

  /// Clears every bit; O(words).
  void reset() { std::fill(words_.begin(), words_.end(), 0); }

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const {
    std::size_t total = 0;
    for (std::uint64_t w : words_) total += static_cast<std::size_t>(__builtin_popcountll(w));
    return total;
  }

  /// Resizes to \p num_bits, clearing all content.
  void assign(std::size_t num_bits) {
    num_bits_ = num_bits;
    words_.assign((num_bits + 63) / 64, 0);
  }

private:
  std::size_t num_bits_ = 0;
  std::vector<std::uint64_t> words_;
};

} // namespace ripples

#endif // RIPPLES_SUPPORT_BITVECTOR_HPP
