/// \file assert.hpp
/// \brief Always-on invariant checks.
///
/// The algorithms in this library rely on structural invariants (sorted RRR
/// sets, CSR offset monotonicity, disjoint vertex intervals).  Violations are
/// programming errors, not recoverable conditions, so the check macro aborts
/// with a source location instead of throwing.  Checks guarding hot inner
/// loops use RIPPLES_DEBUG_ASSERT, which compiles away in release builds.
#ifndef RIPPLES_SUPPORT_ASSERT_HPP
#define RIPPLES_SUPPORT_ASSERT_HPP

#include <cstdio>
#include <cstdlib>

namespace ripples::detail {

[[noreturn]] inline void assert_fail(const char *expr, const char *file,
                                     int line, const char *msg) {
  std::fprintf(stderr, "ripples: assertion `%s` failed at %s:%d%s%s\n", expr,
               file, line, msg ? ": " : "", msg ? msg : "");
  std::abort();
}

} // namespace ripples::detail

#define RIPPLES_ASSERT(expr)                                                   \
  ((expr) ? static_cast<void>(0)                                              \
          : ::ripples::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr))

#define RIPPLES_ASSERT_MSG(expr, msg)                                          \
  ((expr) ? static_cast<void>(0)                                              \
          : ::ripples::detail::assert_fail(#expr, __FILE__, __LINE__, msg))

#ifndef NDEBUG
#define RIPPLES_DEBUG_ASSERT(expr) RIPPLES_ASSERT(expr)
#else
#define RIPPLES_DEBUG_ASSERT(expr) static_cast<void>(0)
#endif

#endif // RIPPLES_SUPPORT_ASSERT_HPP
