/// \file metrics.hpp
/// \brief Process-wide observability: counters, gauges, log-scale
/// histograms, and the structured per-execution RunReport.
///
/// The paper's evaluation hinges on quantified breakdowns — per-phase wall
/// time (Figs. 3-8), memory footprint (Table 2), and the O(k n lg p)
/// All-Reduce volume of the distributed selection (Sec. 3.2).  This module
/// is the substrate that makes those numbers machine-readable so every
/// optimization can prove its win:
///
///  * `Counter` / `Gauge` / `LogHistogram` — cheap thread-safe instruments,
///    owned by the process-wide `Registry` and addressed by name.
///  * `enabled()` — one relaxed atomic load; when metrics are off (the
///    default unless `RIPPLES_METRICS=1` or `set_enabled(true)`), hot-path
///    instrumentation reduces to a single predictable branch.
///  * `RunReport` — a structured record of one influence-maximization
///    execution (phase times, theta schedule, RRR-size histogram, storage
///    footprint, per-collective communication volume, seeds), serialized to
///    JSON.  See EXPERIMENTS.md for the schema.
///  * `report_log()` — process-wide collection point; when a report output
///    path is set (bench `--json-report`), every completed run lands there
///    and the file is written at exit.
#ifndef RIPPLES_SUPPORT_METRICS_HPP
#define RIPPLES_SUPPORT_METRICS_HPP

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "support/json.hpp"
#include "support/timer.hpp"

namespace ripples::metrics {

namespace detail {
/// The global toggle.  Defined in metrics.cpp; initialized from the
/// RIPPLES_METRICS environment variable ("1", "true", "on" enable).
extern std::atomic<bool> g_enabled;
} // namespace detail

/// True when instrumentation should record.  One relaxed load — callers on
/// hot paths guard with this and skip the atomic update entirely when off.
[[nodiscard]] inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Flips the process-wide toggle (e.g. from a --json-report CLI flag).
void set_enabled(bool on);

/// Monotonically increasing event/byte counter.
class Counter {
public:
  void add(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void increment() { add(1); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (e.g. current footprint bytes).
class Gauge {
public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  /// Raises the gauge to \p v if larger (peak tracking).
  void set_max(std::int64_t v) {
    std::int64_t current = value_.load(std::memory_order_relaxed);
    while (v > current &&
           !value_.compare_exchange_weak(current, v, std::memory_order_relaxed))
      ;
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

private:
  std::atomic<std::int64_t> value_{0};
};

/// Snapshot of a log-scale histogram: bucket b counts values whose
/// floor(log2(value)) == b - 1 (bucket 0 counts zeros), i.e. bucket bounds
/// [0,0], [1,1], [2,3], [4,7], ... — the standard power-of-two layout that
/// resolves the heavy-tailed RRR-set size distribution in O(64) words.
struct HistogramData {
  static constexpr std::size_t kBuckets = 65;

  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max = 0;
  std::array<std::uint64_t, kBuckets> buckets{};

  /// Bucket index for one value.
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t value) {
    return value == 0 ? 0 : 64 - static_cast<std::size_t>(__builtin_clzll(value));
  }

  /// Inclusive lower bound of bucket \p b.
  [[nodiscard]] static std::uint64_t bucket_lower(std::size_t b) {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }

  /// Inclusive upper bound of bucket \p b.
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t b) {
    return b == 0 ? 0 : (std::uint64_t{1} << (b - 1)) * 2 - 1;
  }

  void record(std::uint64_t value) {
    ++count;
    sum += value;
    if (value < min) min = value;
    if (value > max) max = value;
    ++buckets[bucket_of(value)];
  }

  void merge(const HistogramData &other) {
    count += other.count;
    sum += other.sum;
    if (other.count > 0) {
      if (other.min < min) min = other.min;
      if (other.max > max) max = other.max;
    }
    for (std::size_t b = 0; b < kBuckets; ++b) buckets[b] += other.buckets[b];
  }

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Serializes as {"count", "sum", "min", "max", "mean", "buckets": [
  /// {"lo", "hi", "count"}, ...]} with empty buckets omitted.
  void to_json(JsonWriter &w) const;
};

/// Thread-safe log-scale histogram (atomic twin of HistogramData).
class LogHistogram {
public:
  void record(std::uint64_t value) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    update_min(value);
    update_max(value);
    buckets_[HistogramData::bucket_of(value)].fetch_add(
        1, std::memory_order_relaxed);
  }

  [[nodiscard]] HistogramData snapshot() const;
  void reset();

private:
  void update_min(std::uint64_t value) {
    std::uint64_t current = min_.load(std::memory_order_relaxed);
    while (value < current &&
           !min_.compare_exchange_weak(current, value, std::memory_order_relaxed))
      ;
  }
  void update_max(std::uint64_t value) {
    std::uint64_t current = max_.load(std::memory_order_relaxed);
    while (value > current &&
           !max_.compare_exchange_weak(current, value, std::memory_order_relaxed))
      ;
  }

  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{std::numeric_limits<std::uint64_t>::max()};
  std::atomic<std::uint64_t> max_{0};
  std::array<std::atomic<std::uint64_t>, HistogramData::kBuckets> buckets_{};
};

/// Process-wide instrument registry.  Lookup creates on first use and
/// returns a reference that stays valid for the process lifetime, so hot
/// paths can cache it:
///
/// \code
///   static metrics::Counter &calls =
///       metrics::Registry::instance().counter("sampler.batches");
///   if (metrics::enabled()) calls.increment();
/// \endcode
class Registry {
public:
  static Registry &instance();

  Counter &counter(std::string_view name);
  Gauge &gauge(std::string_view name);
  LogHistogram &histogram(std::string_view name);

  /// Serializes every registered instrument as
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  void to_json(JsonWriter &w) const;

  /// Zeroes every instrument (references stay valid).
  void reset();

  Registry(const Registry &) = delete;
  Registry &operator=(const Registry &) = delete;

private:
  Registry() = default;
  struct Impl;
  Impl &impl() const;
};

/// Per-collective communication volume (filled from the mpsim counters).
struct CollectiveStats {
  std::string name;
  std::uint64_t calls = 0;
  std::uint64_t bytes = 0;
};

/// One rank's phase accounting for one martingale round, recorded by the
/// RoundLedger (imm_core.hpp) and reduced into RunReport.rounds.  The
/// sample/select times are inclusive wall seconds; collective_wait_seconds
/// is the portion of both spent blocked in mpsim collectives, so per-rank
/// compute is (sample + select - collective_wait).
struct RoundEntry {
  std::uint32_t round = 0; ///< 1-based; estimation rounds then the final one.
  std::int32_t rank = 0;
  double sample_seconds = 0.0;
  double select_seconds = 0.0;
  double collective_wait_seconds = 0.0;
  std::uint64_t rrr_sets = 0;  ///< Rank-local sets held after the round.
  std::uint64_t rrr_bytes = 0; ///< Rank-local storage footprint bytes.
};

/// Load-imbalance factor of one round: max over ranks of per-rank compute
/// (sample + select - collective_wait, clamped at 0) divided by the median.
/// 1.0 for perfectly balanced or degenerate (<=1 rank, zero median) rounds.
[[nodiscard]] double round_imbalance_factor(const std::vector<RoundEntry> &ranks);

/// One tick of the background resource sampler (memory.hpp): logical
/// tracker bytes and kernel RSS on the shared process trace epoch.
struct MemorySample {
  double t_seconds = 0.0;
  std::uint64_t tracker_live_bytes = 0;
  std::uint64_t tracker_peak_bytes = 0;
  std::uint64_t rss_bytes = 0;
};

/// Per-thread collective-wait accounting: mpsim's rendezvous adds the
/// seconds a rank thread spends blocked in sync() (gated on enabled());
/// the martingale skeleton reads deltas at round boundaries.  Thread-local,
/// so concurrent ranks never contend.
[[nodiscard]] double thread_collective_wait_seconds();
void add_thread_collective_wait(double seconds);

/// Structured record of one influence-maximization execution — the
/// machine-readable sibling of the printf summaries.  Drivers always fill
/// it (the bookkeeping is negligible next to the run itself); only the
/// mpsim per-collective counters additionally require `metrics::enabled()`
/// because they sit on the communication hot path.
struct RunReport {
  /// v2: added "phase_starts_seconds" — per-phase first-entry offsets on the
  /// process trace epoch, so reports cross-reference trace timelines.
  /// v3: added "failed"/"failure_reason" — a run that died with an exception
  /// still lands in the log (partial, marked) instead of vanishing.
  /// v4: added "resumed_from" — the martingale round a checkpoint-resumed
  /// run re-entered at (null for fresh runs).
  /// v5: added "rounds" (per-round, per-rank phase accounting with derived
  /// imbalance factors), "storage.tracker_peak_bytes" /
  /// "storage.peak_rss_bytes", and the optional "memory_timeline" series
  /// from the background resource sampler.
  /// v6: added "degraded" / "epsilon_achieved" — the memory-budget
  /// governor's certified-early-stop outcome (DESIGN.md §12), plus
  /// "options.mem_budget" / "options.rrr_compress".
  /// v7: added "options.steal" / "options.steal_chunk" /
  /// "options.steal_skew" — the work-stealing sampler's placement knobs
  /// (DESIGN.md §13).
  /// v8: added "options.verify_collectives" / "options.scrub_rrr" — the
  /// end-to-end data-integrity knobs (DESIGN.md §14); their runtime
  /// activity lands in the "integrity.*" counter family.
  static constexpr std::uint32_t kSchemaVersion = 8;

  std::string driver;

  /// True for the partial report of a run an exception unwound; the other
  /// fields then hold whatever was recorded before the failure.
  bool failed = false;
  /// what() of the exception that killed the run (empty when !failed).
  std::string failure_reason;
  /// Martingale round a checkpoint resume re-entered at; -1 (serialized as
  /// null) for a fresh run.
  std::int64_t resumed_from = -1;

  // Experiment configuration.
  double epsilon = 0.0;
  std::uint32_t k = 0;
  std::string model;
  std::uint64_t seed = 0;
  unsigned num_threads = 1;
  int num_ranks = 1;
  std::string rng_mode;
  /// Enforced RRR reservation budget in bytes (0 = unlimited) and the
  /// compression policy ("auto"/"always"/"off") the run executed under.
  std::uint64_t mem_budget = 0;
  std::string rrr_compress;
  /// Work-stealing placement knobs (v7): the steal scope
  /// ("off"/"intra"/"inter"/"on"), the chunk size in draws, and whether the
  /// skewed-partition benchmark knob was on (DESIGN.md §13).
  std::string steal;
  std::uint64_t steal_chunk = 0;
  bool steal_skew = false;
  /// Data-integrity knobs (v8): checksummed collectives and the RRR-store
  /// scrub mode ("off"/"on"/"paranoid"), DESIGN.md §14.
  bool verify_collectives = false;
  std::string scrub_rrr = "off";

  /// True when the memory budget forced a certified early stop (v6): the
  /// seeds are valid at accuracy epsilon_achieved rather than the
  /// requested epsilon (DESIGN.md §12).
  bool degraded = false;
  /// Accuracy certified by the samples actually generated; equals epsilon
  /// on a non-degraded run.
  double epsilon_achieved = 0.0;

  // Input shape.
  std::uint64_t graph_vertices = 0;
  std::uint64_t graph_edges = 0;

  // Phase wall-times (the paper's four categories) plus each phase's
  // first-entry offset on the process trace epoch (see
  // process_now_seconds()): "phases_seconds" answers how long,
  // "phase_starts_seconds" anchors *when*, so a report row can be matched
  // against the spans of a trace captured in the same process.
  PhaseTimers phases;

  // Theta estimation (Alg. 2).
  std::uint64_t theta = 0;
  std::uint32_t theta_iterations = 0;
  double lower_bound = 0.0;
  /// Sample-count target of every extend call, in execution order (the
  /// doubling schedule plus the final top-up when theta overshoots).
  std::vector<std::uint64_t> extend_targets;

  // Sampling (Alg. 3).
  std::uint64_t num_samples = 0;
  HistogramData rrr_sizes;

  // Storage (Table 2's metrics).  rrr_peak_bytes is the RRR-collection
  // footprint the driver itself tracked; tracker_peak_bytes/peak_rss_bytes
  // are the process-lifetime MemoryTracker peak and /proc VmHWM at report
  // time, filled for every driver by finalize_run_report.
  std::uint64_t rrr_peak_bytes = 0;
  std::uint64_t total_associations = 0;
  std::uint64_t tracker_peak_bytes = 0;
  std::uint64_t peak_rss_bytes = 0;

  // Seed selection (Alg. 4).
  std::uint32_t selection_rounds = 0;
  std::uint64_t covered_samples = 0;
  std::uint64_t total_samples = 0;
  double coverage_fraction = 0.0;

  // Communication (Sec. 3.2): per-collective calls and payload bytes,
  // summed over ranks.  Empty for shared-memory drivers or when metrics
  // were disabled during the run.
  std::vector<CollectiveStats> collectives;

  /// Per-round, per-rank phase accounting (v5).  Entries arrive in ledger
  /// order; serialization groups them by round and derives the imbalance
  /// factor.  Empty when metrics were disabled during the run.
  std::vector<RoundEntry> rounds;

  /// Background resource-sampler series (v5); empty unless --profile-mem.
  std::vector<MemorySample> memory_timeline;

  std::vector<std::uint64_t> seeds;

  void to_json(JsonWriter &w) const;
  [[nodiscard]] std::string to_json_string() const;

  /// Writes the report as a standalone JSON document; false on I/O failure.
  bool write_json_file(const std::string &path) const;
};

/// Process-wide collection of completed run reports (thread-safe).
class ReportLog {
public:
  void add(const RunReport &report);
  [[nodiscard]] std::size_t size() const;
  void clear();

  /// Writes {"schema_version", "reports": [...], "registry": {...}}.
  bool write_json_file(const std::string &path) const;

private:
  friend ReportLog &report_log();
  ReportLog() = default;
  struct Impl;
  Impl &impl() const;
};

ReportLog &report_log();

/// Arms end-of-process report emission: enables metrics and registers an
/// atexit hook that writes the accumulated report log to \p path.  This is
/// what bench binaries call for `--json-report`.
void write_reports_at_exit(const std::string &path);

/// Appends a failed-run marker report for \p driver (failure_reason =
/// \p reason) to the process report log.  Drivers' exception handlers call
/// this so a crashed run leaves a diagnosable record next to any completed
/// runs instead of losing the log entirely.
void mark_run_failed(const std::string &driver, const std::string &reason);

/// Writes the report log to the path armed by write_reports_at_exit()
/// immediately (true on success or when no path is armed).  atexit hooks do
/// not run when an uncaught exception terminates the process, so failure
/// paths flush explicitly before unwinding further.
bool flush_reports_now();

} // namespace ripples::metrics

#endif // RIPPLES_SUPPORT_METRICS_HPP
