/// \file memory.hpp
/// \brief Data-structure footprint accounting (Table 2's memory columns).
///
/// The paper measures peak memory of the two RRR-set representations with
/// Valgrind Massif.  Massif is unavailable here and its instrumentation
/// overhead prevented the authors from measuring large inputs anyway, so we
/// substitute a byte counter with the same meaning: every container that
/// stores reverse-reachability information reports its footprint, and a
/// process-wide MemoryTracker records the running and peak totals.  An RSS
/// sampler backs this up with an OS-level view.
#ifndef RIPPLES_SUPPORT_MEMORY_HPP
#define RIPPLES_SUPPORT_MEMORY_HPP

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace ripples {

/// Diagnostic refusal of a tracked memory reservation: the named consumer
/// asked for more than the enforced budget (or an injected oom fault) allows.
/// Thrown only by callers that opted into hard refusal (the distributed
/// driver); the shared-memory drivers degrade to a certified early stop
/// instead (DESIGN.md §12).  The message names the consumer and the sizes so
/// an out-of-budget run is a one-line diagnosis, never a raw bad_alloc.
class MemoryBudgetExceeded : public std::runtime_error {
public:
  MemoryBudgetExceeded(const std::string &consumer, std::size_t requested,
                       std::size_t reserved, std::size_t budget);

  [[nodiscard]] const std::string &consumer() const { return consumer_; }
  [[nodiscard]] std::size_t requested_bytes() const { return requested_; }

private:
  std::string consumer_;
  std::size_t requested_;
};

/// One planned reservation failure: the \p site-th tracked reservation
/// attempted by mpsim world rank \p rank (thread-local trace rank; 0 on the
/// shared-memory drivers) is refused, and — modelling a hard per-rank
/// ceiling — every later reservation on that rank is refused too.  The
/// sticky semantics make the whole degradation ladder deterministic: the
/// compress and shed rungs re-reserve, fail again, and the run ends in the
/// same certified early stop (or diagnosed refusal) on every execution.
/// Mirrors mpsim::FaultSpec, but lives here so support/ stays independent
/// of the mpsim layer; the drivers translate `kind=oom` plan entries.
struct OomFaultSpec {
  int rank = 0;
  std::uint64_t site = 0;
};

/// Process-wide live/peak byte counter for tracked data structures.
///
/// Thread-safe: sampling engines update it concurrently.  The counter is
/// *logical* (bytes of tracked containers), not an allocator hook, so it
/// measures exactly the representation cost that Table 2 compares.
///
/// The tracker doubles as the budget authority (DESIGN.md §12): consumers
/// that can react to memory pressure route their growth through
/// try_reserve()/release() and the reserved total is checked against the
/// enforced budget (`--mem-budget` / RIPPLES_MEM_BUDGET).  Reservations are
/// *cooperative* — an untracked allocation is not stopped — which keeps
/// refusal a catchable decision point on the requesting thread instead of a
/// bad_alloc inside a parallel region.
class MemoryTracker {
public:
  /// The single process-wide instance.
  static MemoryTracker &instance();

  /// Registers \p bytes of newly held memory.
  void allocate(std::size_t bytes) {
    std::size_t live = live_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    // Lock-free peak update; contention is negligible (batched updates).
    std::size_t peak = peak_.load(std::memory_order_relaxed);
    while (live > peak &&
           !peak_.compare_exchange_weak(peak, live, std::memory_order_relaxed)) {
    }
  }

  /// Registers \p bytes of released memory.
  void deallocate(std::size_t bytes) {
    live_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t live_bytes() const {
    return live_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t peak_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }

  /// Resets both counters; call between benchmark repetitions.
  void reset() {
    live_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

  // --- budget & reservations (DESIGN.md §12) ------------------------------

  /// Sets the enforced reservation budget in bytes; 0 means unlimited.
  void set_budget(std::size_t bytes) {
    budget_.store(bytes, std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t budget() const {
    return budget_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t reserved_bytes() const {
    return reserved_.load(std::memory_order_relaxed);
  }

  /// Attempts to reserve \p bytes against the budget on behalf of
  /// \p consumer.  Success charges both the reservation total and the
  /// live/peak counters; failure (budget exceeded, or an installed oom
  /// fault) changes nothing and returns false.  Counted in
  /// `mem.budget.reservations` / `mem.budget.refusals`.
  bool try_reserve(std::size_t bytes, const char *consumer);

  /// Unchecked reservation bookkeeping: used to reconcile an estimate-ahead
  /// admission with the bytes a batch actually occupies.  Never refused, not
  /// an oom fault site — admission decisions stay at try_reserve.
  void force_reserve(std::size_t bytes) {
    reserved_.fetch_add(bytes, std::memory_order_relaxed);
    allocate(bytes);
  }

  /// Returns \p bytes of reservation.
  void release(std::size_t bytes) {
    reserved_.fetch_sub(bytes, std::memory_order_relaxed);
    deallocate(bytes);
  }

  /// Installs the deterministic reservation-failure plan (`kind=oom` fault
  /// specs; see mpsim/fault.hpp).  Each rank's try_reserve calls are
  /// numbered from this installation; once rank R reaches its planned site
  /// its reservations fail *stickily* from then on.  Replaces any previous
  /// plan and resets the per-rank site counters.
  void install_oom_faults(std::vector<OomFaultSpec> faults);

  /// Removes the fault plan and resets the site counters and sticky state.
  void clear_oom_faults();

private:
  /// Fault check for one reservation attempt; returns true when the attempt
  /// must be refused.  Only called when a plan is installed.
  bool oom_fault_fires();

  std::atomic<std::size_t> live_{0};
  std::atomic<std::size_t> peak_{0};
  std::atomic<std::size_t> budget_{0};
  std::atomic<std::size_t> reserved_{0};

  // Oom fault state: guarded by a mutex — reservations are per-batch, not
  // per-sample, so this is far off every hot path, and only ever touched
  // when a plan is installed (have_oom_faults_ gates with one relaxed load).
  std::atomic<bool> have_oom_faults_{false};
  std::mutex oom_mutex_;
  std::vector<OomFaultSpec> oom_faults_;
  std::vector<std::uint64_t> oom_sites_;  // per-rank attempt counters
  std::vector<std::uint8_t> oom_sticky_;  // per-rank "ceiling hit" flags
};

/// Allocator adaptor that reports every allocation to the MemoryTracker.
/// Used by the RRR-set containers so their exact heap footprint (including
/// growth slack) is visible to the Table 2 harness.
template <typename T> class TrackingAllocator {
public:
  using value_type = T;

  TrackingAllocator() noexcept = default;
  template <typename U>
  TrackingAllocator(const TrackingAllocator<U> &) noexcept {}

  T *allocate(std::size_t n) {
    MemoryTracker::instance().allocate(n * sizeof(T));
    return std::allocator<T>{}.allocate(n);
  }

  void deallocate(T *p, std::size_t n) noexcept {
    MemoryTracker::instance().deallocate(n * sizeof(T));
    std::allocator<T>{}.deallocate(p, n);
  }

  friend bool operator==(const TrackingAllocator &, const TrackingAllocator &) {
    return true;
  }
};

/// Current resident set size of the process in bytes (Linux /proc based).
/// Returns 0 when the information is unavailable.
[[nodiscard]] std::size_t current_rss_bytes();

/// Peak resident set size of the process in bytes (VmHWM).
[[nodiscard]] std::size_t peak_rss_bytes();

/// Formats a byte count as a human-readable string ("12.3 MB").
[[nodiscard]] std::string format_bytes(std::size_t bytes);

/// One tick of the ResourceSampler: logical tracker bytes and kernel RSS at
/// \p t_seconds on the process trace epoch (see process_now_seconds()), so
/// the series aligns with trace spans and RunReport phase starts.
struct ResourceSample {
  double t_seconds = 0.0;
  std::uint64_t tracker_live_bytes = 0;
  std::uint64_t tracker_peak_bytes = 0;
  std::uint64_t rss_bytes = 0;
};

/// Low-rate background memory profiler (`--profile-mem`, default 10 Hz).
///
/// A dedicated thread samples MemoryTracker live/peak and /proc RSS,
/// appending to a bounded in-memory series and — when tracing is enabled —
/// emitting `mem.tracker_live_bytes` / `mem.tracker_peak_bytes` /
/// `mem.rss_bytes` counter tracks, which Perfetto renders as area charts
/// under rank 0.  When the series hits its capacity it halves itself (keep
/// every other sample) and doubles the sampling period, so an arbitrarily
/// long run costs bounded memory at degrading resolution — the same
/// recent-window-survives spirit as the trace ring, but here the *shape*
/// of the whole run matters more than the tail, hence decimation over
/// overwrite.
///
/// start()/stop() are idempotent and thread-safe; stop() joins the thread
/// (also registered atexit, so the sampler is quiescent before the trace
/// and report atexit flushes run — they were armed earlier, and atexit
/// runs LIFO).
class ResourceSampler {
public:
  static ResourceSampler &instance();

  /// Starts the sampler thread at \p hz (clamped to [0.1, 1000]); no-op if
  /// already running.
  void start(double hz = 10.0);

  /// Stops and joins the sampler thread; no-op if not running.
  void stop();

  [[nodiscard]] bool running() const;

  /// Snapshot of the collected series (thread-safe).
  [[nodiscard]] std::vector<ResourceSample> samples() const;

  /// Drops all collected samples (the thread, if running, keeps sampling).
  void clear();

  /// Caps the series length (>= 2); exceeding it triggers decimation.
  /// Mainly for tests exercising the overflow policy.
  void set_capacity(std::size_t max_samples);

  /// How many keep-every-other compactions have happened (tests).
  [[nodiscard]] std::uint64_t compactions() const;

  ResourceSampler(const ResourceSampler &) = delete;
  ResourceSampler &operator=(const ResourceSampler &) = delete;

private:
  ResourceSampler() = default;
  void run();
  void record_once();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::thread thread_;
  bool running_ = false;
  bool stop_requested_ = false;
  double period_seconds_ = 0.1;
  std::size_t capacity_ = 1 << 16;
  std::uint64_t compactions_ = 0;
  std::vector<ResourceSample> samples_;
};

} // namespace ripples

#endif // RIPPLES_SUPPORT_MEMORY_HPP
