/// \file memory.hpp
/// \brief Data-structure footprint accounting (Table 2's memory columns).
///
/// The paper measures peak memory of the two RRR-set representations with
/// Valgrind Massif.  Massif is unavailable here and its instrumentation
/// overhead prevented the authors from measuring large inputs anyway, so we
/// substitute a byte counter with the same meaning: every container that
/// stores reverse-reachability information reports its footprint, and a
/// process-wide MemoryTracker records the running and peak totals.  An RSS
/// sampler backs this up with an OS-level view.
#ifndef RIPPLES_SUPPORT_MEMORY_HPP
#define RIPPLES_SUPPORT_MEMORY_HPP

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>

namespace ripples {

/// Process-wide live/peak byte counter for tracked data structures.
///
/// Thread-safe: sampling engines update it concurrently.  The counter is
/// *logical* (bytes of tracked containers), not an allocator hook, so it
/// measures exactly the representation cost that Table 2 compares.
class MemoryTracker {
public:
  /// The single process-wide instance.
  static MemoryTracker &instance();

  /// Registers \p bytes of newly held memory.
  void allocate(std::size_t bytes) {
    std::size_t live = live_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    // Lock-free peak update; contention is negligible (batched updates).
    std::size_t peak = peak_.load(std::memory_order_relaxed);
    while (live > peak &&
           !peak_.compare_exchange_weak(peak, live, std::memory_order_relaxed)) {
    }
  }

  /// Registers \p bytes of released memory.
  void deallocate(std::size_t bytes) {
    live_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t live_bytes() const {
    return live_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t peak_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }

  /// Resets both counters; call between benchmark repetitions.
  void reset() {
    live_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

private:
  std::atomic<std::size_t> live_{0};
  std::atomic<std::size_t> peak_{0};
};

/// Allocator adaptor that reports every allocation to the MemoryTracker.
/// Used by the RRR-set containers so their exact heap footprint (including
/// growth slack) is visible to the Table 2 harness.
template <typename T> class TrackingAllocator {
public:
  using value_type = T;

  TrackingAllocator() noexcept = default;
  template <typename U>
  TrackingAllocator(const TrackingAllocator<U> &) noexcept {}

  T *allocate(std::size_t n) {
    MemoryTracker::instance().allocate(n * sizeof(T));
    return std::allocator<T>{}.allocate(n);
  }

  void deallocate(T *p, std::size_t n) noexcept {
    MemoryTracker::instance().deallocate(n * sizeof(T));
    std::allocator<T>{}.deallocate(p, n);
  }

  friend bool operator==(const TrackingAllocator &, const TrackingAllocator &) {
    return true;
  }
};

/// Current resident set size of the process in bytes (Linux /proc based).
/// Returns 0 when the information is unavailable.
[[nodiscard]] std::size_t current_rss_bytes();

/// Peak resident set size of the process in bytes (VmHWM).
[[nodiscard]] std::size_t peak_rss_bytes();

/// Formats a byte count as a human-readable string ("12.3 MB").
[[nodiscard]] std::string format_bytes(std::size_t bytes);

} // namespace ripples

#endif // RIPPLES_SUPPORT_MEMORY_HPP
