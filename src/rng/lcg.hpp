/// \file lcg.hpp
/// \brief 64-bit linear congruential generator with O(lg j) jump-ahead and
/// leap-frog stream splitting.
///
/// The paper's distributed sampler requires that "accurate generation of
/// pseudorandom numbers in parallel is critical to guarantee the
/// approximation bounds" and employs a linear congruential generator "by
/// splitting the sequence between ranks using the Leap Frog method
/// implemented in TRNG".  This class reproduces that construction from
/// scratch:
///
///  * the base sequence is X_{n+1} = a * X_n + c  (mod 2^64);
///  * jump-ahead by j steps computes (A_j, C_j) with A_j = a^j and
///    C_j = c * (a^j - 1) / (a - 1) via iterated squaring in O(lg j);
///  * leap-frog stream i of p is the subsequence X_i, X_{i+p}, X_{i+2p},...
///    which is itself an LCG with multiplier A_p and increment C_p started
///    from X_i.
///
/// Consequently the multiset of random numbers consumed by p ranks equals
/// the prefix of one global stream, independent of p — the property the
/// determinism tests and `ablation_rng_streams` verify.
#ifndef RIPPLES_RNG_LCG_HPP
#define RIPPLES_RNG_LCG_HPP

#include <cstdint>
#include <limits>

namespace ripples {

/// Affine map x -> mult * x + add (mod 2^64); the transition function of an
/// LCG.  Composition of affine maps models multi-step transitions.
struct LcgTransition {
  std::uint64_t mult = 1;
  std::uint64_t add = 0;

  /// The map applying \p first and then \p second.
  friend LcgTransition compose(const LcgTransition &second,
                               const LcgTransition &first) {
    return {second.mult * first.mult, second.mult * first.add + second.add};
  }

  [[nodiscard]] std::uint64_t apply(std::uint64_t x) const {
    return mult * x + add;
  }
};

/// 64-bit LCG (Knuth MMIX constants).  Satisfies UniformRandomBitGenerator.
/// The low bits of a power-of-two-modulus LCG have short periods, so the
/// 64-bit output is the raw state but consumers should prefer
/// next_double()/next_u32(), which use the high bits.
class Lcg64 {
public:
  using result_type = std::uint64_t;

  static constexpr std::uint64_t kDefaultMultiplier = 6364136223846793005ULL;
  static constexpr std::uint64_t kDefaultIncrement = 1442695040888963407ULL;

  explicit Lcg64(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
      : state_(seed), step_{kDefaultMultiplier, kDefaultIncrement} {}

  /// A generator with an explicit transition (used by leapfrog()).
  Lcg64(std::uint64_t state, LcgTransition step) : state_(state), step_(step) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Advances one step and returns the new state.
  result_type operator()() {
    state_ = step_.apply(state_);
    return state_;
  }

  /// High 32 bits of the next state — the statistically strong half.
  [[nodiscard]] std::uint32_t next_u32() {
    return static_cast<std::uint32_t>(operator()() >> 32);
  }

  /// Uniform double in [0, 1) built from the top 53 bits.
  [[nodiscard]] double next_double() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  [[nodiscard]] std::uint64_t state() const { return state_; }
  [[nodiscard]] LcgTransition transition() const { return step_; }

  /// The transition of \p steps applications of \p base, in O(lg steps).
  static LcgTransition power(LcgTransition base, std::uint64_t steps);

  /// Jumps this generator forward by \p steps in O(lg steps).
  void discard(std::uint64_t steps) { state_ = power(step_, steps).apply(state_); }

  /// Leap-frog substream \p stream of \p num_streams (0-based): yields
  /// elements stream, stream+num_streams, stream+2*num_streams, ... of this
  /// generator's future sequence.  *this is left unmodified.
  [[nodiscard]] Lcg64 leapfrog(std::uint64_t stream,
                               std::uint64_t num_streams) const;

  /// The leap-frog substream of the experiment-wide sequence keyed by
  /// \p seed.  A stream is addressable by its coordinates alone — no
  /// generator history required — which is what lets a surviving rank
  /// replay a dead rank's stream from the beginning and regenerate its
  /// samples bit-identically (see imm_distributed's healing path).
  [[nodiscard]] static Lcg64 leapfrog_stream(std::uint64_t seed,
                                             std::uint64_t stream,
                                             std::uint64_t num_streams) {
    return Lcg64(seed).leapfrog(stream, num_streams);
  }

  friend bool operator==(const Lcg64 &, const Lcg64 &) = default;

private:
  std::uint64_t state_;
  LcgTransition step_;
};

} // namespace ripples

#endif // RIPPLES_RNG_LCG_HPP
