#include "rng/lcg.hpp"

#include "support/assert.hpp"

namespace ripples {

LcgTransition Lcg64::power(LcgTransition base, std::uint64_t steps) {
  // Iterated squaring over affine-map composition: the classic O(lg n)
  // LCG jump-ahead (Brown, "Random number generation with arbitrary strides").
  LcgTransition result; // identity
  while (steps != 0) {
    if (steps & 1) result = compose(base, result);
    base = compose(base, base);
    steps >>= 1;
  }
  return result;
}

namespace {

/// Multiplicative inverse of an odd 64-bit integer modulo 2^64 via
/// Newton-Hensel lifting; each iteration doubles the number of correct bits.
std::uint64_t inverse_pow2(std::uint64_t a) {
  RIPPLES_ASSERT_MSG(a & 1, "only odd multipliers are invertible mod 2^64");
  std::uint64_t x = a; // correct to 3 bits
  for (int i = 0; i < 5; ++i) x *= 2 - a * x;
  return x;
}

} // namespace

Lcg64 Lcg64::leapfrog(std::uint64_t stream, std::uint64_t num_streams) const {
  RIPPLES_ASSERT(num_streams > 0);
  RIPPLES_ASSERT(stream < num_streams);
  // The substream steps by num_streams base steps at a time.
  LcgTransition stride = power(step_, num_streams);
  // Its first output must be X_{stream+1}; seed the substream at the state
  // Y with stride(Y) == X_{stream+1}, i.e. Y = stride^{-1}(X_{stream+1}).
  std::uint64_t first_output = power(step_, stream + 1).apply(state_);
  std::uint64_t inv_mult = inverse_pow2(stride.mult);
  std::uint64_t y = inv_mult * (first_output - stride.add);
  return Lcg64{y, stride};
}

} // namespace ripples
