/// \file splitmix.hpp
/// \brief SplitMix64 — the standard seeding/mixing generator.
///
/// Used to expand a single user seed into the independent seeds of other
/// generators (xoshiro state words, per-dataset seeds), and as a cheap
/// stateless hash for deterministic per-item randomness.
#ifndef RIPPLES_RNG_SPLITMIX_HPP
#define RIPPLES_RNG_SPLITMIX_HPP

#include <cstdint>
#include <limits>

namespace ripples {

/// Finalizing mixer of SplitMix64; bijective on 64-bit integers.
[[nodiscard]] constexpr std::uint64_t splitmix64_mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// SplitMix64 sequential generator (Steele, Lea, Flood 2014).
class SplitMix64 {
public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    state_ += 0x9e3779b97f4a7c15ULL;
    return splitmix64_mix(state_);
  }

private:
  std::uint64_t state_;
};

} // namespace ripples

#endif // RIPPLES_RNG_SPLITMIX_HPP
