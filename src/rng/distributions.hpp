/// \file distributions.hpp
/// \brief Uniform/Bernoulli draws with engine-independent semantics.
///
/// The standard library's distributions are implementation-defined, which
/// would make results differ across standard libraries.  These helpers pin
/// down the exact mapping from raw 64-bit draws to values, so a seed fully
/// determines an experiment on any platform.
#ifndef RIPPLES_RNG_DISTRIBUTIONS_HPP
#define RIPPLES_RNG_DISTRIBUTIONS_HPP

#include <cstdint>

#include "support/assert.hpp"

namespace ripples {

/// Uniform double in [0, 1) from the top 53 bits of one 64-bit draw.
template <typename Engine> [[nodiscard]] double uniform_unit(Engine &engine) {
  return static_cast<double>(engine() >> 11) * 0x1.0p-53;
}

/// Uniform double in [lo, hi).
template <typename Engine>
[[nodiscard]] double uniform_real(Engine &engine, double lo, double hi) {
  return lo + (hi - lo) * uniform_unit(engine);
}

/// Uniform integer in [0, bound) using Lemire's multiply-shift rejection
/// method — unbiased and division-free on the fast path.
template <typename Engine>
[[nodiscard]] std::uint64_t uniform_index(Engine &engine, std::uint64_t bound) {
  RIPPLES_DEBUG_ASSERT(bound > 0);
  std::uint64_t x = engine();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = engine();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

/// Bernoulli trial with success probability \p p.
template <typename Engine>
[[nodiscard]] bool bernoulli(Engine &engine, double p) {
  return uniform_unit(engine) < p;
}

} // namespace ripples

#endif // RIPPLES_RNG_DISTRIBUTIONS_HPP
