/// \file philox_buffered.hpp
/// \brief Bulk Philox4x32-10 block generation and a buffered engine facade.
///
/// The scalar Philox4x32 interleaves counter-block arithmetic with the
/// consuming traversal: one bijection (10 rounds of 32x32 multiplies) per
/// two draws, on the critical path of every edge decision.  Because the
/// generator is counter-based, any run of future blocks is computable out
/// of order and in bulk; philox4x32_bulk lays the counters out
/// structure-of-arrays and lets the compiler vectorize the rounds across
/// blocks, and BufferedPhilox turns that into a drop-in engine that emits
/// the *exact* draw sequence of Philox4x32(key, counter_hi) — the identity
/// the fused sampling kernel (DESIGN.md §10) depends on.
#ifndef RIPPLES_RNG_PHILOX_BUFFERED_HPP
#define RIPPLES_RNG_PHILOX_BUFFERED_HPP

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "rng/philox.hpp"
#include "support/assert.hpp"

namespace ripples {

/// Computes Philox blocks [first_block, first_block + num_blocks) of the
/// stream (key, counter_hi) into \p out as draws — two 64-bit draws per
/// block, packed exactly as Philox4x32::operator() packs them (word1:word0,
/// then word3:word2).  Block b of a stream is the bijection of the counter
/// {lo32(b), hi32(b), lo32(counter_hi), hi32(counter_hi)}: Philox4x32
/// starts its low counter words at zero and carries only between them, so
/// the b-th advance is exactly that value for every b < 2^64.
inline void philox4x32_bulk(std::uint64_t first_block, std::size_t num_blocks,
                            std::uint64_t key, std::uint64_t counter_hi,
                            std::uint64_t *out) {
  constexpr std::size_t kWidth = 16;
  const auto c2_init = static_cast<std::uint32_t>(counter_hi);
  const auto c3_init = static_cast<std::uint32_t>(counter_hi >> 32);
  alignas(64) std::uint32_t c0[kWidth];
  alignas(64) std::uint32_t c1[kWidth];
  alignas(64) std::uint32_t c2[kWidth];
  alignas(64) std::uint32_t c3[kWidth];
  std::size_t done = 0;
  while (done < num_blocks) {
    const std::size_t width = std::min(kWidth, num_blocks - done);
    // Fill every lane (even past `width`): a uniform trip count keeps the
    // round loop branch-free and the surplus lanes are simply discarded.
    for (std::size_t i = 0; i < kWidth; ++i) {
      std::uint64_t b = first_block + done + i;
      c0[i] = static_cast<std::uint32_t>(b);
      c1[i] = static_cast<std::uint32_t>(b >> 32);
      c2[i] = c2_init;
      c3[i] = c3_init;
    }
    // The key schedule is block-independent, so it stays scalar while the
    // counters stream through the rounds kWidth at a time.
    std::uint32_t k0 = static_cast<std::uint32_t>(key);
    std::uint32_t k1 = static_cast<std::uint32_t>(key >> 32);
    for (int r = 0; r < 10; ++r) {
#pragma omp simd
      for (std::size_t i = 0; i < kWidth; ++i) {
        std::uint64_t p0 = static_cast<std::uint64_t>(Philox4x32::kMult0) * c0[i];
        std::uint64_t p1 = static_cast<std::uint64_t>(Philox4x32::kMult1) * c2[i];
        std::uint32_t n0 = static_cast<std::uint32_t>(p1 >> 32) ^ c1[i] ^ k0;
        std::uint32_t n1 = static_cast<std::uint32_t>(p1);
        std::uint32_t n2 = static_cast<std::uint32_t>(p0 >> 32) ^ c3[i] ^ k1;
        std::uint32_t n3 = static_cast<std::uint32_t>(p0);
        c0[i] = n0;
        c1[i] = n1;
        c2[i] = n2;
        c3[i] = n3;
      }
      k0 += Philox4x32::kWeyl0;
      k1 += Philox4x32::kWeyl1;
    }
    for (std::size_t i = 0; i < width; ++i) {
      out[2 * (done + i)] =
          (static_cast<std::uint64_t>(c1[i]) << 32) | c0[i];
      out[2 * (done + i) + 1] =
          (static_cast<std::uint64_t>(c3[i]) << 32) | c2[i];
    }
    done += width;
  }
}

/// A Philox4x32 stream consumed through a refill buffer.  operator() yields
/// the same draws in the same order as Philox4x32(key, counter_hi), but
/// blocks are generated in bulk through philox4x32_bulk: each refill doubles
/// its quantum (reset on reset()) up to the buffer capacity, so short
/// streams (an LT walk, a root draw) cost barely more than the scalar
/// engine while long streams (an IC traversal's edge draws) amortize the
/// bijection over hundreds of vectorized blocks.  ensure() optionally
/// pre-fills when the consumer knows a lower bound on upcoming draws.
class BufferedPhilox {
public:
  using result_type = std::uint64_t;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  BufferedPhilox() : buffer_(kCapacity + 1) {}

  /// Re-points the engine at the beginning of stream (key, counter_hi),
  /// discarding any buffered draws of the previous stream.
  void reset(std::uint64_t key, std::uint64_t counter_hi) {
    key_ = key;
    counter_hi_ = counter_hi;
    next_block_ = 0;
    head_ = 0;
    size_ = 0;
    quantum_ = kMinQuantum;
  }

  result_type operator()() {
    if (head_ == size_) refill(1);
    return buffer_[head_++];
  }

  /// Guarantees at least min(n, capacity) draws are buffered, generating
  /// the shortfall in one bulk call.
  void ensure(std::size_t n) {
    n = std::min(n, kCapacity);
    std::size_t have = size_ - head_;
    if (have < n) refill(n - have);
  }

  /// ensure(n) and a pointer to the buffered draws: the branchless
  /// consumption interface.  The caller reads draws[0..min(n, capacity))
  /// in order and reports how many it actually used via consume(), which
  /// is how a fused traversal skips already-visited targets without a
  /// data-dependent branch around the engine.
  [[nodiscard]] const std::uint64_t *peek(std::size_t n) {
    ensure(n);
    return buffer_.data() + head_;
  }

  /// Advances past the first \p n buffered draws.
  void consume(std::size_t n) {
    head_ += n;
    RIPPLES_DEBUG_ASSERT(head_ <= size_);
  }

  /// Largest single ensure()/peek() request (draws).
  static constexpr std::size_t capacity() { return kCapacity; }

  /// Draws currently buffered (observability for tests).
  [[nodiscard]] std::size_t buffered() const { return size_ - head_; }

private:
  static constexpr std::size_t kCapacity = 256; // draws (2 KiB)
  static constexpr std::size_t kMinQuantum = 8;

  void refill(std::size_t need) {
    // Compact the unconsumed tail to the front, then top up by the ramped
    // quantum: geometric growth bounds the waste of a stream that ends
    // early by its final quantum while reaching full-width bulk generation
    // within a few refills.
    std::size_t left = size_ - head_;
    if (left > 0 && head_ > 0)
      std::copy(buffer_.begin() + static_cast<std::ptrdiff_t>(head_),
                buffer_.begin() + static_cast<std::ptrdiff_t>(size_),
                buffer_.begin());
    head_ = 0;
    size_ = left;
    std::size_t want = std::max(need, quantum_);
    want = std::min(want, kCapacity - left);
    RIPPLES_DEBUG_ASSERT(want >= need);
    quantum_ = std::min(quantum_ * 2, kCapacity);
    std::size_t blocks = (want + 1) / 2;
    philox4x32_bulk(next_block_, blocks, key_, counter_hi_,
                    buffer_.data() + size_);
    next_block_ += blocks;
    size_ += 2 * blocks;
  }

  std::uint64_t key_ = 0;
  std::uint64_t counter_hi_ = 0;
  std::uint64_t next_block_ = 0;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t quantum_ = kMinQuantum;
  std::vector<std::uint64_t> buffer_;
};

} // namespace ripples

#endif // RIPPLES_RNG_PHILOX_BUFFERED_HPP
