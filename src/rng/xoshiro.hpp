/// \file xoshiro.hpp
/// \brief xoshiro256** — the library's default general-purpose generator.
///
/// The shared-memory sampler gives each OpenMP thread an independent
/// xoshiro256** obtained with jump(), which advances 2^128 steps and thereby
/// partitions the period into non-overlapping substreams (the shared-memory
/// analogue of the leap-frog split used by the distributed sampler).
#ifndef RIPPLES_RNG_XOSHIRO_HPP
#define RIPPLES_RNG_XOSHIRO_HPP

#include <array>
#include <cstdint>
#include <limits>

#include "rng/splitmix.hpp"

namespace ripples {

/// xoshiro256** 1.0 (Blackman & Vigna 2018).
class Xoshiro256 {
public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0xa02bdbf7bb3c0a7ULL) {
    // Expand the seed with SplitMix64 as the authors recommend; an all-zero
    // state (the one invalid state) cannot arise from a bijective mixer fed
    // with distinct inputs.
    SplitMix64 mixer(seed);
    for (auto &word : state_) word = mixer();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) from the top 53 bits.
  [[nodiscard]] double next_double() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Advances 2^128 steps; 2^128 non-overlapping subsequences available.
  void jump() {
    static constexpr std::array<std::uint64_t, 4> kJump = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
        0x39abdc4529b1661cULL};
    std::array<std::uint64_t, 4> acc{};
    for (std::uint64_t word : kJump) {
      for (int bit = 0; bit < 64; ++bit) {
        if (word & (std::uint64_t{1} << bit)) {
          for (int i = 0; i < 4; ++i) acc[i] ^= state_[i];
        }
        operator()();
      }
    }
    state_ = acc;
  }

  /// The generator for substream \p stream: seeded identically, then jumped
  /// \p stream times.
  [[nodiscard]] static Xoshiro256 substream(std::uint64_t seed,
                                            std::uint64_t stream) {
    Xoshiro256 gen(seed);
    for (std::uint64_t i = 0; i < stream; ++i) gen.jump();
    return gen;
  }

  friend bool operator==(const Xoshiro256 &, const Xoshiro256 &) = default;

private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

} // namespace ripples

#endif // RIPPLES_RNG_XOSHIRO_HPP
