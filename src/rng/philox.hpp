/// \file philox.hpp
/// \brief Philox4x32-10 counter-based generator.
///
/// Counter-based RNGs make parallel reproducibility trivial: random value j
/// of stream s is a pure function of (key, s, j).  The sampling engines use
/// Philox when a caller asks for sample-indexed determinism (each RRR set i
/// draws from counter block i), which makes the generated collection R
/// independent of both thread count and scheduling — the strongest
/// determinism mode the ablation benchmarks compare against.
#ifndef RIPPLES_RNG_PHILOX_HPP
#define RIPPLES_RNG_PHILOX_HPP

#include <array>
#include <cstdint>
#include <limits>

namespace ripples {

/// Philox4x32-10 (Salmon et al., SC'11), the 10-round recommended variant.
class Philox4x32 {
public:
  using result_type = std::uint64_t;

  /// \p key identifies the experiment; \p counter_hi identifies the stream
  /// (e.g. the RRR-set index); draws advance the low counter words.
  explicit Philox4x32(std::uint64_t key = 0, std::uint64_t counter_hi = 0)
      : key_{static_cast<std::uint32_t>(key),
             static_cast<std::uint32_t>(key >> 32)},
        counter_{0, 0, static_cast<std::uint32_t>(counter_hi),
                 static_cast<std::uint32_t>(counter_hi >> 32)} {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    if (next_word_ >= 4) {
      block_ = bijection(counter_, key_);
      advance_counter();
      next_word_ = 0;
    }
    std::uint64_t lo = block_[next_word_];
    std::uint64_t hi = block_[next_word_ + 1];
    next_word_ += 2;
    return (hi << 32) | lo;
  }

  [[nodiscard]] double next_double() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  // The counter layout and bijection are part of the class's observable
  // contract: the fused sampling kernel computes future counter blocks of
  // many streams out of order (block b of stream s is bijection({lo32(b),
  // hi32(b), lo32(s), hi32(s)}, key)) and must produce the words this
  // class's operator() would.  Keeping them public lets that kernel stay a
  // separate translation unit instead of a friend.
  using Block = std::array<std::uint32_t, 4>;
  using Key = std::array<std::uint32_t, 2>;

  static constexpr std::uint32_t kMult0 = 0xD2511F53;
  static constexpr std::uint32_t kMult1 = 0xCD9E8D57;
  static constexpr std::uint32_t kWeyl0 = 0x9E3779B9;
  static constexpr std::uint32_t kWeyl1 = 0xBB67AE85;

  static Block round(Block ctr, Key key) {
    std::uint64_t p0 = static_cast<std::uint64_t>(kMult0) * ctr[0];
    std::uint64_t p1 = static_cast<std::uint64_t>(kMult1) * ctr[2];
    return {static_cast<std::uint32_t>(p1 >> 32) ^ ctr[1] ^ key[0],
            static_cast<std::uint32_t>(p1),
            static_cast<std::uint32_t>(p0 >> 32) ^ ctr[3] ^ key[1],
            static_cast<std::uint32_t>(p0)};
  }

  static Block bijection(Block ctr, Key key) {
    for (int r = 0; r < 10; ++r) {
      ctr = round(ctr, key);
      key[0] += kWeyl0;
      key[1] += kWeyl1;
    }
    return ctr;
  }

private:
  void advance_counter() {
    if (++counter_[0] == 0) ++counter_[1];
  }

  Key key_;
  Block counter_;
  Block block_{};
  unsigned next_word_ = 4; // force a fresh block on first draw
};

} // namespace ripples

#endif // RIPPLES_RNG_PHILOX_HPP
