#include "mpsim/fault.hpp"

#include <cstdio>
#include <cstdlib>

namespace ripples::mpsim {

namespace {

/// Splits \p text on \p separator, trimming nothing (specs contain no
/// whitespace by construction; stray spaces are a parse error the number
/// parser reports).
std::vector<std::string> split(const std::string &text, char separator) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find(separator, begin);
    if (end == std::string::npos) end = text.size();
    parts.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return parts;
}

std::uint64_t parse_number(const std::string &token, const std::string &spec) {
  std::size_t consumed = 0;
  std::uint64_t value = 0;
  try {
    value = std::stoull(token, &consumed);
  } catch (const std::exception &) {
    consumed = 0;
  }
  if (consumed != token.size() || token.empty())
    throw std::invalid_argument("fault plan: bad number '" + token + "' in '" +
                                spec + "'");
  return value;
}

FaultSpec parse_one(const std::string &spec) {
  FaultSpec fault;
  bool have_rank = false;
  bool have_site = false;
  bool have_sticky = false;
  bool have_attempts = false;
  for (const std::string &field : split(spec, ',')) {
    std::size_t equals = field.find('=');
    if (equals == std::string::npos) {
      // `sticky` is the one bare modifier: corrupt-only, no value.
      if (field == "sticky") {
        fault.sticky = true;
        have_sticky = true;
        continue;
      }
      throw std::invalid_argument("fault plan: expected key=value, got '" +
                                  field + "' in '" + spec + "'");
    }
    const std::string key = field.substr(0, equals);
    const std::string value = field.substr(equals + 1);
    if (key == "rank") {
      fault.rank = static_cast<int>(parse_number(value, spec));
      have_rank = true;
    } else if (key == "site") {
      fault.site = parse_number(value, spec);
      have_site = true;
    } else if (key == "attempts") {
      fault.attempts = parse_number(value, spec);
      if (fault.attempts == 0)
        throw std::invalid_argument("fault plan: attempts must be >= 1 in '" +
                                    spec + "'");
      have_attempts = true;
    } else if (key == "kind") {
      if (value == "crash") {
        fault.kind = FaultSpec::Kind::Crash;
      } else if (value == "stall") {
        fault.kind = FaultSpec::Kind::Stall;
      } else if (value == "oom") {
        fault.kind = FaultSpec::Kind::Oom;
      } else if (value == "corrupt") {
        fault.kind = FaultSpec::Kind::Corrupt;
      } else if (value == "flaky") {
        fault.kind = FaultSpec::Kind::Flaky;
      } else {
        throw std::invalid_argument(
            "fault plan: kind must be crash|stall|oom|corrupt|flaky, got '" +
            value + "'");
      }
    } else {
      throw std::invalid_argument("fault plan: unknown key '" + key +
                                  "' in '" + spec + "'");
    }
  }
  if (!have_rank || !have_site)
    throw std::invalid_argument("fault plan: '" + spec +
                                "' must set rank= and site=");
  if (have_sticky && fault.kind != FaultSpec::Kind::Corrupt)
    throw std::invalid_argument(
        "fault plan: 'sticky' applies only to kind=corrupt in '" + spec + "'");
  if (have_attempts && fault.kind != FaultSpec::Kind::Flaky)
    throw std::invalid_argument(
        "fault plan: 'attempts' applies only to kind=flaky in '" + spec + "'");
  return fault;
}

} // namespace

FaultPlan parse_fault_plan(const std::string &spec) {
  FaultPlan plan;
  if (spec.empty()) return plan;
  for (const std::string &one : split(spec, ';')) {
    if (one.empty()) continue;
    FaultSpec fault = parse_one(one);
    // Two faults at one (rank, site) coordinate in the same counting space
    // are ambiguous: which fires first would depend on plan order, not the
    // coordinate.  Oom sites count memory reservations, every other kind
    // counts communication entries, so the two spaces never collide.
    for (const FaultSpec &existing : plan) {
      const bool same_space = (existing.kind == FaultSpec::Kind::Oom) ==
                              (fault.kind == FaultSpec::Kind::Oom);
      if (same_space && existing.rank == fault.rank &&
          existing.site == fault.site)
        throw std::invalid_argument("fault plan: duplicate (rank, site) in '" +
                                    one + "'");
    }
    plan.push_back(fault);
  }
  return plan;
}

FaultPlan fault_plan_from_env() {
  const char *value = std::getenv("RIPPLES_FAULTS");
  if (value == nullptr || *value == '\0') return {};
  try {
    return parse_fault_plan(value);
  } catch (const std::exception &error) {
    std::fprintf(stderr, "RIPPLES_FAULTS: %s\n", error.what());
    std::exit(2);
  }
}

std::chrono::milliseconds watchdog_from_env() {
  const char *value = std::getenv("RIPPLES_WATCHDOG_MS");
  if (value == nullptr || *value == '\0') return std::chrono::milliseconds{0};
  try {
    return std::chrono::milliseconds{
        parse_number(value, "RIPPLES_WATCHDOG_MS")};
  } catch (const std::exception &error) {
    std::fprintf(stderr, "%s\n", error.what());
    std::exit(2);
  }
}

namespace {

std::string injected_fault_message(int rank, std::uint64_t site,
                                   const char *operation) {
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer),
                "mpsim: injected crash of rank %d at site %llu (%s)", rank,
                static_cast<unsigned long long>(site), operation);
  return buffer;
}

} // namespace

InjectedFault::InjectedFault(int rank, std::uint64_t site,
                             const char *operation)
    : std::runtime_error(injected_fault_message(rank, site, operation)),
      rank_(rank), site_(site) {}

} // namespace ripples::mpsim
