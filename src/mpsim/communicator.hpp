/// \file communicator.hpp
/// \brief In-process message-passing runtime with MPI collective semantics.
///
/// The paper's distributed implementation is hybrid MPI+OpenMP.  No MPI
/// library is available in this environment, so `mpsim` substitutes an
/// in-process runtime: every rank is a std::thread executing the same
/// program, each owning rank-private data by convention (its partition R_i
/// of the samples, its counter arrays), and communicating exclusively
/// through the collectives below, which follow MPI semantics:
///
///  * `allreduce`  — MPI_Allreduce: element-wise reduction of equal-length
///    buffers, result visible to every rank (the paper's dominant
///    communication, one n-length Sum allreduce per selected seed);
///  * `reduce`     — MPI_Reduce (root only);
///  * `broadcast`  — MPI_Bcast from a root rank;
///  * `allgather`  — MPI_Allgather of one value per rank;
///  * `allgatherv` — MPI_Allgatherv of variable-length per-rank vectors;
///  * `barrier`    — MPI_Barrier.
///
/// Every collective must be called by all ranks of the communicator in the
/// same order (exactly MPI's contract).  Element types must be trivially
/// copyable, mirroring MPI datatypes.
///
/// Because ranks share one address space, the input graph is naturally
/// shared read-only; under real MPI each rank holds a private copy (§3.2 of
/// the paper).  This changes memory cost, not algorithm behaviour — every
/// rank still treats the graph as immutable input.
#ifndef RIPPLES_MPSIM_COMMUNICATOR_HPP
#define RIPPLES_MPSIM_COMMUNICATOR_HPP

#include <cstddef>
#include <cstring>
#include <exception>
#include <functional>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "support/assert.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace ripples::mpsim {

enum class ReduceOp { Sum, Max, Min };

/// Thrown out of a collective (or point-to-point wait) on every surviving
/// rank when a peer rank failed with an exception: instead of deadlocking in
/// a barrier the dead rank will never reach, peers unwind with RankAborted
/// and Context::run rethrows the peer's original exception.
class RankAborted : public std::exception {
public:
  [[nodiscard]] const char *what() const noexcept override {
    return "mpsim: peer rank threw; this rank was aborted mid-collective";
  }
};

/// The communication operations instrumented by the metrics subsystem.
enum class Collective : std::size_t {
  Barrier = 0,
  Allreduce,
  Reduce,
  Broadcast,
  Allgather,
  Gather,
  Scatter,
  Allgatherv,
  Send,
  Recv,
};

inline constexpr std::size_t kNumCollectives = 10;

[[nodiscard]] const char *to_string(Collective collective);

/// Per-collective call and payload-byte totals, summed over ranks since the
/// last reset.  Recording happens only while `metrics::enabled()`, keeping
/// the communication hot path a single predictable branch otherwise.
struct CommStatsSnapshot {
  std::array<std::uint64_t, kNumCollectives> calls{};
  std::array<std::uint64_t, kNumCollectives> bytes{};

  /// this - earlier, entry-wise (for bracketing one driver execution).
  [[nodiscard]] CommStatsSnapshot since(const CommStatsSnapshot &earlier) const {
    CommStatsSnapshot delta;
    for (std::size_t c = 0; c < kNumCollectives; ++c) {
      delta.calls[c] = calls[c] - earlier.calls[c];
      delta.bytes[c] = bytes[c] - earlier.bytes[c];
    }
    return delta;
  }

  /// Collectives with at least one call, as metrics report entries.
  [[nodiscard]] std::vector<metrics::CollectiveStats> nonzero() const;
};

/// Process-wide communication totals (accumulated across all Contexts).
[[nodiscard]] CommStatsSnapshot comm_stats();
void reset_comm_stats();

namespace detail {
/// Adds one call of \p collective with \p bytes of payload to the global
/// totals.  Out-of-line so the header stays free of the atomics.
void record_collective(Collective collective, std::size_t bytes);
} // namespace detail

namespace detail {

template <typename T> T combine(ReduceOp op, T a, T b) {
  switch (op) {
  case ReduceOp::Sum: return static_cast<T>(a + b);
  case ReduceOp::Max: return a < b ? b : a;
  case ReduceOp::Min: return b < a ? b : a;
  }
  return a;
}

/// Runtime state shared by the ranks of one communicator.  Type-erased:
/// collectives exchange raw pointers plus byte counts.
struct SharedState;

} // namespace detail

/// Per-rank handle; passed to the rank function by Context::run.
class Communicator {
public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return size_; }

  void barrier();

  /// MPI_Allreduce(MPI_IN_PLACE): every rank passes a buffer of identical
  /// length; afterwards every buffer holds the element-wise reduction.
  template <typename T> void allreduce(std::span<T> buffer, ReduceOp op) {
    static_assert(std::is_trivially_copyable_v<T>);
    record(Collective::Allreduce, buffer.size() * sizeof(T));
    trace::Span span("mpsim", "mpsim.allreduce", "bytes",
                     buffer.size() * sizeof(T));
    post_pointer(buffer.data(), buffer.size() * sizeof(T));
    sync();
    combine_slices<T>(buffer, op, /*all_ranks_receive=*/true);
    sync();
  }

  /// MPI_Reduce: as allreduce, but only \p root's buffer receives the result;
  /// other ranks' buffers are left untouched.
  template <typename T> void reduce(std::span<T> buffer, ReduceOp op, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    RIPPLES_ASSERT(root >= 0 && root < size_);
    record(Collective::Reduce, buffer.size() * sizeof(T));
    trace::Span span("mpsim", "mpsim.reduce", "bytes",
                     buffer.size() * sizeof(T));
    post_pointer(buffer.data(), buffer.size() * sizeof(T));
    sync();
    combine_slices<T>(buffer, op, /*all_ranks_receive=*/false, root);
    sync();
  }

  /// MPI_Bcast: copies \p root's buffer into every rank's buffer.
  template <typename T> void broadcast(std::span<T> buffer, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    RIPPLES_ASSERT(root >= 0 && root < size_);
    record(Collective::Broadcast, buffer.size() * sizeof(T));
    trace::Span span("mpsim", "mpsim.broadcast", "bytes",
                     buffer.size() * sizeof(T));
    post_pointer(buffer.data(), buffer.size() * sizeof(T));
    sync();
    if (rank_ != root) {
      const void *src = peer_pointer(root);
      std::memcpy(buffer.data(), src, buffer.size() * sizeof(T));
    }
    sync();
  }

  /// MPI_Allgather of a single value per rank; returns the values indexed by
  /// rank.
  template <typename T> std::vector<T> allgather(const T &value) {
    static_assert(std::is_trivially_copyable_v<T>);
    record(Collective::Allgather, sizeof(T));
    trace::Span span("mpsim", "mpsim.allgather", "bytes", sizeof(T));
    post_pointer(&value, sizeof(T));
    sync();
    std::vector<T> gathered(static_cast<std::size_t>(size_));
    for (int r = 0; r < size_; ++r)
      std::memcpy(&gathered[static_cast<std::size_t>(r)], peer_pointer(r), sizeof(T));
    sync();
    return gathered;
  }

  /// MPI_Gather of one value per rank: root receives the values in rank
  /// order; other ranks receive an empty vector.
  template <typename T> std::vector<T> gather(const T &value, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    RIPPLES_ASSERT(root >= 0 && root < size_);
    record(Collective::Gather, sizeof(T));
    trace::Span span("mpsim", "mpsim.gather", "bytes", sizeof(T));
    post_pointer(&value, sizeof(T));
    sync();
    std::vector<T> gathered;
    if (rank_ == root) {
      gathered.resize(static_cast<std::size_t>(size_));
      for (int r = 0; r < size_; ++r)
        std::memcpy(&gathered[static_cast<std::size_t>(r)], peer_pointer(r),
                    sizeof(T));
    }
    sync();
    return gathered;
  }

  /// MPI_Scatter: root provides size() values; every rank receives the one
  /// at its own index.  Non-root ranks may pass an empty span.
  template <typename T> T scatter(std::span<const T> values, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    RIPPLES_ASSERT(root >= 0 && root < size_);
    if (rank_ == root)
      RIPPLES_ASSERT_MSG(values.size() == static_cast<std::size_t>(size_),
                         "scatter requires one value per rank at the root");
    record(Collective::Scatter, sizeof(T));
    trace::Span span("mpsim", "mpsim.scatter", "bytes", sizeof(T));
    post_pointer(values.data(), values.size() * sizeof(T));
    sync();
    T mine;
    std::memcpy(&mine,
                static_cast<const T *>(peer_pointer(root)) + rank_, sizeof(T));
    sync();
    return mine;
  }

  /// MPI_Send (rendezvous semantics): blocks until the matching recv has
  /// copied the payload.  Messages between one (source, destination) pair
  /// are delivered in order; mismatched send/recv sequences deadlock,
  /// exactly like unbuffered MPI.
  template <typename T> void send(std::span<const T> data, int destination) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(data.data(), data.size() * sizeof(T), destination);
  }

  /// MPI_Recv: blocks until the matching send arrives, then copies it into
  /// \p buffer.  The payload byte count must match the buffer exactly
  /// (checked), mirroring a typed MPI receive.
  template <typename T> void recv(std::span<T> buffer, int source) {
    static_assert(std::is_trivially_copyable_v<T>);
    recv_bytes(buffer.data(), buffer.size() * sizeof(T), source);
  }

  /// MPI_Allgatherv: concatenates the per-rank vectors in rank order.
  template <typename T>
  std::vector<T> allgatherv(std::span<const T> local) {
    static_assert(std::is_trivially_copyable_v<T>);
    record(Collective::Allgatherv, local.size() * sizeof(T));
    trace::Span span("mpsim", "mpsim.allgatherv", "bytes",
                     local.size() * sizeof(T));
    post_pointer(local.data(), local.size() * sizeof(T));
    sync();
    std::vector<T> gathered;
    for (int r = 0; r < size_; ++r) {
      std::size_t bytes = peer_size(r);
      std::size_t count = bytes / sizeof(T);
      std::size_t offset = gathered.size();
      gathered.resize(offset + count);
      if (count > 0)
        std::memcpy(gathered.data() + offset, peer_pointer(r), bytes);
    }
    sync();
    return gathered;
  }

private:
  friend class Context;
  Communicator(int rank, int size, detail::SharedState &shared)
      : rank_(rank), size_(size), shared_(shared) {}

  /// Metrics hook: one branch when disabled, one relaxed add when enabled.
  static void record(Collective collective, std::size_t bytes) {
    if (metrics::enabled()) detail::record_collective(collective, bytes);
  }

  /// Internal rendezvous used by the collectives; unlike the public
  /// barrier(), it is not counted as a Barrier call.  Throws RankAborted
  /// when a peer rank failed.
  void sync();

  void post_pointer(const void *data, std::size_t bytes);
  [[nodiscard]] const void *peer_pointer(int peer) const;
  [[nodiscard]] std::size_t peer_size(int peer) const;
  void send_bytes(const void *data, std::size_t bytes, int destination);
  void recv_bytes(void *buffer, std::size_t bytes, int source);

  /// Each rank reduces a disjoint slice of the index space across all rank
  /// buffers and writes the result into the receiving buffers.  Safe without
  /// locks: slices are disjoint and a barrier precedes/follows.
  template <typename T>
  void combine_slices(std::span<T> buffer, ReduceOp op, bool all_ranks_receive,
                      int root = 0) {
    const std::size_t len = buffer.size();
    const auto p = static_cast<std::size_t>(size_);
    const std::size_t begin = len * static_cast<std::size_t>(rank_) / p;
    const std::size_t end = len * (static_cast<std::size_t>(rank_) + 1) / p;
    if (begin == end) return;

    std::vector<const T *> sources(p);
    for (int r = 0; r < size_; ++r) {
      RIPPLES_ASSERT_MSG(peer_size(r) == len * sizeof(T),
                         "collective called with mismatched buffer lengths");
      sources[static_cast<std::size_t>(r)] = static_cast<const T *>(peer_pointer(r));
    }

    for (std::size_t i = begin; i < end; ++i) {
      T acc = sources[0][i];
      for (std::size_t r = 1; r < p; ++r)
        acc = detail::combine(op, acc, sources[r][i]);
      if (all_ranks_receive) {
        for (std::size_t r = 0; r < p; ++r)
          const_cast<T *>(sources[r])[i] = acc;
      } else {
        const_cast<T *>(sources[static_cast<std::size_t>(root)])[i] = acc;
      }
    }
  }

  int rank_;
  int size_;
  detail::SharedState &shared_;
};

/// Launches and joins rank teams.
class Context {
public:
  /// Runs \p rank_main as `num_ranks` concurrent ranks and joins them.  The
  /// first exception thrown by any rank is rethrown here after all ranks
  /// have been joined.  Reentrant but not nestable from inside a rank.
  ///
  /// Failure protocol: when any rank throws, a shared abort flag is raised
  /// and every peer blocked in (or later entering) a collective or
  /// point-to-point wait unwinds with RankAborted — real MPI would deadlock
  /// here; the in-process runtime can do better.  run() then rethrows the
  /// failing rank's original exception.  RankAborted escaping a rank_main
  /// is absorbed by the protocol, never rethrown in place of the original
  /// error.
  static void run(int num_ranks,
                  const std::function<void(Communicator &)> &rank_main);
};

} // namespace ripples::mpsim

#endif // RIPPLES_MPSIM_COMMUNICATOR_HPP
