/// \file communicator.hpp
/// \brief In-process message-passing runtime with MPI collective semantics.
///
/// The paper's distributed implementation is hybrid MPI+OpenMP.  No MPI
/// library is available in this environment, so `mpsim` substitutes an
/// in-process runtime: every rank is a std::thread executing the same
/// program, each owning rank-private data by convention (its partition R_i
/// of the samples, its counter arrays), and communicating exclusively
/// through the collectives below, which follow MPI semantics:
///
///  * `allreduce`  — MPI_Allreduce: element-wise reduction of equal-length
///    buffers, result visible to every rank (the paper's dominant
///    communication, one n-length Sum allreduce per selected seed);
///  * `reduce`     — MPI_Reduce (root only);
///  * `broadcast`  — MPI_Bcast from a root rank;
///  * `allgather`  — MPI_Allgather of one value per rank;
///  * `allgatherv` — MPI_Allgatherv of variable-length per-rank vectors;
///  * `barrier`    — MPI_Barrier.
///
/// Every collective must be called by all live ranks of the communicator in
/// the same order (exactly MPI's contract).  Element types must be
/// trivially copyable, mirroring MPI datatypes.
///
/// Because ranks share one address space, the input graph is naturally
/// shared read-only; under real MPI each rank holds a private copy (§3.2 of
/// the paper).  This changes memory cost, not algorithm behaviour — every
/// rank still treats the graph as immutable input.
///
/// Failure model (three escalation levels, see DESIGN.md §failure-model):
///
///  1. *Abort* (always on): when a rank dies with an exception and recovery
///     is disabled, a shared abort flag unwinds every peer out of its
///     blocked collective with `RankAborted` and Context::run rethrows the
///     original exception — no deadlock, no survivors.
///  2. *Shrink* (RunOptions::recover): ULFM-style survivable collectives.
///     A dead rank is recorded in an epoch-tagged membership ledger;
///     surviving ranks unwind from the failed collective with
///     `RankFailed{dead_ranks}`, collectively agree on the dead set via
///     `shrink()`, obtain a dense re-ranked communicator view, and
///     continue.  Callers address peers by *dense* rank (`rank()`/`size()`)
///     while `world_rank()`/`world_size()` keep the immutable launch-time
///     identity that data ownership (leap-frog RNG streams) is keyed by.
///  3. *Watchdog* (RunOptions::watchdog, default off): every collective
///     wait carries a deadline; a stalled peer converts the wait into a
///     diagnosed `CollectiveTimeout` naming the site, the laggard ranks,
///     and the elapsed time instead of blocking forever.
///  4. *Integrity* (RunOptions::verify_collectives, default off): every
///     payload — collective buffers, mailbox messages, steal items —
///     carries a CRC-32 published by its producer and recomputed by every
///     consumer before any byte is acted on.  A mismatch triggers a
///     bounded, deterministic retry with capped exponential backoff
///     (integrity.hpp); exhaustion escalates — `PayloadCorrupt` for the
///     producer of the bad bytes, the level-2 shrink/heal ledger for its
///     peers — so silent data corruption becomes either a healed transient
///     or a diagnosed rank death, never a wrong answer.
///
/// Deterministic fault injection (`RunOptions::faults`, `RIPPLES_FAULTS`)
/// turns each of these paths into a reproducible test; see fault.hpp.
#ifndef RIPPLES_MPSIM_COMMUNICATOR_HPP
#define RIPPLES_MPSIM_COMMUNICATOR_HPP

#include <chrono>
#include <cstddef>
#include <cstring>
#include <exception>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "mpsim/fault.hpp"
#include "mpsim/integrity.hpp"
#include "support/assert.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace ripples::mpsim {

enum class ReduceOp { Sum, Max, Min };

/// Thrown out of a collective (or point-to-point wait) on every surviving
/// rank when a peer rank failed with an exception and recovery is disabled:
/// instead of deadlocking in a barrier the dead rank will never reach,
/// peers unwind with RankAborted and Context::run rethrows the peer's
/// original exception.
class RankAborted : public std::exception {
public:
  [[nodiscard]] const char *what() const noexcept override {
    return "mpsim: peer rank threw; this rank was aborted mid-collective";
  }
};

/// Thrown out of a collective on every surviving rank when a peer died and
/// recovery is enabled (RunOptions::recover).  The failed collective had no
/// effect on the caller's buffers unless the peer died *between* the
/// rendezvous phases of an in-place reduction, in which case the buffer
/// contents are unspecified — recovery code must restart from inputs it
/// still owns, as the self-healing IMM driver does.  Survivors must call
/// Communicator::shrink() (all of them, collectively) before issuing the
/// next collective; until then every communication attempt rethrows.
class RankFailed : public std::exception {
public:
  explicit RankFailed(std::vector<int> dead_ranks);

  /// World ranks that died since this rank last acknowledged a shrink, in
  /// death order.
  [[nodiscard]] const std::vector<int> &dead_ranks() const {
    return dead_ranks_;
  }

  [[nodiscard]] const char *what() const noexcept override {
    return message_.c_str();
  }

private:
  std::vector<int> dead_ranks_;
  std::string message_;
};

/// Thrown out of a collective wait whose deadline (RunOptions::watchdog)
/// expired: a diagnosed replacement for an infinite block on a stalled
/// peer.  Carries the site (which collective, this rank's per-rank entry
/// ordinal), the laggard world ranks that had not arrived, and the elapsed
/// wait.  Propagates through the abort protocol: peers of the thrower
/// unwind with RankAborted and Context::run rethrows the timeout.
class CollectiveTimeout : public std::exception {
public:
  CollectiveTimeout(const char *operation, std::uint64_t site,
                    std::vector<int> laggards, std::chrono::milliseconds waited);

  [[nodiscard]] const char *operation() const { return operation_; }
  [[nodiscard]] std::uint64_t site() const { return site_; }
  /// World ranks that had not arrived when the deadline expired.
  [[nodiscard]] const std::vector<int> &laggards() const { return laggards_; }
  [[nodiscard]] std::chrono::milliseconds waited() const { return waited_; }

  [[nodiscard]] const char *what() const noexcept override {
    return message_.c_str();
  }

private:
  const char *operation_;
  std::uint64_t site_;
  std::vector<int> laggards_;
  std::chrono::milliseconds waited_;
  std::string message_;
};

/// The communication operations instrumented by the metrics subsystem.
enum class Collective : std::size_t {
  Barrier = 0,
  Allreduce,
  Reduce,
  Broadcast,
  Allgather,
  Gather,
  Scatter,
  Allgatherv,
  Send,
  Recv,
  Steal,
};

inline constexpr std::size_t kNumCollectives = 11;

[[nodiscard]] const char *to_string(Collective collective);

/// Per-collective call and payload-byte totals, summed over ranks since the
/// last reset.  Recording happens only while `metrics::enabled()`, keeping
/// the communication hot path a single predictable branch otherwise.
struct CommStatsSnapshot {
  std::array<std::uint64_t, kNumCollectives> calls{};
  std::array<std::uint64_t, kNumCollectives> bytes{};

  /// this - earlier, entry-wise (for bracketing one driver execution).
  [[nodiscard]] CommStatsSnapshot since(const CommStatsSnapshot &earlier) const {
    CommStatsSnapshot delta;
    for (std::size_t c = 0; c < kNumCollectives; ++c) {
      delta.calls[c] = calls[c] - earlier.calls[c];
      delta.bytes[c] = bytes[c] - earlier.bytes[c];
    }
    return delta;
  }

  /// Collectives with at least one call, as metrics report entries.
  [[nodiscard]] std::vector<metrics::CollectiveStats> nonzero() const;
};

/// Process-wide communication totals (accumulated across all Contexts).
[[nodiscard]] CommStatsSnapshot comm_stats();
void reset_comm_stats();

namespace detail {
/// Adds one call of \p collective with \p bytes of payload to the global
/// totals.  Out-of-line so the header stays free of the atomics.
void record_collective(Collective collective, std::size_t bytes);
} // namespace detail

namespace detail {

template <typename T> T combine(ReduceOp op, T a, T b) {
  switch (op) {
  case ReduceOp::Sum: return static_cast<T>(a + b);
  case ReduceOp::Max: return a < b ? b : a;
  case ReduceOp::Min: return b < a ? b : a;
  }
  return a;
}

/// Runtime state shared by the ranks of one communicator.  Type-erased:
/// collectives exchange raw pointers plus byte counts.
struct SharedState;

} // namespace detail

/// Execution options for Context::run.  The one-argument overload keeps the
/// historical fail-stop behaviour (abort on any rank's exception, no
/// watchdog, no injected faults).
struct RunOptions {
  int num_ranks = 1;
  /// Survivable-collective mode: a rank's death raises RankFailed on the
  /// survivors (who may shrink() and continue) instead of aborting the run.
  bool recover = false;
  /// Per-collective wait deadline; zero disables the watchdog.  Also read
  /// from RIPPLES_WATCHDOG_MS when left at zero.
  std::chrono::milliseconds watchdog{0};
  /// Treat watchdog-diagnosed stalls as rank failures: the expiring waiter
  /// marks the laggards dead and raises RankFailed, routing them through the
  /// same shrink/heal path a crash takes instead of aborting the run with a
  /// CollectiveTimeout diagnosis.  Requires `recover` and a nonzero
  /// watchdog; only the generation-barrier waits evict (the shrink and
  /// mailbox watchdogs stay diagnose-only — see sync()).
  bool evict_stalled = false;
  /// Checksummed exchanges: every payload carries a producer CRC-32 that
  /// consumers recompute before use, with retry/backoff on mismatch and
  /// escalation to the failure model on exhaustion (DESIGN.md §14).  Also
  /// read from RIPPLES_VERIFY_COLLECTIVES when left false.
  bool verify_collectives = false;
  /// Deterministic fault plan; merged with RIPPLES_FAULTS when empty.
  FaultPlan faults;
};

/// Membership agreed by a shrink: the surviving world ranks (dense order)
/// and the deaths this shrink acknowledged, in death order.
struct ShrinkResult {
  std::vector<int> members;
  std::vector<int> newly_dead;
};

/// Per-rank handle; passed to the rank function by Context::run.
///
/// `rank()`/`size()` are *dense*: they re-number the surviving ranks after
/// every shrink, so collective logic (roots, slice partitioning, allgather
/// indexing) keeps working on the shrunken team.  `world_rank()` /
/// `world_size()` never change; data ownership that must survive healing
/// (leap-frog stream identity) is keyed by world rank.
class Communicator {
public:
  [[nodiscard]] int rank() const { return my_index_; }
  [[nodiscard]] int size() const { return static_cast<int>(members_.size()); }
  [[nodiscard]] int world_rank() const { return world_rank_; }
  [[nodiscard]] int world_size() const { return world_size_; }
  /// Current membership: world ranks in dense order.
  [[nodiscard]] const std::vector<int> &members() const { return members_; }

  void barrier();

  /// Collective recovery step after catching RankFailed (requires
  /// RunOptions::recover).  Every surviving rank must call it; they agree
  /// on the accumulated dead set, acknowledge it, and adopt the dense
  /// re-ranking returned here.  After shrink() the communicator is fully
  /// functional over the survivors.
  ShrinkResult shrink();

  /// MPI_Allreduce(MPI_IN_PLACE): every rank passes a buffer of identical
  /// length; afterwards every buffer holds the element-wise reduction.
  template <typename T> void allreduce(std::span<T> buffer, ReduceOp op) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t site = begin_collective(Collective::Allreduce);
    record(Collective::Allreduce, buffer.size() * sizeof(T));
    trace::Span span("mpsim", "mpsim.allreduce", "bytes",
                     buffer.size() * sizeof(T));
    exchange(Collective::Allreduce, site, buffer.data(),
             buffer.size() * sizeof(T), buffer.data(), [&] {
               combine_slices<T>(buffer, op, /*all_ranks_receive=*/true);
             });
  }

  /// MPI_Reduce: as allreduce, but only \p root's buffer receives the result;
  /// other ranks' buffers are left untouched.  \p root is a dense rank.
  template <typename T> void reduce(std::span<T> buffer, ReduceOp op, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    RIPPLES_ASSERT(root >= 0 && root < size());
    const std::uint64_t site = begin_collective(Collective::Reduce);
    record(Collective::Reduce, buffer.size() * sizeof(T));
    trace::Span span("mpsim", "mpsim.reduce", "bytes",
                     buffer.size() * sizeof(T));
    exchange(Collective::Reduce, site, buffer.data(), buffer.size() * sizeof(T),
             my_index_ == root ? buffer.data() : nullptr, [&] {
               combine_slices<T>(buffer, op, /*all_ranks_receive=*/false, root);
             });
  }

  /// MPI_Bcast: copies \p root's buffer into every rank's buffer.
  template <typename T> void broadcast(std::span<T> buffer, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    RIPPLES_ASSERT(root >= 0 && root < size());
    const std::uint64_t site = begin_collective(Collective::Broadcast);
    record(Collective::Broadcast, buffer.size() * sizeof(T));
    trace::Span span("mpsim", "mpsim.broadcast", "bytes",
                     buffer.size() * sizeof(T));
    exchange(Collective::Broadcast, site, buffer.data(),
             buffer.size() * sizeof(T), nullptr, [&] {
               if (my_index_ != root) {
                 const void *src =
                     peer_pointer(members_[static_cast<std::size_t>(root)]);
                 std::memcpy(buffer.data(), src, buffer.size() * sizeof(T));
               }
             });
  }

  /// MPI_Allgather of a single value per rank; returns the values indexed by
  /// dense rank.
  template <typename T> std::vector<T> allgather(const T &value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t site = begin_collective(Collective::Allgather);
    record(Collective::Allgather, sizeof(T));
    trace::Span span("mpsim", "mpsim.allgather", "bytes", sizeof(T));
    std::vector<T> gathered(members_.size());
    exchange(Collective::Allgather, site, &value, sizeof(T), nullptr, [&] {
      for (std::size_t i = 0; i < members_.size(); ++i)
        std::memcpy(&gathered[i], peer_pointer(members_[i]), sizeof(T));
    });
    return gathered;
  }

  /// MPI_Gather of one value per rank: root receives the values in dense
  /// rank order; other ranks receive an empty vector.
  template <typename T> std::vector<T> gather(const T &value, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    RIPPLES_ASSERT(root >= 0 && root < size());
    const std::uint64_t site = begin_collective(Collective::Gather);
    record(Collective::Gather, sizeof(T));
    trace::Span span("mpsim", "mpsim.gather", "bytes", sizeof(T));
    std::vector<T> gathered;
    exchange(Collective::Gather, site, &value, sizeof(T), nullptr, [&] {
      if (my_index_ == root) {
        gathered.resize(members_.size());
        for (std::size_t i = 0; i < members_.size(); ++i)
          std::memcpy(&gathered[i], peer_pointer(members_[i]), sizeof(T));
      }
    });
    return gathered;
  }

  /// MPI_Scatter: root provides size() values; every rank receives the one
  /// at its own dense index.  Non-root ranks may pass an empty span.
  template <typename T> T scatter(std::span<const T> values, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    RIPPLES_ASSERT(root >= 0 && root < size());
    if (my_index_ == root)
      RIPPLES_ASSERT_MSG(values.size() == members_.size(),
                         "scatter requires one value per rank at the root");
    const std::uint64_t site = begin_collective(Collective::Scatter);
    record(Collective::Scatter, sizeof(T));
    trace::Span span("mpsim", "mpsim.scatter", "bytes", sizeof(T));
    T mine;
    exchange(Collective::Scatter, site, values.data(),
             values.size() * sizeof(T), nullptr, [&] {
               std::memcpy(
                   &mine,
                   static_cast<const T *>(peer_pointer(
                       members_[static_cast<std::size_t>(root)])) +
                       my_index_,
                   sizeof(T));
             });
    return mine;
  }

  /// MPI_Send (rendezvous semantics): blocks until the matching recv has
  /// copied the payload.  Messages between one (source, destination) pair
  /// are delivered in order; mismatched send/recv sequences deadlock,
  /// exactly like unbuffered MPI.  \p destination is a dense rank.
  template <typename T> void send(std::span<const T> data, int destination) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(data.data(), data.size() * sizeof(T), destination);
  }

  /// MPI_Recv: blocks until the matching send arrives, then copies it into
  /// \p buffer.  The payload byte count must match the buffer exactly
  /// (checked), mirroring a typed MPI receive.  \p source is a dense rank.
  template <typename T> void recv(std::span<T> buffer, int source) {
    static_assert(std::is_trivially_copyable_v<T>);
    recv_bytes(buffer.data(), buffer.size() * sizeof(T), source);
  }

  /// MPI_Allgatherv: concatenates the per-rank vectors in dense rank order.
  template <typename T>
  std::vector<T> allgatherv(std::span<const T> local) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t site = begin_collective(Collective::Allgatherv);
    record(Collective::Allgatherv, local.size() * sizeof(T));
    trace::Span span("mpsim", "mpsim.allgatherv", "bytes",
                     local.size() * sizeof(T));
    std::vector<T> gathered;
    exchange(Collective::Allgatherv, site, local.data(),
             local.size() * sizeof(T), nullptr, [&] {
               for (int member : members_) {
                 std::size_t bytes = peer_size(member);
                 std::size_t count = bytes / sizeof(T);
                 std::size_t offset = gathered.size();
                 gathered.resize(offset + count);
                 if (count > 0)
                   std::memcpy(gathered.data() + offset, peer_pointer(member),
                               bytes);
               }
             });
    return gathered;
  }

  /// MPI_Allgatherv preserving the per-rank sections: result[i] is dense
  /// rank i's vector.  The sparse selection exchange needs the rank
  /// boundaries (each section is one rank's top-m summary); the flat
  /// overload above cannot recover them once lengths differ.
  template <typename T>
  std::vector<std::vector<T>> allgatherv_ranks(std::span<const T> local) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t site = begin_collective(Collective::Allgatherv);
    record(Collective::Allgatherv, local.size() * sizeof(T));
    trace::Span span("mpsim", "mpsim.allgatherv", "bytes",
                     local.size() * sizeof(T));
    std::vector<std::vector<T>> sections(members_.size());
    exchange(Collective::Allgatherv, site, local.data(),
             local.size() * sizeof(T), nullptr, [&] {
               for (std::size_t i = 0; i < members_.size(); ++i) {
                 const std::size_t bytes = peer_size(members_[i]);
                 sections[i].resize(bytes / sizeof(T));
                 if (bytes > 0)
                   std::memcpy(sections[i].data(), peer_pointer(members_[i]),
                               bytes);
               }
             });
    return sections;
  }

  /// One stealable unit of work on the donate/steal channel: an opaque
  /// (tag, begin, end) triple whose meaning belongs to the caller (the IMM
  /// sampler uses tag = leapfrog stream and [begin, end) = global draw
  /// index bounds).
  struct StealItem {
    std::uint64_t tag = 0;
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
  };

  /// Nonblocking donate: replaces this rank's steal queue with \p items.
  /// Unlike the collectives, the steal channel never rendezvouses — there
  /// is no sync, so a dead peer can neither block a publish nor a steal;
  /// the surrounding phase's next real collective is the only barrier.
  /// Counts one fault site (a planned crash here dies *while donating*).
  void steal_publish(std::span<const StealItem> items);

  /// Nonblocking owner-side pop from this rank's own queue.  Hot path: no
  /// fault site, no rendezvous — a rank draining its own queue must not
  /// perturb the fault-site numbering of runs that never steal.
  bool steal_pop(StealItem &out);

  /// Nonblocking steal: scans the *live* membership in dense order starting
  /// after this rank (rotated by \p victim_offset), splits ceil(n/2) items
  /// off the back of the first non-empty victim queue, returns one in
  /// \p out and re-queues the rest locally (where peers may steal them
  /// back).  Returns false when every victim queue is empty.  Counts one
  /// fault site (a planned crash here dies *at a steal site*).  Queues of
  /// ranks that died mid-window stay readable — a steal request to a dead
  /// rank completes instead of hanging — and shrink() removes the dead
  /// rank from the scan, so its unfinished items are never stolen after
  /// the membership acknowledges the death (healing regenerates them).
  bool steal_acquire(StealItem &out, std::uint64_t victim_offset = 0);

private:
  friend class Context;
  friend struct detail::SharedState;
  Communicator(int rank, int size, detail::SharedState &shared);

  /// Metrics hook: one branch when disabled, one relaxed add when enabled.
  static void record(Collective collective, std::size_t bytes) {
    if (metrics::enabled()) detail::record_collective(collective, bytes);
  }

  /// Entry bookkeeping shared by every communication operation: assigns the
  /// per-rank site ordinal and gives the fault injector its hook.  May
  /// throw InjectedFault (planned crash) or block then throw RankAborted
  /// (planned stall, once the run aborts).
  std::uint64_t begin_collective(Collective collective);

  /// Internal rendezvous used by the collectives; unlike the public
  /// barrier(), it is not counted as a Barrier call.  Throws RankAborted
  /// when a peer rank failed (recovery off), RankFailed when a peer died
  /// (recovery on), or CollectiveTimeout when the watchdog deadline passed.
  /// Time spent blocked here feeds the per-thread collective-wait
  /// accounting (metrics::add_thread_collective_wait).  With \p flow set
  /// (the arrival rendezvous of each collective — the one that absorbs
  /// straggler imbalance), the completing rank starts one trace flow per
  /// released waiter and each waiter terminates its own, drawing
  /// completer→waiter arrows across rank rows in Perfetto.
  void sync(Collective collective, std::uint64_t site, bool flow = false);

  void post_pointer(const void *data, std::size_t bytes);
  [[nodiscard]] const void *peer_pointer(int world_peer) const;
  [[nodiscard]] std::size_t peer_size(int world_peer) const;
  void send_bytes(const void *data, std::size_t bytes, int destination);
  void recv_bytes(void *buffer, std::size_t bytes, int source);

  // --- integrity layer (DESIGN.md §14) ---------------------------------------

  [[nodiscard]] bool verify_enabled() const;

  /// The planned corrupt/flaky injection for this rank at \p site, or null.
  [[nodiscard]] const FaultSpec *injection_at(std::uint64_t site) const;

  /// Posts this rank's payload pointer, size, and CRC for \p attempt of the
  /// exchange at \p site, applying any planned corrupt/flaky injection:
  /// `corrupt` posts a bit-flipped staging copy under the clean CRC (the
  /// caller's buffer is never touched, so a retransmit heals), `flaky`
  /// posts clean bytes under a wrong CRC for its first `attempts` tries.
  /// Fast path (verification off, no planned injection): plain post_pointer.
  void post_payload(Collective collective, std::uint64_t site, int attempt,
                    const void *data, std::size_t bytes);

  /// Recomputes every live member's payload CRC against its posted value;
  /// returns the world ranks whose payloads failed.  Identical on every
  /// rank: the buffers are shared and stable between the rendezvous phases,
  /// so each rank reaches the same retry-or-escalate decision without any
  /// extra agreement round.
  [[nodiscard]] std::vector<int> verify_payloads(Collective collective,
                                                 std::uint64_t site,
                                                 int attempt);

  /// Retry budget exhausted: the producer of the bad bytes throws
  /// PayloadCorrupt; its peers route the corrupters into the shrink/heal
  /// ledger (recovery on) or unwind with RankAborted, letting the
  /// producer's diagnosis surface (recovery off).
  [[noreturn]] void escalate_corruption(Collective collective,
                                        std::uint64_t site,
                                        const std::vector<int> &corrupters,
                                        int attempts);

  void note_retry(Collective collective, std::uint64_t site, int attempt);

  /// Verification-off epilogue: when injection posted a corrupted staging
  /// copy and the op reduces in place, the caller's buffer adopts the
  /// (corruption-tainted) result from staging — silent corruption must
  /// reach the caller's view, not vanish into a scratch buffer.
  void finish_unverified(void *inplace_result, std::size_t bytes);

  /// One checksummed exchange: post, rendezvous, verify, rendezvous (the
  /// verdict quiesce — verification happens strictly between two barriers,
  /// so every rank judges the same stable bytes), then read, rendezvous —
  /// retried with capped exponential backoff while any payload fails its
  /// CRC, escalating when kMaxVerifyAttempts exhaust.  \p read runs exactly
  /// once, only after every live payload verified (no byte of a corrupt
  /// payload is ever combined or copied).  With verification off this is
  /// the historical two-phase exchange plus the injection epilogue.
  template <typename ReadFn>
  void exchange(Collective collective, std::uint64_t site, const void *data,
                std::size_t bytes, void *inplace_result, ReadFn &&read) {
    if (!verify_enabled()) {
      post_payload(collective, site, 1, data, bytes);
      sync(collective, site, /*flow=*/true);
      read();
      sync(collective, site);
      finish_unverified(inplace_result, bytes);
      return;
    }
    for (int attempt = 1;; ++attempt) {
      post_payload(collective, site, attempt, data, bytes);
      sync(collective, site, /*flow=*/true);
      const std::vector<int> corrupters =
          verify_payloads(collective, site, attempt);
      // Quiesce verification before anything acts on the verdict: read()
      // mutates the posted buffers (in-place reduction slices, broadcast
      // targets), a retry reposts them, and an escalating rank unwinds —
      // destroying them — all while a slower peer may still be hashing.
      // Because every rank verifies between the same two rendezvous, the
      // verdicts are computed over stable bytes and are therefore
      // identical on every rank, which keeps the per-branch sync counts
      // aligned; without this barrier a fast rank's next move corrupts a
      // slow rank's verdict and the barrier protocol itself diverges.
      sync(collective, site);
      if (corrupters.empty()) {
        read();
        sync(collective, site);
        return;
      }
      if (attempt == kMaxVerifyAttempts)
        escalate_corruption(collective, site, corrupters, attempt);
      // Back off and retransmit from the still-live inputs: every producer
      // reposts, so a transient flip heals.
      note_retry(collective, site, attempt);
      backoff_sleep(attempt);
    }
  }

  /// Each rank reduces a disjoint slice of the index space across all live
  /// rank buffers and writes the result into the receiving buffers.  Safe
  /// without locks: slices are disjoint and a barrier precedes/follows.
  template <typename T>
  void combine_slices(std::span<T> buffer, ReduceOp op, bool all_ranks_receive,
                      int root = 0) {
    const std::size_t len = buffer.size();
    const auto p = members_.size();
    const auto me = static_cast<std::size_t>(my_index_);
    const std::size_t begin = len * me / p;
    const std::size_t end = len * (me + 1) / p;
    if (begin == end) return;

    std::vector<const T *> sources(p);
    for (std::size_t i = 0; i < p; ++i) {
      RIPPLES_ASSERT_MSG(peer_size(members_[i]) == len * sizeof(T),
                         "collective called with mismatched buffer lengths");
      sources[i] = static_cast<const T *>(peer_pointer(members_[i]));
    }

    for (std::size_t i = begin; i < end; ++i) {
      T acc = sources[0][i];
      for (std::size_t r = 1; r < p; ++r)
        acc = detail::combine(op, acc, sources[r][i]);
      if (all_ranks_receive) {
        for (std::size_t r = 0; r < p; ++r)
          const_cast<T *>(sources[r])[i] = acc;
      } else {
        const_cast<T *>(sources[static_cast<std::size_t>(root)])[i] = acc;
      }
    }
  }

  int world_rank_;
  int world_size_;
  /// Dense view of the current membership (world ranks, ascending).  Only
  /// mutated by shrink(), on this rank's own thread.
  std::vector<int> members_;
  int my_index_;
  /// Number of deaths this rank has acknowledged (via shrink); when the
  /// shared ledger grows past it, the next communication raises RankFailed.
  std::size_t acked_deaths_ = 0;
  /// Per-rank communication-entry ordinal (the fault injector's "site").
  std::uint64_t site_counter_ = 0;
  /// Staging copy for injected payload corruption: the flip lands here, the
  /// caller's buffer stays clean, so a retry genuinely retransmits.  Set
  /// while a staged pointer is the posted one (finish_unverified clears it).
  std::vector<std::uint8_t> staging_;
  bool staged_ = false;
  detail::SharedState &shared_;
};

/// Launches and joins rank teams.
class Context {
public:
  /// Runs \p rank_main as `num_ranks` concurrent ranks and joins them.  The
  /// first exception thrown by any rank is rethrown here after all ranks
  /// have been joined.  Reentrant but not nestable from inside a rank.
  ///
  /// Failure protocol (recovery disabled): when any rank throws, a shared
  /// abort flag is raised and every peer blocked in (or later entering) a
  /// collective or point-to-point wait unwinds with RankAborted — real MPI
  /// would deadlock here; the in-process runtime can do better.  run() then
  /// rethrows the failing rank's original exception.  RankAborted escaping
  /// a rank_main is absorbed by the protocol, never rethrown in place of
  /// the original error.
  static void run(int num_ranks,
                  const std::function<void(Communicator &)> &rank_main);

  /// As above, with fault-tolerance options.  With options.recover set, a
  /// rank's death marks it dead instead of aborting: survivors observe
  /// RankFailed, may shrink() and continue, and run() returns normally if
  /// any rank completes.  If every rank dies, the first original exception
  /// is rethrown.  A CollectiveTimeout always aborts (a stall diagnosis is
  /// not a survivable event).
  static void run(const RunOptions &options,
                  const std::function<void(Communicator &)> &rank_main);
};

} // namespace ripples::mpsim

#endif // RIPPLES_MPSIM_COMMUNICATOR_HPP
