#include "mpsim/integrity.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <utility>

namespace ripples::mpsim {

std::chrono::microseconds retry_delay(int attempt) {
  if (attempt < 1) attempt = 1;
  std::chrono::microseconds delay = kBackoffBase;
  for (int i = 1; i < attempt && delay < kBackoffCap; ++i) delay *= 2;
  return delay < kBackoffCap ? delay : kBackoffCap;
}

namespace {

std::mutex hook_mutex;
BackoffHook backoff_hook;

} // namespace

BackoffHook set_backoff_hook(BackoffHook hook) {
  std::lock_guard<std::mutex> lock(hook_mutex);
  std::swap(backoff_hook, hook);
  return hook;
}

void backoff_sleep(int attempt) {
  const std::chrono::microseconds delay = retry_delay(attempt);
  BackoffHook hook;
  {
    std::lock_guard<std::mutex> lock(hook_mutex);
    hook = backoff_hook;
  }
  if (hook)
    hook(delay);
  else
    std::this_thread::sleep_for(delay);
}

bool verify_collectives_from_env() {
  const char *value = std::getenv("RIPPLES_VERIFY_COLLECTIVES");
  if (value == nullptr) return false;
  return std::strcmp(value, "1") == 0 || std::strcmp(value, "on") == 0 ||
         std::strcmp(value, "true") == 0 || std::strcmp(value, "yes") == 0;
}

namespace {

std::string payload_corrupt_message(const char *op, std::uint64_t site,
                                    int rank, int attempts) {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "mpsim: payload corruption from rank %d at site %llu (%s) "
                "survived %d attempts",
                rank, static_cast<unsigned long long>(site), op, attempts);
  return buffer;
}

} // namespace

PayloadCorrupt::PayloadCorrupt(const char *op, std::uint64_t site, int rank,
                               int attempts)
    : std::runtime_error(payload_corrupt_message(op, site, rank, attempts)),
      op_(op), site_(site), rank_(rank), attempts_(attempts) {}

} // namespace ripples::mpsim
