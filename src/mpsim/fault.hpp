/// \file fault.hpp
/// \brief Deterministic fault injection for the mpsim runtime.
///
/// At 1024 nodes — the paper's largest configuration — rank failure and
/// stragglers are the norm, not the exception, yet a failure mode that only
/// occurs under real hardware faults cannot be regression-tested.  The fault
/// plan turns every failure scenario into a reproducible experiment: a plan
/// names a (rank, site) coordinate — site N is the Nth communication
/// operation (collective or point-to-point) *that rank* enters — and a kind:
///
///  * `crash` — the rank throws `InjectedFault` at the site, exactly as if
///    user code had failed there (OOM, assertion, hardware fault).  With
///    recovery disabled the run aborts via the PR-1 protocol; with recovery
///    enabled the surviving ranks shrink and continue.
///  * `stall` — the rank blocks at the site without arriving, modelling a
///    hung process or a pathological straggler.  The collective watchdog
///    (RunOptions::watchdog) converts the peers' indefinite wait into a
///    diagnosed `CollectiveTimeout`; without a watchdog a stall hangs, just
///    like real MPI.
///  * `oom` — the rank's Nth *tracked memory reservation* (not communication
///    operation: site N counts MemoryTracker::try_reserve attempts on that
///    rank) is refused, and stickily so — every later reservation on the
///    rank fails too, modelling a hard per-rank memory ceiling.  The budget
///    governor then walks its degradation ladder deterministically
///    (DESIGN.md §12): compress, shed, and finally a certified early stop
///    or a diagnosed MemoryBudgetExceeded.  The communicator ignores oom
///    entries; MemoryTracker::install_oom_faults consumes them.
///  * `corrupt` — the rank's payload at the site has one bit flipped after
///    the CRC is published, modelling silent data corruption in transit or
///    in a NIC buffer.  With `--verify-collectives` the mismatch is
///    detected, retried (the flip is transient: the repost is clean), or —
///    with the optional bare `sticky` token, which makes every attempt
///    corrupt — escalated to the shrink-and-heal path.  Without
///    verification the corruption propagates silently, which is exactly
///    the baseline the integrity tests measure against (DESIGN.md §14).
///  * `flaky` — the rank publishes a deliberately wrong checksum for its
///    first `attempts=M` tries at the site (default 1) and a clean one
///    afterwards, modelling a transient link that heals itself.  Only
///    observable under `--verify-collectives`; M at or above the retry
///    budget degenerates into an escalation, like `sticky` corruption.
///
/// Plans are written `rank=R,site=N[,kind=crash|stall|oom|corrupt|flaky]`
/// (plus `,sticky` for corrupt and `,attempts=M` for flaky), multiple
/// faults separated by `;`.  They arrive programmatically
/// (RunOptions::faults, ImmOptions::fault_plan, imm_cli --inject-fault) or
/// via the `RIPPLES_FAULTS` environment variable.  Because site counting is
/// per-rank and deterministic, the same plan hits the same operation on
/// every run — the property the determinism tests assert.  Two entries
/// naming the same (rank, site) coordinate in the same counting space
/// (communication sites, or reservation sites for oom) are ambiguous and
/// rejected at parse time.
#ifndef RIPPLES_MPSIM_FAULT_HPP
#define RIPPLES_MPSIM_FAULT_HPP

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace ripples::mpsim {

/// One planned fault: rank \p rank fails at its \p site-th communication
/// entry (0-based, counted per rank over collectives and point-to-point
/// operations alike).
struct FaultSpec {
  enum class Kind { Crash, Stall, Oom, Corrupt, Flaky };

  int rank = 0;
  std::uint64_t site = 0;
  Kind kind = Kind::Crash;
  /// kind=corrupt only: every retry attempt is corrupted too, forcing the
  /// retry budget to exhaust and the escalation path to run.
  bool sticky = false;
  /// kind=flaky only: the number of leading attempts that fail (>= 1).
  std::uint64_t attempts = 1;

  friend bool operator==(const FaultSpec &, const FaultSpec &) = default;
};

using FaultPlan = std::vector<FaultSpec>;

/// Parses `rank=R,site=N[,kind=crash|stall|oom|corrupt|flaky][,sticky]
/// [,attempts=M][;rank=...]`.  The empty string yields an empty plan;
/// malformed specs — unknown keys, unknown kinds, modifiers on the wrong
/// kind, or duplicate (rank, site) coordinates — throw std::invalid_argument
/// with a message naming the offending token.
[[nodiscard]] FaultPlan parse_fault_plan(const std::string &spec);

/// The plan from the RIPPLES_FAULTS environment variable (empty when unset).
/// A malformed value terminates with a diagnostic: silently ignoring a fault
/// plan would turn an intended failure test into a false pass.
[[nodiscard]] FaultPlan fault_plan_from_env();

/// Watchdog deadline from RIPPLES_WATCHDOG_MS (zero when unset/empty).
[[nodiscard]] std::chrono::milliseconds watchdog_from_env();

/// Thrown by the injector at a planned crash site.  The message is a pure
/// function of the fault coordinates, so repeated runs of one plan fail
/// with byte-identical diagnostics.
class InjectedFault : public std::runtime_error {
public:
  InjectedFault(int rank, std::uint64_t site, const char *operation);

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] std::uint64_t site() const { return site_; }

private:
  int rank_;
  std::uint64_t site_;
};

} // namespace ripples::mpsim

#endif // RIPPLES_MPSIM_FAULT_HPP
