/// \file integrity.hpp
/// \brief Payload-integrity primitives for the mpsim runtime (DESIGN.md §14).
///
/// With `--verify-collectives` every collective payload, mailbox message,
/// and steal-channel item carries a CRC-32 (the checkpoint kernel from
/// support/checkpoint.hpp) computed by the producer before publication and
/// recomputed by every consumer before any byte is used.  A mismatch is
/// never acted on silently: the consumer quiesces the exchange, sleeps a
/// capped exponential backoff, and retries against the producer's still-live
/// buffer.  When the retry budget exhausts, the mismatch escalates —
/// `PayloadCorrupt` for the producer of the bad bytes, the shrink-and-heal
/// path for its peers — so a sticky corruption costs a rank, not the answer.
///
/// The backoff schedule is deterministic and testable: `retry_delay` is a
/// pure function of the attempt number, and the actual sleep is routed
/// through a process-global hook so tests substitute a fake clock and
/// assert the schedule without waiting it out.
#ifndef RIPPLES_MPSIM_INTEGRITY_HPP
#define RIPPLES_MPSIM_INTEGRITY_HPP

#include <chrono>
#include <cstdint>
#include <functional>
#include <stdexcept>

namespace ripples::mpsim {

/// Retry budget per exchange: the first pass plus kMaxAttempts - 1 retries.
/// Exhaustion escalates to the failure path, so the budget bounds how long a
/// sticky corrupter can stall its peers.
inline constexpr int kMaxVerifyAttempts = 4;

/// First-retry delay: fast, because transient flips are the common case.
inline constexpr std::chrono::microseconds kBackoffBase{100};

/// Backoff ceiling: doubling stops here so the worst-case retry cost stays
/// bounded and deterministic.
inline constexpr std::chrono::microseconds kBackoffCap{400};

/// The capped exponential schedule, as a pure function: retry \p attempt
/// (1-based) sleeps base * 2^(attempt-1), clamped to the cap.
[[nodiscard]] std::chrono::microseconds retry_delay(int attempt);

/// Sleeps `retry_delay(attempt)` — or reports it to the installed hook
/// instead, when a test wants the schedule without the wall-clock cost.
void backoff_sleep(int attempt);

/// Replaces the sleep behind backoff_sleep; pass nullptr to restore the real
/// clock.  Returns the previously installed hook so scopes can nest.
using BackoffHook = std::function<void(std::chrono::microseconds)>;
BackoffHook set_backoff_hook(BackoffHook hook);

/// RAII form of set_backoff_hook for tests.
class ScopedBackoffHook {
public:
  explicit ScopedBackoffHook(BackoffHook hook)
      : previous_(set_backoff_hook(std::move(hook))) {}
  ~ScopedBackoffHook() { set_backoff_hook(std::move(previous_)); }
  ScopedBackoffHook(const ScopedBackoffHook &) = delete;
  ScopedBackoffHook &operator=(const ScopedBackoffHook &) = delete;

private:
  BackoffHook previous_;
};

/// `RIPPLES_VERIFY_COLLECTIVES` truthy values: 1/on/true/yes.
[[nodiscard]] bool verify_collectives_from_env();

/// Thrown by a rank whose own payload kept failing verification after the
/// full retry budget — the producer of the bad bytes, not its detectors.
/// The message is a pure function of the coordinates, so repeated runs of
/// one plan fail with byte-identical diagnostics.
class PayloadCorrupt : public std::runtime_error {
public:
  PayloadCorrupt(const char *op, std::uint64_t site, int rank, int attempts);

  [[nodiscard]] const std::string &op() const { return op_; }
  [[nodiscard]] std::uint64_t site() const { return site_; }
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int attempts() const { return attempts_; }

private:
  std::string op_;
  std::uint64_t site_;
  int rank_;
  int attempts_;
};

} // namespace ripples::mpsim

#endif // RIPPLES_MPSIM_INTEGRITY_HPP
