#include "mpsim/communicator.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

namespace ripples::mpsim {

// --- communication metrics --------------------------------------------------

const char *to_string(Collective collective) {
  switch (collective) {
  case Collective::Barrier: return "barrier";
  case Collective::Allreduce: return "allreduce";
  case Collective::Reduce: return "reduce";
  case Collective::Broadcast: return "broadcast";
  case Collective::Allgather: return "allgather";
  case Collective::Gather: return "gather";
  case Collective::Scatter: return "scatter";
  case Collective::Allgatherv: return "allgatherv";
  case Collective::Send: return "send";
  case Collective::Recv: return "recv";
  }
  return "?";
}

namespace {

struct CommCounters {
  std::array<std::atomic<std::uint64_t>, kNumCollectives> calls{};
  std::array<std::atomic<std::uint64_t>, kNumCollectives> bytes{};
};

CommCounters &comm_counters() {
  static CommCounters counters;
  return counters;
}

} // namespace

namespace detail {

void record_collective(Collective collective, std::size_t bytes) {
  CommCounters &counters = comm_counters();
  const auto c = static_cast<std::size_t>(collective);
  counters.calls[c].fetch_add(1, std::memory_order_relaxed);
  counters.bytes[c].fetch_add(bytes, std::memory_order_relaxed);
}

} // namespace detail

CommStatsSnapshot comm_stats() {
  CommCounters &counters = comm_counters();
  CommStatsSnapshot snapshot;
  for (std::size_t c = 0; c < kNumCollectives; ++c) {
    snapshot.calls[c] = counters.calls[c].load(std::memory_order_relaxed);
    snapshot.bytes[c] = counters.bytes[c].load(std::memory_order_relaxed);
  }
  return snapshot;
}

void reset_comm_stats() {
  CommCounters &counters = comm_counters();
  for (std::size_t c = 0; c < kNumCollectives; ++c) {
    counters.calls[c].store(0, std::memory_order_relaxed);
    counters.bytes[c].store(0, std::memory_order_relaxed);
  }
}

std::vector<metrics::CollectiveStats> CommStatsSnapshot::nonzero() const {
  std::vector<metrics::CollectiveStats> stats;
  for (std::size_t c = 0; c < kNumCollectives; ++c) {
    if (calls[c] == 0) continue;
    stats.push_back({to_string(static_cast<Collective>(c)), calls[c], bytes[c]});
  }
  return stats;
}

// --- runtime ----------------------------------------------------------------

namespace detail {

/// How long a blocked rank sleeps between abort-flag checks.  Failure is the
/// exceptional path: the normal path is woken by notify_all immediately, and
/// the timed wait only bounds the unwind latency after a peer dies.
constexpr std::chrono::milliseconds kAbortPollInterval{5};

/// Rendezvous channel for one (source, destination) pair: the sender posts
/// a pointer and blocks until the receiver has copied the payload.
struct Mailbox {
  std::mutex mutex;
  std::condition_variable cv;
  const void *data = nullptr;
  std::size_t bytes = 0;
  bool posted = false;
};

/// Central generation barrier, equivalent to std::barrier except that
/// waiters poll a shared abort flag: when any rank dies with an exception,
/// every peer blocked here (or arriving later) unwinds with RankAborted
/// instead of waiting for an arrival that will never happen.
struct AbortableBarrier {
  explicit AbortableBarrier(int num_ranks) : expected(num_ranks) {}

  void arrive_and_wait(const std::atomic<bool> &aborted) {
    std::unique_lock<std::mutex> lock(mutex);
    if (aborted.load(std::memory_order_acquire)) throw RankAborted();
    const std::uint64_t my_generation = generation;
    if (++arrived == expected) {
      arrived = 0;
      ++generation;
      cv.notify_all();
      return;
    }
    while (generation == my_generation) {
      cv.wait_for(lock, kAbortPollInterval);
      // After an abort the barrier will never complete (the dead rank no
      // longer arrives); state consistency stops mattering because every
      // rank unwinds from its next synchronization point.
      if (aborted.load(std::memory_order_acquire)) throw RankAborted();
    }
  }

  std::mutex mutex;
  std::condition_variable cv;
  const int expected;
  int arrived = 0;
  std::uint64_t generation = 0;
};

struct SharedState {
  explicit SharedState(int num_ranks)
      : pointers(static_cast<std::size_t>(num_ranks), nullptr),
        sizes(static_cast<std::size_t>(num_ranks), 0),
        mailboxes(static_cast<std::size_t>(num_ranks) *
                  static_cast<std::size_t>(num_ranks)),
        sync(num_ranks) {}

  Mailbox &mailbox(int source, int destination, int num_ranks) {
    return mailboxes[static_cast<std::size_t>(source) *
                         static_cast<std::size_t>(num_ranks) +
                     static_cast<std::size_t>(destination)];
  }

  /// First-exception protocol: flips the abort flag and wakes every blocked
  /// waiter so peers unwind promptly instead of riding out the timed waits.
  void abort() {
    aborted.store(true, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(sync.mutex);
    }
    sync.cv.notify_all();
    for (Mailbox &box : mailboxes) {
      {
        std::lock_guard<std::mutex> lock(box.mutex);
      }
      box.cv.notify_all();
    }
  }

  std::vector<const void *> pointers;
  std::vector<std::size_t> sizes;
  std::vector<Mailbox> mailboxes;
  AbortableBarrier sync;
  std::atomic<bool> aborted{false};
};

} // namespace detail

void Communicator::sync() { shared_.sync.arrive_and_wait(shared_.aborted); }

void Communicator::barrier() {
  record(Collective::Barrier, 0);
  trace::Span span("mpsim", "mpsim.barrier");
  sync();
}

void Communicator::post_pointer(const void *data, std::size_t bytes) {
  shared_.pointers[static_cast<std::size_t>(rank_)] = data;
  shared_.sizes[static_cast<std::size_t>(rank_)] = bytes;
}

const void *Communicator::peer_pointer(int peer) const {
  RIPPLES_DEBUG_ASSERT(peer >= 0 && peer < size_);
  return shared_.pointers[static_cast<std::size_t>(peer)];
}

std::size_t Communicator::peer_size(int peer) const {
  RIPPLES_DEBUG_ASSERT(peer >= 0 && peer < size_);
  return shared_.sizes[static_cast<std::size_t>(peer)];
}

void Communicator::send_bytes(const void *data, std::size_t bytes,
                              int destination) {
  RIPPLES_ASSERT(destination >= 0 && destination < size_);
  RIPPLES_ASSERT_MSG(destination != rank_, "self-send would deadlock");
  record(Collective::Send, bytes);
  trace::Span span("mpsim", "mpsim.send", "bytes", bytes, "peer",
                   static_cast<std::uint64_t>(destination));
  detail::Mailbox &box = shared_.mailbox(rank_, destination, size_);
  std::unique_lock<std::mutex> lock(box.mutex);
  // Wait for the previous message on this channel to be consumed.
  while (box.posted) {
    if (shared_.aborted.load(std::memory_order_acquire)) throw RankAborted();
    box.cv.wait_for(lock, detail::kAbortPollInterval);
  }
  if (shared_.aborted.load(std::memory_order_acquire)) throw RankAborted();
  box.data = data;
  box.bytes = bytes;
  box.posted = true;
  box.cv.notify_all();
  // Rendezvous: return only after the receiver copied the payload.  If the
  // receiver dies first, the posted pointer must be withdrawn before this
  // stack frame unwinds.
  while (box.posted) {
    if (shared_.aborted.load(std::memory_order_acquire)) {
      box.posted = false;
      box.data = nullptr;
      throw RankAborted();
    }
    box.cv.wait_for(lock, detail::kAbortPollInterval);
  }
}

void Communicator::recv_bytes(void *buffer, std::size_t bytes, int source) {
  RIPPLES_ASSERT(source >= 0 && source < size_);
  RIPPLES_ASSERT_MSG(source != rank_, "self-receive would deadlock");
  record(Collective::Recv, bytes);
  trace::Span span("mpsim", "mpsim.recv", "bytes", bytes, "peer",
                   static_cast<std::uint64_t>(source));
  detail::Mailbox &box = shared_.mailbox(source, rank_, size_);
  std::unique_lock<std::mutex> lock(box.mutex);
  while (!box.posted) {
    if (shared_.aborted.load(std::memory_order_acquire)) throw RankAborted();
    box.cv.wait_for(lock, detail::kAbortPollInterval);
  }
  RIPPLES_ASSERT_MSG(box.bytes == bytes,
                     "recv buffer size must match the sent payload");
  std::memcpy(buffer, box.data, bytes);
  box.posted = false;
  box.data = nullptr;
  box.cv.notify_all();
}

void Context::run(int num_ranks,
                  const std::function<void(Communicator &)> &rank_main) {
  RIPPLES_ASSERT(num_ranks >= 1);
  detail::SharedState shared(num_ranks);

  std::mutex error_mutex;
  std::exception_ptr first_error;

  auto rank_body = [&](int rank) {
    // Rank identity for the tracer: events from this thread (and its scope)
    // group under trace process `rank`.  RankScope restores the previous
    // rank on exit — rank 0 runs on the calling thread, which may have its
    // own identity.
    trace::RankScope rank_scope(rank);
    trace::Span rank_span("mpsim", "mpsim.rank", "rank",
                          static_cast<std::uint64_t>(rank));
    Communicator comm(rank, num_ranks, shared);
    try {
      rank_main(comm);
    } catch (const RankAborted &) {
      // This rank was unwound by the abort protocol; the rank that failed
      // already recorded the original exception.  (A RankAborted thrown
      // directly by user code is indistinguishable and treated the same:
      // the fallback in run() still surfaces an error.)
      shared.abort();
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      // Wake and unwind every peer: a blocked rank would otherwise wait
      // forever for this rank's next barrier arrival or message.
      shared.abort();
    }
  };

  std::vector<std::thread> ranks;
  ranks.reserve(static_cast<std::size_t>(num_ranks) - 1);
  for (int r = 1; r < num_ranks; ++r) ranks.emplace_back(rank_body, r);
  rank_body(0);
  for (std::thread &t : ranks) t.join();

  if (!first_error && shared.aborted.load(std::memory_order_acquire))
    first_error = std::make_exception_ptr(RankAborted());
  if (first_error) std::rethrow_exception(first_error);
}

} // namespace ripples::mpsim
