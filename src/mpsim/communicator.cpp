#include "mpsim/communicator.hpp"

#include <barrier>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

namespace ripples::mpsim {

namespace detail {

/// Rendezvous channel for one (source, destination) pair: the sender posts
/// a pointer and blocks until the receiver has copied the payload.
struct Mailbox {
  std::mutex mutex;
  std::condition_variable cv;
  const void *data = nullptr;
  std::size_t bytes = 0;
  bool posted = false;
};

struct SharedState {
  explicit SharedState(int num_ranks)
      : pointers(static_cast<std::size_t>(num_ranks), nullptr),
        sizes(static_cast<std::size_t>(num_ranks), 0),
        mailboxes(static_cast<std::size_t>(num_ranks) *
                  static_cast<std::size_t>(num_ranks)),
        sync(num_ranks) {}

  Mailbox &mailbox(int source, int destination, int num_ranks) {
    return mailboxes[static_cast<std::size_t>(source) *
                         static_cast<std::size_t>(num_ranks) +
                     static_cast<std::size_t>(destination)];
  }

  std::vector<const void *> pointers;
  std::vector<std::size_t> sizes;
  std::vector<Mailbox> mailboxes;
  std::barrier<> sync;
};

} // namespace detail

void Communicator::barrier() { shared_.sync.arrive_and_wait(); }

void Communicator::post_pointer(const void *data, std::size_t bytes) {
  shared_.pointers[static_cast<std::size_t>(rank_)] = data;
  shared_.sizes[static_cast<std::size_t>(rank_)] = bytes;
}

const void *Communicator::peer_pointer(int peer) const {
  RIPPLES_DEBUG_ASSERT(peer >= 0 && peer < size_);
  return shared_.pointers[static_cast<std::size_t>(peer)];
}

std::size_t Communicator::peer_size(int peer) const {
  RIPPLES_DEBUG_ASSERT(peer >= 0 && peer < size_);
  return shared_.sizes[static_cast<std::size_t>(peer)];
}

void Communicator::send_bytes(const void *data, std::size_t bytes,
                              int destination) {
  RIPPLES_ASSERT(destination >= 0 && destination < size_);
  RIPPLES_ASSERT_MSG(destination != rank_, "self-send would deadlock");
  detail::Mailbox &box = shared_.mailbox(rank_, destination, size_);
  std::unique_lock<std::mutex> lock(box.mutex);
  // Wait for the previous message on this channel to be consumed.
  box.cv.wait(lock, [&] { return !box.posted; });
  box.data = data;
  box.bytes = bytes;
  box.posted = true;
  box.cv.notify_all();
  // Rendezvous: return only after the receiver copied the payload.
  box.cv.wait(lock, [&] { return !box.posted; });
}

void Communicator::recv_bytes(void *buffer, std::size_t bytes, int source) {
  RIPPLES_ASSERT(source >= 0 && source < size_);
  RIPPLES_ASSERT_MSG(source != rank_, "self-receive would deadlock");
  detail::Mailbox &box = shared_.mailbox(source, rank_, size_);
  std::unique_lock<std::mutex> lock(box.mutex);
  box.cv.wait(lock, [&] { return box.posted; });
  RIPPLES_ASSERT_MSG(box.bytes == bytes,
                     "recv buffer size must match the sent payload");
  std::memcpy(buffer, box.data, bytes);
  box.posted = false;
  box.data = nullptr;
  box.cv.notify_all();
}

void Context::run(int num_ranks,
                  const std::function<void(Communicator &)> &rank_main) {
  RIPPLES_ASSERT(num_ranks >= 1);
  detail::SharedState shared(num_ranks);

  std::mutex error_mutex;
  std::exception_ptr first_error;

  auto rank_body = [&](int rank) {
    Communicator comm(rank, num_ranks, shared);
    try {
      rank_main(comm);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      // A dead rank would deadlock peers blocked in a collective; there is
      // no clean recovery from a rank failure mid-collective (true of MPI as
      // well), so the contract is: rank functions may only throw outside
      // collectives, and all ranks see collectives in the same order.  We
      // keep participating in barriers until peers finish naturally only in
      // the trivial single-rank case; otherwise the error surfaces when the
      // program is correct enough for all ranks to throw symmetrically.
    }
  };

  std::vector<std::thread> ranks;
  ranks.reserve(static_cast<std::size_t>(num_ranks) - 1);
  for (int r = 1; r < num_ranks; ++r) ranks.emplace_back(rank_body, r);
  rank_body(0);
  for (std::thread &t : ranks) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

} // namespace ripples::mpsim
