#include "mpsim/communicator.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>

#include "support/checkpoint.hpp"
#include "support/timer.hpp"

namespace ripples::mpsim {

// --- communication metrics --------------------------------------------------

const char *to_string(Collective collective) {
  switch (collective) {
  case Collective::Barrier: return "barrier";
  case Collective::Allreduce: return "allreduce";
  case Collective::Reduce: return "reduce";
  case Collective::Broadcast: return "broadcast";
  case Collective::Allgather: return "allgather";
  case Collective::Gather: return "gather";
  case Collective::Scatter: return "scatter";
  case Collective::Allgatherv: return "allgatherv";
  case Collective::Send: return "send";
  case Collective::Recv: return "recv";
  case Collective::Steal: return "steal";
  }
  return "?";
}

namespace {

struct CommCounters {
  std::array<std::atomic<std::uint64_t>, kNumCollectives> calls{};
  std::array<std::atomic<std::uint64_t>, kNumCollectives> bytes{};
};

CommCounters &comm_counters() {
  static CommCounters counters;
  return counters;
}

// Fault-path instruments.  Registry lookups are cached; the instruments are
// only touched on failure paths (never per-collective), so unconditional
// updates are fine there — injection/death/shrink are rare by definition.
metrics::Counter &crashes_counter() {
  static metrics::Counter &c =
      metrics::Registry::instance().counter("mpsim.faults.injected_crashes");
  return c;
}
metrics::Counter &stalls_counter() {
  static metrics::Counter &c =
      metrics::Registry::instance().counter("mpsim.faults.injected_stalls");
  return c;
}
metrics::Counter &deaths_counter() {
  static metrics::Counter &c =
      metrics::Registry::instance().counter("mpsim.faults.dead_ranks");
  return c;
}
metrics::Counter &shrinks_counter() {
  static metrics::Counter &c =
      metrics::Registry::instance().counter("mpsim.faults.shrinks");
  return c;
}
metrics::Counter &timeouts_counter() {
  static metrics::Counter &c =
      metrics::Registry::instance().counter("mpsim.faults.timeouts");
  return c;
}
metrics::Counter &evictions_counter() {
  static metrics::Counter &c =
      metrics::Registry::instance().counter("mpsim.faults.evicted_stalls");
  return c;
}

// Integrity instruments (DESIGN.md §14).  Event-gated like the fault
// counters: a run that never verifies or injects never creates them, so
// their very presence in a report marks an integrity-active run.
metrics::Counter &integrity_checks_counter() {
  static metrics::Counter &c =
      metrics::Registry::instance().counter("integrity.checks");
  return c;
}
metrics::Counter &integrity_detections_counter() {
  static metrics::Counter &c = metrics::Registry::instance().counter(
      "integrity.corruptions_detected");
  return c;
}
metrics::Counter &integrity_retries_counter() {
  static metrics::Counter &c =
      metrics::Registry::instance().counter("integrity.retries");
  return c;
}
metrics::Counter &integrity_escalations_counter() {
  static metrics::Counter &c =
      metrics::Registry::instance().counter("integrity.escalations");
  return c;
}
metrics::Counter &injected_corruptions_counter() {
  static metrics::Counter &c = metrics::Registry::instance().counter(
      "integrity.injected_corruptions");
  return c;
}
metrics::Counter &injected_flaky_counter() {
  static metrics::Counter &c =
      metrics::Registry::instance().counter("integrity.injected_flaky");
  return c;
}

/// CRC-32 over a raw payload; the empty payload (barriers, zero-length
/// sections of an allgatherv) checksums to 0 on both sides by construction.
std::uint32_t payload_crc(const void *data, std::size_t bytes) {
  if (bytes == 0) return 0;
  return checkpoint::crc32(
      std::span<const std::uint8_t>(static_cast<const std::uint8_t *>(data),
                                    bytes));
}

std::uint32_t item_crc(const Communicator::StealItem &item) {
  static_assert(std::is_trivially_copyable_v<Communicator::StealItem>);
  return checkpoint::crc32(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t *>(&item), sizeof(item)));
}

/// The fatal error a rank raises when it discovers a peer declared it dead
/// (payload-corruption escalation can evict a busy rank, unlike stall
/// eviction which only ever marks parked ranks).  Fatal on purpose: a
/// declared-dead rank must unwind as a casualty, never join a shrink.
std::runtime_error declared_dead_error(int world_rank) {
  return std::runtime_error(
      "mpsim: rank " + std::to_string(world_rank) +
      " was declared failed by a peer (payload-corruption escalation)");
}

std::string format_rank_list(const std::vector<int> &ranks) {
  std::string text;
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    if (i > 0) text += ",";
    text += std::to_string(ranks[i]);
  }
  return text;
}

} // namespace

namespace detail {

void record_collective(Collective collective, std::size_t bytes) {
  CommCounters &counters = comm_counters();
  const auto c = static_cast<std::size_t>(collective);
  counters.calls[c].fetch_add(1, std::memory_order_relaxed);
  counters.bytes[c].fetch_add(bytes, std::memory_order_relaxed);
}

} // namespace detail

CommStatsSnapshot comm_stats() {
  CommCounters &counters = comm_counters();
  CommStatsSnapshot snapshot;
  for (std::size_t c = 0; c < kNumCollectives; ++c) {
    snapshot.calls[c] = counters.calls[c].load(std::memory_order_relaxed);
    snapshot.bytes[c] = counters.bytes[c].load(std::memory_order_relaxed);
  }
  return snapshot;
}

void reset_comm_stats() {
  CommCounters &counters = comm_counters();
  for (std::size_t c = 0; c < kNumCollectives; ++c) {
    counters.calls[c].store(0, std::memory_order_relaxed);
    counters.bytes[c].store(0, std::memory_order_relaxed);
  }
}

std::vector<metrics::CollectiveStats> CommStatsSnapshot::nonzero() const {
  std::vector<metrics::CollectiveStats> stats;
  for (std::size_t c = 0; c < kNumCollectives; ++c) {
    if (calls[c] == 0) continue;
    stats.push_back({to_string(static_cast<Collective>(c)), calls[c], bytes[c]});
  }
  return stats;
}

// --- exceptions --------------------------------------------------------------

RankFailed::RankFailed(std::vector<int> dead_ranks)
    : dead_ranks_(std::move(dead_ranks)),
      message_("mpsim: rank(s) " + format_rank_list(dead_ranks_) +
               " failed; survivors must shrink() before communicating") {}

CollectiveTimeout::CollectiveTimeout(const char *operation, std::uint64_t site,
                                     std::vector<int> laggards,
                                     std::chrono::milliseconds waited)
    : operation_(operation), site_(site), laggards_(std::move(laggards)),
      waited_(waited) {
  message_ = "mpsim: watchdog timeout in " + std::string(operation) +
             " at site " + std::to_string(site) + " after " +
             std::to_string(waited.count()) + " ms; laggard rank(s) " +
             format_rank_list(laggards_);
}

// --- runtime ----------------------------------------------------------------

namespace detail {

/// Wait pacing for blocked ranks: the normal path is woken by notify_all
/// immediately, and the timed wait only bounds unwind latency after a fault.
/// Capped exponential backoff (0.1 ms doubling to 10 ms) keeps narrow waits
/// responsive without letting wide communicators burn CPU re-polling a flag
/// that almost never flips.
class PollBackoff {
public:
  std::chrono::microseconds next() {
    const auto interval = current_;
    current_ = std::min(current_ * 2, kCap);
    return interval;
  }

private:
  static constexpr std::chrono::microseconds kStart{100};
  static constexpr std::chrono::microseconds kCap{10'000};
  std::chrono::microseconds current_{kStart};
};

/// Deadline bookkeeping for one blocking communication wait.  Inert (never
/// consults the clock) when no watchdog is configured.
class WatchdogClock {
public:
  explicit WatchdogClock(std::chrono::milliseconds deadline)
      : deadline_(deadline) {
    if (armed()) start_ = std::chrono::steady_clock::now();
  }

  [[nodiscard]] bool armed() const { return deadline_.count() > 0; }

  [[nodiscard]] std::chrono::milliseconds elapsed() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start_);
  }

  [[nodiscard]] bool expired() const {
    return armed() && elapsed() >= deadline_;
  }

  /// Clamps a backoff interval so a sleeping waiter cannot overshoot the
  /// deadline by more than one wakeup.
  [[nodiscard]] std::chrono::microseconds
  clamp(std::chrono::microseconds interval) const {
    if (!armed()) return interval;
    const auto remaining = std::chrono::duration_cast<std::chrono::microseconds>(
        deadline_ - elapsed());
    return std::max(std::chrono::microseconds{1},
                    std::min(interval, remaining));
  }

private:
  std::chrono::milliseconds deadline_;
  std::chrono::steady_clock::time_point start_;
};

/// Rendezvous channel for one (source, destination) pair: the sender posts
/// a pointer and blocks until the receiver has copied the payload.
struct Mailbox {
  std::mutex mutex;
  std::condition_variable cv;
  const void *data = nullptr;
  std::size_t bytes = 0;
  /// Producer CRC over the posted payload (0 when integrity is inactive).
  std::uint32_t crc = 0;
  /// Injection directives riding with the current message, set by the
  /// sender at post time: the receiver flips one bit of its copy while
  /// attempt <= inject_corrupt_attempts, and treats the checksum as failed
  /// while attempt <= inject_flaky_attempts — modelling a dirty link whose
  /// retransmissions heal (or, when sticky, never do).
  std::uint64_t inject_corrupt_attempts = 0;
  std::uint64_t inject_flaky_attempts = 0;
  bool posted = false;
};

/// One rank's published stealable work.  Unlike the mailboxes, the steal
/// queues never rendezvous: a publish replaces the owner's queue, pops and
/// steals are lock-then-go, and nobody ever waits on a queue — which is why
/// a dead rank's queue stays safely readable for the rest of the window.
struct StealQueue {
  /// One stealable item plus the CRC its publisher computed; the CRC
  /// travels with the item when a thief re-queues surplus locally.
  struct Slot {
    Communicator::StealItem item;
    std::uint32_t crc = 0;
  };

  std::mutex mutex;
  std::deque<Slot> slots;
  /// Publish-site injection: a dirty-link tag mask applied to (and consumed
  /// by) the next read attempt, and a flaky budget decremented per failed
  /// verification.  Sticky corruption instead flips the stored item itself.
  std::uint64_t read_flip_mask = 0;
  std::uint64_t flaky_remaining = 0;
};

struct SharedState {
  explicit SharedState(const RunOptions &run_options)
      : options(run_options), world_size(run_options.num_ranks),
        pointers(static_cast<std::size_t>(world_size), nullptr),
        sizes(static_cast<std::size_t>(world_size), 0),
        crcs(static_cast<std::size_t>(world_size), 0),
        mailboxes(static_cast<std::size_t>(world_size) *
                  static_cast<std::size_t>(world_size)),
        steal_queues(static_cast<std::size_t>(world_size)),
        in_barrier(static_cast<std::size_t>(world_size), 0),
        in_shrink(static_cast<std::size_t>(world_size), 0),
        alive(static_cast<std::size_t>(world_size), 1), live(world_size) {}

  Mailbox &mailbox(int source, int destination) {
    return mailboxes[static_cast<std::size_t>(source) *
                         static_cast<std::size_t>(world_size) +
                     static_cast<std::size_t>(destination)];
  }

  /// First-exception protocol: flips the abort flag and wakes every blocked
  /// waiter so peers unwind promptly instead of riding out the timed waits.
  void abort() {
    aborted.store(true, std::memory_order_release);
    wake_everyone();
  }

  /// Survivable-failure protocol: records \p world_rank's death in the
  /// epoch-tagged ledger and wakes every waiter, which then raises
  /// RankFailed.  Deliberately never completes a pending barrier
  /// generation: the dead rank may not have posted its collective pointer,
  /// so letting the generation complete would hand peers a stale or null
  /// buffer.  Waiters withdraw instead.  The shrink barrier, which carries
  /// no data, *is* completed here when the death supplies its last missing
  /// arrival — otherwise a mid-shrink death would hang the survivors.
  void mark_dead(int world_rank) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      mark_dead_locked(world_rank);
    }
    wake_everyone();
  }

  /// Idempotent: a rank can be declared dead twice — a watchdog eviction
  /// races with the evicted rank's own unwind (its rank_body calls
  /// mark_dead when it finally throws), and two waiters can evict the same
  /// laggard concurrently.  Only the first declaration touches the ledger.
  void mark_dead_locked(int world_rank) {
    if (!alive[static_cast<std::size_t>(world_rank)]) return;
    alive[static_cast<std::size_t>(world_rank)] = 0;
    --live;
    dead_order.push_back(world_rank);
    dead_count.store(dead_order.size(), std::memory_order_release);
    if (metrics::enabled()) deaths_counter().increment();
    trace::instant("mpsim", "mpsim.rank_dead", "rank",
                   static_cast<std::uint64_t>(world_rank));
    if (shrink_arrived > 0 && shrink_arrived == live)
      complete_shrink_locked();
  }

  void complete_shrink_locked() {
    shrink_arrived = 0;
    ++shrink_generation;
    shrink_epoch = dead_order.size();
    std::fill(in_shrink.begin(), in_shrink.end(), 0);
    if (metrics::enabled()) shrinks_counter().increment();
    trace::instant("mpsim", "mpsim.shrink_complete", "survivors",
                   static_cast<std::uint64_t>(live), "dead",
                   static_cast<std::uint64_t>(shrink_epoch));
  }

  void complete_generation_locked() {
    arrived = 0;
    ++generation;
    std::fill(in_barrier.begin(), in_barrier.end(), 0);
  }

  /// Membership acknowledged up to \p acked_deaths: all world ranks not
  /// among the first acked_deaths entries of the death ledger, ascending.
  [[nodiscard]] std::vector<int>
  members_at_locked(std::size_t acked_deaths) const {
    std::vector<char> is_dead(static_cast<std::size_t>(world_size), 0);
    for (std::size_t d = 0; d < acked_deaths; ++d)
      is_dead[static_cast<std::size_t>(dead_order[d])] = 1;
    std::vector<int> members;
    members.reserve(static_cast<std::size_t>(world_size) - acked_deaths);
    for (int r = 0; r < world_size; ++r)
      if (!is_dead[static_cast<std::size_t>(r)]) members.push_back(r);
    return members;
  }

  [[nodiscard]] RankFailed rank_failed_since_locked(std::size_t acked) const {
    return RankFailed(std::vector<int>(
        dead_order.begin() + static_cast<std::ptrdiff_t>(acked),
        dead_order.end()));
  }

  /// Snapshot variant for waiters that do not hold the central mutex (the
  /// mailbox paths, which hold only their box mutex).
  [[nodiscard]] RankFailed rank_failed_since(std::size_t acked) {
    std::lock_guard<std::mutex> lock(mutex);
    return rank_failed_since_locked(acked);
  }

  void wake_everyone() {
    // The empty lock/unlock before each notify serializes with waiters'
    // predicate checks: a waiter either observes the updated state before
    // blocking or is woken by the notify.  Never hold the central mutex
    // while taking a mailbox mutex (mailbox waiters lock them the other
    // way around via rank_failed_since).
    {
      std::lock_guard<std::mutex> lock(mutex);
    }
    cv.notify_all();
    for (Mailbox &box : mailboxes) {
      {
        std::lock_guard<std::mutex> lock(box.mutex);
      }
      box.cv.notify_all();
    }
  }

  const RunOptions options;
  const int world_size;

  // Collective pointer exchange, indexed by world rank.  `crcs` carries each
  // producer's CRC-32 alongside its payload pointer; stable (like the
  // pointers) between the two rendezvous phases of an exchange, which is
  // what lets every rank verify every payload without an agreement round.
  std::vector<const void *> pointers;
  std::vector<std::size_t> sizes;
  std::vector<std::uint32_t> crcs;
  std::vector<Mailbox> mailboxes;
  std::vector<StealQueue> steal_queues;

  // Central mutex: guards the generation barrier, the shrink barrier, and
  // the membership ledger below.  `aborted` and `dead_count` double as
  // lock-free mirrors for the mailbox wait loops.
  std::mutex mutex;
  std::condition_variable cv;

  // Generation barrier over the live ranks (both rendezvous phases of every
  // collective).  in_barrier flags arrivals of the current generation so a
  // watchdog expiry can name the ranks that never showed up.
  int arrived = 0;
  std::uint64_t generation = 0;
  std::vector<char> in_barrier;

  // Collective flow arrows (trace only): the completing rank of a flow-
  // flagged generation allocates world_size consecutive flow ids and stamps
  // them here; each released waiter reads `flow_base + world_rank` under
  // the lock to terminate its arrow on its own row.  Stable until every
  // waiter has read it — the next generation cannot complete before all of
  // them re-arrive.
  std::uint64_t flow_base = 0;
  std::uint64_t flow_generation = ~std::uint64_t{0};

  // Shrink barrier (recovery agreement), same structure.  shrink_epoch is
  // the death-ledger length acknowledged by the last completed shrink —
  // every participant adopts exactly this prefix, which is what makes the
  // surviving ranks' membership views identical.
  int shrink_arrived = 0;
  std::uint64_t shrink_generation = 0;
  std::size_t shrink_epoch = 0;
  std::vector<char> in_shrink;

  // Membership ledger.
  std::vector<char> alive;
  int live;
  std::vector<int> dead_order;
  std::atomic<std::size_t> dead_count{0};
  std::atomic<bool> aborted{false};

  // Ranks whose rank_main returned normally (success criterion for
  // recovery-enabled runs).
  int completed = 0;
};

} // namespace detail

// --- Communicator -----------------------------------------------------------

Communicator::Communicator(int rank, int size, detail::SharedState &shared)
    : world_rank_(rank), world_size_(size), my_index_(rank), shared_(shared) {
  members_.resize(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) members_[static_cast<std::size_t>(r)] = r;
}

std::uint64_t Communicator::begin_collective(Collective collective) {
  const std::uint64_t site = site_counter_++;
  if (!shared_.options.faults.empty()) {
    for (const FaultSpec &fault : shared_.options.faults) {
      if (fault.rank != world_rank_ || fault.site != site) continue;
      // Oom faults fire at memory-reservation sites (MemoryTracker), not at
      // communication sites; the communicator's site counter never matches
      // them by design, so skip rather than fall through to the stall path.
      if (fault.kind == FaultSpec::Kind::Oom) continue;
      // Payload faults (corrupt/flaky) fire inside the exchange itself —
      // post_payload and the mailbox/steal paths consult injection_at() —
      // so the entry hook leaves them alone.
      if (fault.kind == FaultSpec::Kind::Corrupt ||
          fault.kind == FaultSpec::Kind::Flaky)
        continue;
      if (fault.kind == FaultSpec::Kind::Crash) {
        if (metrics::enabled()) crashes_counter().increment();
        trace::instant("mpsim", "mpsim.fault_crash", "rank",
                       static_cast<std::uint64_t>(world_rank_), "site", site);
        throw InjectedFault(world_rank_, site, to_string(collective));
      }
      // Stall: block here without ever arriving at the rendezvous —
      // modelling a hung peer.  The rank unwinds once the run aborts (a
      // peer's watchdog diagnosed the stall) or once a peer *evicted* it
      // (RunOptions::evict_stalled declared it dead); without a watchdog
      // this hangs the run, exactly like real MPI.
      if (metrics::enabled()) stalls_counter().increment();
      trace::instant("mpsim", "mpsim.fault_stall", "rank",
                     static_cast<std::uint64_t>(world_rank_), "site", site);
      while (!shared_.aborted.load(std::memory_order_acquire)) {
        if (shared_.dead_count.load(std::memory_order_acquire) > 0) {
          std::lock_guard<std::mutex> lock(shared_.mutex);
          if (!shared_.alive[static_cast<std::size_t>(world_rank_)])
            throw std::runtime_error(
                "mpsim: rank " + std::to_string(world_rank_) +
                " evicted while stalled at site " + std::to_string(site));
        }
        std::this_thread::sleep_for(std::chrono::milliseconds{1});
      }
      throw RankAborted();
    }
  }
  return site;
}

void Communicator::sync(Collective collective, std::uint64_t site, bool flow) {
  // Declared before the lock so the destructor accounts after release: all
  // time inside sync() — including lock acquisition and the straggler wait
  // — is collective-wait from the round ledger's point of view.  Accounts
  // on the throwing exits too.
  struct WaitAccount {
    bool armed;
    StopWatch watch;
    ~WaitAccount() {
      if (armed) metrics::add_thread_collective_wait(watch.elapsed_seconds());
    }
  } wait_account{metrics::enabled(), {}};

  std::unique_lock<std::mutex> lock(shared_.mutex);
  if (shared_.aborted.load(std::memory_order_acquire)) throw RankAborted();
  // A corruption escalation can declare a *busy* rank dead (unlike stall
  // eviction, which only marks parked ranks).  A declared-dead rank must
  // unwind as a casualty — never observe RankFailed and join a shrink,
  // where its arrival would overcount the barrier against `live`.
  if (!shared_.alive[static_cast<std::size_t>(world_rank_)])
    throw declared_dead_error(world_rank_);
  if (shared_.dead_order.size() > acked_deaths_)
    throw shared_.rank_failed_since_locked(acked_deaths_);

  const std::uint64_t my_generation = shared_.generation;
  shared_.in_barrier[static_cast<std::size_t>(world_rank_)] = 1;
  if (++shared_.arrived == shared_.live) {
    // Completer: last to arrive, so every other in_barrier rank is a waiter
    // this completion releases.  Publish a block of flow ids for them and
    // start the arrows on this row, stamped at the completion instant.
    std::uint64_t flow_base = 0;
    std::uint64_t flow_ts = 0;
    std::vector<int> released;
    if (flow && trace::enabled()) {
      for (int r = 0; r < shared_.world_size; ++r)
        if (r != world_rank_ && shared_.in_barrier[static_cast<std::size_t>(r)])
          released.push_back(r);
      if (!released.empty()) {
        flow_base =
            trace::new_flow_ids(static_cast<std::uint64_t>(shared_.world_size));
        shared_.flow_base = flow_base;
        shared_.flow_generation = my_generation;
        // Stamp before the release below: a woken waiter can emit its "f"
        // before this thread runs again, and a flow must not end before it
        // starts.
        flow_ts = trace::timestamp_us();
      }
    }
    shared_.complete_generation_locked();
    shared_.cv.notify_all();
    lock.unlock();
    if (flow_base != 0)
      for (int r : released)
        trace::flow_begin("flow", "flow.collective",
                          flow_base + static_cast<std::uint64_t>(r), flow_ts);
    return;
  }

  detail::PollBackoff backoff;
  detail::WatchdogClock watchdog(shared_.options.watchdog);
  while (shared_.generation == my_generation) {
    if (watchdog.expired()) {
      std::vector<int> laggards;
      for (int r = 0; r < shared_.world_size; ++r)
        if (shared_.alive[static_cast<std::size_t>(r)] &&
            !shared_.in_barrier[static_cast<std::size_t>(r)])
          laggards.push_back(r);
      --shared_.arrived;
      shared_.in_barrier[static_cast<std::size_t>(world_rank_)] = 0;
      if (metrics::enabled()) timeouts_counter().increment();
      trace::instant("mpsim", "mpsim.collective_timeout", "rank",
                     static_cast<std::uint64_t>(world_rank_), "site", site);
      if (shared_.options.recover && shared_.options.evict_stalled &&
          !laggards.empty()) {
        // Stall eviction: declare the laggards dead so this surfaces as a
        // survivable RankFailed — same shrink/heal path as a crash —
        // instead of a fatal diagnosis.  The stalled ranks observe their
        // own eviction in the begin_collective stall loop and unwind.
        for (int laggard : laggards) shared_.mark_dead_locked(laggard);
        if (metrics::enabled()) evictions_counter().add(laggards.size());
        trace::instant("mpsim", "mpsim.stall_evicted", "count",
                       laggards.size(), "site", site);
        RankFailed failure = shared_.rank_failed_since_locked(acked_deaths_);
        lock.unlock();
        shared_.wake_everyone();
        throw failure;
      }
      throw CollectiveTimeout(to_string(collective), site, std::move(laggards),
                              watchdog.elapsed());
    }
    shared_.cv.wait_for(lock, watchdog.clamp(backoff.next()));
    // Completion first: once the generation advanced this collective
    // succeeded and our arrival was consumed by complete_generation_locked.
    // A fault recorded *after* that must not be raised here — withdrawing
    // now would decrement an `arrived` count that no longer includes us
    // (underflowing the next barrier into a permanent hang).  The death or
    // abort surfaces at the next communication entry instead.
    if (shared_.generation != my_generation) break;
    // Still blocked in this generation: a fault can never complete it
    // (mark_dead withdraws instead), so state consistency on these exits
    // only requires undoing our own arrival.
    if (shared_.aborted.load(std::memory_order_acquire)) {
      --shared_.arrived;
      shared_.in_barrier[static_cast<std::size_t>(world_rank_)] = 0;
      throw RankAborted();
    }
    if (shared_.dead_order.size() > acked_deaths_) {
      --shared_.arrived;
      shared_.in_barrier[static_cast<std::size_t>(world_rank_)] = 0;
      if (!shared_.alive[static_cast<std::size_t>(world_rank_)])
        throw declared_dead_error(world_rank_);
      throw shared_.rank_failed_since_locked(acked_deaths_);
    }
  }

  // Released by a completed generation: terminate this rank's arrow.  The
  // id is only valid if the completer published for *our* generation (it
  // skips publication when tracing was off at completion time).
  std::uint64_t flow_id = 0;
  if (flow && trace::enabled() && shared_.flow_generation == my_generation)
    flow_id = shared_.flow_base + static_cast<std::uint64_t>(world_rank_);
  lock.unlock();
  if (flow_id != 0)
    trace::flow_end("flow", "flow.collective", flow_id);
}

void Communicator::barrier() {
  const std::uint64_t site = begin_collective(Collective::Barrier);
  record(Collective::Barrier, 0);
  trace::Span span("mpsim", "mpsim.barrier");
  sync(Collective::Barrier, site, /*flow=*/true);
}

ShrinkResult Communicator::shrink() {
  RIPPLES_ASSERT_MSG(shared_.options.recover,
                     "shrink() requires RunOptions::recover");
  trace::Span span("mpsim", "mpsim.shrink");
  std::unique_lock<std::mutex> lock(shared_.mutex);
  if (shared_.aborted.load(std::memory_order_acquire)) throw RankAborted();
  if (!shared_.alive[static_cast<std::size_t>(world_rank_)])
    throw declared_dead_error(world_rank_);

  const std::uint64_t my_generation = shared_.shrink_generation;
  shared_.in_shrink[static_cast<std::size_t>(world_rank_)] = 1;
  if (++shared_.shrink_arrived == shared_.live) {
    shared_.complete_shrink_locked();
    shared_.cv.notify_all();
  } else {
    detail::PollBackoff backoff;
    detail::WatchdogClock watchdog(shared_.options.watchdog);
    while (shared_.shrink_generation == my_generation) {
      if (watchdog.expired()) {
        std::vector<int> laggards;
        for (int r = 0; r < shared_.world_size; ++r)
          if (shared_.alive[static_cast<std::size_t>(r)] &&
              !shared_.in_shrink[static_cast<std::size_t>(r)])
            laggards.push_back(r);
        --shared_.shrink_arrived;
        shared_.in_shrink[static_cast<std::size_t>(world_rank_)] = 0;
        if (metrics::enabled()) timeouts_counter().increment();
        throw CollectiveTimeout("shrink", site_counter_, std::move(laggards),
                                watchdog.elapsed());
      }
      shared_.cv.wait_for(lock, watchdog.clamp(backoff.next()));
      // Same completion-first rule as sync(): once the shrink generation
      // advanced our arrival was consumed, so withdrawing would corrupt the
      // barrier count.  An abort raced in after completion surfaces at the
      // next communication entry.
      if (shared_.shrink_generation != my_generation) break;
      if (shared_.aborted.load(std::memory_order_acquire)) {
        --shared_.shrink_arrived;
        shared_.in_shrink[static_cast<std::size_t>(world_rank_)] = 0;
        throw RankAborted();
      }
      // New deaths do not unwind a shrink: mark_dead completes it once the
      // last missing live rank has arrived, folding the extra deaths into
      // this shrink's epoch.
    }
  }

  // Adopt exactly the prefix of the death ledger this shrink acknowledged.
  // Deaths recorded after shrink_epoch surface as RankFailed on the next
  // communication and trigger a further shrink round.
  ShrinkResult result;
  result.newly_dead.assign(
      shared_.dead_order.begin() + static_cast<std::ptrdiff_t>(acked_deaths_),
      shared_.dead_order.begin() +
          static_cast<std::ptrdiff_t>(shared_.shrink_epoch));
  acked_deaths_ = shared_.shrink_epoch;
  members_ = shared_.members_at_locked(acked_deaths_);
  const auto me = std::find(members_.begin(), members_.end(), world_rank_);
  RIPPLES_ASSERT(me != members_.end());
  my_index_ = static_cast<int>(me - members_.begin());
  result.members = members_;
  return result;
}

void Communicator::post_pointer(const void *data, std::size_t bytes) {
  shared_.pointers[static_cast<std::size_t>(world_rank_)] = data;
  shared_.sizes[static_cast<std::size_t>(world_rank_)] = bytes;
}

const void *Communicator::peer_pointer(int world_peer) const {
  RIPPLES_DEBUG_ASSERT(world_peer >= 0 && world_peer < world_size_);
  return shared_.pointers[static_cast<std::size_t>(world_peer)];
}

std::size_t Communicator::peer_size(int world_peer) const {
  RIPPLES_DEBUG_ASSERT(world_peer >= 0 && world_peer < world_size_);
  return shared_.sizes[static_cast<std::size_t>(world_peer)];
}

// --- integrity layer ---------------------------------------------------------

bool Communicator::verify_enabled() const {
  return shared_.options.verify_collectives;
}

const FaultSpec *Communicator::injection_at(std::uint64_t site) const {
  for (const FaultSpec &fault : shared_.options.faults) {
    if (fault.rank != world_rank_ || fault.site != site) continue;
    if (fault.kind == FaultSpec::Kind::Corrupt ||
        fault.kind == FaultSpec::Kind::Flaky)
      return &fault;
  }
  return nullptr;
}

void Communicator::post_payload(Collective collective, std::uint64_t site,
                                int attempt, const void *data,
                                std::size_t bytes) {
  (void)collective;
  staged_ = false;
  const FaultSpec *fault = injection_at(site);
  if (!verify_enabled() && fault == nullptr) {
    post_pointer(data, bytes);
    return;
  }
  const void *posted = data;
  std::uint32_t crc = payload_crc(data, bytes);
  if (fault != nullptr && fault->kind == FaultSpec::Kind::Corrupt &&
      bytes > 0 && (attempt == 1 || fault->sticky)) {
    // The flip lands in a staging copy published under the *clean* CRC: the
    // caller's buffer is never touched, so a retransmit genuinely heals —
    // unless the fault is sticky, in which case every repost re-corrupts.
    staging_.assign(static_cast<const std::uint8_t *>(data),
                    static_cast<const std::uint8_t *>(data) + bytes);
    const std::uint64_t bit = site % (static_cast<std::uint64_t>(bytes) * 8);
    staging_[static_cast<std::size_t>(bit / 8)] ^=
        static_cast<std::uint8_t>(1u << (bit % 8));
    posted = staging_.data();
    staged_ = true;
    if (metrics::enabled()) injected_corruptions_counter().increment();
    trace::instant("mpsim", "mpsim.fault_corrupt", "rank",
                   static_cast<std::uint64_t>(world_rank_), "site", site);
  } else if (fault != nullptr && fault->kind == FaultSpec::Kind::Flaky &&
             static_cast<std::uint64_t>(attempt) <= fault->attempts) {
    // Clean bytes under a wrong checksum: the payload is fine, the "link"
    // is not — retransmits heal once the configured budget is spent.
    crc ^= 1u;
    if (metrics::enabled()) injected_flaky_counter().increment();
    trace::instant("mpsim", "mpsim.fault_flaky", "rank",
                   static_cast<std::uint64_t>(world_rank_), "site", site);
  }
  shared_.crcs[static_cast<std::size_t>(world_rank_)] = crc;
  post_pointer(posted, bytes);
}

std::vector<int> Communicator::verify_payloads(Collective collective,
                                               std::uint64_t site,
                                               int attempt) {
  (void)collective;
  std::vector<int> corrupters;
  for (int member : members_) {
    const auto m = static_cast<std::size_t>(member);
    if (payload_crc(shared_.pointers[m], shared_.sizes[m]) != shared_.crcs[m])
      corrupters.push_back(member);
  }
  if (metrics::enabled()) {
    integrity_checks_counter().add(members_.size());
    if (!corrupters.empty())
      integrity_detections_counter().add(corrupters.size());
  }
  if (!corrupters.empty())
    trace::instant("mpsim", "mpsim.payload_corrupt", "site", site, "attempt",
                   static_cast<std::uint64_t>(attempt));
  return corrupters;
}

void Communicator::escalate_corruption(Collective collective,
                                       std::uint64_t site,
                                       const std::vector<int> &corrupters,
                                       int attempts) {
  if (metrics::enabled()) integrity_escalations_counter().increment();
  trace::instant("mpsim", "mpsim.corruption_escalated", "site", site, "rank",
                 static_cast<std::uint64_t>(world_rank_));
  // Every rank reaches this point with the same corrupter set (the posted
  // buffers are stable between the rendezvous phases), so the roles need no
  // agreement round: producers of bad bytes die with the diagnosis, their
  // peers route them into the ledger (recovery on) or unwind (recovery off).
  if (std::find(corrupters.begin(), corrupters.end(), world_rank_) !=
      corrupters.end())
    throw PayloadCorrupt(to_string(collective), site, world_rank_, attempts);
  if (shared_.options.recover) {
    std::unique_lock<std::mutex> lock(shared_.mutex);
    for (int corrupter : corrupters) shared_.mark_dead_locked(corrupter);
    RankFailed failure = shared_.rank_failed_since_locked(acked_deaths_);
    lock.unlock();
    shared_.wake_everyone();
    throw failure;
  }
  throw RankAborted();
}

void Communicator::note_retry(Collective collective, std::uint64_t site,
                              int attempt) {
  (void)collective;
  if (metrics::enabled()) integrity_retries_counter().increment();
  trace::instant("mpsim", "mpsim.payload_retry", "site", site, "attempt",
                 static_cast<std::uint64_t>(attempt));
}

void Communicator::finish_unverified(void *inplace_result, std::size_t bytes) {
  if (!staged_) return;
  staged_ = false;
  // In-place reductions wrote the combined result into the *posted* buffers
  // — for this rank, the corrupted staging copy.  The caller's view must
  // adopt it: with verification off, injected corruption is deliberately
  // silent, and silent means the wrong bytes reach the algorithm.
  if (inplace_result != nullptr && bytes > 0)
    std::memcpy(inplace_result, staging_.data(), bytes);
}

void Communicator::send_bytes(const void *data, std::size_t bytes,
                              int destination) {
  RIPPLES_ASSERT(destination >= 0 && destination < size());
  RIPPLES_ASSERT_MSG(destination != my_index_, "self-send would deadlock");
  const int dest_world = members_[static_cast<std::size_t>(destination)];
  const std::uint64_t site = begin_collective(Collective::Send);
  record(Collective::Send, bytes);
  trace::Span span("mpsim", "mpsim.send", "bytes", bytes, "peer",
                   static_cast<std::uint64_t>(dest_world));
  detail::Mailbox &box = shared_.mailbox(world_rank_, dest_world);
  std::unique_lock<std::mutex> lock(box.mutex);
  detail::PollBackoff backoff;
  detail::WatchdogClock watchdog(shared_.options.watchdog);

  // These loops hold only the mailbox mutex, so failure checks go through
  // the lock-free mirrors (aborted, dead_count); the central mutex is taken
  // — after dropping the box lock, to keep lock order acyclic — only to
  // snapshot the dead set for the exception.  The self-alive check matters
  // here: a receiver that exhausted its retry budget against this sender's
  // corruption declares *us* dead, and a declared-dead rank must unwind as
  // a casualty, never join a shrink.
  auto throw_failed = [&] {
    lock.unlock();
    std::lock_guard<std::mutex> central(shared_.mutex);
    if (!shared_.alive[static_cast<std::size_t>(world_rank_)])
      throw declared_dead_error(world_rank_);
    throw shared_.rank_failed_since_locked(acked_deaths_);
  };
  auto throw_timeout = [&] {
    if (metrics::enabled()) timeouts_counter().increment();
    throw CollectiveTimeout("send", site, {dest_world}, watchdog.elapsed());
  };

  // Wait for the previous message on this channel to be consumed.
  while (box.posted) {
    if (shared_.aborted.load(std::memory_order_acquire)) throw RankAborted();
    if (shared_.dead_count.load(std::memory_order_acquire) > acked_deaths_)
      throw_failed();
    if (watchdog.expired()) throw_timeout();
    box.cv.wait_for(lock, watchdog.clamp(backoff.next()));
  }
  if (shared_.aborted.load(std::memory_order_acquire)) throw RankAborted();
  if (shared_.dead_count.load(std::memory_order_acquire) > acked_deaths_)
    throw_failed();
  const FaultSpec *injection = injection_at(site);
  box.data = data;
  box.bytes = bytes;
  box.crc = (verify_enabled() || injection != nullptr)
                ? payload_crc(data, bytes)
                : 0;
  // Sender-side injection rides with the message as a directive: the
  // rendezvous gives the receiver the sender's *live* buffer, so a flip
  // must happen on the receiving side (the sender's bytes stay clean for
  // the retransmits that model the retry healing).
  box.inject_corrupt_attempts = 0;
  box.inject_flaky_attempts = 0;
  if (injection != nullptr && injection->kind == FaultSpec::Kind::Corrupt)
    box.inject_corrupt_attempts =
        injection->sticky ? std::numeric_limits<std::uint64_t>::max() : 1;
  else if (injection != nullptr && injection->kind == FaultSpec::Kind::Flaky)
    box.inject_flaky_attempts = injection->attempts;
  box.posted = true;
  box.cv.notify_all();
  // Rendezvous: return only after the receiver copied the payload.  If the
  // receiver dies first, the posted pointer must be withdrawn before this
  // stack frame unwinds.
  while (box.posted) {
    if (shared_.aborted.load(std::memory_order_acquire)) {
      box.posted = false;
      box.data = nullptr;
      throw RankAborted();
    }
    if (shared_.dead_count.load(std::memory_order_acquire) > acked_deaths_) {
      box.posted = false;
      box.data = nullptr;
      throw_failed();
    }
    if (watchdog.expired()) {
      box.posted = false;
      box.data = nullptr;
      throw_timeout();
    }
    box.cv.wait_for(lock, watchdog.clamp(backoff.next()));
  }
}

void Communicator::recv_bytes(void *buffer, std::size_t bytes, int source) {
  RIPPLES_ASSERT(source >= 0 && source < size());
  RIPPLES_ASSERT_MSG(source != my_index_, "self-receive would deadlock");
  const int source_world = members_[static_cast<std::size_t>(source)];
  const std::uint64_t site = begin_collective(Collective::Recv);
  record(Collective::Recv, bytes);
  trace::Span span("mpsim", "mpsim.recv", "bytes", bytes, "peer",
                   static_cast<std::uint64_t>(source_world));
  const FaultSpec *own = injection_at(site);
  detail::Mailbox &box = shared_.mailbox(source_world, world_rank_);
  std::unique_lock<std::mutex> lock(box.mutex);
  detail::PollBackoff backoff;
  detail::WatchdogClock watchdog(shared_.options.watchdog);
  for (int attempt = 1;; ++attempt) {
    while (!box.posted) {
      if (shared_.aborted.load(std::memory_order_acquire)) throw RankAborted();
      if (shared_.dead_count.load(std::memory_order_acquire) > acked_deaths_) {
        lock.unlock();
        std::lock_guard<std::mutex> central(shared_.mutex);
        if (!shared_.alive[static_cast<std::size_t>(world_rank_)])
          throw declared_dead_error(world_rank_);
        throw shared_.rank_failed_since_locked(acked_deaths_);
      }
      if (watchdog.expired()) {
        if (metrics::enabled()) timeouts_counter().increment();
        throw CollectiveTimeout("recv", site, {source_world},
                                watchdog.elapsed());
      }
      box.cv.wait_for(lock, watchdog.clamp(backoff.next()));
    }
    RIPPLES_ASSERT_MSG(box.bytes == bytes,
                       "recv buffer size must match the sent payload");
    if (bytes > 0) std::memcpy(buffer, box.data, bytes);
    // Dirty-link injection lands on the receiving copy: this rank's own
    // planned corruption, or the sender's posted directive.  One flip even
    // when both are active — two flips at the same bit would cancel.
    const bool own_corrupt = own != nullptr &&
                             own->kind == FaultSpec::Kind::Corrupt &&
                             (attempt == 1 || own->sticky);
    const bool link_corrupt =
        static_cast<std::uint64_t>(attempt) <= box.inject_corrupt_attempts;
    if ((own_corrupt || link_corrupt) && bytes > 0) {
      const std::uint64_t bit = site % (static_cast<std::uint64_t>(bytes) * 8);
      static_cast<std::uint8_t *>(buffer)[bit / 8] ^=
          static_cast<std::uint8_t>(1u << (bit % 8));
      if (metrics::enabled()) injected_corruptions_counter().increment();
      trace::instant("mpsim", "mpsim.fault_corrupt", "rank",
                     static_cast<std::uint64_t>(world_rank_), "site", site);
    }
    auto consume = [&] {
      box.posted = false;
      box.data = nullptr;
      box.cv.notify_all();
    };
    if (!verify_enabled()) {
      // Unverified: whatever the copy now holds is the message.  Injected
      // corruption is deliberately silent here — the wrong bytes reach the
      // caller, which is exactly what the verification layer exists to stop.
      consume();
      return;
    }
    const bool own_flaky = own != nullptr &&
                           own->kind == FaultSpec::Kind::Flaky &&
                           static_cast<std::uint64_t>(attempt) <= own->attempts;
    const bool link_flaky =
        static_cast<std::uint64_t>(attempt) <= box.inject_flaky_attempts;
    bool corrupt;
    if (own_flaky || link_flaky) {
      corrupt = true;
      if (metrics::enabled()) injected_flaky_counter().increment();
      trace::instant("mpsim", "mpsim.fault_flaky", "rank",
                     static_cast<std::uint64_t>(world_rank_), "site", site);
    } else {
      if (metrics::enabled()) integrity_checks_counter().increment();
      corrupt = payload_crc(buffer, bytes) != box.crc;
    }
    if (!corrupt) {
      consume();
      return;
    }
    if (metrics::enabled()) integrity_detections_counter().increment();
    trace::instant("mpsim", "mpsim.payload_corrupt", "site", site, "attempt",
                   static_cast<std::uint64_t>(attempt));
    if (attempt == kMaxVerifyAttempts) {
      if (metrics::enabled()) integrity_escalations_counter().increment();
      trace::instant("mpsim", "mpsim.corruption_escalated", "site", site,
                     "rank", static_cast<std::uint64_t>(world_rank_));
      // Attribution: a sticky fault on this rank's own recv site (or its
      // own still-failing flaky) is self-inflicted; otherwise the sender
      // produced the bad bytes and is escalated like any corrupter.
      const bool self_inflicted =
          own_flaky || (own != nullptr &&
                        own->kind == FaultSpec::Kind::Corrupt && own->sticky);
      if (self_inflicted)
        throw PayloadCorrupt("recv", site, world_rank_, attempt);
      if (shared_.options.recover) {
        lock.unlock();
        std::unique_lock<std::mutex> central(shared_.mutex);
        shared_.mark_dead_locked(source_world);
        RankFailed failure = shared_.rank_failed_since_locked(acked_deaths_);
        central.unlock();
        shared_.wake_everyone();
        throw failure;
      }
      throw PayloadCorrupt("send", site, source_world, attempt);
    }
    // Retry against the sender's still-posted buffer (the rendezvous keeps
    // it live until we consume), off the lock so the sender's own failure
    // checks stay responsive.
    lock.unlock();
    note_retry(Collective::Recv, site, attempt);
    backoff_sleep(attempt);
    lock.lock();
  }
}

// --- Steal channel ----------------------------------------------------------
//
// Nonblocking by construction: every operation is lock-then-go on one queue
// mutex (steal_acquire touches the victim's queue first, its own second —
// acyclic because thieves never hold another queue while taking a victim's).
// No rendezvous means no watchdog is needed here; a rank that dies at a
// steal site is diagnosed by the phase's next real collective, where the
// standard watchdog/eviction machinery already applies.

void Communicator::steal_publish(std::span<const StealItem> items) {
  const std::uint64_t site = begin_collective(Collective::Steal);
  record(Collective::Steal, items.size() * sizeof(StealItem));
  trace::Span span("mpsim", "mpsim.steal_publish", "items", items.size(),
                   "site", site);
  const FaultSpec *injection = injection_at(site);
  const bool checksum = verify_enabled() || injection != nullptr;
  detail::StealQueue &queue =
      shared_.steal_queues[static_cast<std::size_t>(world_rank_)];
  std::lock_guard<std::mutex> lock(queue.mutex);
  queue.slots.clear();
  for (const StealItem &item : items)
    queue.slots.push_back({item, checksum ? item_crc(item) : 0});
  queue.read_flip_mask = 0;
  queue.flaky_remaining = 0;
  if (injection == nullptr || queue.slots.empty()) return;
  if (injection->kind == FaultSpec::Kind::Corrupt) {
    if (injection->sticky) {
      // Storage corruption: the stored item itself is damaged (its CRC was
      // taken before the flip), so every read attempt fails until a
      // consumer exhausts its budget and escalates against this rank.
      queue.slots.front().item.tag ^= std::uint64_t{1} << (site % 64);
      if (metrics::enabled()) injected_corruptions_counter().increment();
      trace::instant("mpsim", "mpsim.fault_corrupt", "rank",
                     static_cast<std::uint64_t>(world_rank_), "site", site);
    } else {
      // Dirty link: the next read attempt sees a flipped copy, once.
      queue.read_flip_mask = std::uint64_t{1} << (site % 64);
    }
  } else {
    queue.flaky_remaining = injection->attempts;
  }
}

bool Communicator::steal_pop(StealItem &out) {
  detail::StealQueue &queue =
      shared_.steal_queues[static_cast<std::size_t>(world_rank_)];
  for (int attempt = 1;; ++attempt) {
    {
      std::lock_guard<std::mutex> lock(queue.mutex);
      if (queue.slots.empty()) return false;
      const detail::StealQueue::Slot &slot = queue.slots.front();
      StealItem candidate = slot.item;
      if (queue.read_flip_mask != 0) {
        candidate.tag ^= queue.read_flip_mask;
        queue.read_flip_mask = 0;
        if (metrics::enabled()) injected_corruptions_counter().increment();
        trace::instant("mpsim", "mpsim.fault_corrupt", "rank",
                       static_cast<std::uint64_t>(world_rank_), "site",
                       site_counter_);
      }
      bool corrupt = false;
      if (verify_enabled()) {
        if (queue.flaky_remaining > 0) {
          --queue.flaky_remaining;
          corrupt = true;
          if (metrics::enabled()) injected_flaky_counter().increment();
        } else {
          if (metrics::enabled()) integrity_checks_counter().increment();
          corrupt = item_crc(candidate) != slot.crc;
        }
      }
      if (!corrupt) {
        out = candidate;
        queue.slots.pop_front();
        return true;
      }
      if (metrics::enabled()) integrity_detections_counter().increment();
      if (attempt == kMaxVerifyAttempts) {
        // Whatever poisoned this rank's own queue — its own published
        // storage corruption or still-failing flaky budget — is charged to
        // this rank: it dies with the diagnosis and healing regenerates its
        // unexecuted ranges from RNG coordinates.
        if (metrics::enabled()) integrity_escalations_counter().increment();
        trace::instant("mpsim", "mpsim.corruption_escalated", "site",
                       site_counter_, "rank",
                       static_cast<std::uint64_t>(world_rank_));
        throw PayloadCorrupt("steal", site_counter_, world_rank_, attempt);
      }
    }
    note_retry(Collective::Steal, site_counter_, attempt);
    backoff_sleep(attempt);
  }
}

bool Communicator::steal_acquire(StealItem &out, std::uint64_t victim_offset) {
  const std::uint64_t site = begin_collective(Collective::Steal);
  const FaultSpec *own = injection_at(site);
  const std::size_t p = members_.size();
  if (p <= 1) return false;
  const auto me = static_cast<std::size_t>(my_index_);
  for (std::size_t off = 0; off < p; ++off) {
    const std::size_t victim_index =
        (me + 1 + static_cast<std::size_t>(victim_offset % p) + off) % p;
    if (victim_index == me) continue;
    const int victim_world = members_[victim_index];
    detail::StealQueue &victim =
        shared_.steal_queues[static_cast<std::size_t>(victim_world)];
    for (int attempt = 1;; ++attempt) {
      // Copy the split out of the victim's lock before touching our own
      // queue; holding two queue mutexes at once would require a global
      // locking order the thieves cannot agree on.  Verification happens
      // under the same lock so the split is only erased once it verified —
      // a corrupt read leaves the victim's queue intact for the retry.
      std::vector<detail::StealQueue::Slot> taken;
      bool empty = false;
      bool corrupt = false;
      bool self_inflicted = false;
      {
        std::lock_guard<std::mutex> lock(victim.mutex);
        const std::size_t n = victim.slots.size();
        if (n == 0) {
          empty = true;
        } else {
          const std::size_t keep = n - (n + 1) / 2; // thief takes ceil(n/2)
          taken.assign(victim.slots.begin() + static_cast<std::ptrdiff_t>(keep),
                       victim.slots.end());
          // Dirty-link injection on the thief's copy: this rank's own
          // planned corruption or the victim's one-shot publish directive
          // (consumed by this attempt).  One flip even when both are live.
          const bool own_corrupt = own != nullptr &&
                                   own->kind == FaultSpec::Kind::Corrupt &&
                                   (attempt == 1 || own->sticky);
          const bool link_corrupt = victim.read_flip_mask != 0;
          if (own_corrupt || link_corrupt) {
            const std::uint64_t mask = link_corrupt
                                           ? victim.read_flip_mask
                                           : std::uint64_t{1} << (site % 64);
            victim.read_flip_mask = 0;
            taken.front().item.tag ^= mask;
            if (metrics::enabled()) injected_corruptions_counter().increment();
            trace::instant("mpsim", "mpsim.fault_corrupt", "rank",
                           static_cast<std::uint64_t>(world_rank_), "site",
                           site);
          }
          if (verify_enabled()) {
            bool flaky = false;
            if (victim.flaky_remaining > 0) {
              --victim.flaky_remaining;
              flaky = true;
            } else if (own != nullptr &&
                       own->kind == FaultSpec::Kind::Flaky &&
                       static_cast<std::uint64_t>(attempt) <= own->attempts) {
              flaky = true;
              self_inflicted = true;
            }
            if (flaky) {
              corrupt = true;
              if (metrics::enabled()) injected_flaky_counter().increment();
              trace::instant("mpsim", "mpsim.fault_flaky", "rank",
                             static_cast<std::uint64_t>(world_rank_), "site",
                             site);
            } else {
              if (metrics::enabled())
                integrity_checks_counter().add(taken.size());
              for (const detail::StealQueue::Slot &slot : taken)
                if (item_crc(slot.item) != slot.crc) corrupt = true;
              self_inflicted = own != nullptr &&
                               own->kind == FaultSpec::Kind::Corrupt &&
                               own->sticky;
            }
          }
          if (!corrupt)
            victim.slots.erase(
                victim.slots.begin() + static_cast<std::ptrdiff_t>(keep),
                victim.slots.end());
        }
      }
      if (empty) break; // next victim
      if (!corrupt) {
        record(Collective::Steal, taken.size() * sizeof(StealItem));
        trace::instant("mpsim", "mpsim.steal_acquire", "victim",
                       static_cast<std::uint64_t>(victim_world), "items",
                       static_cast<std::uint64_t>(taken.size()));
        out = taken.front().item;
        if (taken.size() > 1) {
          detail::StealQueue &mine =
              shared_.steal_queues[static_cast<std::size_t>(world_rank_)];
          std::lock_guard<std::mutex> lock(mine.mutex);
          // Back of our queue: peers split from the back, so the surplus
          // stays re-stealable ahead of our own front-pop order.  The CRCs
          // travel with the items for later verification.
          mine.slots.insert(mine.slots.end(), taken.begin() + 1, taken.end());
        }
        return true;
      }
      if (metrics::enabled()) integrity_detections_counter().increment();
      trace::instant("mpsim", "mpsim.payload_corrupt", "site", site, "attempt",
                     static_cast<std::uint64_t>(attempt));
      if (attempt == kMaxVerifyAttempts) {
        if (metrics::enabled()) integrity_escalations_counter().increment();
        trace::instant("mpsim", "mpsim.corruption_escalated", "site", site,
                       "rank", static_cast<std::uint64_t>(world_rank_));
        if (self_inflicted)
          throw PayloadCorrupt("steal", site, world_rank_, attempt);
        // The victim's stored items are damaged: charge the victim.  Its
        // queue drops out of the scan at the next shrink, and healing
        // regenerates the unexecuted ranges from RNG coordinates.
        if (shared_.options.recover) {
          std::unique_lock<std::mutex> central(shared_.mutex);
          shared_.mark_dead_locked(victim_world);
          RankFailed failure = shared_.rank_failed_since_locked(acked_deaths_);
          central.unlock();
          shared_.wake_everyone();
          throw failure;
        }
        throw PayloadCorrupt("steal", site, victim_world, attempt);
      }
      note_retry(Collective::Steal, site, attempt);
      backoff_sleep(attempt);
    }
  }
  return false;
}

// --- Context ----------------------------------------------------------------

void Context::run(int num_ranks,
                  const std::function<void(Communicator &)> &rank_main) {
  RunOptions options;
  options.num_ranks = num_ranks;
  run(options, rank_main);
}

void Context::run(const RunOptions &options_in,
                  const std::function<void(Communicator &)> &rank_main) {
  RunOptions options = options_in;
  RIPPLES_ASSERT(options.num_ranks >= 1);
  if (options.faults.empty()) options.faults = fault_plan_from_env();
  if (options.watchdog.count() == 0) options.watchdog = watchdog_from_env();
  if (!options.verify_collectives)
    options.verify_collectives = verify_collectives_from_env();

  detail::SharedState shared(options);

  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto record_error = [&] {
    std::lock_guard<std::mutex> lock(error_mutex);
    if (!first_error) first_error = std::current_exception();
  };

  auto rank_body = [&](int rank) {
    // Rank identity for the tracer: events from this thread (and its scope)
    // group under trace process `rank`.  RankScope restores the previous
    // rank on exit — rank 0 runs on the calling thread, which may have its
    // own identity.
    trace::RankScope rank_scope(rank);
    trace::Span rank_span("mpsim", "mpsim.rank", "rank",
                          static_cast<std::uint64_t>(rank));
    Communicator comm(rank, options.num_ranks, shared);
    try {
      rank_main(comm);
      std::lock_guard<std::mutex> lock(shared.mutex);
      ++shared.completed;
    } catch (const RankAborted &) {
      // This rank was unwound by the abort protocol; the rank that failed
      // already recorded the original exception.  (A RankAborted thrown
      // directly by user code is indistinguishable and treated the same:
      // the fallback in run() still surfaces an error.)
      shared.abort();
    } catch (const CollectiveTimeout &) {
      // A stall diagnosis is never survivable: the laggard is still holding
      // a thread and possibly locks, so the only safe exit is a global
      // abort carrying the diagnosis.
      record_error();
      shared.abort();
    } catch (...) {
      record_error();
      if (options.recover) {
        // Survivable failure: record the death and let the peers observe
        // RankFailed, shrink, and continue.  (A RankFailed escaping
        // rank_main lands here too — user code that does not recover
        // simply becomes another casualty.)
        shared.mark_dead(comm.world_rank());
      } else {
        // Wake and unwind every peer: a blocked rank would otherwise wait
        // forever for this rank's next barrier arrival or message.
        shared.abort();
      }
    }
  };

  std::vector<std::thread> ranks;
  ranks.reserve(static_cast<std::size_t>(options.num_ranks) - 1);
  for (int r = 1; r < options.num_ranks; ++r) ranks.emplace_back(rank_body, r);
  rank_body(0);
  for (std::thread &t : ranks) t.join();

  if (shared.aborted.load(std::memory_order_acquire)) {
    if (!first_error) first_error = std::make_exception_ptr(RankAborted());
    std::rethrow_exception(first_error);
  }
  // Recovery mode: the run succeeded if anyone made it to the end; the
  // first original exception surfaces only when every rank died.
  if (shared.completed == 0 && first_error)
    std::rethrow_exception(first_error);
}

} // namespace ripples::mpsim
