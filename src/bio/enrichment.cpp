#include "bio/enrichment.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"

namespace ripples::bio {

PathwayDatabase synthesize_pathways(const ExpressionMatrix &matrix,
                                    const PathwayConfig &config) {
  Xoshiro256 rng(config.seed);
  PathwayDatabase database;

  // Collect members per planted module.
  std::uint32_t num_modules = 0;
  for (std::uint32_t f = 0; f < matrix.num_features(); ++f)
    if (matrix.module_of(f) != ExpressionMatrix::kBackground)
      num_modules = std::max(num_modules, matrix.module_of(f) + 1);
  std::vector<std::vector<std::uint32_t>> module_members(num_modules);
  for (std::uint32_t f = 0; f < matrix.num_features(); ++f)
    if (matrix.module_of(f) != ExpressionMatrix::kBackground)
      module_members[matrix.module_of(f)].push_back(f);

  // Module-aligned pathways: random subsets of one module each.
  for (std::uint32_t m = 0; m < num_modules; ++m) {
    const auto &members = module_members[m];
    if (members.empty()) continue;
    auto subset_size = static_cast<std::size_t>(
        std::max(1.0, config.member_fraction * static_cast<double>(members.size())));
    for (std::uint32_t i = 0; i < config.pathways_per_module; ++i) {
      std::vector<std::uint32_t> pool = members;
      // Partial Fisher-Yates: the first subset_size entries are the sample.
      for (std::size_t j = 0; j < subset_size; ++j) {
        std::size_t pick = j + uniform_index(rng, pool.size() - j);
        std::swap(pool[j], pool[pick]);
      }
      pool.resize(subset_size);
      std::sort(pool.begin(), pool.end());
      database.pathways.push_back(
          {"module" + std::to_string(m) + "_pathway" + std::to_string(i),
           std::move(pool)});
    }
  }

  // Null pathways: random feature sets, unrelated to any module.
  for (std::uint32_t i = 0; i < config.num_random_pathways; ++i) {
    std::unordered_set<std::uint32_t> chosen;
    while (chosen.size() < config.random_pathway_size &&
           chosen.size() < matrix.num_features())
      chosen.insert(
          static_cast<std::uint32_t>(uniform_index(rng, matrix.num_features())));
    std::vector<std::uint32_t> members(chosen.begin(), chosen.end());
    std::sort(members.begin(), members.end());
    database.pathways.push_back(
        {"random_pathway" + std::to_string(i), std::move(members)});
  }
  return database;
}

namespace {

double log_choose(std::uint32_t n, std::uint32_t k) {
  if (k > n) return -std::numeric_limits<double>::infinity();
  return std::lgamma(static_cast<double>(n) + 1) -
         std::lgamma(static_cast<double>(k) + 1) -
         std::lgamma(static_cast<double>(n - k) + 1);
}

} // namespace

double fisher_exact_upper_tail(std::uint32_t overlap,
                               std::uint32_t selected_size,
                               std::uint32_t pathway_size,
                               std::uint32_t universe) {
  RIPPLES_ASSERT(selected_size <= universe && pathway_size <= universe);
  RIPPLES_ASSERT(overlap <= std::min(selected_size, pathway_size));
  // P(X >= overlap) with X ~ Hypergeometric(universe, pathway_size,
  // selected_size), summed in log space for numerical robustness.
  const double log_denominator = log_choose(universe, selected_size);
  double tail = 0.0;
  const std::uint32_t max_overlap = std::min(selected_size, pathway_size);
  for (std::uint32_t x = overlap; x <= max_overlap; ++x) {
    if (selected_size - x > universe - pathway_size) continue; // infeasible
    double log_p = log_choose(pathway_size, x) +
                   log_choose(universe - pathway_size, selected_size - x) -
                   log_denominator;
    tail += std::exp(log_p);
  }
  return std::min(1.0, tail);
}

std::vector<double> benjamini_hochberg(std::span<const double> p_values) {
  const std::size_t m = p_values.size();
  std::vector<std::size_t> order(m);
  for (std::size_t i = 0; i < m; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return p_values[a] < p_values[b]; });

  // Adjusted p of the i-th smallest is min over j >= i of p_(j) * m / (j+1).
  std::vector<double> adjusted(m);
  double running_min = 1.0;
  for (std::size_t rank = m; rank-- > 0;) {
    double candidate = p_values[order[rank]] * static_cast<double>(m) /
                       static_cast<double>(rank + 1);
    running_min = std::min(running_min, candidate);
    adjusted[order[rank]] = std::min(1.0, running_min);
  }
  return adjusted;
}

std::vector<EnrichmentRow> enrich(std::span<const std::uint32_t> selected,
                                  const PathwayDatabase &database,
                                  std::uint32_t universe) {
  std::vector<std::uint32_t> sorted_selected(selected.begin(), selected.end());
  std::sort(sorted_selected.begin(), sorted_selected.end());
  sorted_selected.erase(
      std::unique(sorted_selected.begin(), sorted_selected.end()),
      sorted_selected.end());

  std::vector<double> p_values;
  std::vector<EnrichmentRow> rows;
  p_values.reserve(database.pathways.size());
  rows.reserve(database.pathways.size());
  for (std::uint32_t idx = 0; idx < database.pathways.size(); ++idx) {
    const Pathway &pathway = database.pathways[idx];
    std::uint32_t overlap = 0;
    for (std::uint32_t member : pathway.members)
      if (std::binary_search(sorted_selected.begin(), sorted_selected.end(),
                             member))
        ++overlap;
    double p = fisher_exact_upper_tail(
        overlap, static_cast<std::uint32_t>(sorted_selected.size()),
        static_cast<std::uint32_t>(pathway.members.size()), universe);
    p_values.push_back(p);
    rows.push_back({idx, overlap, p, 1.0});
  }

  std::vector<double> adjusted = benjamini_hochberg(p_values);
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i].p_adjusted = adjusted[i];
  std::sort(rows.begin(), rows.end(), [](const EnrichmentRow &a,
                                         const EnrichmentRow &b) {
    return a.p_adjusted < b.p_adjusted ||
           (a.p_adjusted == b.p_adjusted && a.pathway_index < b.pathway_index);
  });
  return rows;
}

std::size_t count_significant(std::span<const EnrichmentRow> rows, double alpha) {
  std::size_t count = 0;
  for (const EnrichmentRow &row : rows)
    if (row.p_adjusted < alpha) ++count;
  return count;
}

} // namespace ripples::bio
