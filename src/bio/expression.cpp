#include "bio/expression.hpp"

#include <cmath>

#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"

namespace ripples::bio {

namespace {

/// Standard normal draw via Box-Muller (one value per call; the discarded
/// second value keeps the code simple — generation is not a hot path).
double standard_normal(Xoshiro256 &rng) {
  double u1 = 0.0;
  do {
    u1 = uniform_unit(rng);
  } while (u1 <= 0.0);
  double u2 = uniform_unit(rng);
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

} // namespace

ExpressionMatrix synthesize_expression(const ExpressionConfig &config) {
  RIPPLES_ASSERT(config.num_features >= 2 && config.num_samples >= 2);
  RIPPLES_ASSERT(config.num_modules >= 1);
  RIPPLES_ASSERT(config.module_correlation > 0.0 && config.module_correlation < 1.0);
  RIPPLES_ASSERT(config.module_fraction >= 0.0 && config.module_fraction <= 1.0);

  Xoshiro256 rng(config.seed);
  ExpressionMatrix matrix(config.num_features, config.num_samples);

  // Latent factor trajectory per module.
  std::vector<double> latent(static_cast<std::size_t>(config.num_modules) *
                             config.num_samples);
  for (double &z : latent) z = standard_normal(rng);

  const auto num_module_features = static_cast<std::uint32_t>(
      config.module_fraction * config.num_features);
  const double rho = config.module_correlation;
  const double signal = std::sqrt(rho);
  const double noise = std::sqrt(1.0 - rho);

  for (std::uint32_t f = 0; f < config.num_features; ++f) {
    if (f < num_module_features) {
      // Round-robin module assignment keeps module sizes balanced.
      std::uint32_t m = f % config.num_modules;
      matrix.set_module(f, m);
      // Half the members load negatively: co-expression networks built from
      // |correlation| must still find them, which exercises the inference
      // path for anti-correlated regulation.
      double sign = (f / config.num_modules) % 2 == 0 ? 1.0 : -1.0;
      const double *z = latent.data() +
                        static_cast<std::size_t>(m) * config.num_samples;
      for (std::uint32_t s = 0; s < config.num_samples; ++s)
        matrix.at(f, s) = sign * signal * z[s] + noise * standard_normal(rng);
    } else {
      for (std::uint32_t s = 0; s < config.num_samples; ++s)
        matrix.at(f, s) = standard_normal(rng);
    }
  }
  return matrix;
}

} // namespace ripples::bio
