/// \file enrichment.hpp
/// \brief Pathway enrichment: Fisher's exact test + Benjamini-Hochberg.
///
/// Section 5 compares selection methods by "functional enrichment in which
/// Fisher's exact test was applied to pathways ... from the MSIG database"
/// and counts pathways "enriched with adjusted p < 0.05".  This module
/// implements that statistical pipeline from scratch — hypergeometric
/// upper-tail Fisher test and BH false-discovery-rate adjustment — plus a
/// synthetic pathway database aligned with the planted expression modules
/// so the enrichment counts have a known ground truth.
#ifndef RIPPLES_BIO_ENRICHMENT_HPP
#define RIPPLES_BIO_ENRICHMENT_HPP

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bio/expression.hpp"

namespace ripples::bio {

/// A named gene/feature set.
struct Pathway {
  std::string name;
  std::vector<std::uint32_t> members; ///< sorted feature ids
};

struct PathwayDatabase {
  std::vector<Pathway> pathways;
};

struct PathwayConfig {
  /// Module-aligned ("true biology") pathways per planted module.
  std::uint32_t pathways_per_module = 3;
  /// Fraction of each module sampled into one of its pathways.
  double member_fraction = 0.5;
  /// Unrelated pathways of random features (the null set).
  std::uint32_t num_random_pathways = 50;
  std::uint32_t random_pathway_size = 40;
  std::uint64_t seed = 7;
};

/// Builds the synthetic MSIG stand-in from the planted module labels.
[[nodiscard]] PathwayDatabase synthesize_pathways(const ExpressionMatrix &matrix,
                                                  const PathwayConfig &config);

/// One-sided Fisher's exact test (hypergeometric upper tail): probability of
/// observing >= \p overlap members of a size-\p pathway_size pathway inside
/// a size-\p selected_size selection drawn from \p universe features.
[[nodiscard]] double fisher_exact_upper_tail(std::uint32_t overlap,
                                             std::uint32_t selected_size,
                                             std::uint32_t pathway_size,
                                             std::uint32_t universe);

/// Benjamini-Hochberg adjusted p-values (same order as the input).
[[nodiscard]] std::vector<double>
benjamini_hochberg(std::span<const double> p_values);

struct EnrichmentRow {
  std::uint32_t pathway_index;
  std::uint32_t overlap;
  double p_value;
  double p_adjusted;
};

/// Tests every pathway against \p selected (feature ids, any order) and
/// returns rows sorted by ascending adjusted p.
[[nodiscard]] std::vector<EnrichmentRow>
enrich(std::span<const std::uint32_t> selected, const PathwayDatabase &database,
       std::uint32_t universe);

/// Number of rows with p_adjusted < alpha — the paper's comparison metric
/// (e.g. "372 pathways enriched with adjusted p < 0.05").
[[nodiscard]] std::size_t count_significant(std::span<const EnrichmentRow> rows,
                                            double alpha = 0.05);

} // namespace ripples::bio

#endif // RIPPLES_BIO_ENRICHMENT_HPP
