#include "bio/inference.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/assert.hpp"

namespace ripples::bio {

double pearson_correlation(const double *x, const double *y,
                           std::uint32_t num_samples) {
  RIPPLES_ASSERT(num_samples >= 2);
  double mean_x = 0, mean_y = 0;
  for (std::uint32_t s = 0; s < num_samples; ++s) {
    mean_x += x[s];
    mean_y += y[s];
  }
  mean_x /= num_samples;
  mean_y /= num_samples;
  double cov = 0, var_x = 0, var_y = 0;
  for (std::uint32_t s = 0; s < num_samples; ++s) {
    double dx = x[s] - mean_x;
    double dy = y[s] - mean_y;
    cov += dx * dy;
    var_x += dx * dx;
    var_y += dy * dy;
  }
  if (var_x <= 0.0 || var_y <= 0.0) return 0.0;
  return cov / std::sqrt(var_x * var_y);
}

EdgeList infer_coexpression_network(const ExpressionMatrix &matrix,
                                    const InferenceConfig &config) {
  RIPPLES_ASSERT(config.edges_per_target >= 1);
  const std::uint32_t num_features = matrix.num_features();
  const std::uint32_t num_samples = matrix.num_samples();

  // Per-target predictor lists, filled independently in parallel.
  std::vector<std::vector<WeightedEdge>> per_target(num_features);
#pragma omp parallel for schedule(dynamic, 16)
  for (std::int64_t tj = 0; tj < static_cast<std::int64_t>(num_features); ++tj) {
    const auto j = static_cast<std::uint32_t>(tj);
    struct Scored {
      float weight;
      std::uint32_t predictor;
    };
    std::vector<Scored> candidates;
    for (std::uint32_t i = 0; i < num_features; ++i) {
      if (i == j) continue;
      double r = pearson_correlation(matrix.row(i), matrix.row(j), num_samples);
      double strength = std::abs(r);
      if (strength < config.min_abs_correlation) continue;
      candidates.push_back({static_cast<float>(strength), i});
    }
    std::size_t keep =
        std::min<std::size_t>(config.edges_per_target, candidates.size());
    std::partial_sort(candidates.begin(),
                      candidates.begin() + static_cast<std::ptrdiff_t>(keep),
                      candidates.end(), [](const Scored &a, const Scored &b) {
                        return a.weight > b.weight ||
                               (a.weight == b.weight && a.predictor < b.predictor);
                      });
    candidates.resize(keep);
    for (const Scored &c : candidates)
      per_target[j].push_back({c.predictor, j, c.weight});
  }

  EdgeList list;
  list.num_vertices = num_features;
  for (const auto &edges : per_target)
    list.edges.insert(list.edges.end(), edges.begin(), edges.end());
  return list;
}

} // namespace ripples::bio
