/// \file expression.hpp
/// \brief Synthetic multi-omics expression matrices with planted modules.
///
/// The paper's Section 5 applies influence maximization to co-expression
/// networks inferred (with GENIE3) from two multi-omics datasets: a soil
/// microbial community (metabolomics + metatranscriptomics) and human tumor
/// samples (proteomics + transcriptomics).  Those datasets are not
/// redistributable, so we synthesize the same *kind* of input: a feature x
/// sample abundance matrix in which groups of features (pathway modules)
/// co-vary through shared latent factors.  Because the modules are planted,
/// downstream analyses have ground truth: enrichment of a selected feature
/// set against module-aligned pathways is checkable, which the paper's real
/// data cannot offer.
#ifndef RIPPLES_BIO_EXPRESSION_HPP
#define RIPPLES_BIO_EXPRESSION_HPP

#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace ripples::bio {

struct ExpressionConfig {
  std::uint32_t num_features = 1000; ///< transcripts + proteins/metabolites
  std::uint32_t num_samples = 60;    ///< experimental conditions
  std::uint32_t num_modules = 12;    ///< planted co-expression modules
  /// Fraction of features assigned to modules (rest is background noise).
  double module_fraction = 0.6;
  /// Within-module correlation strength rho in (0, 1): a module member is
  /// sqrt(rho) * latent + sqrt(1-rho) * noise.
  double module_correlation = 0.7;
  std::uint64_t seed = 42;
};

/// Row-major feature-by-sample matrix plus the planted module labels.
class ExpressionMatrix {
public:
  ExpressionMatrix(std::uint32_t num_features, std::uint32_t num_samples)
      : num_features_(num_features), num_samples_(num_samples),
        values_(static_cast<std::size_t>(num_features) * num_samples, 0.0),
        module_of_(num_features, kBackground) {}

  static constexpr std::uint32_t kBackground = 0xffffffff;

  [[nodiscard]] std::uint32_t num_features() const { return num_features_; }
  [[nodiscard]] std::uint32_t num_samples() const { return num_samples_; }

  [[nodiscard]] double at(std::uint32_t feature, std::uint32_t sample) const {
    RIPPLES_DEBUG_ASSERT(feature < num_features_ && sample < num_samples_);
    return values_[static_cast<std::size_t>(feature) * num_samples_ + sample];
  }
  double &at(std::uint32_t feature, std::uint32_t sample) {
    RIPPLES_DEBUG_ASSERT(feature < num_features_ && sample < num_samples_);
    return values_[static_cast<std::size_t>(feature) * num_samples_ + sample];
  }

  /// Pointer to the contiguous row of one feature.
  [[nodiscard]] const double *row(std::uint32_t feature) const {
    return values_.data() + static_cast<std::size_t>(feature) * num_samples_;
  }

  /// Planted module id of a feature, or kBackground.
  [[nodiscard]] std::uint32_t module_of(std::uint32_t feature) const {
    return module_of_[feature];
  }
  void set_module(std::uint32_t feature, std::uint32_t module) {
    module_of_[feature] = module;
  }

private:
  std::uint32_t num_features_;
  std::uint32_t num_samples_;
  std::vector<double> values_;
  std::vector<std::uint32_t> module_of_;
};

/// Generates the synthetic dataset described above; deterministic in the
/// config seed.
[[nodiscard]] ExpressionMatrix synthesize_expression(const ExpressionConfig &config);

} // namespace ripples::bio

#endif // RIPPLES_BIO_EXPRESSION_HPP
