/// \file inference.hpp
/// \brief Co-expression network inference (the GENIE3 stand-in).
///
/// GENIE3 infers a directed, weighted regulator -> target relevance network
/// from an expression matrix by fitting a random forest per target and
/// ranking predictors by importance.  Its *artifact* — the thing Section 5
/// feeds into IMM — is exactly that weighted digraph.  We produce the same
/// artifact with the classic correlation-relevance method: for each target
/// feature, the predictors with the highest |Pearson correlation| become
/// its in-edges, weighted by |r|.  On linearly co-expressed data (our
/// synthesizer, and to first order real omics data) random-forest
/// importances and |correlation| rank predictors the same way, so the
/// downstream comparison (IMM vs degree vs betweenness on the inferred
/// network) is preserved.
#ifndef RIPPLES_BIO_INFERENCE_HPP
#define RIPPLES_BIO_INFERENCE_HPP

#include <cstdint>

#include "bio/expression.hpp"
#include "graph/types.hpp"

namespace ripples::bio {

struct InferenceConfig {
  /// In-edges kept per target (GENIE3's usual top-K truncation).
  std::uint32_t edges_per_target = 10;
  /// Predictors below this |correlation| are never linked.
  double min_abs_correlation = 0.3;
};

/// Pairwise Pearson correlation of two standardized feature rows.
[[nodiscard]] double pearson_correlation(const double *x, const double *y,
                                         std::uint32_t num_samples);

/// Infers the weighted relevance digraph: edge (i -> j) with weight |r_ij|
/// for the top predictors i of each target j.  OpenMP-parallel over
/// targets; deterministic.
[[nodiscard]] EdgeList infer_coexpression_network(const ExpressionMatrix &matrix,
                                                  const InferenceConfig &config);

} // namespace ripples::bio

#endif // RIPPLES_BIO_INFERENCE_HPP
