#include "diffusion/simulate.hpp"

#include <cmath>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/philox.hpp"
#include "support/assert.hpp"
#include "support/bitvector.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace ripples {

namespace {

/// Registry accounting for completed trials and their activation counts.
/// The LogHistogram is atomic, so concurrent trials record directly.
void count_trials(std::uint64_t trials) {
  if (!metrics::enabled()) return;
  static metrics::Counter &counter =
      metrics::Registry::instance().counter("diffusion.trials");
  counter.add(trials);
}

void record_activated(std::size_t activated) {
  if (!metrics::enabled()) return;
  static metrics::LogHistogram &sizes =
      metrics::Registry::instance().histogram("diffusion.activated");
  sizes.record(activated);
}

/// Independent Cascade forward process: BFS where each edge fires once with
/// its own probability.
std::size_t simulate_ic(const CsrGraph &graph, std::span<const vertex_t> seeds,
                        Philox4x32 &rng) {
  BitVector active(graph.num_vertices());
  std::vector<vertex_t> frontier;
  frontier.reserve(seeds.size());
  std::size_t activated = 0;
  for (vertex_t s : seeds) {
    if (active.test_and_set(s)) {
      frontier.push_back(s);
      ++activated;
    }
  }
  std::vector<vertex_t> next;
  while (!frontier.empty()) {
    next.clear();
    for (vertex_t u : frontier) {
      for (const Adjacency &out : graph.out_neighbors(u)) {
        if (active.test(out.vertex)) continue;
        if (!bernoulli(rng, out.weight)) continue;
        active.set(out.vertex);
        next.push_back(out.vertex);
        ++activated;
      }
    }
    frontier.swap(next);
  }
  return activated;
}

/// Linear Threshold forward process: vertex v holds a uniform threshold; it
/// activates once the accumulated weight of its active in-neighbors reaches
/// it.  Thresholds are drawn lazily on first contact, which is equivalent to
/// drawing them all upfront and costs O(active subgraph) instead of O(n).
std::size_t simulate_lt(const CsrGraph &graph, std::span<const vertex_t> seeds,
                        Philox4x32 &rng) {
  const vertex_t n = graph.num_vertices();
  BitVector active(n);
  BitVector has_threshold(n);
  std::vector<float> threshold(n, 0.0f);
  std::vector<float> accumulated(n, 0.0f);

  std::vector<vertex_t> frontier;
  std::size_t activated = 0;
  for (vertex_t s : seeds) {
    if (active.test_and_set(s)) {
      frontier.push_back(s);
      ++activated;
    }
  }
  std::vector<vertex_t> next;
  while (!frontier.empty()) {
    next.clear();
    for (vertex_t u : frontier) {
      for (const Adjacency &out : graph.out_neighbors(u)) {
        vertex_t v = out.vertex;
        if (active.test(v)) continue;
        if (has_threshold.test_and_set(v))
          threshold[v] = static_cast<float>(uniform_unit(rng));
        accumulated[v] += out.weight;
        if (accumulated[v] >= threshold[v]) {
          active.set(v);
          next.push_back(v);
          ++activated;
        }
      }
    }
    frontier.swap(next);
  }
  return activated;
}

} // namespace

std::size_t simulate_diffusion(const CsrGraph &graph,
                               std::span<const vertex_t> seeds,
                               DiffusionModel model, std::uint64_t seed) {
  for (vertex_t s : seeds) RIPPLES_ASSERT(s < graph.num_vertices());
  trace::Span span("diffusion", "diffusion.simulate", "seeds", seeds.size());
  Philox4x32 rng(seed, /*counter_hi=*/0);
  std::size_t activated = model == DiffusionModel::IndependentCascade
                              ? simulate_ic(graph, seeds, rng)
                              : simulate_lt(graph, seeds, rng);
  count_trials(1);
  record_activated(activated);
  span.arg("activated", activated);
  return activated;
}

InfluenceEstimate estimate_influence(const CsrGraph &graph,
                                     std::span<const vertex_t> seeds,
                                     DiffusionModel model, std::uint32_t trials,
                                     std::uint64_t seed) {
  RIPPLES_ASSERT(trials > 0);
  for (vertex_t s : seeds) RIPPLES_ASSERT(s < graph.num_vertices());
  trace::Span span("diffusion", "diffusion.estimate", "trials", trials,
                   "seeds", seeds.size());

  double sum = 0, sum_squares = 0;
#pragma omp parallel for schedule(dynamic, 8) reduction(+ : sum, sum_squares)
  for (std::uint32_t t = 0; t < trials; ++t) {
    // Stream t of key `seed`: the result is independent of the OpenMP
    // schedule and thread count.
    Philox4x32 rng(seed, /*counter_hi=*/t + 1);
    std::size_t size = model == DiffusionModel::IndependentCascade
                           ? simulate_ic(graph, seeds, rng)
                           : simulate_lt(graph, seeds, rng);
    record_activated(size);
    auto x = static_cast<double>(size);
    sum += x;
    sum_squares += x * x;
  }
  count_trials(trials);

  InfluenceEstimate estimate;
  estimate.trials = trials;
  estimate.mean = sum / trials;
  if (trials > 1) {
    double variance =
        (sum_squares - sum * sum / trials) / (static_cast<double>(trials) - 1);
    estimate.std_error = std::sqrt(std::max(0.0, variance) / trials);
  }
  return estimate;
}

} // namespace ripples
