/// \file model.hpp
/// \brief The two network diffusion models of the paper (Section 3).
#ifndef RIPPLES_DIFFUSION_MODEL_HPP
#define RIPPLES_DIFFUSION_MODEL_HPP

#include <string>

namespace ripples {

/// \li IndependentCascade: an activated vertex u has a one-shot chance to
///     activate each inactive out-neighbor v, succeeding with p(u->v).
/// \li LinearThreshold: vertex v activates when the weight of its active
///     in-neighbors exceeds a uniform random threshold; equivalently (live-
///     edge formulation) v pre-selects at most one in-edge with probability
///     equal to its weight.
enum class DiffusionModel { IndependentCascade, LinearThreshold };

[[nodiscard]] const char *to_string(DiffusionModel model);

/// Parses "IC"/"LT" (and long names, case-insensitive).  Exits with a
/// diagnostic on anything else — model strings only come from command lines.
[[nodiscard]] DiffusionModel parse_model(const std::string &name);

} // namespace ripples

#endif // RIPPLES_DIFFUSION_MODEL_HPP
