#include "diffusion/model.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace ripples {

const char *to_string(DiffusionModel model) {
  switch (model) {
  case DiffusionModel::IndependentCascade: return "IC";
  case DiffusionModel::LinearThreshold: return "LT";
  }
  return "?";
}

DiffusionModel parse_model(const std::string &name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "ic" || lower == "independentcascade" ||
      lower == "independent-cascade")
    return DiffusionModel::IndependentCascade;
  if (lower == "lt" || lower == "linearthreshold" || lower == "linear-threshold")
    return DiffusionModel::LinearThreshold;
  std::fprintf(stderr, "ripples: unknown diffusion model '%s' (use IC or LT)\n",
               name.c_str());
  std::exit(2);
}

} // namespace ripples
