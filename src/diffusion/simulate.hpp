/// \file simulate.hpp
/// \brief Forward diffusion simulation and Monte-Carlo influence estimation.
///
/// The influence maximization objective is E[|I(S)|] (Definition 1).  IMM
/// never computes it directly, but the evaluation needs it: Figure 1 plots
/// the number of activated vertices achieved by the selected seed sets, and
/// the tests cross-validate the four IMM drivers by comparing the influence
/// of their outputs.  This module implements the forward stochastic process
/// of Section 3 ("a probabilistic variant of BFS from S") for both models
/// and averages it over Monte-Carlo trials.
#ifndef RIPPLES_DIFFUSION_SIMULATE_HPP
#define RIPPLES_DIFFUSION_SIMULATE_HPP

#include <cstdint>
#include <span>

#include "diffusion/model.hpp"
#include "graph/csr.hpp"

namespace ripples {

/// One realization of the diffusion process from \p seeds; returns |I(S)|
/// for that realization.  Deterministic in (graph, seeds, model, seed).
[[nodiscard]] std::size_t simulate_diffusion(const CsrGraph &graph,
                                             std::span<const vertex_t> seeds,
                                             DiffusionModel model,
                                             std::uint64_t seed);

struct InfluenceEstimate {
  double mean = 0;          ///< estimate of E[|I(S)|]
  double std_error = 0;     ///< standard error of the mean
  std::uint32_t trials = 0;
};

/// Averages simulate_diffusion over \p trials Monte-Carlo realizations.
/// Parallelized with OpenMP; trial t draws from Philox stream (seed, t), so
/// the result is bit-identical for any thread count.
[[nodiscard]] InfluenceEstimate
estimate_influence(const CsrGraph &graph, std::span<const vertex_t> seeds,
                   DiffusionModel model, std::uint32_t trials,
                   std::uint64_t seed);

} // namespace ripples

#endif // RIPPLES_DIFFUSION_SIMULATE_HPP
