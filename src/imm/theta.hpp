/// \file theta.hpp
/// \brief The IMM sample-size estimation (Algorithm 2's mathematics).
///
/// IMM removes RIS's user-supplied sample threshold by *estimating* theta,
/// the number of RRR sets needed for the (1 - 1/e - eps) guarantee.
/// Algorithm 2 of the paper is a compressed presentation of the martingale
/// scheme of Tang et al. (SIGMOD 2015), which this module implements with
/// the published constants:
///
///   eps' = sqrt(2) * eps
///   lambda' = (2 + 2/3 eps') * (ln C(n,k) + l ln n + ln log2 n) * n / eps'^2
///   theta_x = lambda' / (n / 2^x)            for x = 1 .. log2(n)
///   accept when n * F_R(S) >= (1 + eps') * (n / 2^x),
///     yielding LB = n * F_R(S) / (1 + eps')
///   alpha = sqrt(l ln n + ln 2)
///   beta  = sqrt((1 - 1/e) (ln C(n,k) + l ln n + ln 2))
///   lambda* = 2 n ((1 - 1/e) alpha + beta)^2 / eps^2
///   theta = lambda* / LB
///
/// F_R(S) is the fraction of RRR sets covered by the greedy seed set S, and
/// n * F_R(S) is the unbiased OPT estimator the paper cites.  l is inflated
/// by (1 + ln 2 / ln n) exactly as Tang et al. do, so the union bound over
/// the estimation and selection phases still yields failure probability
/// <= 1/n^l overall.
#ifndef RIPPLES_IMM_THETA_HPP
#define RIPPLES_IMM_THETA_HPP

#include <cstdint>

namespace ripples {

/// ln C(n, k) computed with log-gamma — exact enough for n up to billions.
[[nodiscard]] double log_binomial(std::uint64_t n, std::uint64_t k);

/// The schedule of sample-count targets used by the estimation loop, plus
/// the final theta computation.  Pure math: no state about R.
class ThetaSchedule {
public:
  ThetaSchedule(std::uint64_t num_vertices, std::uint32_t k, double epsilon,
                double l = 1.0);

  /// Number of doubling iterations available: log2(n) (x in [1, count]).
  [[nodiscard]] std::uint32_t max_iterations() const { return max_iterations_; }

  /// theta_x, the sample-count target of estimation iteration x (1-based).
  [[nodiscard]] std::uint64_t target_samples(std::uint32_t x) const;

  /// Tests the stopping rule for iteration x given the coverage fraction
  /// F_R(S) returned by seed selection.  On success stores the derived
  /// lower bound on OPT.
  [[nodiscard]] bool accept(std::uint32_t x, double coverage_fraction,
                            double *lower_bound) const;

  /// Final sample count theta = lambda* / LB (at least 1).
  [[nodiscard]] std::uint64_t final_theta(double lower_bound) const;

  [[nodiscard]] double epsilon() const { return epsilon_; }
  [[nodiscard]] double epsilon_prime() const { return epsilon_prime_; }
  [[nodiscard]] double lambda_prime() const { return lambda_prime_; }
  [[nodiscard]] double lambda_star() const { return lambda_star_; }

  /// Value reported as the achieved epsilon when certification is impossible
  /// (zero samples survived the budget): effectively "no guarantee".
  static constexpr double kMaxCertifiedEpsilon = 1e4;

private:
  double num_vertices_;
  double epsilon_;
  double epsilon_prime_;
  double lambda_prime_;
  double lambda_star_;
  std::uint32_t max_iterations_;
};

/// The accuracy parameter actually certified by a budget-truncated run
/// (DESIGN.md §12): the smallest eps'' >= \p epsilon whose final sample
/// requirement lambda*(eps'') / \p lower_bound is met by \p achieved
/// samples.  lambda* scales as 1/eps^2 with (n, k, l) fixed, so the answer
/// has the closed form eps * sqrt(lambda*(eps) / (LB * achieved)), clamped
/// below by eps (more samples than needed certify the requested accuracy,
/// up to the final-theta ceil) and above by
/// ThetaSchedule::kMaxCertifiedEpsilon (achieved == 0 certifies nothing).
[[nodiscard]] double certified_epsilon(std::uint64_t num_vertices,
                                       std::uint32_t k, double epsilon,
                                       double l, double lower_bound,
                                       std::uint64_t achieved);

} // namespace ripples

#endif // RIPPLES_IMM_THETA_HPP
