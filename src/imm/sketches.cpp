#include "imm/sketches.hpp"

#include <algorithm>
#include <numeric>

#include "rng/distributions.hpp"
#include "rng/philox.hpp"
#include "rng/splitmix.hpp"
#include "rng/xoshiro.hpp"
#include "support/assert.hpp"
#include "support/bitvector.hpp"

namespace ripples {

namespace {

/// Deterministic liveness of the in-edges of \p v in instance \p instance:
/// every reverse expansion of v in that instance replays the same stream,
/// so an edge's liveness is consistent no matter how many pruned searches
/// touch it.
Philox4x32 instance_stream(std::uint64_t seed, std::uint32_t instance,
                           vertex_t v) {
  return Philox4x32(splitmix64_mix(seed ^ (0xC0FFEEULL + instance)), v);
}

} // namespace

ReachabilitySketches::ReachabilitySketches(const CsrGraph &graph,
                                           const SketchOptions &options)
    : num_instances_(options.num_instances), sketch_size_(options.sketch_size),
      sketches_(graph.num_vertices()) {
  RIPPLES_ASSERT(options.num_instances >= 1);
  RIPPLES_ASSERT(options.sketch_size >= 2);
  const vertex_t n = graph.num_vertices();

  // Rank every (vertex, instance) pair and process in increasing order.
  struct RankedPair {
    float rank;
    vertex_t vertex;
    std::uint32_t instance;
  };
  std::vector<RankedPair> pairs;
  pairs.reserve(static_cast<std::size_t>(n) * num_instances_);
  Xoshiro256 rank_rng(options.seed ^ 0x5eedbeefULL);
  for (std::uint32_t i = 0; i < num_instances_; ++i)
    for (vertex_t v = 0; v < n; ++v)
      pairs.push_back({static_cast<float>(uniform_unit(rank_rng)), v, i});
  std::sort(pairs.begin(), pairs.end(),
            [](const RankedPair &a, const RankedPair &b) {
              return a.rank < b.rank;
            });

  // Reverse searches in increasing rank order.  A full sketch stops
  // *inserting* but the search must still expand through the vertex: its
  // predecessors reach this pair through it and may have sketch space left
  // (pruning the expansion would starve vertices shadowed by hubs and bias
  // their estimates down).
  std::vector<vertex_t> frontier, next;
  BitVector visited(n);
  std::vector<vertex_t> touched;
  for (const RankedPair &pair : pairs) {
    frontier.clear();
    touched.clear();
    auto try_visit = [&](vertex_t u, std::vector<vertex_t> &out) {
      if (!visited.test_and_set(u)) return;
      touched.push_back(u);
      if (sketches_[u].size() < sketch_size_)
        sketches_[u].push_back(pair.rank); // ranks arrive in ascending order
      out.push_back(u);
    };
    try_visit(pair.vertex, frontier);
    while (!frontier.empty()) {
      next.clear();
      for (vertex_t v : frontier) {
        Philox4x32 rng = instance_stream(options.seed, pair.instance, v);
        if (options.model == DiffusionModel::IndependentCascade) {
          for (const Adjacency &in : graph.in_neighbors(v)) {
            bool live = bernoulli(rng, in.weight);
            if (live && !visited.test(in.vertex)) try_visit(in.vertex, next);
          }
        } else {
          // LT live-edge: at most one incoming edge per vertex.
          double x = uniform_unit(rng);
          double cumulative = 0.0;
          for (const Adjacency &in : graph.in_neighbors(v)) {
            cumulative += in.weight;
            if (x < cumulative) {
              if (!visited.test(in.vertex)) try_visit(in.vertex, next);
              break;
            }
          }
        }
      }
      frontier.swap(next);
    }
    for (vertex_t u : touched) visited.clear(u);
  }
}

double ReachabilitySketches::estimate_influence(vertex_t u) const {
  const std::vector<float> &sketch = sketches_[u];
  double total_reachable_pairs;
  if (sketch.size() < sketch_size_) {
    // The search never pruned at u: the count is exact.
    total_reachable_pairs = static_cast<double>(sketch.size());
  } else {
    double tau = sketch.back(); // k-th smallest rank
    total_reachable_pairs = (static_cast<double>(sketch_size_) - 1.0) / tau;
  }
  return total_reachable_pairs / static_cast<double>(num_instances_);
}

std::vector<double> ReachabilitySketches::all_estimates() const {
  std::vector<double> estimates(sketches_.size());
  for (vertex_t v = 0; v < sketches_.size(); ++v)
    estimates[v] = estimate_influence(v);
  return estimates;
}

std::vector<vertex_t> ReachabilitySketches::top_seeds(std::uint32_t k) const {
  RIPPLES_ASSERT(k >= 1 && k <= sketches_.size());
  std::vector<double> estimates = all_estimates();
  std::vector<vertex_t> order(sketches_.size());
  std::iota(order.begin(), order.end(), vertex_t{0});
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](vertex_t a, vertex_t b) {
                      return estimates[a] > estimates[b] ||
                             (estimates[a] == estimates[b] && a < b);
                    });
  order.resize(k);
  return order;
}

} // namespace ripples
