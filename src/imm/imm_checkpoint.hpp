/// \file imm_checkpoint.hpp
/// \brief Glue between the checkpoint subsystem and the mpsim IMM drivers.
///
/// The drivers share the whole checkpoint lifecycle: build a run
/// fingerprint, open the manager, load-validate-restore on `--resume`, and
/// snapshot from the martingale round hook.  Only the RNG coordinate layout
/// differs (per-rank leap-frog streams vs. per-(sample,vertex) counter
/// keys), so that is the one thing each driver supplies.  See DESIGN.md §9
/// for the resume-equivalence argument.
#ifndef RIPPLES_IMM_IMM_CHECKPOINT_HPP
#define RIPPLES_IMM_IMM_CHECKPOINT_HPP

#include <memory>
#include <optional>
#include <vector>

#include "graph/csr.hpp"
#include "imm/imm.hpp"
#include "imm/imm_core.hpp"
#include "support/checkpoint.hpp"
#include "support/log.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace ripples::detail {

/// The identity a snapshot must match before its coordinates may be
/// replayed.  Everything that changes R or the selection decision sequence
/// is included; presentation-only options (threads, watchdog, faults) are
/// deliberately not — resuming a crashed 4-thread run with 8 threads is
/// legitimate, resuming with a different epsilon is not.  The memory
/// governor (mem_budget, rrr_compress) is likewise excluded: it changes
/// where samples live, never which samples exist, so a run refused under a
/// tight budget may be resumed under a larger one and continues
/// bit-identically.
inline checkpoint::RunFingerprint
make_run_fingerprint(const char *driver, const CsrGraph &graph,
                     const ImmOptions &options) {
  checkpoint::RunFingerprint fp;
  fp.driver = driver;
  fp.graph_hash = graph.structural_hash();
  fp.graph_vertices = graph.num_vertices();
  fp.graph_edges = graph.num_edges();
  fp.seed = options.seed;
  fp.epsilon = options.epsilon;
  fp.l = options.l;
  fp.k = options.k;
  fp.model = static_cast<std::uint8_t>(options.model);
  fp.rng_mode = static_cast<std::uint8_t>(options.rng_mode);
  fp.selection_exchange =
      static_cast<std::uint8_t>(options.selection_exchange);
  fp.selection_topm = options.selection_topm;
  fp.world_size = options.num_ranks;
  return fp;
}

inline MartingaleProgress
progress_from_snapshot(const checkpoint::Snapshot &snapshot) {
  MartingaleProgress progress;
  progress.next_round = snapshot.next_round;
  progress.accepted = snapshot.accepted;
  progress.lower_bound = snapshot.lower_bound;
  progress.last_coverage = snapshot.last_coverage;
  progress.estimation_iterations = snapshot.estimation_iterations;
  progress.num_samples = snapshot.num_samples;
  progress.extend_targets = snapshot.extend_targets;
  return progress;
}

inline checkpoint::Snapshot
snapshot_from_progress(const checkpoint::RunFingerprint &fingerprint,
                       const MartingaleProgress &progress,
                       std::vector<std::uint64_t> stream_counts) {
  checkpoint::Snapshot snapshot;
  snapshot.fingerprint = fingerprint;
  snapshot.next_round = progress.next_round;
  snapshot.accepted = progress.accepted;
  snapshot.lower_bound = progress.lower_bound;
  snapshot.last_coverage = progress.last_coverage;
  snapshot.estimation_iterations = progress.estimation_iterations;
  snapshot.num_samples = progress.num_samples;
  snapshot.extend_targets = progress.extend_targets;
  snapshot.stream_counts = std::move(stream_counts);
  return snapshot;
}

/// Samples generated so far by each of the \p stride leap-frog world
/// streams when |R| = \p num_samples (stream s owns the global indices
/// congruent to s mod stride).  Recorded in snapshots so a resume — and the
/// tests asserting O(ranks·k + θ) snapshot size — can see the per-rank
/// coordinates explicitly.
inline std::vector<std::uint64_t>
leapfrog_stream_counts(std::uint64_t num_samples, std::uint64_t stride) {
  std::vector<std::uint64_t> counts(stride, 0);
  for (std::uint64_t s = 0; s < stride; ++s)
    if (num_samples > s)
      counts[s] = (num_samples - s + stride - 1) / stride;
  return counts;
}

/// Per-driver checkpoint state: nothing when disabled, a manager plus
/// (on --resume) the restored martingale progress otherwise.
struct DriverCheckpoint {
  std::unique_ptr<checkpoint::CheckpointManager> manager;
  checkpoint::RunFingerprint fingerprint;
  std::optional<MartingaleProgress> resume;

  [[nodiscard]] bool enabled() const { return manager != nullptr; }
  [[nodiscard]] const MartingaleProgress *resume_progress() const {
    return resume ? &*resume : nullptr;
  }
};

/// Opens the snapshot directory and, on resume, restores the newest intact
/// snapshot: damaged files are diagnosed and skipped; a missing snapshot
/// (killed before the first boundary) falls back to a fresh start; a
/// fingerprint mismatch throws checkpoint::CheckpointError — refusing the
/// resume beats silently replaying coordinates against the wrong run.
inline DriverCheckpoint prepare_driver_checkpoint(const char *driver,
                                                  const CsrGraph &graph,
                                                  const ImmOptions &options,
                                                  ImmResult &result) {
  DriverCheckpoint state;
  const checkpoint::Options &config = options.checkpoint;
  if (config.dir.empty()) {
    if (config.resume)
      throw std::runtime_error(
          "ripples checkpoint: --resume requires a checkpoint directory "
          "(--checkpoint-dir or RIPPLES_CHECKPOINT_DIR)");
    return state;
  }
  state.fingerprint = make_run_fingerprint(driver, graph, options);
  state.manager = std::make_unique<checkpoint::CheckpointManager>(
      config.dir, config.every, config.keep_last);
  if (!config.resume)
    return state;

  std::string diagnosis;
  std::optional<checkpoint::Snapshot> snapshot =
      state.manager->load_latest(&diagnosis);
  if (!diagnosis.empty())
    RIPPLES_LOG_WARN("checkpoint: skipped damaged snapshot(s): %s",
                     diagnosis.c_str());
  if (!snapshot) {
    RIPPLES_LOG_INFO("checkpoint: no loadable snapshot in %s; starting fresh",
                     config.dir.c_str());
    return state;
  }
  checkpoint::require_matching_fingerprint(*snapshot, state.fingerprint);
  state.resume = progress_from_snapshot(*snapshot);
  result.resumed_from = snapshot->next_round;
  if (metrics::enabled())
    metrics::Registry::instance()
        .gauge("imm.checkpoint.resume_round")
        .set(static_cast<std::int64_t>(snapshot->next_round));
  trace::instant("checkpoint", "checkpoint.resume", "round",
                 snapshot->next_round, "samples", snapshot->num_samples);
  RIPPLES_LOG_INFO("checkpoint: resuming %s at round %u (|R|=%llu)", driver,
                   snapshot->next_round,
                   static_cast<unsigned long long>(snapshot->num_samples));
  return state;
}

} // namespace ripples::detail

#endif // RIPPLES_IMM_IMM_CHECKPOINT_HPP
