#include "imm/select.hpp"

#include <algorithm>
#include <limits>
#include <omp.h>

#include "support/assert.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace ripples {

namespace {

/// True if the sorted sample contains \p v.
bool sample_contains(const RRRSet &sample, vertex_t v) {
  return std::binary_search(sample.begin(), sample.end(), v);
}

} // namespace

void count_memberships(std::span<const RRRSet> samples,
                       std::span<std::uint32_t> counters) {
  for (const RRRSet &sample : samples)
    for (vertex_t v : sample) {
      RIPPLES_DEBUG_ASSERT(v < counters.size());
      ++counters[v];
    }
}

std::uint64_t retire_samples_containing(vertex_t seed,
                                        std::span<const RRRSet> samples,
                                        std::span<std::uint32_t> counters,
                                        std::vector<std::uint8_t> &retired) {
  std::uint64_t retired_count = 0;
  for (std::size_t j = 0; j < samples.size(); ++j) {
    if (retired[j]) continue;
    if (!sample_contains(samples[j], seed)) continue;
    retired[j] = 1;
    ++retired_count;
    for (vertex_t u : samples[j]) {
      RIPPLES_DEBUG_ASSERT(counters[u] > 0);
      --counters[u];
    }
  }
  RIPPLES_DEBUG_ASSERT(counters[seed] == 0);
  return retired_count;
}

std::uint64_t retire_samples_containing(vertex_t seed,
                                        std::span<const RRRSet> samples,
                                        std::span<std::uint32_t> counters,
                                        std::vector<std::uint8_t> &retired,
                                        std::span<std::uint32_t> pending_dec,
                                        std::vector<vertex_t> &pending_touched) {
  std::uint64_t retired_count = 0;
  for (std::size_t j = 0; j < samples.size(); ++j) {
    if (retired[j]) continue;
    if (!sample_contains(samples[j], seed)) continue;
    retired[j] = 1;
    ++retired_count;
    for (vertex_t u : samples[j]) {
      RIPPLES_DEBUG_ASSERT(counters[u] > 0);
      --counters[u];
      if (pending_dec[u]++ == 0) pending_touched.push_back(u);
    }
  }
  RIPPLES_DEBUG_ASSERT(counters[seed] == 0);
  return retired_count;
}

void count_memberships(const CompressedRRRCollection &collection,
                       std::span<std::uint32_t> counters) {
  auto cursor = collection.cursor();
  std::vector<vertex_t> members;
  for (std::size_t j = 0; j < collection.size(); ++j) {
    cursor.decode_members(cursor.next_header(), members);
    for (vertex_t v : members) {
      RIPPLES_DEBUG_ASSERT(v < counters.size());
      ++counters[v];
    }
  }
}

std::uint64_t retire_samples_containing(vertex_t seed,
                                        const CompressedRRRCollection &collection,
                                        std::span<std::uint32_t> counters,
                                        std::vector<std::uint8_t> &retired) {
  std::uint64_t retired_count = 0;
  auto cursor = collection.cursor();
  std::vector<vertex_t> members;
  for (std::size_t j = 0; j < collection.size(); ++j) {
    const std::uint32_t count = cursor.next_header();
    if (retired[j]) {
      cursor.skip_members(count);
      continue;
    }
    cursor.decode_members(count, members);
    if (!std::binary_search(members.begin(), members.end(), seed)) continue;
    retired[j] = 1;
    ++retired_count;
    for (vertex_t u : members) {
      RIPPLES_DEBUG_ASSERT(counters[u] > 0);
      --counters[u];
    }
  }
  RIPPLES_DEBUG_ASSERT(counters[seed] == 0);
  return retired_count;
}

std::uint64_t retire_samples_containing(vertex_t seed,
                                        const CompressedRRRCollection &collection,
                                        std::span<std::uint32_t> counters,
                                        std::vector<std::uint8_t> &retired,
                                        std::span<std::uint32_t> pending_dec,
                                        std::vector<vertex_t> &pending_touched) {
  std::uint64_t retired_count = 0;
  auto cursor = collection.cursor();
  std::vector<vertex_t> members;
  for (std::size_t j = 0; j < collection.size(); ++j) {
    const std::uint32_t count = cursor.next_header();
    if (retired[j]) {
      cursor.skip_members(count);
      continue;
    }
    cursor.decode_members(count, members);
    if (!std::binary_search(members.begin(), members.end(), seed)) continue;
    retired[j] = 1;
    ++retired_count;
    for (vertex_t u : members) {
      RIPPLES_DEBUG_ASSERT(counters[u] > 0);
      --counters[u];
      if (pending_dec[u]++ == 0) pending_touched.push_back(u);
    }
  }
  RIPPLES_DEBUG_ASSERT(counters[seed] == 0);
  return retired_count;
}

vertex_t argmax_counter(std::span<const std::uint32_t> counters,
                        std::span<const std::uint8_t> selected) {
  vertex_t best = 0;
  std::uint32_t best_count = 0;
  bool found = false;
  for (vertex_t v = 0; v < counters.size(); ++v) {
    if (selected[v]) continue;
    if (!found || counters[v] > best_count) {
      best = v;
      best_count = counters[v];
      found = true;
    }
  }
  RIPPLES_ASSERT_MSG(found, "k exceeds the number of vertices");
  return best;
}

SelectionResult select_seeds(vertex_t num_vertices, std::uint32_t k,
                             std::span<const RRRSet> samples) {
  RIPPLES_ASSERT(k >= 1 && k <= num_vertices);
  trace::Span span("select", "select.greedy", "k", k, "samples",
                   samples.size());
  std::vector<std::uint32_t> counters(num_vertices, 0);
  {
    trace::Span count_span("select", "select.count_memberships");
    count_memberships(samples, counters);
  }

  std::vector<std::uint8_t> retired(samples.size(), 0);
  std::vector<std::uint8_t> selected(num_vertices, 0);

  SelectionResult result;
  result.total_samples = samples.size();
  result.seeds.reserve(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    trace::Span round("select", "select.round", "round", i);
    vertex_t seed = argmax_counter(counters, selected);
    selected[seed] = 1;
    result.seeds.push_back(seed);
    std::uint64_t covered =
        retire_samples_containing(seed, samples, counters, retired);
    result.covered_samples += covered;
    round.arg("covered", covered);
  }
  return result;
}

SelectionResult select_seeds_multithreaded(vertex_t num_vertices,
                                           std::uint32_t k,
                                           std::span<const RRRSet> samples,
                                           unsigned num_threads) {
  RIPPLES_ASSERT(k >= 1 && k <= num_vertices);
  RIPPLES_ASSERT(num_threads >= 1);
  trace::Span span("select", "select.multithreaded", "k", k, "samples",
                   samples.size());

  std::vector<std::uint32_t> counters(num_vertices, 0);
  std::vector<std::uint8_t> retired(samples.size(), 0);
  std::vector<std::uint8_t> selected(num_vertices, 0);

  SelectionResult result;
  result.total_samples = samples.size();
  result.seeds.reserve(k);

  // One cache line per entry: every thread writes its own slot each round,
  // so unpadded entries would false-share the reduction array.
  struct alignas(64) Candidate {
    std::uint32_t count;
    vertex_t vertex;
  };
  std::vector<Candidate> local_best(num_threads);
  vertex_t chosen = 0;

#pragma omp parallel num_threads(static_cast<int>(num_threads))
  {
    const auto t = static_cast<unsigned>(omp_get_thread_num());
    const auto p = static_cast<unsigned>(omp_get_num_threads());
    // Samples this thread retires (owner-computes: j % p == t).  Collected
    // during the decrement pass, flagged only after the barrier so other
    // threads never observe a mid-round `retired` update.
    std::vector<std::size_t> my_retired;
    std::uint64_t my_covered = 0;
    // Vertex interval owned by this thread rank (Alg. 4: vl, vh).
    const auto vl = static_cast<vertex_t>(
        (static_cast<std::uint64_t>(num_vertices) * t) / p);
    const auto vh = static_cast<vertex_t>(
        (static_cast<std::uint64_t>(num_vertices) * (t + 1)) / p);

    // Counting step: every thread visits all samples but touches only the
    // counters it owns; the sorted sample lets it binary-search to vl and
    // scan its slice in cache order (Section 3.1).
    {
      // Per-thread span ending before the barrier, so interval imbalance in
      // the counting pass is visible as ragged span ends.
      trace::Span count_span("select", "select.count", "thread", t);
      for (const RRRSet &sample : samples) {
        auto it = std::lower_bound(sample.begin(), sample.end(), vl);
        for (; it != sample.end() && *it < vh; ++it) ++counters[*it];
      }
    }
#pragma omp barrier

    for (std::uint32_t i = 0; i < k; ++i) {
      // Parallel argmax reduction: local candidate per interval...
      Candidate best{0, vh};
      bool found = false;
      for (vertex_t v = vl; v < vh; ++v) {
        if (selected[v]) continue;
        if (!found || counters[v] > best.count) {
          best = {counters[v], v};
          found = true;
        }
      }
      local_best[t] = found ? best : Candidate{0, num_vertices};
#pragma omp barrier
      // ...then one thread combines (higher count wins, ties to smaller id).
#pragma omp single
      {
        Candidate global{0, num_vertices};
        for (const Candidate &c : local_best) {
          if (c.vertex >= num_vertices) continue;
          if (global.vertex >= num_vertices || c.count > global.count ||
              (c.count == global.count && c.vertex < global.vertex))
            global = c;
        }
        RIPPLES_ASSERT_MSG(global.vertex < num_vertices,
                           "k exceeds the number of vertices");
        chosen = global.vertex;
        selected[chosen] = 1;
        result.seeds.push_back(chosen);
        trace::instant("select", "select.round", "round", i, "seed", chosen);
      } // implicit barrier: `chosen` is visible to all threads

      // Decrement phase, with retirement fused in: for every live sample
      // containing the seed, each thread decrements the members inside its
      // own interval — no atomics (Alg. 4) — and the sample's owner
      // (j % p == t) queues it for retirement.  This reuses the one
      // containment search per (thread, sample); the former separate
      // retirement sweep searched every sample a second time.  `retired` is
      // only read during this pass; the queued flags are written after the
      // barrier below, so all threads see a consistent view.
      my_retired.clear();
      {
        trace::Span decrement_span("select", "select.decrement", "round", i,
                                   "thread", t);
        for (const RRRSet &sample : samples) {
          const std::size_t j =
              static_cast<std::size_t>(&sample - samples.data());
          if (retired[j]) continue;
          if (!sample_contains(sample, chosen)) continue;
          if (j % p == t) my_retired.push_back(j);
          auto it = std::lower_bound(sample.begin(), sample.end(), vl);
          for (; it != sample.end() && *it < vh; ++it) {
            RIPPLES_DEBUG_ASSERT(counters[*it] > 0);
            --counters[*it];
          }
        }
      }
#pragma omp barrier
      // Flag the queued samples (disjoint writes: ownership partitions j).
      // The next round's pre-argmax barrier orders these writes before any
      // thread reads `retired` again.
      for (std::size_t j : my_retired) retired[j] = 1;
      my_covered += my_retired.size();
    }

#pragma omp atomic
    result.covered_samples += my_covered;
  }
  return result;
}

SelectionResult select_seeds_flat(vertex_t num_vertices, std::uint32_t k,
                                  const FlatRRRCollection &collection) {
  RIPPLES_ASSERT(k >= 1 && k <= num_vertices);
  trace::Span span("select", "select.flat", "k", k, "samples",
                   collection.size());
  std::vector<std::uint32_t> counters(num_vertices, 0);
  for (std::size_t j = 0; j < collection.size(); ++j)
    for (vertex_t v : collection.sample(j)) ++counters[v];

  std::vector<std::uint8_t> retired(collection.size(), 0);
  std::vector<std::uint8_t> selected(num_vertices, 0);

  SelectionResult result;
  result.total_samples = collection.size();
  result.seeds.reserve(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    vertex_t seed = argmax_counter(counters, selected);
    selected[seed] = 1;
    result.seeds.push_back(seed);
    for (std::size_t j = 0; j < collection.size(); ++j) {
      if (retired[j]) continue;
      auto sample = collection.sample(j);
      if (!std::binary_search(sample.begin(), sample.end(), seed)) continue;
      retired[j] = 1;
      ++result.covered_samples;
      for (vertex_t u : sample) {
        RIPPLES_DEBUG_ASSERT(counters[u] > 0);
        --counters[u];
      }
    }
  }
  return result;
}

SelectionResult select_seeds_compressed(vertex_t num_vertices, std::uint32_t k,
                                        const CompressedRRRCollection &collection) {
  RIPPLES_ASSERT(k >= 1 && k <= num_vertices);
  trace::Span span("select", "select.compressed", "k", k, "samples",
                   collection.size());
  std::vector<std::uint32_t> counters(num_vertices, 0);
  {
    trace::Span count_span("select", "select.count_memberships");
    count_memberships(collection, counters);
  }

  std::vector<std::uint8_t> retired(collection.size(), 0);
  std::vector<std::uint8_t> selected(num_vertices, 0);

  SelectionResult result;
  result.total_samples = collection.size();
  result.seeds.reserve(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    trace::Span round("select", "select.round", "round", i);
    vertex_t seed = argmax_counter(counters, selected);
    selected[seed] = 1;
    result.seeds.push_back(seed);
    std::uint64_t covered =
        retire_samples_containing(seed, collection, counters, retired);
    result.covered_samples += covered;
    round.arg("covered", covered);
  }
  return result;
}

SelectionResult select_seeds_lazy(vertex_t num_vertices, std::uint32_t k,
                                  std::span<const RRRSet> samples) {
  RIPPLES_ASSERT(k >= 1 && k <= num_vertices);
  trace::Span span("select", "select.lazy", "k", k, "samples", samples.size());
  std::vector<std::uint32_t> counters(num_vertices, 0);
  {
    trace::Span count_span("select", "select.count_memberships");
    count_memberships(samples, counters);
  }

  // Max-heap of (cached count, vertex), higher count first, ties to the
  // smaller vertex id so the output matches the eager implementations.
  struct Entry {
    std::uint32_t count;
    vertex_t vertex;
  };
  auto lower_priority = [](const Entry &a, const Entry &b) {
    return a.count < b.count || (a.count == b.count && a.vertex > b.vertex);
  };
  std::vector<Entry> heap;
  heap.reserve(num_vertices);
  for (vertex_t v = 0; v < num_vertices; ++v) heap.push_back({counters[v], v});
  std::make_heap(heap.begin(), heap.end(), lower_priority);

  std::vector<std::uint8_t> retired(samples.size(), 0);
  SelectionResult result;
  result.total_samples = samples.size();
  result.seeds.reserve(k);
  std::uint64_t stale_refreshes = 0;
  while (result.seeds.size() < k) {
    trace::Span round("select", "select.round", "round", result.seeds.size());
    std::uint64_t round_stale = 0;
    for (;;) {
      RIPPLES_ASSERT_MSG(!heap.empty(), "k exceeds the number of vertices");
      std::pop_heap(heap.begin(), heap.end(), lower_priority);
      Entry top = heap.back();
      heap.pop_back();
      if (top.count != counters[top.vertex]) {
        // Stale cache: counters only decrease, so refresh and reinsert.
        heap.push_back({counters[top.vertex], top.vertex});
        std::push_heap(heap.begin(), heap.end(), lower_priority);
        ++round_stale;
        continue;
      }
      result.seeds.push_back(top.vertex);
      result.covered_samples +=
          retire_samples_containing(top.vertex, samples, counters, retired);
      break;
    }
    stale_refreshes += round_stale;
    round.arg("stale", round_stale);
  }
  trace::instant("select", "select.lazy_done", "stale_refreshes",
                 stale_refreshes);
  return result;
}

SelectionResult select_seeds_hypergraph(vertex_t num_vertices, std::uint32_t k,
                                        const HypergraphCollection &collection) {
  RIPPLES_ASSERT(k >= 1 && k <= num_vertices);
  trace::Span span("select", "select.hypergraph", "k", k, "samples",
                   collection.size());
  // The vertex -> samples index gives the initial counters for free and
  // makes retirement proportional to the retired samples only — the
  // selection-speed advantage the paper attributes to the hypergraph
  // representation (bought with ~2x memory).
  std::vector<std::uint32_t> counters(num_vertices, 0);
  for (vertex_t v = 0; v < num_vertices; ++v)
    counters[v] =
        static_cast<std::uint32_t>(collection.samples_containing(v).size());

  std::vector<std::uint8_t> retired(collection.size(), 0);
  std::vector<std::uint8_t> selected(num_vertices, 0);

  SelectionResult result;
  result.total_samples = collection.size();
  result.seeds.reserve(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    vertex_t seed = argmax_counter(counters, selected);
    selected[seed] = 1;
    result.seeds.push_back(seed);
    for (std::uint32_t j : collection.samples_containing(seed)) {
      if (retired[j]) continue;
      retired[j] = 1;
      ++result.covered_samples;
      for (vertex_t u : collection.sets()[j]) {
        RIPPLES_DEBUG_ASSERT(counters[u] > 0);
        --counters[u];
      }
    }
  }
  return result;
}

// --- sparse selection exchange ----------------------------------------------

TopmSummary sparse_topm(std::span<const std::uint32_t> counters,
                        std::span<const std::uint8_t> selected,
                        std::uint32_t m) {
  RIPPLES_ASSERT(m >= 1);
  RIPPLES_ASSERT(counters.size() == selected.size());
  TopmSummary summary;
  summary.top.reserve(m);
  // Bounded "best m" heap ordered worst-first, so the root is the entry a
  // better candidate evicts.  Everything rejected or evicted feeds the
  // outside bound: the exact maximum count among unreported unselected
  // vertices.
  auto worse = [](const CounterPair &a, const CounterPair &b) {
    return a.count > b.count || (a.count == b.count && a.vertex < b.vertex);
  };
  std::vector<CounterPair> &heap = summary.top;
  std::uint32_t outside = 0;
  bool any_outside = false;
  for (vertex_t v = 0; v < counters.size(); ++v) {
    if (selected[v]) continue;
    const CounterPair entry{v, counters[v]};
    if (heap.size() < m) {
      heap.push_back(entry);
      std::push_heap(heap.begin(), heap.end(), worse);
      continue;
    }
    const CounterPair &weakest = heap.front();
    if (worse(entry, weakest)) {
      // Evict the weakest in favour of this entry.
      std::pop_heap(heap.begin(), heap.end(), worse);
      const CounterPair evicted = heap.back();
      heap.back() = entry;
      std::push_heap(heap.begin(), heap.end(), worse);
      outside = std::max(outside, evicted.count);
      any_outside = true;
    } else {
      outside = std::max(outside, entry.count);
      any_outside = true;
    }
  }
  summary.outside_bound = any_outside ? outside : 0;
  // Wire and merge order: count descending, ties to the smaller id —
  // the dense argmax preference order.
  std::sort(heap.begin(), heap.end(), [](const CounterPair &a,
                                         const CounterPair &b) {
    return a.count > b.count || (a.count == b.count && a.vertex < b.vertex);
  });
  return summary;
}

SparseMergeResult sparse_merge(std::span<const TopmSummary> summaries) {
  // Candidate accumulation: LB = sum of reported counts; the reporters'
  // outside bounds are summed per candidate so UB = LB + (T - reported_T)
  // without needing per-rank membership bitmaps.
  struct Candidate {
    vertex_t vertex;
    std::uint64_t lb = 0;
    std::uint64_t reported_outside = 0; // sum of outside_bound over reporters
    std::uint32_t reporters = 0;
  };
  std::uint64_t total_outside = 0; // T: bound on any unreported vertex
  std::vector<Candidate> candidates;
  std::size_t total_pairs = 0;
  for (const TopmSummary &summary : summaries) {
    total_outside += summary.outside_bound;
    total_pairs += summary.top.size();
  }
  candidates.reserve(total_pairs);
  for (const TopmSummary &summary : summaries)
    for (const CounterPair &pair : summary.top)
      candidates.push_back({pair.vertex, pair.count, summary.outside_bound, 1});
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate &a, const Candidate &b) {
              return a.vertex < b.vertex;
            });
  // Merge duplicate vertices (reported by several ranks) in place.
  std::size_t unique = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (unique > 0 && candidates[unique - 1].vertex == candidates[i].vertex) {
      candidates[unique - 1].lb += candidates[i].lb;
      candidates[unique - 1].reported_outside += candidates[i].reported_outside;
      candidates[unique - 1].reporters += 1;
    } else {
      candidates[unique++] = candidates[i];
    }
  }
  candidates.resize(unique);

  SparseMergeResult result;
  result.candidates.reserve(unique);
  for (const Candidate &c : candidates) result.candidates.push_back(c.vertex);
  if (candidates.empty()) return result; // nothing reported: cannot certify

  const std::uint32_t num_ranks = static_cast<std::uint32_t>(summaries.size());
  auto ub_of = [&](const Candidate &c) {
    return c.lb + (total_outside - c.reported_outside);
  };
  auto exact = [&](const Candidate &c) {
    // Fully known iff every rank reported it, or the missing ranks can
    // only contribute zero.
    return c.reporters == num_ranks || ub_of(c) == c.lb;
  };

  // Winner preference: LB descending, ties to the smaller id (the ids of
  // sorted candidates ascend, so the first maximum wins ties for free).
  const Candidate *best = &candidates.front();
  for (const Candidate &c : candidates)
    if (c.lb > best->lb) best = &c;
  result.winner = best->vertex;

  // Certification (see the header's bound derivation).
  if (total_outside >= best->lb) return result; // (ii) violated
  for (const Candidate &c : candidates) {
    if (&c == best) continue;
    const std::uint64_t ub = ub_of(c);
    if (ub < best->lb) continue;
    const bool exact_tie = ub == best->lb && exact(c) && exact(*best) &&
                           best->vertex < c.vertex;
    if (!exact_tie) return result; // (i) violated
  }
  result.certified = true;
  return result;
}

SparseExactResult sparse_certify_exact(std::span<const vertex_t> candidates,
                                       std::span<const std::uint32_t> exact_counts,
                                       std::uint64_t outside_sum) {
  RIPPLES_ASSERT(candidates.size() == exact_counts.size());
  RIPPLES_ASSERT(!candidates.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    if (exact_counts[i] > exact_counts[best] ||
        (exact_counts[i] == exact_counts[best] &&
         candidates[i] < candidates[best]))
      best = i;
  }
  SparseExactResult result;
  result.winner = candidates[best];
  // Strict: a vertex outside the candidate set with count == the winner's
  // could have a smaller id and win the dense tie-break.
  result.certified = exact_counts[best] > outside_sum;
  return result;
}

namespace detail {

namespace {
metrics::Counter &exchange_words_counter() {
  static metrics::Counter &c =
      metrics::Registry::instance().counter("imm.select.exchange_words");
  return c;
}
metrics::Counter &sparse_rounds_counter() {
  static metrics::Counter &c =
      metrics::Registry::instance().counter("imm.select.sparse_rounds");
  return c;
}
metrics::Counter &sparse_certified_counter() {
  static metrics::Counter &c =
      metrics::Registry::instance().counter("imm.select.sparse_certified");
  return c;
}
metrics::Counter &candidate_fallbacks_counter() {
  static metrics::Counter &c = metrics::Registry::instance().counter(
      "imm.select.sparse_candidate_fallbacks");
  return c;
}
metrics::Counter &dense_fallbacks_counter() {
  static metrics::Counter &c =
      metrics::Registry::instance().counter("imm.select.sparse_dense_fallbacks");
  return c;
}
} // namespace

void record_exchange_words(std::uint64_t words) {
  if (metrics::enabled()) exchange_words_counter().add(words);
}

void record_sparse_round(bool certified) {
  if (!metrics::enabled()) return;
  sparse_rounds_counter().increment();
  if (certified) sparse_certified_counter().increment();
}

void record_candidate_fallback() {
  if (metrics::enabled()) candidate_fallbacks_counter().increment();
}

void record_dense_fallback() {
  if (metrics::enabled()) dense_fallbacks_counter().increment();
}

} // namespace detail

} // namespace ripples
