#include "imm/sampler.hpp"

#include <omp.h>

#include "support/assert.hpp"

namespace ripples {

void sample_sequential(const CsrGraph &graph, DiffusionModel model,
                       std::uint64_t target_total, std::uint64_t seed,
                       RRRCollection &collection) {
  if (collection.size() >= target_total) return;
  std::uint64_t first = collection.grow(target_total - collection.size());
  RRRGenerator generator(graph);
  auto &sets = collection.mutable_sets();
  for (std::uint64_t i = first; i < target_total; ++i) {
    Philox4x32 rng = sample_stream(seed, i);
    generator.generate_random_root(model, rng, sets[i]);
  }
}

void sample_multithreaded(const CsrGraph &graph, DiffusionModel model,
                          std::uint64_t target_total, std::uint64_t seed,
                          unsigned num_threads, RRRCollection &collection) {
  RIPPLES_ASSERT(num_threads >= 1);
  if (collection.size() >= target_total) return;
  std::uint64_t first = collection.grow(target_total - collection.size());
  auto &sets = collection.mutable_sets();
  auto count = static_cast<std::int64_t>(target_total - first);
#pragma omp parallel num_threads(static_cast<int>(num_threads))
  {
    RRRGenerator generator(graph);
    // Dynamic schedule: RRR-set sizes are heavy-tailed under IC, so static
    // chunking would leave threads idle behind one giant traversal.
#pragma omp for schedule(dynamic, 16)
    for (std::int64_t offset = 0; offset < count; ++offset) {
      std::uint64_t i = first + static_cast<std::uint64_t>(offset);
      Philox4x32 rng = sample_stream(seed, i);
      generator.generate_random_root(model, rng, sets[i]);
    }
  }
}

void sample_sequential_flat(const CsrGraph &graph, DiffusionModel model,
                            std::uint64_t target_total, std::uint64_t seed,
                            FlatRRRCollection &collection) {
  RRRGenerator generator(graph);
  RRRSet scratch;
  for (std::uint64_t i = collection.size(); i < target_total; ++i) {
    Philox4x32 rng = sample_stream(seed, i);
    generator.generate_random_root(model, rng, scratch);
    collection.append(scratch);
  }
}

void sample_hypergraph(const CsrGraph &graph, DiffusionModel model,
                       std::uint64_t target_total, std::uint64_t seed,
                       HypergraphCollection &collection) {
  RRRGenerator generator(graph);
  RRRSet scratch;
  for (std::uint64_t i = collection.size(); i < target_total; ++i) {
    Philox4x32 rng = sample_stream(seed, i);
    generator.generate_random_root(model, rng, scratch);
    collection.add(std::move(scratch));
    scratch = {};
  }
}

} // namespace ripples
