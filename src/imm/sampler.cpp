#include "imm/sampler.hpp"

#include <omp.h>

#include "support/assert.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace ripples {

namespace {

/// Registry accounting for one extend call (a batch of samples).  The
/// counter lookup happens once per process; the disabled path is a single
/// relaxed load in metrics::enabled().
void count_generated(std::uint64_t batch) {
  if (!metrics::enabled()) return;
  static metrics::Counter &generated =
      metrics::Registry::instance().counter("sampler.samples_generated");
  generated.add(batch);
}

} // namespace

void sample_sequential(const CsrGraph &graph, DiffusionModel model,
                       std::uint64_t target_total, std::uint64_t seed,
                       RRRCollection &collection) {
  if (collection.size() >= target_total) return;
  trace::Span span("sampler", "sampler.batch", "first", collection.size(),
                   "count", target_total - collection.size());
  std::uint64_t first = collection.grow(target_total - collection.size());
  RRRGenerator generator(graph);
  auto &sets = collection.mutable_sets();
  for (std::uint64_t i = first; i < target_total; ++i) {
    Philox4x32 rng = sample_stream(seed, i);
    generator.generate_random_root(model, rng, sets[i]);
  }
  count_generated(target_total - first);
  trace::counter("rrr_sets", collection.size());
}

void sample_multithreaded(const CsrGraph &graph, DiffusionModel model,
                          std::uint64_t target_total, std::uint64_t seed,
                          unsigned num_threads, RRRCollection &collection) {
  RIPPLES_ASSERT(num_threads >= 1);
  if (collection.size() >= target_total) return;
  trace::Span span("sampler", "sampler.batch", "first", collection.size(),
                   "count", target_total - collection.size());
  std::uint64_t first = collection.grow(target_total - collection.size());
  auto &sets = collection.mutable_sets();
  auto count = static_cast<std::int64_t>(target_total - first);
#pragma omp parallel num_threads(static_cast<int>(num_threads))
  {
    RRRGenerator generator(graph);
    // One span per worker covering its share of the batch; `nowait` below
    // ends it when the thread finishes its own iterations, so RRR-size
    // imbalance shows as ragged span ends instead of being hidden behind
    // the loop barrier.
    trace::Span worker("sampler", "sampler.worker");
    std::uint64_t generated = 0;
    // Dynamic schedule: RRR-set sizes are heavy-tailed under IC, so static
    // chunking would leave threads idle behind one giant traversal.
#pragma omp for schedule(dynamic, 16) nowait
    for (std::int64_t offset = 0; offset < count; ++offset) {
      std::uint64_t i = first + static_cast<std::uint64_t>(offset);
      Philox4x32 rng = sample_stream(seed, i);
      generator.generate_random_root(model, rng, sets[i]);
      ++generated;
    }
    worker.arg("sets", generated);
  }
  count_generated(static_cast<std::uint64_t>(count));
  trace::counter("rrr_sets", collection.size());
}

void sample_sequential_flat(const CsrGraph &graph, DiffusionModel model,
                            std::uint64_t target_total, std::uint64_t seed,
                            FlatRRRCollection &collection) {
  RRRGenerator generator(graph);
  RRRSet scratch;
  std::uint64_t first = collection.size();
  if (first >= target_total) return;
  trace::Span span("sampler", "sampler.batch_flat", "first", first, "count",
                   target_total - first);
  for (std::uint64_t i = first; i < target_total; ++i) {
    Philox4x32 rng = sample_stream(seed, i);
    generator.generate_random_root(model, rng, scratch);
    collection.append(scratch);
  }
  count_generated(target_total - first);
  trace::counter("rrr_sets", collection.size());
}

void sample_hypergraph(const CsrGraph &graph, DiffusionModel model,
                       std::uint64_t target_total, std::uint64_t seed,
                       HypergraphCollection &collection) {
  RRRGenerator generator(graph);
  RRRSet scratch;
  std::uint64_t first = collection.size();
  if (first >= target_total) return;
  trace::Span span("sampler", "sampler.batch_hypergraph", "first", first,
                   "count", target_total - first);
  for (std::uint64_t i = first; i < target_total; ++i) {
    Philox4x32 rng = sample_stream(seed, i);
    generator.generate_random_root(model, rng, scratch);
    collection.add(std::move(scratch));
    scratch = {};
  }
  count_generated(target_total - first);
  trace::counter("rrr_sets", collection.size());
}

std::uint64_t sample_leapfrog_range(const CsrGraph &graph, DiffusionModel model,
                                    Lcg64 &engine, std::uint64_t stream,
                                    std::uint64_t num_streams,
                                    std::uint64_t from, std::uint64_t to,
                                    RRRCollection &collection) {
  RRRGenerator generator(graph);
  std::uint64_t generated = 0;
  for (std::uint64_t i = leapfrog_first_index(from, stream, num_streams);
       i < to; i += num_streams) {
    RRRSet set;
    generator.generate_random_root(model, engine, set);
    collection.add(std::move(set));
    ++generated;
    // i + num_streams may wrap for `to` near UINT64_MAX; a wrapped index
    // would re-enter the range and loop forever.
    if (num_streams > std::numeric_limits<std::uint64_t>::max() - i) break;
  }
  count_generated(generated);
  return generated;
}

std::uint64_t sample_counter_indices(const CsrGraph &graph,
                                     DiffusionModel model, std::uint64_t seed,
                                     std::span<const std::uint64_t> indices,
                                     unsigned num_threads,
                                     RRRCollection &collection) {
  RIPPLES_ASSERT(num_threads >= 1);
  if (indices.empty()) return 0;
  std::uint64_t first_slot = collection.grow(indices.size());
  auto &sets = collection.mutable_sets();
#pragma omp parallel num_threads(static_cast<int>(num_threads))
  {
    RRRGenerator generator(graph);
#pragma omp for schedule(dynamic, 16)
    for (std::int64_t j = 0; j < static_cast<std::int64_t>(indices.size());
         ++j) {
      Philox4x32 rng =
          sample_stream(seed, indices[static_cast<std::size_t>(j)]);
      generator.generate_random_root(
          model, rng, sets[first_slot + static_cast<std::uint64_t>(j)]);
    }
  }
  count_generated(indices.size());
  return indices.size();
}

} // namespace ripples
