/// \file sketches.hpp
/// \brief Combined bottom-k reachability sketches (Cohen et al., CIKM'14).
///
/// The related-work family the paper cites as "per-node summary structures
/// called combined reachability sketches ... resulting in up to two orders
/// of magnitude speedups" for influence computations.  The construction:
///
///  * sample l live-edge instances of the graph (per the diffusion model);
///  * give every (vertex, instance) pair an independent uniform rank;
///  * the sketch of vertex u is the bottom-k ranks among all pairs (v, i)
///    such that u reaches v in instance i.
///
/// Sketches are built with Cohen's pruned reverse searches: pairs are
/// processed in increasing rank order, each running a reverse BFS in its
/// instance that stops at vertices whose sketch is already full — total
/// work O(l m + n k lg n)-ish instead of l full transitive closures.
///
/// The bottom-k estimator then turns a sketch into an influence estimate:
/// if the sketch holds fewer than k ranks it counted the reachable pairs
/// exactly; otherwise sum_i |reach_i(u)| ~ (k-1)/tau_k with tau_k the k-th
/// smallest rank, and E[|I({u})|] is that divided by l.
///
/// This oracle estimates *single-vertex* influence for ranking and
/// diagnostics; unlike RIS/IMM it provides no submodular-coverage seed
/// guarantee, which is exactly the positioning of Section 2.
#ifndef RIPPLES_IMM_SKETCHES_HPP
#define RIPPLES_IMM_SKETCHES_HPP

#include <cstdint>
#include <vector>

#include "diffusion/model.hpp"
#include "graph/csr.hpp"

namespace ripples {

struct SketchOptions {
  /// Live-edge instances averaged over (Cohen's l).
  std::uint32_t num_instances = 64;
  /// Sketch capacity (bottom-k size); larger = tighter estimates.
  std::uint32_t sketch_size = 64;
  DiffusionModel model = DiffusionModel::IndependentCascade;
  std::uint64_t seed = 2019;
};

/// Immutable per-vertex sketches with the influence estimator.
class ReachabilitySketches {
public:
  ReachabilitySketches(const CsrGraph &graph, const SketchOptions &options);

  /// Estimated E[|I({u})|] for a single seed vertex.
  [[nodiscard]] double estimate_influence(vertex_t u) const;

  /// Estimates for every vertex (the ranking the oracle exists for).
  [[nodiscard]] std::vector<double> all_estimates() const;

  /// The k highest-estimate vertices (ties to smaller id).  A ranking
  /// heuristic, not a coverage-corrected seed set.
  [[nodiscard]] std::vector<vertex_t> top_seeds(std::uint32_t k) const;

  /// Bottom-k ranks of one vertex, ascending (exposed for tests).
  [[nodiscard]] const std::vector<float> &sketch_of(vertex_t u) const {
    return sketches_[u];
  }

private:
  std::uint32_t num_instances_;
  std::uint32_t sketch_size_;
  std::vector<std::vector<float>> sketches_;
};

} // namespace ripples

#endif // RIPPLES_IMM_SKETCHES_HPP
