#include "imm/lineage.hpp"

#include <algorithm>
#include <cmath>

#include "imm/sampler.hpp"
#include "imm/select.hpp"
#include "imm/theta.hpp"
#include "support/assert.hpp"
#include "support/log.hpp"

namespace ripples {

namespace {

/// omega(R): the number of edges of G pointing into members of R — the
/// work a reverse BFS expends on the sample, and the "width" TIM's KPT
/// estimator is built on.
std::uint64_t sample_width(const CsrGraph &graph, const RRRSet &sample) {
  std::uint64_t width = 0;
  for (vertex_t v : sample) width += graph.in_degree(v);
  return width;
}

} // namespace

ImmResult ris_threshold(const CsrGraph &graph, const RisOptions &options) {
  RIPPLES_ASSERT(options.epsilon > 0 && options.epsilon < 1);
  RIPPLES_ASSERT(options.k >= 1 && options.k <= graph.num_vertices());

  ImmResult result;
  StopWatch total;

  const double n = static_cast<double>(graph.num_vertices());
  const double m = static_cast<double>(graph.num_edges());
  // Borgs et al.'s budget: Theta((m + n) k log n / eps^3) total traversal
  // work, constant-free form scaled by budget_scale.
  const double budget = options.budget_scale * (m + n) *
                        static_cast<double>(options.k) * std::log(n) /
                        (options.epsilon * options.epsilon * options.epsilon);

  RRRCollection collection;
  std::uint64_t work = 0;
  {
    ScopedPhase phase(result.timers, Phase::Sample);
    // Generate in batches; stop once the cumulative width crosses the
    // budget ("a user-defined threshold defined over the number of
    // vertices and edges visited", as the paper summarizes RIS).
    const std::uint64_t batch = 8;
    while (static_cast<double>(work) < budget) {
      std::uint64_t target = collection.size() + batch;
      sample_sequential(graph, options.model, target, options.seed, collection);
      for (std::uint64_t i = target - batch; i < target; ++i)
        work += 1 + sample_width(graph, collection.sets()[i]);
    }
    result.rrr_peak_bytes = collection.footprint_bytes();
    result.total_associations = collection.total_associations();
  }

  SelectionResult selection;
  {
    ScopedPhase phase(result.timers, Phase::SelectSeeds);
    selection = select_seeds(graph.num_vertices(), options.k, collection.sets());
  }
  result.seeds = selection.seeds;
  result.theta = collection.size();
  result.num_samples = collection.size();
  result.coverage_fraction = selection.coverage_fraction();
  result.lower_bound =
      n * selection.coverage_fraction(); // the unbiased OPT estimator
  result.timers.add(Phase::Other,
                    total.elapsed_seconds() - result.timers.total());
  return result;
}

ImmResult tim_plus(const CsrGraph &graph, const TimOptions &options) {
  RIPPLES_ASSERT(options.epsilon > 0 && options.epsilon < 1);
  RIPPLES_ASSERT(options.k >= 1 && options.k <= graph.num_vertices());

  ImmResult result;
  StopWatch total;

  const double n = static_cast<double>(graph.num_vertices());
  const double m = static_cast<double>(graph.num_edges());
  const double ln_n = std::log(n);
  const double log2_n = std::log2(n);
  const double logcnk = log_binomial(graph.num_vertices(), options.k);
  const double l = options.l;

  RRRCollection collection;
  double kpt = 1.0;

  // --- KptEstimation (TIM, Algorithm 2): measure the expected
  // width-derived weight kappa(R) = 1 - (1 - omega(R)/m)^k over doubling
  // batches until the average crosses the 1/2^i threshold.
  {
    ScopedPhase phase(result.timers, Phase::EstimateTheta);
    const auto max_iterations =
        static_cast<std::uint32_t>(std::max(1.0, log2_n - 1.0));
    for (std::uint32_t i = 1; i <= max_iterations; ++i) {
      const auto c_i = static_cast<std::uint64_t>(
          std::ceil((6.0 * l * ln_n + 6.0 * std::log(log2_n)) *
                    std::exp2(static_cast<double>(i))));
      std::uint64_t first = collection.size();
      sample_sequential(graph, options.model, first + c_i, options.seed,
                        collection);
      double sum = 0.0;
      for (std::uint64_t j = first; j < first + c_i; ++j) {
        double omega =
            static_cast<double>(sample_width(graph, collection.sets()[j]));
        sum += 1.0 -
               std::pow(1.0 - omega / std::max(1.0, m),
                        static_cast<double>(options.k));
      }
      double average = sum / static_cast<double>(c_i);
      if (average > 1.0 / std::exp2(static_cast<double>(i))) {
        kpt = n * average / 2.0;
        break;
      }
    }

    // --- RefineKPT (TIM+): run the greedy on a pilot collection and lift
    // the bound with the coverage-based estimator.
    const double eps_prime =
        5.0 * std::cbrt(l * options.epsilon * options.epsilon /
                        (static_cast<double>(options.k) + l));
    const double lambda_prime = (2.0 + eps_prime) * l * n * ln_n /
                                (eps_prime * eps_prime);
    const auto pilot =
        static_cast<std::uint64_t>(std::ceil(lambda_prime / kpt));
    sample_sequential(graph, options.model, std::max(pilot, collection.size()),
                      options.seed, collection);
    SelectionResult pilot_selection =
        select_seeds(graph.num_vertices(), options.k, collection.sets());
    double kpt_refined =
        n * pilot_selection.coverage_fraction() / (1.0 + eps_prime);
    kpt = std::max(kpt, kpt_refined);
    RIPPLES_LOG_DEBUG("TIM+ KPT*=%.1f (pilot %llu samples)", kpt,
                      static_cast<unsigned long long>(pilot));
  }

  // --- Final theta = lambda / KPT* with TIM's lambda.
  const double lambda = (8.0 + 2.0 * options.epsilon) * n *
                        (l * ln_n + logcnk + std::log(2.0)) /
                        (options.epsilon * options.epsilon);
  const auto theta = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(lambda / std::max(1.0, kpt))));
  if (theta > collection.size()) {
    ScopedPhase phase(result.timers, Phase::Sample);
    sample_sequential(graph, options.model, theta, options.seed, collection);
  }
  result.rrr_peak_bytes = collection.footprint_bytes();
  result.total_associations = collection.total_associations();

  SelectionResult selection;
  {
    ScopedPhase phase(result.timers, Phase::SelectSeeds);
    selection = select_seeds(graph.num_vertices(), options.k, collection.sets());
  }
  result.seeds = selection.seeds;
  result.theta = theta;
  result.num_samples = collection.size();
  result.coverage_fraction = selection.coverage_fraction();
  result.lower_bound = kpt;
  result.timers.add(Phase::Other,
                    total.elapsed_seconds() - result.timers.total());
  return result;
}

} // namespace ripples
