#include "imm/steal.hpp"

#include <algorithm>
#include <limits>
#include <memory>

#include <omp.h>

#include "imm/rrr.hpp"
#include "imm/sampler.hpp"
#include "imm/sampler_fused.hpp"
#include "support/assert.hpp"
#include "support/metrics.hpp"
#include "support/steal_schedule.hpp"

namespace ripples::detail {

namespace {

constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();

/// Same registry accounting as the unchunked samplers, so the
/// sampler.samples_generated counter is engine-agnostic.
void count_generated(std::uint64_t batch) {
  if (!metrics::enabled()) return;
  static metrics::Counter &generated =
      metrics::Registry::instance().counter("sampler.samples_generated");
  generated.add(batch);
}

} // namespace

std::vector<ChunkRange> make_stream_chunks(std::uint64_t from, std::uint64_t to,
                                           std::uint64_t stream,
                                           std::uint64_t num_streams,
                                           std::uint64_t chunk) {
  RIPPLES_ASSERT(num_streams >= 1);
  RIPPLES_ASSERT(stream < num_streams);
  if (chunk == 0) chunk = 1;
  std::vector<ChunkRange> chunks;
  std::uint64_t i = leapfrog_first_index(from, stream, num_streams);
  while (i < to) {
    // One chunk spans `chunk` draws of this stream: chunk * num_streams
    // global indices, saturated so an end near 2^64 clamps instead of
    // wrapping back below `i`.
    const std::uint64_t span =
        chunk > kMax / num_streams ? kMax : chunk * num_streams;
    std::uint64_t end = span > kMax - i ? kMax : i + span;
    if (end > to) end = to;
    chunks.push_back({stream, i, end});
    if (end >= to || end == kMax) break;
    i = end; // aligned: end == i + chunk * num_streams keeps i ≡ stream
  }
  return chunks;
}

std::uint64_t chunk_draw_count(const ChunkRange &chunk,
                               std::uint64_t num_streams) {
  RIPPLES_ASSERT(num_streams >= 1);
  const std::uint64_t first =
      leapfrog_first_index(chunk.begin, chunk.stream, num_streams);
  if (first >= chunk.end) return 0;
  return (chunk.end - 1 - first) / num_streams + 1;
}

void ChunkQueue::push(const ChunkRange &chunk) {
  std::lock_guard<std::mutex> lock(mutex_);
  items_.push_back(chunk);
}

bool ChunkQueue::pop(ChunkRange &out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (items_.empty()) return false;
  out = items_.front();
  items_.pop_front();
  return true;
}

std::size_t ChunkQueue::steal_half(std::vector<ChunkRange> &out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (items_.empty()) return 0;
  const std::size_t take = (items_.size() + 1) / 2; // ceil(n/2)
  const std::size_t keep = items_.size() - take;
  out.insert(out.end(), items_.begin() + static_cast<std::ptrdiff_t>(keep),
             items_.end());
  items_.erase(items_.begin() + static_cast<std::ptrdiff_t>(keep),
               items_.end());
  return take;
}

std::size_t ChunkQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return items_.size();
}

void StreamInventory::add(std::uint64_t stream, std::uint64_t begin,
                          std::uint64_t end) {
  if (begin >= end) return;
  auto stream_it = std::lower_bound(
      streams_.begin(), streams_.end(), stream,
      [](const Stream &s, std::uint64_t id) { return s.id < id; });
  if (stream_it == streams_.end() || stream_it->id != stream)
    stream_it = streams_.insert(stream_it, Stream{stream, {}});
  auto &ranges = stream_it->ranges;
  auto it = std::lower_bound(ranges.begin(), ranges.end(), begin,
                             [](const Range &r, std::uint64_t b) {
                               return r.begin < b;
                             });
  it = ranges.insert(it, Range{begin, end});
  // Merge with overlapping or adjacent neighbours on both sides.
  if (it != ranges.begin()) {
    auto prev = it - 1;
    if (prev->end >= it->begin) {
      prev->end = std::max(prev->end, it->end);
      it = ranges.erase(it) - 1;
    }
  }
  while (it + 1 != ranges.end() && it->end >= (it + 1)->begin) {
    it->end = std::max(it->end, (it + 1)->end);
    ranges.erase(it + 1);
  }
}

std::vector<std::uint64_t> StreamInventory::serialize() const {
  std::vector<std::uint64_t> flat;
  for (const Stream &s : streams_)
    for (const Range &r : s.ranges) {
      flat.push_back(s.id);
      flat.push_back(r.begin);
      flat.push_back(r.end);
    }
  return flat;
}

std::vector<ChunkRange> missing_ranges(std::span<const std::uint64_t> gathered,
                                       std::uint64_t num_streams,
                                       std::uint64_t target) {
  RIPPLES_ASSERT(gathered.size() % 3 == 0);
  RIPPLES_ASSERT(num_streams >= 1);
  std::vector<std::vector<StreamInventory::Range>> executed(
      static_cast<std::size_t>(num_streams));
  for (std::size_t i = 0; i < gathered.size(); i += 3) {
    const std::uint64_t stream = gathered[i];
    RIPPLES_ASSERT(stream < num_streams);
    executed[static_cast<std::size_t>(stream)].push_back(
        {gathered[i + 1], gathered[i + 2]});
  }
  std::vector<ChunkRange> missing;
  for (std::uint64_t s = 0; s < num_streams; ++s) {
    auto &ranges = executed[static_cast<std::size_t>(s)];
    std::sort(ranges.begin(), ranges.end(),
              [](const StreamInventory::Range &a,
                 const StreamInventory::Range &b) { return a.begin < b.begin; });
    // A gap [a, b) matters only if it contains a draw of stream s.
    auto emit_gap = [&](std::uint64_t a, std::uint64_t b) {
      if (a >= b) return;
      if (leapfrog_first_index(a, s, num_streams) < b)
        missing.push_back({s, a, b});
    };
    std::uint64_t cursor = 0;
    for (const StreamInventory::Range &r : ranges) {
      if (cursor >= target) break;
      if (r.begin > cursor) emit_gap(cursor, std::min(r.begin, target));
      cursor = std::max(cursor, r.end);
    }
    emit_gap(cursor, target);
  }
  return missing;
}

std::uint64_t sample_counter_chunked(const CsrGraph &graph,
                                     DiffusionModel model, std::uint64_t seed,
                                     std::span<const std::uint64_t> indices,
                                     unsigned num_threads, std::uint64_t chunk,
                                     bool fused, RRRCollection &collection) {
  RIPPLES_ASSERT(num_threads >= 1);
  if (indices.empty()) return 0;
  if (chunk == 0) chunk = 1;
  const std::uint64_t first_slot = collection.grow(indices.size());
  auto &sets = collection.mutable_sets();

  // Position chunks over the indices array, dealt round-robin across the
  // per-thread queues.  ChunkRange bounds are *positions* here (the global
  // stream index lives in indices[pos]); the stream field records the queue
  // the chunk was dealt to, which is bookkeeping only — execution reads the
  // RNG coordinates from indices[], so any thread emits the same bytes.
  const std::size_t nq = num_threads;
  std::vector<ChunkQueue> queues(nq);
  std::size_t dealt_to = 0;
  for (std::uint64_t lo = 0; lo < indices.size(); ) {
    const std::uint64_t hi =
        std::min<std::uint64_t>(lo + chunk, indices.size());
    queues[dealt_to].push({static_cast<std::uint64_t>(dealt_to), lo, hi});
    dealt_to = (dealt_to + 1) % nq;
    lo = hi;
  }

#pragma omp parallel num_threads(static_cast<int>(num_threads))
  {
    const std::size_t tid = static_cast<std::size_t>(omp_get_thread_num());
    RRRGenerator generator(graph);
    std::unique_ptr<FusedSampler> sampler;
    if (fused) sampler = std::make_unique<FusedSampler>(graph);

    auto execute = [&](const ChunkRange &c) {
      if (fused) {
        for (std::uint64_t lo = c.begin; lo < c.end;) {
          const std::uint64_t lanes =
              std::min<std::uint64_t>(FusedSampler::kLanes, c.end - lo);
          sampler->generate(model, seed,
                            indices.subspan(static_cast<std::size_t>(lo),
                                            static_cast<std::size_t>(lanes)),
                            &sets[first_slot + lo]);
          lo += lanes;
        }
      } else {
        for (std::uint64_t j = c.begin; j < c.end; ++j) {
          Philox4x32 rng =
              sample_stream(seed, indices[static_cast<std::size_t>(j)]);
          generator.generate_random_root(model, rng, sets[first_slot + j]);
        }
      }
    };

    std::uint64_t step = 0;
    std::vector<ChunkRange> grabbed;
    for (;;) {
      const steal_schedule::Decision d =
          steal_schedule::decide(static_cast<int>(tid), step++);
      ChunkRange item;
      bool have = false;
      bool tried_steal = false;
      auto try_steal = [&]() -> bool {
        tried_steal = true;
        for (std::size_t off = 0; off < nq; ++off) {
          const std::size_t victim =
              (tid + 1 + static_cast<std::size_t>(d.victim_offset % nq) +
               off) %
              nq;
          if (victim == tid) continue;
          grabbed.clear();
          if (queues[victim].steal_half(grabbed) > 0) {
            item = grabbed.front();
            for (std::size_t g = 1; g < grabbed.size(); ++g)
              queues[tid].push(grabbed[g]);
            return true;
          }
        }
        return false;
      };
      if (d.allow_steal && d.steal_first && nq > 1) have = try_steal();
      if (!have) have = queues[tid].pop(item);
      if (!have && d.allow_steal && !tried_steal && nq > 1) have = try_steal();
      if (!have) break;
      execute(item);
    }
  }
  count_generated(indices.size());
  return indices.size();
}

} // namespace ripples::detail
