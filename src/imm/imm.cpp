#include "imm/imm.hpp"

#include <cstdlib>
#include <cstring>
#include <numeric>
#include <optional>

#include "imm/imm_core.hpp"
#include "imm/sampler.hpp"
#include "imm/sampler_fused.hpp"
#include "support/assert.hpp"
#include "support/memory.hpp"
#include "support/trace.hpp"

namespace ripples {

SelectionExchange selection_exchange_from_env() {
  const char *value = std::getenv("RIPPLES_SELECTION_EXCHANGE");
  if (value != nullptr && std::strcmp(value, "sparse") == 0)
    return SelectionExchange::Sparse;
  return SelectionExchange::Dense;
}

SamplerEngine sampler_engine_from_env() {
  const char *value = std::getenv("RIPPLES_SAMPLER");
  if (value != nullptr && std::strcmp(value, "fused") == 0)
    return SamplerEngine::Fused;
  return SamplerEngine::Sequential;
}

StealMode steal_mode_from_env() {
  const char *value = std::getenv("RIPPLES_STEAL");
  if (value == nullptr) return StealMode::Off;
  if (std::strcmp(value, "on") == 0) return StealMode::On;
  if (std::strcmp(value, "intra") == 0) return StealMode::Intra;
  if (std::strcmp(value, "inter") == 0) return StealMode::Inter;
  return StealMode::Off;
}

std::uint64_t steal_chunk_from_env() {
  const char *value = std::getenv("RIPPLES_STEAL_CHUNK");
  if (value != nullptr) {
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(value, &end, 10);
    if (end != value && *end == '\0' && parsed > 0)
      return static_cast<std::uint64_t>(parsed);
  }
  return 64; // one fused batch per chunk
}

bool steal_skew_from_env() {
  const char *value = std::getenv("RIPPLES_STEAL_SKEW");
  return value != nullptr &&
         (std::strcmp(value, "1") == 0 || std::strcmp(value, "on") == 0);
}

const char *to_string(StealMode mode) {
  switch (mode) {
  case StealMode::Off: return "off";
  case StealMode::Intra: return "intra";
  case StealMode::Inter: return "inter";
  case StealMode::On: return "on";
  }
  return "?";
}

namespace detail {

void finalize_run_report(ImmResult &result, const char *driver,
                         const CsrGraph &graph, const ImmOptions &options,
                         const MartingaleOutcome &outcome) {
  metrics::RunReport &report = result.report;
  report.driver = driver;
  report.epsilon = options.epsilon;
  report.k = options.k;
  report.model = to_string(options.model);
  report.seed = options.seed;
  report.num_threads = options.num_threads;
  report.num_ranks = options.num_ranks;
  report.rng_mode =
      options.rng_mode == RngMode::LeapfrogLcg ? "leapfrog" : "counter";
  report.mem_budget = options.mem_budget;
  report.rrr_compress = options.rrr_compress == CompressMode::Always ? "always"
                        : options.rrr_compress == CompressMode::Off  ? "off"
                                                                     : "auto";
  report.steal = to_string(options.steal);
  report.steal_chunk = options.steal_chunk;
  report.steal_skew = options.steal_skew;
  report.verify_collectives = options.verify_collectives;
  report.scrub_rrr = to_string(options.scrub_rrr);
  report.degraded = result.degraded;
  report.epsilon_achieved = result.epsilon_achieved;
  report.graph_vertices = graph.num_vertices();
  report.graph_edges = graph.num_edges();
  report.phases = result.timers;
  report.theta = result.theta;
  report.theta_iterations = outcome.estimation_iterations;
  report.lower_bound = result.lower_bound;
  report.extend_targets = outcome.extend_targets;
  report.num_samples = result.num_samples;
  report.rrr_peak_bytes = result.rrr_peak_bytes;
  report.total_associations = result.total_associations;
  report.selection_rounds = options.k;
  report.covered_samples = outcome.selection.covered_samples;
  report.total_samples = outcome.selection.total_samples;
  report.coverage_fraction = result.coverage_fraction;
  report.seeds.assign(result.seeds.begin(), result.seeds.end());
  report.resumed_from = result.resumed_from;
  // Process-wide memory view (v5): the logical tracker peak and the kernel
  // high-water mark at report time, for every driver — the Table 2 harness
  // no longer reads 0 outside imm_partitioned.
  report.tracker_peak_bytes = MemoryTracker::instance().peak_bytes();
  report.peak_rss_bytes = ripples::peak_rss_bytes();
  // Background profiler series, when --profile-mem armed it.  Snapshot at
  // finalize: each report carries the timeline up to its own completion.
  for (const ResourceSample &sample : ResourceSampler::instance().samples()) {
    metrics::MemorySample out;
    out.t_seconds = sample.t_seconds;
    out.tracker_live_bytes = sample.tracker_live_bytes;
    out.tracker_peak_bytes = sample.tracker_peak_bytes;
    out.rss_bytes = sample.rss_bytes;
    report.memory_timeline.push_back(out);
  }
  if (metrics::enabled()) metrics::report_log().add(report);
}

} // namespace detail

namespace {

/// Fills the fields common to all drivers from the martingale outcome.
void finalize_result(ImmResult &result, const detail::MartingaleOutcome &outcome) {
  result.seeds = outcome.selection.seeds;
  result.theta = outcome.theta;
  result.num_samples = outcome.num_samples;
  result.lower_bound = outcome.lower_bound;
  result.coverage_fraction = outcome.selection.coverage_fraction();
  result.degraded = outcome.degraded;
  result.epsilon_achieved = outcome.epsilon_achieved;
}

/// Records each sample's member count into the report's size histogram.
void record_sample_sizes(metrics::RunReport &report,
                         std::span<const RRRSet> samples) {
  for (const RRRSet &sample : samples)
    report.rrr_sizes.record(sample.size());
}

/// Builds the governed store of a shared-memory driver when the run needs
/// one (finite budget, forced compression, or an installed oom fault);
/// nullopt otherwise, and the driver keeps its exact ungoverned path.
std::optional<detail::RRRStore>
make_governed_store(const ImmOptions &options, const detail::ScopedBudget &budget,
                    const char *consumer) {
  if (!budget.governed()) return std::nullopt;
  detail::RRRStore::Policy policy;
  policy.budget_bytes = options.mem_budget;
  policy.compress = options.rrr_compress;
  policy.consumer = consumer;
  // Scrub repair replays stored windows from their counter coordinates;
  // the leapfrog engines are stateful, so scrubbing stays off there (the
  // stealing/fused silent-no-op rule).
  policy.scrub = options.rng_mode == RngMode::CounterSequence
                     ? options.scrub_rrr
                     : ScrubMode::Off;
  return std::optional<detail::RRRStore>(std::in_place, policy);
}

/// One governed admission batch: the RRR sets at global indices
/// [first, first + count), drawn from their per-sample counter streams —
/// byte-identical to the ungoverned samplers' output for the same indices.
/// A governed fused window pre-reserves its per-thread lane structures and
/// falls back to the scalar kernel (same bytes out) when refused — the lane
/// arrays are real memory the budget must see (DESIGN.md §12).
void sample_governed_window(const CsrGraph &graph, const ImmOptions &options,
                            unsigned num_threads, RRRCollection &scratch,
                            std::uint64_t first, std::uint64_t count) {
  std::vector<std::uint64_t> indices(count);
  std::iota(indices.begin(), indices.end(), first);
  if (options.sampler == SamplerEngine::Fused) {
    const std::size_t lane_bytes =
        FusedSampler::lane_bytes(graph) * num_threads;
    if (MemoryTracker::instance().try_reserve(lane_bytes,
                                              "sampler.fused_lanes")) {
      sample_counter_indices_fused(graph, options.model, options.seed, indices,
                                   num_threads, scratch);
      MemoryTracker::instance().release(lane_bytes);
      return;
    }
  }
  sample_counter_indices(graph, options.model, options.seed, indices,
                         num_threads, scratch);
}

} // namespace

ImmResult imm_sequential(const CsrGraph &graph, const ImmOptions &options) {
  ImmResult result;
  StopWatch total;
  trace::Span driver_span("imm", "imm_sequential", "k", options.k);
  detail::ScopedBudget budget(options.mem_budget, options.rrr_compress,
                              detail::oom_faults_from_plan(options.fault_plan));
  RRRCollection collection;
  std::optional<detail::RRRStore> store =
      make_governed_store(options, budget, "imm_sequential.rrr");

  auto extend_to = [&](std::uint64_t target) {
    if (store) {
      store->extend_window(store->size(), target,
                           [&](RRRCollection &scratch, std::uint64_t first,
                               std::uint64_t count) {
                             sample_governed_window(graph, options, 1, scratch,
                                                    first, count);
                           });
      result.rrr_peak_bytes =
          std::max(result.rrr_peak_bytes, store->footprint_bytes());
      result.total_associations =
          std::max(result.total_associations, store->total_associations());
      return;
    }
    if (options.sampler == SamplerEngine::Fused)
      sample_sequential_fused(graph, options.model, target, options.seed,
                              collection);
    else
      sample_sequential(graph, options.model, target, options.seed,
                        collection);
    result.rrr_peak_bytes =
        std::max(result.rrr_peak_bytes, collection.footprint_bytes());
    result.total_associations =
        std::max(result.total_associations, collection.total_associations());
  };
  auto select = [&] {
    if (store) return store->select(graph.num_vertices(), options.k, 1);
    return select_seeds(graph.num_vertices(), options.k, collection.sets());
  };

  detail::RoundLedger ledger;
  detail::RoundAccounting acct{&ledger, 0, [&] {
    if (store)
      return std::pair<std::uint64_t, std::uint64_t>(store->size(),
                                                     store->footprint_bytes());
    return std::pair<std::uint64_t, std::uint64_t>(collection.sets().size(),
                                                   collection.footprint_bytes());
  }};
  auto outcome = detail::run_imm_martingale(
      graph.num_vertices(), options.k, options.epsilon, options.l, extend_to,
      select, result.timers, acct);
  finalize_result(result, outcome);
  result.report.rounds = ledger.entries();
  result.timers.add(Phase::Other,
                    total.elapsed_seconds() - result.timers.total());
  if (store)
    store->record_sizes(result.report.rrr_sizes);
  else
    record_sample_sizes(result.report, collection.sets());
  detail::finalize_run_report(result, "imm_sequential", graph, options, outcome);
  return result;
}

ImmResult imm_baseline_hypergraph(const CsrGraph &graph,
                                  const ImmOptions &options) {
  ImmResult result;
  StopWatch total;
  trace::Span driver_span("imm", "imm_baseline_hypergraph", "k", options.k);
  HypergraphCollection collection(graph.num_vertices());

  // The baseline reproduces the Table 2 reference implementation, so it
  // keeps its scalar kernel regardless of options.sampler; the fused engine
  // is an optimization of the paper's own storage path, not the baseline's.
  // It also ignores the memory-budget governor for the same reason: its
  // dual-direction storage is the memory-hungry reference the governed
  // drivers are measured against (DESIGN.md §12).
  auto extend_to = [&](std::uint64_t target) {
    sample_hypergraph(graph, options.model, target, options.seed, collection);
    result.rrr_peak_bytes =
        std::max(result.rrr_peak_bytes, collection.footprint_bytes());
    result.total_associations =
        std::max(result.total_associations, collection.total_associations());
  };
  auto select = [&] {
    return select_seeds_hypergraph(graph.num_vertices(), options.k, collection);
  };

  detail::RoundLedger ledger;
  detail::RoundAccounting acct{&ledger, 0, [&] {
    return std::pair<std::uint64_t, std::uint64_t>(collection.sets().size(),
                                                   collection.footprint_bytes());
  }};
  auto outcome = detail::run_imm_martingale(
      graph.num_vertices(), options.k, options.epsilon, options.l, extend_to,
      select, result.timers, acct);
  finalize_result(result, outcome);
  result.report.rounds = ledger.entries();
  result.timers.add(Phase::Other,
                    total.elapsed_seconds() - result.timers.total());
  record_sample_sizes(result.report, collection.sets());
  detail::finalize_run_report(result, "imm_baseline_hypergraph", graph, options,
                              outcome);
  return result;
}

ImmResult imm_multithreaded(const CsrGraph &graph, const ImmOptions &options) {
  RIPPLES_ASSERT(options.num_threads >= 1);
  ImmResult result;
  StopWatch total;
  trace::Span driver_span("imm", "imm_multithreaded", "k", options.k,
                          "threads", options.num_threads);
  detail::ScopedBudget budget(options.mem_budget, options.rrr_compress,
                              detail::oom_faults_from_plan(options.fault_plan));
  RRRCollection collection;
  std::optional<detail::RRRStore> store =
      make_governed_store(options, budget, "imm_multithreaded.rrr");

  auto extend_to = [&](std::uint64_t target) {
    if (store) {
      store->extend_window(store->size(), target,
                           [&](RRRCollection &scratch, std::uint64_t first,
                               std::uint64_t count) {
                             sample_governed_window(graph, options,
                                                    options.num_threads,
                                                    scratch, first, count);
                           });
      result.rrr_peak_bytes =
          std::max(result.rrr_peak_bytes, store->footprint_bytes());
      result.total_associations =
          std::max(result.total_associations, store->total_associations());
      return;
    }
    if (options.sampler == SamplerEngine::Fused)
      sample_multithreaded_fused(graph, options.model, target, options.seed,
                                 options.num_threads, collection);
    else
      sample_multithreaded(graph, options.model, target, options.seed,
                           options.num_threads, collection);
    result.rrr_peak_bytes =
        std::max(result.rrr_peak_bytes, collection.footprint_bytes());
    result.total_associations =
        std::max(result.total_associations, collection.total_associations());
  };
  auto select = [&] {
    if (store)
      return store->select(graph.num_vertices(), options.k,
                           options.num_threads);
    return select_seeds_multithreaded(graph.num_vertices(), options.k,
                                      collection.sets(), options.num_threads);
  };

  detail::RoundLedger ledger;
  detail::RoundAccounting acct{&ledger, 0, [&] {
    if (store)
      return std::pair<std::uint64_t, std::uint64_t>(store->size(),
                                                     store->footprint_bytes());
    return std::pair<std::uint64_t, std::uint64_t>(collection.sets().size(),
                                                   collection.footprint_bytes());
  }};
  auto outcome = detail::run_imm_martingale(
      graph.num_vertices(), options.k, options.epsilon, options.l, extend_to,
      select, result.timers, acct);
  finalize_result(result, outcome);
  result.report.rounds = ledger.entries();
  result.timers.add(Phase::Other,
                    total.elapsed_seconds() - result.timers.total());
  if (store)
    store->record_sizes(result.report.rrr_sizes);
  else
    record_sample_sizes(result.report, collection.sets());
  detail::finalize_run_report(result, "imm_multithreaded", graph, options,
                              outcome);
  return result;
}

} // namespace ripples
